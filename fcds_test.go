package fcds_test

import (
	"math"
	"sync"
	"testing"

	fcds "github.com/fcds/fcds"
)

// The facade tests double as API-stability tests: they exercise every
// exported constructor the way a downstream user would.

func TestFacadeConcurrentTheta(t *testing.T) {
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: 1024, Writers: 2})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 50000; j++ {
				w.UpdateUint64(uint64(i*50000 + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-100000) / 100000; re > 0.15 {
		t.Errorf("estimate %v", c.Estimate())
	}
}

func TestFacadeConcurrentQuantiles(t *testing.T) {
	c := fcds.NewConcurrentQuantiles(fcds.ConcurrentQuantilesConfig{K: 128, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	for i := 0; i < 50000; i++ {
		w.Update(float64(i))
	}
	w.Flush()
	med := c.Quantile(0.5)
	if math.Abs(med/50000-0.5) > 3*fcds.QuantilesRankError(128) {
		t.Errorf("median %v", med)
	}
}

func TestFacadeConcurrentHLL(t *testing.T) {
	c := fcds.NewConcurrentHLL(fcds.ConcurrentHLLConfig{Precision: 12, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	for i := 0; i < 50000; i++ {
		w.UpdateUint64(uint64(i))
	}
	w.Flush()
	if re := math.Abs(c.Estimate()-50000) / 50000; re > 0.1 {
		t.Errorf("estimate %v", c.Estimate())
	}
}

func TestFacadeSequentialSketches(t *testing.T) {
	kmv := fcds.NewThetaKMV(256)
	qs := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 100; i++ {
		kmv.UpdateUint64(i)
		qs.UpdateUint64(i)
	}
	if kmv.Estimate() != 100 || qs.Estimate() != 100 {
		t.Error("sequential sketches inexact below k")
	}

	q := fcds.NewQuantilesSketch(128)
	for i := 1; i <= 100; i++ {
		q.Update(float64(i))
	}
	if q.Quantile(0.5) != 50 {
		t.Errorf("median %v", q.Quantile(0.5))
	}

	h := fcds.NewHLLSketch(12)
	for i := uint64(0); i < 100; i++ {
		h.UpdateUint64(i)
	}
	if math.Abs(h.Estimate()-100) > 5 {
		t.Errorf("HLL estimate %v", h.Estimate())
	}
}

func TestFacadeSetOpsAndSerde(t *testing.T) {
	a := fcds.NewThetaQuickSelect(256)
	b := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 100; i++ {
		a.UpdateUint64(i)
		b.UpdateUint64(i + 50)
	}
	u := fcds.NewThetaUnion(256)
	if err := u.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := u.Add(b); err != nil {
		t.Fatal(err)
	}
	res := u.Result()
	if res.Estimate() != 150 {
		t.Errorf("union estimate %v, want 150", res.Estimate())
	}
	data, err := res.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := fcds.UnmarshalThetaCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != 150 {
		t.Error("round-trip changed estimate")
	}

	x := fcds.NewThetaIntersection()
	_ = x.Add(a)
	_ = x.Add(b)
	if got := x.Result().Estimate(); got != 50 {
		t.Errorf("intersection estimate %v, want 50", got)
	}
}

func TestFacadeLockedBaselines(t *testing.T) {
	lt := fcds.NewLockedTheta(256)
	for i := uint64(0); i < 100; i++ {
		lt.UpdateUint64(i)
	}
	if lt.Estimate() != 100 {
		t.Error("locked theta wrong")
	}
	lq := fcds.NewLockedQuantiles(128)
	for i := 1; i <= 100; i++ {
		lq.Update(float64(i))
	}
	if lq.Quantile(0.5) != 50 {
		t.Error("locked quantiles wrong")
	}
}
