package fcds_test

import (
	"sync"
	"testing"
	"time"

	fcds "github.com/fcds/fcds"
)

// TestFacadeWindowedTheta drives the public windowed Θ sketch:
// concurrent batch ingestion across explicit rotations, with the
// expired epoch excluded from the window.
func TestFacadeWindowedTheta(t *testing.T) {
	w := fcds.NewWindowedTheta(fcds.WindowedThetaConfig{
		Sketch: fcds.ConcurrentThetaConfig{K: 4096, Writers: 2, MaxError: 1},
		Window: fcds.WindowConfig{Slots: 3, Width: time.Hour},
	})
	defer w.Close()

	ingest := func(base uint64, n int) {
		var wg sync.WaitGroup
		for wi := 0; wi < 2; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				wr := w.Writer(wi)
				batch := make([]uint64, 0, 128)
				for i := wi; i < n; i += 2 {
					batch = append(batch, base+uint64(i))
					if len(batch) == cap(batch) {
						wr.UpdateBatch(batch)
						batch = batch[:0]
					}
				}
				wr.UpdateBatch(batch)
				wr.Flush()
			}(wi)
		}
		wg.Wait()
	}

	ingest(0, 1000) // epoch 0
	if got := w.QueryWindow(); got != 1000 {
		t.Fatalf("epoch-0 window = %v, want 1000", got)
	}
	w.Rotate()
	ingest(10_000, 500) // epoch 1
	if got := w.QueryWindow(); got != 1500 {
		t.Fatalf("two-epoch window = %v, want 1500", got)
	}
	w.Rotate()
	w.Rotate() // epoch 0 (the 1000) expires
	if got := w.QueryWindow(); got != 500 {
		t.Fatalf("post-expiry window = %v, want 500", got)
	}
	if r := w.RelaxationPerEpoch(); r <= 0 {
		t.Fatalf("relaxation per epoch = %d, want positive", r)
	}
}

// TestFacadeWindowedThetaTable drives the public sliding-window keyed
// table: per-key window queries across rotations, window rollup, and
// the windowed snapshot round trip.
func TestFacadeWindowedThetaTable(t *testing.T) {
	wt := fcds.NewWindowedThetaTable(
		fcds.ThetaTableConfig{
			Table: fcds.TableConfig{Writers: 1, Shards: 16},
			K:     1024, MaxError: 1,
		},
		fcds.WindowConfig{Slots: 4, Width: time.Hour},
	)
	defer wt.Close()
	w := wt.Writer(0)

	keys := make([]string, 300)
	ids := make([]uint64, 300)
	for i := range keys {
		keys[i] = []string{"web", "mobile", "api"}[i%3]
		ids[i] = uint64(i)
	}
	w.UpdateKeyedBatch(keys, ids)
	wt.Drain()
	if est, ok := wt.QueryWindow("web"); !ok || est != 100 {
		t.Fatalf("web window = %v (ok=%v), want 100", est, ok)
	}

	// Rotate the ingestion epoch out of the window entirely.
	for i := 0; i < 4; i++ {
		wt.Rotate()
	}
	if est, ok := wt.QueryWindow("web"); ok {
		t.Fatalf("web still in window after expiry: %v", est)
	}

	// Fresh epoch: new traffic, rollup over the window.
	w.UpdateKeyedBatch(keys[:150], ids[:150])
	wt.Drain()
	snap, err := wt.WindowSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := fcds.UnmarshalThetaTableSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("window snapshot keys = %d, want 3", back.Len())
	}
	if c, ok := back.Get("web"); !ok || c.Estimate() != 50 {
		t.Fatalf("window snapshot web = %v (ok=%v), want 50", c, ok)
	}
}

// TestFacadeWindowedSharePool runs a windowed sketch, a windowed
// table and a plain table on one externally owned pool.
func TestFacadeWindowedSharePool(t *testing.T) {
	pool := fcds.NewPropagatorPool(2)
	defer pool.Close()

	w := fcds.NewWindowedHLL(fcds.WindowedHLLConfig{
		Sketch: fcds.ConcurrentHLLConfig{Precision: 10, Writers: 1},
		Window: fcds.WindowConfig{Slots: 2, Width: time.Hour, Pool: pool},
	})
	wt := fcds.NewWindowedQuantilesTable(
		fcds.QuantilesTableConfig{Table: fcds.TableConfig{Writers: 1, Shards: 8}},
		fcds.WindowConfig{Slots: 2, Width: time.Hour, Pool: pool},
	)
	tab := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{Writers: 1, Shards: 8, Pool: pool},
	})

	hw, qw, tw := w.Writer(0), wt.Writer(0), tab.Writer(0)
	for i := 0; i < 3000; i++ {
		hw.Update(uint64(i))
		qw.UpdateKeyed("lat", float64(i%100))
		tw.UpdateKeyed("ids", uint64(i))
	}
	hw.Flush()
	wt.Drain()
	tab.Drain()

	if est := w.QueryWindow(); est < 2700 || est > 3300 {
		t.Errorf("windowed hll = %v, want ~3000", est)
	}
	if s, ok := wt.QueryWindow("lat"); !ok || s.Quantile(0.5) < 30 || s.Quantile(0.5) > 70 {
		t.Errorf("windowed quantiles median off: ok=%v", ok)
	}
	w.Close()
	wt.Close()
	tab.Close()
}
