// Package fcds is a Go implementation of "Fast Concurrent Data
// Sketches" (Rinberg et al., PODC'19 / PPoPP'20): a generic framework
// that turns sequential data sketches into high-throughput concurrent
// ones with wait-free real-time queries and a provable error bound.
//
// # Overview
//
// A data sketch is a small summary of a long stream that answers one
// statistical query approximately (unique count, quantiles, ...).
// Production sketch libraries are fast but not thread-safe; guarding
// them with a lock destroys scalability. This library reproduces the
// paper's solution: N writer goroutines ingest into small thread-local
// sketches while a background propagator continuously merges them into
// a shared, queryable global sketch. Queries are a single atomic read.
// The price is bounded staleness: a query may miss up to r = 2·N·b of
// the most recent updates (b is the local buffer size) — the paper
// proves the algorithm strongly linearisable with respect to this
// r-relaxed specification and bounds the induced estimation error.
//
// Three sketches are instantiated: the Θ (unique counting) sketch, the
// Quantiles sketch, and HyperLogLog. For small streams, where missing
// r updates would dominate the error, the framework adaptively
// propagates eagerly (sequentially) and switches to concurrent lazy
// mode once the stream exceeds 2/e² items, keeping the relative error
// below the configured e at every size.
//
// # Batch ingestion
//
// Real streams arrive in batches (network feeds, log shippers), and
// the batch APIs are the recommended high-throughput ingestion path:
// every writer handle offers batch variants — UpdateUint64Batch,
// UpdateStringBatch and UpdateBatch on Θ and HLL writers, UpdateBatch
// on quantiles writers — that hash and pre-filter the whole slice in
// one pass, amortise the framework's per-item bookkeeping, fill the
// local buffers with bulk copies, and allocate nothing in steady
// state (string hashing included). Batched uint64 ingestion runs at
// roughly twice the per-item throughput. Handoff semantics are
// unchanged: the relaxation bound r = 2·N·b and Flush/Close behave
// exactly as for per-item updates.
//
// # Quick start
//
//	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
//		K: 4096, Writers: 4, MaxError: 0.04,
//	})
//	defer c.Close()
//	// each goroutine i uses its own handle:
//	w := c.Writer(i)
//	w.UpdateString("user-123")       // one item at a time, or
//	w.UpdateStringBatch(userBatch)   // a whole batch in one pass
//	// any goroutine, any time, wait-free:
//	estimate := c.Estimate()
//
// Sequential sketches (theta KMV/QuickSelect with set operations,
// quantiles, HLL) and the lock-based baseline used in the paper's
// evaluation are exposed as well. The cmd/fcds-bench binary
// regenerates every table and figure of the paper's Section 7.
package fcds

import (
	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/lockbased"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/theta"
)

// Θ sketch (unique counting).
type (
	// ConcurrentTheta is the paper's concurrent Θ sketch: N writers,
	// background propagation, wait-free estimates.
	ConcurrentTheta = theta.Concurrent
	// ConcurrentThetaConfig configures a ConcurrentTheta; the zero
	// value uses the paper's evaluation defaults (k=4096, e=0.04).
	ConcurrentThetaConfig = theta.ConcurrentConfig
	// ThetaWriter is a single-goroutine update handle.
	ThetaWriter = theta.ConcurrentWriter
	// ThetaKMV is the sequential KMV Θ sketch (the paper's
	// Algorithm 1).
	ThetaKMV = theta.KMV
	// ThetaQuickSelect is the sequential QuickSelect Θ sketch (the
	// HeapQuickSelectSketch family used in the evaluation).
	ThetaQuickSelect = theta.QuickSelect
	// ThetaCompact is an immutable Θ sketch snapshot with confidence
	// bounds and binary serialization.
	ThetaCompact = theta.Compact
	// ThetaUnion merges Θ sketches (mergeability, §3).
	ThetaUnion = theta.Union
	// ThetaIntersection intersects Θ sketches.
	ThetaIntersection = theta.Intersection
	// LockedTheta is the lock-protected baseline of the evaluation.
	LockedTheta = lockbased.Theta
)

// Quantiles sketch.
type (
	// ConcurrentQuantiles is the concurrent Quantiles sketch.
	ConcurrentQuantiles = quantiles.Concurrent
	// ConcurrentQuantilesConfig configures a ConcurrentQuantiles.
	ConcurrentQuantilesConfig = quantiles.ConcurrentConfig
	// QuantilesWriter is a single-goroutine update handle.
	QuantilesWriter = quantiles.ConcurrentWriter
	// QuantilesSketch is the sequential mergeable quantiles sketch.
	QuantilesSketch = quantiles.Sketch
	// QuantilesSnapshot is an immutable queryable snapshot.
	QuantilesSnapshot = quantiles.Snapshot
	// LockedQuantiles is the lock-protected baseline.
	LockedQuantiles = lockbased.Quantiles
)

// HyperLogLog sketch.
type (
	// ConcurrentHLL is the concurrent HyperLogLog sketch.
	ConcurrentHLL = hll.Concurrent
	// ConcurrentHLLConfig configures a ConcurrentHLL.
	ConcurrentHLLConfig = hll.ConcurrentConfig
	// HLLWriter is a single-goroutine update handle.
	HLLWriter = hll.ConcurrentWriter
	// HLLSketch is the sequential HLL sketch.
	HLLSketch = hll.Sketch
)

// NewConcurrentTheta builds a concurrent Θ sketch; Close it when done.
func NewConcurrentTheta(cfg ConcurrentThetaConfig) *ConcurrentTheta {
	return theta.NewConcurrent(cfg)
}

// NewConcurrentQuantiles builds a concurrent Quantiles sketch; Close it
// when done.
func NewConcurrentQuantiles(cfg ConcurrentQuantilesConfig) *ConcurrentQuantiles {
	return quantiles.NewConcurrent(cfg)
}

// NewConcurrentHLL builds a concurrent HLL sketch; Close it when done.
func NewConcurrentHLL(cfg ConcurrentHLLConfig) *ConcurrentHLL {
	return hll.NewConcurrent(cfg)
}

// NewThetaKMV returns a sequential KMV Θ sketch with capacity k.
func NewThetaKMV(k int) *ThetaKMV { return theta.NewKMV(k) }

// NewThetaQuickSelect returns a sequential QuickSelect Θ sketch with
// nominal entry count k (a power of two).
func NewThetaQuickSelect(k int) *ThetaQuickSelect { return theta.NewQuickSelect(k) }

// NewThetaUnion returns an empty Θ union with nominal entry count k.
func NewThetaUnion(k int) *ThetaUnion { return theta.NewUnion(k) }

// NewThetaIntersection returns an empty Θ intersection.
func NewThetaIntersection() *ThetaIntersection { return theta.NewIntersection() }

// UnmarshalThetaCompact parses a serialized compact Θ sketch.
func UnmarshalThetaCompact(data []byte) (*ThetaCompact, error) {
	return theta.UnmarshalCompact(data)
}

// ThetaAnotB returns a compact sketch of the set difference A \ B.
func ThetaAnotB(a, b theta.Sketch) (*ThetaCompact, error) { return theta.AnotB(a, b) }

// ThetaJaccard estimates the Jaccard similarity of two Θ sketches.
func ThetaJaccard(a, b theta.Sketch, k int) (float64, error) {
	return theta.JaccardEstimate(a, b, k)
}

// NewQuantilesSketch returns a sequential quantiles sketch with
// parameter k (a power of two; 128 gives ~1.7% rank error).
func NewQuantilesSketch(k int) *QuantilesSketch { return quantiles.New(k) }

// NewHLLSketch returns a sequential HLL sketch with precision p
// (2^p registers).
func NewHLLSketch(p uint8) *HLLSketch { return hll.New(p) }

// NewLockedTheta returns the lock-protected baseline Θ sketch.
func NewLockedTheta(k int) *LockedTheta { return lockbased.NewTheta(k) }

// NewLockedQuantiles returns the lock-protected baseline quantiles
// sketch.
func NewLockedQuantiles(k int) *LockedQuantiles { return lockbased.NewQuantiles(k) }

// QuantilesRankError returns the a-priori rank error ε for parameter k.
func QuantilesRankError(k int) float64 { return quantiles.NormalizedRankError(k) }

// UnmarshalQuantiles parses a quantiles sketch serialized with
// QuantilesSketch.MarshalBinary.
func UnmarshalQuantiles(data []byte) (*QuantilesSketch, error) {
	return quantiles.Unmarshal(data)
}

// UnmarshalHLL parses an HLL sketch serialized with
// HLLSketch.MarshalBinary.
func UnmarshalHLL(data []byte) (*HLLSketch, error) { return hll.Unmarshal(data) }
