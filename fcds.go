// Package fcds is a Go implementation of "Fast Concurrent Data
// Sketches" (Rinberg et al., PODC'19 / PPoPP'20): a generic framework
// that turns sequential data sketches into high-throughput concurrent
// ones with wait-free real-time queries and a provable error bound.
//
// # Overview
//
// A data sketch is a small summary of a long stream that answers one
// statistical query approximately (unique count, quantiles, ...).
// Production sketch libraries are fast but not thread-safe; guarding
// them with a lock destroys scalability. This library reproduces the
// paper's solution: N writer goroutines ingest into small thread-local
// sketches while a background propagator continuously merges them into
// a shared, queryable global sketch. Queries are a single atomic read.
// The price is bounded staleness: a query may miss up to r = 2·N·b of
// the most recent updates (b is the local buffer size) — the paper
// proves the algorithm strongly linearisable with respect to this
// r-relaxed specification and bounds the induced estimation error.
//
// Three sketches are instantiated: the Θ (unique counting) sketch, the
// Quantiles sketch, and HyperLogLog. For small streams, where missing
// r updates would dominate the error, the framework adaptively
// propagates eagerly (sequentially) and switches to concurrent lazy
// mode once the stream exceeds 2/e² items, keeping the relative error
// below the configured e at every size.
//
// # Batch ingestion
//
// Real streams arrive in batches (network feeds, log shippers), and
// the batch APIs are the recommended high-throughput ingestion path:
// every writer handle offers batch variants — UpdateUint64Batch,
// UpdateStringBatch and UpdateBatch on Θ and HLL writers, UpdateBatch
// on quantiles writers — that hash and pre-filter the whole slice in
// one pass, amortise the framework's per-item bookkeeping, fill the
// local buffers with bulk copies, and allocate nothing in steady
// state (string hashing included). Batched uint64 ingestion runs at
// roughly twice the per-item throughput. Handoff semantics are
// unchanged: the relaxation bound r = 2·N·b and Flush/Close behave
// exactly as for per-item updates.
//
// # Quick start
//
//	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
//		K: 4096, Writers: 4, MaxError: 0.04,
//	})
//	defer c.Close()
//	// each goroutine i uses its own handle:
//	w := c.Writer(i)
//	w.UpdateString("user-123")       // one item at a time, or
//	w.UpdateStringBatch(userBatch)   // a whole batch in one pass
//	// any goroutine, any time, wait-free:
//	estimate := c.Estimate()
//
// # Keyed tables
//
// Production workloads rarely track one stream: they track one small
// stream per key — unique users per tenant, latency per endpoint,
// cardinality per device — across millions of keys. The table types
// (ThetaTable, QuantilesTable, HLLTable, plus *U64 variants for
// uint64 keys) map keys to lightweight per-key concurrent sketches:
// sharded lazy creation, keyed batch ingestion that groups a batch by
// key and shard before running the fused hash+pre-filter pipeline,
// wait-free per-key queries with the full per-key r = 2·N·b
// guarantee, an all-keys rollup, TTL/size-cap eviction that spills
// evicted keys as serialized snapshots, and whole-table binary
// snapshots that merge across processes for distributed aggregation.
//
// Crucially, a table does not spawn one propagator goroutine per key:
// every per-key sketch attaches to one shared PropagatorPool (a fixed
// set of workers, GOMAXPROCS by default), so a million keys propagate
// on a handful of goroutines.
//
// Propagation is shard-affine: every pool worker owns a private run
// queue, and each sketch is pinned to a home worker at attach time —
// keyed tables derive the assignment from the key hash, so one worker
// always merges a given key's global sketch (it stays hot in that
// worker's cache), and the same key in a rotated window epoch inherits
// the same worker. Balance comes from bounded work stealing: an idle
// worker steals one queued sketch at a time from a backed-up or
// stalled sibling, and PropagatorPool.Stats exposes per-worker
// depth/steal/run counters. Liveness never depends on a steal — every
// submission leaves a wake token with the home worker.
//
// On top of the shard map, every table Writer keeps a small
// direct-mapped key→entry cache, so repeat keys in a batch skip the
// shard read-lock and map lookup. Coherence is one epoch stamp per
// shard, bumped whenever a key leaves that shard's map (eviction, TTL
// expiry, Close); a cached entry is used only after the stamp
// re-validates under the entry's liveness lock, so an evicted key can
// never be resurrected through a stale cache slot.
//
// Tables can also adapt per key: an optional HotKeyPolicy counts each
// key's ingest volume and, past HotThreshold, rebuilds that key's
// sketch through the engine's scale-up ladder — the old state is
// captured as a compact and seeds the new, larger-configured sketch
// (same home worker), so history and the Θ pre-filter survive the
// rebuild. Θ and HLL grow the per-writer buffer b (handoffs halve;
// the per-key relaxation r = 2·N·b doubles per step), quantiles also
// grow k. Compacts leaving the table — snapshots, rollups, eviction
// spills — are normalized back to the base parameter, so the FCTB
// wire format and cross-process merges are unaffected.
//
//	t := fcds.NewThetaTable(fcds.ThetaTableConfig{
//		Table: fcds.TableConfig{Writers: 4, MaxKeys: 1_000_000},
//	})
//	defer t.Close()
//	w := t.Writer(i)
//	w.UpdateKeyedBatch(tenants, userIDs) // grouped, fused, bulk
//	estimate, ok := t.Estimate("tenant-42") // wait-free
//	total := t.Rollup().Estimate()          // all keys merged
//
// Standalone concurrent sketches can opt into a shared pool too, via
// the Pool field of their configs; Compact() on any concurrent sketch
// returns a serializable point-in-time snapshot.
//
// # Read-path cost model
//
// Whole-table reads — Rollup, Snapshot, SnapshotAppend, and the
// checkpoint/snapshot-push paths built on them — cost O(keys), not
// O(updates): each live key contributes one per-key compaction
// (acquire the entry's read lock, capture the sketch's current
// compact) plus, for rollups, one merge into the accumulator and, for
// snapshots, one serialization. Per-key compaction dominates; with
// K=4096 Θ sketches a compaction is a few microseconds, so a million
// keys is seconds of work per pass if done serially. Reads never
// block ingestion (writers only take shard read locks briefly per
// key), but a long pass holds down cache and memory bandwidth.
//
// The read path therefore fans out: entry pointers are collected
// under each shard's read lock, then per-key compaction runs on a
// bounded worker set with per-worker partial aggregators merged
// pairwise at the end (rollup) or per-worker serialization regions
// stitched in order (snapshot). The degree is TableConfig's
// ReadParallelism — 0 (the default) means GOMAXPROCS at call time, 1
// forces the serial path, and any other value caps the workers per
// pass. The caller's goroutine is always worker zero, so degree 1
// spawns nothing. Scaling is near-linear while keys/degree stays
// large (≥ a few thousand keys per worker); below ~1k keys the
// fan-out constant (goroutine wake + pairwise merge) eats the win and
// serial is just as fast, which is why the rollup experiment in
// cmd/fcds-bench measures both a 1e3- and a 1e5-key curve.
//
// Operationally: size ReadParallelism so a full pass (the
// fcds_table_rollup_duration_seconds /
// fcds_table_snapshot_duration_seconds histograms below) completes
// comfortably inside the shortest period that triggers one — the
// -push-every snapshot interval, the -checkpoint-every durability
// interval, or a dashboard's scrape period. If p99 pass duration
// approaches that period, passes overlap: raise the degree, shard
// the table across processes, or lengthen the interval. Windowed
// tables add one sealed-aggregate rebuild per rotation (same fan-out,
// same histograms), so Width must also exceed the pass duration.
//
// # Sliding windows
//
// Point-in-time sketches answer "uniques ever"; dashboards ask
// "uniques in the last N minutes". The windowed types answer that with
// an epoch ring: time is cut into Slots epochs of Width each, every
// epoch owns a fresh concurrent sketch, and a rotation (explicit
// Rotate, or an AutoRotate ticker) retires the epoch that fell off the
// ring — which is how sliding windows work over merge-only sketches:
// expired data leaves wholesale with its epoch, everything else merges.
//
//	w := fcds.NewWindowedTheta(fcds.WindowedThetaConfig{
//		Sketch: fcds.ConcurrentThetaConfig{K: 4096, Writers: 4},
//		Window: fcds.WindowConfig{Slots: 10, Width: time.Minute},
//	})
//	defer w.Close()
//	w.AutoRotate()
//	w.Writer(i).UpdateBatch(ids)    // same batch pipeline per epoch
//	last10m := w.QueryWindow()      // uniques over the last ~10 minutes
//
// WindowedTheta/WindowedQuantiles/WindowedHLL window one stream; the
// windowed tables (NewWindowedThetaTable, ...) window per key across
// millions of keys, rotating whole keyed tables through the table
// snapshot path and answering QueryWindow(key) from at most three
// merged per-key compacts.
//
// Error bounds compose per epoch: each epoch is a full r-relaxed
// concurrent sketch, so a window query may miss up to r = 2·N·b of
// the newest updates of each epoch it spans (RelaxationPerEpoch), and
// items leave the window in epoch-width steps (quantisation W). The
// cached aggregate of sealed epochs additionally defers a sealed
// epoch's unflushed tail — again at most r per epoch — until the next
// rotation folds it in. QueryWindow never blocks ingestion;
// QueryWindowCached is a single atomic read (strictly wait-free) that
// refreshes once per rotation.
//
// # Network ingestion and snapshot shipping
//
// Everything above lives in one process; the ingest server moves it
// across machines. Serve starts a TCP endpoint that terminates keyed
// batches from the wire straight into a registered table's
// UpdateKeyedBatch path, and Dial returns a client whose ingest calls
// batch into a buffered writer with pipelined acknowledgements —
// errors surface at Flush, throughput is one syscall per burst.
//
//	srv, _ := fcds.Serve(":9700", fcds.IngestServerConfig{})
//	fcds.RegisterThetaTable(srv, "events", t) // srv owns t's writers
//	...
//	c, _ := fcds.Dial("edge-1:9700")
//	c.Ingest("events", tenants, userIDs) // async, batched
//	c.Flush()                            // wait + collect errors
//
// The protocol is binary frames, each a fixed 8-byte header — payload
// length (uint32 LE), protocol version, frame type, a frame-flags
// byte and one reserved zero byte — followed by the payload:
//
//	frame               payload
//	HELLO               max/negotiated protocol version (1 byte)
//	KEYED_BATCH         table, key type, count, keys, 8-byte values
//	KEYED_STRING_BATCH  table, key type, count, keys, string items
//	SNAPSHOT_PUSH       table, source id, FCTB snapshot blob
//	SNAPSHOT_PULL       table → merged FCTB snapshot blob
//	WINDOW_SNAPSHOT     table, source id, epoch, FCTB snapshot blob
//	QUERY               table, key type, key → found, kind, compact
//	ROLLUP              table → kind, all-keys merged compact
//	HEALTH              (empty) → server counters + checkpoint age
//	OK / VALUE / ERR    responses (ERR: code + message)
//
// The first frame of a connection must be HELLO: the client offers its
// highest version, the server answers with the minimum of the two, and
// every later frame carries the negotiated version. The HELLO payload
// may append an optional feature byte (older peers simply omit it):
// a client that wants per-frame deflate compression of batch payloads
// offers it there (WithIngestCompression), the server echoes the
// accepted subset, and only then may request frames carry the
// compressed flag in the header's flags byte — a flag outside the
// negotiated set is a framing error. Each request frame receives
// exactly one response frame in request order (which is what makes
// client pipelining a FIFO, with no request ids on the wire). Failed
// requests are answered with an ERR frame carrying a numeric code and
// message — a compressed payload that fails to inflate is such a
// request error, leaving the connection live — while framing and
// version violations close the connection. See internal/server/wire
// for the full layout.
//
// Snapshot shipping composes with the table snapshots above into the
// distributed-aggregation path: an edge node serves its tables,
// periodically pulls its own merged snapshot (or lets a pipeline pull
// it remotely) and pushes the FCTB blob to an aggregator node, which
// folds every received snapshot in with its own live keys — queries
// and rollups on the aggregator answer over the union. A push carries
// a source id that picks the fold: an empty id merges into a shared
// aggregate (one-shot and delta ships), a named id replaces that
// source's previous snapshot, which keeps periodic cumulative ships
// correct for every family — re-merging a quantiles snapshot each
// tick would re-count all of its samples. Windowed tables ship their
// sealed-epoch state with WINDOW_SNAPSHOT, which adds a per-source
// rotation epoch: the receiver applies a ship only when its epoch is
// >= the last applied one, so retries are idempotent and reordered
// stale windows never roll newer state back. cmd/fcds-serve wraps all
// of this in a binary (-push ships source-tagged snapshots upstream on
// a timer), and examples/distributed runs a two-node pipeline end to
// end.
//
// # Failure semantics
//
// The pipeline survives the two crash shapes a fan-in tree meets, with
// bounded, well-defined loss in each:
//
// Edge crash. An edge's in-memory tables die with it. Everything the
// edge shipped upstream before the crash survives: the aggregator
// deliberately retains a dead source's last snapshot (its replacement
// never arrives, so evicting it would silently drop that data from
// rollups). A restarted edge begins empty under a FRESH source id (the
// default host/pid id changes across restarts), so its new cumulative
// snapshots aggregate alongside the old retained one instead of
// replacing it. Lost: only updates the edge ingested after its last
// successful ship — at most one push interval's worth.
//
// Upstream outage. DialReliable returns a reconnecting client: ships
// enqueue into a bounded in-memory outbox that coalesces to the
// LATEST snapshot per (table, source) — exactly the server's replace
// semantics, so coalescing drops nothing a delivery would have kept —
// while the connection retries with exponential backoff + jitter.
// Replace semantics also make redelivery after an ambiguous
// mid-flight failure idempotent. The outbox holds one entry per
// (table, source) pair, bounded by ReliableIngestConfig.MaxOutbox
// (default 256 pairs): past the bound the oldest pair's pending ship
// is evicted and counted in Stats().Dropped, and the pair's next
// cumulative ship re-covers its data.
//
// Aggregator crash. An aggregator checkpoints every table's state —
// named-source snapshots plus the anonymous aggregate with the live
// table folded in — to per-table FCCK files (atomic rename, fsync'd,
// CRC-checked) via WriteCheckpoints, and recovers them on boot with
// RestoreCheckpoints before the port opens. Reconnecting pushers then
// simply replace their restored snapshots on the next ship. Lost: only
// direct wire ingest (KEYED_BATCH) and anonymous merges that arrived
// after the last checkpoint — at most one checkpoint interval's worth;
// per-source pushed state heals entirely on the pushers' next ships.
// The HEALTH frame reports the checkpoint's age so monitors can bound
// this staleness window; fcds-serve enables checkpointing with
// -checkpoint-dir. Checkpoints are generational: each pass writes a
// new per-table file rather than renaming over the last one, restore
// picks the newest valid generation per table and falls back to an
// older one when the newest is corrupt at rest, and retention
// (-checkpoint-retain) prunes generations past the configured count —
// never touching files it did not write.
//
// Journaled aggregator crash. With a journal attached (AttachJournal;
// fcds-serve's -journal), the aggregator write-ahead-logs every
// named-source snapshot push, window ship and eviction spill to
// CRC-framed records in append-only FCJL files BEFORE applying it, and
// fsyncs per -journal-fsync-every. Boot becomes restore-checkpoint-
// then-replay-journal-tail: every record above the restored
// checkpoint's LSN watermark re-applies exactly as the original frame
// did, records the checkpoint already covers are skipped by that
// watermark (merge-semantics records — eviction spills, anonymous
// pushes — would double-count without it), and a torn final record
// (the crash happened mid-write) fails its CRC and truncates cleanly —
// that push was never ACKed, so its Reliable shipper redelivers it.
// Each successful checkpoint pass rotates the journal and prunes files
// its watermarks cover, and an oversized journal self-compacts to the
// latest record per pushing source (replace semantics make older
// records dead weight). Journaling also upgrades eviction: a TTL or
// max-keys evicted key's final compact is journaled and folded back
// into the remote aggregate instead of dropped, so eviction stops
// costing rollup data. Lost in a crash: only un-fsynced journal
// records — at most -journal-fsync-every minus one acknowledged
// pushes, plus any KEYED_BATCH wire ingest since the last checkpoint
// (direct keyed ingest is deliberately not journaled: per-item WAL
// writes would serialize the zero-allocation batch path; its loss
// stays bounded by the checkpoint interval).
//
// # Observability and operating fcds-serve
//
// Every subsystem exports its operational counters through a
// zero-dependency metrics registry (NewMetricsRegistry): pool workers
// (queue depth, runs, steals, wake tokens), tables (keys, evictions by
// cause, hot-key promotions/demotions, writer-cache hit ratio),
// windows (rotations, sealed rebuilds, expired epochs), the ingest
// server (per-table frames/items/bytes/errors, writer-pool waits and
// idle handles, per-source snapshot-push lag, checkpoint age and
// write duration) and
// the reliable shipper (outbox depth, coalesced ships, reconnect
// backoff). Registration is collector-style: series are func-backed
// reads of the subsystems' existing atomics, evaluated only at scrape
// time, so the instrumented ingest paths keep their zero-allocation
// budgets. One registry gathers everything and renders it three ways:
// MetricsHandler serves Prometheus text format 0.0.4 over HTTP,
// WriteValues dumps the same samples as log lines, and Values feeds
// programmatic consumers (fcds-bench attaches counter snapshots to its
// JSON points this way).
//
//	reg := fcds.NewMetricsRegistry()
//	fcds.RegisterPoolMetrics(reg, pool)
//	t.RegisterMetrics(reg, "events")       // any table or window
//	srv.RegisterMetrics(reg)               // ingest server + checkpoints
//	rel.RegisterMetrics(reg, "agg-1:9700") // each reliable shipper
//	http.Handle("/metrics", fcds.MetricsHandler(reg))
//
// fcds-serve wires all of this up behind one flag: -metrics-addr
// starts an ops HTTP listener serving /metrics (Prometheus text) and
// /healthz (the HEALTH counters as JSON, with an explicit
// has_checkpoint field so "never checkpointed" is distinguishable
// from "just checkpointed", plus the journal's size, record and
// replay counters when -journal is on). The metrics worth alerting on:
// fcds_server_checkpoint_age_seconds growing past -checkpoint-every
// (crash-loss window widening), fcds_server_snapshot_push_age_seconds
// per source (an edge stopped shipping), fcds_client_outbox_depth
// sustained above zero (this node cannot reach its upstream), and
// fcds_server_writer_pool_waits_total climbing (ingest frames found
// every writer handle busy and had to wait — raise -writers).
//
// Journal alerting is about the lag the fsync cadence buys:
// fcds_server_journal_unsynced_records sitting at the configured
// -journal-fsync-every minus one under steady traffic means every
// crash loses the maximum that setting allows — either accept that
// window or lower the setting; 1 (the default) makes it zero.
// fcds_server_journal_size_bytes growing without the sawtooth drops
// of rotation pruning means checkpoints are failing (each successful
// pass rotates and prunes), so the replay tail — and recovery time —
// grows unboundedly; pair it with
// fcds_server_journal_replay_age_seconds after restarts, which
// reports how far behind the restored checkpoint the journal had to
// carry the node (persistently large values mean the checkpoint
// cadence, not the journal, is the durability bottleneck).
// fcds_server_journal_replayed_records after any unplanned restart is
// the recovery actually exercised: zero after a known-dirty crash
// means the journal was not doing its job (wrong -journal directory,
// or records were never fsynced).
//
// The read path exports duration histograms, one per table
// (fcds_table_rollup_duration_seconds,
// fcds_table_snapshot_duration_seconds) and one for the whole
// checkpoint pass (fcds_server_checkpoint_duration_seconds, which
// replaces the old fcds_server_checkpoint_write_seconds gauge).
// Alerting thresholds follow the cost model above: alert when a
// table's p99 snapshot duration exceeds half of -push-every (pushes
// are starting to overlap their interval), when p99 checkpoint
// duration exceeds half of -checkpoint-every (the durability window
// has stopped shrinking — raise ReadParallelism or the interval), and
// on any rollup p99 above the slowest dashboard's timeout. A sudden
// shift of an otherwise-stable histogram toward higher buckets with a
// flat key count means per-key compaction got more expensive (hot-key
// promotions, estimation-mode transitions), not more keys.
// -stats-every logs the same registry through WriteValues, so the log
// dump and the scrape endpoint can never disagree.
//
// Connections and writers are decoupled: ingest frames check a writer
// handle out of a per-table pool for exactly one batch, so any number
// of connections share -writers handles and a burst of conns greater
// than -writers queues briefly instead of serialising whole
// connections. Size -writers to the peak number of batches you want
// decoded concurrently per table (pool waits tell you when it is too
// low; fcds_server_writer_pool_idle sitting at -writers means it is
// more than enough). The deprecated fcds_server_writer_slot_waits_total
// family — from the old connection-pinned slot scheme — is still
// emitted, always 0, so dashboards keep scraping. Two more fcds-serve
// knobs tune the datapath: -read-burst / -write-burst size the
// per-connection socket buffers (bigger bursts = fewer syscalls per
// pipelined batch), and -compression=false refuses the client-offered
// per-frame compression feature (HELLO then downshifts, clients fall
// back to uncompressed frames automatically).
//
// Sequential sketches (theta KMV/QuickSelect with set operations,
// quantiles, HLL) and the lock-based baseline used in the paper's
// evaluation are exposed as well. The cmd/fcds-bench binary
// regenerates every table and figure of the paper's Section 7.
package fcds

import (
	"net/http"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/lockbased"
	"github.com/fcds/fcds/internal/metrics"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
	"github.com/fcds/fcds/internal/window"
)

// Θ sketch (unique counting).
type (
	// ConcurrentTheta is the paper's concurrent Θ sketch: N writers,
	// background propagation, wait-free estimates.
	ConcurrentTheta = theta.Concurrent
	// ConcurrentThetaConfig configures a ConcurrentTheta; the zero
	// value uses the paper's evaluation defaults (k=4096, e=0.04).
	ConcurrentThetaConfig = theta.ConcurrentConfig
	// ThetaWriter is a single-goroutine update handle.
	ThetaWriter = theta.ConcurrentWriter
	// ThetaKMV is the sequential KMV Θ sketch (the paper's
	// Algorithm 1).
	ThetaKMV = theta.KMV
	// ThetaQuickSelect is the sequential QuickSelect Θ sketch (the
	// HeapQuickSelectSketch family used in the evaluation).
	ThetaQuickSelect = theta.QuickSelect
	// ThetaCompact is an immutable Θ sketch snapshot with confidence
	// bounds and binary serialization.
	ThetaCompact = theta.Compact
	// ThetaUnion merges Θ sketches (mergeability, §3).
	ThetaUnion = theta.Union
	// ThetaIntersection intersects Θ sketches.
	ThetaIntersection = theta.Intersection
	// LockedTheta is the lock-protected baseline of the evaluation.
	LockedTheta = lockbased.Theta
)

// Quantiles sketch.
type (
	// ConcurrentQuantiles is the concurrent Quantiles sketch.
	ConcurrentQuantiles = quantiles.Concurrent
	// ConcurrentQuantilesConfig configures a ConcurrentQuantiles.
	ConcurrentQuantilesConfig = quantiles.ConcurrentConfig
	// QuantilesWriter is a single-goroutine update handle.
	QuantilesWriter = quantiles.ConcurrentWriter
	// QuantilesSketch is the sequential mergeable quantiles sketch.
	QuantilesSketch = quantiles.Sketch
	// QuantilesSnapshot is an immutable queryable snapshot.
	QuantilesSnapshot = quantiles.Snapshot
	// LockedQuantiles is the lock-protected baseline.
	LockedQuantiles = lockbased.Quantiles
)

// HyperLogLog sketch.
type (
	// ConcurrentHLL is the concurrent HyperLogLog sketch.
	ConcurrentHLL = hll.Concurrent
	// ConcurrentHLLConfig configures a ConcurrentHLL.
	ConcurrentHLLConfig = hll.ConcurrentConfig
	// HLLWriter is a single-goroutine update handle.
	HLLWriter = hll.ConcurrentWriter
	// HLLSketch is the sequential HLL sketch.
	HLLSketch = hll.Sketch
)

// Propagation executor.
type (
	// PropagatorPool is a fixed pool of propagator goroutines shared
	// by any number of concurrent sketches and tables. Scheduling is
	// shard-affine: each sketch has a home worker (keyed tables derive
	// it from the key hash), with bounded work stealing for balance;
	// Stats exposes per-worker depth/steal/run counters.
	PropagatorPool = core.PropagatorPool
	// PoolWorkerStats is one propagator worker's scheduling counters
	// (see PropagatorPool.Stats).
	PoolWorkerStats = core.WorkerStats
)

// Keyed sketch tables: one lightweight concurrent sketch per key, all
// propagated by one shared pool. The plain types use string keys, the
// U64 variants uint64 keys.
type (
	// TableConfig is the sketch-independent table configuration for
	// string-keyed tables (writers, shards, pool, eviction policy,
	// hot-key promotion).
	TableConfig = table.Config[string]
	// TableU64Config is TableConfig for uint64-keyed tables.
	TableU64Config = table.Config[uint64]
	// HotKeyPolicy configures adaptive per-key sketches: keys whose
	// ingest volume crosses HotThreshold are rebuilt through the
	// engine's scale-up ladder (see the package docs' "Keyed tables"
	// section for the accuracy/relaxation trade).
	HotKeyPolicy = table.HotKeyPolicy

	// ThetaTable maps string keys to concurrent Θ sketches (per-key
	// unique counting).
	ThetaTable = table.ThetaTable[string]
	// ThetaTableU64 is ThetaTable with uint64 keys.
	ThetaTableU64 = table.ThetaTable[uint64]
	// ThetaTableConfig configures a string-keyed Θ table.
	ThetaTableConfig = table.ThetaConfig[string]
	// ThetaTableU64Config configures a uint64-keyed Θ table.
	ThetaTableU64Config = table.ThetaConfig[uint64]
	// ThetaTableWriter is a single-goroutine keyed ingestion handle.
	ThetaTableWriter = table.ThetaTableWriter[string]
	// ThetaTableSnapshot is a mergeable serialized-table capture.
	ThetaTableSnapshot = table.TableSnapshot[string, *theta.Compact]
	// ThetaTableU64Snapshot is ThetaTableSnapshot with uint64 keys.
	ThetaTableU64Snapshot = table.TableSnapshot[uint64, *theta.Compact]

	// QuantilesTable maps string keys to concurrent quantiles sketches
	// (per-key distributions).
	QuantilesTable = table.QuantilesTable[string]
	// QuantilesTableU64 is QuantilesTable with uint64 keys.
	QuantilesTableU64 = table.QuantilesTable[uint64]
	// QuantilesTableConfig configures a string-keyed quantiles table.
	QuantilesTableConfig = table.QuantilesConfig[string]
	// QuantilesTableU64Config configures a uint64-keyed quantiles
	// table.
	QuantilesTableU64Config = table.QuantilesConfig[uint64]
	// QuantilesTableWriter is a single-goroutine keyed ingestion
	// handle.
	QuantilesTableWriter = table.QuantilesTableWriter[string]
	// QuantilesTableSnapshot is a mergeable serialized-table capture.
	QuantilesTableSnapshot = table.TableSnapshot[string, *quantiles.Sketch]
	// QuantilesTableU64Snapshot is QuantilesTableSnapshot with uint64
	// keys.
	QuantilesTableU64Snapshot = table.TableSnapshot[uint64, *quantiles.Sketch]

	// HLLTable maps string keys to concurrent HLL sketches (per-key
	// unique counting in fixed tiny per-key memory).
	HLLTable = table.HLLTable[string]
	// HLLTableU64 is HLLTable with uint64 keys.
	HLLTableU64 = table.HLLTable[uint64]
	// HLLTableConfig configures a string-keyed HLL table.
	HLLTableConfig = table.HLLConfig[string]
	// HLLTableU64Config configures a uint64-keyed HLL table.
	HLLTableU64Config = table.HLLConfig[uint64]
	// HLLTableWriter is a single-goroutine keyed ingestion handle.
	HLLTableWriter = table.HLLTableWriter[string]
	// HLLTableSnapshot is a mergeable serialized-table capture.
	HLLTableSnapshot = table.TableSnapshot[string, *hll.Sketch]
	// HLLTableU64Snapshot is HLLTableSnapshot with uint64 keys.
	HLLTableU64Snapshot = table.TableSnapshot[uint64, *hll.Sketch]
)

// Sliding-window sketches: epoch rings of concurrent sketches (see the
// package documentation's "Sliding windows" section for semantics and
// error bounds).
type (
	// WindowConfig configures an epoch ring: Slots epochs of Width each,
	// optionally on a shared Pool.
	WindowConfig = window.Config

	// WindowedTheta windows one Θ stream: uniques over the last
	// Slots·Width.
	WindowedTheta = window.Windowed[uint64, float64, *theta.Compact]
	// WindowedQuantiles windows one quantiles stream: distributions
	// over the last Slots·Width.
	WindowedQuantiles = window.Windowed[float64, *quantiles.Snapshot, *quantiles.Sketch]
	// WindowedHLL windows one HLL stream in fixed memory per epoch.
	WindowedHLL = window.Windowed[uint64, float64, *hll.Sketch]

	// WindowedThetaTable windows a string-keyed Θ table: per-key uniques
	// over the last Slots·Width.
	WindowedThetaTable = window.Table[string, uint64, float64, *theta.Compact]
	// WindowedThetaTableU64 is WindowedThetaTable with uint64 keys.
	WindowedThetaTableU64 = window.Table[uint64, uint64, float64, *theta.Compact]
	// WindowedQuantilesTable windows a string-keyed quantiles table.
	WindowedQuantilesTable = window.Table[string, float64, *quantiles.Snapshot, *quantiles.Sketch]
	// WindowedHLLTable windows a string-keyed HLL table.
	WindowedHLLTable = window.Table[string, uint64, float64, *hll.Sketch]
)

// WindowedThetaConfig configures a standalone windowed Θ sketch. The
// window's propagation executor is Window.Pool; as a convenience,
// Sketch.Pool is promoted to Window.Pool when only the former is set
// (the per-epoch sketches always run on the window's executor).
type WindowedThetaConfig struct {
	// Sketch configures each epoch's concurrent Θ sketch.
	Sketch ConcurrentThetaConfig
	// Window configures the epoch ring.
	Window WindowConfig
}

// WindowedQuantilesConfig configures a standalone windowed quantiles
// sketch; see WindowedThetaConfig for the Pool convention.
type WindowedQuantilesConfig struct {
	// Sketch configures each epoch's concurrent quantiles sketch.
	Sketch ConcurrentQuantilesConfig
	// Window configures the epoch ring.
	Window WindowConfig
}

// WindowedHLLConfig configures a standalone windowed HLL sketch; see
// WindowedThetaConfig for the Pool convention.
type WindowedHLLConfig struct {
	// Sketch configures each epoch's concurrent HLL sketch.
	Sketch ConcurrentHLLConfig
	// Window configures the epoch ring.
	Window WindowConfig
}

// NewWindowedTheta builds an epoch-ring windowed Θ sketch; Close it
// when done.
func NewWindowedTheta(cfg WindowedThetaConfig) *WindowedTheta {
	if cfg.Window.Pool == nil {
		cfg.Window.Pool = cfg.Sketch.Pool
	}
	return window.New[uint64, float64, *theta.Compact](theta.NewEngine(cfg.Sketch), cfg.Window)
}

// NewWindowedQuantiles builds an epoch-ring windowed quantiles sketch;
// Close it when done.
func NewWindowedQuantiles(cfg WindowedQuantilesConfig) *WindowedQuantiles {
	if cfg.Window.Pool == nil {
		cfg.Window.Pool = cfg.Sketch.Pool
	}
	return window.New[float64, *quantiles.Snapshot, *quantiles.Sketch](quantiles.NewEngine(cfg.Sketch), cfg.Window)
}

// NewWindowedHLL builds an epoch-ring windowed HLL sketch; Close it
// when done.
func NewWindowedHLL(cfg WindowedHLLConfig) *WindowedHLL {
	if cfg.Window.Pool == nil {
		cfg.Window.Pool = cfg.Sketch.Pool
	}
	return window.New[uint64, float64, *hll.Sketch](hll.NewEngine(cfg.Sketch), cfg.Window)
}

// NewWindowedThetaTable builds a sliding-window string-keyed Θ table;
// Close it when done.
func NewWindowedThetaTable(tableCfg ThetaTableConfig, windowCfg WindowConfig) *WindowedThetaTable {
	tcfg, eng := tableCfg.Engine()
	return window.NewTable[string, uint64, float64, *theta.Compact](tcfg, eng, windowCfg)
}

// NewWindowedThetaTableU64 builds a sliding-window uint64-keyed Θ
// table; Close it when done.
func NewWindowedThetaTableU64(tableCfg ThetaTableU64Config, windowCfg WindowConfig) *WindowedThetaTableU64 {
	tcfg, eng := tableCfg.Engine()
	return window.NewTable[uint64, uint64, float64, *theta.Compact](tcfg, eng, windowCfg)
}

// NewWindowedQuantilesTable builds a sliding-window string-keyed
// quantiles table; Close it when done.
func NewWindowedQuantilesTable(tableCfg QuantilesTableConfig, windowCfg WindowConfig) *WindowedQuantilesTable {
	tcfg, eng := tableCfg.Engine()
	return window.NewTable[string, float64, *quantiles.Snapshot, *quantiles.Sketch](tcfg, eng, windowCfg)
}

// NewWindowedHLLTable builds a sliding-window string-keyed HLL table;
// Close it when done.
func NewWindowedHLLTable(tableCfg HLLTableConfig, windowCfg WindowConfig) *WindowedHLLTable {
	tcfg, eng := tableCfg.Engine()
	return window.NewTable[string, uint64, float64, *hll.Sketch](tcfg, eng, windowCfg)
}

// Network ingestion: the wire server and client (see the package
// documentation's "Network ingestion and snapshot shipping" section
// for the protocol).
type (
	// IngestServer is a TCP endpoint terminating the keyed-batch wire
	// protocol into registered tables, with snapshot push/pull for
	// distributed aggregation. Register tables, then Serve; Close
	// drains in-flight frames.
	IngestServer = server.Server
	// IngestServerConfig configures an IngestServer; the zero value is
	// usable.
	IngestServerConfig = server.Config
	// IngestServerStats is the server's counter snapshot.
	IngestServerStats = server.Stats
	// IngestClient is one client connection: asynchronous batched
	// ingest calls (errors surface at Flush) and synchronous
	// query/snapshot calls.
	IngestClient = client.Client
	// IngestHealth is the server health report (the HEALTH frame).
	IngestHealth = client.Health
	// IngestServerError is a request failure the server reported
	// through an error frame.
	IngestServerError = client.ServerError
	// ReliableIngestClient is a reconnecting snapshot shipper:
	// exponential backoff + jitter, connection-state callbacks, and a
	// bounded outbox that coalesces to the latest snapshot per
	// (table, source) while the upstream is down. See the package
	// documentation's "Failure semantics" section.
	ReliableIngestClient = client.Reliable
	// ReliableIngestConfig configures a ReliableIngestClient.
	ReliableIngestConfig = client.ReliableConfig
	// ReliableIngestStats is a ReliableIngestClient counter snapshot.
	ReliableIngestStats = client.ReliableStats
	// IngestConnState is a reliable connection's lifecycle state.
	IngestConnState = client.ConnState
	// IngestCheckpointStats reports one checkpoint write/restore pass.
	IngestCheckpointStats = server.CheckpointStats
	// IngestJournal is the append-only durability journal an
	// IngestServer can write between checkpoints: named-source pushes,
	// window ships and eviction spills are logged before they mutate
	// in-memory state, and boot replays the tail on top of restored
	// checkpoints. See the package documentation's "Failure semantics"
	// section for the recovery model.
	IngestJournal = server.Journal
	// IngestJournalConfig configures an IngestJournal (fsync cadence,
	// self-compaction threshold, retention).
	IngestJournalConfig = server.JournalConfig
	// IngestJournalStats is an IngestJournal counter snapshot.
	IngestJournalStats = server.JournalStats
	// IngestJournalReplayStats reports one boot replay pass.
	IngestJournalReplayStats = server.JournalReplayStats
)

// Reliable connection lifecycle states (IngestConnState).
const (
	IngestDisconnected = client.StateDisconnected
	IngestConnecting   = client.StateConnecting
	IngestConnected    = client.StateConnected
	IngestClosed       = client.StateClosed
)

// NewIngestServer returns an idle ingest server: register tables,
// then Start it (or Serve a listener). Registering before the
// listener opens means the first connections can never race
// registration and see unknown-table errors.
func NewIngestServer(cfg IngestServerConfig) *IngestServer { return server.New(cfg) }

// OpenIngestJournal opens (creating if needed) the durability journal
// in dir and starts a fresh journal file. Boot order matters: call
// RestoreCheckpoints, then ReplayJournal, then OpenIngestJournal +
// AttachJournal, then Start — replay must read the previous process's
// files before this call starts a new one.
func OpenIngestJournal(dir string, cfg IngestJournalConfig) (*IngestJournal, error) {
	return server.OpenJournal(dir, cfg)
}

// Serve starts an ingest server listening on addr, accepting in the
// background, and returns it; register tables before clients connect
// (or use NewIngestServer + Start to register before the port opens).
// Close the server (it drains in-flight frames) before closing the
// registered tables.
func Serve(addr string, cfg IngestServerConfig) (*IngestServer, error) {
	s := server.New(cfg)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// IngestDialOption configures a dialed IngestClient (Dial,
// DialTimeout).
type IngestDialOption = client.Option

// WithIngestCompression offers the server per-frame deflate
// compression of keyed-batch payloads during HELLO. Compression is off
// by default; when the server accepts (Compressed reports the
// outcome), batch frames ship compressed — a win on slow links with
// repetitive keys, a pure CPU cost on fast local ones. Servers that
// predate the feature ignore the offer; the client falls back to
// uncompressed frames either way.
func WithIngestCompression() IngestDialOption { return client.WithCompression() }

// Dial connects to an ingest server and negotiates the protocol
// version (and any offered features); Close the client when done.
func Dial(addr string, opts ...IngestDialOption) (*IngestClient, error) {
	return client.Dial(addr, opts...)
}

// DialTimeout is Dial with an establishment bound: the TCP connect and
// the HELLO exchange each must complete within d, so a black-holed
// upstream fails fast instead of hanging the caller. The bound lifts
// once the connection is established.
func DialTimeout(addr string, d time.Duration, opts ...IngestDialOption) (*IngestClient, error) {
	return client.Dial(addr, append(opts, client.WithDialTimeout(d))...)
}

// DialReliable returns a reconnecting snapshot shipper bound to addr:
// Ship* calls enqueue and return immediately, a background goroutine
// dials (bounded by dialTimeout when > 0), delivers, and on failure
// retries with exponential backoff + jitter while the outbox coalesces
// to the latest snapshot per (table, source). Fan-out replication runs
// one ReliableIngestClient per upstream — their reconnect loops are
// independent, so a dead upstream cannot stall a healthy one. Drain
// flushes before shutdown; Close discards what is still queued.
func DialReliable(addr string, cfg ReliableIngestConfig, dialTimeout time.Duration) (*ReliableIngestClient, error) {
	var opts []client.Option
	if dialTimeout > 0 {
		opts = append(opts, client.WithDialTimeout(dialTimeout))
	}
	return client.DialReliable(addr, cfg, opts...)
}

// RegisterThetaTable serves a string-keyed Θ table under name. The
// server becomes the table's sole writer (it owns every writer
// handle); local queries, rollups and snapshots remain safe.
func RegisterThetaTable(s *IngestServer, name string, t *ThetaTable) error {
	return server.RegisterTheta(s, name, t)
}

// RegisterThetaTableU64 serves a uint64-keyed Θ table under name; see
// RegisterThetaTable for the writer-ownership contract.
func RegisterThetaTableU64(s *IngestServer, name string, t *ThetaTableU64) error {
	return server.RegisterTheta(s, name, t)
}

// RegisterQuantilesTable serves a string-keyed quantiles table under
// name; see RegisterThetaTable for the writer-ownership contract.
func RegisterQuantilesTable(s *IngestServer, name string, t *QuantilesTable) error {
	return server.RegisterQuantiles(s, name, t)
}

// RegisterQuantilesTableU64 serves a uint64-keyed quantiles table
// under name.
func RegisterQuantilesTableU64(s *IngestServer, name string, t *QuantilesTableU64) error {
	return server.RegisterQuantiles(s, name, t)
}

// RegisterHLLTable serves a string-keyed HLL table under name; see
// RegisterThetaTable for the writer-ownership contract.
func RegisterHLLTable(s *IngestServer, name string, t *HLLTable) error {
	return server.RegisterHLL(s, name, t)
}

// RegisterHLLTableU64 serves a uint64-keyed HLL table under name.
func RegisterHLLTableU64(s *IngestServer, name string, t *HLLTableU64) error {
	return server.RegisterHLL(s, name, t)
}

// Observability: the metrics registry and its renderers (see the
// package documentation's "Observability and operating fcds-serve"
// section). Subsystems register through their own methods — Table
// RegisterMetrics, windowed RegisterMetrics, IngestServer
// RegisterMetrics, ReliableIngestClient RegisterMetrics — plus
// RegisterPoolMetrics for a shared PropagatorPool; every series is
// read at scrape time, off the ingest hot paths.
type (
	// MetricsRegistry is a lock-cheap registry of counters, gauges,
	// histograms and func-backed series with Prometheus text
	// exposition (WritePrometheus), log-dump rendering (WriteValues)
	// and programmatic access (Values).
	MetricsRegistry = metrics.Registry
	// MetricsFamily is one gathered metric family: name, help, kind
	// and current samples.
	MetricsFamily = metrics.Family
	// MetricsSample is one gathered series value.
	MetricsSample = metrics.Sample
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHandler returns an http.Handler exposing the registry in
// Prometheus text format (mount it at /metrics).
func MetricsHandler(reg *MetricsRegistry) http.Handler { return metrics.Handler(reg) }

// RegisterPoolMetrics exports a PropagatorPool's scheduling counters
// (workers, parked, steals, per-worker queue depth/runs/steals/wake
// tokens) into reg.
func RegisterPoolMetrics(reg *MetricsRegistry, p *PropagatorPool) {
	core.RegisterPoolMetrics(reg, p)
}

// NewPropagatorPool starts a shared propagation executor with the
// given worker count (<= 0 means GOMAXPROCS). Close it after every
// sketch and table attached to it.
func NewPropagatorPool(workers int) *PropagatorPool { return core.NewPropagatorPool(workers) }

// NewThetaTable builds a string-keyed Θ table; Close it when done.
func NewThetaTable(cfg ThetaTableConfig) *ThetaTable { return table.NewTheta(cfg) }

// NewThetaTableU64 builds a uint64-keyed Θ table; Close it when done.
func NewThetaTableU64(cfg ThetaTableU64Config) *ThetaTableU64 { return table.NewTheta(cfg) }

// NewQuantilesTable builds a string-keyed quantiles table; Close it
// when done.
func NewQuantilesTable(cfg QuantilesTableConfig) *QuantilesTable { return table.NewQuantiles(cfg) }

// NewQuantilesTableU64 builds a uint64-keyed quantiles table; Close it
// when done.
func NewQuantilesTableU64(cfg QuantilesTableU64Config) *QuantilesTableU64 {
	return table.NewQuantiles(cfg)
}

// NewHLLTable builds a string-keyed HLL table; Close it when done.
func NewHLLTable(cfg HLLTableConfig) *HLLTable { return table.NewHLL(cfg) }

// NewHLLTableU64 builds a uint64-keyed HLL table; Close it when done.
func NewHLLTableU64(cfg HLLTableU64Config) *HLLTableU64 { return table.NewHLL(cfg) }

// UnmarshalThetaTableSnapshot parses a serialized string-keyed Θ table
// snapshot (see ThetaTable.SnapshotBinary).
func UnmarshalThetaTableSnapshot(data []byte) (*ThetaTableSnapshot, error) {
	return table.UnmarshalThetaSnapshot[string](data)
}

// UnmarshalThetaTableU64Snapshot parses a serialized uint64-keyed Θ
// table snapshot.
func UnmarshalThetaTableU64Snapshot(data []byte) (*ThetaTableU64Snapshot, error) {
	return table.UnmarshalThetaSnapshot[uint64](data)
}

// UnmarshalQuantilesTableSnapshot parses a serialized string-keyed
// quantiles table snapshot.
func UnmarshalQuantilesTableSnapshot(data []byte) (*QuantilesTableSnapshot, error) {
	return table.UnmarshalQuantilesSnapshot[string](data)
}

// UnmarshalQuantilesTableU64Snapshot parses a serialized uint64-keyed
// quantiles table snapshot.
func UnmarshalQuantilesTableU64Snapshot(data []byte) (*QuantilesTableU64Snapshot, error) {
	return table.UnmarshalQuantilesSnapshot[uint64](data)
}

// UnmarshalHLLTableSnapshot parses a serialized string-keyed HLL table
// snapshot.
func UnmarshalHLLTableSnapshot(data []byte) (*HLLTableSnapshot, error) {
	return table.UnmarshalHLLSnapshot[string](data)
}

// UnmarshalHLLTableU64Snapshot parses a serialized uint64-keyed HLL
// table snapshot.
func UnmarshalHLLTableU64Snapshot(data []byte) (*HLLTableU64Snapshot, error) {
	return table.UnmarshalHLLSnapshot[uint64](data)
}

// NewConcurrentTheta builds a concurrent Θ sketch; Close it when done.
func NewConcurrentTheta(cfg ConcurrentThetaConfig) *ConcurrentTheta {
	return theta.NewConcurrent(cfg)
}

// NewConcurrentQuantiles builds a concurrent Quantiles sketch; Close it
// when done.
func NewConcurrentQuantiles(cfg ConcurrentQuantilesConfig) *ConcurrentQuantiles {
	return quantiles.NewConcurrent(cfg)
}

// NewConcurrentHLL builds a concurrent HLL sketch; Close it when done.
func NewConcurrentHLL(cfg ConcurrentHLLConfig) *ConcurrentHLL {
	return hll.NewConcurrent(cfg)
}

// NewThetaKMV returns a sequential KMV Θ sketch with capacity k.
func NewThetaKMV(k int) *ThetaKMV { return theta.NewKMV(k) }

// NewThetaQuickSelect returns a sequential QuickSelect Θ sketch with
// nominal entry count k (a power of two).
func NewThetaQuickSelect(k int) *ThetaQuickSelect { return theta.NewQuickSelect(k) }

// NewThetaUnion returns an empty Θ union with nominal entry count k.
func NewThetaUnion(k int) *ThetaUnion { return theta.NewUnion(k) }

// NewThetaIntersection returns an empty Θ intersection.
func NewThetaIntersection() *ThetaIntersection { return theta.NewIntersection() }

// UnmarshalThetaCompact parses a serialized compact Θ sketch.
func UnmarshalThetaCompact(data []byte) (*ThetaCompact, error) {
	return theta.UnmarshalCompact(data)
}

// ThetaAnotB returns a compact sketch of the set difference A \ B.
func ThetaAnotB(a, b theta.Sketch) (*ThetaCompact, error) { return theta.AnotB(a, b) }

// ThetaJaccard estimates the Jaccard similarity of two Θ sketches.
func ThetaJaccard(a, b theta.Sketch, k int) (float64, error) {
	return theta.JaccardEstimate(a, b, k)
}

// NewQuantilesSketch returns a sequential quantiles sketch with
// parameter k (a power of two; 128 gives ~1.7% rank error).
func NewQuantilesSketch(k int) *QuantilesSketch { return quantiles.New(k) }

// NewHLLSketch returns a sequential HLL sketch with precision p
// (2^p registers).
func NewHLLSketch(p uint8) *HLLSketch { return hll.New(p) }

// NewLockedTheta returns the lock-protected baseline Θ sketch.
func NewLockedTheta(k int) *LockedTheta { return lockbased.NewTheta(k) }

// NewLockedQuantiles returns the lock-protected baseline quantiles
// sketch.
func NewLockedQuantiles(k int) *LockedQuantiles { return lockbased.NewQuantiles(k) }

// QuantilesRankError returns the a-priori rank error ε for parameter k.
func QuantilesRankError(k int) float64 { return quantiles.NormalizedRankError(k) }

// UnmarshalQuantiles parses a quantiles sketch serialized with
// QuantilesSketch.MarshalBinary.
func UnmarshalQuantiles(data []byte) (*QuantilesSketch, error) {
	return quantiles.Unmarshal(data)
}

// UnmarshalHLL parses an HLL sketch serialized with
// HLLSketch.MarshalBinary.
func UnmarshalHLL(data []byte) (*HLLSketch, error) { return hll.Unmarshal(data) }
