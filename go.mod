module github.com/fcds/fcds

go 1.24
