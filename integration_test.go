package fcds_test

import (
	"math"
	"sync"
	"testing"

	fcds "github.com/fcds/fcds"
	"github.com/fcds/fcds/internal/theta"
)

// Cross-module integration tests: flows a real deployment would run,
// combining concurrent ingestion, snapshots, set operations and
// serialization across package boundaries.

// TestPipelineConcurrentIngestSerializeUnion models a two-stage
// pipeline: two nodes ingest concurrently, serialize their compact
// sketches, and a coordinator deserializes and unions them — the
// distributed-merge pattern (§1) that mergeability enables, on top of
// the concurrent ingestion the paper adds.
func TestPipelineConcurrentIngestSerializeUnion(t *testing.T) {
	const perNode = 300000
	blobs := make([][]byte, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			// Each node: 2 writers ingesting its half (disjoint halves
			// overlap 50% across nodes).
			c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
				K: 2048, Writers: 2,
			})
			defer c.Close()
			var iwg sync.WaitGroup
			for i := 0; i < 2; i++ {
				iwg.Add(1)
				go func(i int) {
					defer iwg.Done()
					w := c.Writer(i)
					base := uint64(node)*perNode/2 + uint64(i)*perNode
					for v := base; v < base+perNode/2; v++ {
						w.UpdateUint64(v)
					}
					w.Flush()
				}(i)
			}
			iwg.Wait()
			// Nodes ship compact snapshots; the concurrent sketch's
			// global state is private, so re-sketch the estimate via a
			// sequential sketch fed from the same ranges for the blob.
			// (A production system would expose a compact-snapshot API;
			// here we validate serde interop with sequential sketches.)
			s := fcds.NewThetaQuickSelect(2048)
			base := uint64(node) * perNode / 2
			for v := base; v < base+perNode/2; v++ {
				s.UpdateUint64(v)
			}
			base = uint64(node)*perNode/2 + perNode
			for v := base; v < base+perNode/2; v++ {
				s.UpdateUint64(v)
			}
			blob, err := s.Compact().MarshalBinary()
			if err != nil {
				t.Error(err)
				return
			}
			blobs[node] = blob
		}(node)
	}
	wg.Wait()

	u := fcds.NewThetaUnion(2048)
	for _, blob := range blobs {
		c, err := fcds.UnmarshalThetaCompact(blob)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	est := u.Result().Estimate()
	// Node ranges: node0 covers [0, 150k) ∪ [300k, 450k); node1 covers
	// [150k, 300k) ∪ [450k, 600k) → union covers [0, 600k).
	trueUnion := float64(2 * perNode)
	if re := math.Abs(est-trueUnion) / trueUnion; re > 0.1 {
		t.Errorf("pipeline union estimate %v, want ~%v", est, trueUnion)
	}
}

// TestThetaAndHLLAgreeOnSameStream ingests one stream into both
// concurrent sketches and cross-checks the estimates — a consistency
// check an operator would run when migrating between sketch types.
func TestThetaAndHLLAgreeOnSameStream(t *testing.T) {
	th := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: 4096, Writers: 2})
	defer th.Close()
	hl := fcds.NewConcurrentHLL(fcds.ConcurrentHLLConfig{Precision: 12, Writers: 2})
	defer hl.Close()
	const n = 200000
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tw := th.Writer(i)
			hw := hl.Writer(i)
			for j := uint64(0); j < n/2; j++ {
				v := uint64(i)*n/2 + j
				tw.UpdateUint64(v)
				hw.UpdateUint64(v)
			}
			tw.Flush()
			hw.Flush()
		}(i)
	}
	wg.Wait()
	te, he := th.Estimate(), hl.Estimate()
	if math.Abs(te-he)/n > 0.1 {
		t.Errorf("Θ %v and HLL %v disagree beyond combined error", te, he)
	}
}

// TestQuantilesSerdeAcrossConcurrentRuns serializes a sequential
// quantiles sketch, restores it, merges a second (concurrently built)
// batch into it via snapshot values, and checks the rank guarantee on
// the combined stream.
func TestQuantilesSerdeAcrossConcurrentRuns(t *testing.T) {
	s1 := fcds.NewQuantilesSketch(128)
	for i := 0; i < 50000; i++ {
		s1.Update(float64(i))
	}
	blob, err := s1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := fcds.UnmarshalQuantiles(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Second half arrives through the concurrent sketch.
	c := fcds.NewConcurrentQuantiles(fcds.ConcurrentQuantilesConfig{K: 128, Writers: 2})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 25000; j++ {
				w.Update(float64(50000 + j*2 + i))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	// Replay the concurrent run's snapshot into the restored sketch
	// (weighted samples preserve the PAC guarantee within the coarser
	// sketch's error).
	c.Snapshot().ForEach(func(v float64, weight uint64) {
		for j := uint64(0); j < weight; j++ {
			restored.Update(v)
		}
	})
	if restored.N() != 100000 {
		t.Fatalf("combined N = %d", restored.N())
	}
	eps := fcds.QuantilesRankError(128)
	med := restored.Quantile(0.5)
	if math.Abs(med/100000-0.5) > 4*eps {
		t.Errorf("combined median %v", med)
	}
}

// TestRelaxationBoundFacade validates Theorem 1 through the public API
// only: quiesced estimates in exact mode never miss more than r
// updates.
func TestRelaxationBoundFacade(t *testing.T) {
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
		K: 1 << 16, Writers: 3, BufferSize: 16, EagerLimit: -1,
	})
	defer c.Close()
	const per = 5000
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				w.UpdateUint64(uint64(i*per + j))
			}
		}(i)
	}
	wg.Wait()
	// Flush one writer only: the others may retain buffered updates.
	c.Writer(0).Flush()
	est := c.Estimate()
	total := float64(3 * per)
	if est > total {
		t.Errorf("estimate %v exceeds stream size in exact mode", est)
	}
	if est < total-float64(c.Relaxation()) {
		t.Errorf("estimate %v misses more than r=%d", est, c.Relaxation())
	}
}

// TestKMVGlobalThroughFramework exercises the Algorithm 1 composable
// sketch end-to-end through internal/theta (the facade exposes the
// QuickSelect default; the KMV global is the paper's reference).
func TestKMVGlobalThroughFramework(t *testing.T) {
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 1024, Writers: 2, MaxError: 0.04, UseKMV: true,
	})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 50000; j++ {
				w.UpdateUint64(uint64(i*50000 + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-100000) / 100000; re > 0.15 {
		t.Errorf("estimate %v", c.Estimate())
	}
}
