package fcds_test

import (
	"fmt"

	fcds "github.com/fcds/fcds"
)

// ExampleNewConcurrentTheta demonstrates concurrent distinct counting
// with an exact answer guaranteed for small streams (eager phase).
func ExampleNewConcurrentTheta() {
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: 1024, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(0); i < 1000; i++ {
		w.UpdateUint64(i % 500) // 500 distinct values, each twice
	}
	w.Flush()
	fmt.Printf("%.0f\n", c.Estimate())
	// Output: 500
}

// ExampleNewQuantilesSketch shows exact quantiles on a small stream.
func ExampleNewQuantilesSketch() {
	q := fcds.NewQuantilesSketch(128)
	for i := 1; i <= 100; i++ {
		q.Update(float64(i))
	}
	fmt.Printf("median=%.0f p90=%.0f max=%.0f\n",
		q.Quantile(0.5), q.Quantile(0.9), q.Quantile(1))
	// Output: median=50 p90=90 max=100
}

// ExampleNewThetaUnion shows mergeability: distributed sketches union
// into one summary.
func ExampleNewThetaUnion() {
	a := fcds.NewThetaQuickSelect(256)
	b := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 80; i++ {
		a.UpdateUint64(i)      // 0..79
		b.UpdateUint64(i + 40) // 40..119
	}
	u := fcds.NewThetaUnion(256)
	_ = u.Add(a)
	_ = u.Add(b)
	fmt.Printf("%.0f\n", u.Result().Estimate())
	// Output: 120
}

// ExampleThetaCompact_MarshalBinary shows the serialization round trip
// used to ship sketches between processes.
func ExampleThetaCompact_MarshalBinary() {
	s := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 100; i++ {
		s.UpdateUint64(i)
	}
	blob, _ := s.Compact().MarshalBinary()
	restored, _ := fcds.UnmarshalThetaCompact(blob)
	fmt.Printf("%.0f\n", restored.Estimate())
	// Output: 100
}

// ExampleNewHLLSketch shows HLL distinct counting: approximate (±2%
// here), insensitive to duplicates, and deterministic for a fixed
// hash seed.
func ExampleNewHLLSketch() {
	h := fcds.NewHLLSketch(12)
	for i := uint64(0); i < 100; i++ {
		h.UpdateUint64(i)
		h.UpdateUint64(i) // duplicates don't count
	}
	fmt.Printf("%.0f\n", h.Estimate())
	// Output: 97
}
