package fcds_test

import (
	"fmt"

	fcds "github.com/fcds/fcds"
)

// ExampleNewConcurrentTheta demonstrates concurrent distinct counting
// with an exact answer guaranteed for small streams (eager phase).
func ExampleNewConcurrentTheta() {
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: 1024, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(0); i < 1000; i++ {
		w.UpdateUint64(i % 500) // 500 distinct values, each twice
	}
	w.Flush()
	fmt.Printf("%.0f\n", c.Estimate())
	// Output: 500
}

// ExampleNewQuantilesSketch shows exact quantiles on a small stream.
func ExampleNewQuantilesSketch() {
	q := fcds.NewQuantilesSketch(128)
	for i := 1; i <= 100; i++ {
		q.Update(float64(i))
	}
	fmt.Printf("median=%.0f p90=%.0f max=%.0f\n",
		q.Quantile(0.5), q.Quantile(0.9), q.Quantile(1))
	// Output: median=50 p90=90 max=100
}

// ExampleNewThetaUnion shows mergeability: distributed sketches union
// into one summary.
func ExampleNewThetaUnion() {
	a := fcds.NewThetaQuickSelect(256)
	b := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 80; i++ {
		a.UpdateUint64(i)      // 0..79
		b.UpdateUint64(i + 40) // 40..119
	}
	u := fcds.NewThetaUnion(256)
	_ = u.Add(a)
	_ = u.Add(b)
	fmt.Printf("%.0f\n", u.Result().Estimate())
	// Output: 120
}

// ExampleThetaCompact_MarshalBinary shows the serialization round trip
// used to ship sketches between processes.
func ExampleThetaCompact_MarshalBinary() {
	s := fcds.NewThetaQuickSelect(256)
	for i := uint64(0); i < 100; i++ {
		s.UpdateUint64(i)
	}
	blob, _ := s.Compact().MarshalBinary()
	restored, _ := fcds.UnmarshalThetaCompact(blob)
	fmt.Printf("%.0f\n", restored.Estimate())
	// Output: 100
}

// ExampleNewHLLSketch shows HLL distinct counting: approximate (±2%
// here), insensitive to duplicates, and deterministic for a fixed
// hash seed.
func ExampleNewHLLSketch() {
	h := fcds.NewHLLSketch(12)
	for i := uint64(0); i < 100; i++ {
		h.UpdateUint64(i)
		h.UpdateUint64(i) // duplicates don't count
	}
	fmt.Printf("%.0f\n", h.Estimate())
	// Output: 97
}

// ExampleServe runs the two-node distributed-aggregation pipeline on
// loopback sockets: an edge node ingests keyed batches over the wire
// protocol, ships its table snapshot to an aggregator node, and the
// aggregator's merged answers cover both nodes' streams exactly (the
// streams here are small enough for the per-key exact mode).
func ExampleServe() {
	newNode := func() (*fcds.IngestServer, *fcds.ThetaTable) {
		t := fcds.NewThetaTable(fcds.ThetaTableConfig{
			Table: fcds.TableConfig{Writers: 2},
			K:     2048,
		})
		s, err := fcds.Serve("127.0.0.1:0", fcds.IngestServerConfig{})
		if err != nil {
			panic(err)
		}
		if err := fcds.RegisterThetaTable(s, "events", t); err != nil {
			panic(err)
		}
		return s, t
	}
	edgeSrv, edgeTab := newNode()
	defer edgeTab.Close()
	defer edgeSrv.Close()
	aggSrv, aggTab := newNode()
	defer aggTab.Close()
	defer aggSrv.Close()

	// The edge sees users 0..499 of tenant "eu", the aggregator sees
	// the overlapping 250..749 — the union holds 750 distinct users.
	ingest := func(addr string, lo, hi uint64) {
		c, err := fcds.Dial(addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		keys := make([]string, 0, hi-lo)
		users := make([]uint64, 0, hi-lo)
		for u := lo; u < hi; u++ {
			keys = append(keys, "eu")
			users = append(users, u)
		}
		if err := c.Ingest("events", keys, users); err != nil {
			panic(err)
		}
		if err := c.Flush(); err != nil {
			panic(err)
		}
	}
	ingest(edgeSrv.Addr().String(), 0, 500)
	ingest(aggSrv.Addr().String(), 250, 750)

	// Ship the edge snapshot to the aggregator and query the union.
	c, err := fcds.Dial(edgeSrv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()
	blob, err := c.PullSnapshot("events")
	if err != nil {
		panic(err)
	}
	a, err := fcds.Dial(aggSrv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer a.Close()
	if err := a.PushSnapshot("events", blob); err != nil {
		panic(err)
	}
	if _, err := a.PullSnapshot("events"); err != nil { // drain local keys
		panic(err)
	}
	_, qblob, _, err := a.QueryCompact("events", "eu")
	if err != nil {
		panic(err)
	}
	merged, err := fcds.UnmarshalThetaCompact(qblob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f\n", merged.Estimate())
	// Output: 750
}
