package fcds_test

import (
	"sync"
	"testing"
	"time"

	fcds "github.com/fcds/fcds"
)

// TestFacadeThetaTable drives the public keyed Θ table end to end:
// concurrent keyed batches, wait-free per-key estimates, rollup,
// snapshot round trip, eviction spill.
func TestFacadeThetaTable(t *testing.T) {
	var spilled sync.Map
	tab := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{
			Writers: 2,
			Shards:  32,
			OnEvict: func(k string, snap []byte) { spilled.Store(k, snap) },
			TTL:     time.Hour,
		},
		// K=512 > perTenant keeps every per-key sketch in exact mode.
		K: 512,
	})
	defer tab.Close()

	const tenants, perTenant = 20, 300
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			keys := make([]string, 0, 128)
			ids := make([]uint64, 0, 128)
			for ti := 0; ti < tenants; ti++ {
				for u := wi * perTenant / 2; u < (wi+1)*perTenant/2; u++ {
					keys = append(keys, tenant(ti))
					ids = append(ids, uint64(ti*perTenant+u))
					if len(keys) == cap(keys) {
						w.UpdateKeyedBatch(keys, ids)
						keys, ids = keys[:0], ids[:0]
					}
				}
			}
			w.UpdateKeyedBatch(keys, ids)
		}(wi)
	}
	wg.Wait()
	tab.Drain()

	for ti := 0; ti < tenants; ti++ {
		est, ok := tab.Estimate(tenant(ti))
		if !ok || est != perTenant {
			t.Errorf("tenant %d estimate = %v (ok=%v), want exactly %d", ti, est, ok, perTenant)
		}
	}
	// The rollup union holds 20·300 uniques at k=512, i.e. estimation
	// mode: allow its statistical error (RSE ≈ 4.4%, use 4 RSE).
	if est, want := tab.Rollup().Estimate(), float64(tenants*perTenant); est < want*0.83 || est > want*1.17 {
		t.Errorf("rollup = %v, want %v ±17%%", est, want)
	}

	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := fcds.UnmarshalThetaTableSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != tenants {
		t.Errorf("snapshot has %d keys, want %d", snap.Len(), tenants)
	}
	if c, ok := snap.Get(tenant(3)); !ok || c.Estimate() != perTenant {
		t.Errorf("snapshot tenant 3 = %v (ok=%v), want %d", c, ok, perTenant)
	}
}

// TestFacadeTablesSharePool runs all three table kinds plus a
// standalone sketch on one externally owned pool.
func TestFacadeTablesSharePool(t *testing.T) {
	pool := fcds.NewPropagatorPool(2)
	defer pool.Close()

	th := fcds.NewThetaTableU64(fcds.ThetaTableU64Config{
		Table: fcds.TableU64Config{Writers: 1, Shards: 8, Pool: pool},
	})
	qt := fcds.NewQuantilesTable(fcds.QuantilesTableConfig{
		Table: fcds.TableConfig{Writers: 1, Shards: 8, Pool: pool},
	})
	hl := fcds.NewHLLTable(fcds.HLLTableConfig{
		Table: fcds.TableConfig{Writers: 1, Shards: 8, Pool: pool},
	})
	sk := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: 256, Writers: 1, Pool: pool})
	defer sk.Close()

	tw, qw, hw, sw := th.Writer(0), qt.Writer(0), hl.Writer(0), sk.Writer(0)
	for i := 0; i < 2000; i++ {
		tw.UpdateKeyed(uint64(i%4), uint64(i))
		qw.UpdateKeyed("lat", float64(i%100))
		hw.UpdateKeyed("ids", uint64(i))
		sw.UpdateUint64(uint64(i))
	}
	th.Drain()
	qt.Drain()
	hl.Drain()
	sw.Flush()

	// 500 uniques at the table default K=256 is estimation mode:
	// tolerate 4 RSE ≈ 25%.
	if est, _ := th.Estimate(0); est < 375 || est > 625 {
		t.Errorf("theta table key 0 = %v, want ~500", est)
	}
	if med, ok := qt.Quantile("lat", 0.5); !ok || med < 30 || med > 70 {
		t.Errorf("quantiles table median = %v (ok=%v), want ~50", med, ok)
	}
	if est, _ := hl.Estimate("ids"); est < 1800 || est > 2200 {
		t.Errorf("hll table estimate = %v, want ~2000", est)
	}
	// 2000 uniques at K=256 is estimation mode: tolerate 4 RSE ≈ 25%.
	if est := sk.Estimate(); est < 1500 || est > 2500 {
		t.Errorf("standalone sketch estimate = %v, want ~2000", est)
	}
	th.Close()
	qt.Close()
	hl.Close()
}

func tenant(i int) string {
	return string([]byte{'t', byte('0' + i/10), byte('0' + i%10)})
}
