package stats

import "math"

// Uniform order statistics: for n iid Uniform(0,1) variables, the i-th
// minimum M(i) is Beta(i, n-i+1) distributed. The Θ sketch analysis
// (§6.1) needs moments of M(i), moments of 1/M(i) (the estimator is
// (k-1)/M(k)), and joint samples of (M(k), M(k+r)) — the adversary
// chooses between Θ = M(k) (hide nothing) and Θ = M(k+r) (hide r).

// EOrderStat returns E[M(i)] = i/(n+1).
func EOrderStat(i, n int) float64 {
	checkIN(i, n)
	return float64(i) / float64(n+1)
}

// VarOrderStat returns Var[M(i)] = i(n-i+1) / ((n+1)²(n+2)).
func VarOrderStat(i, n int) float64 {
	checkIN(i, n)
	fi, fn := float64(i), float64(n)
	return fi * (fn - fi + 1) / ((fn + 1) * (fn + 1) * (fn + 2))
}

// EInvOrderStat returns E[1/M(i)] = n/(i-1); requires i > 1.
func EInvOrderStat(i, n int) float64 {
	checkIN(i, n)
	if i <= 1 {
		panic("stats: E[1/M(i)] diverges for i <= 1")
	}
	return float64(n) / float64(i-1)
}

// EInvSqOrderStat returns E[1/M(i)²] = n(n-1)/((i-1)(i-2)); requires
// i > 2.
func EInvSqOrderStat(i, n int) float64 {
	checkIN(i, n)
	if i <= 2 {
		panic("stats: E[1/M(i)²] diverges for i <= 2")
	}
	return float64(n) * float64(n-1) / (float64(i-1) * float64(i-2))
}

func checkIN(i, n int) {
	if i < 1 || i > n {
		panic("stats: order statistic index out of range")
	}
}

// SampleOrderStatPair draws one joint sample of (M(k), M(k+r)) for n
// uniforms, using the Dirichlet/gamma representation: with
// G1 ~ Gamma(k), G2 ~ Gamma(r), G3 ~ Gamma(n+1-k-r) independent,
//
//	M(k) = G1/(G1+G2+G3),   M(k+r) = (G1+G2)/(G1+G2+G3).
//
// This costs O(1) per sample instead of O(n log n) for sorting a
// simulated stream, which is what makes the Table 1 Monte-Carlo
// columns cheap to reproduce.
func SampleOrderStatPair(rng *RNG, n, k, r int) (mk, mkr float64) {
	if k < 1 || r < 1 || k+r > n {
		panic("stats: invalid (n, k, r) for order-stat pair")
	}
	g1 := rng.Gamma(float64(k))
	g2 := rng.Gamma(float64(r))
	g3 := rng.Gamma(float64(n + 1 - k - r))
	s := g1 + g2 + g3
	return g1 / s, (g1 + g2) / s
}

// SampleOrderStat draws one M(k) for n uniforms.
func SampleOrderStat(rng *RNG, n, k int) float64 {
	return rng.Beta(float64(k), float64(n-k+1))
}

// LogJointOrderStatDensity returns the log joint density of
// (M(k), M(k+r)) at (x, y), 0 < x < y < 1:
//
//	f(x,y) = n!/((k-1)!(r-1)!(n-k-r)!) ·
//	         x^(k-1) (y-x)^(r-1) (1-y)^(n-k-r).
//
// Evaluated in log space so n in the tens of thousands is fine.
func LogJointOrderStatDensity(n, k, r int, x, y float64) float64 {
	if x <= 0 || y <= x || y >= 1 {
		return math.Inf(-1)
	}
	lc := lgamma(float64(n+1)) - lgamma(float64(k)) - lgamma(float64(r)) - lgamma(float64(n-k-r+1))
	return lc +
		float64(k-1)*math.Log(x) +
		float64(r-1)*math.Log(y-x) +
		float64(n-k-r)*math.Log(1-y)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
