package stats

import (
	"math"
	"testing"
)

func TestFloat64NeverZero(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		if f := r.Float64(); f <= 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside (0,1)", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(a): mean a, variance a.
	r := NewRNG(11)
	for _, a := range []float64{0.5, 1, 2.5, 10, 1024} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(a)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-a)/a > 0.03 {
			t.Errorf("Gamma(%v) mean = %v", a, mean)
		}
		if math.Abs(variance-a)/a > 0.1 {
			t.Errorf("Gamma(%v) variance = %v", a, variance)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	NewRNG(1).Gamma(0)
}

func TestBetaMoments(t *testing.T) {
	// Beta(a,b): mean a/(a+b), variance ab/((a+b)²(a+b+1)).
	r := NewRNG(13)
	for _, ab := range [][2]float64{{2, 3}, {1, 1}, {10, 90}} {
		a, b := ab[0], ab[1]
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Beta(a, b)
			if x <= 0 || x >= 1 {
				t.Fatalf("Beta sample %v outside (0,1)", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		wantMean := a / (a + b)
		wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
		variance := sumSq/n - mean*mean
		if math.Abs(mean-wantMean) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", a, b, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Beta(%v,%v) variance = %v, want %v", a, b, variance, wantVar)
		}
	}
}

func TestOrderStatClosedForms(t *testing.T) {
	// E[M(k)] for n=10, k=3 is 3/11.
	if got := EOrderStat(3, 10); math.Abs(got-3.0/11) > 1e-12 {
		t.Errorf("EOrderStat = %v", got)
	}
	// E[1/M(k)] = n/(k-1).
	if got := EInvOrderStat(5, 100); got != 25 {
		t.Errorf("EInvOrderStat = %v, want 25", got)
	}
	// E[1/M(k)²] = n(n-1)/((k-1)(k-2)).
	if got := EInvSqOrderStat(4, 10); math.Abs(got-90.0/6) > 1e-12 {
		t.Errorf("EInvSqOrderStat = %v, want 15", got)
	}
}

func TestOrderStatPanics(t *testing.T) {
	cases := []func(){
		func() { EOrderStat(0, 5) },
		func() { EOrderStat(6, 5) },
		func() { EInvOrderStat(1, 5) },
		func() { EInvSqOrderStat(2, 5) },
		func() { SampleOrderStatPair(NewRNG(1), 5, 3, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSampleOrderStatMoments(t *testing.T) {
	// The Beta sampler must reproduce E[M(k)] and Var[M(k)].
	r := NewRNG(17)
	n, k := 1000, 50
	const trials = 50000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := SampleOrderStat(r, n, k)
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	if math.Abs(mean-EOrderStat(k, n))/EOrderStat(k, n) > 0.02 {
		t.Errorf("sampled E[M(k)] = %v, want %v", mean, EOrderStat(k, n))
	}
	variance := sumSq/trials - mean*mean
	if math.Abs(variance-VarOrderStat(k, n))/VarOrderStat(k, n) > 0.1 {
		t.Errorf("sampled Var[M(k)] = %v, want %v", variance, VarOrderStat(k, n))
	}
}

func TestSampleOrderStatPairMoments(t *testing.T) {
	// Joint sampler marginals must match the closed forms, and the
	// ordering M(k) < M(k+r) must always hold.
	r := NewRNG(19)
	n, k, rr := 1<<15, 1<<10, 8
	const trials = 30000
	var sumK, sumKR float64
	for i := 0; i < trials; i++ {
		mk, mkr := SampleOrderStatPair(r, n, k, rr)
		if mk >= mkr {
			t.Fatal("M(k) >= M(k+r) in joint sample")
		}
		sumK += mk
		sumKR += mkr
	}
	if got, want := sumK/trials, EOrderStat(k, n); math.Abs(got-want)/want > 0.01 {
		t.Errorf("E[M(k)] sampled %v, want %v", got, want)
	}
	if got, want := sumKR/trials, EOrderStat(k+rr, n); math.Abs(got-want)/want > 0.01 {
		t.Errorf("E[M(k+r)] sampled %v, want %v", got, want)
	}
}

func TestJointDensityNormalizes(t *testing.T) {
	// ∫∫ f = 1 over the window (the mass outside ±12σ is negligible).
	n, k, r := 1<<15, 1<<10, 8
	total := OrderStatExpectation2D(n, k, r, 600, func(x, y float64) float64 { return 1 })
	if math.Abs(total-1) > 1e-4 {
		t.Errorf("joint density integrates to %v", total)
	}
}

func TestQuadratureMatchesClosedForms(t *testing.T) {
	n, k, r := 1<<15, 1<<10, 8
	// E[M(k)] via 2D quadrature.
	em := OrderStatExpectation2D(n, k, r, 600, func(x, y float64) float64 { return x })
	if want := EOrderStat(k, n); math.Abs(em-want)/want > 1e-3 {
		t.Errorf("quadrature E[M(k)] = %v, want %v", em, want)
	}
	// E[1/M(k+r)] via 2D quadrature vs closed form n/(k+r-1).
	einv := OrderStatExpectation2D(n, k, r, 600, func(x, y float64) float64 { return 1 / y })
	if want := EInvOrderStat(k+r, n); math.Abs(einv-want)/want > 1e-3 {
		t.Errorf("quadrature E[1/M(k+r)] = %v, want %v", einv, want)
	}
}

func TestQuadrature1DMatchesClosedForm(t *testing.T) {
	n, k := 1<<15, 1<<10
	e := OrderStatExpectation1D(n, k, 400, func(x float64) float64 { return 1 / x })
	if want := EInvOrderStat(k, n); math.Abs(e-want)/want > 1e-3 {
		t.Errorf("1D quadrature E[1/M(k)] = %v, want %v", e, want)
	}
	// The sequential estimator is unbiased: E[(k-1)/M(k)] = n.
	est := OrderStatExpectation1D(n, k, 400, func(x float64) float64 { return float64(k-1) / x })
	if math.Abs(est-float64(n))/float64(n) > 1e-3 {
		t.Errorf("E[(k-1)/M(k)] = %v, want %d", est, n)
	}
}

func TestMCMatchesQuadrature(t *testing.T) {
	// The two independent evaluation paths of Table 1 must agree.
	n, k, r := 1<<15, 1<<10, 8
	quad := OrderStatExpectation2D(n, k, r, 600, func(x, y float64) float64 {
		return float64(k-1) / y
	})
	rng := NewRNG(23)
	const trials = 40000
	var sum float64
	for i := 0; i < trials; i++ {
		_, mkr := SampleOrderStatPair(rng, n, k, r)
		sum += float64(k-1) / mkr
	}
	mc := sum / trials
	if math.Abs(mc-quad)/quad > 0.01 {
		t.Errorf("MC %v vs quadrature %v", mc, quad)
	}
}

func BenchmarkGamma(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Gamma(1024)
	}
}

func BenchmarkSampleOrderStatPair(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		SampleOrderStatPair(r, 1<<15, 1<<10, 8)
	}
}
