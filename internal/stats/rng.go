// Package stats provides the probability machinery behind the paper's
// Section 6 error analysis: random samplers (normal, gamma, beta),
// closed-form moments of uniform order statistics, joint sampling of
// order-statistic pairs, and numerical integration against the joint
// order-statistic density. Everything is self-contained (no math/rand)
// so results are reproducible across Go versions.
package stats

import "math"

// RNG is a small, fast, seedable generator (SplitMix64 core) with
// samplers for the distributions the error analysis needs. Not safe
// for concurrent use.
type RNG struct {
	state uint64
	// cached second normal variate from Box-Muller.
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in (0, 1): zero is excluded so logs
// and reciprocals are always finite.
func (r *RNG) Float64() float64 {
	for {
		f := float64(r.Uint64()>>11) / (1 << 53)
		if f > 0 {
			return f
		}
	}
}

// Normal returns a standard normal variate (Box-Muller with caching).
func (r *RNG) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	u1, u2 := r.Float64(), r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Gamma returns a Gamma(shape, 1) variate using Marsaglia & Tsang's
// squeeze method; shape must be positive. For shape < 1 the standard
// boosting identity Gamma(a) = Gamma(a+1)·U^(1/a) is applied.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: sample at shape+1 and scale down.
		u := r.Float64()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) variate via the two-gamma construction.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}
