package stats

import "math"

// Numerical integration against order-statistic densities. The strong
// adversary's expectation (§6.1, Figure 3) has no closed form; the
// paper evaluates it numerically. We integrate the joint density of
// (M(k), M(k+r)) over a window covering ±windowSigmas standard
// deviations around each marginal mean — outside it the density is
// negligible (the marginals are Beta with std ≈ sqrt(k)/n).

const windowSigmas = 12.0

// OrderStatExpectation2D computes E[g(M(k), M(k+r))] for n uniforms by
// iterated Simpson integration on steps×steps panels. steps is rounded
// up to the next even number; 600 gives ~7 significant digits for the
// Table 1 geometry (n=2^15, k=2^10, r=8).
func OrderStatExpectation2D(n, k, r int, steps int, g func(x, y float64) float64) float64 {
	if steps < 8 {
		steps = 8
	}
	if steps%2 != 0 {
		steps++
	}
	x0, x1 := marginalWindow(k, n)
	y0, y1 := marginalWindow(k+r, n)
	if y1 <= x0 {
		panic("stats: degenerate integration window")
	}
	hx := (x1 - x0) / float64(steps)
	var outer float64
	for i := 0; i <= steps; i++ {
		x := x0 + float64(i)*hx
		inner := innerIntegral(n, k, r, x, math.Max(y0, x), y1, steps, g)
		outer += simpsonWeight(i, steps) * inner
	}
	return outer * hx / 3
}

// innerIntegral computes ∫ f(x,y)·g(x,y) dy over [ylo, yhi] by Simpson.
func innerIntegral(n, k, r int, x, ylo, yhi float64, steps int, g func(x, y float64) float64) float64 {
	if yhi <= ylo {
		return 0
	}
	h := (yhi - ylo) / float64(steps)
	var sum float64
	for j := 0; j <= steps; j++ {
		y := ylo + float64(j)*h
		ld := LogJointOrderStatDensity(n, k, r, x, y)
		if math.IsInf(ld, -1) {
			continue
		}
		sum += simpsonWeight(j, steps) * math.Exp(ld) * g(x, y)
	}
	return sum * h / 3
}

func simpsonWeight(i, n int) float64 {
	switch {
	case i == 0 || i == n:
		return 1
	case i%2 == 1:
		return 4
	default:
		return 2
	}
}

// marginalWindow returns integration bounds for M(i): mean ± 12σ of the
// Beta(i, n-i+1) marginal, clipped to (0, 1).
func marginalWindow(i, n int) (lo, hi float64) {
	mean := EOrderStat(i, n)
	sd := math.Sqrt(VarOrderStat(i, n))
	lo = mean - windowSigmas*sd
	hi = mean + windowSigmas*sd
	if lo < 1e-12 {
		lo = 1e-12
	}
	if hi > 1-1e-12 {
		hi = 1 - 1e-12
	}
	return lo, hi
}

// OrderStatExpectation1D computes E[g(M(k))] for n uniforms by Simpson
// integration of the Beta(k, n-k+1) marginal.
func OrderStatExpectation1D(n, k int, steps int, g func(x float64) float64) float64 {
	if steps < 8 {
		steps = 8
	}
	if steps%2 != 0 {
		steps++
	}
	lo, hi := marginalWindow(k, n)
	h := (hi - lo) / float64(steps)
	lc := lgamma(float64(n+1)) - lgamma(float64(k)) - lgamma(float64(n-k+1))
	var sum float64
	for i := 0; i <= steps; i++ {
		x := lo + float64(i)*h
		ld := lc + float64(k-1)*math.Log(x) + float64(n-k)*math.Log(1-x)
		sum += simpsonWeight(i, steps) * math.Exp(ld) * g(x)
	}
	return sum * h / 3
}
