package table

import (
	"time"

	"github.com/fcds/fcds/internal/core"
)

// SketchTable is the engine-parameterized keyed table: the whole
// sketch-table lifecycle — keyed ingestion, wait-free per-key queries,
// rollup, whole-table snapshots, eviction spill, drain, close —
// written once against core.Engine and shared by every sketch family.
// The exported ThetaTable / QuantilesTable / HLLTable embed it and add
// only family-flavoured method names and configs.
type SketchTable[K Key, V, S, C any] struct {
	t   *Table[K, V, S, C]
	eng core.Engine[V, S, C]
}

// NewEngineTable builds a keyed table whose per-key sketches come from
// the given engine; Close it when done. Composites that are generic
// themselves (the windowed table) build on this constructor directly.
func NewEngineTable[K Key, V, S, C any](cfg Config[K], eng core.Engine[V, S, C]) *SketchTable[K, V, S, C] {
	return &SketchTable[K, V, S, C]{t: newTable(cfg, eng), eng: eng}
}

// Engine returns the engine whose sketches populate the table.
func (st *SketchTable[K, V, S, C]) Engine() core.Engine[V, S, C] { return st.eng }

// Query returns the key's current wait-free query snapshot; false when
// the key has never been updated (or was evicted). The snapshot may
// miss up to Relaxation() of the key's latest updates.
func (st *SketchTable[K, V, S, C]) Query(k K) (S, bool) { return st.t.query(k) }

// CompactKey returns an immutable serializable snapshot of one key's
// sketch; false when the key is not live.
func (st *SketchTable[K, V, S, C]) CompactKey(k K) (C, bool) { return st.t.compactKey(k) }

// Rollup merges every live key's sketch into one compact — the
// all-keys aggregate, by the family's mergeability. Per-key compaction
// fans out across Config.ReadParallelism workers (GOMAXPROCS by
// default) with per-worker aggregators merged pairwise; every fold
// order of the same per-key compacts is a valid aggregate, so the
// parallel and serial results agree.
func (st *SketchTable[K, V, S, C]) Rollup() C {
	start := time.Now()
	c := st.t.rollup(st.t.readDegree())
	st.t.observeDur(&st.t.rollupHist, start)
	return c
}

// Relaxation returns the per-key bound r = 2·N·b on updates a per-key
// query may miss (Theorem 1, applied to one key's sketch).
func (st *SketchTable[K, V, S, C]) Relaxation() int { return st.eng.Relaxation() }

// Keys returns the number of live keys.
func (st *SketchTable[K, V, S, C]) Keys() int { return st.t.Keys() }

// Evictions returns the number of keys evicted so far.
func (st *SketchTable[K, V, S, C]) Evictions() int64 { return st.t.Evictions() }

// Promotions returns the number of hot-key promotions performed (0
// unless a HotKeyPolicy is configured).
func (st *SketchTable[K, V, S, C]) Promotions() int64 { return st.t.Promotions() }

// Demotions returns the number of hot-key demotions performed (0
// unless HotKeyPolicy.CoolAfter is configured).
func (st *SketchTable[K, V, S, C]) Demotions() int64 { return st.t.Demotions() }

// DemoteCooled rebuilds promoted keys idle for at least
// HotKeyPolicy.CoolAfter one ladder step down, shedding their enlarged
// buffers; returns the number demoted. Call periodically, like
// EvictExpired.
func (st *SketchTable[K, V, S, C]) DemoteCooled() int { return st.t.DemoteCooled() }

// Stats returns a snapshot of the table's operational counters.
func (st *SketchTable[K, V, S, C]) Stats() Stats { return st.t.Stats() }

// Pool returns the table's propagation executor.
func (st *SketchTable[K, V, S, C]) Pool() *core.PropagatorPool { return st.t.Pool() }

// NumWriters returns the configured writer-handle count N.
func (st *SketchTable[K, V, S, C]) NumWriters() int { return st.t.NumWriters() }

// EvictExpired evicts keys idle longer than the configured TTL.
func (st *SketchTable[K, V, S, C]) EvictExpired() int { return st.t.EvictExpired() }

// Drain flushes all writer slots of all keys (writers must be
// quiescent), making every prior update visible to queries.
func (st *SketchTable[K, V, S, C]) Drain() { st.t.Drain() }

// Snapshot captures every live key's compact sketch into a mergeable,
// serializable table snapshot. Per-key compaction fans out across
// Config.ReadParallelism workers (GOMAXPROCS by default).
func (st *SketchTable[K, V, S, C]) Snapshot() *TableSnapshot[K, C] {
	start := time.Now()
	s := NewTableSnapshot[K](st.eng)
	st.t.snapshotInto(s, st.t.readDegree())
	st.t.observeDur(&st.t.snapHist, start)
	return s
}

// SnapshotBinary serializes the whole table (SnapshotAppend into a
// fresh buffer).
func (st *SketchTable[K, V, S, C]) SnapshotBinary() ([]byte, error) {
	return st.SnapshotAppend(nil)
}

// SnapshotAppend captures the table and serializes it into dst,
// returning the extended slice — the streaming variant of
// SnapshotBinary for callers shipping periodic snapshots through a
// reusable buffer (the network server's snapshot-pull path). The
// capture serializes directly into dst — no intermediate snapshot map
// — with per-key marshalling fanned out like Snapshot's.
func (st *SketchTable[K, V, S, C]) SnapshotAppend(dst []byte) ([]byte, error) {
	start := time.Now()
	out, err := st.t.appendSnapshot(dst, st.t.readDegree())
	st.t.observeDur(&st.t.snapHist, start)
	return out, err
}

// Close drains and closes every per-key sketch and the owned pool.
func (st *SketchTable[K, V, S, C]) Close() { st.t.Close() }

// Writer returns the i-th generic writer handle (single-goroutine
// use). The family tables wrap it with their flavoured writer types.
func (st *SketchTable[K, V, S, C]) Writer(i int) *Writer[K, V, S, C] { return st.t.Writer(i) }
