package table

import (
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/metrics"
)

// readDurationBounds bucket the rollup/snapshot duration histograms:
// sub-millisecond captures up through the multi-second scans a
// millions-of-keys table produces.
var readDurationBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// observeDur records a read-path duration into the histogram slot, if
// metrics were registered; reads on unregistered tables observe
// nothing.
func (t *Table[K, V, S, C]) observeDur(p *atomic.Pointer[metrics.Histogram], start time.Time) {
	if h := p.Load(); h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// RegisterMetrics exports the table's operational counters into reg,
// labeled with the given table name. Every series is func-backed and
// read from the table's existing atomics at scrape time, so the keyed
// ingestion hot paths keep their zero-allocation budgets; the two
// duration histograms are fed from the read paths (rollup/snapshot),
// never from ingestion.
//
// Families: fcds_table_keys, fcds_table_evictions_total{cause},
// fcds_table_promotions_total, fcds_table_demotions_total,
// fcds_table_writer_cache_hits_total, fcds_table_shard_lookups_total,
// fcds_table_rollup_duration_seconds,
// fcds_table_snapshot_duration_seconds.
func (st *SketchTable[K, V, S, C]) RegisterMetrics(reg *metrics.Registry, name string) {
	t := st.t
	reg.GaugeFunc("fcds_table_keys",
		"Live keys per table.",
		func() float64 { return float64(t.Keys()) }, "table", name)
	reg.CounterFunc("fcds_table_evictions_total",
		"Keys evicted, by cause (cap = size-cap LRU, ttl = idle expiry).",
		func() float64 { return float64(t.evictCap.Load()) }, "table", name, "cause", "cap")
	reg.CounterFunc("fcds_table_evictions_total",
		"Keys evicted, by cause (cap = size-cap LRU, ttl = idle expiry).",
		func() float64 { return float64(t.evictTTL.Load()) }, "table", name, "cause", "ttl")
	reg.CounterFunc("fcds_table_promotions_total",
		"Hot-key promotions (seeded rebuilds up the ScaleUp ladder).",
		func() float64 { return float64(t.Promotions()) }, "table", name)
	reg.CounterFunc("fcds_table_demotions_total",
		"Hot-key demotions (seeded rebuilds back down the ladder).",
		func() float64 { return float64(t.Demotions()) }, "table", name)
	reg.CounterFunc("fcds_table_writer_cache_hits_total",
		"Key resolutions served by writer entry caches.",
		func() float64 { return float64(t.Stats().CacheHits) }, "table", name)
	reg.CounterFunc("fcds_table_shard_lookups_total",
		"Key resolutions that missed the writer cache and went through a shard map.",
		func() float64 { return float64(t.Stats().ShardLookups) }, "table", name)
	t.rollupHist.Store(reg.Histogram("fcds_table_rollup_duration_seconds",
		"Wall time of whole-table rollups (collect, fan-out compaction, pairwise merge).",
		readDurationBounds, "table", name))
	t.snapHist.Store(reg.Histogram("fcds_table_snapshot_duration_seconds",
		"Wall time of whole-table snapshot captures, including streaming serialization (SnapshotAppend).",
		readDurationBounds, "table", name))
}
