package table

import (
	"github.com/fcds/fcds/internal/metrics"
)

// RegisterMetrics exports the table's operational counters into reg,
// labeled with the given table name. Every series is func-backed and
// read from the table's existing atomics at scrape time, so the keyed
// ingestion hot paths keep their zero-allocation budgets.
//
// Families: fcds_table_keys, fcds_table_evictions_total{cause},
// fcds_table_promotions_total, fcds_table_demotions_total,
// fcds_table_writer_cache_hits_total, fcds_table_shard_lookups_total.
func (st *SketchTable[K, V, S, C]) RegisterMetrics(reg *metrics.Registry, name string) {
	t := st.t
	reg.GaugeFunc("fcds_table_keys",
		"Live keys per table.",
		func() float64 { return float64(t.Keys()) }, "table", name)
	reg.CounterFunc("fcds_table_evictions_total",
		"Keys evicted, by cause (cap = size-cap LRU, ttl = idle expiry).",
		func() float64 { return float64(t.evictCap.Load()) }, "table", name, "cause", "cap")
	reg.CounterFunc("fcds_table_evictions_total",
		"Keys evicted, by cause (cap = size-cap LRU, ttl = idle expiry).",
		func() float64 { return float64(t.evictTTL.Load()) }, "table", name, "cause", "ttl")
	reg.CounterFunc("fcds_table_promotions_total",
		"Hot-key promotions (seeded rebuilds up the ScaleUp ladder).",
		func() float64 { return float64(t.Promotions()) }, "table", name)
	reg.CounterFunc("fcds_table_demotions_total",
		"Hot-key demotions (seeded rebuilds back down the ladder).",
		func() float64 { return float64(t.Demotions()) }, "table", name)
	reg.CounterFunc("fcds_table_writer_cache_hits_total",
		"Key resolutions served by writer entry caches.",
		func() float64 { return float64(t.Stats().CacheHits) }, "table", name)
	reg.CounterFunc("fcds_table_shard_lookups_total",
		"Key resolutions that missed the writer cache and went through a shard map.",
		func() float64 { return float64(t.Stats().ShardLookups) }, "table", name)
}
