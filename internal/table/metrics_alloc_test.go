package table

import (
	"testing"

	"github.com/fcds/fcds/internal/metrics"
)

// TestKeyedBatchInstrumentedZeroAllocs pins the instrumented keyed
// batch ingest path at zero allocations per op: registering the table
// metrics must cost the hot path nothing, because every exported
// series is func-backed and the per-writer cache-hit/lookup cells are
// plain counters flushed once per batch. The buffer is sized so the
// measured runs never hand off to the propagator pool (pool-side merge
// allocs are global and would pollute AllocsPerRun), isolating the
// grouping + cache + resolution + instrumentation layers.
func TestKeyedBatchInstrumentedZeroAllocs(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{Writers: 1, Shards: 8},
		K:     256, MaxError: 1, BufferSize: 1 << 14,
	})
	defer tab.Close()
	reg := metrics.NewRegistry()
	tab.RegisterMetrics(reg, "alloc")

	w := tab.Writer(0)
	const batch = 512
	keys := make([]uint64, batch)
	vals := make([]uint64, batch)
	x := uint64(1)
	for i := range keys {
		keys[i] = uint64(i % 8)
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = x
	}
	// Warm up: create the 8 key sketches and fill the writer cache.
	for i := 0; i < 8; i++ {
		w.UpdateKeyedBatch(keys, vals)
	}
	if avg := testing.AllocsPerRun(50, func() {
		w.UpdateKeyedBatch(keys, vals)
	}); avg != 0 {
		t.Errorf("instrumented keyed batch allocates %.1f allocs/op, want 0", avg)
	}
	// The registry must observe the traffic through the same counters
	// the hot path maintained while staying allocation-free.
	v := reg.Values()
	if v[`fcds_table_keys{table="alloc"}`] != 8 {
		t.Errorf("fcds_table_keys = %v, want 8", v[`fcds_table_keys{table="alloc"}`])
	}
	if v[`fcds_table_writer_cache_hits_total{table="alloc"}`] == 0 {
		t.Error("fcds_table_writer_cache_hits_total = 0, want > 0")
	}
}
