package table

import (
	"fmt"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/theta"
)

// ThetaConfig configures a keyed Θ table. Zero fields take defaults
// tuned for millions of small per-key sketches: K=256, BufferSize=8.
type ThetaConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// K is each per-key sketch's nominal entry count (power of two,
	// default 256 — per-key RSE ≈ 1/sqrt(K-2) ≈ 6.3%). Per-key memory
	// grows with K; the table default trades accuracy for footprint
	// against the paper's standalone default of 4096.
	K int
	// MaxError is e, the per-key tolerated relaxation error; it sizes
	// the eager cutoff 2/e² exactly as for a standalone sketch.
	MaxError float64
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 8 (the error-derived
	// size would be 1 at table-scale K, which would hand off on every
	// update; 8 amortises pool scheduling at r = 16·N staleness).
	BufferSize int
	// Seed is the shared hash seed (default hash.DefaultSeed). All
	// tables and snapshots that are merged together must agree on it.
	Seed uint64
}

func (c ThetaConfig[K]) withDefaults() ThetaConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.K == 0 {
		c.K = 256
	}
	// Validate here, not on first update: the lazy newSketch call runs
	// under a shard write-lock, where a constructor panic would leave
	// the shard locked for any caller that recovers.
	if c.K < 16 || c.K&(c.K-1) != 0 {
		panic(fmt.Sprintf("table: ThetaConfig.K must be a power of two >= 16, got %d", c.K))
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.BufferSize == 0 {
		c.BufferSize = 8
	}
	if c.Seed == 0 {
		c.Seed = hash.DefaultSeed
	}
	return c
}

// thetaKey adapts one per-key concurrent Θ sketch. Writer handles are
// created lazily per slot: slot i is only touched by table writer i,
// or by an evictor holding the entry's exclusive lock.
type thetaKey struct {
	c  *theta.Concurrent
	ws []*theta.ConcurrentWriter
}

func (s *thetaKey) writer(i int) *theta.ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *thetaKey) updateBatch(i int, vals []uint64) { s.writer(i).UpdateUint64Batch(vals) }
func (s *thetaKey) update(i int, v uint64)           { s.writer(i).UpdateUint64(v) }
func (s *thetaKey) flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *thetaKey) query() float64          { return s.c.Estimate() }
func (s *thetaKey) compact() *theta.Compact { return s.c.Compact() }
func (s *thetaKey) close()                  { s.c.Close() }

// ThetaTable maps keys to concurrent Θ sketches: per-key unique
// counting (users per tenant, distinct URLs per endpoint, ...) with
// wait-free per-key estimates and one shared propagator pool.
type ThetaTable[K Key] struct {
	t   *Table[K, uint64, float64, *theta.Compact]
	cfg ThetaConfig[K]
}

// ThetaTableWriter is a single-goroutine keyed ingestion handle.
type ThetaTableWriter[K Key] struct {
	w *Writer[K, uint64, float64, *theta.Compact]
}

// NewTheta builds a keyed Θ table; Close it when done.
func NewTheta[K Key](cfg ThetaConfig[K]) *ThetaTable[K] {
	cfg = cfg.withDefaults()
	o := ops[uint64, float64, *theta.Compact]{
		kind:  KindTheta,
		param: uint32(cfg.K),
		newSketch: func(pool *core.PropagatorPool) keySketch[uint64, float64, *theta.Compact] {
			return &thetaKey{
				c: theta.NewConcurrent(theta.ConcurrentConfig{
					K:          cfg.K,
					Writers:    cfg.Table.Writers,
					MaxError:   cfg.MaxError,
					BufferSize: cfg.BufferSize,
					Seed:       cfg.Seed,
					Pool:       pool,
				}),
				ws: make([]*theta.ConcurrentWriter, cfg.Table.Writers),
			}
		},
		marshal: func(c *theta.Compact) ([]byte, error) { return c.MarshalBinary() },
	}
	return &ThetaTable[K]{t: newTable(cfg.Table, o), cfg: cfg}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *ThetaTable[K]) Writer(i int) *ThetaTableWriter[K] {
	return &ThetaTableWriter[K]{w: t.t.Writer(i)}
}

// Estimate returns the key's current unique-count estimate. Wait-free;
// false when the key has never been updated (or was evicted). The
// estimate may miss up to Relaxation() of the key's latest updates.
func (t *ThetaTable[K]) Estimate(k K) (float64, bool) { return t.t.query(k) }

// CompactKey returns an immutable serializable snapshot of one key's
// sketch; false when the key is not live.
func (t *ThetaTable[K]) CompactKey(k K) (*theta.Compact, bool) { return t.t.compactKey(k) }

// Rollup merges every live key's sketch into one compact Θ sketch —
// the all-keys unique count (duplicates across keys collapse, by
// Θ-sketch mergeability).
func (t *ThetaTable[K]) Rollup() *theta.Compact {
	u := theta.NewUnionSeeded(t.cfg.K, t.cfg.Seed)
	t.t.forEachCompact(func(_ K, c *theta.Compact) {
		_ = u.Add(c) // seeds match by construction
	})
	return u.Result()
}

// Relaxation returns the per-key bound r = 2·N·b on updates a per-key
// query may miss (Theorem 1, applied to one key's sketch).
func (t *ThetaTable[K]) Relaxation() int { return 2 * t.cfg.Table.Writers * t.cfg.BufferSize }

// Keys returns the number of live keys.
func (t *ThetaTable[K]) Keys() int { return t.t.Keys() }

// Evictions returns the number of keys evicted so far.
func (t *ThetaTable[K]) Evictions() int64 { return t.t.Evictions() }

// Pool returns the table's propagation executor.
func (t *ThetaTable[K]) Pool() *core.PropagatorPool { return t.t.Pool() }

// EvictExpired evicts keys idle longer than the configured TTL.
func (t *ThetaTable[K]) EvictExpired() int { return t.t.EvictExpired() }

// Drain flushes all writer slots of all keys (writers must be
// quiescent), making every prior update visible to queries.
func (t *ThetaTable[K]) Drain() { t.t.Drain() }

// Snapshot captures every live key's compact sketch into a mergeable,
// serializable table snapshot.
func (t *ThetaTable[K]) Snapshot() *TableSnapshot[K, *theta.Compact] {
	s := newThetaSnapshot[K](uint32(t.cfg.K))
	t.t.forEachCompact(func(k K, c *theta.Compact) { s.entries[k] = c })
	return s
}

// SnapshotBinary serializes the whole table (Snapshot + MarshalBinary).
func (t *ThetaTable[K]) SnapshotBinary() ([]byte, error) { return t.Snapshot().MarshalBinary() }

// Close drains and closes every per-key sketch and the owned pool.
func (t *ThetaTable[K]) Close() { t.t.Close() }

// UpdateKeyedBatch ingests parallel (key, item) slices: items are
// grouped by key and shard, then each key's run is hashed and
// Θ-pre-filtered in one fused pass (the batch ingestion pipeline)
// before entering that key's sketch.
func (w *ThetaTableWriter[K]) UpdateKeyedBatch(keys []K, items []uint64) {
	w.w.UpdateKeyedBatch(keys, items)
}

// UpdateKeyed ingests one (key, item) pair.
func (w *ThetaTableWriter[K]) UpdateKeyed(k K, item uint64) { w.w.UpdateKeyed(k, item) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *ThetaTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// newThetaSnapshot builds an empty Θ table snapshot for key type K.
func newThetaSnapshot[K Key](param uint32) *TableSnapshot[K, *theta.Compact] {
	return &TableSnapshot[K, *theta.Compact]{
		kind:    KindTheta,
		param:   param,
		entries: make(map[K]*theta.Compact),
		mergeC: func(a, b *theta.Compact) (*theta.Compact, error) {
			u := theta.NewUnionSeeded(int(param), a.Seed())
			if err := u.Add(a); err != nil {
				return nil, err
			}
			if err := u.Add(b); err != nil {
				return nil, err
			}
			return u.Result(), nil
		},
		marshalC:   func(c *theta.Compact) ([]byte, error) { return c.MarshalBinary() },
		unmarshalC: func(b []byte) (*theta.Compact, error) { return theta.UnmarshalCompact(b) },
	}
}

// UnmarshalThetaSnapshot parses a serialized Θ table snapshot keyed by
// K (the key type must match the one the snapshot was written with).
func UnmarshalThetaSnapshot[K Key](data []byte) (*TableSnapshot[K, *theta.Compact], error) {
	h, body, err := parseSnapshotHeader[K](data, KindTheta)
	if err != nil {
		return nil, err
	}
	s := newThetaSnapshot[K](h.param)
	if err := s.parseEntries(body, h.count); err != nil {
		return nil, err
	}
	return s, nil
}
