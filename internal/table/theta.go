package table

import (
	"fmt"
	"math"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/theta"
)

// ThetaConfig configures a keyed Θ table. Zero fields take defaults
// tuned for millions of small per-key sketches: K=256, BufferSize=8.
type ThetaConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// K is each per-key sketch's nominal entry count (power of two,
	// default 256 — per-key RSE ≈ 1/sqrt(K-2) ≈ 6.3%). Per-key memory
	// grows with K; the table default trades accuracy for footprint
	// against the paper's standalone default of 4096.
	K int
	// MaxError is e, the per-key tolerated relaxation error; it sizes
	// the eager cutoff 2/e² exactly as for a standalone sketch. The
	// default is the per-key sketch's own RSE 1/sqrt(K-2) (6.3% at the
	// default K=256), never below 0.04: a relaxation-error target
	// tighter than the sketch's inherent error would only lengthen the
	// serialised (mutex-guarded) per-key eager phase, which multi-
	// writer ingest pays for directly.
	MaxError float64
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 8 (the error-derived
	// size would be 1 at table-scale K, which would hand off on every
	// update; 8 amortises pool scheduling at r = 16·N staleness).
	BufferSize int
	// Seed is the shared hash seed (default hash.DefaultSeed). All
	// tables and snapshots that are merged together must agree on it.
	Seed uint64
}

func (c ThetaConfig[K]) withDefaults() ThetaConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.K == 0 {
		c.K = 256
	}
	// Validate here, not on first update: the lazy NewSketch call runs
	// under a shard write-lock, where a constructor panic would leave
	// the shard locked for any caller that recovers.
	if c.K < 16 || c.K&(c.K-1) != 0 {
		panic(fmt.Sprintf("table: ThetaConfig.K must be a power of two >= 16, got %d", c.K))
	}
	if c.MaxError == 0 {
		c.MaxError = 1 / math.Sqrt(float64(c.K-2))
		if c.MaxError < 0.04 {
			c.MaxError = 0.04
		}
	}
	if c.BufferSize == 0 {
		c.BufferSize = 8
	}
	if c.Seed == 0 {
		c.Seed = hash.DefaultSeed
	}
	return c
}

// Engine returns the fully defaulted table configuration and the bound
// per-key Θ sketch engine this config describes. Composites that
// layer on the generic table (the windowed table) start here.
func (c ThetaConfig[K]) Engine() (Config[K], *theta.Engine) {
	c = c.withDefaults()
	return c.Table, theta.NewEngine(theta.ConcurrentConfig{
		K:          c.K,
		Writers:    c.Table.Writers,
		MaxError:   c.MaxError,
		BufferSize: c.BufferSize,
		Seed:       c.Seed,
	})
}

// ThetaTable maps keys to concurrent Θ sketches: per-key unique
// counting (users per tenant, distinct URLs per endpoint, ...) with
// wait-free per-key estimates and one shared propagator pool. The
// lifecycle — rollup, snapshots, eviction, drain — is the embedded
// generic SketchTable's.
type ThetaTable[K Key] struct {
	SketchTable[K, uint64, float64, *theta.Compact]
	hashItem func(string) uint64
}

// ThetaTableWriter is a single-goroutine keyed ingestion handle.
type ThetaTableWriter[K Key] struct {
	w        *Writer[K, uint64, float64, *theta.Compact]
	hashItem func(string) uint64
}

// NewTheta builds a keyed Θ table; Close it when done.
func NewTheta[K Key](cfg ThetaConfig[K]) *ThetaTable[K] {
	tcfg, eng := cfg.Engine()
	return &ThetaTable[K]{
		SketchTable: *NewEngineTable[K](tcfg, core.Engine[uint64, float64, *theta.Compact](eng)),
		hashItem:    eng.HashString,
	}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *ThetaTable[K]) Writer(i int) *ThetaTableWriter[K] {
	return &ThetaTableWriter[K]{w: t.SketchTable.Writer(i), hashItem: t.hashItem}
}

// Estimate returns the key's current unique-count estimate. Wait-free;
// false when the key has never been updated (or was evicted). The
// estimate may miss up to Relaxation() of the key's latest updates.
func (t *ThetaTable[K]) Estimate(k K) (float64, bool) { return t.Query(k) }

// UpdateKeyedBatch ingests parallel (key, item) slices: items are
// grouped by key and shard, then each key's run is hashed and
// Θ-pre-filtered in one fused pass (the batch ingestion pipeline)
// before entering that key's sketch.
func (w *ThetaTableWriter[K]) UpdateKeyedBatch(keys []K, items []uint64) {
	w.w.UpdateKeyedBatch(keys, items)
}

// UpdateKeyedStringBatch ingests parallel (key, string item) slices:
// each item is hashed to Θ space in the grouping pass (zero-alloc
// string hashing), so log pipelines need no pre-hash step.
func (w *ThetaTableWriter[K]) UpdateKeyedStringBatch(keys []K, items []string) {
	w.w.updateKeyedStringBatch(keys, items, w.hashItem)
}

// UpdateKeyed ingests one (key, item) pair.
func (w *ThetaTableWriter[K]) UpdateKeyed(k K, item uint64) { w.w.UpdateKeyed(k, item) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *ThetaTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// UnmarshalThetaSnapshot parses a serialized Θ table snapshot keyed by
// K (the key type must match the one the snapshot was written with).
func UnmarshalThetaSnapshot[K Key](data []byte) (*TableSnapshot[K, *theta.Compact], error) {
	return unmarshalSnapshot[K](data, KindTheta, func(param uint32) core.CompactCodec[*theta.Compact] {
		return theta.NewEngine(theta.ConcurrentConfig{K: int(param)})
	})
}
