package table

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/theta"
)

// These property tests pin the generic engine's snapshot round trip:
// splitting a stream across sketches, compacting each ("evicting"),
// serializing, unmarshalling and merging must answer like one sketch
// that ingested the whole stream directly. Every trial is seeded, so
// failures reproduce.

// evictMergeRoundTrip ingests each stream into its own engine sketch,
// compacts and serializes it (the evict-spill shape), parses the blobs
// back and merges them; direct ingests the concatenation into one
// sketch. Both compacts are returned for family-specific comparison.
func evictMergeRoundTrip[V, S, C any](t *testing.T, eng core.Engine[V, S, C], streams [][]V) (merged, direct C) {
	t.Helper()
	pool := core.NewPropagatorPool(2)
	defer pool.Close()

	var blobs [][]byte
	for _, st := range streams {
		sk := eng.NewSketch(pool)
		sk.UpdateBatch(0, st)
		sk.Flush(0)
		blob, err := eng.MarshalCompact(sk.Compact())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		sk.Close()
		blobs = append(blobs, blob)
	}
	agg := eng.NewAggregator()
	for _, b := range blobs {
		c, err := eng.UnmarshalCompact(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := agg.Add(c); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	merged = agg.Result()

	dsk := eng.NewSketch(pool)
	for _, st := range streams {
		dsk.UpdateBatch(0, st)
	}
	dsk.Flush(0)
	direct = dsk.Compact()
	dsk.Close()
	return merged, direct
}

// splitStream cuts a stream into 1..4 random contiguous parts.
func splitStream[V any](rng *rand.Rand, vs []V) [][]V {
	parts := 1 + rng.Intn(4)
	var out [][]V
	rest := vs
	for i := parts; i > 1 && len(rest) > 0; i-- {
		n := rng.Intn(len(rest) + 1)
		out = append(out, rest[:n])
		rest = rest[n:]
	}
	out = append(out, rest)
	return out
}

// TestEnginePropertyTheta: exact-mode Θ — the merged sample set equals
// the direct one, so estimates match exactly.
func TestEnginePropertyTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfcd5))
	for trial := 0; trial < 20; trial++ {
		eng := theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: 1, MaxError: 1})
		n := 1 + rng.Intn(800) // < K: exact mode
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = rng.Uint64()
		}
		merged, direct := evictMergeRoundTrip[uint64, float64, *theta.Compact](t, eng, splitStream(rng, vs))
		if em, ed := merged.Estimate(), direct.Estimate(); em != ed {
			t.Fatalf("trial %d: merged estimate %v != direct %v (n=%d)", trial, em, ed, n)
		}
		if merged.Retained() != direct.Retained() {
			t.Fatalf("trial %d: merged retained %d != direct %d", trial, merged.Retained(), direct.Retained())
		}
	}
}

// TestEnginePropertyHLL: register-wise max is split-invariant, so the
// merged and direct register sets give identical estimates at any
// stream size.
func TestEnginePropertyHLL(t *testing.T) {
	rng := rand.New(rand.NewSource(0x477))
	for trial := 0; trial < 20; trial++ {
		eng := hll.NewEngine(hll.ConcurrentConfig{Precision: 10, Writers: 1})
		n := 1 + rng.Intn(20000)
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = rng.Uint64()
		}
		merged, direct := evictMergeRoundTrip[uint64, float64, *hll.Sketch](t, eng, splitStream(rng, vs))
		if em, ed := merged.Estimate(), direct.Estimate(); em != ed {
			t.Fatalf("trial %d: merged estimate %v != direct %v (n=%d)", trial, em, ed, n)
		}
	}
}

// TestEnginePropertyQuantiles: merge order may differ from direct
// ingest (compaction coins), so equality is statistical: every
// φ-quantile of the merged sketch must sit within the a-priori rank
// error (with slack for the extra merge level) of the true rank.
func TestEnginePropertyQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9a41))
	const k = 128
	eps := 4 * quantiles.NormalizedRankError(k)
	for trial := 0; trial < 10; trial++ {
		eng := quantiles.NewEngine(quantiles.ConcurrentConfig{K: k, Writers: 1})
		n := 1000 + rng.Intn(20000)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = float64(i) // true φ-quantile is φ·n
		}
		rng.Shuffle(n, func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		merged, _ := evictMergeRoundTrip[float64, *quantiles.Snapshot, *quantiles.Sketch](t, eng, splitStream(rng, vs))
		if got, want := merged.N(), uint64(n); got != want {
			t.Fatalf("trial %d: merged N = %d, want %d", trial, got, want)
		}
		for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			got := merged.Quantile(phi)
			if dev := math.Abs(got/float64(n) - phi); dev > eps {
				t.Fatalf("trial %d: merged q(%v) = %v of n=%d (rank dev %.4f > %.4f)",
					trial, phi, got, n, dev, eps)
			}
		}
	}
}

// TestEngineSketchReset: Reset restores the empty state — a sketch
// that ingested garbage, Reset, then ingested the real stream must
// answer exactly like a fresh sketch, for every family.
func TestEngineSketchReset(t *testing.T) {
	pool := core.NewPropagatorPool(1)
	defer pool.Close()
	rng := rand.New(rand.NewSource(0x7e5e7))

	junkU := make([]uint64, 500)
	valsU := make([]uint64, 700)
	for i := range junkU {
		junkU[i] = rng.Uint64()
	}
	for i := range valsU {
		valsU[i] = rng.Uint64()
	}

	runReset := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s: reset sketch = %v, fresh sketch = %v", name, got, want)
		}
	}

	{
		eng := theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: 2, MaxError: 1})
		sk := eng.NewSketch(pool)
		sk.UpdateBatch(0, junkU)
		sk.UpdateBatch(1, junkU[:100])
		sk.Flush(0)
		sk.Reset()
		sk.UpdateBatch(0, valsU)
		sk.Flush(0)
		fresh := eng.NewSketch(pool)
		fresh.UpdateBatch(0, valsU)
		fresh.Flush(0)
		runReset("theta", sk.Query(), fresh.Query())
		sk.Close()
		fresh.Close()
	}
	{
		eng := hll.NewEngine(hll.ConcurrentConfig{Precision: 10, Writers: 2})
		sk := eng.NewSketch(pool)
		sk.UpdateBatch(0, junkU)
		sk.Flush(0)
		sk.Reset()
		sk.UpdateBatch(0, valsU)
		sk.Flush(0)
		fresh := eng.NewSketch(pool)
		fresh.UpdateBatch(0, valsU)
		fresh.Flush(0)
		runReset("hll", sk.Query(), fresh.Query())
		sk.Close()
		fresh.Close()
	}
	{
		qeng := quantiles.NewEngine(quantiles.ConcurrentConfig{K: 64, Writers: 2})
		sk := qeng.NewSketch(pool)
		sk.UpdateBatch(0, []float64{1e9, -1e9, 42})
		sk.Flush(0)
		sk.Reset()
		vals := make([]float64, 5000)
		for i := range vals {
			vals[i] = float64(i)
		}
		sk.UpdateBatch(0, vals)
		sk.Flush(0)
		snap := sk.Query()
		if snap.N() != 5000 {
			t.Errorf("quantiles reset: N = %d, want 5000 (junk forgotten)", snap.N())
		}
		if min, max := snap.Min(), snap.Max(); min != 0 || max != 4999 {
			t.Errorf("quantiles reset: range [%v, %v], want [0, 4999]", min, max)
		}
		sk.Close()
	}
}

// TestEnginePropertyEvictionSpill runs the round trip through the real
// table eviction path: keys TTL-evicted from two tables spill
// serialized compacts via OnEvict; parsing and merging the spills must
// reproduce the per-key direct-ingest estimates exactly.
func TestEnginePropertyEvictionSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(0x591))
	const keys = 8
	perKey := make(map[string][]uint64)
	spills := make(map[string][][]byte)

	_, eng := ThetaConfig[string]{K: 1024, MaxError: 1}.Engine()
	for node := 0; node < 2; node++ {
		now := time.Now().UnixNano()
		tab := NewTheta(ThetaConfig[string]{
			Table: Config[string]{
				Writers: 1, Shards: 4, TTL: time.Hour,
				OnEvict: func(k string, snap []byte) {
					if snap == nil {
						t.Errorf("nil spill for key %q", k)
						return
					}
					spills[k] = append(spills[k], snap)
				},
			},
			K: 1024, MaxError: 1,
		})
		tab.t.now = func() int64 { return now }
		w := tab.Writer(0)
		for ki := 0; ki < keys; ki++ {
			key := fmt.Sprintf("k%d", ki)
			n := 1 + rng.Intn(300)
			vals := make([]uint64, n)
			ks := make([]string, n)
			for i := range vals {
				vals[i] = rng.Uint64()
				ks[i] = key
			}
			perKey[key] = append(perKey[key], vals...)
			w.UpdateKeyedBatch(ks, vals)
		}
		now += (2 * time.Hour).Nanoseconds()
		if got := tab.EvictExpired(); got != keys {
			t.Fatalf("node %d evicted %d keys, want %d", node, got, keys)
		}
		tab.Close()
	}

	for key, vals := range perKey {
		agg := eng.NewAggregator()
		for _, blob := range spills[key] {
			c, err := eng.UnmarshalCompact(blob)
			if err != nil {
				t.Fatalf("key %q: unmarshal spill: %v", key, err)
			}
			if err := agg.Add(c); err != nil {
				t.Fatalf("key %q: merge spill: %v", key, err)
			}
		}
		direct := theta.NewQuickSelectSeeded(1024, eng.Seed())
		for _, v := range vals {
			direct.UpdateUint64(v)
		}
		if got, want := agg.Result().Estimate(), direct.Estimate(); got != want {
			t.Fatalf("key %q: merged spills = %v, direct = %v", key, got, want)
		}
	}
}
