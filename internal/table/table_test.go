package table

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/theta"
)

// keyOf deterministically names test keys.
func keyOf(i int) string { return fmt.Sprintf("tenant-%d", i) }

// TestThetaTableExactSmallKeys checks per-key exactness for small
// per-key streams after a drain: with the eager phase on, a small
// key's sketch is in exact mode, so the estimate equals the true
// per-key cardinality.
func TestThetaTableExactSmallKeys(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 16}})
	defer tab.Close()
	w := tab.Writer(0)
	const keys, perKey = 100, 50
	var ks []string
	var vs []uint64
	for i := 0; i < keys; i++ {
		for j := 0; j < perKey; j++ {
			ks = append(ks, keyOf(i))
			vs = append(vs, uint64(i*perKey+j))
		}
	}
	w.UpdateKeyedBatch(ks, vs)
	tab.Drain()
	if got := tab.Keys(); got != keys {
		t.Fatalf("Keys() = %d, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		est, ok := tab.Estimate(keyOf(i))
		if !ok {
			t.Fatalf("key %q missing", keyOf(i))
		}
		if est != perKey {
			t.Errorf("key %q estimate = %v, want exactly %d (exact mode)", keyOf(i), est, perKey)
		}
	}
	if _, ok := tab.Estimate("never-seen"); ok {
		t.Error("Estimate on unknown key reported ok")
	}
}

// TestThetaTableErrorBoundLargeKeys ingests estimation-mode streams
// into many keys concurrently and checks each per-key estimate is
// within the sketch's statistical error (5 RSE) of the truth.
func TestThetaTableErrorBoundLargeKeys(t *testing.T) {
	const (
		writers = 4
		keys    = 20
		perKey  = 20000
		k       = 1024
	)
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{Writers: writers, Shards: 16},
		K:     k,
	})
	defer tab.Close()
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks := make([]string, 0, 256)
			vs := make([]uint64, 0, 256)
			// Writer wi ingests its disjoint quarter of every key's
			// stream, interleaving keys within each batch.
			for j := wi * perKey / writers; j < (wi+1)*perKey/writers; j++ {
				for i := 0; i < keys; i++ {
					ks = append(ks, keyOf(i))
					vs = append(vs, uint64(i*perKey+j))
					if len(ks) == cap(ks) {
						w.UpdateKeyedBatch(ks, vs)
						ks, vs = ks[:0], vs[:0]
					}
				}
			}
			w.UpdateKeyedBatch(ks, vs)
		}(wi)
	}
	wg.Wait()
	tab.Drain()
	rse := 1 / math.Sqrt(k-2)
	for i := 0; i < keys; i++ {
		est, ok := tab.Estimate(keyOf(i))
		if !ok {
			t.Fatalf("key %q missing", keyOf(i))
		}
		if re := math.Abs(est-perKey) / perKey; re > 5*rse {
			t.Errorf("key %q estimate = %.0f, want %d ±%.1f%% (got %.1f%%)",
				keyOf(i), est, perKey, 5*rse*100, re*100)
		}
	}
}

// TestTableGoroutineCountIndependentOfKeys pins the acceptance
// criterion: a table with 100k keys runs on one fixed propagator pool,
// so the goroutine count does not grow with the key count.
func TestTableGoroutineCountIndependentOfKeys(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{Writers: 1, Shards: 1024, Propagators: 4},
	})
	defer tab.Close()
	w := tab.Writer(0)
	const keys = 100_000
	base := runtime.NumGoroutine()
	ks := make([]uint64, 0, 1024)
	vs := make([]uint64, 0, 1024)
	for i := 0; i < keys; i++ {
		ks = append(ks, uint64(i))
		vs = append(vs, uint64(i))
		if len(ks) == cap(ks) {
			w.UpdateKeyedBatch(ks, vs)
			ks, vs = ks[:0], vs[:0]
		}
	}
	w.UpdateKeyedBatch(ks, vs)
	if got := tab.Keys(); got != keys {
		t.Fatalf("Keys() = %d, want %d", got, keys)
	}
	if got := runtime.NumGoroutine(); got > base+8 {
		t.Fatalf("goroutines grew from %d to %d across %d keys; want growth independent of key count", base, got, keys)
	}
	if got := tab.Pool().Sketches(); got != keys {
		t.Errorf("pool serves %d sketches, want %d", got, keys)
	}
}

// TestThetaTablePerItemMatchesBatch checks the keyed per-item path and
// the keyed batch path produce identical exact-mode results.
func TestThetaTablePerItemMatchesBatch(t *testing.T) {
	a := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	b := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer a.Close()
	defer b.Close()
	wa, wb := a.Writer(0), b.Writer(0)
	var ks []string
	var vs []uint64
	for i := 0; i < 1000; i++ {
		k := keyOf(i % 7)
		v := uint64(i)
		wa.UpdateKeyed(k, v)
		ks = append(ks, k)
		vs = append(vs, v)
	}
	wb.UpdateKeyedBatch(ks, vs)
	a.Drain()
	b.Drain()
	for i := 0; i < 7; i++ {
		ea, _ := a.Estimate(keyOf(i))
		eb, _ := b.Estimate(keyOf(i))
		if ea != eb {
			t.Errorf("key %q: per-item %v != batch %v", keyOf(i), ea, eb)
		}
	}
}

// TestTableRelaxationBound checks a per-key query without any flush
// misses at most r = 2·N·b updates (Theorem 1, applied per key).
func TestTableRelaxationBound(t *testing.T) {
	const bufferSize = 8
	tab := NewTheta(ThetaConfig[string]{
		Table:      Config[string]{Writers: 1, Shards: 4},
		BufferSize: bufferSize,
		MaxError:   1, // no eager phase: every update goes through buffers
	})
	defer tab.Close()
	w := tab.Writer(0)
	const n = 200
	for i := 0; i < n; i++ {
		w.UpdateKeyed("k", uint64(i))
	}
	r := tab.Relaxation()
	if r != 2*bufferSize {
		t.Fatalf("Relaxation() = %d, want %d", r, 2*bufferSize)
	}
	// The propagator may still be mid-merge; poll briefly for the
	// guaranteed floor instead of flushing (which would defeat the
	// point of the test).
	deadline := time.Now().Add(5 * time.Second)
	for {
		est, _ := tab.Estimate("k")
		if est >= float64(n-r) && est <= float64(n) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate = %v, want within [%d, %d]", est, n-r, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTableCapEvictionSpills caps the table and checks evicted keys
// spill valid serialized snapshots through OnEvict.
func TestTableCapEvictionSpills(t *testing.T) {
	var mu sync.Mutex
	spilled := map[string]float64{}
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{
			Writers: 1,
			Shards:  1, // single shard makes the LRU order deterministic
			MaxKeys: 10,
			OnEvict: func(k string, snap []byte) {
				c, err := theta.UnmarshalCompact(snap)
				if err != nil {
					t.Errorf("evicted key %q: bad spill: %v", k, err)
					return
				}
				mu.Lock()
				spilled[k] = c.Estimate()
				mu.Unlock()
			},
		},
	})
	defer tab.Close()
	w := tab.Writer(0)
	const keys, perKey = 30, 20
	for i := 0; i < keys; i++ {
		for j := 0; j < perKey; j++ {
			w.UpdateKeyed(keyOf(i), uint64(i*perKey+j))
		}
	}
	if got := tab.Keys(); got > 10 {
		t.Errorf("Keys() = %d, want <= 10 (cap)", got)
	}
	if got := tab.Evictions(); got != keys-10 {
		t.Errorf("Evictions() = %d, want %d", got, keys-10)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(spilled) != keys-10 {
		t.Fatalf("spilled %d keys, want %d", len(spilled), keys-10)
	}
	// Eviction flushes before spilling, so every snapshot is exact.
	for k, est := range spilled {
		if est != perKey {
			t.Errorf("spilled key %q estimate = %v, want %d", k, est, perKey)
		}
	}
	// The most recently updated keys survive (LRU within the shard).
	for i := keys - 10; i < keys; i++ {
		if _, ok := tab.Estimate(keyOf(i)); !ok {
			t.Errorf("recently updated key %q was evicted", keyOf(i))
		}
	}
}

// TestTableTTLEviction advances a fake clock past the TTL and checks
// idle keys are spilled while fresh ones survive.
func TestTableTTLEviction(t *testing.T) {
	var now int64 = 1 // deterministic fake clock (UnixNano)
	var evicted []uint64
	tab := NewHLL(HLLConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1,
			Shards:  4,
			TTL:     time.Second,
			OnEvict: func(k uint64, snap []byte) { evicted = append(evicted, k) },
		},
	})
	defer tab.Close()
	tab.t.now = func() int64 { return now }
	w := tab.Writer(0)
	for k := uint64(0); k < 10; k++ {
		w.UpdateKeyed(k, k)
	}
	now += time.Second.Nanoseconds() + 1
	for k := uint64(0); k < 3; k++ {
		w.UpdateKeyed(k, k+100) // refresh keys 0..2
	}
	if n := tab.EvictExpired(); n != 7 {
		t.Fatalf("EvictExpired() = %d, want 7", n)
	}
	if got := tab.Keys(); got != 3 {
		t.Errorf("Keys() = %d, want 3", got)
	}
	if len(evicted) != 7 {
		t.Errorf("OnEvict saw %d keys, want 7", len(evicted))
	}
	for k := uint64(0); k < 3; k++ {
		if _, ok := tab.Estimate(k); !ok {
			t.Errorf("refreshed key %d was evicted", k)
		}
	}
}

// TestThetaTableRollup checks the all-keys rollup collapses duplicates
// across keys.
func TestThetaTableRollup(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer tab.Close()
	w := tab.Writer(0)
	// Three keys over the same 100 items plus one key with 100 fresh
	// ones: 200 uniques total.
	for i := 0; i < 100; i++ {
		w.UpdateKeyed("a", uint64(i))
		w.UpdateKeyed("b", uint64(i))
		w.UpdateKeyed("c", uint64(i))
		w.UpdateKeyed("d", uint64(1000+i))
	}
	tab.Drain()
	if est := tab.Rollup().Estimate(); est != 200 {
		t.Errorf("rollup estimate = %v, want exactly 200 (exact mode)", est)
	}
}

// TestTableSnapshotMergeRoundTrip simulates distributed aggregation:
// two nodes ingest disjoint halves of overlapping per-key streams,
// snapshot, serialize, merge, and the merged per-key estimates match
// the union.
func TestTableSnapshotMergeRoundTrip(t *testing.T) {
	mk := func() *ThetaTable[string] {
		return NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 8}})
	}
	node1, node2 := mk(), mk()
	defer node1.Close()
	defer node2.Close()
	w1, w2 := node1.Writer(0), node2.Writer(0)
	for i := 0; i < 100; i++ {
		w1.UpdateKeyed("x", uint64(i))      // x: 0..99
		w2.UpdateKeyed("x", uint64(50+i))   // x: 50..149 → union 150
		w1.UpdateKeyed("y", uint64(i))      // y only on node1
		w2.UpdateKeyed("z", uint64(1000+i)) // z only on node2
	}
	node1.Drain()
	node2.Drain()
	b1, err := node1.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := node2.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := UnmarshalThetaSnapshot[string](b1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalThetaSnapshot[string](b2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 3 {
		t.Fatalf("merged snapshot has %d keys, want 3", s1.Len())
	}
	want := map[string]float64{"x": 150, "y": 100, "z": 100}
	for k, wantEst := range want {
		c, ok := s1.Get(k)
		if !ok {
			t.Fatalf("merged snapshot missing key %q", k)
		}
		if c.Estimate() != wantEst {
			t.Errorf("merged key %q estimate = %v, want %v", k, c.Estimate(), wantEst)
		}
	}
	// The merged snapshot serializes and parses again.
	b3, err := s1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalThetaSnapshot[string](b3); err != nil {
		t.Fatal(err)
	}
	// Key-type and kind mismatches are rejected, not misparsed.
	if _, err := UnmarshalThetaSnapshot[uint64](b3); err == nil {
		t.Error("uint64-keyed parse of string-keyed snapshot succeeded")
	}
	if _, err := UnmarshalHLLSnapshot[string](b3); err == nil {
		t.Error("HLL parse of theta snapshot succeeded")
	}
}

// TestQuantilesTable exercises the quantiles kind end to end: per-key
// medians, rollup, snapshot round trip.
func TestQuantilesTable(t *testing.T) {
	tab := NewQuantiles(QuantilesConfig[string]{Table: Config[string]{Writers: 2, Shards: 8}, K: 64})
	defer tab.Close()
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks := make([]string, 0, 128)
			vs := make([]float64, 0, 128)
			for i := 0; i < 5000; i++ {
				// key "fast" centred at ~100, key "slow" at ~1000.
				ks = append(ks, "fast", "slow")
				vs = append(vs, 100+float64(i%10), 1000+float64(i%100))
				if len(ks)+2 > cap(ks) {
					w.UpdateKeyedBatch(ks, vs)
					ks, vs = ks[:0], vs[:0]
				}
			}
			w.UpdateKeyedBatch(ks, vs)
		}(wi)
	}
	wg.Wait()
	tab.Drain()
	if med, ok := tab.Quantile("fast", 0.5); !ok || med < 100 || med > 110 {
		t.Errorf("fast median = %v (ok=%v), want ~100-110", med, ok)
	}
	if med, ok := tab.Quantile("slow", 0.5); !ok || med < 1000 || med > 1100 {
		t.Errorf("slow median = %v (ok=%v), want ~1000-1100", med, ok)
	}
	roll := tab.Rollup()
	if roll.N() != 20000 {
		t.Errorf("rollup N = %d, want 20000", roll.N())
	}
	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalQuantilesSnapshot[string](data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Errorf("snapshot keys = %d, want 2", snap.Len())
	}
}

// TestHLLTable exercises the HLL kind: per-key estimates within RSE,
// rollup, snapshot merge.
func TestHLLTable(t *testing.T) {
	tab := NewHLL(HLLConfig[uint64]{Table: Config[uint64]{Writers: 1, Shards: 8}, Precision: 12})
	defer tab.Close()
	w := tab.Writer(0)
	// perKey is well above the 2.5·2^p linear-counting crossover, where
	// the raw HLL estimator's bias is small.
	const keys, perKey = 10, 30000
	ks := make([]uint64, 0, 1000)
	vs := make([]uint64, 0, 1000)
	for i := 0; i < keys; i++ {
		for j := 0; j < perKey; j++ {
			ks = append(ks, uint64(i))
			vs = append(vs, uint64(i*perKey+j))
			if len(ks) == cap(ks) {
				w.UpdateKeyedBatch(ks, vs)
				ks, vs = ks[:0], vs[:0]
			}
		}
	}
	w.UpdateKeyedBatch(ks, vs)
	tab.Drain()
	for i := uint64(0); i < keys; i++ {
		est, ok := tab.Estimate(i)
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if re := math.Abs(est-perKey) / perKey; re > 0.05 {
			t.Errorf("key %d estimate = %.0f, want %d ±5%%", i, est, perKey)
		}
	}
	roll := tab.Rollup().Estimate()
	if re := math.Abs(roll-keys*perKey) / (keys * perKey); re > 0.05 {
		t.Errorf("rollup estimate = %.0f, want %d ±5%%", roll, keys*perKey)
	}
	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalHLLSnapshot[uint64](data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != keys {
		t.Errorf("snapshot keys = %d, want %d", snap.Len(), keys)
	}
}

// TestTableConcurrentIngestQueryEvict hammers a capped table from
// writers, queriers and an evictor at once; the race detector and the
// table's internal invariants are the assertions.
func TestTableConcurrentIngestQueryEvict(t *testing.T) {
	const writers = 4
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: writers,
			Shards:  16,
			MaxKeys: 64,
			TTL:     time.Millisecond,
			OnEvict: func(uint64, []byte) {},
		},
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks := make([]uint64, 0, 64)
			vs := make([]uint64, 0, 64)
			for round := 0; round < 200; round++ {
				ks, vs = ks[:0], vs[:0]
				for i := 0; i < 64; i++ {
					ks = append(ks, uint64((round*7+i)%200))
					vs = append(vs, uint64(round*64+i))
				}
				w.UpdateKeyedBatch(ks, vs)
			}
		}(wi)
	}
	wg.Add(2)
	go func() { // querier
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := uint64(0); k < 200; k += 17 {
				tab.Estimate(k)
			}
			tab.Rollup()
		}
	}()
	go func() { // TTL evictor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab.EvictExpired()
			time.Sleep(time.Millisecond)
		}
	}()
	// Wait for the writers (first `writers` goroutines), then stop the
	// background query/evict loops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	<-done
	if got := tab.Keys(); got > 64+16 {
		t.Errorf("Keys() = %d, want near cap 64", got)
	}
	tab.Close()
}

// TestTableExternalPool shares one pool across two tables and a
// standalone sketch; closing the tables leaves the pool serving.
func TestTableExternalPool(t *testing.T) {
	pool := core.NewPropagatorPool(2)
	defer pool.Close()
	t1 := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4, Pool: pool}})
	t2 := NewHLL(HLLConfig[string]{Table: Config[string]{Writers: 1, Shards: 4, Pool: pool}})
	w1, w2 := t1.Writer(0), t2.Writer(0)
	for i := 0; i < 1000; i++ {
		w1.UpdateKeyed(keyOf(i%5), uint64(i))
		w2.UpdateKeyed(keyOf(i%5), uint64(i))
	}
	t1.Drain()
	t2.Drain()
	if est, _ := t1.Estimate(keyOf(0)); est != 200 {
		t.Errorf("theta key estimate = %v, want 200", est)
	}
	t1.Close()
	// Pool still serves t2 after t1 closes.
	for i := 0; i < 1000; i++ {
		w2.UpdateKeyed(keyOf(7), uint64(i))
	}
	t2.Drain()
	if est, _ := t2.Estimate(keyOf(7)); est < 900 || est > 1100 {
		t.Errorf("hll key estimate after sibling close = %v, want ~1000", est)
	}
	t2.Close()
	if n := pool.Sketches(); n != 0 {
		t.Errorf("pool reports %d sketches after both tables closed, want 0", n)
	}
}

// TestTableWriterScratchReuse checks steady-state keyed batches on
// existing keys do not allocate per item (grouping scratch, entry
// slices and sketch scratch are all reused).
func TestTableWriterScratchReuse(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{Table: Config[uint64]{Writers: 1, Shards: 16}, MaxError: 1})
	defer tab.Close()
	w := tab.Writer(0)
	const batch = 512
	ks := make([]uint64, batch)
	vs := make([]uint64, batch)
	fill := func(round int) {
		for i := range ks {
			ks[i] = uint64(i % 32)
			vs[i] = uint64(round*batch + i)
		}
	}
	fill(0)
	w.UpdateKeyedBatch(ks, vs) // warm up: create keys, grow scratch
	round := 1
	avg := testing.AllocsPerRun(50, func() {
		fill(round)
		round++
		w.UpdateKeyedBatch(ks, vs)
	})
	// A handful of allocations per 512-item batch is acceptable
	// (map-iteration internals, occasional buffer growth); per-item
	// allocation is not.
	if avg > 16 {
		t.Errorf("steady-state keyed batch allocates %.1f per call, want <= 16", avg)
	}
}

// TestSnapshotCorruptParamRejected flips the header's sketch parameter
// to an invalid value: Unmarshal must fail with an error rather than
// letting a later Merge panic inside a sketch constructor.
func TestSnapshotCorruptParamRejected(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer tab.Close()
	w := tab.Writer(0)
	w.UpdateKeyed("k", 1)
	tab.Drain()
	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[8], bad[9], bad[10], bad[11] = 7, 0, 0, 0 // param = 7: not a power of two
	if _, err := UnmarshalThetaSnapshot[string](bad); err == nil {
		t.Fatal("corrupt param 7 accepted; Merge would panic in NewUnionSeeded")
	}
	bad[8] = 0 // param = 0
	if _, err := UnmarshalThetaSnapshot[string](bad); err == nil {
		t.Fatal("corrupt param 0 accepted")
	}
}

// TestCompactKeyAllKinds checks the per-key compact accessor on every
// table kind.
func TestCompactKeyAllKinds(t *testing.T) {
	th := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer th.Close()
	qt := NewQuantiles(QuantilesConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer qt.Close()
	hl := NewHLL(HLLConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer hl.Close()
	tw, qw, hw := th.Writer(0), qt.Writer(0), hl.Writer(0)
	for i := 0; i < 100; i++ {
		tw.UpdateKeyed("k", uint64(i))
		qw.UpdateKeyed("k", float64(i))
		hw.UpdateKeyed("k", uint64(i))
	}
	th.Drain()
	qt.Drain()
	hl.Drain()
	if c, ok := th.CompactKey("k"); !ok || c.Estimate() != 100 {
		t.Errorf("theta CompactKey = %v, %v; want 100, true", c, ok)
	}
	if c, ok := qt.CompactKey("k"); !ok || c.N() != 100 {
		t.Errorf("quantiles CompactKey N = %v, %v; want 100, true", c, ok)
	}
	if c, ok := hl.CompactKey("k"); !ok || c.Estimate() < 90 || c.Estimate() > 110 {
		t.Errorf("hll CompactKey = %v, %v; want ~100, true", c, ok)
	}
	if _, ok := th.CompactKey("missing"); ok {
		t.Error("CompactKey on missing key reported ok")
	}
}

// TestTableConfigValidationAtConstruction checks invalid per-key
// sketch parameters panic at New*, not on the first update (which
// would panic under a held shard write-lock).
func TestTableConfigValidationAtConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"theta K not power of two": func() {
			NewTheta(ThetaConfig[string]{K: 100})
		},
		"theta K too small": func() {
			NewTheta(ThetaConfig[string]{K: 8})
		},
		"quantiles K not power of two": func() {
			NewQuantiles(QuantilesConfig[string]{K: 33})
		},
		"hll precision too large": func() {
			NewHLL(HLLConfig[string]{Precision: 19})
		},
		"shards not power of two": func() {
			NewTheta(ThetaConfig[string]{Table: Config[string]{Shards: 3}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected construction-time panic", name)
				}
			}()
			fn()
		}()
	}
}
