package table

import (
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/theta"
)

// TestEntryCacheEvictNoResurrect pins the entry-cache coherence rule:
// after a key is evicted, a writer whose cache still holds the dead
// entry must detect the shard's epoch bump, drop the slot and resolve
// through the map — never resurrecting (or updating) the evicted
// incarnation.
func TestEntryCacheEvictNoResurrect(t *testing.T) {
	evicted := 0
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4, TTL: time.Minute,
			OnEvict: func(uint64, []byte) { evicted++ },
		},
		K: 256,
	})
	defer tab.Close()
	now := time.Now().UnixNano()
	tab.SketchTable.t.now = func() int64 { return now }

	w := tab.Writer(0)
	const key = 42
	for i := uint64(0); i < 5; i++ {
		w.UpdateKeyed(key, i) // fills the writer cache for key
	}
	if hits, _ := w.w.CacheStats(); hits == 0 {
		t.Fatal("repeat single-key updates never hit the writer cache")
	}

	// Expire and evict the key while the writer's cache still points
	// at its entry.
	now += 2 * time.Minute.Nanoseconds()
	if n := tab.EvictExpired(); n != 1 {
		t.Fatalf("EvictExpired = %d, want 1", n)
	}
	if evicted != 1 {
		t.Fatalf("OnEvict fired %d times, want 1", evicted)
	}

	// The next updates must create a fresh incarnation through the
	// slow path (stale cache slot dropped on epoch mismatch).
	for i := uint64(100); i < 103; i++ {
		w.UpdateKeyed(key, i)
	}
	if got := tab.Keys(); got != 1 {
		t.Fatalf("Keys = %d after resurrection-by-update, want 1", got)
	}
	w.FlushKey(key)
	if est, ok := tab.Estimate(key); !ok || est != 3 {
		t.Fatalf("estimate = %v (ok=%v), want exactly 3 post-evict items (old incarnation must not leak in)", est, ok)
	}

	// Same through the batch path: evict again, then batch-update.
	now += 2 * time.Minute.Nanoseconds()
	if n := tab.EvictExpired(); n != 1 {
		t.Fatalf("second EvictExpired = %d, want 1", n)
	}
	w.UpdateKeyedBatch([]uint64{key, key}, []uint64{7, 8})
	w.FlushKey(key)
	if est, ok := tab.Estimate(key); !ok || est != 2 {
		t.Fatalf("estimate after batch resurrect = %v (ok=%v), want exactly 2", est, ok)
	}
}

// TestKeyedBatchCachedPathAllocs is the allocation regression for the
// cached per-writer batch path: once keys are cached, grouped batches
// must not allocate for grouping, cache lookups or entry resolution.
func TestKeyedBatchCachedPathAllocs(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{Writers: 1, Shards: 8},
		K:     256, MaxError: 1, BufferSize: 64,
	})
	defer tab.Close()
	w := tab.Writer(0)
	const batch = 512
	keys := make([]uint64, batch)
	vals := make([]uint64, batch)
	x := uint64(1)
	for i := range keys {
		keys[i] = uint64(i % 8)
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = x
	}
	for i := 0; i < 8; i++ {
		w.UpdateKeyedBatch(keys, vals)
	}
	h0, m0 := w.w.CacheStats()
	avg := testing.AllocsPerRun(50, func() {
		w.UpdateKeyedBatch(keys, vals)
	})
	h1, m1 := w.w.CacheStats()
	if h1 == h0 {
		t.Fatal("steady-state batches never hit the writer entry cache")
	}
	if m1 != m0 {
		t.Errorf("steady-state batches missed the cache %d times, want 0", m1-m0)
	}
	// Per-key sketch handoffs are pool-scheduled and may allocate a
	// small constant; the grouping, cache and resolution layers must
	// not.
	if avg > 8 {
		t.Fatalf("steady-state cached keyed batch allocates %.1f/op, want <= 8", avg)
	}
}

// TestHotKeyPromotion exercises the adaptive per-key policy end to
// end: a key crossing the volume threshold is promoted through the
// engine ladder (counted), keeps answering with its full history, and
// still round-trips through the base-parameter snapshot format.
func TestHotKeyPromotion(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4,
			HotKeys: &HotKeyPolicy{HotThreshold: 512, MaxPromotions: 2},
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	w := tab.Writer(0)

	const hot, n = uint64(7), 2048
	const cold = uint64(9)
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	next := uint64(0)
	for sent := 0; sent < n; sent += len(keys) {
		for i := range keys {
			keys[i] = hot
			vals[i] = next * 0x9e3779b97f4a7c15
			next++
		}
		w.UpdateKeyedBatch(keys, vals)
	}
	w.UpdateKeyed(cold, 1)
	tab.Drain()

	if got := tab.Promotions(); got != 2 {
		t.Fatalf("promotions = %d, want 2 (threshold 512 crossed repeatedly, capped at 2)", got)
	}
	est, ok := tab.Estimate(hot)
	if !ok || est < n*0.75 || est > n*1.25 {
		t.Fatalf("hot-key estimate = %v (ok=%v), want ~%d", est, ok, n)
	}
	if est, ok := tab.Estimate(cold); !ok || est != 1 {
		t.Fatalf("cold-key estimate = %v (ok=%v), want exactly 1", est, ok)
	}

	// Promoted keys must export base-parameter compacts: the snapshot
	// round-trips and self-merges without kind/param errors.
	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatalf("SnapshotBinary: %v", err)
	}
	snap, err := UnmarshalThetaSnapshot[uint64](data)
	if err != nil {
		t.Fatalf("UnmarshalThetaSnapshot: %v", err)
	}
	c, ok := snap.Get(hot)
	if !ok {
		t.Fatal("snapshot lost the hot key")
	}
	if got := c.Estimate(); got < n*0.6 || got > n*1.4 {
		t.Fatalf("snapshot hot-key estimate = %v, want ~%d", got, n)
	}
	if err := snap.Merge(tab.Snapshot()); err != nil {
		t.Fatalf("snapshot self-merge after promotion: %v", err)
	}

	// Rollup spans promoted and unpromoted keys through one aggregator.
	if got := tab.Rollup().Estimate(); got < n*0.6 {
		t.Fatalf("rollup = %v, want >= ~%d", got, n)
	}

	// The promoted sketch keeps ingesting (history + new both visible).
	for i := range keys {
		keys[i] = hot
		vals[i] = (uint64(n) + uint64(i)) * 0x9e3779b97f4a7c15
	}
	w.UpdateKeyedBatch(keys, vals)
	tab.Drain()
	if est2, _ := tab.Estimate(hot); est2 <= est {
		t.Fatalf("estimate did not grow after post-promotion ingest: %v -> %v", est, est2)
	}
}

// TestHotKeyPromotionConcurrencyStress drives batch writers, single
// updaters, wait-free queries and cap evictions concurrently against a
// low promotion threshold: promotion takes entry locks exclusively
// while entries are mapped, so this pins the lock discipline (no
// reader/writer cycle between entry locks and shard locks) and the
// promote-vs-evict dead-entry guard. A deadlock fails via test timeout.
func TestHotKeyPromotionConcurrencyStress(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 3, Shards: 8, MaxKeys: 64,
			HotKeys: &HotKeyPolicy{HotThreshold: 64, MaxPromotions: 3},
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks := make([]uint64, 128)
			vs := make([]uint64, 128)
			x := uint64(wi) + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range ks {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					if j%2 == 0 {
						ks[j] = uint64(j % 4) // hot keys: promoted repeatedly
					} else {
						ks[j] = x % 512 // churn keys: evicted repeatedly
					}
					vs[j] = x
				}
				w.UpdateKeyedBatch(ks, vs)
			}
		}(wi)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := tab.Writer(2)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				w.UpdateKeyed(i%4, i)
			}
		}
	}()
	deadline := time.After(2 * time.Second)
	queries := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			for k := uint64(0); k < 8; k++ {
				tab.Estimate(k)
				queries++
			}
		}
	}
	close(stop)
	wg.Wait()
	if queries == 0 {
		t.Fatal("no queries completed")
	}
	if tab.Promotions() == 0 {
		t.Error("stress run produced no promotions")
	}
	if tab.Evictions() == 0 {
		t.Error("stress run produced no evictions")
	}
}

// TestHotKeyPromotionEvictSpill pins the eviction path for promoted
// keys: the spilled snapshot carries the full (base + live) history.
func TestHotKeyPromotionEvictSpill(t *testing.T) {
	var spilled []byte
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4, TTL: time.Minute,
			HotKeys: &HotKeyPolicy{HotThreshold: 256, MaxPromotions: 1},
			OnEvict: func(_ uint64, b []byte) { spilled = b },
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	now := time.Now().UnixNano()
	tab.SketchTable.t.now = func() int64 { return now }
	w := tab.Writer(0)
	const n = 1024
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = 1
		vals[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	w.UpdateKeyedBatch(keys, vals)
	if tab.Promotions() == 0 {
		t.Fatal("no promotion before eviction")
	}
	now += 2 * time.Minute.Nanoseconds()
	if tab.EvictExpired() != 1 {
		t.Fatal("key not evicted")
	}
	if spilled == nil {
		t.Fatal("no spill bytes")
	}
	c, err := theta.UnmarshalCompact(spilled)
	if err != nil {
		t.Fatalf("spill unmarshal: %v", err)
	}
	if got := c.Estimate(); got < n*0.6 || got > n*1.4 {
		t.Fatalf("spilled estimate = %v, want ~%d (history must survive promotion + eviction)", got, n)
	}
}
