package table

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/fcds/fcds/internal/core"
)

// Binary table-snapshot format (little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCTB"
//	4       1     format version (1)
//	5       1     sketch kind (1 Θ, 2 quantiles, 3 HLL)
//	6       1     key type (1 string, 2 uint64)
//	7       1     reserved (0)
//	8       4     sketch parameter (k or precision)
//	12      4     key count
//	16      ...   count entries: key, then uvarint blob length + blob
//
// String keys are uvarint length + bytes; uint64 keys are 8 bytes LE.
// Each blob is the per-key sketch's own serialization (validated by
// its own unmarshaller), so a corrupt snapshot cannot smuggle in an
// invalid sketch.
const (
	snapMagic      = "FCTB"
	snapVersion    = 1
	snapHeaderSize = 16

	// Sketch kinds (the core wire registry).
	KindTheta     = core.KindTheta
	KindQuantiles = core.KindQuantiles
	KindHLL       = core.KindHLL

	keyTypeString byte = 1
	keyTypeUint64 byte = 2
)

// Snapshot serialization errors.
var (
	ErrSnapBadMagic     = errors.New("table: bad snapshot magic")
	ErrSnapBadVersion   = errors.New("table: unsupported snapshot version")
	ErrSnapKindMismatch = errors.New("table: snapshot sketch kind mismatch")
	ErrSnapKeyMismatch  = errors.New("table: snapshot key type mismatch")
	ErrSnapCorrupt      = errors.New("table: corrupt snapshot bytes")
	ErrSnapIncompatible = errors.New("table: snapshots not mergeable (kind or parameter differ)")
)

// keyTypeOf reports the wire key-type byte for K.
func keyTypeOf[K Key]() byte {
	var zero K
	if _, ok := any(zero).(string); ok {
		return keyTypeString
	}
	return keyTypeUint64
}

// appendKey writes a key in its wire encoding.
func appendKey[K Key](dst []byte, k K) []byte {
	switch v := any(k).(type) {
	case string:
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		return append(dst, v...)
	case uint64:
		return binary.LittleEndian.AppendUint64(dst, v)
	default:
		panic("table: unsupported key type")
	}
}

// readKey parses one key and returns the remaining bytes.
func readKey[K Key](data []byte) (K, []byte, error) {
	var zero K
	if keyTypeOf[K]() == keyTypeString {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < n {
			return zero, nil, fmt.Errorf("%w: truncated string key", ErrSnapCorrupt)
		}
		s := string(data[sz : sz+int(n)])
		return any(s).(K), data[sz+int(n):], nil
	}
	if len(data) < 8 {
		return zero, nil, fmt.Errorf("%w: truncated uint64 key", ErrSnapCorrupt)
	}
	v := binary.LittleEndian.Uint64(data)
	return any(v).(K), data[8:], nil
}

// TableSnapshot is an immutable point-in-time capture of a keyed
// table: one compact sketch per key. Snapshots from different
// processes merge per key (the distributed-aggregation path: every
// node snapshots its table, one aggregator merges and queries), and
// serialize with MarshalBinary. The codec — the compact half of the
// family's engine — supplies kind, parameter, per-key merge and
// (de)serialization.
type TableSnapshot[K Key, C any] struct {
	codec   core.CompactCodec[C]
	entries map[K]C
}

// NewTableSnapshot returns an empty snapshot bound to a codec;
// populate it with Merge or by capturing a live table's Snapshot.
func NewTableSnapshot[K Key, C any](codec core.CompactCodec[C]) *TableSnapshot[K, C] {
	return &TableSnapshot[K, C]{codec: codec, entries: make(map[K]C)}
}

// Len returns the number of keys captured.
func (s *TableSnapshot[K, C]) Len() int { return len(s.entries) }

// Get returns the compact sketch captured for a key.
func (s *TableSnapshot[K, C]) Get(k K) (C, bool) {
	c, ok := s.entries[k]
	return c, ok
}

// ForEach visits every (key, compact sketch) pair in unspecified
// order.
func (s *TableSnapshot[K, C]) ForEach(fn func(k K, c C)) {
	for k, c := range s.entries {
		fn(k, c)
	}
}

// Set stores a compact for a key, replacing any previous one. The
// compact must come from the snapshot's own sketch family and
// parameter (composites building snapshots from engine aggregators use
// this; Merge is the checked path for foreign snapshots).
func (s *TableSnapshot[K, C]) Set(k K, c C) { s.entries[k] = c }

// CompatibleWith reports whether other's sketches could merge into s:
// both must come from tables with the same sketch kind and parameter.
// This is Merge's precondition as a standalone check, for holders of
// foreign snapshots (the network server's per-source slots) that
// validate without paying for a merge.
func (s *TableSnapshot[K, C]) CompatibleWith(other *TableSnapshot[K, C]) error {
	if s.codec.Kind() != other.codec.Kind() || s.codec.Param() != other.codec.Param() {
		return fmt.Errorf("%w: kind %d/param %d vs kind %d/param %d",
			ErrSnapIncompatible, s.codec.Kind(), s.codec.Param(), other.codec.Kind(), other.codec.Param())
	}
	return nil
}

// Merge folds other into s: keys present in both are merged sketch-
// wise, keys only in other are copied. Both snapshots must come from
// tables with the same sketch kind and parameter.
func (s *TableSnapshot[K, C]) Merge(other *TableSnapshot[K, C]) error {
	if err := s.CompatibleWith(other); err != nil {
		return err
	}
	for k, oc := range other.entries {
		if mine, ok := s.entries[k]; ok {
			merged, err := s.codec.MergeCompact(mine, oc)
			if err != nil {
				return err
			}
			s.entries[k] = merged
		} else {
			s.entries[k] = oc
		}
	}
	return nil
}

// MarshalBinary serializes the snapshot.
func (s *TableSnapshot[K, C]) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, snapHeaderSize+32*len(s.entries)))
}

// AppendBinary serializes the snapshot into dst and returns the
// extended slice — the streaming hook for callers that ship snapshots
// over reusable buffers (the network server's per-connection write
// scratch) instead of allocating a fresh image per capture. On error,
// dst is returned unextended.
func (s *TableSnapshot[K, C]) AppendBinary(dst []byte) ([]byte, error) {
	start := len(dst)
	var hdr [snapHeaderSize]byte
	copy(hdr[0:4], snapMagic)
	hdr[4] = snapVersion
	hdr[5] = s.codec.Kind()
	hdr[6] = keyTypeOf[K]()
	binary.LittleEndian.PutUint32(hdr[8:12], s.codec.Param())
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(s.entries)))
	buf := append(dst, hdr[:]...)
	for k, c := range s.entries {
		blob, err := s.codec.MarshalCompact(c)
		if err != nil {
			return dst[:start], err
		}
		buf = appendKey(buf, k)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// snapHeader is the parsed fixed-size snapshot prefix.
type snapHeader struct {
	kind  byte
	param uint32
	count int
}

// parseSnapshotHeader validates the fixed prefix against the expected
// kind and key type and returns the entry bytes.
func parseSnapshotHeader[K Key](data []byte, wantKind byte) (snapHeader, []byte, error) {
	var h snapHeader
	if len(data) < snapHeaderSize {
		return h, nil, fmt.Errorf("%w: %d bytes < header", ErrSnapCorrupt, len(data))
	}
	if string(data[0:4]) != snapMagic {
		return h, nil, ErrSnapBadMagic
	}
	if data[4] != snapVersion {
		return h, nil, fmt.Errorf("%w: %d", ErrSnapBadVersion, data[4])
	}
	if data[5] != wantKind {
		return h, nil, fmt.Errorf("%w: snapshot kind %d, want %d", ErrSnapKindMismatch, data[5], wantKind)
	}
	if data[6] != keyTypeOf[K]() {
		return h, nil, fmt.Errorf("%w: snapshot key type %d, want %d", ErrSnapKeyMismatch, data[6], keyTypeOf[K]())
	}
	h.kind = data[5]
	h.param = binary.LittleEndian.Uint32(data[8:12])
	h.count = int(binary.LittleEndian.Uint32(data[12:16]))
	if !validParam(h.kind, h.param) {
		return h, nil, fmt.Errorf("%w: parameter %d invalid for kind %d", ErrSnapCorrupt, h.param, h.kind)
	}
	return h, data[snapHeaderSize:], nil
}

// validParam checks the header's sketch parameter against the kind's
// constructor constraints, so a corrupt snapshot fails Unmarshal with
// an error instead of panicking later inside Merge's union/merge
// constructors.
func validParam(kind byte, param uint32) bool {
	switch kind {
	case KindTheta:
		return param >= 16 && param <= 1<<26 && param&(param-1) == 0
	case KindQuantiles:
		return param >= 2 && param <= 1<<20 && param&(param-1) == 0
	case KindHLL:
		return param >= 4 && param <= 18
	default:
		return false
	}
}

// unmarshalSnapshot parses a serialized table snapshot: the header is
// validated against wantKind and K, then newCodec builds the family
// codec for the wire parameter and the entries are parsed through it.
// The per-family Unmarshal*Snapshot functions are thin wrappers.
func unmarshalSnapshot[K Key, C any](data []byte, wantKind byte, newCodec func(param uint32) core.CompactCodec[C]) (*TableSnapshot[K, C], error) {
	h, body, err := parseSnapshotHeader[K](data, wantKind)
	if err != nil {
		return nil, err
	}
	s := NewTableSnapshot[K](newCodec(h.param))
	if err := s.parseEntries(body, h.count); err != nil {
		return nil, err
	}
	return s, nil
}

// parseEntries fills s.entries from the post-header bytes.
func (s *TableSnapshot[K, C]) parseEntries(body []byte, count int) error {
	for i := 0; i < count; i++ {
		k, rest, err := readKey[K](body)
		if err != nil {
			return err
		}
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return fmt.Errorf("%w: truncated sketch blob for entry %d", ErrSnapCorrupt, i)
		}
		c, err := s.codec.UnmarshalCompact(rest[sz : sz+int(n)])
		if err != nil {
			return err
		}
		s.entries[k] = c
		body = rest[sz+int(n):]
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapCorrupt, len(body))
	}
	return nil
}
