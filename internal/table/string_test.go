package table

import (
	"fmt"
	"testing"
)

// TestThetaStringItemBatch: UpdateKeyedStringBatch must agree exactly
// with ingesting the same logical items through the uint64 path is not
// possible (different hash inputs), so the pin is internal consistency:
// string items are hashed once in the grouping pass, estimates are
// exact in exact mode, and duplicates collapse across batches and
// writers.
func TestThetaStringItemBatch(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{Writers: 2, Shards: 8},
		K:     1024, MaxError: 1,
	})
	defer tab.Close()

	const perTenant = 200
	for wi := 0; wi < 2; wi++ {
		w := tab.Writer(wi)
		var keys, items []string
		for ti := 0; ti < 3; ti++ {
			for u := 0; u < perTenant; u++ {
				keys = append(keys, fmt.Sprintf("tenant-%d", ti))
				// Both writers send the same user ids: duplicates must
				// collapse per key.
				items = append(items, fmt.Sprintf("user-%d-%d", ti, u))
			}
		}
		w.UpdateKeyedStringBatch(keys, items)
	}
	tab.Drain()
	for ti := 0; ti < 3; ti++ {
		if est, ok := tab.Estimate(fmt.Sprintf("tenant-%d", ti)); !ok || est != perTenant {
			t.Errorf("tenant-%d = %v (ok=%v), want exactly %d", ti, est, ok, perTenant)
		}
	}
	// A repeated batch changes nothing (idempotent uniques).
	w := tab.Writer(0)
	keys := []string{"tenant-0", "tenant-0"}
	items := []string{"user-0-0", "user-0-1"}
	w.UpdateKeyedStringBatch(keys, items)
	tab.Drain()
	if est, _ := tab.Estimate("tenant-0"); est != perTenant {
		t.Errorf("tenant-0 after duplicate batch = %v, want %d", est, perTenant)
	}
}

// TestHLLStringItemBatch: the HLL string-item path agrees with the
// standalone concurrent HLL ingesting the same strings (same hash,
// same registers, same estimate).
func TestHLLStringItemBatch(t *testing.T) {
	tab := NewHLL(HLLConfig[string]{
		Table: Config[string]{Writers: 1, Shards: 8}, Precision: 12,
	})
	defer tab.Close()
	w := tab.Writer(0)
	const n = 5000
	keys := make([]string, n)
	items := make([]string, n)
	for i := range keys {
		keys[i] = "ids"
		items[i] = fmt.Sprintf("device-%d", i)
	}
	w.UpdateKeyedStringBatch(keys, items)
	tab.Drain()
	est, ok := tab.Estimate("ids")
	if !ok || est < n*0.9 || est > n*1.1 {
		t.Fatalf("hll string-item estimate = %v (ok=%v), want ~%d", est, ok, n)
	}
}

// TestStringItemBatchLengthMismatchPanics pins the contract check.
func TestStringItemBatchLengthMismatchPanics(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{Table: Config[string]{Writers: 1, Shards: 4}})
	defer tab.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	tab.Writer(0).UpdateKeyedStringBatch([]string{"a"}, []string{"x", "y"})
}

// TestStringItemBatchZeroAlloc: steady-state string-item batches reuse
// all grouping and hashing scratch.
func TestStringItemBatchZeroAlloc(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{Writers: 1, Shards: 8},
		K:     256, MaxError: 1, BufferSize: 64,
	})
	defer tab.Close()
	w := tab.Writer(0)
	const batch = 256
	keys := make([]string, batch)
	items := make([]string, batch)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i%4)
		items[i] = fmt.Sprintf("item-%d", i)
	}
	// Warm up: create the keys, size the scratch.
	for i := 0; i < 8; i++ {
		w.UpdateKeyedStringBatch(keys, items)
	}
	avg := testing.AllocsPerRun(50, func() {
		w.UpdateKeyedStringBatch(keys, items)
	})
	// The grouped apply path hands runs to per-key sketches whose
	// handoffs are pool-scheduled; allow a small constant for those,
	// but the per-item hashing and grouping must not allocate.
	if avg > 8 {
		t.Fatalf("steady-state string keyed batch allocates %.1f/op, want <= 8", avg)
	}
}
