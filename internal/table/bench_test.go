package table

import (
	"runtime"
	"sync"
	"testing"
)

// benchTableKeys drives a keyed Θ table with the given distinct key
// count through the batch path and reports update throughput.
func benchTableKeys(b *testing.B, keys int, writers int) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{Writers: writers, Shards: 1024},
	})
	defer tab.Close()
	const chunk = 512
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks := make([]uint64, chunk)
			vs := make([]uint64, chunk)
			// Scrambled counter: spreads updates over all keys without
			// a modelled distribution (the zipfian sweep lives in
			// cmd/fcds-bench).
			x := uint64(wi)*0x9e3779b97f4a7c15 + 1
			for sent := 0; sent < per; sent += chunk {
				for i := range ks {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					ks[i] = x % uint64(keys)
					vs[i] = x
				}
				w.UpdateKeyedBatch(ks, vs)
			}
		}(wi)
	}
	wg.Wait()
	b.StopTimer()
	if g := runtime.NumGoroutine(); g > tab.Pool().Workers()+writers+32 {
		b.Fatalf("goroutine count %d grew with key count", g)
	}
}

// BenchmarkTable is the acceptance benchmark: 1e5 distinct keys on one
// shared propagator pool.
func BenchmarkTable(b *testing.B) {
	benchTableKeys(b, 100_000, 4)
}

func BenchmarkTable_1e3Keys(b *testing.B) { benchTableKeys(b, 1_000, 4) }

// BenchmarkTableQuery measures the wait-free per-key query under no
// contention.
func BenchmarkTableQuery(b *testing.B) {
	tab := NewTheta(ThetaConfig[uint64]{Table: Config[uint64]{Writers: 1, Shards: 64}})
	defer tab.Close()
	w := tab.Writer(0)
	for k := uint64(0); k < 1000; k++ {
		w.UpdateKeyed(k, k)
	}
	tab.Drain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Estimate(uint64(i) % 1000); !ok {
			b.Fatal("missing key")
		}
	}
}
