package table

import (
	"encoding/binary"
	"slices"

	"github.com/fcds/fcds/internal/core"
)

// This file is the table's parallel read path: whole-table rollups,
// snapshot captures and streaming serialization fan the per-key
// compaction work across a bounded worker set (core.FanOut) and merge
// the partial results. The structure is the same for all three:
//
//  1. collect — snapshot (key, entry) pointers shard by shard under
//     the shard read-lock only (no compaction under any shard lock);
//  2. fan out — workers claim entries from a shared counter and
//     compact them under each entry's own liveness lock, folding into
//     per-worker accumulators (an aggregator, a pair slice, or a
//     serialization region);
//  3. merge — the per-worker partials combine: aggregators pairwise by
//     the family's compact merge, pair slices into the snapshot map,
//     regions into one output buffer grown exactly once.
//
// Consistency is unchanged from the serial walk: per key the compact
// is the usual r-relaxed point-in-time capture; across keys there is
// no atomicity (there never was — the serial walk released each shard
// lock between shards). Keys evicted between collect and compact are
// skipped, exactly as a slightly earlier serial walk would have
// missed them.

// readDegree resolves the table's configured read fan-out.
func (t *Table[K, V, S, C]) readDegree() int {
	return core.ReadDegree(t.cfg.ReadParallelism)
}

// collectEntries snapshots (key, entry) pointers for every live key,
// one shard read-lock at a time. It takes no entry locks and performs
// no compaction, so a shard is blocked only for the pointer copy —
// eviction, lazy creation and writer-cache validation never stall
// behind a whole-table scan.
func (t *Table[K, V, S, C]) collectEntries() ([]K, []*entry[V, S, C]) {
	n := int(t.keys.Load())
	if n < 0 {
		n = 0
	}
	keys := make([]K, 0, n)
	ents := make([]*entry[V, S, C], 0, n)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			keys = append(keys, k)
			ents = append(ents, e)
		}
		sh.mu.RUnlock()
	}
	return keys, ents
}

// compactEntry captures one collected entry's full-history compact
// outside all shard locks. The entry's liveness lock pins the sketch
// against a concurrent finalize or promotion swap; ok=false means the
// key was evicted since collection and has no compact to contribute.
func (t *Table[K, V, S, C]) compactEntry(e *entry[V, S, C]) (C, bool) {
	e.mu.RLock()
	if e.dead {
		e.mu.RUnlock()
		var zero C
		return zero, false
	}
	c := t.compactOf(e)
	e.mu.RUnlock()
	return c, true
}

// rollup merges every live key's sketch into one compact, compacting
// across `degree` workers with per-worker aggregators merged pairwise.
// degree <= 1 is the serial path (identical result by mergeability:
// every fold order of the same per-key compacts is a valid aggregate).
func (t *Table[K, V, S, C]) rollup(degree int) C {
	_, ents := t.collectEntries()
	if degree > len(ents) {
		degree = len(ents)
	}
	if degree <= 1 {
		agg := t.eng.NewAggregator()
		for _, e := range ents {
			if c, ok := t.compactEntry(e); ok {
				_ = agg.Add(c) // engine-made compacts are compatible by construction
			}
		}
		return agg.Result()
	}
	aggs := make([]core.Aggregator[C], degree)
	for w := range aggs {
		aggs[w] = t.eng.NewAggregator()
	}
	core.FanOut(degree, len(ents), func(w, i int) {
		if c, ok := t.compactEntry(ents[i]); ok {
			_ = aggs[w].Add(c)
		}
	})
	parts := make([]C, degree)
	for w := range aggs {
		parts[w] = aggs[w].Result()
	}
	// Pairwise tree merge of the worker partials: parts[i] absorbs
	// parts[i+half] each round, halving the slice — log2(degree)
	// rounds, each round's merges independent.
	for len(parts) > 1 {
		half := (len(parts) + 1) / 2
		core.FanOut(degree, len(parts)-half, func(_, i int) {
			if m, err := t.eng.MergeCompact(parts[i], parts[i+half]); err == nil {
				parts[i] = m // err is impossible for same-engine compacts
			}
		})
		parts = parts[:half]
	}
	return parts[0]
}

// kcPair is one captured (key, compact) pair in a worker's partial.
type kcPair[K Key, C any] struct {
	k K
	c C
}

// snapshotInto captures every live key's compact into s, compacting
// across `degree` workers. Workers fill per-worker pair slices; the
// map insert stays serial (entries were collected once per key, so
// the partials are disjoint and insertion order is irrelevant).
func (t *Table[K, V, S, C]) snapshotInto(s *TableSnapshot[K, C], degree int) {
	keys, ents := t.collectEntries()
	if degree > len(ents) {
		degree = len(ents)
	}
	if degree <= 1 {
		for i, e := range ents {
			if c, ok := t.compactEntry(e); ok {
				s.entries[keys[i]] = c
			}
		}
		return
	}
	parts := make([][]kcPair[K, C], degree)
	core.FanOut(degree, len(ents), func(w, i int) {
		if c, ok := t.compactEntry(ents[i]); ok {
			parts[w] = append(parts[w], kcPair[K, C]{keys[i], c})
		}
	})
	for _, p := range parts {
		for _, e := range p {
			s.entries[e.k] = e.c
		}
	}
}

// appendSnapshot serializes the whole table into dst in the FCTB
// format without materializing a TableSnapshot — the streaming
// capture path. Workers marshal the entries they claim into
// per-worker regions in wire entry encoding; the region lengths are
// the size pre-pass, so dst grows exactly once and each region lands
// in its place with a single copy. The header's key count is patched
// last (keys evicted mid-capture are skipped, so it is not known up
// front). On error dst is returned unextended.
func (t *Table[K, V, S, C]) appendSnapshot(dst []byte, degree int) ([]byte, error) {
	keys, ents := t.collectEntries()
	if degree > len(ents) {
		degree = len(ents)
	}
	start := len(dst)
	var hdr [snapHeaderSize]byte
	copy(hdr[0:4], snapMagic)
	hdr[4] = snapVersion
	hdr[5] = t.eng.Kind()
	hdr[6] = keyTypeOf[K]()
	binary.LittleEndian.PutUint32(hdr[8:12], t.eng.Param())
	dst = append(dst, hdr[:]...)
	count := 0
	if degree <= 1 {
		for i, e := range ents {
			c, ok := t.compactEntry(e)
			if !ok {
				continue
			}
			blob, err := t.eng.MarshalCompact(c)
			if err != nil {
				return dst[:start], err
			}
			dst = appendKey(dst, keys[i])
			dst = binary.AppendUvarint(dst, uint64(len(blob)))
			dst = append(dst, blob...)
			count++
		}
	} else {
		regions := make([][]byte, degree)
		counts := make([]int, degree)
		errs := make([]error, degree)
		core.FanOut(degree, len(ents), func(w, i int) {
			if errs[w] != nil {
				return
			}
			c, ok := t.compactEntry(ents[i])
			if !ok {
				return
			}
			blob, err := t.eng.MarshalCompact(c)
			if err != nil {
				errs[w] = err
				return
			}
			buf := appendKey(regions[w], keys[i])
			buf = binary.AppendUvarint(buf, uint64(len(blob)))
			regions[w] = append(buf, blob...)
			counts[w]++
		})
		total := 0
		for w := range regions {
			if errs[w] != nil {
				return dst[:start], errs[w]
			}
			total += len(regions[w])
			count += counts[w]
		}
		dst = slices.Grow(dst, total)
		for _, r := range regions {
			dst = append(dst, r...)
		}
	}
	binary.LittleEndian.PutUint32(dst[start+12:start+16], uint32(count))
	return dst, nil
}

// HashKey returns the table's key-placement hash. Exported for
// composites that partition keys across workers consistently with
// shard placement (the windowed table's sealed-epoch merge).
func HashKey[K Key](k K) uint64 { return keyHash(k) }
