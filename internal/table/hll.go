package table

import (
	"fmt"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/hll"
)

// HLLConfig configures a keyed HLL table: fixed tiny per-key memory
// (2^Precision registers), the right trade when key counts dwarf
// per-key cardinalities. Zero fields take defaults: Precision=10
// (1KB registers, ≈3.2% RSE per key).
type HLLConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// Precision is each per-key sketch's p (2^p registers).
	Precision uint8
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 64.
	BufferSize int
	// Seed is the shared hash seed.
	Seed uint64
}

func (c HLLConfig[K]) withDefaults() HLLConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.Precision == 0 {
		c.Precision = 10
	}
	// Validate here, not on first update: the lazy NewSketch call runs
	// under a shard write-lock (see ThetaConfig.withDefaults).
	if c.Precision < 4 || c.Precision > 18 {
		panic(fmt.Sprintf("table: HLLConfig.Precision must be in [4, 18], got %d", c.Precision))
	}
	if c.BufferSize == 0 {
		c.BufferSize = 64
	}
	if c.Seed == 0 {
		c.Seed = hash.DefaultSeed
	}
	return c
}

// Engine returns the fully defaulted table configuration and the bound
// per-key HLL sketch engine this config describes.
func (c HLLConfig[K]) Engine() (Config[K], *hll.Engine) {
	c = c.withDefaults()
	return c.Table, hll.NewEngine(hll.ConcurrentConfig{
		Precision:  c.Precision,
		Writers:    c.Table.Writers,
		BufferSize: c.BufferSize,
		Seed:       c.Seed,
	})
}

// HLLTable maps keys to concurrent HLL sketches: per-key unique
// counting in fixed tiny memory per key.
type HLLTable[K Key] struct {
	SketchTable[K, uint64, float64, *hll.Sketch]
	hashItem func(string) uint64
}

// HLLTableWriter is a single-goroutine keyed ingestion handle.
type HLLTableWriter[K Key] struct {
	w        *Writer[K, uint64, float64, *hll.Sketch]
	hashItem func(string) uint64
}

// NewHLL builds a keyed HLL table; Close it when done.
func NewHLL[K Key](cfg HLLConfig[K]) *HLLTable[K] {
	tcfg, eng := cfg.Engine()
	return &HLLTable[K]{
		SketchTable: *NewEngineTable[K](tcfg, core.Engine[uint64, float64, *hll.Sketch](eng)),
		hashItem:    eng.HashString,
	}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *HLLTable[K]) Writer(i int) *HLLTableWriter[K] {
	return &HLLTableWriter[K]{w: t.SketchTable.Writer(i), hashItem: t.hashItem}
}

// Estimate returns the key's current unique-count estimate. Wait-free;
// false when the key has never been updated (or was evicted).
func (t *HLLTable[K]) Estimate(k K) (float64, bool) { return t.Query(k) }

// UpdateKeyedBatch ingests parallel (key, item) slices through the
// grouped bulk path.
func (w *HLLTableWriter[K]) UpdateKeyedBatch(keys []K, items []uint64) {
	w.w.UpdateKeyedBatch(keys, items)
}

// UpdateKeyedStringBatch ingests parallel (key, string item) slices:
// each item is hashed in the grouping pass (zero-alloc string hashing),
// so log pipelines need no pre-hash step.
func (w *HLLTableWriter[K]) UpdateKeyedStringBatch(keys []K, items []string) {
	w.w.updateKeyedStringBatch(keys, items, w.hashItem)
}

// UpdateKeyed ingests one (key, item) pair.
func (w *HLLTableWriter[K]) UpdateKeyed(k K, item uint64) { w.w.UpdateKeyed(k, item) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *HLLTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// UnmarshalHLLSnapshot parses a serialized HLL table snapshot keyed by
// K.
func UnmarshalHLLSnapshot[K Key](data []byte) (*TableSnapshot[K, *hll.Sketch], error) {
	return unmarshalSnapshot[K](data, KindHLL, func(param uint32) core.CompactCodec[*hll.Sketch] {
		return hll.NewEngine(hll.ConcurrentConfig{Precision: uint8(param)})
	})
}
