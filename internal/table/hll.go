package table

import (
	"fmt"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/hll"
)

// HLLConfig configures a keyed HLL table: fixed tiny per-key memory
// (2^Precision registers), the right trade when key counts dwarf
// per-key cardinalities. Zero fields take defaults: Precision=10
// (1KB registers, ≈3.2% RSE per key).
type HLLConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// Precision is each per-key sketch's p (2^p registers).
	Precision uint8
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 64.
	BufferSize int
	// Seed is the shared hash seed.
	Seed uint64
}

func (c HLLConfig[K]) withDefaults() HLLConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.Precision == 0 {
		c.Precision = 10
	}
	// Validate here, not on first update: the lazy newSketch call runs
	// under a shard write-lock (see ThetaConfig.withDefaults).
	if c.Precision < 4 || c.Precision > 18 {
		panic(fmt.Sprintf("table: HLLConfig.Precision must be in [4, 18], got %d", c.Precision))
	}
	if c.BufferSize == 0 {
		c.BufferSize = 64
	}
	if c.Seed == 0 {
		c.Seed = hash.DefaultSeed
	}
	return c
}

// hllKey adapts one per-key concurrent HLL sketch.
type hllKey struct {
	c  *hll.Concurrent
	ws []*hll.ConcurrentWriter
}

func (s *hllKey) writer(i int) *hll.ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *hllKey) updateBatch(i int, vals []uint64) { s.writer(i).UpdateUint64Batch(vals) }
func (s *hllKey) update(i int, v uint64)           { s.writer(i).UpdateUint64(v) }
func (s *hllKey) flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *hllKey) query() float64       { return s.c.Estimate() }
func (s *hllKey) compact() *hll.Sketch { return s.c.Compact() }
func (s *hllKey) close()               { s.c.Close() }

// HLLTable maps keys to concurrent HLL sketches: per-key unique
// counting in fixed tiny memory per key.
type HLLTable[K Key] struct {
	t   *Table[K, uint64, float64, *hll.Sketch]
	cfg HLLConfig[K]
}

// HLLTableWriter is a single-goroutine keyed ingestion handle.
type HLLTableWriter[K Key] struct {
	w *Writer[K, uint64, float64, *hll.Sketch]
}

// NewHLL builds a keyed HLL table; Close it when done.
func NewHLL[K Key](cfg HLLConfig[K]) *HLLTable[K] {
	cfg = cfg.withDefaults()
	o := ops[uint64, float64, *hll.Sketch]{
		kind:  KindHLL,
		param: uint32(cfg.Precision),
		newSketch: func(pool *core.PropagatorPool) keySketch[uint64, float64, *hll.Sketch] {
			return &hllKey{
				c: hll.NewConcurrent(hll.ConcurrentConfig{
					Precision:  cfg.Precision,
					Writers:    cfg.Table.Writers,
					BufferSize: cfg.BufferSize,
					Seed:       cfg.Seed,
					Pool:       pool,
				}),
				ws: make([]*hll.ConcurrentWriter, cfg.Table.Writers),
			}
		},
		marshal: func(c *hll.Sketch) ([]byte, error) { return c.MarshalBinary() },
	}
	return &HLLTable[K]{t: newTable(cfg.Table, o), cfg: cfg}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *HLLTable[K]) Writer(i int) *HLLTableWriter[K] {
	return &HLLTableWriter[K]{w: t.t.Writer(i)}
}

// Estimate returns the key's current unique-count estimate. Wait-free;
// false when the key has never been updated (or was evicted).
func (t *HLLTable[K]) Estimate(k K) (float64, bool) { return t.t.query(k) }

// CompactKey returns a serializable register-wise copy of one key's
// sketch; false when the key is not live.
func (t *HLLTable[K]) CompactKey(k K) (*hll.Sketch, bool) { return t.t.compactKey(k) }

// Rollup merges every live key's registers into one HLL sketch — the
// all-keys unique count.
func (t *HLLTable[K]) Rollup() *hll.Sketch {
	out := hll.NewSeeded(t.cfg.Precision, t.cfg.Seed)
	t.t.forEachCompact(func(_ K, c *hll.Sketch) {
		_ = out.Merge(c) // precision and seed match by construction
	})
	return out
}

// Relaxation returns the per-key bound r = 2·N·b.
func (t *HLLTable[K]) Relaxation() int { return 2 * t.cfg.Table.Writers * t.cfg.BufferSize }

// Keys returns the number of live keys.
func (t *HLLTable[K]) Keys() int { return t.t.Keys() }

// Evictions returns the number of keys evicted so far.
func (t *HLLTable[K]) Evictions() int64 { return t.t.Evictions() }

// Pool returns the table's propagation executor.
func (t *HLLTable[K]) Pool() *core.PropagatorPool { return t.t.Pool() }

// EvictExpired evicts keys idle longer than the configured TTL.
func (t *HLLTable[K]) EvictExpired() int { return t.t.EvictExpired() }

// Drain flushes all writer slots of all keys (writers must be
// quiescent).
func (t *HLLTable[K]) Drain() { t.t.Drain() }

// Snapshot captures every live key's sketch into a mergeable,
// serializable table snapshot.
func (t *HLLTable[K]) Snapshot() *TableSnapshot[K, *hll.Sketch] {
	s := newHLLSnapshot[K](uint32(t.cfg.Precision))
	t.t.forEachCompact(func(k K, c *hll.Sketch) { s.entries[k] = c })
	return s
}

// SnapshotBinary serializes the whole table (Snapshot + MarshalBinary).
func (t *HLLTable[K]) SnapshotBinary() ([]byte, error) { return t.Snapshot().MarshalBinary() }

// Close drains and closes every per-key sketch and the owned pool.
func (t *HLLTable[K]) Close() { t.t.Close() }

// UpdateKeyedBatch ingests parallel (key, item) slices through the
// grouped bulk path.
func (w *HLLTableWriter[K]) UpdateKeyedBatch(keys []K, items []uint64) {
	w.w.UpdateKeyedBatch(keys, items)
}

// UpdateKeyed ingests one (key, item) pair.
func (w *HLLTableWriter[K]) UpdateKeyed(k K, item uint64) { w.w.UpdateKeyed(k, item) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *HLLTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// newHLLSnapshot builds an empty HLL table snapshot.
func newHLLSnapshot[K Key](param uint32) *TableSnapshot[K, *hll.Sketch] {
	return &TableSnapshot[K, *hll.Sketch]{
		kind:    KindHLL,
		param:   param,
		entries: make(map[K]*hll.Sketch),
		mergeC: func(a, b *hll.Sketch) (*hll.Sketch, error) {
			out := a.Clone()
			if err := out.Merge(b); err != nil {
				return nil, err
			}
			return out, nil
		},
		marshalC:   func(c *hll.Sketch) ([]byte, error) { return c.MarshalBinary() },
		unmarshalC: func(b []byte) (*hll.Sketch, error) { return hll.Unmarshal(b) },
	}
}

// UnmarshalHLLSnapshot parses a serialized HLL table snapshot keyed by
// K.
func UnmarshalHLLSnapshot[K Key](data []byte) (*TableSnapshot[K, *hll.Sketch], error) {
	h, body, err := parseSnapshotHeader[K](data, KindHLL)
	if err != nil {
		return nil, err
	}
	s := newHLLSnapshot[K](h.param)
	if err := s.parseEntries(body, h.count); err != nil {
		return nil, err
	}
	return s, nil
}
