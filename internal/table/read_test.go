package table

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/theta"
)

// Property tests for the parallel read path: on one quiesced table,
// the fanned-out rollup, snapshot capture and streaming serialization
// must answer exactly like the serial (degree-1) walk. Captures never
// merge, so they compare bytes-exact for every family; rollups merge
// in a degree-dependent order, so Θ and HLL (order-insensitive
// unions) compare exact while quantiles (compaction coins follow the
// merge order) compare within the a-priori rank-error bound. Every
// trial is seeded, so failures reproduce.

const readTestDegree = 8

// populateTheta fills a Θ table with nKeys seeded keys and quiesces it.
func populateTheta(rng *rand.Rand, nKeys int) *ThetaTable[string] {
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{Writers: 2, Shards: 8},
		K:     512, MaxError: 1,
	})
	var keys []string
	var vals []uint64
	for ki := 0; ki < nKeys; ki++ {
		key := fmt.Sprintf("k%03d", ki)
		for j, n := 0, 1+rng.Intn(400); j < n; j++ {
			keys = append(keys, key)
			vals = append(vals, rng.Uint64())
		}
	}
	tab.Writer(0).UpdateKeyedBatch(keys, vals)
	tab.Drain()
	return tab
}

// TestRollupParallelMatchesSerialTheta: Θ unions are order-insensitive
// and serialize sorted, so the fanned rollup must be byte-identical to
// the serial one.
func TestRollupParallelMatchesSerialTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(0x01ea))
	for trial := 0; trial < 5; trial++ {
		tab := populateTheta(rng, 1+rng.Intn(300))
		serial, _ := tab.Engine().MarshalCompact(tab.t.rollup(1))
		parallel, _ := tab.Engine().MarshalCompact(tab.t.rollup(readTestDegree))
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("trial %d: parallel rollup differs from serial (%d keys)", trial, tab.Keys())
		}
		tab.Close()
	}
}

// TestRollupParallelMatchesSerialHLL: register-wise max is merge-order
// insensitive, so the fanned rollup must be byte-identical.
func TestRollupParallelMatchesSerialHLL(t *testing.T) {
	rng := rand.New(rand.NewSource(0x477b))
	for trial := 0; trial < 5; trial++ {
		tab := NewHLL(HLLConfig[uint64]{
			Table:     Config[uint64]{Writers: 2, Shards: 8},
			Precision: 10,
		})
		var keys, vals []uint64
		for ki, nk := 0, 1+rng.Intn(300); ki < nk; ki++ {
			for j, n := 0, 1+rng.Intn(500); j < n; j++ {
				keys = append(keys, uint64(ki))
				vals = append(vals, rng.Uint64())
			}
		}
		tab.Writer(0).UpdateKeyedBatch(keys, vals)
		tab.Drain()
		serial, _ := tab.Engine().MarshalCompact(tab.t.rollup(1))
		parallel, _ := tab.Engine().MarshalCompact(tab.t.rollup(readTestDegree))
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("trial %d: parallel rollup differs from serial (%d keys)", trial, tab.Keys())
		}
		tab.Close()
	}
}

// TestRollupParallelMatchesSerialQuantiles: the tree merge draws
// compaction coins in a different order than the serial fold, so the
// parallel rollup is a different — but equally valid — sketch of the
// same stream: N/min/max exact, every φ-quantile within the rank
// error (with merge-level slack, as in the engine property tests).
func TestRollupParallelMatchesSerialQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9a42))
	const k = 128
	eps := 4 * quantiles.NormalizedRankError(k)
	tab := NewQuantiles(QuantilesConfig[string]{
		Table: Config[string]{Writers: 2, Shards: 8},
		K:     k,
	})
	n := 20000
	vals := make([]float64, n)
	keys := make([]string, n)
	for i := range vals {
		vals[i] = float64(i) // true φ-quantile is φ·n
		keys[i] = fmt.Sprintf("k%03d", rng.Intn(200))
	}
	rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	tab.Writer(0).UpdateKeyedBatch(keys, vals)
	tab.Drain()

	serial := tab.t.rollup(1)
	parallel := tab.t.rollup(readTestDegree)
	if serial.N() != parallel.N() || serial.N() != uint64(n) {
		t.Fatalf("N: serial %d, parallel %d, want %d", serial.N(), parallel.N(), n)
	}
	if serial.Min() != parallel.Min() || serial.Max() != parallel.Max() {
		t.Fatalf("range: serial [%v,%v], parallel [%v,%v]",
			serial.Min(), serial.Max(), parallel.Min(), parallel.Max())
	}
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		got := parallel.Snapshot().Quantile(phi)
		if dev := math.Abs(got/float64(n) - phi); dev > eps {
			t.Fatalf("parallel q(%v) = %v of n=%d (rank dev %.4f > %.4f)", phi, got, n, dev, eps)
		}
	}
	tab.Close()
}

// TestSnapshotParallelMatchesSerial: snapshot captures never merge, so
// for every family the fanned capture must be key-for-key
// byte-identical to the serial one — through both the map capture
// (snapshotInto) and the streaming serialization (appendSnapshot).
func TestSnapshotParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5a9d))
	tab := populateTheta(rng, 1+rng.Intn(300))
	defer tab.Close()
	eng := tab.Engine()

	s1 := NewTableSnapshot[string](eng)
	s8 := NewTableSnapshot[string](eng)
	tab.t.snapshotInto(s1, 1)
	tab.t.snapshotInto(s8, readTestDegree)
	if s1.Len() != s8.Len() || s1.Len() != tab.Keys() {
		t.Fatalf("lengths: serial %d, parallel %d, table %d", s1.Len(), s8.Len(), tab.Keys())
	}
	s1.ForEach(func(k string, c *theta.Compact) {
		pc, ok := s8.Get(k)
		if !ok {
			t.Fatalf("key %q missing from parallel capture", k)
		}
		sb, _ := eng.MarshalCompact(c)
		pb, _ := eng.MarshalCompact(pc)
		if !bytes.Equal(sb, pb) {
			t.Fatalf("key %q: parallel compact differs from serial", k)
		}
	})

	b1, err := tab.t.appendSnapshot(nil, 1)
	if err != nil {
		t.Fatalf("serial appendSnapshot: %v", err)
	}
	b8, err := tab.t.appendSnapshot(nil, readTestDegree)
	if err != nil {
		t.Fatalf("parallel appendSnapshot: %v", err)
	}
	// Workers claim entries dynamically, so the parallel byte stream
	// orders entries differently — compare the parsed captures.
	p1, err := UnmarshalThetaSnapshot[string](b1)
	if err != nil {
		t.Fatalf("parse serial: %v", err)
	}
	p8, err := UnmarshalThetaSnapshot[string](b8)
	if err != nil {
		t.Fatalf("parse parallel: %v", err)
	}
	if p1.Len() != p8.Len() || p1.Len() != tab.Keys() {
		t.Fatalf("parsed lengths: serial %d, parallel %d, table %d", p1.Len(), p8.Len(), tab.Keys())
	}
	p1.ForEach(func(k string, c *theta.Compact) {
		pc, ok := p8.Get(k)
		if !ok {
			t.Fatalf("key %q missing from parallel serialization", k)
		}
		sb, _ := eng.MarshalCompact(c)
		pb, _ := eng.MarshalCompact(pc)
		if !bytes.Equal(sb, pb) {
			t.Fatalf("key %q: parallel serialization differs from serial", k)
		}
	})
}

// TestSnapshotAppendMatchesAppendBinary: the streaming parallel
// serialization and the snapshot's own AppendBinary describe the same
// capture — parse both, same keys, same per-key bytes. Pins the two
// encoders to one wire format.
func TestSnapshotAppendMatchesAppendBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(0xab1e))
	tab := populateTheta(rng, 120)
	defer tab.Close()

	viaSnap, err := tab.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	direct, err := tab.SnapshotAppend(nil)
	if err != nil {
		t.Fatalf("SnapshotAppend: %v", err)
	}
	a, err := UnmarshalThetaSnapshot[string](viaSnap)
	if err != nil {
		t.Fatalf("parse MarshalBinary image: %v", err)
	}
	b, err := UnmarshalThetaSnapshot[string](direct)
	if err != nil {
		t.Fatalf("parse SnapshotAppend image: %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	eng := tab.Engine()
	a.ForEach(func(k string, c *theta.Compact) {
		bc, ok := b.Get(k)
		if !ok {
			t.Fatalf("key %q missing from SnapshotAppend image", k)
		}
		ab, _ := eng.MarshalCompact(c)
		bb, _ := eng.MarshalCompact(bc)
		if !bytes.Equal(ab, bb) {
			t.Fatalf("key %q: encodings disagree", k)
		}
	})
}

// TestReadPathConcurrentWithIngest races the whole parallel read path
// against keyed ingest and TTL eviction (run under -race in CI): two
// writers stream keyed updates, one goroutine evicts expired keys and
// one loops Rollup/Snapshot/SnapshotAppend through the public API.
// Correctness here is "no race, no panic, every capture parses" — the
// quiesced-table equivalences above pin the values.
func TestReadPathConcurrentWithIngest(t *testing.T) {
	tab := NewTheta(ThetaConfig[string]{
		Table: Config[string]{
			Writers: 2, Shards: 8,
			TTL: time.Millisecond, ReadParallelism: 4,
		},
		K: 256, MaxError: 1,
	})
	defer tab.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(0xace + wi)))
			w := tab.Writer(wi)
			keys := make([]string, 64)
			vals := make([]uint64, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = fmt.Sprintf("k%02d", rng.Intn(40))
					vals[i] = rng.Uint64()
				}
				w.UpdateKeyedBatch(keys, vals)
			}
		}(wi)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab.EvictExpired()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	var buf []byte
	for time.Now().Before(deadline) {
		if est := tab.Rollup().Estimate(); est < 0 {
			t.Fatalf("negative rollup estimate %v", est)
		}
		snap := tab.Snapshot()
		var err error
		buf, err = tab.SnapshotAppend(buf[:0])
		if err != nil {
			t.Fatalf("SnapshotAppend: %v", err)
		}
		parsed, err := UnmarshalThetaSnapshot[string](buf)
		if err != nil {
			t.Fatalf("parse mid-ingest capture: %v", err)
		}
		_ = snap.Len()
		_ = parsed.Len()
	}
	close(stop)
	wg.Wait()
}
