// Package table implements multi-tenant keyed sketch tables: a sharded
// map from keys to lightweight per-key concurrent sketches, all served
// by one shared core.PropagatorPool so the goroutine count is a
// function of GOMAXPROCS, not of the key count.
//
// The paper's framework composes naturally here — each key is an
// independent r-relaxed sketch with the full per-key guarantee
// r = 2·N·b (Theorem 1) — but instantiating the paper's design naively
// would dedicate one propagator goroutine per key, which collapses at
// millions of keys. Instead every per-key sketch attaches to the
// table's pool: writers hand off filled buffers exactly as in
// Algorithm 2, and a fixed set of pool workers drains whichever
// sketches have outstanding handoffs.
//
// Layout: keys hash into power-of-two shards. Each shard holds a
// lock-guarded map; sketches are created lazily on first update. The
// shard lock protects only map membership — never sketch state — so
// per-key queries are a brief read-lock plus the framework's wait-free
// atomic snapshot read, and batch ingestion touches each shard lock
// once per batch. Size-cap and TTL eviction spill evicted keys as
// compact serialized snapshots through the OnEvict callback, and whole
// tables serialize to a binary snapshot that merges with snapshots
// from other processes for distributed aggregation.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
)

// Key is the set of supported table key types.
type Key interface {
	string | uint64
}

// shardSeed hashes keys to shards; distinct from sketch seeds so key
// placement does not correlate with Θ-space sampling.
const shardSeed uint64 = 0x7ab1e5eed

// Config carries the sketch-independent table configuration. The zero
// value is usable: 1 writer, 256 shards, GOMAXPROCS propagators, no
// eviction.
type Config[K Key] struct {
	// Writers is N, the number of table writer handles; every per-key
	// sketch is created with the same N slots, so the per-key
	// relaxation is r = 2·N·b. 0 means 1.
	Writers int
	// Shards is the number of key shards (a power of two; default 256).
	// More shards mean less lock contention on key creation/eviction.
	Shards int
	// Propagators sizes the table's owned propagator pool (default
	// GOMAXPROCS). Ignored when Pool is set.
	Propagators int
	// Pool, when non-nil, is an external propagation executor shared
	// with other tables or sketches; the caller closes it after the
	// table. Nil gives the table its own pool.
	Pool *core.PropagatorPool
	// MaxKeys caps the number of live keys (0 = unlimited). The cap is
	// enforced per shard (MaxKeys/Shards, rounded up), evicting the
	// least-recently-updated keys of the overflowing shard.
	MaxKeys int
	// TTL, when > 0, marks keys idle for longer than TTL as evictable
	// by EvictExpired.
	TTL time.Duration
	// OnEvict, when non-nil, receives each evicted key with its final
	// state as a compact serialized snapshot (the same bytes a table
	// snapshot holds per key), after the key's buffers are drained.
	// snapshot is nil in the exceptional case that serialization
	// failed; consumers persisting spills must handle it. Called
	// outside all table locks; implementations may be slow but must
	// not call back into the evicting table's write path.
	OnEvict func(key K, snapshot []byte)
}

func (c Config[K]) withDefaults() Config[K] {
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Shards == 0 {
		c.Shards = 256
	}
	if c.Shards&(c.Shards-1) != 0 {
		panic(fmt.Sprintf("table: Shards must be a power of two, got %d", c.Shards))
	}
	return c
}

// entry is one live key. mu serialises sketch liveness: updaters hold
// it shared for the duration of their sketch calls, evictors hold it
// exclusive while draining and closing the sketch. touched is the
// UnixNano of the last update, for TTL/LRU eviction.
type entry[V, S, C any] struct {
	mu      sync.RWMutex
	sk      core.EngineSketch[V, S, C]
	touched atomic.Int64
}

// shard is one power-of-two slice of the key space. mu protects m
// (membership only, never sketch state).
type shard[K Key, V, S, C any] struct {
	mu sync.RWMutex
	m  map[K]*entry[V, S, C]
}

// Table is the generic keyed sketch table; the exported ThetaTable /
// QuantilesTable / HLLTable wrap it (through SketchTable) with
// concrete sketch engines.
type Table[K Key, V, S, C any] struct {
	cfg  Config[K]
	eng  core.Engine[V, S, C]
	pool *core.PropagatorPool
	// ownPool is true when the table created (and must close) its pool.
	ownPool bool

	shards []shard[K, V, S, C]
	mask   uint64
	// perShardCap is ceil(MaxKeys/Shards), 0 when uncapped.
	perShardCap int

	keys      atomic.Int64
	evictions atomic.Int64
	closed    atomic.Bool

	// now is the eviction clock (UnixNano); tests override it.
	now func() int64
}

func newTable[K Key, V, S, C any](cfg Config[K], eng core.Engine[V, S, C]) *Table[K, V, S, C] {
	cfg = cfg.withDefaults()
	t := &Table[K, V, S, C]{
		cfg:    cfg,
		eng:    eng,
		pool:   cfg.Pool,
		shards: make([]shard[K, V, S, C], cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		now:    func() int64 { return time.Now().UnixNano() },
	}
	if t.pool == nil {
		t.pool = core.NewPropagatorPool(cfg.Propagators)
		t.ownPool = true
	}
	if cfg.MaxKeys > 0 {
		t.perShardCap = (cfg.MaxKeys + cfg.Shards - 1) / cfg.Shards
	}
	for i := range t.shards {
		t.shards[i].m = make(map[K]*entry[V, S, C])
	}
	return t
}

// shardIndex places a key. The any-boxing compiles to a type switch on
// the instantiation's shape and does not escape.
func shardIndex[K Key](k K, mask uint64) uint64 {
	switch v := any(k).(type) {
	case string:
		h, _ := hash.Sum128String(v, shardSeed)
		return h & mask
	case uint64:
		h, _ := hash.SumUint64(v, shardSeed)
		return h & mask
	default:
		panic("table: unsupported key type")
	}
}

// Pool returns the table's propagation executor.
func (t *Table[K, V, S, C]) Pool() *core.PropagatorPool { return t.pool }

// Keys returns the number of live keys.
func (t *Table[K, V, S, C]) Keys() int { return int(t.keys.Load()) }

// Evictions returns the number of keys evicted so far.
func (t *Table[K, V, S, C]) Evictions() int64 { return t.evictions.Load() }

// NumWriters returns the configured writer-handle count N.
func (t *Table[K, V, S, C]) NumWriters() int { return t.cfg.Writers }

// Writer returns the i-th writer handle (0 <= i < Config.Writers).
// Each handle must be used by at most one goroutine at a time.
func (t *Table[K, V, S, C]) Writer(i int) *Writer[K, V, S, C] {
	if i < 0 || i >= t.cfg.Writers {
		panic(fmt.Sprintf("table: writer index %d out of range [0,%d)", i, t.cfg.Writers))
	}
	return &Writer[K, V, S, C]{
		t:           t,
		id:          i,
		gidx:        make(map[K]int),
		shardGroups: make([][]int, t.cfg.Shards),
	}
}

// query returns the wait-free per-key snapshot. The shard read-lock
// guards only map membership; the snapshot itself is the framework's
// single atomic read and is never blocked by ingestion or propagation.
func (t *Table[K, V, S, C]) query(k K) (S, bool) {
	sh := &t.shards[shardIndex(k, t.mask)]
	sh.mu.RLock()
	e := sh.m[k]
	if e == nil {
		sh.mu.RUnlock()
		var zero S
		return zero, false
	}
	s := e.sk.Query()
	sh.mu.RUnlock()
	return s, true
}

// compactKey returns a serializable compact snapshot of one live key.
func (t *Table[K, V, S, C]) compactKey(k K) (C, bool) {
	sh := &t.shards[shardIndex(k, t.mask)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.m[k]
	if e == nil {
		var zero C
		return zero, false
	}
	return e.sk.Compact(), true
}

// forEachCompact visits a compact snapshot of every live key. Snapshots
// are taken shard by shard under the shard read-lock, so a concurrent
// snapshot is consistent per key but not across keys — the usual
// r-relaxed guarantee, per key.
func (t *Table[K, V, S, C]) forEachCompact(fn func(k K, c C)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			fn(k, e.sk.Compact())
		}
		sh.mu.RUnlock()
	}
}

// getOrCreate resolves the entry for a key, creating it lazily, and
// returns it with its liveness lock held shared (the caller must
// release it after the sketch call). Lock coupling with the shard lock
// guarantees an evictor cannot close the sketch in between.
func (t *Table[K, V, S, C]) getOrCreate(sh *shard[K, V, S, C], k K) *entry[V, S, C] {
	sh.mu.RLock()
	if e := sh.m[k]; e != nil {
		e.mu.RLock()
		sh.mu.RUnlock()
		return e
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	e := sh.m[k]
	if e == nil {
		e = t.newEntry()
		sh.m[k] = e
		t.keys.Add(1)
	}
	e.mu.RLock()
	sh.mu.Unlock()
	return e
}

// newEntry creates a live entry. touched starts at now, not zero — a
// zero timestamp would make a just-created key the LRU victim and
// invert the eviction order.
func (t *Table[K, V, S, C]) newEntry() *entry[V, S, C] {
	e := &entry[V, S, C]{sk: t.eng.NewSketch(t.pool)}
	e.touched.Store(t.now())
	return e
}

// maybeEvictCap enforces the per-shard key cap after inserts into
// shard si, evicting least-recently-updated keys first.
func (t *Table[K, V, S, C]) maybeEvictCap(si uint64) {
	if t.perShardCap == 0 {
		return
	}
	sh := &t.shards[si]
	sh.mu.RLock()
	over := len(sh.m) > t.perShardCap
	sh.mu.RUnlock()
	if !over {
		return
	}
	type victim struct {
		k K
		e *entry[V, S, C]
	}
	var victims []victim
	sh.mu.Lock()
	for len(sh.m) > t.perShardCap {
		// Sampled LRU (Redis-style): examine a bounded sample per
		// victim instead of the whole shard, so eviction under key
		// churn costs O(sample), not O(shard), per insert while the
		// shard's exclusive lock is held. Go's randomized map
		// iteration supplies the sample; shards at or below the
		// sample size degenerate to exact LRU.
		const evictionSample = 64
		var oldestK K
		var oldest *entry[V, S, C]
		var oldestT int64
		seen := 0
		for k, e := range sh.m {
			if ts := e.touched.Load(); oldest == nil || ts < oldestT {
				oldestK, oldest, oldestT = k, e, ts
			}
			if seen++; seen >= evictionSample {
				break
			}
		}
		delete(sh.m, oldestK)
		t.keys.Add(-1)
		victims = append(victims, victim{oldestK, oldest})
	}
	sh.mu.Unlock()
	for _, v := range victims {
		t.finalize(v.k, v.e, true)
	}
}

// EvictExpired evicts every key idle for longer than Config.TTL and
// returns the number evicted. A no-op when TTL is zero. Spilled
// snapshots go to OnEvict like cap evictions.
func (t *Table[K, V, S, C]) EvictExpired() int {
	if t.cfg.TTL <= 0 {
		return 0
	}
	cutoff := t.now() - t.cfg.TTL.Nanoseconds()
	type victim struct {
		k K
		e *entry[V, S, C]
	}
	var victims []victim
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if e.touched.Load() < cutoff {
				delete(sh.m, k)
				t.keys.Add(-1)
				victims = append(victims, victim{k, e})
			}
		}
		sh.mu.Unlock()
	}
	for _, v := range victims {
		t.finalize(v.k, v.e, true)
	}
	return len(victims)
}

// finalize drains and closes an entry already removed from its shard
// map, spilling its compact snapshot to OnEvict when requested. The
// exclusive entry lock waits out in-flight updaters; holding it makes
// the evictor the sole user of every writer slot, so flushing them is
// within the framework's single-goroutine handle contract.
func (t *Table[K, V, S, C]) finalize(k K, e *entry[V, S, C], spill bool) {
	e.mu.Lock()
	for i := 0; i < t.cfg.Writers; i++ {
		e.sk.Flush(i)
	}
	var data []byte
	if spill && t.cfg.OnEvict != nil {
		if b, err := t.eng.MarshalCompact(e.sk.Compact()); err == nil {
			data = b
		}
	}
	e.sk.Close()
	e.mu.Unlock()
	t.evictions.Add(1)
	if spill && t.cfg.OnEvict != nil {
		t.cfg.OnEvict(k, data)
	}
}

// Drain flushes every writer slot of every live key so queries and
// snapshots reflect all prior updates. All writer handles must be
// quiescent, exactly as for Close.
func (t *Table[K, V, S, C]) Drain() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			e.mu.Lock()
			for w := 0; w < t.cfg.Writers; w++ {
				e.sk.Flush(w)
			}
			e.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
}

// Close drains and closes every per-key sketch and, when owned, the
// propagator pool. All writer handles must be quiescent. Idempotent.
func (t *Table[K, V, S, C]) Close() {
	if t.closed.Swap(true) {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = make(map[K]*entry[V, S, C])
		sh.mu.Unlock()
		for _, e := range m {
			e.mu.Lock()
			for w := 0; w < t.cfg.Writers; w++ {
				e.sk.Flush(w)
			}
			e.sk.Close()
			e.mu.Unlock()
			t.keys.Add(-1)
		}
	}
	if t.ownPool {
		t.pool.Close()
	}
}

// Writer is a single-goroutine keyed ingestion handle: table writer i
// drives slot i of every per-key sketch it touches. All grouping
// scratch is retained across calls, so steady-state keyed batches
// allocate only when a batch introduces new distinct keys or values
// outgrow their run buffers.
type Writer[K Key, V, S, C any] struct {
	t  *Table[K, V, S, C]
	id int

	// gidx maps a batch's distinct keys to group indices; gkeys/gvals
	// are the parallel key and value-run storage, entries the resolved
	// per-group entries. shardGroups buckets group indices by shard
	// (len = Shards) and shardOrder lists touched shards.
	gidx        map[K]int
	gkeys       []K
	gvals       [][]V
	entries     []*entry[V, S, C]
	shardGroups [][]int
	shardOrder  []int
	missing     []int
}

// UpdateKeyed processes one (key, value) update.
func (w *Writer[K, V, S, C]) UpdateKeyed(k K, v V) {
	t := w.t
	si := shardIndex(k, t.mask)
	e := t.getOrCreate(&t.shards[si], k)
	e.sk.Update(w.id, v)
	e.touched.Store(t.now())
	e.mu.RUnlock()
	t.maybeEvictCap(si)
}

// UpdateKeyedBatch processes parallel slices of keys and values: values
// are grouped by key, the distinct keys grouped by shard so each shard
// lock is taken once, and each key's run enters its sketch through the
// fused hash+pre-filter batch path. Slices must have equal length.
func (w *Writer[K, V, S, C]) UpdateKeyedBatch(keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("table: UpdateKeyedBatch length mismatch: %d keys, %d values", len(keys), len(vals)))
	}
	if len(keys) == 0 {
		return
	}
	// Pass 1: group values by key and distinct keys by shard.
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], vals[i])
	}
	w.apply(false)
}

// UpdateKeyedHashedBatch is UpdateKeyedBatch for values that are
// already item hashes in the sketch family's hash space; each key's run
// enters its sketch through the pre-hashed batch path. The keyed
// string-ingestion paths hash in their grouping pass and land here.
func (w *Writer[K, V, S, C]) UpdateKeyedHashedBatch(keys []K, hs []V) {
	if len(keys) != len(hs) {
		panic(fmt.Sprintf("table: UpdateKeyedHashedBatch length mismatch: %d keys, %d hashes", len(keys), len(hs)))
	}
	if len(keys) == 0 {
		return
	}
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], hs[i])
	}
	w.apply(true)
}

// updateKeyedStringBatch groups string items by key while hashing each
// item with hashItem in the same pass — one scan, no intermediate
// hashed slice — then applies the runs through the pre-hashed path.
// The Θ and HLL table writers bind hashItem to their seed once.
func (w *Writer[K, V, S, C]) updateKeyedStringBatch(keys []K, items []string, hashItem func(string) V) {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("table: UpdateKeyedStringBatch length mismatch: %d keys, %d items", len(keys), len(items)))
	}
	if len(keys) == 0 {
		return
	}
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], hashItem(items[i]))
	}
	w.apply(true)
}

// group resolves the batch group index for a key, registering the key
// with its shard on first sight (pass 1 of the grouped ingestion).
func (w *Writer[K, V, S, C]) group(k K) int {
	gi, ok := w.gidx[k]
	if !ok {
		gi = len(w.gkeys)
		w.gidx[k] = gi
		w.gkeys = append(w.gkeys, k)
		if len(w.gvals) <= gi {
			w.gvals = append(w.gvals, nil)
			w.entries = append(w.entries, nil)
		}
		si := shardIndex(k, w.t.mask)
		if len(w.shardGroups[si]) == 0 {
			w.shardOrder = append(w.shardOrder, int(si))
		}
		w.shardGroups[si] = append(w.shardGroups[si], gi)
	}
	return gi
}

// apply drains the grouped runs into the per-key sketches (pass 2 of
// the grouped ingestion), leaving the grouping scratch empty. hashed
// selects the pre-hashed ingestion path.
func (w *Writer[K, V, S, C]) apply(hashed bool) {
	t := w.t
	now := t.now()
	// Pass 2: per shard — resolve entries (one shard-lock round), apply
	// each key's run, then enforce the shard's key cap.
	for _, si := range w.shardOrder {
		sh := &t.shards[si]
		groups := w.shardGroups[si]
		w.missing = w.missing[:0]
		sh.mu.RLock()
		for _, gi := range groups {
			if e := sh.m[w.gkeys[gi]]; e != nil {
				e.mu.RLock()
				w.entries[gi] = e
			} else {
				w.missing = append(w.missing, gi)
			}
		}
		sh.mu.RUnlock()
		if len(w.missing) > 0 {
			sh.mu.Lock()
			for _, gi := range w.missing {
				k := w.gkeys[gi]
				e := sh.m[k]
				if e == nil {
					e = t.newEntry()
					sh.m[k] = e
					t.keys.Add(1)
				}
				e.mu.RLock()
				w.entries[gi] = e
			}
			sh.mu.Unlock()
		}
		for _, gi := range groups {
			e := w.entries[gi]
			if hashed {
				e.sk.UpdateHashedBatch(w.id, w.gvals[gi])
			} else {
				e.sk.UpdateBatch(w.id, w.gvals[gi])
			}
			e.touched.Store(now)
			e.mu.RUnlock()
			w.entries[gi] = nil
			w.gvals[gi] = w.gvals[gi][:0]
			delete(w.gidx, w.gkeys[gi])
		}
		w.shardGroups[si] = w.shardGroups[si][:0]
		t.maybeEvictCap(uint64(si))
	}
	w.gkeys = w.gkeys[:0]
	w.shardOrder = w.shardOrder[:0]
}

// FlushKey hands off this writer's buffered updates for one key and
// waits until they are folded into the key's global sketch.
func (w *Writer[K, V, S, C]) FlushKey(k K) {
	t := w.t
	sh := &t.shards[shardIndex(k, t.mask)]
	sh.mu.RLock()
	e := sh.m[k]
	if e == nil {
		sh.mu.RUnlock()
		return
	}
	e.mu.RLock()
	sh.mu.RUnlock()
	e.sk.Flush(w.id)
	e.mu.RUnlock()
}
