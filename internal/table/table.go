// Package table implements multi-tenant keyed sketch tables: a sharded
// map from keys to lightweight per-key concurrent sketches, all served
// by one shared core.PropagatorPool so the goroutine count is a
// function of GOMAXPROCS, not of the key count.
//
// The paper's framework composes naturally here — each key is an
// independent r-relaxed sketch with the full per-key guarantee
// r = 2·N·b (Theorem 1) — but instantiating the paper's design naively
// would dedicate one propagator goroutine per key, which collapses at
// millions of keys. Instead every per-key sketch attaches to the
// table's pool: writers hand off filled buffers exactly as in
// Algorithm 2, and a fixed set of pool workers drains whichever
// sketches have outstanding handoffs. Attachment is shard-affine: the
// key hash doubles as the sketch's pool-affinity key, so one worker
// always merges a given key's global sketch (it stays hot in that
// worker's cache) and a key recreated in a later epoch of a windowed
// table inherits the same home worker.
//
// Layout: keys hash into power-of-two shards. Each shard holds a
// lock-guarded map; sketches are created lazily on first update. The
// shard lock protects only map membership — never sketch state — so
// per-key queries are a brief read-lock plus the framework's wait-free
// atomic snapshot read, and batch ingestion touches each shard lock
// once per batch. On top of that, each Writer keeps a small
// direct-mapped key→entry cache so repeat keys skip the shard lock and
// map lookup entirely; coherence is one epoch stamp per shard, bumped
// whenever a key leaves the shard's map, so a cached entry is used only
// after re-validating the stamp under the entry's liveness lock — an
// evicted key can never be resurrected through a stale cache slot.
// Size-cap and TTL eviction spill evicted keys as compact serialized
// snapshots through the OnEvict callback, and whole tables serialize to
// a binary snapshot that merges with snapshots from other processes for
// distributed aggregation.
//
// A HotKeyPolicy adds adaptive per-key configurations: keys whose
// ingest volume crosses a threshold are rebuilt through the engine's
// ScaleUp ladder (larger accuracy parameter and/or local buffers), with
// the pre-promotion state preserved as a compact and folded back into
// every query and snapshot via the family's compact-merge path.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/metrics"
)

// Key is the set of supported table key types.
type Key interface {
	string | uint64
}

// shardSeed hashes keys to shards; distinct from sketch seeds so key
// placement does not correlate with Θ-space sampling.
const shardSeed uint64 = 0x7ab1e5eed

// HotKeyPolicy enables adaptive per-key configurations: the table
// counts each key's ingested updates and, when a key's count crosses
// HotThreshold, rebuilds that key's sketch through the engine's
// ScaleUp ladder — snapshotting the current state as a compact and
// creating a sketch with the scaled configuration, seeded from that
// compact via the family's compact-merge path (same pool worker:
// affinity is key-derived), so the live sketch keeps the key's full
// history and, for Θ, its earned pre-filtering strength.
//
// What scales is family-dependent (see core.ScalableEngine): Θ doubles
// the local buffer size b (handoffs halve); quantiles double the
// accuracy parameter k and b; HLL doubles only b. The scaled engines
// skip the eager phase — a key only promotes after a volume threshold,
// far past the small-stream regime. Growing b doubles that key's
// relaxation bound r = 2·N·b per promotion — hot keys trade staleness
// headroom (still bounded, still per key) for fewer handoffs. Compacts
// leaving the table are normalized back to the base parameter, so
// snapshot wire compatibility and cross-table merges are unaffected.
type HotKeyPolicy struct {
	// HotThreshold is the per-key ingested-update count that triggers
	// a promotion; the counter resets on promotion, so a key that
	// stays hot climbs one ladder step per threshold crossing. <= 0
	// disables the policy.
	HotThreshold int64
	// MaxPromotions caps how many times one key may be promoted
	// (ladder depth). 0 means 3. The ladder also ends where the
	// engine's ScaleUp reports its cap.
	MaxPromotions int
	// CoolAfter, when > 0, enables demotion: DemoteCooled rebuilds
	// every promoted key that has been idle for at least CoolAfter one
	// ladder step down (seeded from its own compact, same pool worker
	// — the exact reverse of the promotion rebuild), so cooled keys
	// shed their enlarged buffers and their doubled relaxation bound
	// instead of keeping them until eviction. A key that cooled
	// through several levels sheds one per DemoteCooled pass.
	CoolAfter time.Duration
}

// Config carries the sketch-independent table configuration. The zero
// value is usable: 1 writer, 256 shards, GOMAXPROCS propagators, no
// eviction.
type Config[K Key] struct {
	// Writers is N, the number of table writer handles; every per-key
	// sketch is created with the same N slots, so the per-key
	// relaxation is r = 2·N·b. 0 means 1.
	Writers int
	// Shards is the number of key shards (a power of two; default 256).
	// More shards mean less lock contention on key creation/eviction.
	Shards int
	// Propagators sizes the table's owned propagator pool (default
	// GOMAXPROCS). Ignored when Pool is set.
	Propagators int
	// Pool, when non-nil, is an external propagation executor shared
	// with other tables or sketches; the caller closes it after the
	// table. Nil gives the table its own pool.
	Pool *core.PropagatorPool
	// MaxKeys caps the number of live keys (0 = unlimited). The cap is
	// enforced per shard (MaxKeys/Shards, rounded up), evicting the
	// least-recently-updated keys of the overflowing shard.
	MaxKeys int
	// TTL, when > 0, marks keys idle for longer than TTL as evictable
	// by EvictExpired.
	TTL time.Duration
	// OnEvict, when non-nil, receives each evicted key with its final
	// state as a compact serialized snapshot (the same bytes a table
	// snapshot holds per key), after the key's buffers are drained.
	// snapshot is nil in the exceptional case that serialization
	// failed; consumers persisting spills must handle it. Called
	// outside all table locks; implementations may be slow but must
	// not call back into the evicting table's write path.
	OnEvict func(key K, snapshot []byte)
	// HotKeys, when non-nil with HotThreshold > 0, promotes hot keys
	// to scaled-up per-key sketches. Ignored when the table's engine
	// does not implement core.ScalableEngine.
	HotKeys *HotKeyPolicy
	// ReadParallelism bounds the worker fan-out of the parallel read
	// paths (Rollup, Snapshot, SnapshotAppend): 0 means GOMAXPROCS at
	// call time, 1 forces the serial walk, higher values are clamped
	// to the live key count per call. Ingestion is never affected.
	ReadParallelism int
}

func (c Config[K]) withDefaults() Config[K] {
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Shards == 0 {
		c.Shards = 256
	}
	if c.Shards&(c.Shards-1) != 0 {
		panic(fmt.Sprintf("table: Shards must be a power of two, got %d", c.Shards))
	}
	return c
}

// entry is one live key. mu serialises sketch liveness and identity:
// updaters hold it shared for the duration of their sketch calls,
// evictors hold it exclusive while draining and closing the sketch,
// and hot-key promotion holds it exclusive while swapping sk for a
// scaled-up rebuild. touched is the UnixNano of the last update, for
// TTL/LRU eviction; hits counts ingested updates since creation or the
// last promotion.
type entry[V, S, C any] struct {
	mu      sync.RWMutex
	sk      core.EngineSketch[V, S, C]
	touched atomic.Int64
	// dead is set (under mu exclusive) once finalize or Close has
	// closed sk; a deferred promotion that lost the race to an
	// eviction must not rebuild the closed sketch (the rebuilt sketch
	// would be unreachable and never closed — a pool-attachment leak).
	dead bool

	// Hot-key promotion state. level counts promotions (atomic: read
	// on the unlocked counting path); eng is the engine that built sk
	// (the ladder engine after promotion; guarded by mu). Promotion
	// rebuilds sk seeded from its own compact, so the live sketch
	// always carries the key's full history.
	hits  atomic.Int64
	level atomic.Int32
	eng   core.Engine[V, S, C]
}

// shard is one power-of-two slice of the key space. mu protects m
// (membership only, never sketch state). epoch counts map removals —
// the coherence stamp for per-writer entry caches: any eviction,
// expiry or close that deletes a key bumps it, invalidating every
// cached entry of this shard at its next validation.
type shard[K Key, V, S, C any] struct {
	mu    sync.RWMutex
	m     map[K]*entry[V, S, C]
	epoch atomic.Uint64
}

// Table is the generic keyed sketch table; the exported ThetaTable /
// QuantilesTable / HLLTable wrap it (through SketchTable) with
// concrete sketch engines.
type Table[K Key, V, S, C any] struct {
	cfg  Config[K]
	eng  core.Engine[V, S, C]
	pool *core.PropagatorPool
	// ownPool is true when the table created (and must close) its pool.
	ownPool bool

	shards []shard[K, V, S, C]
	mask   uint64
	// perShardCap is ceil(MaxKeys/Shards), 0 when uncapped.
	perShardCap int

	// hot is the active hot-key policy (nil when disabled or the
	// engine is not scalable); ladder[i] is the engine for promotion
	// level i+1, built once at construction, and scal is the base
	// engine as a ScalableEngine — the demotion target for level 1.
	hot    *HotKeyPolicy
	ladder []core.ScalableEngine[V, S, C]
	scal   core.ScalableEngine[V, S, C]

	keys       atomic.Int64
	evictions  atomic.Int64
	evictCap   atomic.Int64
	evictTTL   atomic.Int64
	promotions atomic.Int64
	demotions  atomic.Int64
	closed     atomic.Bool

	// wstats holds one padded cell pair per writer handle: each writer
	// folds its entry-cache hit/miss deltas into its own cell (one
	// uncontended atomic add per op or batch), and Stats sums them —
	// scrape-safe aggregation without sharing a contended cell across
	// writers.
	wstats []writerCells

	// rollupHist/snapHist, when set by RegisterMetrics, receive the
	// wall duration of every rollup / snapshot capture (nil until
	// metrics are registered — reads stay observation-free).
	rollupHist atomic.Pointer[metrics.Histogram]
	snapHist   atomic.Pointer[metrics.Histogram]

	// now is the eviction clock (UnixNano); tests override it.
	now func() int64
}

func newTable[K Key, V, S, C any](cfg Config[K], eng core.Engine[V, S, C]) *Table[K, V, S, C] {
	cfg = cfg.withDefaults()
	t := &Table[K, V, S, C]{
		cfg:    cfg,
		eng:    eng,
		pool:   cfg.Pool,
		shards: make([]shard[K, V, S, C], cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		now:    func() int64 { return time.Now().UnixNano() },
	}
	if t.pool == nil {
		t.pool = core.NewPropagatorPool(cfg.Propagators)
		t.ownPool = true
	}
	if cfg.MaxKeys > 0 {
		t.perShardCap = (cfg.MaxKeys + cfg.Shards - 1) / cfg.Shards
	}
	for i := range t.shards {
		t.shards[i].m = make(map[K]*entry[V, S, C])
	}
	t.wstats = make([]writerCells, cfg.Writers)
	if cfg.HotKeys != nil && cfg.HotKeys.HotThreshold > 0 {
		if se, ok := any(eng).(core.ScalableEngine[V, S, C]); ok {
			t.scal = se
			depth := cfg.HotKeys.MaxPromotions
			if depth <= 0 {
				depth = 3
			}
			for i := 0; i < depth; i++ {
				next, ok := se.ScaleUp()
				if !ok {
					break
				}
				// Ladder engines must be scalable themselves: the
				// promotion rebuild seeds the new sketch through them.
				nse, ok := any(next).(core.ScalableEngine[V, S, C])
				if !ok {
					break
				}
				t.ladder = append(t.ladder, nse)
				se = nse
			}
			if len(t.ladder) > 0 {
				t.hot = cfg.HotKeys
			}
		}
	}
	return t
}

// keyHash returns the shard-placement hash of a key; the low bits pick
// the shard, the whole word indexes the writer entry caches and pins
// the key's sketch to a pool worker. The any-boxing compiles to a type
// switch on the instantiation's shape and does not escape.
func keyHash[K Key](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		h, _ := hash.Sum128String(v, shardSeed)
		return h
	case uint64:
		h, _ := hash.SumUint64(v, shardSeed)
		return h
	default:
		panic("table: unsupported key type")
	}
}

// affinityKeyOf maps a key hash to a nonzero pool-affinity key (the
// pool reserves 0 for "no preference").
func affinityKeyOf(h uint64) uint64 {
	if h == 0 {
		return shardSeed
	}
	return h
}

// writerCells is one writer's table-side stat cells, padded to 128
// bytes so adjacent writers' cells never share a cache line.
type writerCells struct {
	hits   atomic.Int64
	misses atomic.Int64
	_      [112]byte
}

// Stats is a point-in-time snapshot of the table's operational
// counters, the per-subsystem attribution exported through
// SketchTable.RegisterMetrics.
type Stats struct {
	// Keys is the number of live keys.
	Keys int
	// Evictions counts evicted keys, total and by cause.
	Evictions    int64
	EvictionsCap int64 // size-cap (LRU) evictions
	EvictionsTTL int64 // idle-TTL evictions
	// Promotions and Demotions count hot-key ladder moves.
	Promotions int64
	Demotions  int64
	// CacheHits counts key resolutions served by writer entry caches;
	// ShardLookups counts the misses resolved through shard maps.
	CacheHits    int64
	ShardLookups int64
}

// Pool returns the table's propagation executor.
func (t *Table[K, V, S, C]) Pool() *core.PropagatorPool { return t.pool }

// Keys returns the number of live keys.
func (t *Table[K, V, S, C]) Keys() int { return int(t.keys.Load()) }

// Evictions returns the number of keys evicted so far.
func (t *Table[K, V, S, C]) Evictions() int64 { return t.evictions.Load() }

// Promotions returns the number of hot-key promotions performed.
func (t *Table[K, V, S, C]) Promotions() int64 { return t.promotions.Load() }

// Demotions returns the number of hot-key demotions performed.
func (t *Table[K, V, S, C]) Demotions() int64 { return t.demotions.Load() }

// Stats returns a snapshot of the table's operational counters.
func (t *Table[K, V, S, C]) Stats() Stats {
	s := Stats{
		Keys:         t.Keys(),
		Evictions:    t.evictions.Load(),
		EvictionsCap: t.evictCap.Load(),
		EvictionsTTL: t.evictTTL.Load(),
		Promotions:   t.promotions.Load(),
		Demotions:    t.demotions.Load(),
	}
	for i := range t.wstats {
		s.CacheHits += t.wstats[i].hits.Load()
		s.ShardLookups += t.wstats[i].misses.Load()
	}
	return s
}

// NumWriters returns the configured writer-handle count N.
func (t *Table[K, V, S, C]) NumWriters() int { return t.cfg.Writers }

// writerCacheSize is the per-writer direct-mapped entry-cache size (a
// power of two). 512 slots cover the hot set of a zipfian key draw at
// a few KB per writer.
const writerCacheSize = 512

// Writer returns the i-th writer handle (0 <= i < Config.Writers).
// Each handle must be used by at most one goroutine at a time.
func (t *Table[K, V, S, C]) Writer(i int) *Writer[K, V, S, C] {
	if i < 0 || i >= t.cfg.Writers {
		panic(fmt.Sprintf("table: writer index %d out of range [0,%d)", i, t.cfg.Writers))
	}
	return &Writer[K, V, S, C]{
		t:           t,
		id:          i,
		gidx:        make(map[K]int),
		shardGroups: make([][]int, t.cfg.Shards),
		ckeys:       make([]K, writerCacheSize),
		centries:    make([]*entry[V, S, C], writerCacheSize),
		chashes:     make([]uint64, writerCacheSize),
		cepochs:     make([]uint64, writerCacheSize),
	}
}

// query returns the wait-free per-key snapshot. The shard read-lock
// guards only map membership; the snapshot itself is the framework's
// single atomic read and is never blocked by ingestion or propagation.
// With a hot-key policy the entry lock is additionally held shared, to
// pin the sketch identity against a racing promotion — a promoted
// key's live sketch carries its full history (the rebuild is seeded
// from the old compact), so the query is still one snapshot read.
func (t *Table[K, V, S, C]) query(k K) (S, bool) {
	sh := &t.shards[keyHash(k)&t.mask]
	sh.mu.RLock()
	e := sh.m[k]
	if e == nil {
		sh.mu.RUnlock()
		var zero S
		return zero, false
	}
	if t.hot == nil {
		s := e.sk.Query()
		sh.mu.RUnlock()
		return s, true
	}
	e.mu.RLock()
	sh.mu.RUnlock()
	s := e.sk.Query()
	e.mu.RUnlock()
	return s, true
}

// compactOf returns the entry's full-history compact, normalized to
// the table's base parameter when the entry was promoted to a
// different one — every compact leaving the table (per-key compacts,
// table snapshots, rollups, eviction spills) is base-compatible
// regardless of promotion level, keeping the FCTB wire format and
// cross-table merges unchanged. Caller must hold e.mu (shared or
// exclusive).
func (t *Table[K, V, S, C]) compactOf(e *entry[V, S, C]) C {
	c := e.sk.Compact()
	if e.eng.Param() == t.eng.Param() {
		return c
	}
	norm := t.eng.NewAggregator()
	_ = norm.Add(c)
	return norm.Result()
}

// compactKey returns a serializable compact snapshot of one live key.
func (t *Table[K, V, S, C]) compactKey(k K) (C, bool) {
	sh := &t.shards[keyHash(k)&t.mask]
	sh.mu.RLock()
	e := sh.m[k]
	if e == nil {
		sh.mu.RUnlock()
		var zero C
		return zero, false
	}
	if t.hot == nil {
		c := e.sk.Compact()
		sh.mu.RUnlock()
		return c, true
	}
	e.mu.RLock()
	sh.mu.RUnlock()
	c := t.compactOf(e)
	e.mu.RUnlock()
	return c, true
}

// forEachCompact visits a compact snapshot of every live key. Entry
// pointers are collected shard by shard under the shard read-lock and
// compacted outside it under each entry's own liveness lock, so
// eviction, lazy creation and writer-cache validation on a shard never
// stall behind a whole-shard compaction scan; a key evicted between
// collection and compaction is skipped, exactly as a slightly earlier
// walk would have missed it. Consistency is per key, not across keys —
// the usual r-relaxed guarantee.
func (t *Table[K, V, S, C]) forEachCompact(fn func(k K, c C)) {
	keys, ents := t.collectEntries()
	for i, e := range ents {
		if c, ok := t.compactEntry(e); ok {
			fn(keys[i], c)
		}
	}
}

// getOrCreate resolves the entry for a key, creating it lazily, and
// returns it with its liveness lock held shared (the caller must
// release it after the sketch call) plus the shard epoch observed
// while the entry was provably in the map — the stamp a writer cache
// slot needs. Lock coupling with the shard lock guarantees an evictor
// cannot close the sketch in between.
func (t *Table[K, V, S, C]) getOrCreate(sh *shard[K, V, S, C], k K, h uint64) (*entry[V, S, C], uint64) {
	sh.mu.RLock()
	if e := sh.m[k]; e != nil {
		ep := sh.epoch.Load()
		e.mu.RLock()
		sh.mu.RUnlock()
		return e, ep
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	e := sh.m[k]
	if e == nil {
		e = t.newEntry(h)
		sh.m[k] = e
		t.keys.Add(1)
	}
	ep := sh.epoch.Load()
	e.mu.RLock()
	sh.mu.Unlock()
	return e, ep
}

// newEntry creates a live entry whose sketch is pinned to the pool
// worker the key hash maps to. touched starts at now, not zero — a
// zero timestamp would make a just-created key the LRU victim and
// invert the eviction order.
func (t *Table[K, V, S, C]) newEntry(h uint64) *entry[V, S, C] {
	e := &entry[V, S, C]{
		sk:  t.eng.NewSketchAffine(t.pool, affinityKeyOf(h)),
		eng: t.eng,
	}
	e.touched.Store(t.now())
	return e
}

// maybeEvictCap enforces the per-shard key cap after inserts into
// shard si, evicting least-recently-updated keys first.
func (t *Table[K, V, S, C]) maybeEvictCap(si uint64) {
	if t.perShardCap == 0 {
		return
	}
	sh := &t.shards[si]
	sh.mu.RLock()
	over := len(sh.m) > t.perShardCap
	sh.mu.RUnlock()
	if !over {
		return
	}
	type victim struct {
		k K
		e *entry[V, S, C]
	}
	var victims []victim
	sh.mu.Lock()
	for len(sh.m) > t.perShardCap {
		// Sampled LRU (Redis-style): examine a bounded sample per
		// victim instead of the whole shard, so eviction under key
		// churn costs O(sample), not O(shard), per insert while the
		// shard's exclusive lock is held. Go's randomized map
		// iteration supplies the sample; shards at or below the
		// sample size degenerate to exact LRU.
		const evictionSample = 64
		var oldestK K
		var oldest *entry[V, S, C]
		var oldestT int64
		seen := 0
		for k, e := range sh.m {
			if ts := e.touched.Load(); oldest == nil || ts < oldestT {
				oldestK, oldest, oldestT = k, e, ts
			}
			if seen++; seen >= evictionSample {
				break
			}
		}
		delete(sh.m, oldestK)
		t.keys.Add(-1)
		victims = append(victims, victim{oldestK, oldest})
	}
	if len(victims) > 0 {
		// Invalidate writer caches before any victim is finalized: a
		// cached hit re-validates this stamp under the entry lock, so
		// after the bump no writer can start using a victim.
		sh.epoch.Add(1)
	}
	sh.mu.Unlock()
	for _, v := range victims {
		t.finalize(v.k, v.e, true)
	}
	t.evictCap.Add(int64(len(victims)))
}

// EvictExpired evicts every key idle for longer than Config.TTL and
// returns the number evicted. A no-op when TTL is zero. Spilled
// snapshots go to OnEvict like cap evictions.
func (t *Table[K, V, S, C]) EvictExpired() int {
	if t.cfg.TTL <= 0 {
		return 0
	}
	cutoff := t.now() - t.cfg.TTL.Nanoseconds()
	type victim struct {
		k K
		e *entry[V, S, C]
	}
	var victims []victim
	for i := range t.shards {
		sh := &t.shards[i]
		removed := false
		sh.mu.Lock()
		for k, e := range sh.m {
			if e.touched.Load() < cutoff {
				delete(sh.m, k)
				t.keys.Add(-1)
				victims = append(victims, victim{k, e})
				removed = true
			}
		}
		if removed {
			sh.epoch.Add(1)
		}
		sh.mu.Unlock()
	}
	for _, v := range victims {
		t.finalize(v.k, v.e, true)
	}
	t.evictTTL.Add(int64(len(victims)))
	return len(victims)
}

// finalize drains and closes an entry already removed from its shard
// map, spilling its compact snapshot to OnEvict when requested. The
// exclusive entry lock waits out in-flight updaters; holding it makes
// the evictor the sole user of every writer slot, so flushing them is
// within the framework's single-goroutine handle contract.
func (t *Table[K, V, S, C]) finalize(k K, e *entry[V, S, C], spill bool) {
	e.mu.Lock()
	for i := 0; i < t.cfg.Writers; i++ {
		e.sk.Flush(i)
	}
	var data []byte
	if spill && t.cfg.OnEvict != nil {
		if b, err := t.eng.MarshalCompact(t.compactOf(e)); err == nil {
			data = b
		}
	}
	e.sk.Close()
	e.dead = true
	e.mu.Unlock()
	t.evictions.Add(1)
	if spill && t.cfg.OnEvict != nil {
		t.cfg.OnEvict(k, data)
	}
}

// promote rebuilds a hot entry's sketch through the next ladder
// engine: flush every slot (exclusive access makes this safe, as in
// finalize), capture the full history as a compact, close the old
// sketch and start the scaled one — seeded from that compact, on the
// same pool worker — in its place. Callers must hold no table or
// entry locks; an entry already evicted (dead) is left untouched.
func (t *Table[K, V, S, C]) promote(e *entry[V, S, C], h uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lvl := int(e.level.Load())
	if e.dead || lvl >= len(t.ladder) || e.hits.Load() < t.hot.HotThreshold {
		return
	}
	for i := 0; i < t.cfg.Writers; i++ {
		e.sk.Flush(i)
	}
	c := e.sk.Compact()
	e.sk.Close()
	next := t.ladder[lvl]
	e.sk = next.NewSketchSeeded(t.pool, affinityKeyOf(h), c)
	e.eng = next
	e.level.Store(int32(lvl + 1))
	e.hits.Store(0)
	t.promotions.Add(1)
}

// demote rebuilds a promoted entry one ladder step down, seeded from
// its own compact (normalized to the target engine's parameter) on the
// same pool worker — the exact inverse of promote. The entry must
// still be idle past cutoff once the exclusive lock is held: an update
// that raced the scan wins and the demotion is skipped. Callers must
// hold no table or entry locks.
func (t *Table[K, V, S, C]) demote(e *entry[V, S, C], h uint64, cutoff int64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	lvl := int(e.level.Load())
	if e.dead || lvl == 0 || e.touched.Load() >= cutoff {
		return false
	}
	for i := 0; i < t.cfg.Writers; i++ {
		e.sk.Flush(i)
	}
	target := t.scal
	if lvl > 1 {
		target = t.ladder[lvl-2]
	}
	c := e.sk.Compact()
	if e.eng.Param() != target.Param() {
		norm := target.NewAggregator()
		_ = norm.Add(c)
		c = norm.Result()
	}
	e.sk.Close()
	e.sk = target.NewSketchSeeded(t.pool, affinityKeyOf(h), c)
	e.eng = target
	e.level.Store(int32(lvl - 1))
	e.hits.Store(0)
	t.demotions.Add(1)
	return true
}

// DemoteCooled rebuilds every promoted key that has been idle for at
// least HotKeyPolicy.CoolAfter one ladder step down, shedding the
// enlarged local buffers (and the doubled relaxation bound r) that a
// past hot phase earned. Returns the number of keys demoted. A no-op
// when no hot-key policy is active or CoolAfter is zero. Like
// EvictExpired, call it periodically; each pass sheds at most one
// level per key.
func (t *Table[K, V, S, C]) DemoteCooled() int {
	if t.hot == nil || t.hot.CoolAfter <= 0 {
		return 0
	}
	cutoff := t.now() - t.hot.CoolAfter.Nanoseconds()
	type cand struct {
		e *entry[V, S, C]
		h uint64
	}
	var cands []cand
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if e.level.Load() > 0 && e.touched.Load() < cutoff {
				cands = append(cands, cand{e, keyHash(k)})
			}
		}
		sh.mu.RUnlock()
	}
	n := 0
	for _, c := range cands {
		if t.demote(c.e, c.h, cutoff) {
			n++
		}
	}
	return n
}

// noteHot credits n ingested updates to the entry and reports whether
// the caller should promote it (the counter just crossed the
// threshold and the ladder has a next step). Safe without locks.
func (t *Table[K, V, S, C]) noteHot(e *entry[V, S, C], n int) bool {
	if t.hot == nil {
		return false
	}
	after := e.hits.Add(int64(n))
	return after >= t.hot.HotThreshold &&
		after-int64(n) < t.hot.HotThreshold &&
		int(e.level.Load()) < len(t.ladder)
}

// Drain flushes every writer slot of every live key so queries and
// snapshots reflect all prior updates. All writer handles must be
// quiescent, exactly as for Close.
func (t *Table[K, V, S, C]) Drain() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			e.mu.Lock()
			for w := 0; w < t.cfg.Writers; w++ {
				e.sk.Flush(w)
			}
			e.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
}

// Close drains and closes every per-key sketch and, when owned, the
// propagator pool. All writer handles must be quiescent. Idempotent.
func (t *Table[K, V, S, C]) Close() {
	if t.closed.Swap(true) {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = make(map[K]*entry[V, S, C])
		sh.epoch.Add(1)
		sh.mu.Unlock()
		for _, e := range m {
			e.mu.Lock()
			for w := 0; w < t.cfg.Writers; w++ {
				e.sk.Flush(w)
			}
			e.sk.Close()
			e.dead = true
			e.mu.Unlock()
			t.keys.Add(-1)
		}
	}
	if t.ownPool {
		t.pool.Close()
	}
}

// Writer is a single-goroutine keyed ingestion handle: table writer i
// drives slot i of every per-key sketch it touches. All grouping
// scratch is retained across calls, so steady-state keyed batches
// allocate only when a batch introduces new distinct keys or values
// outgrow their run buffers.
//
// Each writer owns a direct-mapped key→entry cache: a repeat key
// resolves its entry from the cache and re-validates the shard's
// eviction epoch under the entry's liveness lock, skipping the shard
// read-lock and map lookup of the slow path. A slot whose stamp went
// stale (any key left that shard's map since the slot was filled) is
// dropped and resolved through the shard map again, so an evicted
// key's entry is never written through the cache.
type Writer[K Key, V, S, C any] struct {
	t  *Table[K, V, S, C]
	id int

	// gidx maps a batch's distinct keys to group indices; gkeys/ghash/
	// gvals are the parallel key, key-hash and value-run storage, and
	// entries the resolved per-group entries. shardGroups buckets
	// group indices by shard (len = Shards) and shardOrder lists
	// touched shards.
	gidx        map[K]int
	gkeys       []K
	ghash       []uint64
	gvals       [][]V
	entries     []*entry[V, S, C]
	gepochs     []uint64
	shardGroups [][]int
	shardOrder  []int
	missing     []int
	creating    []int

	// The direct-mapped entry cache, indexed by key hash. A slot is
	// (key, hash, entry, shard-epoch stamp); centries[j] == nil means
	// empty. chits/cmisses count lookups (single-goroutine, like the
	// writer itself).
	ckeys    []K
	centries []*entry[V, S, C]
	chashes  []uint64
	cepochs  []uint64
	chits    int64
	cmisses  int64

	// hotPending collects entries whose promotion threshold a batch
	// crossed; promotions run after every entry lock of the batch is
	// released (promotion takes the entry lock exclusively).
	hotPending []hotRef[V, S, C]
}

// hotRef is one deferred hot-key promotion.
type hotRef[V, S, C any] struct {
	e *entry[V, S, C]
	h uint64
}

// cacheLookup resolves a key through the writer's entry cache. On a
// hit it returns the entry with its liveness lock held shared and the
// shard epoch re-validated — the entry is live and in the map. On any
// miss (empty slot, different key, stale stamp) it returns nil; stale
// slots are cleared. Callers must hold no other locks (the single-key
// update path).
func (w *Writer[K, V, S, C]) cacheLookup(k K, h uint64, sh *shard[K, V, S, C]) *entry[V, S, C] {
	j := h & (writerCacheSize - 1)
	e := w.centries[j]
	if e == nil || w.chashes[j] != h || w.ckeys[j] != k {
		w.cmisses++
		return nil
	}
	e.mu.RLock()
	if sh.epoch.Load() != w.cepochs[j] {
		// A key left this shard since the slot was filled: the cached
		// entry may be the one evicted. Drop the slot and resolve
		// through the map.
		e.mu.RUnlock()
		w.centries[j] = nil
		w.cmisses++
		return nil
	}
	w.chits++
	return e
}

// cacheProbe is the lock-free half of cacheLookup, used by the batch
// path: it returns the cached entry candidate and its stamp without
// acquiring any lock; the batch's apply round re-validates the stamp
// under the entry lock just before use.
func (w *Writer[K, V, S, C]) cacheProbe(k K, h uint64) (*entry[V, S, C], uint64) {
	j := h & (writerCacheSize - 1)
	e := w.centries[j]
	if e == nil || w.chashes[j] != h || w.ckeys[j] != k {
		w.cmisses++
		return nil, 0
	}
	w.chits++
	return e, w.cepochs[j]
}

// CacheStats returns the writer's entry-cache hit/miss counters. Like
// every Writer method, single-goroutine use.
func (w *Writer[K, V, S, C]) CacheStats() (hits, misses int64) { return w.chits, w.cmisses }

// cacheStore fills the cache slot for a key resolved through the slow
// path. epoch must have been loaded while the entry was provably in
// the shard map (under the shard lock).
func (w *Writer[K, V, S, C]) cacheStore(k K, h uint64, e *entry[V, S, C], epoch uint64) {
	j := h & (writerCacheSize - 1)
	w.ckeys[j] = k
	w.chashes[j] = h
	w.centries[j] = e
	w.cepochs[j] = epoch
}

// UpdateKeyed processes one (key, value) update.
func (w *Writer[K, V, S, C]) UpdateKeyed(k K, v V) {
	t := w.t
	h := keyHash(k)
	si := h & t.mask
	sh := &t.shards[si]
	e := w.cacheLookup(k, h, sh)
	created := e == nil
	if created {
		var ep uint64
		e, ep = t.getOrCreate(sh, k, h)
		w.cacheStore(k, h, e, ep)
		t.wstats[w.id].misses.Add(1)
	} else {
		t.wstats[w.id].hits.Add(1)
	}
	e.sk.Update(w.id, v)
	e.touched.Store(t.now())
	hot := t.noteHot(e, 1)
	e.mu.RUnlock()
	if hot {
		t.promote(e, h)
	}
	if created {
		t.maybeEvictCap(si)
	}
}

// UpdateKeyedBatch processes parallel slices of keys and values: values
// are grouped by key, the distinct keys grouped by shard so each shard
// lock is taken once, and each key's run enters its sketch through the
// fused hash+pre-filter batch path. Slices must have equal length.
func (w *Writer[K, V, S, C]) UpdateKeyedBatch(keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("table: UpdateKeyedBatch length mismatch: %d keys, %d values", len(keys), len(vals)))
	}
	if len(keys) == 0 {
		return
	}
	// Pass 1: group values by key and distinct keys by shard.
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], vals[i])
	}
	w.apply(false)
}

// UpdateKeyedHashedBatch is UpdateKeyedBatch for values that are
// already item hashes in the sketch family's hash space; each key's run
// enters its sketch through the pre-hashed batch path. The keyed
// string-ingestion paths hash in their grouping pass and land here.
func (w *Writer[K, V, S, C]) UpdateKeyedHashedBatch(keys []K, hs []V) {
	if len(keys) != len(hs) {
		panic(fmt.Sprintf("table: UpdateKeyedHashedBatch length mismatch: %d keys, %d hashes", len(keys), len(hs)))
	}
	if len(keys) == 0 {
		return
	}
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], hs[i])
	}
	w.apply(true)
}

// updateKeyedStringBatch groups string items by key while hashing each
// item with hashItem in the same pass — one scan, no intermediate
// hashed slice — then applies the runs through the pre-hashed path.
// The Θ and HLL table writers bind hashItem to their seed once.
func (w *Writer[K, V, S, C]) updateKeyedStringBatch(keys []K, items []string, hashItem func(string) V) {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("table: UpdateKeyedStringBatch length mismatch: %d keys, %d items", len(keys), len(items)))
	}
	if len(keys) == 0 {
		return
	}
	for i, k := range keys {
		gi := w.group(k)
		w.gvals[gi] = append(w.gvals[gi], hashItem(items[i]))
	}
	w.apply(true)
}

// BatchAdd stages one (key, value) update in the writer's grouping
// scratch without applying it. It is pass 1 of the grouped ingestion
// exposed as a streaming entry point: a decoder walking a wire frame
// can feed pairs one at a time — no intermediate key/value slices —
// and commit the whole batch with BatchCommit (or BatchCommitHashed
// when the values are already item hashes). Staged state is invisible
// to queries until committed.
func (w *Writer[K, V, S, C]) BatchAdd(k K, v V) {
	gi := w.group(k)
	w.gvals[gi] = append(w.gvals[gi], v)
}

// BatchLookup reports the group index k is already staged under,
// without registering it. It lets a streaming decoder probe with a
// transient view of a key (bytes aliasing a network buffer) and only
// materialize an owned copy — via BatchGroup — when the key is new to
// the batch; the grouping scratch retains registered keys, so a view
// must never reach BatchGroup.
func (w *Writer[K, V, S, C]) BatchLookup(k K) (int, bool) {
	gi, ok := w.gidx[k]
	return gi, ok
}

// BatchGroup registers k in the staged batch (first sight allowed) and
// returns its group index for BatchAppend.
func (w *Writer[K, V, S, C]) BatchGroup(k K) int { return w.group(k) }

// BatchAppend stages one value onto a group obtained from BatchLookup
// or BatchGroup.
func (w *Writer[K, V, S, C]) BatchAppend(gi int, v V) {
	w.gvals[gi] = append(w.gvals[gi], v)
}

// BatchCommit applies every staged update and leaves the scratch
// empty, exactly as UpdateKeyedBatch's pass 2 would.
func (w *Writer[K, V, S, C]) BatchCommit() {
	if len(w.gkeys) == 0 {
		return
	}
	w.apply(false)
}

// BatchCommitHashed is BatchCommit for staged values that are already
// item hashes in the sketch family's hash space.
func (w *Writer[K, V, S, C]) BatchCommitHashed() {
	if len(w.gkeys) == 0 {
		return
	}
	w.apply(true)
}

// BatchReset discards every staged update, restoring the scratch to
// the state a committed batch leaves behind. A decoder that fails
// mid-stream must reset, or its partial batch would leak into the
// handle's next commit.
func (w *Writer[K, V, S, C]) BatchReset() {
	for _, si := range w.shardOrder {
		for _, gi := range w.shardGroups[si] {
			w.gvals[gi] = w.gvals[gi][:0]
		}
		w.shardGroups[si] = w.shardGroups[si][:0]
	}
	clear(w.gidx)
	w.gkeys = w.gkeys[:0]
	w.ghash = w.ghash[:0]
	w.shardOrder = w.shardOrder[:0]
}

// group resolves the batch group index for a key, registering the key
// with its shard on first sight (pass 1 of the grouped ingestion).
func (w *Writer[K, V, S, C]) group(k K) int {
	gi, ok := w.gidx[k]
	if !ok {
		gi = len(w.gkeys)
		w.gidx[k] = gi
		w.gkeys = append(w.gkeys, k)
		h := keyHash(k)
		w.ghash = append(w.ghash, h)
		if len(w.gvals) <= gi {
			w.gvals = append(w.gvals, nil)
			w.entries = append(w.entries, nil)
			w.gepochs = append(w.gepochs, 0)
		}
		si := h & w.t.mask
		if len(w.shardGroups[si]) == 0 {
			w.shardOrder = append(w.shardOrder, int(si))
		}
		w.shardGroups[si] = append(w.shardGroups[si], gi)
	}
	return gi
}

// apply drains the grouped runs into the per-key sketches (pass 2 of
// the grouped ingestion), leaving the grouping scratch empty. hashed
// selects the pre-hashed ingestion path.
//
// Locking discipline: the resolve rounds record (entry, shard-epoch
// stamp) pairs without holding any entry lock, and the apply round
// locks exactly one entry at a time, re-validating its stamp before
// use (the cache-hit protocol, applied uniformly). No entry lock is
// ever held while a shard lock is acquired and no two entry locks are
// held together — which is what lets hot-key promotion take entry
// locks exclusively while the entry is still mapped, without forming
// a reader/writer lock cycle against concurrent batches and queries.
func (w *Writer[K, V, S, C]) apply(hashed bool) {
	t := w.t
	now := t.now()
	// Fold this batch's entry-cache hit/miss deltas into the writer's
	// table-side cell on the way out: two uncontended atomic adds per
	// batch, nothing per key.
	h0, m0 := w.chits, w.cmisses
	for _, si := range w.shardOrder {
		sh := &t.shards[si]
		groups := w.shardGroups[si]
		w.missing = w.missing[:0]
		created := false
		// Round 0: writer entry cache — lock-free candidate probes.
		for _, gi := range groups {
			if e, ep := w.cacheProbe(w.gkeys[gi], w.ghash[gi]); e != nil {
				w.entries[gi] = e
				w.gepochs[gi] = ep
			} else {
				w.missing = append(w.missing, gi)
			}
		}
		if len(w.missing) > 0 {
			// Round 1: resolve cache misses through the shard map under
			// the read lock, collecting absent keys.
			w.creating = w.creating[:0]
			sh.mu.RLock()
			ep := sh.epoch.Load()
			for _, gi := range w.missing {
				if e := sh.m[w.gkeys[gi]]; e != nil {
					w.entries[gi] = e
					w.gepochs[gi] = ep
					w.cacheStore(w.gkeys[gi], w.ghash[gi], e, ep)
				} else {
					w.creating = append(w.creating, gi)
				}
			}
			sh.mu.RUnlock()
			if len(w.creating) > 0 {
				// Round 2: create absent keys under the write lock.
				created = true
				sh.mu.Lock()
				epw := sh.epoch.Load()
				for _, gi := range w.creating {
					k := w.gkeys[gi]
					e := sh.m[k]
					if e == nil {
						e = t.newEntry(w.ghash[gi])
						sh.m[k] = e
						t.keys.Add(1)
					}
					w.entries[gi] = e
					w.gepochs[gi] = epw
					w.cacheStore(k, w.ghash[gi], e, epw)
				}
				sh.mu.Unlock()
			}
		}
		// Round 3: apply each run under its entry's lock alone.
		for _, gi := range groups {
			e := w.entries[gi]
			e.mu.RLock()
			if sh.epoch.Load() != w.gepochs[gi] {
				// A key left this shard between resolve and use; the
				// entry may be the one evicted. Re-resolve through the
				// map (creating a fresh incarnation if needed) — no
				// other lock is held here, so getOrCreate's coupling
				// is safe.
				e.mu.RUnlock()
				var ep uint64
				e, ep = t.getOrCreate(sh, w.gkeys[gi], w.ghash[gi])
				w.cacheStore(w.gkeys[gi], w.ghash[gi], e, ep)
				created = true
			}
			run := w.gvals[gi]
			if hashed {
				e.sk.UpdateHashedBatch(w.id, run)
			} else {
				e.sk.UpdateBatch(w.id, run)
			}
			e.touched.Store(now)
			if t.noteHot(e, len(run)) {
				w.hotPending = append(w.hotPending, hotRef[V, S, C]{e: e, h: w.ghash[gi]})
			}
			e.mu.RUnlock()
			w.entries[gi] = nil
			w.gvals[gi] = w.gvals[gi][:0]
		}
		w.shardGroups[si] = w.shardGroups[si][:0]
		if created {
			t.maybeEvictCap(uint64(si))
		}
	}
	clear(w.gidx) // one bulk reset beats a delete per distinct key
	w.gkeys = w.gkeys[:0]
	w.ghash = w.ghash[:0]
	w.shardOrder = w.shardOrder[:0]
	// Promote after the batch's own entry locks are all released;
	// promote itself takes each entry's lock exclusively, one at a
	// time, holding nothing else.
	for _, p := range w.hotPending {
		t.promote(p.e, p.h)
	}
	w.hotPending = w.hotPending[:0]
	t.wstats[w.id].hits.Add(w.chits - h0)
	t.wstats[w.id].misses.Add(w.cmisses - m0)
}

// FlushKey hands off this writer's buffered updates for one key and
// waits until they are folded into the key's global sketch.
func (w *Writer[K, V, S, C]) FlushKey(k K) {
	t := w.t
	sh := &t.shards[keyHash(k)&t.mask]
	sh.mu.RLock()
	e := sh.m[k]
	if e == nil {
		sh.mu.RUnlock()
		return
	}
	e.mu.RLock()
	sh.mu.RUnlock()
	e.sk.Flush(w.id)
	e.mu.RUnlock()
}
