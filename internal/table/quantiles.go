package table

import (
	"fmt"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/quantiles"
)

// QuantilesConfig configures a keyed quantiles table (per-key latency
// percentiles and the like). Zero fields take table-scale defaults:
// K=32 (≈3.5% rank error at a fraction of the standalone K=128
// footprint — every writer slot of every key buffers 2·K samples).
type QuantilesConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// K is each per-key sketch's accuracy parameter (power of two).
	K int
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 2·K.
	BufferSize int
	// Seed seeds the compaction-coin oracles.
	Seed uint64
}

func (c QuantilesConfig[K]) withDefaults() QuantilesConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.K == 0 {
		c.K = 32
	}
	// Validate here, not on first update: the lazy newSketch call runs
	// under a shard write-lock (see ThetaConfig.withDefaults).
	if c.K < 2 || c.K&(c.K-1) != 0 {
		panic(fmt.Sprintf("table: QuantilesConfig.K must be a power of two >= 2, got %d", c.K))
	}
	if c.BufferSize == 0 {
		c.BufferSize = 2 * c.K
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// quantilesKey adapts one per-key concurrent quantiles sketch.
type quantilesKey struct {
	c  *quantiles.Concurrent
	ws []*quantiles.ConcurrentWriter
}

func (s *quantilesKey) writer(i int) *quantiles.ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *quantilesKey) updateBatch(i int, vals []float64) { s.writer(i).UpdateBatch(vals) }
func (s *quantilesKey) update(i int, v float64)           { s.writer(i).Update(v) }
func (s *quantilesKey) flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *quantilesKey) query() *quantiles.Snapshot { return s.c.Snapshot() }
func (s *quantilesKey) compact() *quantiles.Sketch { return s.c.Compact() }
func (s *quantilesKey) close()                     { s.c.Close() }

// QuantilesTable maps keys to concurrent quantiles sketches: per-key
// distributions (latency per endpoint, payload size per tenant, ...)
// with wait-free per-key snapshots and one shared propagator pool.
type QuantilesTable[K Key] struct {
	t   *Table[K, float64, *quantiles.Snapshot, *quantiles.Sketch]
	cfg QuantilesConfig[K]
}

// QuantilesTableWriter is a single-goroutine keyed ingestion handle.
type QuantilesTableWriter[K Key] struct {
	w *Writer[K, float64, *quantiles.Snapshot, *quantiles.Sketch]
}

// NewQuantiles builds a keyed quantiles table; Close it when done.
func NewQuantiles[K Key](cfg QuantilesConfig[K]) *QuantilesTable[K] {
	cfg = cfg.withDefaults()
	o := ops[float64, *quantiles.Snapshot, *quantiles.Sketch]{
		kind:  KindQuantiles,
		param: uint32(cfg.K),
		newSketch: func(pool *core.PropagatorPool) keySketch[float64, *quantiles.Snapshot, *quantiles.Sketch] {
			return &quantilesKey{
				c: quantiles.NewConcurrent(quantiles.ConcurrentConfig{
					K:          cfg.K,
					Writers:    cfg.Table.Writers,
					BufferSize: cfg.BufferSize,
					Seed:       cfg.Seed,
					Pool:       pool,
				}),
				ws: make([]*quantiles.ConcurrentWriter, cfg.Table.Writers),
			}
		},
		marshal: func(c *quantiles.Sketch) ([]byte, error) { return c.MarshalBinary() },
	}
	return &QuantilesTable[K]{t: newTable(cfg.Table, o), cfg: cfg}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *QuantilesTable[K]) Writer(i int) *QuantilesTableWriter[K] {
	return &QuantilesTableWriter[K]{w: t.t.Writer(i)}
}

// SnapshotKey returns the key's current queryable snapshot. Wait-free;
// false when the key has never been updated (or was evicted).
func (t *QuantilesTable[K]) SnapshotKey(k K) (*quantiles.Snapshot, bool) { return t.t.query(k) }

// Quantile returns the key's current φ-quantile estimate; false when
// the key is not live.
func (t *QuantilesTable[K]) Quantile(k K, phi float64) (float64, bool) {
	s, ok := t.t.query(k)
	if !ok || s.IsEmpty() {
		return 0, false
	}
	return s.Quantile(phi), true
}

// CompactKey returns a serializable sequential copy of one key's
// sketch; false when the key is not live.
func (t *QuantilesTable[K]) CompactKey(k K) (*quantiles.Sketch, bool) { return t.t.compactKey(k) }

// Rollup merges every live key's sketch into one quantiles sketch over
// the union of all per-key streams.
func (t *QuantilesTable[K]) Rollup() *quantiles.Sketch {
	out := quantiles.New(t.cfg.K)
	t.t.forEachCompact(func(_ K, c *quantiles.Sketch) { out.Merge(c) })
	return out
}

// Relaxation returns the per-key bound r = 2·N·b.
func (t *QuantilesTable[K]) Relaxation() int { return 2 * t.cfg.Table.Writers * t.cfg.BufferSize }

// Keys returns the number of live keys.
func (t *QuantilesTable[K]) Keys() int { return t.t.Keys() }

// Evictions returns the number of keys evicted so far.
func (t *QuantilesTable[K]) Evictions() int64 { return t.t.Evictions() }

// Pool returns the table's propagation executor.
func (t *QuantilesTable[K]) Pool() *core.PropagatorPool { return t.t.Pool() }

// EvictExpired evicts keys idle longer than the configured TTL.
func (t *QuantilesTable[K]) EvictExpired() int { return t.t.EvictExpired() }

// Drain flushes all writer slots of all keys (writers must be
// quiescent).
func (t *QuantilesTable[K]) Drain() { t.t.Drain() }

// Snapshot captures every live key's sketch into a mergeable,
// serializable table snapshot.
func (t *QuantilesTable[K]) Snapshot() *TableSnapshot[K, *quantiles.Sketch] {
	s := newQuantilesSnapshot[K](uint32(t.cfg.K))
	t.t.forEachCompact(func(k K, c *quantiles.Sketch) { s.entries[k] = c })
	return s
}

// SnapshotBinary serializes the whole table (Snapshot + MarshalBinary).
func (t *QuantilesTable[K]) SnapshotBinary() ([]byte, error) { return t.Snapshot().MarshalBinary() }

// Close drains and closes every per-key sketch and the owned pool.
func (t *QuantilesTable[K]) Close() { t.t.Close() }

// UpdateKeyedBatch ingests parallel (key, value) slices: values are
// grouped by key and shard, then each key's run enters its sketch
// through the bulk batch path.
func (w *QuantilesTableWriter[K]) UpdateKeyedBatch(keys []K, vals []float64) {
	w.w.UpdateKeyedBatch(keys, vals)
}

// UpdateKeyed ingests one (key, value) pair.
func (w *QuantilesTableWriter[K]) UpdateKeyed(k K, v float64) { w.w.UpdateKeyed(k, v) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *QuantilesTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// newQuantilesSnapshot builds an empty quantiles table snapshot.
func newQuantilesSnapshot[K Key](param uint32) *TableSnapshot[K, *quantiles.Sketch] {
	return &TableSnapshot[K, *quantiles.Sketch]{
		kind:    KindQuantiles,
		param:   param,
		entries: make(map[K]*quantiles.Sketch),
		mergeC: func(a, b *quantiles.Sketch) (*quantiles.Sketch, error) {
			out := quantiles.New(int(param))
			out.Merge(a)
			out.Merge(b)
			return out, nil
		},
		marshalC:   func(c *quantiles.Sketch) ([]byte, error) { return c.MarshalBinary() },
		unmarshalC: func(b []byte) (*quantiles.Sketch, error) { return quantiles.Unmarshal(b) },
	}
}

// UnmarshalQuantilesSnapshot parses a serialized quantiles table
// snapshot keyed by K.
func UnmarshalQuantilesSnapshot[K Key](data []byte) (*TableSnapshot[K, *quantiles.Sketch], error) {
	h, body, err := parseSnapshotHeader[K](data, KindQuantiles)
	if err != nil {
		return nil, err
	}
	s := newQuantilesSnapshot[K](h.param)
	if err := s.parseEntries(body, h.count); err != nil {
		return nil, err
	}
	return s, nil
}
