package table

import (
	"fmt"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/quantiles"
)

// QuantilesConfig configures a keyed quantiles table (per-key latency
// percentiles and the like). Zero fields take table-scale defaults:
// K=32 (≈3.5% rank error at a fraction of the standalone K=128
// footprint — every writer slot of every key buffers 2·K samples).
type QuantilesConfig[K Key] struct {
	// Table is the sketch-independent table configuration.
	Table Config[K]
	// K is each per-key sketch's accuracy parameter (power of two).
	K int
	// BufferSize is b, each writer slot's local buffer per key; the
	// per-key relaxation is r = 2·N·b. Default 2·K.
	BufferSize int
	// Seed seeds the compaction-coin oracles.
	Seed uint64
}

func (c QuantilesConfig[K]) withDefaults() QuantilesConfig[K] {
	c.Table = c.Table.withDefaults()
	if c.K == 0 {
		c.K = 32
	}
	// Validate here, not on first update: the lazy NewSketch call runs
	// under a shard write-lock (see ThetaConfig.withDefaults).
	if c.K < 2 || c.K&(c.K-1) != 0 {
		panic(fmt.Sprintf("table: QuantilesConfig.K must be a power of two >= 2, got %d", c.K))
	}
	if c.BufferSize == 0 {
		c.BufferSize = 2 * c.K
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Engine returns the fully defaulted table configuration and the bound
// per-key quantiles sketch engine this config describes.
func (c QuantilesConfig[K]) Engine() (Config[K], *quantiles.Engine) {
	c = c.withDefaults()
	return c.Table, quantiles.NewEngine(quantiles.ConcurrentConfig{
		K:          c.K,
		Writers:    c.Table.Writers,
		BufferSize: c.BufferSize,
		Seed:       c.Seed,
	})
}

// QuantilesTable maps keys to concurrent quantiles sketches: per-key
// distributions (latency per endpoint, payload size per tenant, ...)
// with wait-free per-key snapshots and one shared propagator pool.
type QuantilesTable[K Key] struct {
	SketchTable[K, float64, *quantiles.Snapshot, *quantiles.Sketch]
}

// QuantilesTableWriter is a single-goroutine keyed ingestion handle.
type QuantilesTableWriter[K Key] struct {
	w *Writer[K, float64, *quantiles.Snapshot, *quantiles.Sketch]
}

// NewQuantiles builds a keyed quantiles table; Close it when done.
func NewQuantiles[K Key](cfg QuantilesConfig[K]) *QuantilesTable[K] {
	tcfg, eng := cfg.Engine()
	return &QuantilesTable[K]{
		SketchTable: *NewEngineTable[K](tcfg, core.Engine[float64, *quantiles.Snapshot, *quantiles.Sketch](eng)),
	}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (t *QuantilesTable[K]) Writer(i int) *QuantilesTableWriter[K] {
	return &QuantilesTableWriter[K]{w: t.SketchTable.Writer(i)}
}

// SnapshotKey returns the key's current queryable snapshot. Wait-free;
// false when the key has never been updated (or was evicted).
func (t *QuantilesTable[K]) SnapshotKey(k K) (*quantiles.Snapshot, bool) { return t.Query(k) }

// Quantile returns the key's current φ-quantile estimate; false when
// the key is not live.
func (t *QuantilesTable[K]) Quantile(k K, phi float64) (float64, bool) {
	s, ok := t.Query(k)
	if !ok || s.IsEmpty() {
		return 0, false
	}
	return s.Quantile(phi), true
}

// UpdateKeyedBatch ingests parallel (key, value) slices: values are
// grouped by key and shard, then each key's run enters its sketch
// through the bulk batch path.
func (w *QuantilesTableWriter[K]) UpdateKeyedBatch(keys []K, vals []float64) {
	w.w.UpdateKeyedBatch(keys, vals)
}

// UpdateKeyed ingests one (key, value) pair.
func (w *QuantilesTableWriter[K]) UpdateKeyed(k K, v float64) { w.w.UpdateKeyed(k, v) }

// FlushKey makes this writer's buffered updates for the key visible.
func (w *QuantilesTableWriter[K]) FlushKey(k K) { w.w.FlushKey(k) }

// UnmarshalQuantilesSnapshot parses a serialized quantiles table
// snapshot keyed by K.
func UnmarshalQuantilesSnapshot[K Key](data []byte) (*TableSnapshot[K, *quantiles.Sketch], error) {
	return unmarshalSnapshot[K](data, KindQuantiles, func(param uint32) core.CompactCodec[*quantiles.Sketch] {
		return quantiles.NewEngine(quantiles.ConcurrentConfig{K: int(param)})
	})
}
