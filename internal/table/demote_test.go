package table

import (
	"testing"
	"time"
)

// TestHotKeyDemotion exercises the reverse seeded-rebuild path: a key
// promoted up the ladder and then idle past CoolAfter is demoted one
// level per DemoteCooled pass, keeps its full history across every
// rebuild, and the promotion/demotion counters track the moves.
func TestHotKeyDemotion(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4,
			HotKeys: &HotKeyPolicy{HotThreshold: 512, MaxPromotions: 2, CoolAfter: time.Minute},
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	now := time.Now().UnixNano()
	tab.SketchTable.t.now = func() int64 { return now }
	w := tab.Writer(0)

	const hot, n = uint64(7), 2048
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	next := uint64(0)
	for sent := 0; sent < n; sent += len(keys) {
		for i := range keys {
			keys[i] = hot
			vals[i] = next * 0x9e3779b97f4a7c15
			next++
		}
		w.UpdateKeyedBatch(keys, vals)
	}
	tab.Drain()
	if got := tab.Promotions(); got != 2 {
		t.Fatalf("promotions = %d, want 2", got)
	}
	est0, ok := tab.Estimate(hot)
	if !ok || est0 < n*0.75 || est0 > n*1.25 {
		t.Fatalf("pre-demotion estimate = %v (ok=%v), want ~%d", est0, ok, n)
	}

	// Still warm: nothing to demote.
	if got := tab.DemoteCooled(); got != 0 {
		t.Fatalf("DemoteCooled on a warm key demoted %d, want 0", got)
	}

	// Idle past CoolAfter: one level shed per pass, history preserved.
	now += 2 * time.Minute.Nanoseconds()
	if got := tab.DemoteCooled(); got != 1 {
		t.Fatalf("first DemoteCooled pass = %d, want 1", got)
	}
	if est, ok := tab.Estimate(hot); !ok || est < n*0.6 || est > n*1.4 {
		t.Fatalf("estimate after first demotion = %v (ok=%v), want ~%d", est, ok, n)
	}
	now += 2 * time.Minute.Nanoseconds()
	if got := tab.DemoteCooled(); got != 1 {
		t.Fatalf("second DemoteCooled pass = %d, want 1", got)
	}
	// Fully back at the base level: nothing left to shed.
	now += 2 * time.Minute.Nanoseconds()
	if got := tab.DemoteCooled(); got != 0 {
		t.Fatalf("DemoteCooled at base level demoted %d, want 0", got)
	}
	if got := tab.Demotions(); got != 2 {
		t.Fatalf("demotions = %d, want 2", got)
	}
	if est, ok := tab.Estimate(hot); !ok || est < n*0.6 || est > n*1.4 {
		t.Fatalf("estimate back at base level = %v (ok=%v), want ~%d", est, ok, n)
	}

	// The demoted sketch keeps ingesting and can promote again.
	for sent := 0; sent < n; sent += len(keys) {
		for i := range keys {
			keys[i] = hot
			vals[i] = next * 0x9e3779b97f4a7c15
			next++
		}
		w.UpdateKeyedBatch(keys, vals)
	}
	tab.Drain()
	if got := tab.Promotions(); got <= 2 {
		t.Fatalf("no re-promotion after demotion: promotions = %d", got)
	}
	if est, ok := tab.Estimate(hot); !ok || est < 2*n*0.6 {
		t.Fatalf("estimate after re-heating = %v (ok=%v), want ~%d", est, ok, 2*n)
	}

	// Snapshots still export base-parameter compacts after the moves.
	data, err := tab.SnapshotBinary()
	if err != nil {
		t.Fatalf("SnapshotBinary: %v", err)
	}
	snap, err := UnmarshalThetaSnapshot[uint64](data)
	if err != nil {
		t.Fatalf("UnmarshalThetaSnapshot: %v", err)
	}
	if err := snap.Merge(tab.Snapshot()); err != nil {
		t.Fatalf("snapshot self-merge after demotions: %v", err)
	}

	st := tab.Stats()
	if st.Promotions != tab.Promotions() || st.Demotions != 2 {
		t.Fatalf("Stats promotion/demotion drift: %+v", st)
	}
}

// TestDemoteCooledRecentUpdateWins pins the scan-vs-update race rule:
// a key touched after the idle scan but before the rebuild keeps its
// promoted level.
func TestDemoteCooledRecentUpdateWins(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4,
			HotKeys: &HotKeyPolicy{HotThreshold: 128, MaxPromotions: 1, CoolAfter: time.Minute},
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	now := time.Now().UnixNano()
	tab.SketchTable.t.now = func() int64 { return now }
	w := tab.Writer(0)
	vals := make([]uint64, 256)
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = 1
		vals[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	w.UpdateKeyedBatch(keys, vals)
	if tab.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", tab.Promotions())
	}
	// Cool it, then touch it again before demoting: the fresh update
	// moves touched past the cutoff, so the demotion must be skipped.
	now += 2 * time.Minute.Nanoseconds()
	w.UpdateKeyed(1, 42)
	if got := tab.DemoteCooled(); got != 0 {
		t.Fatalf("DemoteCooled demoted a just-touched key (%d)", got)
	}
	if tab.Demotions() != 0 {
		t.Fatalf("demotions = %d, want 0", tab.Demotions())
	}
}

// TestDemotionDisabledWithoutCoolAfter pins the opt-in: a policy with
// no CoolAfter never demotes.
func TestDemotionDisabledWithoutCoolAfter(t *testing.T) {
	tab := NewTheta(ThetaConfig[uint64]{
		Table: Config[uint64]{
			Writers: 1, Shards: 4,
			HotKeys: &HotKeyPolicy{HotThreshold: 128, MaxPromotions: 1},
		},
		K: 64, MaxError: 1,
	})
	defer tab.Close()
	now := time.Now().UnixNano()
	tab.SketchTable.t.now = func() int64 { return now }
	w := tab.Writer(0)
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	for i := range keys {
		keys[i] = 1
		vals[i] = uint64(i)
	}
	w.UpdateKeyedBatch(keys, vals)
	now += time.Hour.Nanoseconds()
	if got := tab.DemoteCooled(); got != 0 {
		t.Fatalf("DemoteCooled with zero CoolAfter demoted %d", got)
	}
}
