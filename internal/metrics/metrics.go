// Package metrics is a zero-dependency metrics subsystem: a lock-cheap
// registry of counters, gauges and fixed-bucket histograms with
// Prometheus text-format exposition.
//
// Design goals, in order:
//
//  1. Hot-path updates are allocation-free and wait-free. Counter.Add,
//     Gauge.Set and Histogram.Observe are single atomic operations on
//     cells resolved at registration time. Label sets are interned when
//     the instrument is created, never on update, so the ingest batch
//     paths and the propagator run loop can bump instruments without
//     regressing their 0 allocs/op budgets.
//  2. Scrapes never block updates. The registry mutex guards only the
//     family/series indexes (touched at registration and gather time);
//     samples are atomic loads.
//  3. One formatting path. WritePrometheus renders the full exposition
//     (HELP/TYPE + samples) and WriteValues renders the same samples
//     without preamble for periodic log dumps, both on top of Gather,
//     so logs, /metrics and bench JSON attribution cannot drift.
//
// Sampled values that live in subsystem-owned atomics (pool queue
// depths, outbox length, checkpoint age) are exported through GaugeFunc
// and CounterFunc, evaluated at gather time only — the owning hot paths
// keep their existing counters untouched.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value. The zero value is not
// usable; obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Obtain from Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Allocation-free.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative). Allocation-free.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is a binary search plus one atomic add — no
// allocation, no locks. Obtain from Registry.Histogram.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; +Inf implicit
	cells   []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one observation. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sample is one exposition sample: a family member with its resolved
// label set. Histograms expand into multiple samples (buckets, sum,
// count) at gather time.
type Sample struct {
	Name   string // family name, or family+"_bucket"/"_sum"/"_count"
	Labels string // pre-rendered `k1="v1",k2="v2"` fragment, "" if none
	Value  float64
}

// series is one registered instrument within a family.
type series struct {
	labels string // pre-rendered label fragment
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // CounterFunc/GaugeFunc
}

type family struct {
	name   string
	help   string
	kind   Kind
	order  int // registration order of the family
	series []*series
	byKey  map[string]*series // label fragment -> series
}

// Registry holds metric families. Registration takes the registry
// lock; updates on returned instruments are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, order: len(r.fams), byKey: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %v, was %v", name, kind, f.kind))
	}
	return f
}

func (r *Registry) add(name, help string, kind Kind, labels string, s *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	if prev, ok := f.byKey[labels]; ok {
		// Idempotent re-registration returns the existing instrument
		// for plain cells; func-backed series are replaced so a
		// re-registered collector binds to the live object.
		if s.fn == nil {
			return prev
		}
		prev.fn = s.fn
		return prev
	}
	s.labels = labels
	f.series = append(f.series, s)
	f.byKey[labels] = s
	return s
}

// LabelSet pre-renders an ordered label fragment. Pairs must be given
// as k, v, k, v, ...; keys are sorted so the same logical set always
// produces the same series regardless of argument order. Call at
// registration time only.
func LabelSet(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// Counter registers (or returns the existing) counter for name and the
// given label pairs.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	s := r.add(name, help, KindCounter, LabelSet(labelPairs...), &series{c: &Counter{}})
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	s := r.add(name, help, KindGauge, LabelSet(labelPairs...), &series{g: &Gauge{}})
	return s.g
}

// Histogram registers (or returns the existing) histogram with the
// given ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	h := &Histogram{bounds: b, cells: make([]atomic.Uint64, len(b)+1)}
	s := r.add(name, help, KindHistogram, LabelSet(labelPairs...), &series{h: h})
	return s.h
}

// GaugeFunc registers a gauge whose value is computed by fn at gather
// time. Use for sampled values owned by subsystem atomics (queue
// depths, ages) so hot paths stay untouched.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.add(name, help, KindGauge, LabelSet(labelPairs...), &series{fn: fn})
}

// CounterFunc registers a counter whose value is read from fn at
// gather time. fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.add(name, help, KindCounter, LabelSet(labelPairs...), &series{fn: fn})
}

// Unregister removes a whole family (all series). Used when a
// dynamically labeled source (e.g. a push upstream) goes away in tests.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.fams, name)
}

// Family is a gathered metric family: metadata plus its expanded
// samples. Histogram families expand into _bucket/_sum/_count samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// GatherFamilies snapshots every family, ordered by registration
// order, with series in registration order inside each family. This is
// the single collection path under /metrics, log dumps and bench
// attribution.
func (r *Registry) GatherFamilies() []Family {
	r.mu.Lock()
	// Copy series slices so func evaluation happens outside the lock:
	// a GaugeFunc may itself take subsystem locks and must not be able
	// to deadlock against a concurrent registration.
	type famSnap struct {
		f      *family
		series []*series
	}
	snaps := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		snaps = append(snaps, famSnap{f, append([]*series(nil), f.series...)})
	}
	r.mu.Unlock()

	sort.Slice(snaps, func(i, j int) bool { return snaps[i].f.order < snaps[j].f.order })
	out := make([]Family, 0, len(snaps))
	for _, sn := range snaps {
		fam := Family{Name: sn.f.name, Help: sn.f.help, Kind: sn.f.kind}
		for _, s := range sn.series {
			switch {
			case s.h != nil:
				cum := uint64(0)
				for i, b := range s.h.bounds {
					cum += s.h.cells[i].Load()
					fam.Samples = append(fam.Samples, Sample{fam.Name + "_bucket", joinLabels(s.labels, `le="`+formatFloat(b)+`"`), float64(cum)})
				}
				cum += s.h.cells[len(s.h.bounds)].Load()
				fam.Samples = append(fam.Samples, Sample{fam.Name + "_bucket", joinLabels(s.labels, `le="+Inf"`), float64(cum)})
				fam.Samples = append(fam.Samples, Sample{fam.Name + "_sum", s.labels, s.h.Sum()})
				fam.Samples = append(fam.Samples, Sample{fam.Name + "_count", s.labels, float64(cum)})
			case s.c != nil:
				fam.Samples = append(fam.Samples, Sample{fam.Name, s.labels, float64(s.c.Value())})
			case s.g != nil:
				fam.Samples = append(fam.Samples, Sample{fam.Name, s.labels, float64(s.g.Value())})
			case s.fn != nil:
				fam.Samples = append(fam.Samples, Sample{fam.Name, s.labels, s.fn()})
			}
		}
		out = append(out, fam)
	}
	return out
}

// Gather flattens GatherFamilies into a single sample slice.
func (r *Registry) Gather() []Sample {
	var out []Sample
	for _, f := range r.GatherFamilies() {
		out = append(out, f.Samples...)
	}
	return out
}

// Values flattens Gather into a name{labels} -> value map. Used by
// fcds-bench to attach per-subsystem counters to JSON points.
func (r *Registry) Values() map[string]float64 {
	samples := r.Gather()
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		k := s.Name
		if s.Labels != "" {
			k += "{" + s.Labels + "}"
		}
		m[k] = s.Value
	}
	return m
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
