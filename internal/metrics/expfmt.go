package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE preamble per
// family followed by its samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.GatherFamilies() {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, s := range f.Samples {
			writeSample(bw, s)
		}
	}
	return bw.Flush()
}

// WriteValues renders the same samples as WritePrometheus without the
// HELP/TYPE preamble. This is the periodic -stats-every log dump: the
// values come through the exact gather path the /metrics endpoint
// uses, so logs cannot drift from the scrape.
func (r *Registry) WriteValues(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.GatherFamilies() {
		for _, s := range f.Samples {
			writeSample(bw, s)
		}
	}
	return bw.Flush()
}

func writeSample(bw *bufio.Writer, s Sample) {
	bw.WriteString(s.Name)
	if s.Labels != "" {
		bw.WriteByte('{')
		bw.WriteString(s.Labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.Value))
	bw.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Handler returns an http.Handler exposing the registry at /metrics in
// Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
