package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exposition format byte for byte:
// HELP/TYPE preamble, label ordering (sorted at registration), label
// value escaping, histogram bucket expansion with cumulative counts,
// and integer-valued float rendering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fcds_frames_total", "Frames handled.", "table", "hits", "kind", "keyed_batch")
	c.Add(42)
	g := r.Gauge("fcds_conns_open", "Open connections.")
	g.Set(3)
	// Label values exercising every escape: backslash, quote, newline.
	e := r.Counter("fcds_errs_total", "Errors by source.", "src", "a\\b\"c\nd")
	e.Inc()
	h := r.Histogram("fcds_write_seconds", "Checkpoint write duration.", []float64{0.01, 0.5, 2})
	h.Observe(0.004)
	h.Observe(0.2)
	h.Observe(0.2)
	h.Observe(10)
	// Labels passed out of order must render sorted.
	r.Gauge("fcds_depth", "Queue depth.", "worker", "1", "pool", "p0").Set(7)
	r.GaugeFunc("fcds_age_seconds", "An age.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fcds_frames_total Frames handled.
# TYPE fcds_frames_total counter
fcds_frames_total{kind="keyed_batch",table="hits"} 42
# HELP fcds_conns_open Open connections.
# TYPE fcds_conns_open gauge
fcds_conns_open 3
# HELP fcds_errs_total Errors by source.
# TYPE fcds_errs_total counter
fcds_errs_total{src="a\\b\"c\nd"} 1
# HELP fcds_write_seconds Checkpoint write duration.
# TYPE fcds_write_seconds histogram
fcds_write_seconds_bucket{le="0.01"} 1
fcds_write_seconds_bucket{le="0.5"} 3
fcds_write_seconds_bucket{le="2"} 3
fcds_write_seconds_bucket{le="+Inf"} 4
fcds_write_seconds_sum 10.404
fcds_write_seconds_count 4
# HELP fcds_depth Queue depth.
# TYPE fcds_depth gauge
fcds_depth{pool="p0",worker="1"} 7
# HELP fcds_age_seconds An age.
# TYPE fcds_age_seconds gauge
fcds_age_seconds 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// WriteValues must be the same samples minus preamble.
	var v strings.Builder
	if err := r.WriteValues(&v); err != nil {
		t.Fatal(err)
	}
	var wantVals strings.Builder
	for _, line := range strings.Split(want, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		wantVals.WriteString(line)
		wantVals.WriteByte('\n')
	}
	if v.String() != wantVals.String() {
		t.Errorf("WriteValues drifted from WritePrometheus:\n%s\nvs\n%s", v.String(), wantVals.String())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "k", "v")
	b := r.Counter("x_total", "x", "k", "v")
	if a != b {
		t.Fatal("same name+labels must return the same cell")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("cells not shared")
	}
	c := r.Counter("x_total", "x", "k", "w")
	if c == a {
		t.Fatal("distinct labels must get distinct cells")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestValuesMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(5)
	r.Gauge("b", "b", "k", "v").Set(-2)
	m := r.Values()
	if m["a_total"] != 5 || m[`b{k="v"}`] != -2 {
		t.Fatalf("unexpected values map: %v", m)
	}
}

// TestConcurrentRegistry hammers registration, updates and gathers
// from many goroutines; run under -race this is the registry's
// thread-safety proof.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("conc_total", "c", "g", fmt.Sprint(i%4))
			g := r.Gauge("conc_gauge", "g", "g", fmt.Sprint(i%4))
			h := r.Histogram("conc_hist", "h", []float64{1, 10}, "g", fmt.Sprint(i%4))
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(float64(j % 20))
				if j%100 == 0 {
					r.GaugeFunc("conc_fn", "f", func() float64 { return float64(j) }, "g", fmt.Sprint(i%4))
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 4; i++ {
		total += r.Counter("conc_total", "c", "g", fmt.Sprint(i)).Value()
	}
	if total != 8000 {
		t.Fatalf("lost updates: got %d want 8000", total)
	}
}

// TestHistogramSumConcurrent verifies the CAS float sum doesn't lose
// observations under contention.
func TestHistogramSumConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hs", "h", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000", h.Count(), h.Sum())
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
