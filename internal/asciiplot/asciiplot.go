// Package asciiplot renders multi-series scatter plots as ASCII — the
// repository has no plotting dependencies, so cmd/fcds-plot uses this
// to visualise fcds-bench TSV output (throughput curves, pitchforks,
// speedups) directly in a terminal.
package asciiplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Config controls rendering.
type Config struct {
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogX   bool // log10 x axis
	LogY   bool // log10 y axis
	Title  string
}

var symbols = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series into a single string.
func Render(series []Series, cfg Config) string {
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 { return v }
	if cfg.LogX {
		tx = safeLog10
	}
	if cfg.LogY {
		ty = safeLog10
	}
	any := false
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !any {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(cfg.Width-1))
			row := cfg.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(cfg.Height-1))
			grid[row][col] = sym
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yTop, yBot := untransform(ymax, cfg.LogY), untransform(ymin, cfg.LogY)
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", yTop)
		} else if r == cfg.Height-1 {
			label = fmt.Sprintf("%9.3g ", yBot)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", cfg.Width))
	xLeft, xRight := untransform(xmin, cfg.LogX), untransform(xmax, cfg.LogX)
	fmt.Fprintf(&b, "%s%-12.4g%s%12.4g\n", strings.Repeat(" ", 11), xLeft,
		strings.Repeat(" ", maxInt(0, cfg.Width-24)), xRight)
	// Legend.
	names := make([]string, 0, len(series))
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c %s", symbols[si%len(symbols)], s.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  %s\n", strings.Join(names, "   "))
	return b.String()
}

func safeLog10(v float64) float64 {
	if v <= 0 {
		return math.NaN()
	}
	return math.Log10(v)
}

func untransform(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
