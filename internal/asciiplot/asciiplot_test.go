package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{9, 4, 1}},
	}, Config{Width: 40, Height: 10, Title: "t"})
	if !strings.Contains(out, "t\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("missing legend: %q", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing data points")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabel + legend
	if len(lines) != 1+10+1+1+1 {
		t.Errorf("unexpected line count %d", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Config{}); out != "(no data)\n" {
		t.Errorf("empty render: %q", out)
	}
	// Series with only non-finite values.
	out := Render([]Series{{Name: "x", X: []float64{-1}, Y: []float64{1}}},
		Config{LogX: true})
	if out != "(no data)\n" {
		t.Errorf("non-finite render: %q", out)
	}
}

func TestRenderLogScales(t *testing.T) {
	out := Render([]Series{
		{Name: "curve", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 2, 4, 8}},
	}, Config{Width: 40, Height: 8, LogX: true, LogY: true})
	// On log-x the points should be evenly spaced; just assert the
	// extremes appear in the axis labels.
	if !strings.Contains(out, "1000") {
		t.Errorf("missing x max label: %q", out)
	}
	if !strings.Contains(out, "8") {
		t.Errorf("missing y max label: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Render([]Series{{Name: "c", X: []float64{5, 5}, Y: []float64{3, 3}}},
		Config{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}

func TestRenderLogSkipsNonPositive(t *testing.T) {
	out := Render([]Series{
		{Name: "m", X: []float64{0, 1, 10}, Y: []float64{-1, 1, 10}},
	}, Config{Width: 30, Height: 6, LogX: true, LogY: true})
	if out == "(no data)\n" {
		t.Fatal("all points dropped")
	}
}
