package adversary

import (
	"sort"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/stats"
)

// Section 6.2: the weak adversary against the r-relaxed Quantiles
// sketch. For a PAC sketch with rank error ε, hiding i elements below
// the φ-quantile and j above it (i + j <= r) shifts the returned
// element's rank in the original stream; the paper shows the resulting
// sketch is PAC with
//
//	ε_r = ε + r/n − r·ε/n,
//
// so the relaxation penalty vanishes as n grows.

// RelaxedEpsilon returns ε_r = ε + r/n − rε/n.
func RelaxedEpsilon(eps float64, r, n int) float64 {
	rf, nf := float64(r), float64(n)
	return eps + rf/nf - rf*eps/nf
}

// QuantilesAttackResult reports the worst empirical rank error found by
// the adversary, alongside the theoretical bounds.
type QuantilesAttackResult struct {
	N          int
	R          int
	Phi        float64
	WorstError float64 // max observed |rank(returned)/n − φ|
	EpsSeq     float64 // a-priori ε of the sequential sketch
	EpsRelaxed float64 // ε_r bound from §6.2
}

// AttackQuantiles mounts the §6.2 weak adversary against a real
// quantiles sketch: for each trial it hides the r stream elements just
// below the φ-quantile (the choice that maximises the expected rank
// shift), feeds the surviving n−r elements to a fresh sketch, queries
// φ, and measures the returned element's true rank in the full stream.
// It returns the worst error over all trials.
func AttackQuantiles(k, n, r int, phi float64, trials int, seed uint64) QuantilesAttackResult {
	rng := stats.NewRNG(seed)
	eps := quantiles.NormalizedRankError(k)
	res := QuantilesAttackResult{
		N: n, R: r, Phi: phi,
		EpsSeq:     eps,
		EpsRelaxed: RelaxedEpsilon(eps, r, n),
	}
	for t := 0; t < trials; t++ {
		// Random distinct-valued stream.
		stream := make([]float64, n)
		for i := range stream {
			stream[i] = rng.Float64()
		}
		sorted := append([]float64(nil), stream...)
		sort.Float64s(sorted)

		// Hide the r elements with sorted ranks just below φn: they are
		// the predecessors whose absence shifts the quantile most.
		cut := int(phi * float64(n))
		lo := cut - r
		if lo < 0 {
			lo = 0
		}
		hidden := make(map[float64]bool, r)
		for i := lo; i < cut && len(hidden) < r; i++ {
			hidden[sorted[i]] = true
		}

		s := quantiles.New(k)
		for _, v := range stream {
			if !hidden[v] {
				s.Update(v)
			}
		}
		got := s.Quantile(phi)
		// True normalized rank of the returned element in the FULL
		// stream (what the paper's ε_r bounds).
		rank := sort.SearchFloat64s(sorted, got)
		err := abs(float64(rank)/float64(n) - phi)
		if err > res.WorstError {
			res.WorstError = err
		}
	}
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
