package adversary

import (
	"math"
	"testing"
)

// TestTable1ReproducesPaper checks every Table 1 cell against the
// values the paper reports for r=8, k=2^10, n=2^15:
//
//	sequential: E = n = 2^15,        RSE ≤ 1/sqrt(k-2) ≈ 3.13%
//	strong:     E ≈ 2^15·0.995,      RSE ≤ 3.8% (numerical: ~3.1% col)
//	weak:       E = n(k-1)/(k+r-1),  RSE ≤ 2/sqrt(k-2) ≈ 6.3%
func TestTable1ReproducesPaper(t *testing.T) {
	p := Table1Defaults
	n := float64(p.N)

	seqC := SequentialClosedForm(p)
	if seqC.Expectation != n {
		t.Errorf("sequential closed E = %v, want n", seqC.Expectation)
	}
	if math.Abs(seqC.RSE-0.0313) > 0.001 {
		t.Errorf("sequential closed RSE = %v, want ~0.0313", seqC.RSE)
	}

	seqN := SequentialNumerical(p, 600)
	if math.Abs(seqN.Expectation-n)/n > 1e-3 {
		t.Errorf("sequential numerical E = %v, want ~%v", seqN.Expectation, n)
	}
	if seqN.RSE > 0.032 {
		t.Errorf("sequential numerical RSE = %v, want <= 3.2%%", seqN.RSE)
	}

	// Weak adversary closed forms (Table 1 rightmost column).
	weakC := WeakClosedForm(p)
	wantE := n * float64(p.K-1) / float64(p.K+p.R-1)
	if math.Abs(weakC.Expectation-wantE) > 1e-9 {
		t.Errorf("weak closed E = %v, want %v", weakC.Expectation, wantE)
	}
	if twice := 2 / math.Sqrt(float64(p.K-2)); weakC.RSE > twice+1e-9 {
		t.Errorf("weak closed RSE bound %v exceeds 2/sqrt(k-2) = %v (r <= sqrt(k-2) regime)",
			weakC.RSE, twice)
	}

	// Strong adversary numerical: E ≈ 0.995·n per the paper.
	strongN := StrongNumerical(p, 600)
	ratio := strongN.Expectation / n
	if math.Abs(ratio-0.995) > 0.003 {
		t.Errorf("strong numerical E/n = %v, paper reports 0.995", ratio)
	}
	if strongN.RSE > 0.04 {
		t.Errorf("strong numerical RSE = %v, paper bounds it by ~3.8%%", strongN.RSE)
	}

	// Weak adversary numerical must match its closed form.
	weakN := WeakNumerical(p, 600)
	if math.Abs(weakN.Expectation-wantE)/wantE > 1e-3 {
		t.Errorf("weak numerical E = %v, closed form %v", weakN.Expectation, wantE)
	}
	if weakN.RSE > weakC.RSE {
		t.Errorf("weak numerical RSE %v exceeds its closed-form bound %v", weakN.RSE, weakC.RSE)
	}
}

func TestMonteCarloAgreesWithNumerical(t *testing.T) {
	p := Table1Defaults
	const trials = 60000
	sN, sMC := StrongNumerical(p, 600), StrongMonteCarlo(p, trials, 42)
	if re := math.Abs(sN.Expectation-sMC.Expectation) / sN.Expectation; re > 0.005 {
		t.Errorf("strong: MC E %v vs quadrature E %v", sMC.Expectation, sN.Expectation)
	}
	if math.Abs(sN.RSE-sMC.RSE) > 0.005 {
		t.Errorf("strong: MC RSE %v vs quadrature RSE %v", sMC.RSE, sN.RSE)
	}
	wN, wMC := WeakNumerical(p, 600), WeakMonteCarlo(p, trials, 43)
	if re := math.Abs(wN.Expectation-wMC.Expectation) / wN.Expectation; re > 0.005 {
		t.Errorf("weak: MC E %v vs quadrature E %v", wMC.Expectation, wN.Expectation)
	}
	seqN, seqMC := SequentialNumerical(p, 600), SequentialMonteCarlo(p, trials, 44)
	if re := math.Abs(seqN.Expectation-seqMC.Expectation) / seqN.Expectation; re > 0.005 {
		t.Errorf("sequential: MC E %v vs quadrature E %v", seqMC.Expectation, seqN.Expectation)
	}
}

func TestStrongDominatesWeakAndSequential(t *testing.T) {
	// The strong adversary maximises error per-execution, so its RSE
	// must be at least the sequential sketch's; the weak adversary's
	// bias must exceed the sequential's (which is unbiased).
	p := Table1Defaults
	seq := SequentialNumerical(p, 400)
	strong := StrongNumerical(p, 400)
	if strong.RSE < seq.RSE {
		t.Errorf("strong RSE %v below sequential %v", strong.RSE, seq.RSE)
	}
	weak := WeakNumerical(p, 400)
	n := float64(p.N)
	if math.Abs(weak.Expectation-n) < math.Abs(seq.Expectation-n) {
		t.Error("weak adversary induced less bias than no adversary")
	}
}

func TestStrongEstimatePicksWorse(t *testing.T) {
	p := ThetaParams{N: 1000, K: 100, R: 10}
	n := float64(p.N)
	// When M(k) is very small (overestimate) the adversary should keep
	// j=0; when M(k+r) gives the larger deviation it should pick j=r.
	eOver := strongEstimate(p, 0.05, 0.2) // (k-1)/0.05 = 1980 vs 495
	if math.Abs(eOver-n) < math.Abs(float64(p.K-1)/0.2-n) {
		t.Error("adversary failed to pick the worse choice (overestimate case)")
	}
	eUnder := strongEstimate(p, 0.099, 0.25) // 1000 vs 396: picks 396
	if eUnder != float64(p.K-1)/0.25 {
		t.Errorf("adversary picked %v, want the underestimate", eUnder)
	}
}

func TestRelaxedEpsilonFormula(t *testing.T) {
	// ε_r = ε + r/n − rε/n; §6.2. Spot values and limiting behaviour.
	if got, want := RelaxedEpsilon(0.01, 0, 1000), 0.01; math.Abs(got-want) > 1e-12 {
		t.Errorf("r=0: ε_r = %v", got)
	}
	got := RelaxedEpsilon(0.01, 10, 1000)
	want := 0.01 + 10.0/1000 - 10*0.01/1000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ε_r = %v, want %v", got, want)
	}
	// Penalty vanishes as n → ∞.
	if RelaxedEpsilon(0.01, 10, 1e9) > 0.0101 {
		t.Error("relaxation penalty did not vanish for huge n")
	}
	// ε_r is monotone in r.
	if RelaxedEpsilon(0.01, 20, 1000) <= RelaxedEpsilon(0.01, 10, 1000) {
		t.Error("ε_r not monotone in r")
	}
}

func TestAttackQuantilesWithinBound(t *testing.T) {
	// The empirical worst-case error of the real attack must respect
	// the §6.2 bound (with the usual ~3x slack since ε is a
	// high-confidence bound, not a hard one).
	res := AttackQuantiles(128, 10000, 100, 0.5, 20, 7)
	if res.WorstError > 3*res.EpsRelaxed {
		t.Errorf("attack error %v exceeded 3·ε_r = %v", res.WorstError, 3*res.EpsRelaxed)
	}
	// The attack must actually hurt: with r = 1% of n hidden below the
	// median, the worst error should exceed the no-attack ε at least
	// once in 20 trials... but not necessarily; assert it's nonzero.
	if res.WorstError == 0 {
		t.Error("attack produced zero error — hiding logic inert?")
	}
}

func TestComputeTable1Bundles(t *testing.T) {
	p := ThetaParams{N: 1 << 12, K: 1 << 8, R: 4}
	res := ComputeTable1(p, 5000, 200, 99)
	if res.Params != p {
		t.Error("params not propagated")
	}
	for name, a := range map[string]ThetaAnalysis{
		"seqC":    res.SequentialClosed,
		"seqN":    res.SequentialNumerical,
		"strongN": res.StrongNumerical,
		"strongM": res.StrongMonteCarlo,
		"weakN":   res.WeakNumerical,
		"weakM":   res.WeakMonteCarlo,
		"weakC":   res.WeakClosed,
	} {
		if a.Expectation <= 0 || a.RSE <= 0 || math.IsNaN(a.Expectation) || math.IsNaN(a.RSE) {
			t.Errorf("%s: degenerate analysis %+v", name, a)
		}
	}
}

func BenchmarkStrongMonteCarlo10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StrongMonteCarlo(Table1Defaults, 10000, uint64(i))
	}
}

func BenchmarkStrongNumerical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StrongNumerical(Table1Defaults, 400)
	}
}
