// Package adversary implements the error analysis of the paper's
// Section 6: the strong and weak adversaries against the r-relaxed Θ
// sketch (§6.1, Table 1) and the weak adversary against the r-relaxed
// Quantiles sketch (§6.2).
//
// The adversary hides up to r updates from every query. For the Θ
// sketch the analysis reduces to order statistics of the hashed
// stream: hiding j elements below Θ turns the k-th minimum seen by the
// sketch into the (k+j)-th minimum of the original stream. The weak
// adversary (no access to coin flips) always hides j = r; the strong
// adversary chooses j ∈ {0, r} per execution to maximise the error
// (the paper shows the extremes are always optimal). Expectations and
// RSEs are computed two independent ways — Monte Carlo over the
// Dirichlet/gamma representation, and 2-D numerical integration of the
// joint order-statistic density — which cross-validate each other.
package adversary

import (
	"math"

	"github.com/fcds/fcds/internal/stats"
)

// ThetaParams describes one Table 1 configuration.
type ThetaParams struct {
	N int // stream length (unique hashed elements)
	K int // sketch size parameter
	R int // relaxation
}

// Table1Defaults is the configuration of the paper's Table 1:
// r = 8, k = 2^10, n = 2^15.
var Table1Defaults = ThetaParams{N: 1 << 15, K: 1 << 10, R: 8}

// ThetaAnalysis holds expectation and RSE of an estimator under one
// adversary. RSE is the paper's bound: std/n + |bias|/n.
type ThetaAnalysis struct {
	Expectation float64
	RSE         float64
}

// rseOf computes the paper's RSE bound sqrt(σ²/n²) + sqrt((E-n)²/n²)
// from raw moments.
func rseOf(n float64, mean, second float64) float64 {
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)/n + math.Abs(mean-n)/n
}

// SequentialClosedForm returns the closed-form expectation and RSE of
// the unrelaxed sequential Θ estimator e = (k-1)/M(k): E[e] = n and
// RSE ≤ 1/sqrt(k-2) (Table 1, first column).
func SequentialClosedForm(p ThetaParams) ThetaAnalysis {
	return ThetaAnalysis{
		Expectation: float64(p.N),
		RSE:         1 / math.Sqrt(float64(p.K-2)),
	}
}

// WeakClosedForm returns the closed-form analysis of the weak
// adversary A_w, which hides j = r elements: E = n(k-1)/(k+r-1)
// (Table 1, last column) and the §6.1 RSE bound
// 1/sqrt(k-2) + r/(k-2), itself bounded by 2/sqrt(k-2) when
// r <= sqrt(k-2).
func WeakClosedForm(p ThetaParams) ThetaAnalysis {
	n, k, r := float64(p.N), float64(p.K), float64(p.R)
	return ThetaAnalysis{
		Expectation: n * (k - 1) / (k + r - 1),
		RSE:         1/math.Sqrt(k-2) + r/(k-2),
	}
}

// SequentialMonteCarlo estimates E and RSE of the sequential estimator
// by sampling M(k).
func SequentialMonteCarlo(p ThetaParams, trials int, seed uint64) ThetaAnalysis {
	rng := stats.NewRNG(seed)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		mk := stats.SampleOrderStat(rng, p.N, p.K)
		e := float64(p.K-1) / mk
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(trials)
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, sumSq/float64(trials))}
}

// WeakMonteCarlo estimates E and RSE under the weak adversary by
// sampling M(k+r) (the adversary always hides r).
func WeakMonteCarlo(p ThetaParams, trials int, seed uint64) ThetaAnalysis {
	rng := stats.NewRNG(seed)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		_, mkr := stats.SampleOrderStatPair(rng, p.N, p.K, p.R)
		e := float64(p.K-1) / mkr
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(trials)
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, sumSq/float64(trials))}
}

// strongEstimate is e_As = (k-1)/M(k+g(0,r)): the strong adversary
// observes the coins (hence both order statistics) and picks the
// choice maximising |estimate - n| (§6.1).
func strongEstimate(p ThetaParams, mk, mkr float64) float64 {
	n := float64(p.N)
	e0 := float64(p.K-1) / mk
	er := float64(p.K-1) / mkr
	if math.Abs(er-n) > math.Abs(e0-n) {
		return er
	}
	return e0
}

// StrongMonteCarlo estimates E and RSE under the strong adversary by
// joint sampling of (M(k), M(k+r)).
func StrongMonteCarlo(p ThetaParams, trials int, seed uint64) ThetaAnalysis {
	rng := stats.NewRNG(seed)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		mk, mkr := stats.SampleOrderStatPair(rng, p.N, p.K, p.R)
		e := strongEstimate(p, mk, mkr)
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(trials)
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, sumSq/float64(trials))}
}

// StrongNumerical computes E and RSE under the strong adversary by 2-D
// Simpson integration of the joint order-statistic density (the
// paper's "numerical results" column; integration over the gray areas
// of Figure 3). steps=600 is accurate to ~6 digits for the Table 1
// geometry.
func StrongNumerical(p ThetaParams, steps int) ThetaAnalysis {
	mean := stats.OrderStatExpectation2D(p.N, p.K, p.R, steps, func(x, y float64) float64 {
		return strongEstimate(p, x, y)
	})
	second := stats.OrderStatExpectation2D(p.N, p.K, p.R, steps, func(x, y float64) float64 {
		e := strongEstimate(p, x, y)
		return e * e
	})
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, second)}
}

// WeakNumerical computes E and RSE under the weak adversary by 1-D
// integration over the M(k+r) marginal.
func WeakNumerical(p ThetaParams, steps int) ThetaAnalysis {
	k := float64(p.K)
	mean := stats.OrderStatExpectation1D(p.N, p.K+p.R, steps, func(y float64) float64 {
		return (k - 1) / y
	})
	second := stats.OrderStatExpectation1D(p.N, p.K+p.R, steps, func(y float64) float64 {
		e := (k - 1) / y
		return e * e
	})
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, second)}
}

// SequentialNumerical computes E and RSE of the sequential estimator by
// 1-D integration (Table 1's sequential "numerical" column).
func SequentialNumerical(p ThetaParams, steps int) ThetaAnalysis {
	k := float64(p.K)
	mean := stats.OrderStatExpectation1D(p.N, p.K, steps, func(x float64) float64 {
		return (k - 1) / x
	})
	second := stats.OrderStatExpectation1D(p.N, p.K, steps, func(x float64) float64 {
		e := (k - 1) / x
		return e * e
	})
	return ThetaAnalysis{Expectation: mean, RSE: rseOf(float64(p.N), mean, second)}
}

// Table1 bundles every cell of the paper's Table 1 for one parameter
// set, computed by both methods where applicable.
type Table1Result struct {
	Params              ThetaParams
	SequentialClosed    ThetaAnalysis
	SequentialNumerical ThetaAnalysis
	StrongNumerical     ThetaAnalysis
	StrongMonteCarlo    ThetaAnalysis
	WeakNumerical       ThetaAnalysis
	WeakMonteCarlo      ThetaAnalysis
	WeakClosed          ThetaAnalysis
}

// ComputeTable1 evaluates all Table 1 cells. trials controls the Monte
// Carlo columns and steps the quadrature columns.
func ComputeTable1(p ThetaParams, trials, steps int, seed uint64) Table1Result {
	return Table1Result{
		Params:              p,
		SequentialClosed:    SequentialClosedForm(p),
		SequentialNumerical: SequentialNumerical(p, steps),
		StrongNumerical:     StrongNumerical(p, steps),
		StrongMonteCarlo:    StrongMonteCarlo(p, trials, seed),
		WeakNumerical:       WeakNumerical(p, steps),
		WeakMonteCarlo:      WeakMonteCarlo(p, trials, seed+1),
		WeakClosed:          WeakClosedForm(p),
	}
}
