package oracle

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed oracles diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	o := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := o.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestCoinFairness(t *testing.T) {
	o := New(99)
	heads := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if o.Coin() {
			heads++
		}
	}
	frac := float64(heads) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("coin heads fraction = %v, want ~0.5", frac)
	}
}

func TestIntnBounds(t *testing.T) {
	o := New(3)
	for _, n := range []int{1, 2, 3, 7, 100} {
		counts := make([]int, n)
		for i := 0; i < 1000; i++ {
			v := o.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			counts[v]++
		}
		if n == 2 {
			// Coarse balance check.
			if counts[0] < 400 || counts[0] > 600 {
				t.Errorf("Intn(2) unbalanced: %v", counts)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	// The child stream must not equal the parent continuation.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork overlaps parent stream (%d matches)", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(5).Fork()
	b := New(5).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks of identical oracles diverged")
		}
	}
}

func TestFixedCoin(t *testing.T) {
	ft, ff := Fixed(true), Fixed(false)
	for i := 0; i < 100; i++ {
		if !ft.Coin() {
			t.Fatal("Fixed(true) returned false")
		}
		if ff.Coin() {
			t.Fatal("Fixed(false) returned true")
		}
	}
	// Non-coin draws still advance.
	if ft.Uint64() == ft.Uint64() {
		t.Fatal("Fixed oracle Uint64 does not advance")
	}
}

func TestHashSeedAdvances(t *testing.T) {
	o := New(11)
	if o.HashSeed() == o.HashSeed() {
		t.Fatal("HashSeed repeated a value back-to-back")
	}
}

func BenchmarkUint64(b *testing.B) {
	o := New(1)
	for i := 0; i < b.N; i++ {
		o.Uint64()
	}
}
