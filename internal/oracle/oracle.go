// Package oracle provides the external source of randomness the paper's
// Section 4 uses to de-randomise sketches.
//
// A sketch instantiated with a fixed Oracle behaves deterministically:
// the Θ sketch draws its hash seed from the oracle at init time, and the
// Quantiles sketch draws one coin flip per compaction. Fixing the oracle
// turns the randomised sketch into a deterministic object with a
// sequential specification (SeqSketch), which is what the r-relaxation
// (Definition 2) and the relax-checker tests are defined against.
//
// The generator is SplitMix64: tiny state, full 2^64 period per stream,
// and excellent equidistribution for this use. It is deliberately not
// math/rand so that sequences are reproducible across Go releases.
package oracle

// Oracle is a deterministic stream of random values. It is NOT safe for
// concurrent use; give each thread (or each sketch) its own child stream
// via Fork.
type Oracle struct {
	state uint64
	// fixedCoin, when non-nil, pins every Coin result (Fixed oracles).
	fixedCoin *bool
}

// New returns an oracle seeded with seed. Two oracles with the same seed
// produce identical streams.
func New(seed uint64) *Oracle {
	return &Oracle{state: seed}
}

// Uint64 returns the next 64-bit value in the stream (SplitMix64).
func (o *Oracle) Uint64() uint64 {
	o.state += 0x9e3779b97f4a7c15
	z := o.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Coin returns the next fair coin flip (or the pinned value for a Fixed
// oracle).
func (o *Oracle) Coin() bool {
	if o.fixedCoin != nil {
		return *o.fixedCoin
	}
	return o.Uint64()&1 == 1
}

// Float64 returns the next value uniform on [0, 1) with 53 random bits.
func (o *Oracle) Float64() float64 {
	return float64(o.Uint64()>>11) / (1 << 53)
}

// Intn returns the next value uniform on [0, n). It panics if n <= 0.
func (o *Oracle) Intn(n int) int {
	if n <= 0 {
		panic("oracle: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping; bias is < 2^-32 for the
	// small n used by sketch compaction offsets, which is far below the
	// sketch's own statistical error.
	return int((o.Uint64() >> 32) * uint64(n) >> 32)
}

// HashSeed draws a hash-function seed. Named separately from Uint64 to
// mark call sites that correspond to the paper's "oracle output passed
// as a hidden variable to init".
func (o *Oracle) HashSeed() uint64 { return o.Uint64() }

// Fork derives an independent child stream. The child's sequence does
// not overlap the parent's continuation for any practical stream length
// (distinct SplitMix64 gamma-spaced seeds).
func (o *Oracle) Fork() *Oracle {
	return New(o.Uint64() ^ 0x6a09e667f3bcc909)
}

// Fixed returns an oracle whose Coin always reports v. Uint64, Float64
// and friends still advance normally. It is used by tests that need a
// fully deterministic "worst coin" schedule (e.g. quantiles compaction
// always keeping the even half).
func Fixed(v bool) *Oracle {
	o := New(0)
	o.fixedCoin = &v
	return o
}
