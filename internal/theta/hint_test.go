package theta

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fcds/fcds/internal/core"
)

// Tests for the epoch carry-over capabilities: HintCompact (a
// data-free compact carrying a loosened Θ pre-filter) and ResetSeeded
// (recycling a sketch into a fresh one that starts behind that
// filter). The error-bound test pins the property the window's Θ
// carry-over relies on: a sketch seeded with a fixed threshold θ₀ is
// still an unbiased estimator of its own stream.

// compactOfStream ingests n seeded distinct items into a fresh engine
// sketch and returns its compact.
func compactOfStream(eng *Engine, pool *core.PropagatorPool, rng *rand.Rand, n int) *Compact {
	sk := eng.NewSketch(pool)
	defer sk.Close()
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = rng.Uint64()
	}
	sk.UpdateBatch(0, vs)
	sk.Flush(0)
	return sk.Compact()
}

// TestHintCompactExactMode: a sketch still in (or near) exact mode has
// no filter strength worth carrying — HintCompact must decline rather
// than hand back a hint that rounds to θ = 1.
func TestHintCompactExactMode(t *testing.T) {
	pool := core.NewPropagatorPool(1)
	defer pool.Close()
	eng := NewEngine(ConcurrentConfig{K: 2048, Writers: 1, MaxError: 1})
	rng := rand.New(rand.NewSource(0x41a7))

	c := compactOfStream(eng, pool, rng, 100) // far below K: θ = 1
	if hint, ok := eng.HintCompact(c); ok {
		t.Fatalf("exact-mode compact produced a hint (θ=%d)", hint.Theta())
	}
}

// TestHintCompactLoosens: an estimation-mode compact yields a
// data-free hint at exactly carryHintHeadroom times its Θ, same seed.
func TestHintCompactLoosens(t *testing.T) {
	pool := core.NewPropagatorPool(1)
	defer pool.Close()
	eng := NewEngine(ConcurrentConfig{K: 256, Writers: 1, MaxError: 1})
	rng := rand.New(rand.NewSource(0x10af))

	c := compactOfStream(eng, pool, rng, 50000)
	if !c.IsEstimationMode() {
		t.Fatalf("50000 items into K=256 should be estimation mode")
	}
	hint, ok := eng.HintCompact(c)
	if !ok {
		t.Fatalf("estimation-mode compact declined a hint (θ=%d)", c.Theta())
	}
	if hint.Retained() != 0 {
		t.Fatalf("hint carries %d samples, want 0 (data-free)", hint.Retained())
	}
	if got, want := hint.Theta(), c.Theta()*carryHintHeadroom; got != want {
		t.Fatalf("hint θ = %d, want source θ × %d = %d", got, carryHintHeadroom, want)
	}
	if hint.Seed() != c.Seed() {
		t.Fatalf("hint seed %#x differs from source %#x", hint.Seed(), c.Seed())
	}
	if est := hint.Estimate(); est != 0 {
		t.Fatalf("data-free hint estimates %v, want 0", est)
	}
}

// TestSeededEstimateErrorBound pins the unbiasedness the carry-over
// rests on: a sketch that starts behind a fixed carried threshold θ₀
// (no samples) estimates its own stream within normal KMV error, both
// when the new stream matches the old one's size and when it shrinks
// by the full headroom factor.
func TestSeededEstimateErrorBound(t *testing.T) {
	pool := core.NewPropagatorPool(1)
	defer pool.Close()
	const k = 2048
	eng := NewEngine(ConcurrentConfig{K: k, Writers: 1, MaxError: 1})
	rng := rand.New(rand.NewSource(0x5eed))

	prev := compactOfStream(eng, pool, rng, 100000)
	hint, ok := eng.HintCompact(prev)
	if !ok {
		t.Fatalf("no hint from a 100k-item stream (θ=%d)", prev.Theta())
	}

	// ~4.5 standard errors of the plain KMV RSE 1/sqrt(k-2): far past
	// any flakiness for a fixed seed, tight enough to catch a biased
	// seeded estimator (a wrong θ accounting shows up as ≥ headroom-
	// factor bias, not percent-level noise).
	tol := 4.5 / math.Sqrt(k-2)
	for _, n := range []int{100000, 100000 / carryHintHeadroom} {
		sk := eng.NewSketchSeeded(pool, 0, hint)
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = rng.Uint64()
		}
		sk.UpdateBatch(0, vs)
		sk.Flush(0)
		got := sk.Query()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > tol {
			t.Fatalf("seeded sketch over %d items estimates %.0f (rel err %.3f > %.3f)", n, got, relErr, tol)
		}
		sk.Close()
	}
}

// TestResetSeeded: recycling a sketch with ResetSeeded forgets its
// entire previous stream and installs the carried filter — it answers
// like a freshly seeded sketch, within KMV error.
func TestResetSeeded(t *testing.T) {
	pool := core.NewPropagatorPool(1)
	defer pool.Close()
	const k = 2048
	eng := NewEngine(ConcurrentConfig{K: k, Writers: 2, MaxError: 1})
	rng := rand.New(rand.NewSource(0xd0e))

	prev := compactOfStream(eng, pool, rng, 80000)
	hint, ok := eng.HintCompact(prev)
	if !ok {
		t.Fatalf("no hint from an 80k-item stream (θ=%d)", prev.Theta())
	}

	sk := eng.NewSketch(pool)
	defer sk.Close()
	rs, ok := any(sk).(core.ReseedableSketch[*Compact])
	if !ok {
		t.Fatalf("theta engine sketch does not implement core.ReseedableSketch")
	}
	junk := make([]uint64, 30000)
	for i := range junk {
		junk[i] = rng.Uint64()
	}
	sk.UpdateBatch(0, junk)
	sk.UpdateBatch(1, junk[:500])
	sk.Flush(0)
	rs.ResetSeeded(hint)

	const n = 60000
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = rng.Uint64()
	}
	sk.UpdateBatch(0, vs)
	sk.Flush(0)
	got := sk.Query()
	tol := 4.5 / math.Sqrt(k-2)
	if relErr := math.Abs(got-n) / n; relErr > tol {
		t.Fatalf("reseeded sketch estimates %.0f of %d (rel err %.3f > %.3f — junk remembered or filter wrong)",
			got, n, relErr, tol)
	}
	// The carried filter must actually be installed: the sketch's Θ can
	// only have tightened from θ₀, never loosened back toward 1.
	if ct := sk.Compact().Theta(); ct > hint.Theta() {
		t.Fatalf("post-reseed θ = %d looser than carried θ₀ = %d", ct, hint.Theta())
	}
}
