package theta

import (
	"github.com/fcds/fcds/internal/hash"
)

// KMV is the K-Minimum-Values Θ sketch of the paper's Algorithm 1. It
// retains the k smallest distinct hashes seen so far in a binary
// max-heap (so eviction of the largest is O(log k)) plus a membership
// set for O(1) duplicate detection.
//
// Estimation semantics: while fewer than k distinct hashes have been
// seen, Θ = 1 and the estimate is the exact distinct count. Once full,
// Θ is the k-th smallest hash and the estimate is (k-1)/Θ — the
// unbiased KMV estimator (E[(k-1)/M(k)] = n). Algorithm 1 writes the
// estimate as (|sampleSet|-1)/Θ in both regimes; we return the exact
// count below k, matching both DataSketches semantics and the paper's
// own observation that "the sequential Θ sketch answers queries with
// perfect accuracy in streams with up to k unique elements" (§5.3).
//
// KMV is not safe for concurrent use; wrap it with lockbased.Locked or
// use the core framework for concurrency.
type KMV struct {
	k    int
	seed uint64
	// heap is a max-heap of the k smallest hashes (heap[0] largest).
	heap []uint64
	// members mirrors heap contents for duplicate rejection.
	members map[uint64]struct{}
	theta   uint64
}

// NewKMV returns an empty KMV sketch with capacity k (k >= 2) and the
// library default hash seed.
func NewKMV(k int) *KMV { return NewKMVSeeded(k, hash.DefaultSeed) }

// NewKMVSeeded returns an empty KMV sketch with an explicit hash seed.
func NewKMVSeeded(k int, seed uint64) *KMV {
	if k < 2 {
		panic("theta: KMV requires k >= 2")
	}
	return &KMV{
		k:       k,
		seed:    seed,
		heap:    make([]uint64, 0, k),
		members: make(map[uint64]struct{}, k),
		theta:   hash.MaxThetaValue,
	}
}

// Update processes one stream item given as raw bytes.
func (s *KMV) Update(data []byte) { s.UpdateHash(hash.ThetaHashBytes(data, s.seed)) }

// UpdateUint64 processes one uint64 stream item.
func (s *KMV) UpdateUint64(v uint64) { s.UpdateHash(hash.ThetaHashUint64(v, s.seed)) }

// UpdateString processes one string stream item.
func (s *KMV) UpdateString(v string) { s.UpdateHash(hash.ThetaHashString(v, s.seed)) }

// UpdateHash processes a pre-hashed item (Θ-space hash). This is the
// paper's update(a) after h(a) has been computed; the concurrent
// framework uses it to hash exactly once per item.
func (s *KMV) UpdateHash(h uint64) {
	// Algorithm 1 line 9: if h(arg) >= Θ, ignore.
	if h >= s.theta {
		return
	}
	if _, dup := s.members[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.members[h] = struct{}{}
		s.heapPush(h)
		if len(s.heap) == s.k {
			s.theta = s.heap[0] // Θ ← max(sampleSet)
		}
		return
	}
	// Full: replace the current maximum (which is >= h since h < Θ).
	old := s.heap[0]
	delete(s.members, old)
	s.members[h] = struct{}{}
	s.heap[0] = h
	s.siftDown(0)
	s.theta = s.heap[0]
}

// Merge folds all samples of other into s (the paper's S.merge(S')).
// The sketches must share a hash seed.
func (s *KMV) Merge(other Sketch) error {
	if other.Seed() != s.seed {
		return ErrSeedMismatch
	}
	other.ForEachHash(s.UpdateHash)
	return nil
}

// Estimate implements Sketch.
func (s *KMV) Estimate() float64 {
	if s.theta >= hash.MaxThetaValue {
		return float64(len(s.heap)) // exact regime
	}
	// (k-1)/Θ: the sample set includes Θ itself as its maximum.
	return float64(s.k-1) / hash.FractionOf(s.theta)
}

// Theta implements Sketch.
func (s *KMV) Theta() uint64 { return s.theta }

// Retained implements Sketch.
func (s *KMV) Retained() int { return len(s.heap) }

// IsEstimationMode implements Sketch.
func (s *KMV) IsEstimationMode() bool { return s.theta < hash.MaxThetaValue }

// ForEachHash implements Sketch.
func (s *KMV) ForEachHash(fn func(uint64)) {
	for _, h := range s.heap {
		fn(h)
	}
}

// Seed implements Sketch.
func (s *KMV) Seed() uint64 { return s.seed }

// K returns the configured sample-set capacity.
func (s *KMV) K() int { return s.k }

// Reset restores the sketch to the empty state, retaining its buffers.
func (s *KMV) Reset() {
	s.heap = s.heap[:0]
	clear(s.members)
	s.theta = hash.MaxThetaValue
}

// Compact returns an immutable snapshot of the sketch.
func (s *KMV) Compact() *Compact {
	hashes := make([]uint64, len(s.heap))
	copy(hashes, s.heap)
	return newCompactFromUnsorted(hashes, s.theta, s.seed)
}

// heapPush inserts h into the max-heap.
func (s *KMV) heapPush(h uint64) {
	s.heap = append(s.heap, h)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

// siftDown restores the heap property from index i.
func (s *KMV) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l] > s.heap[largest] {
			largest = l
		}
		if r < n && s.heap[r] > s.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}
