package theta

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"github.com/fcds/fcds/internal/hash"
)

func TestSerdeRoundTripEmpty(t *testing.T) {
	c := EmptyCompact(hash.DefaultSeed)
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Retained() != 0 || got.Estimate() != 0 || got.Theta() != hash.MaxThetaValue {
		t.Errorf("round-tripped empty sketch: retained=%d est=%v", got.Retained(), got.Estimate())
	}
}

func TestSerdeRoundTripExact(t *testing.T) {
	s := NewQuickSelect(256)
	fill(s, 0, 100)
	c := s.Compact()
	data, _ := c.MarshalBinary()
	got, err := UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != c.Estimate() || got.Theta() != c.Theta() || got.Seed() != c.Seed() {
		t.Error("exact-mode round trip mismatch")
	}
}

func TestSerdeRoundTripEstimation(t *testing.T) {
	s := NewQuickSelect(64)
	fill(s, 0, 100000)
	c := s.Compact()
	data, _ := c.MarshalBinary()
	got, err := UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != c.Estimate() || got.Retained() != c.Retained() {
		t.Error("estimation-mode round trip mismatch")
	}
	// Hashes must round-trip in order.
	a, b := c.Hashes(), got.Hashes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hash %d mismatch", i)
		}
	}
}

func TestSerdeRejectsGarbage(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"short", func(b []byte) []byte { return b[:10] }, ErrCorrupt},
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"theta zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 0)
			return b
		}, ErrThetaRange},
		{"theta too large", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], hash.MaxThetaValue+5)
			return b
		}, ErrThetaRange},
		{"count mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:28], 9999)
			return b
		}, ErrCountBounds},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-8] }, ErrCountBounds},
	}
	s := NewQuickSelect(64)
	fill(s, 0, 10000)
	base, _ := s.Compact().MarshalBinary()
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			if _, err := UnmarshalCompact(data); !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestSerdeRejectsUnsortedHashes(t *testing.T) {
	s := NewQuickSelect(64)
	fill(s, 0, 10000)
	data, _ := s.Compact().MarshalBinary()
	// Swap the first two hashes to break ordering.
	h0 := binary.LittleEndian.Uint64(data[headerSize:])
	h1 := binary.LittleEndian.Uint64(data[headerSize+8:])
	binary.LittleEndian.PutUint64(data[headerSize:], h1)
	binary.LittleEndian.PutUint64(data[headerSize+8:], h0)
	if _, err := UnmarshalCompact(data); !errors.Is(err, ErrUnsorted) {
		t.Errorf("err = %v, want ErrUnsorted", err)
	}
}

func TestSerdeRejectsHashAboveTheta(t *testing.T) {
	s := NewQuickSelect(64)
	fill(s, 0, 10000)
	data, _ := s.Compact().MarshalBinary()
	theta := binary.LittleEndian.Uint64(data[16:24])
	// Overwrite the last (largest) hash with theta itself.
	binary.LittleEndian.PutUint64(data[len(data)-8:], theta)
	if _, err := UnmarshalCompact(data); !errors.Is(err, ErrAboveTheta) {
		t.Errorf("err = %v, want ErrAboveTheta", err)
	}
}

func TestSerdeRejectsZeroHash(t *testing.T) {
	s := NewQuickSelect(64)
	fill(s, 0, 1000)
	data, _ := s.Compact().MarshalBinary()
	binary.LittleEndian.PutUint64(data[headerSize:], 0)
	if _, err := UnmarshalCompact(data); !errors.Is(err, ErrZeroHash) {
		t.Errorf("err = %v, want ErrZeroHash", err)
	}
}

func TestSerdeFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must never panic; errors are fine.
		_, _ = UnmarshalCompact(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompactBounds(t *testing.T) {
	s := NewQuickSelect(1024)
	fill(s, 0, 500000)
	c := s.Compact()
	lb1, est, ub1 := c.LowerBound(1), c.Estimate(), c.UpperBound(1)
	lb3, ub3 := c.LowerBound(3), c.UpperBound(3)
	if !(lb3 <= lb1 && lb1 <= est && est <= ub1 && ub1 <= ub3) {
		t.Errorf("bound ordering violated: %v %v %v %v %v", lb3, lb1, est, ub1, ub3)
	}
	if lb1 < float64(c.Retained()) {
		t.Errorf("lower bound %v below retained %d", lb1, c.Retained())
	}
	// 1-sigma interval should contain the truth here (500k).
	if lb3 > 500000 || ub3 < 500000 {
		t.Errorf("3-sigma interval [%v, %v] misses n=500000", lb3, ub3)
	}
}

func TestCompactBoundsExactMode(t *testing.T) {
	s := NewQuickSelect(256)
	fill(s, 0, 100)
	c := s.Compact()
	if c.LowerBound(2) != 100 || c.UpperBound(2) != 100 {
		t.Errorf("exact-mode bounds [%v, %v], want [100, 100]", c.LowerBound(2), c.UpperBound(2))
	}
}

func TestCompactTrimmedToK(t *testing.T) {
	s := NewQuickSelect(64)
	fill(s, 0, 100000)
	c := s.Compact()
	trimmed := c.trimmedToK(32)
	if trimmed.Retained() != 32 {
		t.Fatalf("trimmed retained = %d, want 32", trimmed.Retained())
	}
	trimmed.ForEachHash(func(h uint64) {
		if h >= trimmed.Theta() {
			t.Fatal("trimmed hash >= new theta")
		}
	})
	// Trimming must not change the estimate drastically (same estimator).
	if re := (trimmed.Estimate() - c.Estimate()) / c.Estimate(); re > 0.5 || re < -0.5 {
		t.Errorf("trim changed estimate from %v to %v", c.Estimate(), trimmed.Estimate())
	}
}
