package theta

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuickSelectExactBelowRebuild(t *testing.T) {
	k := 64
	s := NewQuickSelect(k)
	limit := 2*k*rebuildNum/rebuildDen - 1
	for i := 0; i < limit; i++ {
		s.UpdateUint64(uint64(i))
	}
	if s.IsEstimationMode() {
		t.Fatalf("estimation mode before first rebuild (%d items)", limit)
	}
	if got := s.Estimate(); got != float64(limit) {
		t.Errorf("estimate = %v, want exact %d", got, limit)
	}
}

func TestQuickSelectRebuildKeepsKEntries(t *testing.T) {
	k := 64
	s := NewQuickSelect(k)
	// Drive exactly to the rebuild threshold: the next insert compacts
	// back to k retained entries.
	thresh := 2 * k * rebuildNum / rebuildDen
	for i := 0; i < thresh; i++ {
		s.UpdateUint64(uint64(i))
	}
	if !s.IsEstimationMode() {
		t.Fatal("not in estimation mode after rebuild")
	}
	if s.Retained() != k {
		t.Errorf("retained after rebuild = %d, want k=%d", s.Retained(), k)
	}
	// All retained hashes must be strictly below theta.
	s.ForEachHash(func(h uint64) {
		if h >= s.Theta() {
			t.Fatalf("retained hash %d >= theta %d", h, s.Theta())
		}
	})
}

func TestQuickSelectRetainedBounds(t *testing.T) {
	// "The sketch stores between k and 2k items" once warmed up (§7.1).
	k := 64
	s := NewQuickSelect(k)
	for i := 0; i < 100000; i++ {
		s.UpdateUint64(uint64(i))
		if r := s.Retained(); r >= 2*k {
			t.Fatalf("retained %d >= 2k", r)
		}
	}
	if r := s.Retained(); r < k-1 {
		t.Errorf("retained %d < k-1 after warmup", r)
	}
}

func TestQuickSelectDuplicatesIgnored(t *testing.T) {
	s := NewQuickSelect(64)
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 50; i++ {
			s.UpdateUint64(uint64(i))
		}
	}
	if got := s.Estimate(); got != 50 {
		t.Errorf("estimate = %v, want 50", got)
	}
}

func TestQuickSelectAccuracy(t *testing.T) {
	k, n := 1024, 200000
	s := NewQuickSelect(k)
	for i := 0; i < n; i++ {
		s.UpdateUint64(uint64(i))
	}
	rse := 1 / math.Sqrt(float64(k-2))
	if re := math.Abs(s.Estimate()-float64(n)) / float64(n); re > 5*rse {
		t.Errorf("relative error %.4f > 5·RSE (est=%v)", re, s.Estimate())
	}
}

func TestQuickSelectUnbiasedAcrossTrials(t *testing.T) {
	k, n, trials := 256, 20000, 200
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewQuickSelectSeeded(k, uint64(tr)*104729+11)
		for i := 0; i < n; i++ {
			s.UpdateUint64(uint64(i))
		}
		sum += s.Estimate()
	}
	mean := sum / float64(trials)
	// Retained varies in [k,2k); RSE ≤ 1/sqrt(k-2). 3 SEM tolerance.
	sem := float64(n) / math.Sqrt(float64(k-2)) / math.Sqrt(float64(trials))
	if math.Abs(mean-float64(n)) > 3*sem {
		t.Errorf("mean estimate %v deviates from n=%d by > 3 SEM (%v)", mean, n, 3*sem)
	}
}

func TestQuickSelectThetaMonotone(t *testing.T) {
	s := NewQuickSelect(64)
	prev := s.Theta()
	for i := 0; i < 50000; i++ {
		s.UpdateUint64(uint64(i))
		if th := s.Theta(); th > prev {
			t.Fatalf("theta increased at update %d", i)
		} else {
			prev = th
		}
	}
}

func TestQuickSelectMergeEquivalence(t *testing.T) {
	k := 128
	whole := NewQuickSelect(k)
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	for i := uint64(0); i < 30000; i++ {
		whole.UpdateUint64(i)
		if i%2 == 0 {
			a.UpdateUint64(i)
		} else {
			b.UpdateUint64(i)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Merge order differs from stream order, so the retained sets can
	// differ slightly; estimates must agree within a few percent of RSE.
	wa, wb := whole.Estimate(), a.Estimate()
	if re := math.Abs(wa-wb) / wa; re > 0.1 {
		t.Errorf("merged estimate %v vs whole %v (re=%v)", wb, wa, re)
	}
}

func TestQuickSelectVsKMVConsistency(t *testing.T) {
	// Same seed, same stream: both estimators must land close together
	// (both are ~unbiased with RSE ~ 1/sqrt(k)).
	k, n := 512, 100000
	qs := NewQuickSelectSeeded(k, 42)
	kmv := NewKMVSeeded(k, 42)
	for i := 0; i < n; i++ {
		qs.UpdateUint64(uint64(i))
		kmv.UpdateUint64(uint64(i))
	}
	rse := 1 / math.Sqrt(float64(k-2))
	if re := math.Abs(qs.Estimate()-kmv.Estimate()) / float64(n); re > 6*rse {
		t.Errorf("QS estimate %v and KMV estimate %v diverge by %v", qs.Estimate(), kmv.Estimate(), re)
	}
}

func TestQuickSelectExactAgreesWithKMVExact(t *testing.T) {
	qs := NewQuickSelectSeeded(64, 9)
	kmv := NewKMVSeeded(64, 9)
	for i := 0; i < 60; i++ {
		qs.UpdateUint64(uint64(i))
		kmv.UpdateUint64(uint64(i))
	}
	if qs.Estimate() != kmv.Estimate() {
		t.Errorf("exact-mode disagreement: qs=%v kmv=%v", qs.Estimate(), kmv.Estimate())
	}
}

func TestQuickSelectReset(t *testing.T) {
	s := NewQuickSelect(64)
	for i := 0; i < 10000; i++ {
		s.UpdateUint64(uint64(i))
	}
	s.Reset()
	if s.Retained() != 0 || s.IsEstimationMode() {
		t.Fatal("reset did not clear sketch")
	}
	for i := 0; i < 10; i++ {
		s.UpdateUint64(uint64(i))
	}
	if s.Estimate() != 10 {
		t.Errorf("estimate after reset = %v, want 10", s.Estimate())
	}
}

func TestQuickSelectPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 1, 15, 100} { // 100 not a power of two
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuickSelect(%d) did not panic", k)
				}
			}()
			NewQuickSelect(k)
		}()
	}
}

func TestSelectKth(t *testing.T) {
	tests := []struct {
		a    []uint64
		k    int
		want uint64
	}{
		{[]uint64{5}, 1, 5},
		{[]uint64{2, 1}, 1, 1},
		{[]uint64{2, 1}, 2, 2},
		{[]uint64{9, 3, 7, 1, 5}, 3, 5},
		{[]uint64{9, 3, 7, 1, 5}, 1, 1},
		{[]uint64{9, 3, 7, 1, 5}, 5, 9},
	}
	for _, tc := range tests {
		a := append([]uint64(nil), tc.a...)
		if got := selectKth(a, tc.k); got != tc.want {
			t.Errorf("selectKth(%v, %d) = %d, want %d", tc.a, tc.k, got, tc.want)
		}
	}
}

func TestSelectKthProperty(t *testing.T) {
	f := func(vals []uint64, kRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		k := int(kRaw)%len(vals) + 1
		a := append([]uint64(nil), vals...)
		got := selectKth(a, k)
		b := append([]uint64(nil), vals...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		return got == b[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSelectKthPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("selectKth k=%d did not panic", k)
				}
			}()
			selectKth([]uint64{1, 2, 3}, k)
		}()
	}
}

func TestHashTableInsertContains(t *testing.T) {
	ht := newHashTable(64)
	for i := uint64(1); i <= 30; i++ {
		if !ht.insert(i * 2654435761) {
			t.Fatalf("fresh insert %d reported duplicate", i)
		}
	}
	for i := uint64(1); i <= 30; i++ {
		if !ht.contains(i * 2654435761) {
			t.Fatalf("inserted key %d not found", i)
		}
		if ht.insert(i * 2654435761) {
			t.Fatalf("duplicate insert %d reported fresh", i)
		}
	}
	if ht.contains(999) {
		t.Error("contains reported a never-inserted key")
	}
	if ht.count != 30 {
		t.Errorf("count = %d, want 30", ht.count)
	}
}

func TestHashTableReset(t *testing.T) {
	ht := newHashTable(16)
	ht.insert(12345)
	ht.reset()
	if ht.count != 0 || ht.contains(12345) {
		t.Error("reset did not clear table")
	}
}

func TestHashTableAppendAll(t *testing.T) {
	ht := newHashTable(32)
	want := map[uint64]bool{}
	for i := uint64(1); i <= 20; i++ {
		h := i * 0x9e3779b9
		ht.insert(h)
		want[h] = true
	}
	got := ht.appendAll(nil)
	if len(got) != 20 {
		t.Fatalf("appendAll returned %d values, want 20", len(got))
	}
	for _, h := range got {
		if !want[h] {
			t.Fatalf("appendAll returned unexpected value %d", h)
		}
	}
}

func BenchmarkQuickSelectUpdate(b *testing.B) {
	s := NewQuickSelect(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateUint64(uint64(i))
	}
}

func BenchmarkQuickSelectUpdateHash(b *testing.B) {
	// Update path without the Murmur hash: what the concurrent global
	// pays per propagated item.
	s := NewQuickSelect(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateHash(uint64(i)*0x9e3779b97f4a7c15>>1 | 1)
	}
}

func TestQuickSelectTableGrowth(t *testing.T) {
	// The table starts at 64 slots and doubles with fill; correctness
	// must hold across every growth step and the estimate must stay
	// exact until the first rebuild.
	s := NewQuickSelect(4096)
	if len(s.table.slots) != 64 {
		t.Fatalf("initial table %d slots, want 64", len(s.table.slots))
	}
	for i := 0; i < 5000; i++ {
		s.UpdateUint64(uint64(i))
		if !s.IsEstimationMode() && s.Estimate() != float64(i+1) {
			t.Fatalf("estimate %v after %d exact-mode updates", s.Estimate(), i+1)
		}
	}
	if len(s.table.slots) > 4*4096 {
		t.Errorf("table grew past 4k slots: %d", len(s.table.slots))
	}
}

func TestQuickSelectSmallKTableFixed(t *testing.T) {
	s := NewQuickSelect(16)
	for i := 0; i < 100000; i++ {
		s.UpdateUint64(uint64(i))
	}
	if len(s.table.slots) != 64 {
		t.Errorf("k=16 table %d slots, want fixed 64", len(s.table.slots))
	}
}
