package theta

import (
	"github.com/fcds/fcds/internal/hash"
)

// Union computes the Θ-sketch union of multiple sketches. It maintains
// an internal QuickSelect "gadget" plus a running minimum Θ over all
// inputs; Result returns a compact sketch summarizing the concatenation
// of all input streams (the mergeability property of §3).
type Union struct {
	gadget   *QuickSelect
	unionMin uint64 // min Θ over all inputs seen so far
}

// NewUnion returns an empty union with nominal entry count k.
func NewUnion(k int) *Union { return NewUnionSeeded(k, hash.DefaultSeed) }

// NewUnionSeeded returns an empty union with an explicit seed.
func NewUnionSeeded(k int, seed uint64) *Union {
	return &Union{
		gadget:   NewQuickSelectSeeded(k, seed),
		unionMin: hash.MaxThetaValue,
	}
}

// Add folds a sketch into the union. Seeds must match.
func (u *Union) Add(s Sketch) error {
	if s.Seed() != u.gadget.seed {
		return ErrSeedMismatch
	}
	if t := s.Theta(); t < u.unionMin {
		u.unionMin = t
	}
	s.ForEachHash(func(h uint64) {
		if h < u.unionMin {
			u.gadget.UpdateHash(h)
		}
	})
	return nil
}

// AddHash feeds a single pre-hashed item into the union (allows using a
// union directly as a streaming sketch).
func (u *Union) AddHash(h uint64) { u.gadget.UpdateHash(h) }

// Result returns the compact union sketch. The union may continue to
// be used afterwards.
func (u *Union) Result() *Compact {
	theta := u.gadget.theta
	if u.unionMin < theta {
		theta = u.unionMin
	}
	hashes := make([]uint64, 0, u.gadget.Retained())
	u.gadget.ForEachHash(func(h uint64) {
		if h < theta {
			hashes = append(hashes, h)
		}
	})
	return newCompactFromUnsorted(hashes, theta, u.gadget.seed).trimmedToK(u.gadget.k)
}

// Reset restores the union to empty.
func (u *Union) Reset() {
	u.gadget.Reset()
	u.unionMin = hash.MaxThetaValue
}

// Intersection computes the Θ-sketch intersection. Standard semantics:
// the result Θ is the minimum input Θ and the retained set is the
// intersection of the inputs' retained sets below that Θ. The relative
// error grows as the intersection shrinks (inherent to the method).
type Intersection struct {
	seed  uint64
	theta uint64
	// hashes is nil until the first Add; nil means "universal set".
	hashes map[uint64]struct{}
}

// NewIntersection returns an intersection in its universal initial
// state (intersecting nothing yields "everything").
func NewIntersection() *Intersection { return NewIntersectionSeeded(hash.DefaultSeed) }

// NewIntersectionSeeded returns an empty intersection with an explicit
// seed.
func NewIntersectionSeeded(seed uint64) *Intersection {
	return &Intersection{seed: seed, theta: hash.MaxThetaValue}
}

// Add intersects s into the running result. Seeds must match.
func (x *Intersection) Add(s Sketch) error {
	if s.Seed() != x.seed {
		return ErrSeedMismatch
	}
	if t := s.Theta(); t < x.theta {
		x.theta = t
	}
	incoming := make(map[uint64]struct{}, s.Retained())
	s.ForEachHash(func(h uint64) { incoming[h] = struct{}{} })
	if x.hashes == nil {
		x.hashes = incoming
		return nil
	}
	for h := range x.hashes {
		if _, ok := incoming[h]; !ok {
			delete(x.hashes, h)
		}
	}
	return nil
}

// Result returns the compact intersection sketch. Calling Result before
// any Add returns an empty exact sketch (the estimate of "everything"
// is undefined; we follow DataSketches in rejecting it).
func (x *Intersection) Result() *Compact {
	if x.hashes == nil {
		return EmptyCompact(x.seed)
	}
	hashes := make([]uint64, 0, len(x.hashes))
	for h := range x.hashes {
		if h < x.theta {
			hashes = append(hashes, h)
		}
	}
	return newCompactFromUnsorted(hashes, x.theta, x.seed)
}

// AnotB returns a compact sketch of the set difference A \ B: retained
// hashes of A below min(Θ_A, Θ_B) that do not appear in B.
func AnotB(a, b Sketch) (*Compact, error) {
	if a.Seed() != b.Seed() {
		return nil, ErrSeedMismatch
	}
	theta := a.Theta()
	if bt := b.Theta(); bt < theta {
		theta = bt
	}
	inB := make(map[uint64]struct{}, b.Retained())
	b.ForEachHash(func(h uint64) { inB[h] = struct{}{} })
	hashes := make([]uint64, 0, a.Retained())
	a.ForEachHash(func(h uint64) {
		if h < theta {
			if _, ok := inB[h]; !ok {
				hashes = append(hashes, h)
			}
		}
	})
	return newCompactFromUnsorted(hashes, theta, a.Seed()), nil
}

// JaccardEstimate estimates the Jaccard similarity |A∩B| / |A∪B| of the
// streams summarized by a and b, using k for the internal union.
func JaccardEstimate(a, b Sketch, k int) (float64, error) {
	if a.Seed() != b.Seed() {
		return 0, ErrSeedMismatch
	}
	u := NewUnionSeeded(k, a.Seed())
	if err := u.Add(a); err != nil {
		return 0, err
	}
	if err := u.Add(b); err != nil {
		return 0, err
	}
	union := u.Result()
	x := NewIntersectionSeeded(a.Seed())
	if err := x.Add(a); err != nil {
		return 0, err
	}
	if err := x.Add(b); err != nil {
		return 0, err
	}
	inter := x.Result()
	ue := union.Estimate()
	if ue == 0 {
		return 0, nil
	}
	return inter.Estimate() / ue, nil
}
