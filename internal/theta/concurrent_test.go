package theta

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestConcurrentExactSmallStream(t *testing.T) {
	// With eager propagation, small streams are answered exactly (§5.3).
	c := NewConcurrent(ConcurrentConfig{K: 4096, Writers: 1, MaxError: 0.04})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(1); i <= 1000; i++ {
		w.UpdateUint64(i)
		if i <= 1000 && c.Eager() {
			if est := c.Estimate(); est != float64(i) {
				t.Fatalf("eager phase after %d updates: estimate %v", i, est)
			}
		}
	}
}

func TestConcurrentSingleWriterAccuracy(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 1024, Writers: 1, MaxError: 0.04})
	defer c.Close()
	w := c.Writer(0)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	est := c.Estimate()
	if re := math.Abs(est-n) / n; re > 0.15 {
		t.Errorf("relative error %v (est=%v)", re, est)
	}
}

func TestConcurrentMultiWriterAccuracy(t *testing.T) {
	const writers, per = 4, 100000
	c := NewConcurrent(ConcurrentConfig{K: 4096, Writers: writers, MaxError: 0.04})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				w.UpdateUint64(uint64(i*per + j)) // disjoint ranges
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	n := float64(writers * per)
	if re := math.Abs(c.Estimate()-n) / n; re > 0.1 {
		t.Errorf("relative error %v (est=%v, n=%v)", re, c.Estimate(), n)
	}
}

func TestConcurrentRelaxationExactMode(t *testing.T) {
	// In exact mode (stream < k, Θ = 1) the estimate equals the number
	// of propagated updates, so Theorem 1's bound is directly checkable:
	// a quiesced query misses at most r = 2Nb updates.
	const writers = 2
	c := NewConcurrent(ConcurrentConfig{
		K: 65536, Writers: writers, BufferSize: 8, EagerLimit: -1, // no eager, stay exact
	})
	defer c.Close()
	const per = 1000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				w.UpdateUint64(uint64(i*per + j))
			}
			// No flush: leave residue in local buffers.
		}(i)
	}
	wg.Wait()
	quiesce(c)
	est := c.Estimate()
	total := float64(writers * per)
	r := float64(c.Relaxation())
	if est > total {
		t.Errorf("estimate %v exceeds true count %v in exact mode", est, total)
	}
	if est < total-r {
		t.Errorf("estimate %v misses more than r=%v of %v updates", est, r, total)
	}
}

func quiesce(c *Concurrent) {
	prev := int64(-1)
	for i := 0; i < 500; i++ {
		cur := c.Propagations()
		if cur == prev {
			return
		}
		prev = cur
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConcurrentPreFilteringReducesPropagation(t *testing.T) {
	// §5.2: the Θ hint prunes updates writer-side, so the number of
	// hashes reaching the global sketch is far below the stream size.
	c := NewConcurrent(ConcurrentConfig{K: 256, Writers: 1, MaxError: 1, BufferSize: 16, EagerLimit: -1})
	defer c.Close()
	w := c.Writer(0)
	const n = 1 << 20
	for i := uint64(0); i < n; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	// Each propagation carries <= b hashes; with filtering the total
	// propagated is O(k log n) << n.
	maxPropagated := int64(16) * c.Propagations()
	if maxPropagated > n/8 {
		t.Errorf("propagated up to %d hashes for n=%d; hint filtering ineffective", maxPropagated, n)
	}
	// Sanity: the filter must not hurt accuracy.
	if re := math.Abs(c.Estimate()-n) / n; re > 0.3 {
		t.Errorf("relative error %v with filtering", re)
	}
}

func TestConcurrentHintAdoption(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 256, Writers: 1, MaxError: 1, BufferSize: 8, EagerLimit: -1})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(0); i < 100000; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	if w.Hint() >= 1<<63 {
		t.Error("writer hint never tightened below 1.0 on a large stream")
	}
}

func TestConcurrentQueriesDuringIngestion(t *testing.T) {
	// Mixed workload smoke test: estimates observed live must be
	// monotone-ish (Θ estimate can wobble slightly across rebuilds but
	// must never regress below half of a previously seen value).
	c := NewConcurrent(ConcurrentConfig{K: 1024, Writers: 2, MaxError: 0.04})
	defer c.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 200000; j++ {
				w.UpdateUint64(uint64(i*200000 + j))
			}
			w.Flush()
		}(i)
	}
	go func() {
		wg.Wait()
		close(stop)
	}()
	var peak float64
	for {
		select {
		case <-stop:
			return
		default:
		}
		est := c.Estimate()
		if est > peak {
			peak = est
		}
		if est < peak*0.5 {
			t.Fatalf("estimate collapsed from %v to %v mid-stream", peak, est)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentParSketchVariant(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 1024, Writers: 2, BufferSize: 8, EagerLimit: -1,
		DisableDoubleBuffering: true,
	})
	defer c.Close()
	if c.Relaxation() != 2*8 {
		t.Errorf("ParSketch relaxation = %d, want N*b = 16", c.Relaxation())
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 50000; j++ {
				w.UpdateUint64(uint64(i*50000 + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-100000) / 100000; re > 0.15 {
		t.Errorf("ParSketch relative error %v", re)
	}
}

func TestConcurrentDefaults(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{})
	defer c.Close()
	if c.K() != 4096 {
		t.Errorf("default K = %d", c.K())
	}
	if c.BufferSize() <= 0 {
		t.Error("default buffer size not derived")
	}
	if !c.Eager() {
		t.Error("default config should start eager (e=0.04)")
	}
}

func TestConcurrentDuplicateHeavyStream(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 1024, Writers: 2, MaxError: 0.04})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 100000; j++ {
				w.UpdateUint64(uint64(j % 5000)) // only 5000 uniques
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-5000) / 5000; re > 0.15 {
		t.Errorf("estimate %v for 5000 uniques with heavy duplication", c.Estimate())
	}
}

func BenchmarkConcurrentUpdateSingleWriter(b *testing.B) {
	c := NewConcurrent(ConcurrentConfig{K: 4096, Writers: 1, MaxError: 1, EagerLimit: -1})
	defer c.Close()
	w := c.Writer(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.UpdateUint64(uint64(i))
	}
}

func BenchmarkLockBaselineComparison(b *testing.B) {
	// Paired with BenchmarkConcurrentUpdateSingleWriter: the per-update
	// cost gap is the single-threaded core of Figures 1/6.
	s := NewQuickSelect(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateUint64(uint64(i))
	}
}
