package theta

import (
	"errors"

	"github.com/fcds/fcds/internal/hash"
)

// Sketch is the read-side API shared by every Θ sketch variant in this
// package (KMV, QuickSelect, Compact, and the concurrent global).
type Sketch interface {
	// Estimate returns the estimated number of unique items processed.
	Estimate() float64
	// Theta returns the current threshold in Θ space (2^63 == 1.0).
	Theta() uint64
	// Retained returns the number of hash samples currently stored.
	Retained() int
	// IsEstimationMode reports whether Θ < 1, i.e. the sketch is
	// sampling rather than counting exactly.
	IsEstimationMode() bool
	// ForEachHash calls fn for every retained hash, in unspecified
	// order. Used by set operations and serialization.
	ForEachHash(fn func(uint64))
	// Seed returns the hash seed; sketches are only mergeable when
	// their seeds match.
	Seed() uint64
}

// ErrSeedMismatch is returned by set operations and deserialization
// when two sketches were built with different hash seeds.
var ErrSeedMismatch = errors.New("theta: hash seed mismatch")

// estimateFrom computes retained/Θ, the standard Θ estimator. In exact
// mode (Θ == 1) it returns the exact retained count.
func estimateFrom(theta uint64, retained int) float64 {
	if theta >= hash.MaxThetaValue {
		return float64(retained)
	}
	return float64(retained) / hash.FractionOf(theta)
}
