package theta

import (
	"math"
	"testing"
)

func TestAdaptiveBufferingGrowsInEstimationMode(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 256, Writers: 1, MaxError: 0.1, BufferSize: 4, EagerLimit: -1,
		AdaptiveBuffering: true,
	})
	defer c.Close()
	w := c.Writer(0)
	// Drive well into estimation mode.
	for i := uint64(0); i < 100000; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	if w.Hint() >= 1<<63 {
		t.Fatal("sketch never entered estimation mode")
	}
	// b_est = e·K/(2N) = 0.1*256/2 = 12 > base 4.
	if re := math.Abs(c.Estimate()-100000) / 100000; re > 0.3 {
		t.Errorf("adaptive sketch relative error %v", re)
	}
}

func TestAdaptiveBufferingReducesPropagations(t *testing.T) {
	run := func(adaptive bool) int64 {
		c := NewConcurrent(ConcurrentConfig{
			K: 256, Writers: 1, MaxError: 0.5, BufferSize: 2, EagerLimit: -1,
			AdaptiveBuffering: adaptive, DisableFiltering: true,
		})
		defer c.Close()
		w := c.Writer(0)
		for i := uint64(0); i < 200000; i++ {
			w.UpdateUint64(i)
		}
		w.Flush()
		return c.Propagations()
	}
	fixed := run(false)
	adaptive := run(true)
	// With filtering off, fixed b=2 hands off ~100k times; adaptive
	// grows to b_est = 0.5·256/2 = 64 and must hand off far less.
	if adaptive*4 > fixed {
		t.Errorf("adaptive propagations %d not << fixed %d", adaptive, fixed)
	}
}

func TestDisableFilteringStillAccurate(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 1024, Writers: 1, MaxError: 1, BufferSize: 64, EagerLimit: -1,
		DisableFiltering: true,
	})
	defer c.Close()
	w := c.Writer(0)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	if re := math.Abs(c.Estimate()-n) / n; re > 0.15 {
		t.Errorf("relative error %v with filtering disabled", re)
	}
}

func TestFilteringReducesPropagationsVsAblation(t *testing.T) {
	// §5.2: "this significantly reduces the frequency of propagations".
	run := func(disable bool) int64 {
		c := NewConcurrent(ConcurrentConfig{
			K: 256, Writers: 1, MaxError: 1, BufferSize: 16, EagerLimit: -1,
			DisableFiltering: disable,
		})
		defer c.Close()
		w := c.Writer(0)
		for i := uint64(0); i < 500000; i++ {
			w.UpdateUint64(i)
		}
		w.Flush()
		return c.Propagations()
	}
	withFilter := run(false)
	withoutFilter := run(true)
	if withFilter*10 > withoutFilter {
		t.Errorf("filtering on: %d propagations, off: %d — expected >=10x reduction",
			withFilter, withoutFilter)
	}
}
