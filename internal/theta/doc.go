// Package theta implements KMV-style Θ sketches for estimating the
// number of unique elements in a stream, following Bar-Yossef et al.
// (the paper's Algorithm 1) and the QuickSelect family that Apache
// DataSketches — and the paper's evaluation (§7.1) — use in production.
//
// All sketches operate in a 63-bit "Θ space": items are hashed with
// MurmurHash3 into (0, 2^63) and a threshold Θ in the same space
// determines which hashes are retained. The estimate is
// retained / (Θ/2^63). Two families are provided:
//
//   - KMV: Algorithm 1 of the paper. Keeps exactly the k smallest
//     hashes in a max-heap + membership map; Θ is the k-th smallest
//     hash once full and the estimate is (k-1)/Θ. It is the reference
//     implementation used by the error-analysis tests.
//
//   - QuickSelect: the HeapQuickSelectSketch family. Stores between k
//     and ~2k hashes in an open-addressing table; when full it
//     quickselects the (k+1)-th smallest value as the new Θ and
//     discards larger entries. This is the fast variant used as the
//     global and baseline sketch in the evaluation.
//
// The package also provides the set operations a downstream user
// expects from a Θ sketch library (Union, Intersection, AnotB), compact
// immutable snapshots with confidence bounds, and binary
// serialization. Concurrency adapters for the generic framework of
// package core live in concurrent.go.
package theta
