package theta

import (
	"sync"
	"testing"
)

// TestConcurrentCompact checks that a compact snapshot of a live
// concurrent sketch round-trips through serialization and matches the
// published estimate after a flush.
func TestConcurrentCompact(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 256, Writers: 2, MaxError: 1.0})
	defer c.Close()
	const n = 10000
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for v := uint64(0); v < n/2; v++ {
				w.UpdateUint64(v*2 + uint64(i))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	cp := c.Compact()
	if got, want := cp.Estimate(), c.Estimate(); got != want {
		t.Errorf("compact estimate = %v, live estimate = %v", got, want)
	}
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != cp.Estimate() || back.Retained() != cp.Retained() {
		t.Errorf("round-trip mismatch: %v/%d vs %v/%d",
			back.Estimate(), back.Retained(), cp.Estimate(), cp.Retained())
	}
}

// TestConcurrentCompactDuringIngest races Compact against ongoing
// ingestion; the race detector is the assertion.
func TestConcurrentCompactDuringIngest(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 64, Writers: 1, MaxError: 1.0, BufferSize: 2})
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := c.Writer(0)
		for v := uint64(0); v < 20000; v++ {
			w.UpdateUint64(v)
		}
		w.Flush()
	}()
	for i := 0; i < 100; i++ {
		cp := c.Compact()
		if cp.Estimate() < 0 {
			t.Fatal("negative estimate")
		}
	}
	<-done
}
