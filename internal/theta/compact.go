package theta

import (
	"math"
	"slices"

	"github.com/fcds/fcds/internal/hash"
)

// Compact is an immutable, ordered Θ sketch: the result of compacting
// an updatable sketch or a set operation. Because it is immutable it is
// trivially safe to share across goroutines.
type Compact struct {
	hashes []uint64 // sorted ascending, all < theta
	theta  uint64
	seed   uint64
}

// newCompactFromUnsorted takes ownership of hashes.
func newCompactFromUnsorted(hashes []uint64, theta, seed uint64) *Compact {
	slices.Sort(hashes)
	return &Compact{hashes: hashes, theta: theta, seed: seed}
}

// EmptyCompact returns the compact form of the empty sketch.
func EmptyCompact(seed uint64) *Compact {
	return &Compact{theta: hash.MaxThetaValue, seed: seed}
}

// Estimate implements Sketch.
func (c *Compact) Estimate() float64 { return estimateFrom(c.theta, len(c.hashes)) }

// Theta implements Sketch.
func (c *Compact) Theta() uint64 { return c.theta }

// Retained implements Sketch.
func (c *Compact) Retained() int { return len(c.hashes) }

// IsEstimationMode implements Sketch.
func (c *Compact) IsEstimationMode() bool { return c.theta < hash.MaxThetaValue }

// ForEachHash implements Sketch; iteration is in ascending hash order.
func (c *Compact) ForEachHash(fn func(uint64)) {
	for _, h := range c.hashes {
		fn(h)
	}
}

// Seed implements Sketch.
func (c *Compact) Seed() uint64 { return c.seed }

// Hashes returns the sorted retained hashes. The slice must not be
// modified.
func (c *Compact) Hashes() []uint64 { return c.hashes }

// UpperBound returns an approximate upper confidence bound on the true
// unique count at numStdDev standard deviations (1, 2 or 3). It uses
// the normal approximation with RSE = 1/sqrt(retained): for the
// retained counts Θ sketches operate at (hundreds to thousands) this is
// within a fraction of a percent of the exact binomial bound.
func (c *Compact) UpperBound(numStdDev int) float64 {
	return c.bound(numStdDev, +1)
}

// LowerBound is the lower counterpart of UpperBound. It never returns
// less than the retained count when the sketch is in exact mode.
func (c *Compact) LowerBound(numStdDev int) float64 {
	return c.bound(numStdDev, -1)
}

func (c *Compact) bound(numStdDev, sign int) float64 {
	if !c.IsEstimationMode() {
		return float64(len(c.hashes)) // exact
	}
	n := float64(len(c.hashes))
	if n <= 2 {
		if sign < 0 {
			return 0
		}
		return math.Max(c.Estimate(), 1)
	}
	rse := 1 / math.Sqrt(n-2)
	est := c.Estimate()
	b := est * (1 + float64(sign)*float64(numStdDev)*rse)
	if sign < 0 {
		// The true count is at least the number of distinct samples.
		return math.Max(b, n)
	}
	return b
}

// trimmedToK returns a compact sketch with at most k retained entries:
// if more are present, Θ becomes the (k+1)-th smallest hash and larger
// entries are dropped. Set operations use it to restore the nominal-k
// invariant. c must be sorted (always true for Compact).
func (c *Compact) trimmedToK(k int) *Compact {
	if len(c.hashes) <= k {
		return c
	}
	newTheta := c.hashes[k]
	return &Compact{hashes: c.hashes[:k], theta: newTheta, seed: c.seed}
}
