package theta

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests of the sketch algebra. Seeds and stream shapes
// are driven by testing/quick; tolerances are multiples of the
// a-priori RSE.

func TestPropertyMergeCommutativeKMV(t *testing.T) {
	// KMV retains exactly the k smallest hashes — a pure function of
	// the input *set* — so merge(A,B) and merge(B,A) are identical.
	// (QuickSelect's rebuild points depend on order, so it only
	// promises estimate agreement; see the associativity test.)
	f := func(seed uint64, split uint16) bool {
		k := 128
		n := uint64(20000)
		cut := uint64(split) % n
		ab := NewKMVSeeded(k, seed|1)
		ba := NewKMVSeeded(k, seed|1)
		a1, b1 := NewKMVSeeded(k, seed|1), NewKMVSeeded(k, seed|1)
		for i := uint64(0); i < n; i++ {
			if i < cut {
				a1.UpdateUint64(i)
			} else {
				b1.UpdateUint64(i)
			}
		}
		if err := ab.Merge(a1); err != nil {
			return false
		}
		if err := ab.Merge(b1); err != nil {
			return false
		}
		if err := ba.Merge(b1); err != nil {
			return false
		}
		if err := ba.Merge(a1); err != nil {
			return false
		}
		return ab.Estimate() == ba.Estimate() && ab.Theta() == ba.Theta()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeAssociativeEstimates(t *testing.T) {
	// (A∪B)∪C vs A∪(B∪C): same retained set under a shared hash.
	f := func(seed uint64) bool {
		k := 128
		mk := func(lo, hi uint64) *QuickSelect {
			s := NewQuickSelectSeeded(k, seed|1)
			for i := lo; i < hi; i++ {
				s.UpdateUint64(i)
			}
			return s
		}
		a, b, c := mk(0, 7000), mk(7000, 14000), mk(14000, 21000)
		left := NewQuickSelectSeeded(k, seed|1)
		_ = left.Merge(a)
		_ = left.Merge(b)
		_ = left.Merge(c)
		right := NewQuickSelectSeeded(k, seed|1)
		bc := NewQuickSelectSeeded(k, seed|1)
		_ = bc.Merge(b)
		_ = bc.Merge(c)
		_ = right.Merge(a)
		_ = right.Merge(bc)
		// Merge order can change rebuild points, so retained sets may
		// differ slightly; estimates must agree within a few RSE.
		diff := math.Abs(left.Estimate()-right.Estimate()) / 21000
		return diff < 4/math.Sqrt(float64(k-2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInclusionExclusion(t *testing.T) {
	// |A∪B| + |A∩B| ≈ |A| + |B| for the sketch estimates.
	f := func(seed uint64, overlapRaw uint16) bool {
		k := 2048
		nA, nB := uint64(60000), uint64(50000)
		overlap := uint64(overlapRaw) % 40000
		a := NewQuickSelectSeeded(k, seed|1)
		b := NewQuickSelectSeeded(k, seed|1)
		for i := uint64(0); i < nA; i++ {
			a.UpdateUint64(i)
		}
		for i := nA - overlap; i < nA-overlap+nB; i++ {
			b.UpdateUint64(i)
		}
		u := NewUnionSeeded(k, seed|1)
		_ = u.Add(a)
		_ = u.Add(b)
		x := NewIntersectionSeeded(seed | 1)
		_ = x.Add(a)
		_ = x.Add(b)
		lhs := u.Result().Estimate() + x.Result().Estimate()
		rhs := a.Estimate() + b.Estimate()
		return math.Abs(lhs-rhs)/rhs < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnotBPartition(t *testing.T) {
	// |A\B| + |A∩B| ≈ |A|.
	f := func(seed uint64) bool {
		k := 2048
		a := NewQuickSelectSeeded(k, seed|1)
		b := NewQuickSelectSeeded(k, seed|1)
		for i := uint64(0); i < 50000; i++ {
			a.UpdateUint64(i)
		}
		for i := uint64(25000); i < 75000; i++ {
			b.UpdateUint64(i)
		}
		diff, err := AnotB(a, b)
		if err != nil {
			return false
		}
		x := NewIntersectionSeeded(seed | 1)
		_ = x.Add(a)
		_ = x.Add(b)
		lhs := diff.Estimate() + x.Result().Estimate()
		return math.Abs(lhs-a.Estimate())/a.Estimate() < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertySerdeRoundTripAnySketch(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw) % 200000
		s := NewQuickSelectSeeded(64, seed|1)
		for i := uint64(0); i < n; i++ {
			s.UpdateUint64(i)
		}
		c := s.Compact()
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := UnmarshalCompact(data)
		if err != nil {
			return false
		}
		return back.Estimate() == c.Estimate() &&
			back.Theta() == c.Theta() &&
			back.Retained() == c.Retained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEstimateInvariantToInsertionOrder(t *testing.T) {
	// "the state of a Θ sketch after a set of updates is independent of
	// their processing order" (§6.1) — feed the same set forward and
	// backward.
	f := func(seed uint64) bool {
		k := 256
		n := uint64(30000)
		fwd := NewQuickSelectSeeded(k, seed|1)
		rev := NewQuickSelectSeeded(k, seed|1)
		for i := uint64(0); i < n; i++ {
			fwd.UpdateUint64(i)
			rev.UpdateUint64(n - 1 - i)
		}
		// Retained sets may differ transiently (rebuild points), but
		// KMV retains exactly the k smallest — check via KMV.
		fk := NewKMVSeeded(k, seed|1)
		rk := NewKMVSeeded(k, seed|1)
		for i := uint64(0); i < n; i++ {
			fk.UpdateUint64(i)
			rk.UpdateUint64(n - 1 - i)
		}
		if fk.Estimate() != rk.Estimate() || fk.Theta() != rk.Theta() {
			return false
		}
		// QuickSelect estimates agree within RSE tolerance.
		return math.Abs(fwd.Estimate()-rev.Estimate())/float64(n) < 4/math.Sqrt(float64(k-2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionUpperBoundsInputs(t *testing.T) {
	// A union summarises a superset of each input, so its estimate
	// should not be far below either input's.
	f := func(seed uint64) bool {
		k := 1024
		a := NewQuickSelectSeeded(k, seed|1)
		b := NewQuickSelectSeeded(k, seed|1)
		for i := uint64(0); i < 40000; i++ {
			a.UpdateUint64(i)
			b.UpdateUint64(i + 20000)
		}
		u := NewUnionSeeded(k, seed|1)
		_ = u.Add(a)
		_ = u.Add(b)
		ue := u.Result().Estimate()
		return ue > a.Estimate()*0.85 && ue > b.Estimate()*0.85
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
