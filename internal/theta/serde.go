package theta

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/fcds/fcds/internal/hash"
)

// Binary format (little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCTH"
//	4       1     format version (1)
//	5       1     flags (bit 0: empty)
//	6       2     reserved (0)
//	8       8     hash seed
//	16      8     theta
//	24      4     retained count
//	28      4     reserved (0)
//	32      8*n   retained hashes, ascending
const (
	serdeMagic   = "FCTH"
	serdeVersion = 1
	headerSize   = 32

	flagEmpty = 1 << 0
)

// Serialization errors.
var (
	ErrBadMagic    = errors.New("theta: bad magic bytes")
	ErrBadVersion  = errors.New("theta: unsupported format version")
	ErrCorrupt     = errors.New("theta: corrupt sketch bytes")
	ErrUnsorted    = errors.New("theta: retained hashes not strictly ascending")
	ErrAboveTheta  = errors.New("theta: retained hash not below theta")
	ErrZeroHash    = errors.New("theta: zero retained hash")
	ErrThetaRange  = errors.New("theta: threshold out of range")
	ErrCountBounds = errors.New("theta: retained count out of bounds")
)

// MarshalBinary serializes the compact sketch.
func (c *Compact) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerSize+8*len(c.hashes))
	copy(buf[0:4], serdeMagic)
	buf[4] = serdeVersion
	if len(c.hashes) == 0 {
		buf[5] = flagEmpty
	}
	binary.LittleEndian.PutUint64(buf[8:16], c.seed)
	binary.LittleEndian.PutUint64(buf[16:24], c.theta)
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(c.hashes)))
	for i, h := range c.hashes {
		binary.LittleEndian.PutUint64(buf[headerSize+8*i:], h)
	}
	return buf, nil
}

// UnmarshalCompact parses a compact sketch serialized by MarshalBinary,
// validating every structural invariant so corrupt input cannot
// produce a sketch that later panics or estimates garbage.
func UnmarshalCompact(data []byte) (*Compact, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != serdeMagic {
		return nil, ErrBadMagic
	}
	if data[4] != serdeVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	seed := binary.LittleEndian.Uint64(data[8:16])
	theta := binary.LittleEndian.Uint64(data[16:24])
	count := int(binary.LittleEndian.Uint32(data[24:28]))
	if theta == 0 || theta > hash.MaxThetaValue {
		return nil, ErrThetaRange
	}
	if count < 0 || len(data) != headerSize+8*count {
		return nil, ErrCountBounds
	}
	if data[5]&flagEmpty != 0 && count != 0 {
		return nil, fmt.Errorf("%w: empty flag with %d hashes", ErrCorrupt, count)
	}
	hashes := make([]uint64, count)
	var prev uint64
	for i := 0; i < count; i++ {
		h := binary.LittleEndian.Uint64(data[headerSize+8*i:])
		if h == 0 {
			return nil, ErrZeroHash
		}
		if h >= theta {
			return nil, ErrAboveTheta
		}
		if i > 0 && h <= prev {
			return nil, ErrUnsorted
		}
		hashes[i] = h
		prev = h
	}
	return &Compact{hashes: hashes, theta: theta, seed: seed}, nil
}
