package theta

import (
	"math"
	"testing"

	"github.com/fcds/fcds/internal/hash"
)

func TestKMVExactBelowK(t *testing.T) {
	// Below k unique items the sketch answers exactly (§5.3).
	s := NewKMV(64)
	for i := uint64(0); i < 63; i++ {
		s.UpdateUint64(i)
	}
	if got := s.Estimate(); got != 63 {
		t.Errorf("estimate = %v, want exactly 63", got)
	}
	if s.IsEstimationMode() {
		t.Error("sketch entered estimation mode below k uniques")
	}
	if s.Theta() != hash.MaxThetaValue {
		t.Errorf("theta = %d, want 1.0", s.Theta())
	}
}

func TestKMVDuplicatesIgnored(t *testing.T) {
	s := NewKMV(64)
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 40; i++ {
			s.UpdateUint64(i)
		}
	}
	if got := s.Estimate(); got != 40 {
		t.Errorf("estimate with duplicates = %v, want 40", got)
	}
	if got := s.Retained(); got != 40 {
		t.Errorf("retained = %d, want 40", got)
	}
}

func TestKMVEntersEstimationModeAtK(t *testing.T) {
	k := 32
	s := NewKMV(k)
	for i := uint64(0); uint64(s.Retained()) < uint64(k); i++ {
		s.UpdateUint64(i)
	}
	if !s.IsEstimationMode() {
		t.Fatal("sketch not in estimation mode with k retained samples")
	}
	if s.Theta() >= hash.MaxThetaValue {
		t.Fatal("theta not lowered after k samples")
	}
}

func TestKMVThetaIsMaxSample(t *testing.T) {
	s := NewKMV(16)
	for i := uint64(0); i < 1000; i++ {
		s.UpdateUint64(i)
	}
	var maxHash uint64
	s.ForEachHash(func(h uint64) {
		if h > maxHash {
			maxHash = h
		}
	})
	if s.Theta() != maxHash {
		t.Errorf("theta = %d, max retained = %d; Algorithm 1 requires Θ = max(sampleSet)", s.Theta(), maxHash)
	}
}

func TestKMVThetaMonotonicallyDecreasing(t *testing.T) {
	// The pre-filter safety argument (§5.1) relies on Θ only decreasing.
	s := NewKMV(32)
	prev := s.Theta()
	for i := uint64(0); i < 5000; i++ {
		s.UpdateUint64(i)
		if th := s.Theta(); th > prev {
			t.Fatalf("theta increased from %d to %d at update %d", prev, th, i)
		} else {
			prev = th
		}
	}
}

func TestKMVRetainedNeverExceedsK(t *testing.T) {
	k := 32
	s := NewKMV(k)
	for i := uint64(0); i < 10000; i++ {
		s.UpdateUint64(i)
		if s.Retained() > k {
			t.Fatalf("retained %d > k=%d", s.Retained(), k)
		}
	}
}

func TestKMVAccuracy(t *testing.T) {
	// RSE of the KMV estimator is < 1/sqrt(k-2) (Bar-Yossef et al.);
	// with k=1024 and n=100k a single run should be well within 5 RSE.
	k, n := 1024, 100000
	s := NewKMV(k)
	for i := 0; i < n; i++ {
		s.UpdateUint64(uint64(i))
	}
	est := s.Estimate()
	rse := 1 / math.Sqrt(float64(k-2))
	if re := math.Abs(est-float64(n)) / float64(n); re > 5*rse {
		t.Errorf("relative error %.4f exceeds 5·RSE = %.4f (est=%v)", re, 5*rse, est)
	}
}

func TestKMVUnbiasedAcrossTrials(t *testing.T) {
	// Mean estimate over independent hash seeds must approach n
	// (E[(k-1)/M(k)] = n). 200 trials at k=256 give a standard error of
	// the mean ≈ n·RSE/sqrt(200) ≈ 0.44% of n; assert within 3 of those.
	k, n, trials := 256, 20000, 200
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewKMVSeeded(k, uint64(tr)*7919+1)
		for i := 0; i < n; i++ {
			s.UpdateUint64(uint64(i))
		}
		sum += s.Estimate()
	}
	mean := sum / float64(trials)
	sem := float64(n) / math.Sqrt(float64(k-2)) / math.Sqrt(float64(trials))
	if math.Abs(mean-float64(n)) > 3*sem {
		t.Errorf("mean estimate %v deviates from n=%d by more than 3 SEM (%v)", mean, n, 3*sem)
	}
}

func TestKMVMergeEquivalentToConcatenation(t *testing.T) {
	// Mergeability (§3): sketch(A||B) == merge(sketch(A), sketch(B))
	// under the same hash function.
	k := 128
	whole := NewKMV(k)
	a := NewKMV(k)
	b := NewKMV(k)
	for i := uint64(0); i < 5000; i++ {
		whole.UpdateUint64(i)
		if i < 2500 {
			a.UpdateUint64(i)
		} else {
			b.UpdateUint64(i)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Errorf("merged estimate %v != whole-stream estimate %v", a.Estimate(), whole.Estimate())
	}
	if a.Theta() != whole.Theta() {
		t.Errorf("merged theta %d != whole-stream theta %d", a.Theta(), whole.Theta())
	}
}

func TestKMVMergeSeedMismatch(t *testing.T) {
	a := NewKMVSeeded(64, 1)
	b := NewKMVSeeded(64, 2)
	if err := a.Merge(b); err != ErrSeedMismatch {
		t.Errorf("merge with mismatched seeds: err = %v, want ErrSeedMismatch", err)
	}
}

func TestKMVReset(t *testing.T) {
	s := NewKMV(32)
	for i := uint64(0); i < 1000; i++ {
		s.UpdateUint64(i)
	}
	s.Reset()
	if s.Retained() != 0 || s.IsEstimationMode() || s.Estimate() != 0 {
		t.Errorf("after Reset: retained=%d estMode=%v est=%v", s.Retained(), s.IsEstimationMode(), s.Estimate())
	}
	s.UpdateUint64(1)
	if s.Estimate() != 1 {
		t.Errorf("reset sketch unusable: est=%v", s.Estimate())
	}
}

func TestKMVCompactMatches(t *testing.T) {
	s := NewKMV(64)
	for i := uint64(0); i < 3000; i++ {
		s.UpdateUint64(i)
	}
	c := s.Compact()
	if c.Estimate() == 0 || c.Theta() != s.Theta() || c.Retained() != s.Retained() {
		t.Errorf("compact mismatch: est=%v theta=%d retained=%d", c.Estimate(), c.Theta(), c.Retained())
	}
	// KMV estimate is (k-1)/θ; compact uses retained/θ. With retained=k
	// these differ by 1/θ — allow that gap but no more.
	if diff := math.Abs(c.Estimate() - s.Estimate()); diff > 1/hash.FractionOf(s.Theta())+1e-9 {
		t.Errorf("compact estimate %v too far from KMV estimate %v", c.Estimate(), s.Estimate())
	}
}

func TestKMVPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKMV(1) did not panic")
		}
	}()
	NewKMV(1)
}

func TestKMVStringAndBytesUpdatesAgree(t *testing.T) {
	a, b := NewKMV(64), NewKMV(64)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, w := range words {
		a.UpdateString(w)
		b.Update([]byte(w))
	}
	if a.Estimate() != b.Estimate() || a.Theta() != b.Theta() {
		t.Error("string and []byte update paths disagree")
	}
}

func BenchmarkKMVUpdate(b *testing.B) {
	s := NewKMV(4096)
	for i := 0; i < b.N; i++ {
		s.UpdateUint64(uint64(i))
	}
}
