package theta

import "math/bits"

// hashTable is an insert-only open-addressing set of nonzero Θ-space
// hashes. Zero marks an empty slot (Θ hashes are never zero). Probing
// is double-hash style: the stride is derived from the high bits of the
// key and forced odd, so it is co-prime with the power-of-two capacity
// and visits every slot.
type hashTable struct {
	slots []uint64
	mask  uint64
	count int
}

// newHashTable returns a table with at least capacity slots (rounded up
// to a power of two). Callers must keep the load factor below 1 by
// rebuilding; insert panics on a full table to make violations loud.
func newHashTable(capacity int) *hashTable {
	if capacity < 2 {
		capacity = 2
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &hashTable{slots: make([]uint64, n), mask: uint64(n - 1)}
}

// insert adds h to the set. It reports whether h was newly inserted
// (false means it was already present).
func (t *hashTable) insert(h uint64) bool {
	i := h & t.mask
	stride := ((h >> 32) | 1) & t.mask
	for probes := 0; probes <= len(t.slots); probes++ {
		v := t.slots[i]
		if v == 0 {
			t.slots[i] = h
			t.count++
			return true
		}
		if v == h {
			return false
		}
		i = (i + stride) & t.mask
	}
	panic("theta: hash table full; rebuild threshold violated")
}

// contains reports whether h is in the set.
func (t *hashTable) contains(h uint64) bool {
	i := h & t.mask
	stride := ((h >> 32) | 1) & t.mask
	for probes := 0; probes <= len(t.slots); probes++ {
		v := t.slots[i]
		if v == 0 {
			return false
		}
		if v == h {
			return true
		}
		i = (i + stride) & t.mask
	}
	return false
}

// appendAll appends every stored hash to dst and returns it.
func (t *hashTable) appendAll(dst []uint64) []uint64 {
	for _, v := range t.slots {
		if v != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// reset clears the table in place.
func (t *hashTable) reset() {
	clear(t.slots)
	t.count = 0
}
