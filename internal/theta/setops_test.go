package theta

import (
	"math"
	"testing"
)

func fill(s *QuickSelect, lo, hi uint64) {
	for i := lo; i < hi; i++ {
		s.UpdateUint64(i)
	}
}

func TestUnionDisjoint(t *testing.T) {
	k := 512
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 50000)
	fill(b, 50000, 100000)
	u := NewUnion(k)
	if err := u.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := u.Add(b); err != nil {
		t.Fatal(err)
	}
	est := u.Result().Estimate()
	if re := math.Abs(est-100000) / 100000; re > 0.15 {
		t.Errorf("union estimate %v for 100k disjoint uniques (re=%v)", est, re)
	}
}

func TestUnionOverlapping(t *testing.T) {
	k := 512
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 60000)
	fill(b, 30000, 90000) // union is 90k
	u := NewUnion(k)
	_ = u.Add(a)
	_ = u.Add(b)
	est := u.Result().Estimate()
	if re := math.Abs(est-90000) / 90000; re > 0.15 {
		t.Errorf("union estimate %v for 90k uniques (re=%v)", est, re)
	}
}

func TestUnionExactSmall(t *testing.T) {
	k := 256
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 50)
	fill(b, 25, 75)
	u := NewUnion(k)
	_ = u.Add(a)
	_ = u.Add(b)
	if est := u.Result().Estimate(); est != 75 {
		t.Errorf("exact union estimate = %v, want 75", est)
	}
}

func TestUnionResultRespectsK(t *testing.T) {
	k := 64
	u := NewUnion(k)
	a := NewQuickSelect(1024)
	fill(a, 0, 100000)
	_ = u.Add(a)
	res := u.Result()
	if res.Retained() > k {
		t.Errorf("union result retains %d > k=%d", res.Retained(), k)
	}
	res.ForEachHash(func(h uint64) {
		if h >= res.Theta() {
			t.Fatal("union result hash >= theta")
		}
	})
}

func TestUnionSeedMismatch(t *testing.T) {
	u := NewUnionSeeded(64, 1)
	s := NewQuickSelectSeeded(64, 2)
	if err := u.Add(s); err != ErrSeedMismatch {
		t.Errorf("err = %v, want ErrSeedMismatch", err)
	}
}

func TestUnionStreaming(t *testing.T) {
	// AddHash lets the union act as a sketch itself.
	u := NewUnion(256)
	s := NewQuickSelect(256)
	for i := uint64(0); i < 100; i++ {
		s.UpdateUint64(i)
	}
	s.ForEachHash(u.AddHash)
	if est := u.Result().Estimate(); est != 100 {
		t.Errorf("streamed union estimate = %v, want 100", est)
	}
}

func TestUnionReset(t *testing.T) {
	u := NewUnion(64)
	a := NewQuickSelect(64)
	fill(a, 0, 100)
	_ = u.Add(a)
	u.Reset()
	if est := u.Result().Estimate(); est != 0 {
		t.Errorf("estimate after reset = %v, want 0", est)
	}
}

func TestIntersectionExact(t *testing.T) {
	k := 256
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 60)
	fill(b, 40, 100) // intersection 40..59 = 20 items
	x := NewIntersection()
	_ = x.Add(a)
	_ = x.Add(b)
	if est := x.Result().Estimate(); est != 20 {
		t.Errorf("intersection estimate = %v, want 20", est)
	}
}

func TestIntersectionEstimation(t *testing.T) {
	k := 1024
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 80000)
	fill(b, 40000, 120000) // intersection 40k
	x := NewIntersection()
	_ = x.Add(a)
	_ = x.Add(b)
	est := x.Result().Estimate()
	if re := math.Abs(est-40000) / 40000; re > 0.25 {
		t.Errorf("intersection estimate %v for 40k overlap (re=%v)", est, re)
	}
}

func TestIntersectionDisjointIsZero(t *testing.T) {
	k := 256
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 10000)
	fill(b, 1000000, 1010000)
	x := NewIntersection()
	_ = x.Add(a)
	_ = x.Add(b)
	// Disjoint streams: estimate should be very small relative to input.
	if est := x.Result().Estimate(); est > 500 {
		t.Errorf("disjoint intersection estimate = %v, want ~0", est)
	}
}

func TestIntersectionEmptyState(t *testing.T) {
	x := NewIntersection()
	res := x.Result()
	if res.Estimate() != 0 || res.Retained() != 0 {
		t.Error("intersection of nothing should be the empty sketch")
	}
}

func TestIntersectionSeedMismatch(t *testing.T) {
	x := NewIntersectionSeeded(1)
	s := NewQuickSelectSeeded(64, 2)
	if err := x.Add(s); err != ErrSeedMismatch {
		t.Errorf("err = %v, want ErrSeedMismatch", err)
	}
}

func TestAnotBExact(t *testing.T) {
	k := 256
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 100)
	fill(b, 50, 200) // A\B = 0..49
	res, err := AnotB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est := res.Estimate(); est != 50 {
		t.Errorf("AnotB estimate = %v, want 50", est)
	}
}

func TestAnotBEstimation(t *testing.T) {
	k := 1024
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 100000)
	fill(b, 60000, 160000) // A\B = 60k
	res, err := AnotB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate()-60000) / 60000; re > 0.25 {
		t.Errorf("AnotB estimate %v for 60k difference (re=%v)", res.Estimate(), re)
	}
}

func TestAnotBWithSelfIsEmpty(t *testing.T) {
	a := NewQuickSelect(256)
	fill(a, 0, 5000)
	res, err := AnotB(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate() != 0 {
		t.Errorf("A\\A estimate = %v, want 0", res.Estimate())
	}
}

func TestAnotBSeedMismatch(t *testing.T) {
	a := NewQuickSelectSeeded(64, 1)
	b := NewQuickSelectSeeded(64, 2)
	if _, err := AnotB(a, b); err != ErrSeedMismatch {
		t.Errorf("err = %v, want ErrSeedMismatch", err)
	}
}

func TestJaccardEstimate(t *testing.T) {
	k := 2048
	a, b := NewQuickSelect(k), NewQuickSelect(k)
	fill(a, 0, 60000)
	fill(b, 30000, 90000)
	// |A∩B| = 30k, |A∪B| = 90k → J = 1/3.
	j, err := JaccardEstimate(a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-1.0/3) > 0.1 {
		t.Errorf("Jaccard estimate %v, want ~0.333", j)
	}
}

func TestJaccardIdentical(t *testing.T) {
	a := NewQuickSelect(256)
	fill(a, 0, 10000)
	j, err := JaccardEstimate(a, a, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Union trims to k samples while intersection keeps up to ~2k, so
	// the two estimates differ by independent sampling noise even for
	// identical inputs; expect J within a few RSE of 1.
	if math.Abs(j-1) > 0.05 {
		t.Errorf("Jaccard of identical sketches = %v, want ~1", j)
	}
}

func TestJaccardEmpty(t *testing.T) {
	a, b := NewQuickSelect(64), NewQuickSelect(64)
	j, err := JaccardEstimate(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Errorf("Jaccard of empty sketches = %v, want 0", j)
	}
}
