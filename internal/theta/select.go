package theta

// selectKth returns the k-th smallest value of a (k is 1-based) and
// partially reorders a so that a[k-1] holds that value with smaller
// values to its left. It is Hoare's quickselect with median-of-three
// pivoting — O(n) expected, no allocation — which is what makes the
// QuickSelect sketch's periodic rebuild cheap.
func selectKth(a []uint64, k int) uint64 {
	if k < 1 || k > len(a) {
		panic("theta: selectKth index out of range")
	}
	lo, hi := 0, len(a)-1
	target := k - 1
	for lo < hi {
		// Median-of-three pivot to dodge adversarial orderings.
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]

		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if a[i] >= pivot {
					break
				}
			}
			for {
				j--
				if a[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		if target <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return a[target]
}
