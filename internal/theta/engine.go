package theta

import (
	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
)

// Engine binds a concurrent-Θ configuration into the generic
// core.Engine interface: the one description of the Θ lifecycle that
// keyed tables and windowed sketches instantiate per key / per epoch.
// Value type is the raw uint64 item, snapshot type the unique-count
// estimate, compact type the immutable *Compact.
type Engine struct {
	cfg ConcurrentConfig
}

var _ core.Engine[uint64, float64, *Compact] = (*Engine)(nil)

// NewEngine returns a Θ engine for the given configuration (zero fields
// take the ConcurrentConfig defaults). The Pool field is ignored: the
// executor is chosen per sketch by NewSketch.
func NewEngine(cfg ConcurrentConfig) *Engine {
	cfg.Pool = nil
	return &Engine{cfg: cfg.withDefaults()}
}

// Kind implements core.CompactCodec.
func (e *Engine) Kind() byte { return core.KindTheta }

// Param implements core.CompactCodec: the nominal entry count k.
func (e *Engine) Param() uint32 { return uint32(e.cfg.K) }

// Seed returns the engine's shared hash seed.
func (e *Engine) Seed() uint64 { return e.cfg.Seed }

// HashString maps a string item to its Θ-space hash (zero-alloc); used
// by keyed string-batch ingestion to hash in the grouping pass.
func (e *Engine) HashString(s string) uint64 { return hash.ThetaHashString(s, e.cfg.Seed) }

// NumWriters implements core.Engine.
func (e *Engine) NumWriters() int { return e.cfg.Writers }

// Relaxation implements core.Engine: r = 2·N·b per sketch.
func (e *Engine) Relaxation() int { return 2 * e.cfg.Writers * e.cfg.BufferSize }

// NewSketch implements core.Engine.
func (e *Engine) NewSketch(pool *core.PropagatorPool) core.EngineSketch[uint64, float64, *Compact] {
	return e.NewSketchAffine(pool, 0)
}

// NewSketchAffine implements core.Engine: NewSketch pinned to the pool
// worker the affinity key maps to.
func (e *Engine) NewSketchAffine(pool *core.PropagatorPool, affinityKey uint64) core.EngineSketch[uint64, float64, *Compact] {
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    e.newConcurrent(pool, affinityKey),
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

func (e *Engine) newConcurrent(pool *core.PropagatorPool, affinityKey uint64) *Concurrent {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	return NewConcurrent(cfg)
}

// NewSketchSeeded implements core.ScalableEngine: the new sketch's
// global starts from the compact — sample set and Θ — so a promoted
// hot key keeps its history and its pre-filtering strength. A compact
// with a foreign seed (impossible within one engine family) falls back
// to an empty sketch.
func (e *Engine) NewSketchSeeded(pool *core.PropagatorPool, affinityKey uint64, from *Compact) core.EngineSketch[uint64, float64, *Compact] {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	c, err := NewConcurrentFrom(cfg, from)
	if err != nil {
		c = NewConcurrent(cfg)
	}
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    c,
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

// carryHintHeadroom loosens a carried Θ hint by this factor. A hint
// seeds a fresh sketch with an empty sample set and a fixed threshold
// θ₀, making it a fixed-threshold KMV estimator (count/θ₀ — unbiased
// at any θ₀ < 1, tested by the window carry error-bound test), but its
// variance degrades if the new stream is much smaller than the one
// that earned θ₀: at an epoch-over-epoch cardinality drop of d, only
// ~k/d items survive the carried filter. Loosening by 8 tolerates an
// 8× drop at full accuracy while still discarding ~everything the
// previous filter would have, so the new epoch skips most of its
// re-pay; if the stream really shrank further, the sketch simply keeps
// more than k samples until its own Θ catches up — accuracy is never
// worse than the hintless sketch, only memory transiently is.
const carryHintHeadroom = 8

// HintCompact implements the optional core.HintedEngine capability:
// a data-free compact carrying only the source's Θ pre-filter,
// loosened by carryHintHeadroom. ok=false when the source is still in
// exact mode (θ = 1: no filter strength to carry) or so lightly
// filtered that loosening would round it back to exact mode.
func (e *Engine) HintCompact(from *Compact) (*Compact, bool) {
	t := from.Theta()
	if t >= hash.MaxThetaValue/carryHintHeadroom {
		return nil, false
	}
	return newCompactFromUnsorted(nil, t*carryHintHeadroom, from.Seed()), true
}

// maxScaledBuffer caps hot-key buffer growth: past this, handoffs are
// no longer the bottleneck and r = 2·N·b staleness keeps doubling for
// nothing.
const maxScaledBuffer = 1 << 10

// ScaleUp implements core.ScalableEngine: doubles the local buffer b —
// handoffs (and the writer's propagation round-trip waits) halve,
// while the per-sketch relaxation r = 2·N·b doubles — and disables the
// eager phase: a key only reaches a promotion after a volume threshold
// of updates, far past the small-stream regime the eager phase exists
// for, and rebuilding into a fresh eager phase would re-serialise its
// writers for no accuracy gain. k is left unchanged: growing it would
// weaken the Θ pre-filter (admitting ~2× buffered updates per
// doubling), cancelling the handoff win — accuracy-directed scaling
// belongs to an explicit larger-K table config, not the hot-key path.
func (e *Engine) ScaleUp() (core.Engine[uint64, float64, *Compact], bool) {
	cfg := e.cfg
	if cfg.BufferSize >= maxScaledBuffer {
		return nil, false
	}
	cfg.BufferSize *= 2
	cfg.EagerLimit = -1
	return NewEngine(cfg), true
}

// NewAggregator implements core.Engine: a Union accumulator.
func (e *Engine) NewAggregator() core.Aggregator[*Compact] {
	return &unionAggregator{u: NewUnionSeeded(e.cfg.K, e.cfg.Seed)}
}

// QueryCompact implements core.Engine.
func (e *Engine) QueryCompact(c *Compact) float64 { return c.Estimate() }

// MergeCompact implements core.CompactCodec via a two-sketch union.
func (e *Engine) MergeCompact(a, b *Compact) (*Compact, error) {
	u := NewUnionSeeded(e.cfg.K, a.Seed())
	if err := u.Add(a); err != nil {
		return nil, err
	}
	if err := u.Add(b); err != nil {
		return nil, err
	}
	return u.Result(), nil
}

// MarshalCompact implements core.CompactCodec.
func (e *Engine) MarshalCompact(c *Compact) ([]byte, error) { return c.MarshalBinary() }

// UnmarshalCompact implements core.CompactCodec.
func (e *Engine) UnmarshalCompact(data []byte) (*Compact, error) { return UnmarshalCompact(data) }

// unionAggregator adapts Union to core.Aggregator.
type unionAggregator struct{ u *Union }

func (a *unionAggregator) Add(c *Compact) error { return a.u.Add(c) }
func (a *unionAggregator) Result() *Compact     { return a.u.Result() }

// engineSketch adapts one Concurrent to core.EngineSketch. Writer
// handles are created lazily per slot: slot i is only touched by the
// composite's writer i, or by an owner holding exclusive access.
type engineSketch struct {
	eng  *Engine
	pool *core.PropagatorPool
	aff  uint64
	c    *Concurrent
	ws   []*ConcurrentWriter
}

func (s *engineSketch) writer(i int) *ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *engineSketch) Update(i int, v uint64)               { s.writer(i).UpdateUint64(v) }
func (s *engineSketch) UpdateBatch(i int, vals []uint64)     { s.writer(i).UpdateUint64Batch(vals) }
func (s *engineSketch) UpdateHashedBatch(i int, hs []uint64) { s.writer(i).UpdateHashBatch(hs) }
func (s *engineSketch) Flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *engineSketch) Query() float64    { return s.c.Estimate() }
func (s *engineSketch) Compact() *Compact { return s.c.Compact() }

// Close drops the concurrent sketch after closing it: writer entry
// caches may keep a reference to an evicted table entry (and through
// it, this adapter) until the slot is overwritten, and releasing the
// sketch graph here bounds that retention to the adapter stub. Any
// use after Close is a contract violation and now fails loudly.
func (s *engineSketch) Close() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
		s.ws = nil
	}
}

// Reset implements core.EngineSketch: equivalent to Close followed by a
// fresh sketch on the same executor. The caller must hold the same
// exclusivity as for Close.
func (s *engineSketch) Reset() {
	s.c.Close()
	s.c = s.eng.newConcurrent(s.pool, s.aff)
	clear(s.ws)
}

// ResetSeeded implements core.ReseedableSketch: Reset, but the fresh
// sketch starts from the compact (for a HintCompact result: empty
// sample set, carried Θ as every writer's initial pre-filter hint).
// Same exclusivity contract as Reset; an incompatible compact falls
// back to the empty sketch, like NewSketchSeeded.
func (s *engineSketch) ResetSeeded(from *Compact) {
	s.c.Close()
	cfg := s.eng.cfg
	cfg.Pool = s.pool
	cfg.AffinityKey = s.aff
	c, err := NewConcurrentFrom(cfg, from)
	if err != nil {
		c = NewConcurrent(cfg)
	}
	s.c = c
	clear(s.ws)
}
