package theta

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"github.com/fcds/fcds/internal/stream"
)

// TestBatchMatchesItemIngestion checks that with a single writer the
// batch path produces exactly the per-item path's estimate: the
// sequence of hashes accepted by the global sketch is identical, so
// rebuilds trigger at the same points and Θ trajectories coincide.
func TestBatchMatchesItemIngestion(t *testing.T) {
	const n = 60000
	run := func(batch int) float64 {
		c := NewConcurrent(ConcurrentConfig{K: 256, Writers: 1, MaxError: 0.04})
		defer c.Close()
		w := c.Writer(0)
		if batch == 0 {
			for v := uint64(0); v < n; v++ {
				w.UpdateUint64(v)
			}
		} else {
			buf := make([]uint64, 0, batch)
			for v := uint64(0); v < n; v++ {
				buf = append(buf, v)
				if len(buf) == batch {
					w.UpdateUint64Batch(buf)
					buf = buf[:0]
				}
			}
			w.UpdateUint64Batch(buf)
		}
		w.Flush()
		return c.Estimate()
	}
	want := run(0)
	for _, batch := range []int{1, 7, 64, 1000} {
		if got := run(batch); got != want {
			t.Errorf("batch=%d: estimate %.2f != per-item estimate %.2f", batch, got, want)
		}
	}
}

// TestBatchStringAndBytesAgree checks all three batch input kinds hash
// to the same sketch state.
func TestBatchStringAndBytesAgree(t *testing.T) {
	const n = 5000
	ss := make([]string, n)
	bs := make([][]byte, n)
	for i := range ss {
		ss[i] = fmt.Sprintf("item-%06d", i)
		bs[i] = []byte(ss[i])
	}
	est := func(fill func(w *ConcurrentWriter)) float64 {
		c := NewConcurrent(ConcurrentConfig{K: 1024, Writers: 1, MaxError: 1, EagerLimit: -1})
		defer c.Close()
		w := c.Writer(0)
		fill(w)
		w.Flush()
		return c.Estimate()
	}
	fromStrings := est(func(w *ConcurrentWriter) { w.UpdateStringBatch(ss) })
	fromBytes := est(func(w *ConcurrentWriter) { w.UpdateBatch(bs) })
	if fromStrings != fromBytes {
		t.Errorf("string batch estimate %.2f != bytes batch estimate %.2f", fromStrings, fromBytes)
	}
	if re := math.Abs(fromStrings-n) / n; re > 0.15 {
		t.Errorf("estimate %.2f is %.1f%% off %d uniques", fromStrings, 100*re, n)
	}
}

// TestBatchConcurrentWithQueries exercises UpdateBatch from N writer
// goroutines against continuous concurrent queries — the race-detector
// test the batch handoff path must survive.
func TestBatchConcurrentWithQueries(t *testing.T) {
	const writers, n, chunk = 4, 1 << 16, 512
	c := NewConcurrent(ConcurrentConfig{K: 4096, Writers: writers, MaxError: 0.04})
	defer c.Close()

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			last := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e := c.Estimate(); e < last {
					// Estimates may wobble with Θ refinement, but must
					// never go negative or NaN.
					_ = e
				} else {
					last = e
				}
				if math.IsNaN(last) || last < 0 {
					t.Error("query returned invalid estimate")
					return
				}
				runtime.Gosched() // don't starve writers on small machines
			}
		}()
	}

	parts := stream.Partition(n, writers)
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			buf := make([]uint64, 0, chunk)
			for v := p.Start; v < p.Start+p.Count; v++ {
				buf = append(buf, v)
				if len(buf) == chunk {
					w.UpdateUint64Batch(buf)
					buf = buf[:0]
				}
			}
			w.UpdateUint64Batch(buf)
			w.Flush()
		}(i, p)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	if re := math.Abs(c.Estimate()-n) / n; re > 0.10 {
		t.Errorf("estimate %.2f is %.1f%% off %d uniques", c.Estimate(), 100*re, n)
	}
}

// TestUpdateStringBatchZeroAllocs pins the string batch hot path at
// zero allocations per op: the hash views string bytes in place and
// the scratch + local buffers are reused. Sized so the measured runs
// never hand off (propagator-side merges are measured globally by
// AllocsPerRun and would pollute the count).
func TestUpdateStringBatchZeroAllocs(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 4096, Writers: 1, MaxError: 1, BufferSize: 1 << 14, EagerLimit: -1,
	})
	defer c.Close()
	w := c.Writer(0)
	ss := make([]string, 64)
	for i := range ss {
		// Mix short and long (>64 byte) strings to cover both the tail
		// and multi-block murmur paths.
		ss[i] = fmt.Sprintf("user-%03d-%0*d", i, (i%9)*12+1, i)
	}
	if avg := testing.AllocsPerRun(100, func() { w.UpdateStringBatch(ss) }); avg != 0 {
		t.Errorf("UpdateStringBatch allocates %.1f allocs/op, want 0", avg)
	}
}

// TestUpdateUint64BatchZeroAllocs pins the numeric batch path at zero
// allocations per op as well.
func TestUpdateUint64BatchZeroAllocs(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 4096, Writers: 1, MaxError: 1, BufferSize: 1 << 14, EagerLimit: -1,
	})
	defer c.Close()
	w := c.Writer(0)
	vs := make([]uint64, 64)
	for i := range vs {
		vs[i] = uint64(i)
	}
	if avg := testing.AllocsPerRun(100, func() { w.UpdateUint64Batch(vs) }); avg != 0 {
		t.Errorf("UpdateUint64Batch allocates %.1f allocs/op, want 0", avg)
	}
}
