package theta

import (
	"github.com/fcds/fcds/internal/hash"
)

// rebuildFraction controls when the QuickSelect sketch rebuilds: at
// count = rebuildFraction × 2k the table is compacted back to k
// entries. 15/16 matches DataSketches' REBUILD_THRESHOLD, keeping the
// open-addressing load factor below 1/2 (table has 4k slots).
const (
	rebuildNum = 15
	rebuildDen = 16
)

// QuickSelect is the HeapQuickSelectSketch-family Θ sketch used by the
// paper's evaluation (§7.1): it stores between k and ~2k hashes and,
// when full, quickselects the (k+1)-th smallest value as the new Θ,
// discarding everything above it. Updates are a hash-table insert and
// rebuilds are O(retained), so amortised update cost is O(1).
//
// The estimate is retained/Θ, exact while Θ = 1. Not safe for
// concurrent use; see ConcurrentSketch / lockbased.Locked.
type QuickSelect struct {
	k     int
	seed  uint64
	table *hashTable
	theta uint64
	// thresh is the retained count that triggers a rebuild.
	thresh int
	// scratch is reused by rebuilds to avoid per-rebuild allocation.
	scratch []uint64
}

// NewQuickSelect returns an empty QuickSelect sketch with nominal entry
// count k (a power of two >= 16, e.g. 4096) and the default seed.
func NewQuickSelect(k int) *QuickSelect {
	return NewQuickSelectSeeded(k, hash.DefaultSeed)
}

// NewQuickSelectSeeded returns an empty QuickSelect sketch with an
// explicit hash seed. The hash table starts small and doubles as the
// sketch fills (DataSketches' resize behaviour), so short streams pay
// KBs, not the full 4k-slot footprint.
func NewQuickSelectSeeded(k int, seed uint64) *QuickSelect {
	if k < 16 || k&(k-1) != 0 {
		panic("theta: QuickSelect requires k a power of two >= 16")
	}
	initial := 64
	if 4*k < initial {
		initial = 4 * k
	}
	return &QuickSelect{
		k:      k,
		seed:   seed,
		table:  newHashTable(initial),
		theta:  hash.MaxThetaValue,
		thresh: 2 * k * rebuildNum / rebuildDen,
	}
}

// maybeGrow doubles the table when its load factor reaches 1/2,
// stopping at the full 4k-slot size (at which point quickselect
// rebuilds bound the count instead).
func (s *QuickSelect) maybeGrow() {
	if len(s.table.slots) >= 4*s.k || 2*s.table.count < len(s.table.slots) {
		return
	}
	old := s.table
	s.table = newHashTable(2 * len(old.slots))
	for _, h := range old.slots {
		if h != 0 {
			s.table.insert(h)
		}
	}
}

// Update processes one stream item given as raw bytes.
func (s *QuickSelect) Update(data []byte) { s.UpdateHash(hash.ThetaHashBytes(data, s.seed)) }

// UpdateUint64 processes one uint64 stream item.
func (s *QuickSelect) UpdateUint64(v uint64) { s.UpdateHash(hash.ThetaHashUint64(v, s.seed)) }

// UpdateString processes one string stream item.
func (s *QuickSelect) UpdateString(v string) { s.UpdateHash(hash.ThetaHashString(v, s.seed)) }

// UpdateHash processes a pre-hashed item (Θ-space hash).
func (s *QuickSelect) UpdateHash(h uint64) {
	if h >= s.theta {
		return
	}
	if !s.table.insert(h) {
		return
	}
	if s.table.count >= s.thresh {
		s.rebuild()
		return
	}
	s.maybeGrow()
}

// rebuild quickselects the (k+1)-th smallest retained hash as the new
// Θ and keeps only hashes strictly below it ("the sketch is sorted and
// the largest k values are discarded", §7.1).
func (s *QuickSelect) rebuild() {
	s.scratch = s.table.appendAll(s.scratch[:0])
	pivot := selectKth(s.scratch, s.k+1)
	s.theta = pivot
	s.table.reset()
	// Retained hashes are distinct, so exactly k values lie strictly
	// below the (k+1)-th smallest.
	for _, h := range s.scratch {
		if h < pivot {
			s.table.insert(h)
		}
	}
}

// Merge folds all samples of other into s. Seeds must match.
func (s *QuickSelect) Merge(other Sketch) error {
	if other.Seed() != s.seed {
		return ErrSeedMismatch
	}
	other.ForEachHash(s.UpdateHash)
	return nil
}

// Estimate implements Sketch.
func (s *QuickSelect) Estimate() float64 { return estimateFrom(s.theta, s.table.count) }

// Theta implements Sketch.
func (s *QuickSelect) Theta() uint64 { return s.theta }

// Retained implements Sketch.
func (s *QuickSelect) Retained() int { return s.table.count }

// IsEstimationMode implements Sketch.
func (s *QuickSelect) IsEstimationMode() bool { return s.theta < hash.MaxThetaValue }

// ForEachHash implements Sketch.
func (s *QuickSelect) ForEachHash(fn func(uint64)) {
	for _, v := range s.table.slots {
		if v != 0 {
			fn(v)
		}
	}
}

// Seed implements Sketch.
func (s *QuickSelect) Seed() uint64 { return s.seed }

// K returns the nominal entry count.
func (s *QuickSelect) K() int { return s.k }

// Reset restores the sketch to the empty state, retaining its buffers.
func (s *QuickSelect) Reset() {
	s.table.reset()
	s.theta = hash.MaxThetaValue
}

// Compact returns an immutable snapshot of the sketch.
func (s *QuickSelect) Compact() *Compact {
	hashes := s.table.appendAll(make([]uint64, 0, s.table.count))
	return newCompactFromUnsorted(hashes, s.theta, s.seed)
}

// AbsorbCompact folds a compact's full state into the sketch: its
// sample set AND its Θ. Unlike Merge (which replays only the hashes),
// the resulting Θ is min(s.Θ, c.Θ), so a sketch seeded from a compact
// filters exactly as hard as the sketch the compact was taken from —
// the hot-key promotion path relies on this to rebuild without losing
// pre-filtering strength. Seeds must match.
func (s *QuickSelect) AbsorbCompact(c *Compact) error {
	if c.Seed() != s.seed {
		return ErrSeedMismatch
	}
	if t := c.Theta(); t < s.theta {
		s.theta = t
		if s.table.count > 0 {
			// Discard retained hashes invalidated by the lower Θ.
			s.scratch = s.table.appendAll(s.scratch[:0])
			s.table.reset()
			for _, h := range s.scratch {
				if h < t {
					s.table.insert(h)
				}
			}
		}
	}
	c.ForEachHash(s.UpdateHash)
	return nil
}
