package theta

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
)

// This file instantiates the paper's generic framework (package core)
// with the Θ sketch: the "Composable Θ sketch" of Algorithm 1's last
// three functions. The update type U is the Θ-space hash (writers hash
// each item exactly once), the snapshot type S is the estimate, the
// hint is Θ itself, and shouldAdd(h, a) is the hash-vs-Θ comparison —
// safe because Θ only decreases, so a filtered hash can never re-enter
// the sample set (§5.1).

// Buffer is the writer-local sketch: a plain slice of pre-filtered
// Θ-space hashes (the Java implementation's ConcurrentHeapThetaBuffer
// plays the same role). It implements core.Local[uint64].
type Buffer struct {
	hashes []uint64
}

// NewBuffer returns a buffer with the given capacity hint.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{hashes: make([]uint64, 0, capacity)}
}

// Update implements core.Local.
func (b *Buffer) Update(h uint64) { b.hashes = append(b.hashes, h) }

// UpdateSlice implements core.BatchLocal: a run of pre-filtered hashes
// lands in the buffer with a single bulk append.
func (b *Buffer) UpdateSlice(hs []uint64) { b.hashes = append(b.hashes, hs...) }

// Reset implements core.Local.
func (b *Buffer) Reset() { b.hashes = b.hashes[:0] }

// Len returns the number of buffered hashes.
func (b *Buffer) Len() int { return len(b.hashes) }

// updatable is the slice of the Θ sketch API the composable global
// needs; both KMV (Algorithm 1) and QuickSelect satisfy it.
type updatable interface {
	UpdateHash(h uint64)
	Estimate() float64
	Theta() uint64
	Compact() *Compact
}

// GlobalSketch is the composable global Θ sketch: a sequential sketch
// whose estimate is published through an atomic word after every merge,
// making snapshot() a single strongly-linearisable atomic read exactly
// as in the paper ("our Θ sketch simply accesses an atomic variable
// that holds the query result", §5.1). The underlying sketch is the
// QuickSelect family by default (what the paper's evaluation and the
// DataSketches integration use) or the literal Algorithm 1 KMV.
type GlobalSketch struct {
	qs updatable
	// mu serialises structural access to qs: the merge/eager paths
	// (already one goroutine at a time by the framework contract)
	// against Compact snapshots taken by arbitrary goroutines. Merges
	// are amortised over whole buffers, so the lock is uncontended in
	// steady state; the wait-free query path never touches it.
	mu sync.Mutex
	// est holds math.Float64bits of the current estimate.
	est atomic.Uint64
	// theta is Θ republished at every merge/eager update: the fresh
	// pre-filtering hint the batch paths read once per batch (0 means
	// "not yet published" and maps to MaxThetaValue).
	theta atomic.Uint64
	// noFilter disables hint-based pre-filtering (ablation only: it
	// forces every hash through the local buffers, §5.2 measures the
	// filtering as "instrumental for performance").
	noFilter bool
}

var _ core.Global[uint64, float64] = (*GlobalSketch)(nil)

// NewGlobal returns an empty composable global sketch with nominal
// entry count k, backed by a QuickSelect sketch.
func NewGlobal(k int, seed uint64) *GlobalSketch {
	return &GlobalSketch{qs: NewQuickSelectSeeded(k, seed)}
}

// NewGlobalKMV returns an empty composable global sketch backed by the
// paper's Algorithm 1 KMV sketch (its last three procedures are
// exactly this type's Snapshot/CalcHint/ShouldAdd).
func NewGlobalKMV(k int, seed uint64) *GlobalSketch {
	return &GlobalSketch{qs: NewKMVSeeded(k, seed)}
}

// Merge implements core.Global: folds a writer buffer into the sketch
// and republishes the estimate. Called only by the propagator.
func (g *GlobalSketch) Merge(l core.Local[uint64]) {
	buf := l.(*Buffer)
	g.mu.Lock()
	for _, h := range buf.hashes {
		g.qs.UpdateHash(h)
	}
	g.publish()
	g.mu.Unlock()
}

// UpdateDirect implements core.Global (eager phase).
func (g *GlobalSketch) UpdateDirect(h uint64) {
	g.mu.Lock()
	g.qs.UpdateHash(h)
	g.publish()
	g.mu.Unlock()
}

// AbsorbCompact preloads the global with a compact's sample set and Θ
// (see QuickSelect.AbsorbCompact). Intended for sketch construction,
// before any writer or propagator runs; the lock still guards against
// misuse. Backends without Θ-absorption (KMV) replay the hashes only.
func (g *GlobalSketch) AbsorbCompact(c *Compact) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var err error
	if ab, ok := g.qs.(interface{ AbsorbCompact(*Compact) error }); ok {
		err = ab.AbsorbCompact(c)
	} else {
		c.ForEachHash(g.qs.UpdateHash)
	}
	g.publish()
	return err
}

// Compact returns an immutable point-in-time snapshot of the full
// sample set, serialised against concurrent merges. Unlike Snapshot
// (the wait-free estimate read) it retains the hashes, so it can be
// serialized, merged and persisted.
func (g *GlobalSketch) Compact() *Compact {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.qs.Compact()
}

// Snapshot implements core.Global: the wait-free query read.
func (g *GlobalSketch) Snapshot() float64 {
	return math.Float64frombits(g.est.Load())
}

// CalcHint implements core.Global: the hint is Θ (Algorithm 1 line 24).
func (g *GlobalSketch) CalcHint() uint64 { return g.qs.Theta() }

// ShouldAdd implements core.Global (Algorithm 1 line 26): only hashes
// below the hinted Θ can affect the sketch.
func (g *GlobalSketch) ShouldAdd(hint uint64, h uint64) bool {
	return g.noFilter || h < hint
}

func (g *GlobalSketch) publish() {
	g.est.Store(math.Float64bits(g.qs.Estimate()))
	g.theta.Store(g.qs.Theta())
}

// PublishedTheta returns the last published Θ — the freshest valid
// pre-filtering hint — falling back to MaxThetaValue before the first
// publication.
func (g *GlobalSketch) PublishedTheta() uint64 {
	if t := g.theta.Load(); t != 0 {
		return t
	}
	return hash.MaxThetaValue
}

// ConcurrentConfig configures a concurrent Θ sketch. Zero fields take
// the evaluation defaults (§7.1): K=4096, Writers=1, MaxError=0.04.
type ConcurrentConfig struct {
	// K is the global sketch's nominal entry count (power of two).
	K int
	// Writers is N, the number of writer handles.
	Writers int
	// MaxError is e, the tolerated relaxation error; it sizes both the
	// local buffers (via core.BufferSizeFor) and the eager-phase limit
	// 2/e². Use 1 for the paper's "no eager" configuration.
	MaxError float64
	// BufferSize overrides the derived local buffer size b when > 0.
	BufferSize int
	// EagerLimit overrides the derived 2/e² limit: > 0 sets it
	// explicitly, < 0 disables the eager phase.
	EagerLimit int
	// DisableDoubleBuffering selects the non-optimised ParSketch
	// (ablation only).
	DisableDoubleBuffering bool
	// DisableFiltering turns off Θ-hint pre-filtering (ablation only;
	// §5.2 identifies the filtering as instrumental for performance).
	DisableFiltering bool
	// AdaptiveBuffering enables the §8 extension: once the sketch
	// enters estimation mode, local buffers grow to e·K/(2N). In
	// estimation mode each buffered sample shifts the estimate by
	// 1/Θ, i.e. a relative error of ~1/k per sample, so r_est =
	// 2·N·b_est keeps the relative relaxation error below e while
	// cutting handoff frequency by orders of magnitude.
	AdaptiveBuffering bool
	// UseKMV backs the global sketch with the paper's Algorithm 1 KMV
	// instead of the QuickSelect family (reference/ablation).
	UseKMV bool
	// Seed is the shared hash seed (default hash.DefaultSeed).
	Seed uint64
	// Pool, when non-nil, attaches the sketch to a shared propagation
	// executor instead of a dedicated propagator goroutine (keyed
	// tables attach millions of sketches to one pool).
	Pool *core.PropagatorPool
	// AffinityKey pins the sketch to one pool worker (equal nonzero
	// keys share a worker); 0 lets the pool assign round-robin.
	AffinityKey uint64
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.K == 0 {
		c.K = 4096
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	com := core.CommonConfig{Writers: c.Writers, EagerLimit: c.EagerLimit, Seed: c.Seed}.
		WithDefaults(core.EagerLimitFor(c.MaxError), hash.DefaultSeed)
	c.Writers, c.EagerLimit, c.Seed = com.Writers, com.EagerLimit, com.Seed
	if c.BufferSize == 0 {
		c.BufferSize = core.BufferSizeFor(c.K, c.MaxError, c.Writers)
	}
	return c
}

// Concurrent is the paper's concurrent Θ sketch: N writer handles, one
// background propagator, wait-free real-time estimates. It is the Go
// counterpart of the ConcurrentDirectQuickSelectSketch contributed to
// Apache DataSketches.
type Concurrent struct {
	sk     *core.Sketch[uint64, float64]
	global *GlobalSketch
	cfg    ConcurrentConfig
}

// NewConcurrent builds a concurrent Θ sketch; Close it when done.
func NewConcurrent(cfg ConcurrentConfig) *Concurrent {
	c, _ := newConcurrentSeeded(cfg, nil)
	return c
}

// NewConcurrentFrom builds a concurrent Θ sketch whose global state is
// preloaded from a compact (sample set and Θ, see AbsorbCompact), so
// writers pre-filter with the inherited Θ from the first update. The
// compact's seed must match cfg's.
func NewConcurrentFrom(cfg ConcurrentConfig, from *Compact) (*Concurrent, error) {
	return newConcurrentSeeded(cfg, from)
}

func newConcurrentSeeded(cfg ConcurrentConfig, from *Compact) (*Concurrent, error) {
	cfg = cfg.withDefaults()
	var global *GlobalSketch
	if cfg.UseKMV {
		global = NewGlobalKMV(cfg.K, cfg.Seed)
	} else {
		global = NewGlobal(cfg.K, cfg.Seed)
	}
	global.noFilter = cfg.DisableFiltering
	if from != nil {
		// Absorb before core.New so the framework captures the
		// inherited Θ as every writer's initial pre-filtering hint.
		if err := global.AbsorbCompact(from); err != nil {
			return nil, err
		}
	}
	coreCfg := core.Config{
		Writers:         cfg.Writers,
		BufferSize:      cfg.BufferSize,
		EagerLimit:      cfg.EagerLimit,
		DoubleBuffering: !cfg.DisableDoubleBuffering,
		Pool:            cfg.Pool,
		AffinityKey:     cfg.AffinityKey,
	}
	if cfg.AdaptiveBuffering {
		// In exact mode (hint Θ = 1) keep the conservative b; once in
		// estimation mode grow to b_est = e·K/(2N) (see the config
		// field's doc comment for the error argument).
		base := cfg.BufferSize
		bEst := int(cfg.MaxError * float64(cfg.K) / (2 * float64(cfg.Writers)))
		if bEst < base {
			bEst = base
		}
		coreCfg.BufferAdaptor = func(hint uint64, cur int) int {
			if hint >= hash.MaxThetaValue {
				return base
			}
			return bEst
		}
	}
	newLocal := func() core.Local[uint64] { return NewBuffer(cfg.BufferSize) }
	return &Concurrent{
		sk:     core.New[uint64, float64](global, newLocal, coreCfg),
		global: global,
		cfg:    cfg,
	}, nil
}

// Writer returns the i-th writer handle; each handle may be used by at
// most one goroutine at a time.
func (c *Concurrent) Writer(i int) *ConcurrentWriter {
	return &ConcurrentWriter{
		w:        c.sk.Writer(i),
		seed:     c.cfg.Seed,
		global:   c.global,
		noFilter: c.cfg.DisableFiltering,
	}
}

// Estimate returns the current unique-count estimate. Wait-free; may
// miss up to Relaxation() of the most recent updates (Theorem 1).
func (c *Concurrent) Estimate() float64 { return c.sk.Query() }

// Compact returns an immutable point-in-time snapshot of the sketch —
// retained hashes, Θ, confidence bounds — that can be serialized with
// MarshalBinary, merged via Union, and persisted, all without touching
// the live sketch again. Unlike Estimate it briefly synchronises with
// the propagator, so it is not wait-free; like Estimate it may miss up
// to Relaxation() recent updates unless writers Flush first.
func (c *Concurrent) Compact() *Compact { return c.global.Compact() }

// Relaxation returns the bound r = 2·N·b on updates a query may miss.
func (c *Concurrent) Relaxation() int { return c.sk.Relaxation() }

// Propagations returns the number of local-buffer merges so far.
func (c *Concurrent) Propagations() int64 { return c.sk.Propagations() }

// Eager reports whether the sketch is still in its eager phase.
func (c *Concurrent) Eager() bool { return c.sk.Eager() }

// K returns the global sketch's nominal entry count.
func (c *Concurrent) K() int { return c.cfg.K }

// Seed returns the hash seed.
func (c *Concurrent) Seed() uint64 { return c.cfg.Seed }

// BufferSize returns the local buffer size b in use.
func (c *Concurrent) BufferSize() int { return c.cfg.BufferSize }

// Close stops the propagator. Flush all writers first if every update
// must be reflected in the final estimate.
func (c *Concurrent) Close() { c.sk.Close() }

// ConcurrentWriter is a single-goroutine update handle. It hashes each
// item once and feeds the Θ-space hash through the framework.
type ConcurrentWriter struct {
	w    *core.Writer[uint64, float64]
	seed uint64
	// global lets the batch paths read the freshly published Θ once
	// per batch (see filterHint).
	global *GlobalSketch
	// scratch holds the surviving hashes of a batch between the
	// hash+filter pass and the framework handoff; it is reused across
	// calls so steady-state batch ingestion is allocation-free.
	scratch  []uint64
	noFilter bool
}

// Update processes a byte-slice item.
func (w *ConcurrentWriter) Update(data []byte) {
	w.w.Update(hash.ThetaHashBytes(data, w.seed))
}

// UpdateUint64 processes a uint64 item.
func (w *ConcurrentWriter) UpdateUint64(v uint64) {
	w.w.Update(hash.ThetaHashUint64(v, w.seed))
}

// UpdateString processes a string item.
func (w *ConcurrentWriter) UpdateString(s string) {
	w.w.Update(hash.ThetaHashString(s, w.seed))
}

// UpdateHash processes a pre-hashed Θ-space item.
func (w *ConcurrentWriter) UpdateHash(h uint64) { w.w.Update(h) }

// filterHint returns the Θ threshold the batch paths pre-filter
// against. During the eager phase the hint is still the initial
// MaxThetaValue (it only refreshes at handoffs, which the eager phase
// has none of), so every hash passes, exactly as the per-item path
// behaves. Filtering against a hint that a mid-batch handoff has since
// tightened is safe: the global sketch drops hashes >= Θ on merge.
func (w *ConcurrentWriter) filterHint() uint64 {
	if w.noFilter {
		return hash.MaxThetaValue
	}
	// Prefer the globally published Θ over the piggybacked hint: the
	// piggyback refreshes only on this writer's own handoffs, so with
	// N writers it lags the stream N× further — a batch filtered with
	// it admits items a fresh Θ already excludes, and that wasted
	// buffer and merge traffic grows with the writer count. One atomic
	// load per batch (not per item) keeps the paper's cache-friendly
	// design; Θ only decreases, so the fresher hint filters strictly
	// more and remains a valid static shouldAdd threshold.
	h := w.w.Hint()
	if g := w.global.PublishedTheta(); g < h {
		h = g
	}
	return h
}

// UpdateUint64Batch processes a slice of uint64 items: hashing and Θ
// pre-filtering happen in one pass over the input, and the surviving
// hashes enter the framework in bulk. This is the recommended
// high-throughput ingestion path for numeric streams.
func (w *ConcurrentWriter) UpdateUint64Batch(vs []uint64) {
	w.scratch = hash.AppendThetaUint64Filtered(w.scratch[:0], vs, w.seed, w.filterHint())
	w.w.UpdateBatchPrefiltered(w.scratch)
}

// UpdateStringBatch processes a slice of string items in one
// hash+filter pass; steady state is allocation-free (the hash views
// each string's bytes in place and the scratch buffer is reused).
func (w *ConcurrentWriter) UpdateStringBatch(ss []string) {
	scratch, hint := w.scratch[:0], w.filterHint()
	for _, s := range ss {
		if h := hash.ThetaHashString(s, w.seed); h < hint {
			scratch = append(scratch, h)
		}
	}
	w.scratch = scratch
	w.w.UpdateBatchPrefiltered(scratch)
}

// UpdateBatch processes a slice of byte-slice items in one hash+filter
// pass.
func (w *ConcurrentWriter) UpdateBatch(items [][]byte) {
	scratch, hint := w.scratch[:0], w.filterHint()
	for _, it := range items {
		if h := hash.ThetaHashBytes(it, w.seed); h < hint {
			scratch = append(scratch, h)
		}
	}
	w.scratch = scratch
	w.w.UpdateBatchPrefiltered(scratch)
}

// UpdateHashBatch processes a slice of pre-hashed Θ-space items.
func (w *ConcurrentWriter) UpdateHashBatch(hs []uint64) {
	scratch, hint := w.scratch[:0], w.filterHint()
	for _, h := range hs {
		if h < hint {
			scratch = append(scratch, h)
		}
	}
	w.scratch = scratch
	w.w.UpdateBatchPrefiltered(scratch)
}

// Hint returns the writer's current pre-filtering Θ.
func (w *ConcurrentWriter) Hint() uint64 { return w.w.Hint() }

// Flush propagates any buffered updates and waits for them to be
// reflected in the global estimate.
func (w *ConcurrentWriter) Flush() { w.w.Flush() }
