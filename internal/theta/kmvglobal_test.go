package theta

import (
	"math"
	"sync"
	"testing"
)

func TestConcurrentKMVGlobal(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{
		K: 1024, Writers: 2, MaxError: 0.04, UseKMV: true,
	})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 100000; j++ {
				w.UpdateUint64(uint64(i*100000 + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-200000) / 200000; re > 0.15 {
		t.Errorf("KMV-global relative error %v (est=%v)", re, c.Estimate())
	}
}

func TestConcurrentKMVGlobalExactSmall(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 1024, Writers: 1, MaxError: 0.04, UseKMV: true})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(0); i < 500; i++ {
		w.UpdateUint64(i)
	}
	// Still in the eager phase: exact.
	if est := c.Estimate(); est != 500 {
		t.Errorf("eager KMV estimate = %v, want 500", est)
	}
}

func TestKMVAndQuickSelectGlobalsAgree(t *testing.T) {
	run := func(useKMV bool) float64 {
		c := NewConcurrent(ConcurrentConfig{
			K: 512, Writers: 1, MaxError: 0.04, UseKMV: useKMV, Seed: 77,
		})
		defer c.Close()
		w := c.Writer(0)
		for i := uint64(0); i < 100000; i++ {
			w.UpdateUint64(i)
		}
		w.Flush()
		return c.Estimate()
	}
	kmv, qs := run(true), run(false)
	// Same hash function, same stream: both unbiased estimators with
	// RSE ~ 1/sqrt(k-2) ≈ 4.4%; they should land within several RSE.
	if re := math.Abs(kmv-qs) / 100000; re > 0.25 {
		t.Errorf("KMV global %v vs QuickSelect global %v diverge", kmv, qs)
	}
}
