package hash

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// TestSum128KnownVectors pins the implementation to reference outputs of
// MurmurHash3 x64 128 (seed 0), computed from the canonical C++
// implementation. If these change, serialized sketches become unreadable.
func TestSum128KnownVectors(t *testing.T) {
	tests := []struct {
		in     string
		seed   uint64
		h1, h2 uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"a", 0, 0x85555565f6597889, 0xe6b53a48510e895a},
		{"ab", 0, 0x938b11ea16ed1b2e, 0xe65ea7019b52d4ad},
		{"abc", 0, 0xb4963f3f3fad7867, 0x3ba2744126ca2d52},
		{"abcd", 0, 0xb87bb7d64656cd4f, 0xf2003e886073e875},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"The quick brown fox jumps over the lazy dog", 0,
			0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347},
	}
	for _, tc := range tests {
		h1, h2 := Sum128([]byte(tc.in), tc.seed)
		if h1 != tc.h1 || h2 != tc.h2 {
			t.Errorf("Sum128(%q, %d) = (%#x, %#x), want (%#x, %#x)",
				tc.in, tc.seed, h1, h2, tc.h1, tc.h2)
		}
	}
}

func TestSum128SeedChangesOutput(t *testing.T) {
	in := []byte("some input")
	a1, a2 := Sum128(in, 0)
	b1, b2 := Sum128(in, DefaultSeed)
	if a1 == b1 && a2 == b2 {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestSum128AllTailLengths(t *testing.T) {
	// Exercise every tail-switch arm (lengths 0..16) plus a multi-block
	// input, and verify determinism and that all outputs are distinct.
	data := []byte("0123456789abcdefghijklmnopqrstuv")
	seen := make(map[[2]uint64]int)
	for n := 0; n <= len(data); n++ {
		h1, h2 := Sum128(data[:n], DefaultSeed)
		g1, g2 := Sum128(data[:n], DefaultSeed)
		if h1 != g1 || h2 != g2 {
			t.Fatalf("length %d: non-deterministic hash", n)
		}
		key := [2]uint64{h1, h2}
		if prev, dup := seen[key]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[key] = n
	}
}

func TestSumUint64MatchesBytes(t *testing.T) {
	f := func(v, seed uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		a1, a2 := Sum128(buf[:], seed)
		b1, b2 := SumUint64(v, seed)
		return a1 == b1 && a2 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumStringMatchesBytes(t *testing.T) {
	f := func(s string, seed uint64) bool {
		a1, a2 := Sum128([]byte(s), seed)
		b1, b2 := SumString(s, seed)
		return a1 == b1 && a2 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumStringLong(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = byte(i)
	}
	a1, a2 := Sum128(long, 7)
	b1, b2 := SumString(string(long), 7)
	if a1 != b1 || a2 != b2 {
		t.Fatal("long-string path disagrees with byte path")
	}
}

// TestThetaHashUniformity checks that Θ-space hashes of sequential
// integers look uniform on [0, 2^63): the empirical mean of the fraction
// must be near 0.5 and a coarse 16-bucket chi-square must be sane. This
// is the property the sketch error analysis depends on.
func TestThetaHashUniformity(t *testing.T) {
	const n = 200000
	var sum float64
	buckets := make([]int, 16)
	for i := uint64(0); i < n; i++ {
		h := ThetaHashUint64(i, DefaultSeed)
		if h == 0 || h >= MaxThetaValue {
			t.Fatalf("hash %d out of Θ space", h)
		}
		f := FractionOf(h)
		sum += f
		buckets[int(f*16)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean fraction = %v, want ~0.5", mean)
	}
	expect := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 15 degrees of freedom; 99.9th percentile ≈ 37.7.
	if chi2 > 40 {
		t.Errorf("chi-square = %v, hashes look non-uniform", chi2)
	}
}

func TestThetaHashNeverZero(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		if ThetaHashUint64(i, i) == 0 {
			t.Fatalf("Θ hash of %d is zero", i)
		}
	}
}

func TestThetaHashStringAgreesWithBytes(t *testing.T) {
	if ThetaHashString("abc", 1) != ThetaHashBytes([]byte("abc"), 1) {
		t.Fatal("string and byte Θ hashes disagree")
	}
}

func TestFractionOf(t *testing.T) {
	tests := []struct {
		theta uint64
		want  float64
	}{
		{MaxThetaValue, 1.0},
		{MaxThetaValue / 2, 0.5},
		{MaxThetaValue / 4, 0.25},
	}
	for _, tc := range tests {
		if got := FractionOf(tc.theta); got != tc.want {
			t.Errorf("FractionOf(%d) = %v, want %v", tc.theta, got, tc.want)
		}
	}
}

func BenchmarkSum128_8B(b *testing.B) {
	data := []byte("8bytes!!")
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		Sum128(data, DefaultSeed)
	}
}

func BenchmarkSum128_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum128(data, DefaultSeed)
	}
}

func BenchmarkThetaHashUint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ThetaHashUint64(uint64(i), DefaultSeed)
	}
}

// TestSumUint64MatchesGenericPath pins the specialised SumUint64 fast
// path to the generic Sum128 of the value's 8-byte little-endian
// encoding — the two must agree bit for bit or serialized sketches
// built from numeric streams stop matching.
func TestSumUint64MatchesGenericPath(t *testing.T) {
	check := func(v, seed uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		g1, g2 := Sum128(buf[:], seed)
		f1, f2 := SumUint64(v, seed)
		return g1 == f1 && g2 == f2
	}
	for _, v := range []uint64{0, 1, 8, math.MaxUint64, 0xdeadbeef} {
		for _, seed := range []uint64{0, DefaultSeed, 12345} {
			if !check(v, seed) {
				t.Errorf("SumUint64(%#x, %d) diverges from Sum128 of LE bytes", v, seed)
			}
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestSum128StringMatchesBytes pins the zero-copy string path to the
// []byte path for all lengths (empty, tail-only, multi-block).
func TestSum128StringMatchesBytes(t *testing.T) {
	data := "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-_."
	for n := 0; n <= len(data); n++ {
		s := data[:n]
		b1, b2 := Sum128([]byte(s), DefaultSeed)
		s1, s2 := Sum128String(s, DefaultSeed)
		if b1 != s1 || b2 != s2 {
			t.Errorf("length %d: Sum128String diverges from Sum128", n)
		}
	}
}

// TestSum128StringZeroAllocs pins the string hash at zero allocations
// for any length, including strings past the old 64-byte copy cutoff.
func TestSum128StringZeroAllocs(t *testing.T) {
	short := "user-42"
	long := "a-much-longer-key-that-exceeds-the-sixty-four-byte-stack-buffer-threshold-easily"
	var sink uint64
	if avg := testing.AllocsPerRun(100, func() {
		h1, _ := Sum128String(short, DefaultSeed)
		h2, _ := Sum128String(long, DefaultSeed)
		sink = h1 ^ h2
	}); avg != 0 {
		t.Errorf("Sum128String allocates %.1f allocs/op, want 0", avg)
	}
	_ = sink
}

// TestAppendBatchHashesMatchScalar pins the fused batch loops to their
// scalar counterparts element for element, including the Θ-space fold
// and the hint filter.
func TestAppendBatchHashesMatchScalar(t *testing.T) {
	vs := make([]uint64, 300)
	for i := range vs {
		vs[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	h1s := AppendSumUint64(nil, vs, DefaultSeed)
	if len(h1s) != len(vs) {
		t.Fatalf("AppendSumUint64 returned %d hashes for %d values", len(h1s), len(vs))
	}
	for i, v := range vs {
		if want, _ := SumUint64(v, DefaultSeed); h1s[i] != want {
			t.Fatalf("AppendSumUint64[%d] = %#x, want %#x", i, h1s[i], want)
		}
	}
	hint := MaxThetaValue / 3
	got := AppendThetaUint64Filtered(nil, vs, DefaultSeed, hint)
	var want []uint64
	for _, v := range vs {
		if h := ThetaHashUint64(v, DefaultSeed); h < hint {
			want = append(want, h)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("filtered batch kept %d hashes, scalar path kept %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("filtered batch[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}
