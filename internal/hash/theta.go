package hash

// The Θ sketch works in a hash space of [1, MaxThetaValue): MurmurHash3
// outputs are folded into 63 bits so that arithmetic on thresholds never
// overflows a signed 64-bit integer (DataSketches convention, which keeps
// the on-disk format compatible with Java longs). Zero is excluded so
// that 0 can mean "empty slot" in open-addressing tables.

// MaxThetaValue is one past the largest Θ-space hash; Θ = MaxThetaValue
// encodes the threshold 1.0 ("keep everything").
const MaxThetaValue uint64 = 1 << 63

// ThetaHashBytes hashes data into Θ space: uniform on [1, MaxThetaValue).
func ThetaHashBytes(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return fold63(h1)
}

// ThetaHashUint64 hashes a uint64 item into Θ space.
func ThetaHashUint64(v, seed uint64) uint64 {
	h1, _ := SumUint64(v, seed)
	return fold63(h1)
}

// ThetaHashString hashes a string item into Θ space.
func ThetaHashString(s string, seed uint64) uint64 {
	h1, _ := SumString(s, seed)
	return fold63(h1)
}

// FractionOf converts a Θ-space value to the fraction of the hash space
// below it, i.e. the [0,1] threshold the paper calls Θ.
func FractionOf(theta uint64) float64 {
	return float64(theta) / float64(MaxThetaValue)
}

func fold63(h uint64) uint64 {
	h >>= 1 // into [0, 2^63)
	if h == 0 {
		h = 1 // reserve 0 for "empty"
	}
	return h
}
