package hash

// The Θ sketch works in a hash space of [1, MaxThetaValue): MurmurHash3
// outputs are folded into 63 bits so that arithmetic on thresholds never
// overflows a signed 64-bit integer (DataSketches convention, which keeps
// the on-disk format compatible with Java longs). Zero is excluded so
// that 0 can mean "empty slot" in open-addressing tables.

// MaxThetaValue is one past the largest Θ-space hash; Θ = MaxThetaValue
// encodes the threshold 1.0 ("keep everything").
const MaxThetaValue uint64 = 1 << 63

// ThetaHashBytes hashes data into Θ space: uniform on [1, MaxThetaValue).
func ThetaHashBytes(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return fold63(h1)
}

// ThetaHashUint64 hashes a uint64 item into Θ space.
func ThetaHashUint64(v, seed uint64) uint64 {
	h1, _ := SumUint64(v, seed)
	return fold63(h1)
}

// ThetaHashString hashes a string item into Θ space.
func ThetaHashString(s string, seed uint64) uint64 {
	h1, _ := SumString(s, seed)
	return fold63(h1)
}

// AppendThetaUint64Filtered hashes each value into Θ space and appends
// the hashes below hint to dst, returning the extended slice. It fuses
// SumUint64 and fold63 with the pre-filter comparison into one loop so
// batch ingestion pays no per-item call overhead (SumUint64 is past
// the inlining budget); outputs are bit-identical to ThetaHashUint64.
func AppendThetaUint64Filtered(dst []uint64, vs []uint64, seed, hint uint64) []uint64 {
	for _, v := range vs {
		k1 := v * c1
		k1 = k1<<31 | k1>>33
		k1 *= c2
		h1 := seed ^ k1
		h2 := seed
		h1 ^= 8
		h2 ^= 8
		h1 += h2
		h2 += h1
		h1 = fmix64(h1)
		h2 = fmix64(h2)
		h := (h1 + h2) >> 1
		if h == 0 {
			h = 1
		}
		if h < hint {
			dst = append(dst, h)
		}
	}
	return dst
}

// FractionOf converts a Θ-space value to the fraction of the hash space
// below it, i.e. the [0,1] threshold the paper calls Θ.
func FractionOf(theta uint64) float64 {
	return float64(theta) / float64(MaxThetaValue)
}

func fold63(h uint64) uint64 {
	h >>= 1 // into [0, 2^63)
	if h == 0 {
		h = 1 // reserve 0 for "empty"
	}
	return h
}
