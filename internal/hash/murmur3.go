// Package hash implements the MurmurHash3 x64 128-bit hash function.
//
// MurmurHash3 is the hash family used by Apache DataSketches: its outputs
// are uniformly distributed over the 64-bit space, which is the property
// the Θ sketch analysis (order statistics over uniform variables) relies
// on. The implementation is self-contained and allocation-free.
package hash

import (
	"encoding/binary"
	"unsafe"
)

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// DefaultSeed is the seed DataSketches uses for all library sketches.
// Sketches must share a seed to be mergeable; the seed is part of the
// sketch "identity".
const DefaultSeed uint64 = 9001

// Sum128 computes the 128-bit MurmurHash3 (x64 variant) of data with the
// given seed and returns the two 64-bit halves.
func Sum128(data []byte, seed uint64) (h1, h2 uint64) {
	h1, h2 = seed, seed
	n := len(data)

	// Body: 16-byte blocks.
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data)
		k2 := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]

		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = rotl(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = rotl(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail: up to 15 remaining bytes.
	var k1, k2 uint64
	switch len(data) {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// SumUint64 hashes a single uint64 value, treating it as its 8-byte
// little-endian encoding (matching DataSketches' update(long)). The
// tail and finalization rounds are specialised for the fixed 8-byte
// length: reassembling the little-endian bytes yields v itself, so the
// encode/decode round trip of the generic path is skipped entirely.
// This is the ingestion hot path for numeric streams.
func SumUint64(v, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	k1 := v * c1
	k1 = rotl(k1, 31)
	k1 *= c2
	h1 ^= k1
	h1 ^= 8
	h2 ^= 8
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// AppendSumUint64 is the batch form of SumUint64 for sketches that key
// on the first hash word: it appends Sum128's h1 of each value to dst
// and returns the extended slice. The murmur rounds are written out in
// the loop body because SumUint64 is past the compiler's inlining
// budget, and a per-item call is the dominant overhead of a fused
// batch pass. Outputs are bit-identical to SumUint64.
func AppendSumUint64(dst []uint64, vs []uint64, seed uint64) []uint64 {
	for _, v := range vs {
		k1 := v * c1
		k1 = k1<<31 | k1>>33
		k1 *= c2
		h1 := seed ^ k1
		h2 := seed
		h1 ^= 8
		h2 ^= 8
		h1 += h2
		h2 += h1
		h1 = fmix64(h1)
		h2 = fmix64(h2)
		dst = append(dst, h1+h2)
	}
	return dst
}

// Sum128String hashes the raw bytes of s with zero allocations for any
// length: the string's backing array is viewed in place (read-only, as
// Sum128 never writes through its argument) instead of being copied to
// a []byte.
func Sum128String(s string, seed uint64) (uint64, uint64) {
	if len(s) == 0 {
		return Sum128(nil, seed)
	}
	return Sum128(unsafe.Slice(unsafe.StringData(s), len(s)), seed)
}

// SumString hashes the raw bytes of s without allocating.
func SumString(s string, seed uint64) (uint64, uint64) {
	return Sum128String(s, seed)
}

func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// fmix64 is the 64-bit finalization mix: it forces all bits of the input
// to avalanche so the output is uniform even for structured inputs.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
