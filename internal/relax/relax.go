// Package relax provides machinery for the paper's relaxed-consistency
// framework (Section 4): recording invoke/response histories of
// concurrent sketch executions and checking them against the
// r-relaxation of a sequential specification (Definition 2).
//
// Checking relaxed linearizability of arbitrary objects is intractable
// in general, but the paper's own proofs work through the Θ sketch's
// *exact mode* (Θ = 1), where the query result equals the number of
// distinct propagated updates. For that counting specification the
// r-relaxation condition has a precise interval-order form, which this
// package implements:
//
//   - every query must reflect at least C(q) − r updates, where C(q)
//     is the number of updates whose response precedes the query's
//     invocation (a query may "miss" at most r updates that precede
//     it), and
//   - at most P(q) updates, where P(q) is the number of updates
//     invoked before the query's response (no query may observe an
//     update that has not begun).
//
// The package also checks sequential (non-overlapping) histories
// directly against Definition 2, which is what the Figure 2 example
// exercises.
package relax

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind labels a history event.
type Kind uint8

// Event kinds.
const (
	KindUpdate Kind = iota + 1
	KindQuery
)

// Event is one completed operation in a recorded history, with its
// invocation and response positions in the global sequence order.
type Event struct {
	Kind    Kind
	Writer  int     // updating writer id (updates only)
	Value   uint64  // update argument (updates only)
	Result  float64 // query result (queries only)
	Invoke  int64
	Respond int64
}

// Recorder collects a concurrent history. Begin returns the invocation
// timestamp; EndUpdate/EndQuery stamp the response and append the
// event. It is safe for concurrent use.
type Recorder struct {
	seq    atomic.Int64
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin stamps an operation invocation.
func (r *Recorder) Begin() int64 { return r.seq.Add(1) }

// EndUpdate records a completed update.
func (r *Recorder) EndUpdate(writer int, value uint64, invoke int64) {
	resp := r.seq.Add(1)
	r.mu.Lock()
	r.events = append(r.events, Event{
		Kind: KindUpdate, Writer: writer, Value: value, Invoke: invoke, Respond: resp,
	})
	r.mu.Unlock()
}

// EndQuery records a completed query.
func (r *Recorder) EndQuery(result float64, invoke int64) {
	resp := r.seq.Add(1)
	r.mu.Lock()
	r.events = append(r.events, Event{
		Kind: KindQuery, Result: result, Invoke: invoke, Respond: resp,
	})
	r.mu.Unlock()
}

// History returns a copy of the recorded events.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Violation describes a query that cannot be explained by any
// r-relaxation of the counting specification.
type Violation struct {
	Query     Event
	Completed int // C(q): updates completed before the query began
	Possible  int // P(q): updates begun before the query ended
	R         int
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf(
		"relax: query (invoke=%d) returned %v, outside [C-r, P] = [%d, %d] (C=%d, r=%d)",
		v.Query.Invoke, v.Query.Result, v.Completed-v.R, v.Possible, v.Completed, v.R)
}

// CheckCounting validates a recorded history against the r-relaxed
// counting specification (the Θ sketch in exact mode, where the query
// result is the number of distinct updates reflected). All update
// values must be distinct. It returns nil if every query satisfies the
// interval-order condition, or the first Violation found.
//
// It also enforces cross-query sanity for monotone specifications: a
// query that completes before another begins may exceed it by at most
// r (each query independently misses at most r predecessors).
func CheckCounting(history []Event, r int) error {
	var updates, queries []Event
	for _, e := range history {
		switch e.Kind {
		case KindUpdate:
			updates = append(updates, e)
		case KindQuery:
			queries = append(queries, e)
		default:
			return fmt.Errorf("relax: event with unknown kind %d", e.Kind)
		}
	}
	for _, q := range queries {
		completed, possible := 0, 0
		for _, u := range updates {
			if u.Respond < q.Invoke {
				completed++
			}
			if u.Invoke < q.Respond {
				possible++
			}
		}
		res := int(q.Result)
		if float64(res) != q.Result || res < completed-r || res > possible {
			return &Violation{Query: q, Completed: completed, Possible: possible, R: r}
		}
	}
	// Monotone cross-query condition.
	for _, q1 := range queries {
		for _, q2 := range queries {
			if q1.Respond < q2.Invoke && q2.Result < q1.Result-float64(r) {
				return fmt.Errorf(
					"relax: later query returned %v, more than r=%d below earlier query's %v",
					q2.Result, r, q1.Result)
			}
		}
	}
	return nil
}

// SeqOp is an operation in a sequential history (no overlap): either
// an update of a distinct value or a query with its result.
type SeqOp struct {
	Kind   Kind
	Value  uint64
	Result int
}

// IsRelaxationOfCounting reports whether the sequential history h' is
// in the r-relaxation of the counting specification per Definition 2:
// there must exist a history H comprised of the same operations such
// that every operation in H is preceded by all but at most r of the
// operations that precede it in h', and H is a legal counting history
// (each query returns exactly the number of updates before it).
//
// For the counting object this reduces to: for each query at position
// i with result c, letting U(i) be the number of updates before it in
// h', we need U(i) - r <= c <= total updates, and results of queries
// must be achievable in one common permutation — which for counting
// means a query's result may fall below a preceding query's by at most
// r and the sequence of (result + allowed drift) must be realizable.
// The realizability check used here is exact for histories in which
// queries appear in h' order (the form our tests generate).
func IsRelaxationOfCounting(hPrime []SeqOp, r int) bool {
	totalUpdates := 0
	for _, op := range hPrime {
		if op.Kind == KindUpdate {
			totalUpdates++
		}
	}
	seen := 0
	prevResult := -1
	for _, op := range hPrime {
		switch op.Kind {
		case KindUpdate:
			seen++
		case KindQuery:
			if op.Result < seen-r || op.Result > totalUpdates {
				return false
			}
			if prevResult >= 0 && op.Result < prevResult-r {
				return false
			}
			prevResult = op.Result
		}
	}
	return true
}
