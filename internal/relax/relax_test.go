package relax

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/theta"
)

func TestFigure2Example(t *testing.T) {
	// The paper's Figure 2: H is a 1-relaxation of H'. In H', a query
	// runs after update(a) but returns the empty-sketch answer (0),
	// i.e. it "missed" one update — legal for r=1, illegal for r=0.
	hPrime := []SeqOp{
		{Kind: KindUpdate, Value: 1}, // update(a)
		{Kind: KindQuery, Result: 0}, // missed a
		{Kind: KindUpdate, Value: 2}, // update(b)
		{Kind: KindQuery, Result: 2}, // sees both
	}
	if !IsRelaxationOfCounting(hPrime, 1) {
		t.Error("Figure 2 history rejected at r=1")
	}
	if IsRelaxationOfCounting(hPrime, 0) {
		t.Error("Figure 2 history accepted at r=0 (unrelaxed)")
	}
}

func TestSequentialChecker(t *testing.T) {
	tests := []struct {
		name string
		h    []SeqOp
		r    int
		want bool
	}{
		{
			name: "exact history always valid",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindQuery, Result: 1},
				{Kind: KindUpdate, Value: 2},
				{Kind: KindQuery, Result: 2},
			},
			r: 0, want: true,
		},
		{
			name: "query misses r+1 updates",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindUpdate, Value: 2},
				{Kind: KindUpdate, Value: 3},
				{Kind: KindQuery, Result: 0},
			},
			r: 2, want: false,
		},
		{
			name: "query misses exactly r updates",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindUpdate, Value: 2},
				{Kind: KindUpdate, Value: 3},
				{Kind: KindQuery, Result: 1},
			},
			r: 2, want: true,
		},
		{
			name: "query overcounts beyond stream",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindQuery, Result: 2},
			},
			r: 5, want: false,
		},
		{
			name: "query sees a later update (reordering allowed)",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindQuery, Result: 2}, // sees update(2) early
				{Kind: KindUpdate, Value: 2},
			},
			r: 0, want: true,
		},
		{
			name: "second query regresses more than r",
			h: []SeqOp{
				{Kind: KindUpdate, Value: 1},
				{Kind: KindUpdate, Value: 2},
				{Kind: KindUpdate, Value: 3},
				{Kind: KindQuery, Result: 3},
				{Kind: KindQuery, Result: 1},
			},
			r: 1, want: false,
		},
		{
			name: "empty history",
			h:    nil,
			r:    0, want: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsRelaxationOfCounting(tc.h, tc.r); got != tc.want {
				t.Errorf("IsRelaxationOfCounting = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCheckCountingAcceptsExactHistory(t *testing.T) {
	rec := NewRecorder()
	for i := uint64(0); i < 10; i++ {
		inv := rec.Begin()
		rec.EndUpdate(0, i, inv)
	}
	inv := rec.Begin()
	rec.EndQuery(10, inv)
	if err := CheckCounting(rec.History(), 0); err != nil {
		t.Errorf("exact history rejected: %v", err)
	}
}

func TestCheckCountingRejectsLostUpdates(t *testing.T) {
	rec := NewRecorder()
	for i := uint64(0); i < 10; i++ {
		inv := rec.Begin()
		rec.EndUpdate(0, i, inv)
	}
	inv := rec.Begin()
	rec.EndQuery(3, inv) // missed 7 > r=5
	err := CheckCounting(rec.History(), 5)
	if err == nil {
		t.Fatal("history with 7 lost updates accepted at r=5")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error type %T, want *Violation", err)
	}
	if v.Completed != 10 || v.Possible != 10 {
		t.Errorf("violation bookkeeping: C=%d P=%d", v.Completed, v.Possible)
	}
	if !strings.Contains(v.Error(), "outside") {
		t.Errorf("unhelpful violation message: %v", v)
	}
}

func TestCheckCountingRejectsFutureReads(t *testing.T) {
	rec := NewRecorder()
	inv := rec.Begin()
	rec.EndQuery(1, inv) // sees an update that never began
	if err := CheckCounting(rec.History(), 100); err == nil {
		t.Fatal("query observing a never-invoked update accepted")
	}
}

func TestCheckCountingAllowsMissingWithinR(t *testing.T) {
	rec := NewRecorder()
	for i := uint64(0); i < 10; i++ {
		inv := rec.Begin()
		rec.EndUpdate(0, i, inv)
	}
	inv := rec.Begin()
	rec.EndQuery(8, inv) // missed 2 <= r=2
	if err := CheckCounting(rec.History(), 2); err != nil {
		t.Errorf("history within relaxation rejected: %v", err)
	}
}

func TestCheckCountingInFlightUpdates(t *testing.T) {
	// An update overlapping the query may or may not be observed; both
	// results must be accepted.
	for _, result := range []float64{0, 1} {
		rec := NewRecorder()
		uinv := rec.Begin() // update invoked...
		qinv := rec.Begin() // ...query starts before it responds
		rec.EndQuery(result, qinv)
		rec.EndUpdate(0, 7, uinv)
		if err := CheckCounting(rec.History(), 0); err != nil {
			t.Errorf("overlapping update, result %v rejected: %v", result, err)
		}
	}
}

func TestCheckCountingCrossQueryMonotonicity(t *testing.T) {
	rec := NewRecorder()
	for i := uint64(0); i < 20; i++ {
		inv := rec.Begin()
		rec.EndUpdate(0, i, inv)
	}
	q1 := rec.Begin()
	rec.EndQuery(20, q1)
	q2 := rec.Begin()
	rec.EndQuery(10, q2) // regressed by 10 > r=4
	if err := CheckCounting(rec.History(), 4); err == nil {
		t.Fatal("regressing queries accepted")
	}
}

// TestThetaConcurrentSatisfiesRelaxation drives the real concurrent Θ
// sketch in exact mode and validates the recorded history against
// Theorem 1's bound r = 2Nb — the paper's main correctness claim,
// checked end-to-end.
func TestThetaConcurrentSatisfiesRelaxation(t *testing.T) {
	const writers, per, b = 3, 2000, 8
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 1 << 16, Writers: writers, BufferSize: b, EagerLimit: -1, // stay exact
	})
	defer c.Close()
	rec := NewRecorder()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				v := uint64(i*per + j) // globally distinct
				inv := rec.Begin()
				w.UpdateUint64(v)
				rec.EndUpdate(i, v, inv)
			}
		}(i)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		// Bounded, throttled queries: the checker is O(Q·U), and an
		// unthrottled query loop would also starve writers on small
		// machines.
		for {
			select {
			case <-stop:
				return
			default:
			}
			inv := rec.Begin()
			est := c.Estimate()
			rec.EndQuery(est, inv)
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	qwg.Wait()

	if err := CheckCounting(rec.History(), c.Relaxation()); err != nil {
		t.Errorf("concurrent Θ sketch violated its relaxation bound: %v", err)
	}
}

// TestThetaParSketchSatisfiesRelaxation repeats the end-to-end check
// for the non-optimised ParSketch variant (r = Nb, Lemma 1).
func TestThetaParSketchSatisfiesRelaxation(t *testing.T) {
	const writers, per, b = 2, 2000, 8
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 1 << 16, Writers: writers, BufferSize: b, EagerLimit: -1,
		DisableDoubleBuffering: true,
	})
	defer c.Close()
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				v := uint64(i*per + j)
				inv := rec.Begin()
				w.UpdateUint64(v)
				rec.EndUpdate(i, v, inv)
			}
		}(i)
	}
	wg.Wait()
	inv := rec.Begin()
	rec.EndQuery(c.Estimate(), inv)
	if err := CheckCounting(rec.History(), c.Relaxation()); err != nil {
		t.Errorf("ParSketch violated its relaxation bound: %v", err)
	}
}

func TestRecorderConcurrentSafety(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				inv := rec.Begin()
				rec.EndUpdate(i, uint64(i*1000+j), inv)
			}
		}(i)
	}
	wg.Wait()
	h := rec.History()
	if len(h) != 4000 {
		t.Fatalf("recorded %d events, want 4000", len(h))
	}
	for _, e := range h {
		if e.Invoke >= e.Respond {
			t.Fatal("event with invoke >= respond")
		}
	}
}
