// Package lockbased provides the evaluation baseline of the paper: a
// sequential sketch made thread-safe by wrapping every API call in a
// readers-writer lock ("applications using these libraries are
// therefore required to explicitly protect all sketch API calls by
// locks", §1; Figures 1, 6 and 7 compare against exactly this).
//
// Updates take the write lock; queries take the read lock. As the
// paper shows, this baseline does not scale — contention on the lock
// grows with the thread count — which is precisely the motivation for
// the concurrent framework in package core.
package lockbased

import (
	"sync"

	"github.com/fcds/fcds/internal/hash"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/theta"
)

// Theta is a lock-protected sequential Θ sketch (QuickSelect family,
// like the global sketch of the concurrent implementation — "the
// sequential implementation and the sketch at the core of the global
// sketch in the concurrent implementation are the same", §7.1).
type Theta struct {
	mu   sync.RWMutex
	s    *theta.QuickSelect
	seed uint64
}

// NewTheta returns a lock-protected Θ sketch with nominal entry count
// k and the default seed.
func NewTheta(k int) *Theta { return NewThetaSeeded(k, hash.DefaultSeed) }

// NewThetaSeeded returns a lock-protected Θ sketch with an explicit
// seed.
func NewThetaSeeded(k int, seed uint64) *Theta {
	return &Theta{s: theta.NewQuickSelectSeeded(k, seed), seed: seed}
}

// UpdateUint64 processes one item under the write lock.
func (t *Theta) UpdateUint64(v uint64) {
	h := hash.ThetaHashUint64(v, t.seed) // hash outside the lock
	t.mu.Lock()
	t.s.UpdateHash(h)
	t.mu.Unlock()
}

// UpdateHash processes a pre-hashed item under the write lock.
func (t *Theta) UpdateHash(h uint64) {
	t.mu.Lock()
	t.s.UpdateHash(h)
	t.mu.Unlock()
}

// Estimate returns the current estimate under the read lock.
func (t *Theta) Estimate() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.s.Estimate()
}

// Theta returns the current threshold under the read lock.
func (t *Theta) Theta() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.s.Theta()
}

// Compact returns an immutable snapshot under the read lock.
func (t *Theta) Compact() *theta.Compact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.s.Compact()
}

// Reset clears the sketch under the write lock.
func (t *Theta) Reset() {
	t.mu.Lock()
	t.s.Reset()
	t.mu.Unlock()
}

// Quantiles is a lock-protected sequential quantiles sketch.
type Quantiles struct {
	mu sync.RWMutex
	s  *quantiles.Sketch
}

// NewQuantiles returns a lock-protected quantiles sketch with
// parameter k.
func NewQuantiles(k int) *Quantiles {
	return &Quantiles{s: quantiles.New(k)}
}

// Update processes one value under the write lock.
func (q *Quantiles) Update(v float64) {
	q.mu.Lock()
	q.s.Update(v)
	q.mu.Unlock()
}

// Quantile answers a quantile query under the read lock.
func (q *Quantiles) Quantile(phi float64) float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.s.Quantile(phi)
}

// Rank answers a rank query under the read lock.
func (q *Quantiles) Rank(v float64) float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.s.Rank(v)
}

// N returns the processed-item count under the read lock.
func (q *Quantiles) N() uint64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.s.N()
}
