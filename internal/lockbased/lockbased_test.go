package lockbased

import (
	"math"
	"sync"
	"testing"
)

func TestThetaSequentialCorrectness(t *testing.T) {
	s := NewTheta(256)
	for i := uint64(0); i < 100; i++ {
		s.UpdateUint64(i)
	}
	if est := s.Estimate(); est != 100 {
		t.Errorf("estimate = %v, want 100", est)
	}
}

func TestThetaConcurrentUpdatesNoLoss(t *testing.T) {
	// The lock serializes everything, so the result must equal the
	// sequential sketch on the same input set (exact mode).
	s := NewTheta(4096)
	var wg sync.WaitGroup
	const writers, per = 4, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.UpdateUint64(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if est := s.Estimate(); est != writers*per {
		t.Errorf("estimate = %v, want %d", est, writers*per)
	}
}

func TestThetaConcurrentReadsDuringWrites(t *testing.T) {
	s := NewTheta(1024)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 200000; i++ {
			s.UpdateUint64(i)
		}
		close(stop)
	}()
	var prev float64
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		est := s.Estimate()
		// Estimates may wobble slightly across rebuilds but must stay
		// sane (never negative, never wildly above the stream size).
		if est < prev*0.5 || est > 1e7 {
			t.Fatalf("estimate %v after %v looks corrupt", est, prev)
		}
		prev = est
	}
}

func TestThetaEstimationAccuracy(t *testing.T) {
	s := NewTheta(1024)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		s.UpdateUint64(i)
	}
	if re := math.Abs(s.Estimate()-n) / n; re > 0.15 {
		t.Errorf("relative error %v", re)
	}
	if c := s.Compact(); math.Abs(c.Estimate()-s.Estimate()) > 1e-9 {
		t.Error("compact snapshot disagrees with estimate")
	}
}

func TestThetaReset(t *testing.T) {
	s := NewTheta(256)
	s.UpdateUint64(1)
	s.Reset()
	if s.Estimate() != 0 {
		t.Error("reset did not clear")
	}
}

func TestQuantilesLockedBasics(t *testing.T) {
	q := NewQuantiles(128)
	for i := 1; i <= 1000; i++ {
		q.Update(float64(i))
	}
	if q.N() != 1000 {
		t.Errorf("N = %d", q.N())
	}
	med := q.Quantile(0.5)
	if med < 400 || med > 600 {
		t.Errorf("median = %v", med)
	}
	if r := q.Rank(500); math.Abs(r-0.5) > 0.05 {
		t.Errorf("rank(500) = %v", r)
	}
}

func TestQuantilesConcurrentMixed(t *testing.T) {
	q := NewQuantiles(128)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				q.Update(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			if q.N() != 10000 {
				t.Errorf("N = %d, want 10000", q.N())
			}
			return
		default:
			if q.N() > 0 {
				_ = q.Quantile(0.9)
			}
		}
	}
}
