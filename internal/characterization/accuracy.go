package characterization

import (
	"fmt"

	"github.com/fcds/fcds/internal/theta"
)

// AccuracyPoint is one row of a pitchfork profile (Figure 5): the mean
// and quantiles of the relative-error distribution
// RE = Measured/True − 1 over many trials at one stream size.
type AccuracyPoint struct {
	InU    uint64
	Trials int
	Mean   float64
	Q01    float64
	Q25    float64
	Median float64
	Q75    float64
	Q99    float64
}

// AccuracyRunner produces one estimate for a stream of n uniques; the
// trial index seeds the hash function so trials are independent
// ("this trial is repeated multiple times, logging all estimation
// results", §7.1).
type AccuracyRunner interface {
	Name() string
	Estimate(n uint64, trial int) float64
}

// AccuracyConfig drives a pitchfork sweep.
type AccuracyConfig struct {
	MinLgU, MaxLgU int
	PPO            int
	Trials         TrialsFunc
}

// AccuracyProfile measures the relative-error distribution across the
// stream-size grid.
func AccuracyProfile(r AccuracyRunner, cfg AccuracyConfig) []AccuracyPoint {
	points := GridPoints(cfg.MinLgU, cfg.MaxLgU, cfg.PPO)
	out := make([]AccuracyPoint, 0, len(points))
	for _, x := range points {
		trials := cfg.Trials(x)
		res := make([]float64, 0, trials)
		for t := 0; t < trials; t++ {
			est := r.Estimate(x, t)
			res = append(res, est/float64(x)-1)
		}
		out = append(out, AccuracyPoint{
			InU: x, Trials: trials,
			Mean:   meanOf(res),
			Q01:    quantileOf(res, 0.01),
			Q25:    quantileOf(res, 0.25),
			Median: quantileOf(res, 0.50),
			Q75:    quantileOf(res, 0.75),
			Q99:    quantileOf(res, 0.99),
		})
	}
	return out
}

// ConcurrentThetaAccuracy measures the concurrent Θ sketch exactly as
// the paper does (§7.1): a single writer feeds n uniques and the
// estimate is read immediately after the last update call returns —
// without flushing — so the error includes whatever propagation delay
// the configuration (e, b) leaves visible. This is what produces the
// distorted pitchfork of Figure 5a when eager propagation is off.
type ConcurrentThetaAccuracy struct {
	K          int
	MaxError   float64 // e = 1.0 reproduces Figure 5a, e = 0.04 Figure 5b
	BufferSize int
}

// Name implements AccuracyRunner.
func (r *ConcurrentThetaAccuracy) Name() string {
	return fmt.Sprintf("accuracy-concurrent-theta/k=%d/e=%g", r.K, r.MaxError)
}

// Estimate implements AccuracyRunner.
func (r *ConcurrentThetaAccuracy) Estimate(n uint64, trial int) float64 {
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: r.K, Writers: 1, MaxError: r.MaxError, BufferSize: r.BufferSize,
		Seed: uint64(trial)*0x9e3779b97f4a7c15 + 1,
	})
	defer c.Close()
	w := c.Writer(0)
	for v := uint64(0); v < n; v++ {
		w.UpdateUint64(v)
	}
	return c.Estimate() // deliberately no Flush — measures staleness too
}

// SequentialThetaAccuracy is the sequential reference pitchfork.
type SequentialThetaAccuracy struct {
	K int
}

// Name implements AccuracyRunner.
func (r *SequentialThetaAccuracy) Name() string {
	return fmt.Sprintf("accuracy-sequential-theta/k=%d", r.K)
}

// Estimate implements AccuracyRunner.
func (r *SequentialThetaAccuracy) Estimate(n uint64, trial int) float64 {
	s := theta.NewQuickSelectSeeded(r.K, uint64(trial)*0x9e3779b97f4a7c15+1)
	for v := uint64(0); v < n; v++ {
		s.UpdateUint64(v)
	}
	return s.Estimate()
}
