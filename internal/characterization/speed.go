package characterization

import "time"

// SpeedPoint is one row of a speed profile, in the same schema as the
// DataSketches SpeedProfile output: InU (unique count), Trials, and
// nS/u (nanoseconds per update).
type SpeedPoint struct {
	InU         uint64
	Trials      int
	NsPerUpdate float64
}

// SpeedConfig drives a speed profile sweep (Figures 6a/6b/8).
type SpeedConfig struct {
	MinLgU, MaxLgU int
	PPO            int // grid points per octave
	Trials         TrialsFunc
}

// SpeedProfile measures ns/update for the runner across the stream
// size grid: for each size x it averages Trials(x) fresh-sketch
// ingestion runs ("for each size x we measure the time t it takes to
// feed the sketch x unique values", §7.1).
func SpeedProfile(r Runner, cfg SpeedConfig) []SpeedPoint {
	points := GridPoints(cfg.MinLgU, cfg.MaxLgU, cfg.PPO)
	out := make([]SpeedPoint, 0, len(points))
	for _, x := range points {
		trials := cfg.Trials(x)
		var total time.Duration
		for t := 0; t < trials; t++ {
			total += r.Run(x)
		}
		ns := float64(total.Nanoseconds()) / float64(trials) / float64(x)
		out = append(out, SpeedPoint{InU: x, Trials: trials, NsPerUpdate: ns})
	}
	return out
}

// Speedup returns per-point a.ns/b.ns — Figure 8's eager-vs-no-eager
// speedup when a is the no-eager profile and b the eager one. The two
// profiles must share a grid.
func Speedup(a, b []SpeedPoint) []SpeedupPoint {
	if len(a) != len(b) {
		panic("characterization: speedup profiles differ in length")
	}
	out := make([]SpeedupPoint, len(a))
	for i := range a {
		if a[i].InU != b[i].InU {
			panic("characterization: speedup profiles differ in grid")
		}
		out[i] = SpeedupPoint{InU: a[i].InU, Speedup: a[i].NsPerUpdate / b[i].NsPerUpdate}
	}
	return out
}

// SpeedupPoint is one row of Figure 8.
type SpeedupPoint struct {
	InU     uint64
	Speedup float64
}

// CrossingPoint returns the smallest grid size at which `fast` becomes
// at least as fast as `slow` and stays so for the remainder of the
// grid (Table 2's "thpt crossing point"). It returns 0 if no such
// point exists.
func CrossingPoint(fast, slow []SpeedPoint) uint64 {
	if len(fast) != len(slow) {
		panic("characterization: crossing profiles differ in length")
	}
	for i := range fast {
		if fast[i].InU != slow[i].InU {
			panic("characterization: crossing profiles differ in grid")
		}
		if fast[i].NsPerUpdate <= slow[i].NsPerUpdate {
			ok := true
			for j := i; j < len(fast); j++ {
				if fast[j].NsPerUpdate > slow[j].NsPerUpdate {
					ok = false
					break
				}
			}
			if ok {
				return fast[i].InU
			}
		}
	}
	return 0
}
