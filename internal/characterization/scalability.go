package characterization

import "time"

// ScalabilityPoint is one row of Figure 1: write throughput (million
// operations per second) at a given thread count.
type ScalabilityPoint struct {
	Threads int
	MopsSec float64
}

// ScalabilityConfig drives a Figure 1 sweep.
type ScalabilityConfig struct {
	Threads []int  // thread counts to sweep
	N       uint64 // uniques ingested per run ("a very large stream")
	Trials  int    // repetitions per point (the paper uses 16)
	// Build returns a runner for the given thread count.
	Build func(threads int) Runner
}

// ScalabilityProfile measures throughput across thread counts.
func ScalabilityProfile(cfg ScalabilityConfig) []ScalabilityPoint {
	out := make([]ScalabilityPoint, 0, len(cfg.Threads))
	for _, th := range cfg.Threads {
		r := cfg.Build(th)
		var total time.Duration
		for t := 0; t < cfg.Trials; t++ {
			total += r.Run(cfg.N)
		}
		avg := total / time.Duration(cfg.Trials)
		mops := float64(cfg.N) / avg.Seconds() / 1e6
		out = append(out, ScalabilityPoint{Threads: th, MopsSec: mops})
	}
	return out
}
