package characterization

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Conf-file-driven jobs, mirroring the paper artifact's workflow
// (Appendix A): each experiment is described by a .conf file of
// key=value pairs and executed by a generic Job runner. The keys below
// follow the artifact's naming (A.7 "Experiment customization"):
//
//	JobProfile                            which profile to run
//	Trials_lgMinU / Trials_lgMaxU         stream-size sweep bounds
//	Trials_PPO                            grid points per octave
//	Trials_lgMaxTrials / Trials_lgMinTrials  trial taper (log2)
//	LgK                                   global sketch size (log2)
//	CONCURRENT_THETA_maxConcurrencyError  e (1 = no eager)
//	CONCURRENT_THETA_numWriters           writer threads
//	CONCURRENT_THETA_numReaders           background readers (mixed)
//	CONCURRENT_THETA_ThreadSafe           true: concurrent impl,
//	                                      false: lock-based baseline
//
// Recognised JobProfile values:
//
//	ConcurrentThetaMultithreadedSpeedProfile   (Figures 1, 6, 8)
//	ConcurrentThetaAccuracyProfile             (Figure 5)
//	ConcurrentThetaMixedSpeedProfile           (Figure 7)

// Conf is a parsed configuration file.
type Conf map[string]string

// ParseConf reads key=value lines; '#' and '//' start comments and
// blank lines are skipped. Later duplicates override earlier ones.
func ParseConf(r io.Reader) (Conf, error) {
	conf := Conf{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if i := strings.Index(s, "#"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if s == "" {
			continue
		}
		k, v, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("characterization: conf line %d: no '=' in %q", line, s)
		}
		conf[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return conf, sc.Err()
}

func (c Conf) str(key, def string) string {
	if v, ok := c[key]; ok {
		return v
	}
	return def
}

func (c Conf) intVal(key string, def int) (int, error) {
	v, ok := c[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("characterization: conf key %s: %v", key, err)
	}
	return n, nil
}

func (c Conf) floatVal(key string, def float64) (float64, error) {
	v, ok := c[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("characterization: conf key %s: %v", key, err)
	}
	return f, nil
}

func (c Conf) boolVal(key string, def bool) (bool, error) {
	v, ok := c[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("characterization: conf key %s: %v", key, err)
	}
	return b, nil
}

// RunJob executes the job described by conf and writes TSV rows to w.
func RunJob(conf Conf, w io.Writer) error {
	profile := conf.str("JobProfile", "")
	// Accept both the artifact's fully qualified class names and bare
	// profile names.
	if i := strings.LastIndex(profile, "."); i >= 0 {
		profile = profile[i+1:]
	}
	switch profile {
	case "ConcurrentThetaMultithreadedSpeedProfile":
		return runSpeedJob(conf, w)
	case "ConcurrentThetaAccuracyProfile":
		return runAccuracyJob(conf, w)
	case "ConcurrentThetaMixedSpeedProfile":
		return runMixedJob(conf, w)
	case "":
		return fmt.Errorf("characterization: missing JobProfile")
	default:
		return fmt.Errorf("characterization: unknown JobProfile %q", profile)
	}
}

type jobParams struct {
	speed    SpeedConfig
	accuracy AccuracyConfig
	lgK      int
	e        float64
	writers  int
	readers  int
	safe     bool
}

func parseParams(conf Conf) (jobParams, error) {
	var p jobParams
	var err error
	get := func(dst *int, key string, def int) {
		if err == nil {
			*dst, err = conf.intVal(key, def)
		}
	}
	var minLg, maxLg, ppo, lgMaxTrials, lgMinTrials int
	get(&minLg, "Trials_lgMinU", 5)
	get(&maxLg, "Trials_lgMaxU", 20)
	get(&ppo, "Trials_PPO", 2)
	get(&lgMaxTrials, "Trials_lgMaxTrials", 6)
	get(&lgMinTrials, "Trials_lgMinTrials", 1)
	get(&p.lgK, "LgK", 12)
	get(&p.writers, "CONCURRENT_THETA_numWriters", 1)
	get(&p.readers, "CONCURRENT_THETA_numReaders", 0)
	if err != nil {
		return p, err
	}
	if p.e, err = conf.floatVal("CONCURRENT_THETA_maxConcurrencyError", 0.04); err != nil {
		return p, err
	}
	if p.safe, err = conf.boolVal("CONCURRENT_THETA_ThreadSafe", true); err != nil {
		return p, err
	}
	if minLg < 0 || maxLg < minLg || ppo < 1 {
		return p, fmt.Errorf("characterization: invalid sweep bounds lgMinU=%d lgMaxU=%d PPO=%d", minLg, maxLg, ppo)
	}
	if lgMaxTrials < lgMinTrials {
		return p, fmt.Errorf("characterization: lgMaxTrials < lgMinTrials")
	}
	var trials TrialsFunc
	loN, hiN := uint64(1)<<uint(minLg+2), uint64(1)<<uint(maxLg)
	if loN >= hiN || lgMaxTrials == lgMinTrials {
		// Degenerate sweep (few octaves): constant trial count.
		n := 1 << lgMaxTrials
		trials = func(uint64) int { return n }
	} else {
		trials = TaperedTrials(1<<lgMaxTrials, 1<<lgMinTrials, loN, hiN)
	}
	p.speed = SpeedConfig{MinLgU: minLg, MaxLgU: maxLg, PPO: ppo, Trials: trials}
	p.accuracy = AccuracyConfig{MinLgU: minLg, MaxLgU: maxLg, PPO: ppo, Trials: trials}
	return p, nil
}

func runSpeedJob(conf Conf, w io.Writer) error {
	p, err := parseParams(conf)
	if err != nil {
		return err
	}
	var r Runner
	if p.safe {
		r = &ConcurrentThetaRunner{K: 1 << p.lgK, Writers: p.writers, MaxError: p.e}
	} else {
		r = &LockThetaRunner{K: 1 << p.lgK, Threads: p.writers}
	}
	return writeSpeedTSV(w, r.Name(), SpeedProfile(r, p.speed))
}

func runMixedJob(conf Conf, w io.Writer) error {
	p, err := parseParams(conf)
	if err != nil {
		return err
	}
	r := NewMixedThetaRunner(p.safe, 1<<p.lgK, p.writers, p.readers, time.Millisecond, p.e)
	return writeSpeedTSV(w, r.Name(), SpeedProfile(r, p.speed))
}

func writeSpeedTSV(w io.Writer, name string, pts []SpeedPoint) error {
	if _, err := fmt.Fprintf(w, "# %s\nInU\tTrials\tnS/u\n", name); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%.2f\n", p.InU, p.Trials, p.NsPerUpdate); err != nil {
			return err
		}
	}
	return nil
}

func runAccuracyJob(conf Conf, w io.Writer) error {
	p, err := parseParams(conf)
	if err != nil {
		return err
	}
	if !p.safe {
		return fmt.Errorf("characterization: accuracy profile requires the concurrent implementation")
	}
	r := &ConcurrentThetaAccuracy{K: 1 << p.lgK, MaxError: p.e}
	pts := AccuracyProfile(r, p.accuracy)
	if _, err := fmt.Fprintf(w, "# %s\nInU\tTrials\tMeanRE\tQ01\tQ25\tMedian\tQ75\tQ99\n", r.Name()); err != nil {
		return err
	}
	for _, pt := range pts {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			pt.InU, pt.Trials, pt.Mean, pt.Q01, pt.Q25, pt.Median, pt.Q75, pt.Q99); err != nil {
			return err
		}
	}
	return nil
}

// ConfKeys returns the sorted keys of a conf (diagnostics).
func (c Conf) ConfKeys() []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
