package characterization

import (
	"testing"

	"github.com/fcds/fcds/internal/quantiles"
)

func TestConcurrentQuantilesRunner(t *testing.T) {
	r := &ConcurrentQuantilesRunner{K: 64, Writers: 2}
	if d := r.Run(5000); d <= 0 {
		t.Error("non-positive duration")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestConcurrentHLLRunner(t *testing.T) {
	r := &ConcurrentHLLRunner{Precision: 10, Writers: 2}
	if d := r.Run(5000); d <= 0 {
		t.Error("non-positive duration")
	}
}

func TestConcurrentHLLAccuracy(t *testing.T) {
	r := &ConcurrentHLLAccuracy{Precision: 12}
	est := r.Estimate(10000, 1)
	if est < 8000 || est > 12000 {
		t.Errorf("HLL accuracy estimate %v for n=10000", est)
	}
	// Different trials use different seeds → different estimates.
	if r.Estimate(50000, 1) == r.Estimate(50000, 2) {
		t.Error("trials not independent")
	}
}

func TestQuantilesRankAccuracyWithinBound(t *testing.T) {
	r := &QuantilesRankAccuracy{K: 128}
	eps := quantiles.NormalizedRankError(128)
	for _, n := range []uint64{1000, 50000} {
		worst := r.WorstRankError(n, 3)
		// Worst over 3 quantiles; allow 4ε slack (plus the relaxation
		// term r/n for unflushed... the runner flushes, so just ε).
		if worst > 4*eps {
			t.Errorf("n=%d: worst rank error %v > 4ε", n, worst)
		}
	}
}

func TestQuantilesRankAccuracyAsProfile(t *testing.T) {
	pts := AccuracyProfile(&QuantilesRankAccuracy{K: 64}, AccuracyConfig{
		MinLgU: 8, MaxLgU: 10, PPO: 1,
		Trials: func(uint64) int { return 3 },
	})
	for _, p := range pts {
		// Mean RE is the mean worst rank error: non-negative and small.
		if p.Mean < 0 || p.Mean > 0.2 {
			t.Errorf("InU=%d: mean worst rank error %v", p.InU, p.Mean)
		}
	}
}
