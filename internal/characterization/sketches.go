package characterization

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/stream"
)

// Profiles for the other two framework instantiations. The paper
// evaluates Θ empirically and analyses Quantiles; these runners extend
// the same methodology to concurrent Quantiles and HLL so the three
// instantiations can be compared under identical sweeps.

// ConcurrentQuantilesRunner ingests with the concurrent Quantiles
// sketch (speed profile).
type ConcurrentQuantilesRunner struct {
	K       int
	Writers int
}

// Name implements Runner.
func (r *ConcurrentQuantilesRunner) Name() string {
	return fmt.Sprintf("concurrent-quantiles/k=%d/writers=%d", r.K, r.Writers)
}

// Run implements Runner.
func (r *ConcurrentQuantilesRunner) Run(n uint64) time.Duration {
	c := quantiles.NewConcurrent(quantiles.ConcurrentConfig{K: r.K, Writers: r.Writers})
	defer c.Close()
	parts := stream.Partition(n, r.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			for v := p.Start; v < p.Start+p.Count; v++ {
				w.Update(float64(v))
			}
			w.Flush()
		}(i, p)
	}
	wg.Wait()
	return time.Since(start)
}

// ConcurrentHLLRunner ingests with the concurrent HLL sketch.
type ConcurrentHLLRunner struct {
	Precision uint8
	Writers   int
}

// Name implements Runner.
func (r *ConcurrentHLLRunner) Name() string {
	return fmt.Sprintf("concurrent-hll/p=%d/writers=%d", r.Precision, r.Writers)
}

// Run implements Runner.
func (r *ConcurrentHLLRunner) Run(n uint64) time.Duration {
	c := hll.NewConcurrent(hll.ConcurrentConfig{Precision: r.Precision, Writers: r.Writers})
	defer c.Close()
	parts := stream.Partition(n, r.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			for v := p.Start; v < p.Start+p.Count; v++ {
				w.UpdateUint64(v)
			}
			w.Flush()
		}(i, p)
	}
	wg.Wait()
	return time.Since(start)
}

// ConcurrentHLLAccuracy is the HLL pitchfork runner: relative error of
// the estimate read immediately after ingestion (no flush), like the
// Θ accuracy profile.
type ConcurrentHLLAccuracy struct {
	Precision uint8
}

// Name implements AccuracyRunner.
func (r *ConcurrentHLLAccuracy) Name() string {
	return fmt.Sprintf("accuracy-concurrent-hll/p=%d", r.Precision)
}

// Estimate implements AccuracyRunner.
func (r *ConcurrentHLLAccuracy) Estimate(n uint64, trial int) float64 {
	c := hll.NewConcurrent(hll.ConcurrentConfig{
		Precision: r.Precision, Writers: 1,
		Seed: uint64(trial)*0x9e3779b97f4a7c15 + 1,
	})
	defer c.Close()
	w := c.Writer(0)
	for v := uint64(0); v < n; v++ {
		w.UpdateUint64(v)
	}
	return c.Estimate()
}

// QuantilesRankAccuracy measures the worst rank error over a set of
// query points for the concurrent quantiles sketch — the empirical
// counterpart of §6.2 across stream sizes. It implements
// AccuracyRunner with "estimate" = worst |rank−φ| (so the pitchfork
// renders error magnitude; True value normalisation is 1).
type QuantilesRankAccuracy struct {
	K   int
	Phi []float64
}

// Name implements AccuracyRunner.
func (r *QuantilesRankAccuracy) Name() string {
	return fmt.Sprintf("accuracy-concurrent-quantiles/k=%d", r.K)
}

// WorstRankError runs one trial and returns max over φ of
// |trueRank(returned) − φ|.
func (r *QuantilesRankAccuracy) WorstRankError(n uint64, trial int) float64 {
	c := quantiles.NewConcurrent(quantiles.ConcurrentConfig{
		K: r.K, Writers: 1, Seed: uint64(trial)*31 + 1,
	})
	defer c.Close()
	w := c.Writer(0)
	for v := uint64(0); v < n; v++ {
		w.Update(float64(v)) // value v has exact rank v/n
	}
	w.Flush()
	snap := c.Snapshot()
	var worst float64
	phis := r.Phi
	if len(phis) == 0 {
		phis = []float64{0.1, 0.5, 0.9}
	}
	for _, phi := range phis {
		got := snap.Quantile(phi)
		err := math.Abs(got/float64(n) - phi)
		if err > worst {
			worst = err
		}
	}
	return worst
}

// Estimate implements AccuracyRunner: returns n·(1+worstErr) so the
// generic pitchfork's RE column equals the worst rank error.
func (r *QuantilesRankAccuracy) Estimate(n uint64, trial int) float64 {
	return float64(n) * (1 + r.WorstRankError(n, trial))
}
