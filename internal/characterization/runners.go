package characterization

import (
	"fmt"
	"sync"
	"time"

	"github.com/fcds/fcds/internal/lockbased"
	"github.com/fcds/fcds/internal/stream"
	"github.com/fcds/fcds/internal/theta"
)

// Runner executes one ingestion trial of n unique values and reports
// the elapsed wall-clock time. Each Run builds a fresh sketch.
type Runner interface {
	Name() string
	Run(n uint64) time.Duration
}

// ConcurrentThetaRunner ingests with the paper's concurrent Θ sketch:
// Writers goroutines feed disjoint unique ranges through their writer
// handles.
type ConcurrentThetaRunner struct {
	K          int
	Writers    int
	MaxError   float64 // e; 1.0 disables eager propagation
	BufferSize int     // 0 derives b from (K, MaxError, Writers)
	Seed       uint64
}

// Name implements Runner.
func (r *ConcurrentThetaRunner) Name() string {
	return fmt.Sprintf("concurrent-theta/k=%d/writers=%d/e=%g", r.K, r.Writers, r.MaxError)
}

// Run implements Runner.
func (r *ConcurrentThetaRunner) Run(n uint64) time.Duration {
	cfg := theta.ConcurrentConfig{
		K: r.K, Writers: r.Writers, MaxError: r.MaxError,
		BufferSize: r.BufferSize, Seed: r.Seed,
	}
	c := theta.NewConcurrent(cfg)
	defer c.Close()
	parts := stream.Partition(n, r.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			for v := p.Start; v < p.Start+p.Count; v++ {
				w.UpdateUint64(v)
			}
			w.Flush()
		}(i, p)
	}
	wg.Wait()
	return time.Since(start)
}

// ConcurrentThetaBatchRunner ingests with the concurrent Θ sketch via
// the batch pipeline: each writer fills a ChunkSize slice and hands it
// to UpdateUint64Batch, the way a network feed or log shipper delivers
// events. ChunkSize 1 degenerates to (slightly slower than) the
// per-item path and is useful as a sanity curve.
type ConcurrentThetaBatchRunner struct {
	K          int
	Writers    int
	MaxError   float64 // e; 1.0 disables eager propagation
	BufferSize int     // 0 derives b from (K, MaxError, Writers)
	ChunkSize  int     // batch length per UpdateUint64Batch call
	Seed       uint64
}

// Name implements Runner.
func (r *ConcurrentThetaBatchRunner) Name() string {
	return fmt.Sprintf("concurrent-theta-batch/k=%d/writers=%d/e=%g/chunk=%d",
		r.K, r.Writers, r.MaxError, r.ChunkSize)
}

// Run implements Runner.
func (r *ConcurrentThetaBatchRunner) Run(n uint64) time.Duration {
	chunk := r.ChunkSize
	if chunk <= 0 {
		chunk = 256
	}
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: r.K, Writers: r.Writers, MaxError: r.MaxError,
		BufferSize: r.BufferSize, Seed: r.Seed,
	})
	defer c.Close()
	parts := stream.Partition(n, r.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			buf := make([]uint64, 0, chunk)
			for v := p.Start; v < p.Start+p.Count; v++ {
				buf = append(buf, v)
				if len(buf) == chunk {
					w.UpdateUint64Batch(buf)
					buf = buf[:0]
				}
			}
			w.UpdateUint64Batch(buf)
			w.Flush()
		}(i, p)
	}
	wg.Wait()
	return time.Since(start)
}

// LockThetaRunner ingests with the lock-protected sequential sketch —
// the paper's baseline. Threads goroutines contend on one RWMutex.
type LockThetaRunner struct {
	K       int
	Threads int
	Seed    uint64
}

// Name implements Runner.
func (r *LockThetaRunner) Name() string {
	return fmt.Sprintf("lock-theta/k=%d/threads=%d", r.K, r.Threads)
}

// Run implements Runner.
func (r *LockThetaRunner) Run(n uint64) time.Duration {
	seed := r.Seed
	if seed == 0 {
		seed = 9001
	}
	s := lockbased.NewThetaSeeded(r.K, seed)
	parts := stream.Partition(n, r.Threads)
	start := time.Now()
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p stream.Range) {
			defer wg.Done()
			for v := p.Start; v < p.Start+p.Count; v++ {
				s.UpdateUint64(v)
			}
		}(p)
	}
	wg.Wait()
	return time.Since(start)
}

// mixedThetaRunner is Figure 7's workload: writer threads plus
// background reader threads issuing a query every readPause (the
// paper uses 1ms). Run reports the ingestion time of n uniques;
// readers run concurrently and stop when ingestion completes.
type mixedThetaRunner struct {
	name       string
	readers    int
	readPause  time.Duration
	concurrent bool
	k          int
	writers    int
	maxError   float64
}

// NewMixedThetaRunner builds Figure 7's runner. concurrent selects the
// concurrent sketch (true) or the lock-based baseline (false).
func NewMixedThetaRunner(concurrent bool, k, writers, readers int, readPause time.Duration, maxError float64) Runner {
	kind := "lock"
	if concurrent {
		kind = "concurrent"
	}
	return &mixedThetaRunner{
		name: fmt.Sprintf("mixed-%s-theta/k=%d/writers=%d/readers=%d",
			kind, k, writers, readers),
		readers: readers, readPause: readPause,
		concurrent: concurrent, k: k, writers: writers, maxError: maxError,
	}
}

// Name implements Runner.
func (r *mixedThetaRunner) Name() string { return r.name }

// Run implements Runner.
func (r *mixedThetaRunner) Run(n uint64) time.Duration {
	var update func(writer int, v uint64)
	var flush func(writer int)
	var query func() float64
	var done func()

	if r.concurrent {
		c := theta.NewConcurrent(theta.ConcurrentConfig{
			K: r.k, Writers: r.writers, MaxError: r.maxError,
		})
		handles := make([]*theta.ConcurrentWriter, r.writers)
		for i := range handles {
			handles[i] = c.Writer(i)
		}
		update = func(w int, v uint64) { handles[w].UpdateUint64(v) }
		flush = func(w int) { handles[w].Flush() }
		query = c.Estimate
		done = c.Close
	} else {
		s := lockbased.NewTheta(r.k)
		update = func(_ int, v uint64) { s.UpdateUint64(v) }
		flush = func(int) {}
		query = s.Estimate
		done = func() {}
	}
	defer done()

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for i := 0; i < r.readers; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = query()
				time.Sleep(r.readPause)
			}
		}()
	}

	parts := stream.Partition(n, r.writers)
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			for v := p.Start; v < p.Start+p.Count; v++ {
				update(i, v)
			}
			flush(i)
		}(i, p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	rwg.Wait()
	return elapsed
}
