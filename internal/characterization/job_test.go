package characterization

import (
	"strings"
	"testing"
)

func TestParseConf(t *testing.T) {
	in := `
# figure 6 concurrent, 1 writer
JobProfile=ConcurrentThetaMultithreadedSpeedProfile
Trials_lgMinU=5   # inline comment
Trials_lgMaxU=10
LgK=12
CONCURRENT_THETA_maxConcurrencyError=0.04
CONCURRENT_THETA_numWriters=4 // another comment style
CONCURRENT_THETA_ThreadSafe=true
`
	conf, err := ParseConf(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if conf["JobProfile"] != "ConcurrentThetaMultithreadedSpeedProfile" {
		t.Errorf("JobProfile = %q", conf["JobProfile"])
	}
	if conf["Trials_lgMinU"] != "5" || conf["CONCURRENT_THETA_numWriters"] != "4" {
		t.Errorf("comment stripping broken: %v", conf)
	}
	if len(conf.ConfKeys()) != 7 {
		t.Errorf("keys: %v", conf.ConfKeys())
	}
}

func TestParseConfErrors(t *testing.T) {
	if _, err := ParseConf(strings.NewReader("not a key value line")); err == nil {
		t.Error("missing '=' accepted")
	}
}

func TestRunJobSpeedConcurrent(t *testing.T) {
	conf := Conf{
		"JobProfile":                           "ConcurrentThetaMultithreadedSpeedProfile",
		"Trials_lgMinU":                        "5",
		"Trials_lgMaxU":                        "8",
		"Trials_PPO":                           "1",
		"Trials_lgMaxTrials":                   "2",
		"Trials_lgMinTrials":                   "1",
		"LgK":                                  "8",
		"CONCURRENT_THETA_numWriters":          "2",
		"CONCURRENT_THETA_maxConcurrencyError": "1",
	}
	var sb strings.Builder
	if err := RunJob(conf, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "InU\tTrials\tnS/u") {
		t.Errorf("missing header: %q", out)
	}
	// 4 grid points (2^5..2^8, ppo 1) → 4 data rows + 2 header lines.
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 5 {
		t.Errorf("line count %d: %q", got, out)
	}
}

func TestRunJobSpeedLockBased(t *testing.T) {
	conf := Conf{
		"JobProfile":                  "com.yahoo.sketches.characterization.uniquecount.ConcurrentThetaMultithreadedSpeedProfile",
		"Trials_lgMinU":               "5",
		"Trials_lgMaxU":               "6",
		"Trials_PPO":                  "1",
		"Trials_lgMaxTrials":          "1",
		"Trials_lgMinTrials":          "0",
		"LgK":                         "8",
		"CONCURRENT_THETA_ThreadSafe": "false",
	}
	var sb strings.Builder
	if err := RunJob(conf, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lock-theta") {
		t.Errorf("lock-based runner not used: %q", sb.String())
	}
}

func TestRunJobAccuracy(t *testing.T) {
	conf := Conf{
		"JobProfile":         "ConcurrentThetaAccuracyProfile",
		"Trials_lgMinU":      "4",
		"Trials_lgMaxU":      "6",
		"Trials_PPO":         "1",
		"Trials_lgMaxTrials": "3",
		"Trials_lgMinTrials": "2",
		"LgK":                "8",
	}
	var sb strings.Builder
	if err := RunJob(conf, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MeanRE") {
		t.Errorf("accuracy header missing: %q", sb.String())
	}
}

func TestRunJobMixed(t *testing.T) {
	conf := Conf{
		"JobProfile":                  "ConcurrentThetaMixedSpeedProfile",
		"Trials_lgMinU":               "5",
		"Trials_lgMaxU":               "6",
		"Trials_PPO":                  "1",
		"Trials_lgMaxTrials":          "1",
		"Trials_lgMinTrials":          "0",
		"LgK":                         "8",
		"CONCURRENT_THETA_numWriters": "1",
		"CONCURRENT_THETA_numReaders": "2",
	}
	var sb strings.Builder
	if err := RunJob(conf, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mixed-concurrent-theta") {
		t.Errorf("mixed runner not used: %q", sb.String())
	}
}

func TestRunJobErrors(t *testing.T) {
	cases := []Conf{
		{},                            // no profile
		{"JobProfile": "NoSuchThing"}, // unknown profile
		{"JobProfile": "ConcurrentThetaMultithreadedSpeedProfile", "Trials_lgMinU": "x"},
		{"JobProfile": "ConcurrentThetaMultithreadedSpeedProfile", "Trials_lgMinU": "9", "Trials_lgMaxU": "5"},
		{"JobProfile": "ConcurrentThetaAccuracyProfile", "CONCURRENT_THETA_ThreadSafe": "false"},
		{"JobProfile": "ConcurrentThetaMultithreadedSpeedProfile", "CONCURRENT_THETA_maxConcurrencyError": "zz"},
		{"JobProfile": "ConcurrentThetaMultithreadedSpeedProfile", "CONCURRENT_THETA_ThreadSafe": "maybe"},
	}
	for i, conf := range cases {
		var sb strings.Builder
		if err := RunJob(conf, &sb); err == nil {
			t.Errorf("case %d: invalid conf accepted", i)
		}
	}
}
