// Package characterization reimplements the Apache DataSketches
// characterization suite the paper's evaluation uses (§7.1): speed
// profiles (ns/update as a function of stream size, Figures 6 and 8),
// accuracy "pitchfork" profiles (mean and quantiles of the relative
// error distribution, Figure 5), scalability profiles (throughput as a
// function of thread count, Figure 1) and mixed read/write profiles
// (Figure 7).
//
// The methodology matches the original: logarithmic stream-size grids
// with a configurable number of points per octave, many trials at
// small sizes tapering off at large ones, and rows reported as
// (InU, Trials, nS/u) exactly like the Java suite's SpeedProfile
// output.
package characterization

import (
	"math"
	"sort"
)

// GridPoints returns the logarithmic stream-size grid: ppo points per
// octave from 2^minLg to 2^maxLg inclusive, deduplicated.
func GridPoints(minLg, maxLg, ppo int) []uint64 {
	if minLg < 0 || maxLg < minLg || ppo < 1 {
		panic("characterization: invalid grid parameters")
	}
	var out []uint64
	var prev uint64
	for lg := minLg; lg <= maxLg; lg++ {
		for j := 0; j < ppo; j++ {
			if lg == maxLg && j > 0 {
				break
			}
			x := uint64(math.Round(math.Exp2(float64(lg) + float64(j)/float64(ppo))))
			if x > prev {
				out = append(out, x)
				prev = x
			}
		}
	}
	return out
}

// TrialsFunc maps a stream size to a trial count. DataSketches uses
// very many trials at the low end and few at the high end because
// small streams suffer more measurement noise.
type TrialsFunc func(n uint64) int

// TaperedTrials returns a TrialsFunc that runs maxTrials at sizes <=
// loN, minTrials at sizes >= hiN, and geometrically interpolates in
// between.
func TaperedTrials(maxTrials, minTrials int, loN, hiN uint64) TrialsFunc {
	if maxTrials < minTrials || loN >= hiN {
		panic("characterization: invalid taper")
	}
	return func(n uint64) int {
		switch {
		case n <= loN:
			return maxTrials
		case n >= hiN:
			return minTrials
		}
		// Geometric interpolation in log-log space.
		frac := (math.Log(float64(n)) - math.Log(float64(loN))) /
			(math.Log(float64(hiN)) - math.Log(float64(loN)))
		t := float64(maxTrials) * math.Pow(float64(minTrials)/float64(maxTrials), frac)
		if t < float64(minTrials) {
			t = float64(minTrials)
		}
		return int(t + 0.5)
	}
}

// quantileOf returns the q-quantile (0..1) of xs by sorting a copy.
func quantileOf(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
