package characterization

import (
	"math"
	"testing"
	"time"
)

func TestGridPoints(t *testing.T) {
	g := GridPoints(4, 6, 2)
	// 2^4, 2^4.5, 2^5, 2^5.5, 2^6 → 16, 23, 32, 45, 64.
	want := []uint64{16, 23, 32, 45, 64}
	if len(g) != len(want) {
		t.Fatalf("grid %v, want %v", g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("grid %v, want %v", g, want)
		}
	}
}

func TestGridPointsMonotoneDeduped(t *testing.T) {
	g := GridPoints(0, 10, 8)
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing at %d: %v", i, g[i])
		}
	}
	if g[0] != 1 || g[len(g)-1] != 1024 {
		t.Errorf("grid endpoints %d..%d", g[0], g[len(g)-1])
	}
}

func TestGridPointsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GridPoints(-1, 5, 1) },
		func() { GridPoints(5, 4, 1) },
		func() { GridPoints(1, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid grid did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTaperedTrials(t *testing.T) {
	f := TaperedTrials(1024, 4, 100, 100000)
	if f(50) != 1024 || f(100) != 1024 {
		t.Error("low end not maxTrials")
	}
	if f(100000) != 4 || f(1<<30) != 4 {
		t.Error("high end not minTrials")
	}
	mid := f(3162) // geometric midpoint → ~sqrt(1024*4) = 64
	if mid < 32 || mid > 128 {
		t.Errorf("midpoint trials = %d, want ~64", mid)
	}
	// Monotone non-increasing.
	prev := f(1)
	for _, n := range []uint64{10, 100, 1000, 10000, 100000, 1000000} {
		cur := f(n)
		if cur > prev {
			t.Fatalf("trials increased at %d", n)
		}
		prev = cur
	}
}

func TestQuantileOf(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := quantileOf(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantileOf(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantileOf(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if !math.IsNaN(quantileOf(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

// fakeRunner returns a scripted duration proportional to n with a
// per-name constant, letting profile logic be tested quickly.
type fakeRunner struct {
	name        string
	nsPerUpdate float64
}

func (f *fakeRunner) Name() string { return f.name }
func (f *fakeRunner) Run(n uint64) time.Duration {
	return time.Duration(f.nsPerUpdate * float64(n))
}

func TestSpeedProfileShape(t *testing.T) {
	r := &fakeRunner{name: "fake", nsPerUpdate: 25}
	pts := SpeedProfile(r, SpeedConfig{
		MinLgU: 4, MaxLgU: 8, PPO: 1,
		Trials: func(uint64) int { return 3 },
	})
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.NsPerUpdate-25) > 1 {
			t.Errorf("ns/u = %v, want 25", p.NsPerUpdate)
		}
		if p.Trials != 3 {
			t.Errorf("trials = %d", p.Trials)
		}
	}
}

func TestSpeedup(t *testing.T) {
	a := []SpeedPoint{{InU: 16, NsPerUpdate: 100}, {InU: 32, NsPerUpdate: 50}}
	b := []SpeedPoint{{InU: 16, NsPerUpdate: 10}, {InU: 32, NsPerUpdate: 50}}
	s := Speedup(a, b)
	if s[0].Speedup != 10 || s[1].Speedup != 1 {
		t.Errorf("speedup %v", s)
	}
}

func TestSpeedupPanicsOnGridMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched grids did not panic")
		}
	}()
	Speedup([]SpeedPoint{{InU: 1}}, []SpeedPoint{{InU: 2}})
}

func TestCrossingPoint(t *testing.T) {
	fast := []SpeedPoint{
		{InU: 10, NsPerUpdate: 100},
		{InU: 100, NsPerUpdate: 30},
		{InU: 1000, NsPerUpdate: 10},
	}
	slow := []SpeedPoint{
		{InU: 10, NsPerUpdate: 40},
		{InU: 100, NsPerUpdate: 40},
		{InU: 1000, NsPerUpdate: 40},
	}
	if got := CrossingPoint(fast, slow); got != 100 {
		t.Errorf("crossing = %d, want 100", got)
	}
	// slow beats fast only at the first point, not beyond: the crossing
	// must be "stable for the rest of the grid", so none exists.
	if got := CrossingPoint(slow, fast); got != 0 {
		t.Errorf("crossing = %d, want 0 (not stable)", got)
	}
}

func TestCrossingPointNone(t *testing.T) {
	fast := []SpeedPoint{{InU: 10, NsPerUpdate: 100}}
	slow := []SpeedPoint{{InU: 10, NsPerUpdate: 1}}
	if got := CrossingPoint(fast, slow); got != 0 {
		t.Errorf("crossing = %d, want 0 (never crosses)", got)
	}
}

func TestAccuracyProfileSequential(t *testing.T) {
	r := &SequentialThetaAccuracy{K: 256}
	pts := AccuracyProfile(r, AccuracyConfig{
		MinLgU: 4, MaxLgU: 10, PPO: 1,
		Trials: func(uint64) int { return 8 },
	})
	for _, p := range pts {
		// Below k the sequential sketch is exact: all quantiles zero.
		if p.InU <= 256 {
			if p.Mean != 0 || p.Median != 0 || p.Q99 != 0 {
				t.Errorf("InU=%d: sequential sketch inexact below k: %+v", p.InU, p)
			}
		}
		if p.Q01 > p.Median || p.Median > p.Q99 {
			t.Errorf("InU=%d: quantiles out of order", p.InU)
		}
	}
}

func TestAccuracyProfileConcurrentNoEagerUnderestimates(t *testing.T) {
	// Figure 5a's signature: without eager propagation, small streams
	// are grossly underestimated (mean RE approaches -1 at tiny sizes).
	r := &ConcurrentThetaAccuracy{K: 256, MaxError: 1.0, BufferSize: 64}
	pts := AccuracyProfile(r, AccuracyConfig{
		MinLgU: 3, MaxLgU: 5, PPO: 1,
		Trials: func(uint64) int { return 8 },
	})
	for _, p := range pts {
		if p.InU <= 32 && p.Mean > -0.3 {
			t.Errorf("InU=%d: mean RE = %v; expected strong underestimation without eager (b=64 > stream)", p.InU, p.Mean)
		}
	}
}

func TestAccuracyProfileConcurrentEagerIsExactSmall(t *testing.T) {
	// Figure 5b: with eager propagation small streams are exact.
	r := &ConcurrentThetaAccuracy{K: 256, MaxError: 0.04}
	pts := AccuracyProfile(r, AccuracyConfig{
		MinLgU: 3, MaxLgU: 6, PPO: 1,
		Trials: func(uint64) int { return 4 },
	})
	for _, p := range pts {
		if p.Mean != 0 {
			t.Errorf("InU=%d: eager small-stream RE = %v, want 0", p.InU, p.Mean)
		}
	}
}

func TestScalabilityProfileRuns(t *testing.T) {
	pts := ScalabilityProfile(ScalabilityConfig{
		Threads: []int{1, 2},
		N:       20000,
		Trials:  2,
		Build: func(th int) Runner {
			return &ConcurrentThetaRunner{K: 256, Writers: th, MaxError: 1.0}
		},
	})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.MopsSec <= 0 {
			t.Errorf("threads=%d: throughput %v", p.Threads, p.MopsSec)
		}
	}
}

func TestConcurrentAndLockRunnersProduceTime(t *testing.T) {
	for _, r := range []Runner{
		&ConcurrentThetaRunner{K: 256, Writers: 2, MaxError: 0.04},
		&LockThetaRunner{K: 256, Threads: 2},
		NewMixedThetaRunner(true, 256, 1, 2, time.Millisecond, 0.04),
		NewMixedThetaRunner(false, 256, 1, 2, time.Millisecond, 0.04),
	} {
		if r.Name() == "" {
			t.Error("empty runner name")
		}
		if d := r.Run(5000); d <= 0 {
			t.Errorf("%s: non-positive duration", r.Name())
		}
	}
}
