package stream

import "testing"

func TestUniqueDistinct(t *testing.T) {
	g := NewUnique(100)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := g.Next()
		if v < 100 || seen[v] {
			t.Fatalf("value %d repeated or below offset", v)
		}
		seen[v] = true
	}
}

func TestScrambledDistinct(t *testing.T) {
	g := NewScrambled(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		v := g.Next()
		if seen[v] {
			t.Fatalf("scrambled generator repeated %d", v)
		}
		seen[v] = true
	}
}

func TestScrambledDisjointOffsets(t *testing.T) {
	a, b := NewScrambled(0), NewScrambled(1000)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.Next()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.Next()] {
			t.Fatal("offset-disjoint scrambled generators collided")
		}
	}
}

func TestCycle(t *testing.T) {
	g := NewCycle(3)
	want := []uint64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if v := g.Next(); v != w {
			t.Fatalf("cycle[%d] = %d, want %d", i, v, w)
		}
	}
}

func TestCyclePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCycle(0) did not panic")
		}
	}()
	NewCycle(0)
}

func TestPartitionExact(t *testing.T) {
	tests := []struct {
		n       uint64
		writers int
	}{
		{100, 4}, {101, 4}, {7, 3}, {1, 5}, {0, 2},
	}
	for _, tc := range tests {
		parts := Partition(tc.n, tc.writers)
		if len(parts) != tc.writers {
			t.Fatalf("got %d parts", len(parts))
		}
		var total uint64
		var next uint64
		for _, p := range parts {
			if p.Start != next {
				t.Fatalf("ranges not contiguous: start %d want %d", p.Start, next)
			}
			next = p.Start + p.Count
			total += p.Count
		}
		if total != tc.n {
			t.Fatalf("partition of %d covers %d", tc.n, total)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition with 0 writers did not panic")
		}
	}()
	Partition(10, 0)
}
