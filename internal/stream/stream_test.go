package stream

import "testing"

func TestUniqueDistinct(t *testing.T) {
	g := NewUnique(100)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := g.Next()
		if v < 100 || seen[v] {
			t.Fatalf("value %d repeated or below offset", v)
		}
		seen[v] = true
	}
}

func TestScrambledDistinct(t *testing.T) {
	g := NewScrambled(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		v := g.Next()
		if seen[v] {
			t.Fatalf("scrambled generator repeated %d", v)
		}
		seen[v] = true
	}
}

func TestScrambledDisjointOffsets(t *testing.T) {
	a, b := NewScrambled(0), NewScrambled(1000)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.Next()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.Next()] {
			t.Fatal("offset-disjoint scrambled generators collided")
		}
	}
}

func TestCycle(t *testing.T) {
	g := NewCycle(3)
	want := []uint64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if v := g.Next(); v != w {
			t.Fatalf("cycle[%d] = %d, want %d", i, v, w)
		}
	}
}

func TestCyclePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCycle(0) did not panic")
		}
	}()
	NewCycle(0)
}

func TestPartitionExact(t *testing.T) {
	tests := []struct {
		n       uint64
		writers int
	}{
		{100, 4}, {101, 4}, {7, 3}, {1, 5}, {0, 2},
	}
	for _, tc := range tests {
		parts := Partition(tc.n, tc.writers)
		if len(parts) != tc.writers {
			t.Fatalf("got %d parts", len(parts))
		}
		var total uint64
		var next uint64
		for _, p := range parts {
			if p.Start != next {
				t.Fatalf("ranges not contiguous: start %d want %d", p.Start, next)
			}
			next = p.Start + p.Count
			total += p.Count
		}
		if total != tc.n {
			t.Fatalf("partition of %d covers %d", tc.n, total)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition with 0 writers did not panic")
		}
	}()
	Partition(10, 0)
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	const n, draws = 1000, 100000
	a := NewZipf(n, 1.2, 42)
	b := NewZipf(n, 1.2, 42)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, va, vb)
		}
		if va >= n {
			t.Fatalf("draw %d: value %d out of range [0,%d)", i, va, n)
		}
		counts[va]++
	}
	// Zipfian shape: rank 0 strictly dominates, and the head (top 1%)
	// carries a disproportionate share of the mass.
	if counts[0] <= counts[n/2] {
		t.Errorf("rank 0 drawn %d times, rank %d drawn %d: no head bias", counts[0], n/2, counts[n/2])
	}
	head := 0
	for i := 0; i < n/100; i++ {
		head += counts[i]
	}
	if head < draws/4 {
		t.Errorf("top 1%% of keys drew %d of %d: distribution too flat for skew 1.2", head, draws)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1.2, 1) },
		func() { NewZipf(10, 1.0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
