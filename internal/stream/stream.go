// Package stream provides the workload generators used by the paper's
// evaluation (§7.1): continuous streams of unique values (the
// write-only workload), duplicated streams, zipfian key draws (the
// keyed multi-tenant workload), and partitioning helpers for splitting
// a stream across N writer threads.
package stream

import "math/rand"

// Generator yields stream items. Implementations are not safe for
// concurrent use; give each writer its own generator.
type Generator interface {
	Next() uint64
}

// Unique yields consecutive distinct values starting at Offset. Two
// Unique generators with disjoint ranges never collide, which is how
// multi-writer workloads feed disjoint sub-streams.
type Unique struct {
	next uint64
}

// NewUnique returns a generator of offset, offset+1, ...
func NewUnique(offset uint64) *Unique { return &Unique{next: offset} }

// Next implements Generator.
func (u *Unique) Next() uint64 {
	v := u.next
	u.next++
	return v
}

// Scrambled yields distinct values in pseudo-random order: consecutive
// counters passed through a fixed 64-bit bijection (SplitMix64's
// finalizer). Useful when value order must not correlate with hash
// order.
type Scrambled struct {
	next uint64
}

// NewScrambled returns a scrambled-unique generator starting at offset.
func NewScrambled(offset uint64) *Scrambled { return &Scrambled{next: offset} }

// Next implements Generator.
func (s *Scrambled) Next() uint64 {
	v := s.next
	s.next++
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// Cycle yields 0..Uniques-1 repeatedly: a duplicate-heavy workload
// with a known true cardinality.
type Cycle struct {
	uniques uint64
	i       uint64
}

// NewCycle returns a cycling generator over `uniques` distinct values.
func NewCycle(uniques uint64) *Cycle {
	if uniques == 0 {
		panic("stream: Cycle needs at least one unique value")
	}
	return &Cycle{uniques: uniques}
}

// Next implements Generator.
func (c *Cycle) Next() uint64 {
	v := c.i % c.uniques
	c.i++
	return v
}

// Zipf yields values in [0, n) drawn from a zipfian distribution —
// the canonical keyed workload shape (a few hot tenants, a long tail
// of cold ones). Determinism comes from the seed; two generators with
// the same parameters and seed yield the same sequence.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a zipfian generator over n values with skew s > 1
// (s near 1 is flattest; 1.1 is a common web-workload shape).
func NewZipf(n uint64, s float64, seed uint64) *Zipf {
	if n == 0 {
		panic("stream: Zipf needs at least one value")
	}
	if s <= 1 {
		panic("stream: Zipf skew must be > 1")
	}
	return &Zipf{z: rand.NewZipf(rand.New(rand.NewSource(int64(seed))), s, 1, n-1)}
}

// Next implements Generator.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Range describes a writer's share of a partitioned stream.
type Range struct {
	Start uint64 // first value
	Count uint64 // number of values
}

// Partition splits n items across `writers` near-equal disjoint
// ranges (the multi-writer ingestion pattern of §7).
func Partition(n uint64, writers int) []Range {
	if writers <= 0 {
		panic("stream: writers must be positive")
	}
	out := make([]Range, writers)
	per := n / uint64(writers)
	rem := n % uint64(writers)
	var start uint64
	for i := range out {
		count := per
		if uint64(i) < rem {
			count++
		}
		out[i] = Range{Start: start, Count: count}
		start += count
	}
	return out
}
