package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/fcds/fcds/internal/metrics"
)

// countingPropagable is a minimal propagation unit: runPropagation just
// bumps a counter, so a submit→run round trip measures the pool's
// scheduling machinery and nothing else.
type countingPropagable struct {
	runs atomic.Int64
}

func (c *countingPropagable) runPropagation() { c.runs.Add(1) }

// TestPoolRunLoopZeroAllocs pins the pool's scheduling hot path —
// submit, run-queue pop, wake handshake, propagation run — at zero
// allocations per cycle with the metrics instrumentation registered.
// The wakes/runs/stolen counters are plain atomics in the padded
// worker structs and every exported series is func-backed, read only
// at scrape time, so registration must not cost the run loop anything.
func TestPoolRunLoopZeroAllocs(t *testing.T) {
	p := NewPropagatorPool(1)
	defer p.Close()
	reg := metrics.NewRegistry()
	RegisterPoolMetrics(reg, p)

	var c countingPropagable
	home := p.attach(0)
	defer p.detach()

	cycle := func() {
		want := c.runs.Load() + 1
		p.submit(&c, home)
		for c.runs.Load() < want {
			runtime.Gosched()
		}
	}
	// Warm up: let the worker allocate its run-queue backing array and
	// settle into the park/unpark steady state.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("instrumented submit→run cycle allocates %.1f allocs/op, want 0", avg)
	}
	// The registry must still see the traffic it was registered for.
	vals := reg.Values()
	if vals[`fcds_pool_worker_runs_total{worker="0"}`] < 164 {
		t.Errorf("fcds_pool_worker_runs_total = %v, want >= 164", vals[`fcds_pool_worker_runs_total{worker="0"}`])
	}
}
