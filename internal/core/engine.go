package core

// This file defines the mergeable-sketch engine abstraction: the one
// place the sketch lifecycle — create, fused batch ingest, wait-free
// query, compact snapshot, serialize, merge, reset — is described, so
// generic composites (keyed tables, epoch-ring windows) are written
// once and instantiated per family. Each sketch family (Θ, quantiles,
// HLL) implements Engine exactly once, in its own package.
//
// Type parameters, shared by every interface here:
//
//	V — the raw value type writers ingest (uint64 items, float64
//	    samples, ...);
//	S — the wait-free query snapshot type (an estimate, an immutable
//	    quantiles snapshot, ...);
//	C — the compact type: an immutable point-in-time copy that can be
//	    serialized, merged and persisted independently of the live
//	    sketch.

// Wire identifiers of the sketch families. core is the root of the
// dependency graph, so the registry lives here; the binary snapshot
// formats (table, window) embed these bytes in their headers.
const (
	KindTheta     byte = 1
	KindQuantiles byte = 2
	KindHLL       byte = 3
)

// CompactCodec is the compact-sketch half of an Engine: everything
// needed to identify, merge and (de)serialize compacts without touching
// a live concurrent sketch. Snapshot containers hold a CompactCodec so
// they need no live-sketch type parameters.
type CompactCodec[C any] interface {
	// Kind is the family's wire identifier (KindTheta, ...).
	Kind() byte
	// Param is the family's accuracy parameter (k or precision) —
	// compacts only merge across equal (Kind, Param).
	Param() uint32
	// MergeCompact merges two compacts into a new one; neither input is
	// mutated.
	MergeCompact(a, b C) (C, error)
	// MarshalCompact serializes one compact.
	MarshalCompact(c C) ([]byte, error)
	// UnmarshalCompact parses a compact serialized by MarshalCompact,
	// validating the bytes.
	UnmarshalCompact(data []byte) (C, error)
}

// Aggregator folds many compacts into one — the rollup/window-merge
// primitive. Unlike pairwise MergeCompact it reuses one accumulator, so
// merging n compacts is one pass, not n allocations. Not safe for
// concurrent use; Result finalizes the aggregator (do not Add after).
type Aggregator[C any] interface {
	// Add folds one compact into the accumulator. It fails only on
	// incompatible inputs (foreign seed or precision).
	Add(c C) error
	// Result returns the merged compact; with no Adds, the family's
	// empty compact.
	Result() C
}

// EngineSketch is one live concurrent sketch as generic composites see
// it: N writer slots, a wait-free query, and a serializable compact
// view. The writer-slot contract is the framework's: slot i may be
// driven by at most one goroutine at a time (its writer, or an owner
// holding exclusive access, e.g. a table evictor).
type EngineSketch[V, S, C any] interface {
	// Update ingests one value through writer slot i.
	Update(writer int, v V)
	// UpdateBatch ingests a slice of values through writer slot i via
	// the family's fused hash+pre-filter batch pipeline.
	UpdateBatch(writer int, vals []V)
	// UpdateHashedBatch ingests values that were already hashed by the
	// family's item hash (the keyed string-ingestion path hashes in the
	// grouping pass). Families whose value type is not a hash space
	// (quantiles) treat it as UpdateBatch.
	UpdateHashedBatch(writer int, hs []V)
	// Flush hands off writer slot i's buffered updates and waits until
	// they are folded into the global sketch.
	Flush(writer int)
	// Query returns the wait-free snapshot (a single atomic read).
	Query() S
	// Compact returns an immutable serializable point-in-time copy. It
	// briefly synchronises with the propagator (never with writers) and
	// may miss up to the relaxation bound of recent updates.
	Compact() C
	// Reset restores the empty state. The caller must hold the same
	// exclusivity as for Close: no concurrent writer-slot use.
	Reset()
	// Close detaches the sketch from propagation after draining every
	// handed-off buffer.
	Close()
}

// Engine describes one mergeable-sketch family bound to a fixed
// configuration (accuracy parameter, writer count, buffer size, seed).
// It is the single seam between the generic composites and the three
// families: keyed tables instantiate one sketch per key through it, and
// windowed sketches one per epoch.
type Engine[V, S, C any] interface {
	CompactCodec[C]
	// NewSketch creates one live concurrent sketch attached to the given
	// propagation executor (no affinity preference: the pool assigns a
	// home worker round-robin).
	NewSketch(pool *PropagatorPool) EngineSketch[V, S, C]
	// NewSketchAffine is NewSketch with a stable worker-affinity key:
	// equal nonzero keys always land on the same pool worker, so a
	// recreated sketch (same table key in a later epoch, a promoted hot
	// key) keeps its home worker and its global sketch stays hot in one
	// worker's cache. Zero behaves like NewSketch.
	NewSketchAffine(pool *PropagatorPool, affinityKey uint64) EngineSketch[V, S, C]
	// NewAggregator returns a fresh many-compact merger.
	NewAggregator() Aggregator[C]
	// QueryCompact answers the family's query from a compact alone —
	// how merged (rolled-up, windowed) compacts are queried.
	QueryCompact(c C) S
	// NumWriters is N, the writer-slot count each NewSketch sketch has.
	NumWriters() int
	// Relaxation is the per-sketch bound r = 2·N·b on updates a query
	// of one NewSketch sketch may miss (Theorem 1).
	Relaxation() int
}

// ScalableEngine is an optional Engine capability: deriving a variant
// of the same family, seed and writer count with the next-larger
// per-sketch configuration. It is the seam adaptive per-key policies
// hang on — a keyed table promotes a hot key by rebuilding its sketch
// through the scaled engine and folding the old state back in via the
// family's compact-merge path.
//
// Each family scales what its merge semantics allow: Θ and quantiles
// double the accuracy parameter and the local buffer size b (their
// compact merges are defined across parameters); HLL doubles only b
// (register merges require equal precision). Scaling b raises that
// sketch's relaxation bound r = 2·N·b proportionally.
type ScalableEngine[V, S, C any] interface {
	Engine[V, S, C]
	// ScaleUp returns the next-larger engine, or ok=false when every
	// scalable parameter is already at its cap.
	ScaleUp() (eng Engine[V, S, C], ok bool)
	// NewSketchSeeded is NewSketchAffine preloaded with a compact: the
	// sketch starts from the compact's state (sample set, registers,
	// filter hint) instead of empty, so a promoted rebuild keeps both
	// its history and its earned pre-filtering strength — a Θ sketch
	// rebuilt empty would admit everything until its Θ re-tightened.
	// Seeding happens before the sketch is exposed to any writer or
	// propagator, so it needs no synchronisation.
	NewSketchSeeded(pool *PropagatorPool, affinityKey uint64, from C) EngineSketch[V, S, C]
}

// HintedEngine is an optional Engine capability: deriving a compact
// that carries a family's earned pre-filtering strength but none of
// its data. The epoch ring uses it at rotation — a freshly rotated
// epoch seeded with the previous epoch's (loosened) Θ hint starts
// discarding most of the stream immediately instead of re-paying the
// eager phase from scratch, and because the hint carries no sample
// set, the new epoch still counts only its own items.
//
// ok=false means the source compact has no filter strength worth
// carrying (e.g. a Θ sketch still in exact mode) or the family has no
// data-free filter at all; callers fall back to an unseeded sketch.
type HintedEngine[C any] interface {
	// HintCompact derives the data-free filter-hint compact.
	HintCompact(from C) (hint C, ok bool)
}

// ReseedableSketch is an optional EngineSketch capability: Reset
// seeded from a compact (typically a HintCompact result) instead of
// to the fully empty state, reusing the sketch's propagation
// attachment and writer slots. Same exclusivity contract as Reset.
type ReseedableSketch[C any] interface {
	// ResetSeeded restores the state NewSketchSeeded would create.
	ResetSeeded(from C)
}
