package core

import (
	"sync"
	"testing"
)

func TestBufferAdaptorApplied(t *testing.T) {
	// The adaptor fires after each handoff with the latest hint.
	cfg := Config{
		Writers: 1, BufferSize: 4, DoubleBuffering: true,
		BufferAdaptor: func(hint uint64, cur int) int {
			if hint == 99 {
				return 32
			}
			return cur
		},
	}
	s, g := newCounting(cfg)
	defer s.Close()
	g.hintVal.Store(99)
	w := s.Writer(0)
	if w.CurrentBufferSize() != 4 {
		t.Fatalf("initial b = %d", w.CurrentBufferSize())
	}
	for i := 0; i < 8; i++ { // two handoffs at b=4
		w.Update(1)
	}
	w.Flush()
	if w.CurrentBufferSize() != 32 {
		t.Errorf("b after adaptation = %d, want 32", w.CurrentBufferSize())
	}
}

func TestBufferAdaptorClamped(t *testing.T) {
	for _, raw := range []int{-5, 0, MaxAdaptiveBuffer * 10} {
		cfg := Config{
			Writers: 1, BufferSize: 2, DoubleBuffering: true,
			BufferAdaptor: func(uint64, int) int { return raw },
		}
		s, _ := newCounting(cfg)
		w := s.Writer(0)
		for i := 0; i < 4; i++ {
			w.Update(1)
		}
		w.Flush()
		b := w.CurrentBufferSize()
		if b < 1 || b > MaxAdaptiveBuffer {
			t.Errorf("adaptor result %d not clamped: b = %d", raw, b)
		}
		s.Close()
	}
}

func TestAdaptiveRelaxationReportsCap(t *testing.T) {
	cfg := Config{
		Writers: 2, BufferSize: 4, DoubleBuffering: true,
		BufferAdaptor: func(uint64, int) int { return 100 },
	}
	s, _ := newCounting(cfg)
	defer s.Close()
	if r := s.Relaxation(); r != 2*2*MaxAdaptiveBuffer {
		t.Errorf("relaxation = %d, want worst-case cap %d", r, 2*2*MaxAdaptiveBuffer)
	}
}

func TestAdaptiveCorrectnessUnderConcurrency(t *testing.T) {
	// Growing buffers mid-stream must not lose updates.
	cfg := Config{
		Writers: 2, BufferSize: 2, DoubleBuffering: true,
		BufferAdaptor: func(hint uint64, cur int) int {
			if cur < 64 {
				return cur * 2 // grow geometrically each handoff
			}
			return cur
		},
	}
	s, _ := newCounting(cfg)
	defer s.Close()
	const per = 20000
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < per; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.Query(); got != 2*per {
		t.Errorf("query = %d, want %d", got, 2*per)
	}
}

func TestAdaptiveParSketchMode(t *testing.T) {
	cfg := Config{
		Writers: 1, BufferSize: 2, DoubleBuffering: false,
		BufferAdaptor: func(uint64, int) int { return 16 },
	}
	s, _ := newCounting(cfg)
	defer s.Close()
	w := s.Writer(0)
	for i := 0; i < 100; i++ {
		w.Update(1)
	}
	w.Flush()
	if got := s.Query(); got != 100 {
		t.Errorf("query = %d", got)
	}
	if w.CurrentBufferSize() != 16 {
		t.Errorf("b = %d, want 16", w.CurrentBufferSize())
	}
}
