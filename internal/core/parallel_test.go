package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestFanOutCoversEveryIndexOnce(t *testing.T) {
	for _, degree := range []int{0, 1, 2, 4, 7, 64} {
		for _, n := range []int{0, 1, 2, 3, 100, 1001} {
			hits := make([]atomic.Int32, n)
			maxWorker := int32(-1)
			var maxMu atomic.Int32
			maxMu.Store(-1)
			FanOut(degree, n, func(worker, index int) {
				hits[index].Add(1)
				for {
					cur := maxMu.Load()
					if int32(worker) <= cur || maxMu.CompareAndSwap(cur, int32(worker)) {
						break
					}
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("degree=%d n=%d: index %d visited %d times", degree, n, i, got)
				}
			}
			maxWorker = maxMu.Load()
			limit := degree
			if limit < 1 {
				limit = 1
			}
			if limit > n {
				limit = n
			}
			if n > 0 && maxWorker >= int32(limit) {
				t.Fatalf("degree=%d n=%d: worker id %d outside [0,%d)", degree, n, maxWorker, limit)
			}
		}
	}
}

func TestFanOutWorkerSlotsAreExclusive(t *testing.T) {
	// Per-worker accumulators indexed by the worker id must never be
	// shared between concurrent invocations — the whole read path
	// relies on it. Detect overlap with an in-use flag per slot.
	const degree, n = 8, 10000
	inUse := make([]atomic.Bool, degree)
	sums := make([]int, degree)
	FanOut(degree, n, func(worker, index int) {
		if !inUse[worker].CompareAndSwap(false, true) {
			t.Errorf("worker slot %d entered concurrently", worker)
		}
		sums[worker] += index
		inUse[worker].Store(false)
	})
	total := 0
	for _, s := range sums {
		total += s
	}
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("per-worker sums total %d, want %d", total, want)
	}
}

func TestReadDegree(t *testing.T) {
	if got := ReadDegree(3); got != 3 {
		t.Fatalf("ReadDegree(3) = %d", got)
	}
	if got := ReadDegree(1); got != 1 {
		t.Fatalf("ReadDegree(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := ReadDegree(0); got != want {
		t.Fatalf("ReadDegree(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := ReadDegree(-5); got != want {
		t.Fatalf("ReadDegree(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}
