package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// PropagatorPool is a fixed-size pool of propagator goroutines serving
// any number of concurrent sketches. The paper dedicates one propagator
// thread t_0 per sketch, which is the right trade for a handful of
// sketches but collapses for keyed workloads that instantiate one
// sketch per key (millions of keys would mean millions of goroutines).
// The pool decouples the population of sketches from the set of
// executors — a fixed scheduler pool drives a parameterised population
// of sketch "processes" — so a table with 1M keys propagates on
// GOMAXPROCS goroutines.
//
// Scheduling is shard-affine, in the style of Go's own runtime: every
// worker owns a private run queue, and each sketch is pinned to one
// worker at attach time — by its affinity key when it has one (keyed
// tables derive the key from the key hash, so a key's global sketch is
// always merged by the same worker and stays hot in that worker's
// cache, across epoch rotations included), round-robin otherwise. A
// submit enqueues the sketch on its home worker's queue and wakes that
// worker; when the home queue backs up or the home worker is already
// signalled, one parked sibling is woken to steal. Idle workers steal
// one sketch at a time from sibling queues (bounded: a single pass over
// the victims per attempt), so a stalled or overloaded worker never
// strands scheduled work while others are idle.
//
// Liveness does not depend on stealing: every submit leaves a wake
// token with the home worker, and a worker drains its own queue before
// parking, so any scheduled sketch is eventually run by its home worker
// even if no steal ever happens. Stealing only shortens the wait.
//
// The framework's invariant that at most one goroutine merges into a
// given global sketch at a time is preserved exactly as before: each
// sketch carries a private MPSC queue of handed-off writer ids plus a
// scheduled flag, and enters its home run queue only on the
// idle-to-scheduled transition. A worker that dequeues a sketch drains
// that sketch's private queue, then clears the flag; if a handoff raced
// the drain, the sketch re-enters at the tail of its home queue, which
// keeps one hot sketch from starving the others.
//
// A standalone Sketch owns a pool of size one, reproducing the paper's
// dedicated-propagator semantics exactly (same merge order, same
// Flush/Close behaviour, same r = 2·N·b relaxation bound).
type PropagatorPool struct {
	ws   []poolWorker
	stop chan struct{}
	done sync.WaitGroup

	closed atomic.Bool
	// sketches counts attached sketches (observability + tests).
	sketches atomic.Int64
	// parked counts workers currently parked on their wake channel; it
	// gates the sibling-wake scan so a saturated pool (nothing parked)
	// pays one load per submit, not an O(workers) flag sweep.
	parked atomic.Int32
	// nextID hands out round-robin worker assignments (and affinity
	// tokens) to sketches attached without an explicit affinity key.
	nextID atomic.Uint64
	// steals counts cross-queue steals pool-wide.
	steals atomic.Int64
}

// maxIdleCap bounds the run-queue capacity a worker retains across idle
// periods: a queue that absorbed a burst of thousands of scheduled
// sketches drops its backing array once it drains, instead of pinning
// the burst-sized slice for the pool's lifetime.
const maxIdleCap = 256

// poolWorker is one propagator goroutine's scheduling state: a private
// FIFO of scheduled sketches plus a one-token wake channel.
type poolWorker struct {
	mu   sync.Mutex
	runq []propagable
	head int

	// wake carries at most one token; submit never blocks.
	wake chan struct{}
	// parked is set while the worker sleeps on wake with an empty
	// queue; submit uses it to pick a stealing sibling. Best-effort
	// only — liveness rests on the home worker's wake token. Whoever
	// clears it (the worker on wake-up, or a submitter's CAS) also
	// decrements the pool's parked counter.
	parked atomic.Bool

	// stolen counts sketches this worker stole from siblings; runs
	// counts propagation runs it executed (own + stolen); wakes counts
	// wake tokens deposited on this worker by submits and sibling
	// nudges (park/unpark churn, distinct from runs).
	stolen atomic.Int64
	runs   atomic.Int64
	wakes  atomic.Int64

	// Pad the struct to a multiple of 128 bytes (two cache lines on
	// common hardware) so adjacent workers' hot fields — this one's
	// run counters, the next one's queue mutex — never share a line.
	// The compile-time assertion below keeps the pad honest.
	_ [48]byte
}

// Compile-time check that poolWorker fills whole 128-byte blocks (the
// index is constant: non-zero remainder fails to compile).
var _ = [1]struct{}{}[unsafe.Sizeof(poolWorker{})%128]

// propagable is a scheduled unit of propagation work: a sketch with a
// non-empty private handoff queue.
type propagable interface {
	// runPropagation drains the sketch's private handoff queue. It is
	// never invoked concurrently for the same sketch (the scheduled
	// flag serialises it).
	runPropagation()
}

// NewPropagatorPool starts a pool with the given number of propagator
// goroutines; workers <= 0 means GOMAXPROCS. Close it after every
// attached sketch is closed.
func NewPropagatorPool(workers int) *PropagatorPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &PropagatorPool{
		ws:   make([]poolWorker, workers),
		stop: make(chan struct{}),
	}
	for i := range p.ws {
		p.ws[i].wake = make(chan struct{}, 1)
	}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the number of propagator goroutines.
func (p *PropagatorPool) Workers() int { return len(p.ws) }

// Sketches returns the number of sketches currently attached.
func (p *PropagatorPool) Sketches() int64 { return p.sketches.Load() }

// Steals returns the pool-wide count of cross-queue steals: sketches
// run by a worker other than their home worker.
func (p *PropagatorPool) Steals() int64 { return p.steals.Load() }

// Parked returns the number of workers currently parked on their wake
// channel.
func (p *PropagatorPool) Parked() int { return int(p.parked.Load()) }

// WorkerStats is one worker's scheduling counters.
type WorkerStats struct {
	// Depth is the current run-queue length (scheduled, not yet run).
	Depth int
	// Stolen counts sketches this worker stole from sibling queues.
	Stolen int64
	// Runs counts propagation runs this worker executed.
	Runs int64
	// Wakes counts wake tokens deposited on this worker (submits to
	// its queue plus sibling steal nudges).
	Wakes int64
}

// Stats returns a snapshot of every worker's depth/steal/run counters,
// indexed by worker.
func (p *PropagatorPool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.ws))
	for i := range p.ws {
		w := &p.ws[i]
		w.mu.Lock()
		depth := len(w.runq) - w.head
		w.mu.Unlock()
		out[i] = WorkerStats{Depth: depth, Stolen: w.stolen.Load(), Runs: w.runs.Load(), Wakes: w.wakes.Load()}
	}
	return out
}

// attach registers a sketch and returns its home worker. A zero
// affinity key means "no preference": assignment is round-robin over
// the workers. A nonzero key maps stably to key mod workers, so equal
// keys — e.g. the same table key's sketch across epoch rotations —
// always share a home worker.
func (p *PropagatorPool) attach(affinityKey uint64) int {
	p.sketches.Add(1)
	if affinityKey == 0 {
		affinityKey = p.nextID.Add(1)
	}
	return int(affinityKey % uint64(len(p.ws)))
}

// detach unregisters a sketch attached with attach.
func (p *PropagatorPool) detach() { p.sketches.Add(-1) }

// AffinityToken returns a fresh nonzero affinity key from the pool's
// round-robin sequence. Composites that recreate sketches over time
// (e.g. an epoch ring) take one token at construction and attach every
// incarnation with it, inheriting one home worker instead of
// reshuffling on every rotation.
func (p *PropagatorPool) AffinityToken() uint64 {
	for {
		if t := p.nextID.Add(1); t != 0 {
			return t
		}
	}
}

// Close drains every worker's run queue and stops the workers. All
// attached sketches must have stopped handing off (their writers
// quiescent or the sketches closed) before Close is called. Close is
// idempotent.
func (p *PropagatorPool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.done.Wait()
}

// submit schedules a sketch for propagation on its home worker. Called
// exactly once per idle-to-scheduled transition, so each sketch
// occupies at most one run-queue slot across the pool.
func (p *PropagatorPool) submit(t propagable, worker int) {
	w := &p.ws[worker]
	w.mu.Lock()
	w.runq = append(w.runq, t)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
		w.wakes.Add(1)
	default:
		// The home worker already holds a wake token and will keep
		// popping until its queue is empty.
	}
	if !w.parked.Load() && p.parked.Load() > 0 {
		// The home worker is busy (mid-propagation, possibly stalled)
		// and some sibling is parked: wake one to steal. Best-effort —
		// if none is found, the home worker's token still guarantees
		// the sketch runs.
		p.wakeSibling(worker)
	}
}

// wakeSibling wakes one parked worker other than home, if any.
func (p *PropagatorPool) wakeSibling(home int) {
	for i := range p.ws {
		if i == home {
			continue
		}
		w := &p.ws[i]
		if w.parked.Load() && w.parked.CompareAndSwap(true, false) {
			p.parked.Add(-1)
			select {
			case w.wake <- struct{}{}:
				w.wakes.Add(1)
			default:
			}
			return
		}
	}
}

// pop removes the head of worker w's run queue, or returns nil when
// empty. An emptied queue resets — and, after a burst, drops — its
// backing array.
func (w *poolWorker) pop() propagable {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head == len(w.runq) {
		if cap(w.runq) > maxIdleCap {
			w.runq = nil
		} else {
			w.runq = w.runq[:0]
		}
		w.head = 0
		return nil
	}
	t := w.runq[w.head]
	w.runq[w.head] = nil // release for GC
	w.head++
	// Compact once the dead prefix dominates: a queue that never goes
	// fully idle would otherwise append past the prefix forever. The
	// shrink-on-empty above handles burst-sized capacity; compaction
	// here only slides the live suffix down.
	if w.head > 64 && w.head*2 >= len(w.runq) {
		n := copy(w.runq, w.runq[w.head:])
		clear(w.runq[n:])
		w.runq = w.runq[:n]
		w.head = 0
	}
	return t
}

// steal takes one sketch from the first non-empty sibling queue,
// scanning victims in ring order from the thief. Bounded: one pass, one
// sketch.
func (p *PropagatorPool) steal(thief int) propagable {
	n := len(p.ws)
	for d := 1; d < n; d++ {
		victim := &p.ws[(thief+d)%n]
		if t := victim.pop(); t != nil {
			p.ws[thief].stolen.Add(1)
			p.steals.Add(1)
			return t
		}
	}
	return nil
}

// worker is propagator goroutine i: it runs sketches scheduled on its
// own queue, steals from siblings when idle, and parks when the whole
// pool has no work, until the pool is closed — then performs a final
// all-queue drain so no scheduled work is dropped.
func (p *PropagatorPool) worker(i int) {
	defer p.done.Done()
	w := &p.ws[i]
	for {
		t := w.pop()
		if t == nil {
			t = p.steal(i)
		}
		if t != nil {
			t.runPropagation()
			w.runs.Add(1)
			continue
		}
		w.parked.Store(true)
		p.parked.Add(1)
		select {
		case <-w.wake:
			if w.parked.CompareAndSwap(true, false) {
				p.parked.Add(-1)
			}
		case <-p.stop:
			if w.parked.CompareAndSwap(true, false) {
				p.parked.Add(-1)
			}
			p.drainAll(i)
			return
		}
	}
}

// drainAll runs every remaining scheduled sketch reachable from worker
// i (its own queue, then steals) — the Close drain. All closing workers
// race over the queues; the per-sketch scheduled flag keeps any single
// sketch on one worker at a time.
func (p *PropagatorPool) drainAll(i int) {
	w := &p.ws[i]
	for {
		t := w.pop()
		if t == nil {
			t = p.steal(i)
		}
		if t == nil {
			return
		}
		t.runPropagation()
		w.runs.Add(1)
	}
}
