package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PropagatorPool is a fixed-size pool of propagator goroutines serving
// any number of concurrent sketches. The paper dedicates one propagator
// thread t_0 per sketch, which is the right trade for a handful of
// sketches but collapses for keyed workloads that instantiate one
// sketch per key (millions of keys would mean millions of goroutines).
// The pool decouples the population of sketches from the set of
// executors — a fixed scheduler pool drives a parameterised population
// of sketch "processes" — so a table with 1M keys propagates on
// GOMAXPROCS goroutines.
//
// Scheduling preserves the framework's invariant that at most one
// goroutine merges into a given global sketch at a time: each sketch
// carries a private MPSC queue of handed-off writer ids plus a
// scheduled flag, and enters the pool's shared run queue only on the
// idle-to-scheduled transition. A worker that dequeues a sketch drains
// that sketch's private queue, then clears the flag; if a handoff
// raced the drain, the sketch re-enters at the tail of the run queue,
// which keeps one hot sketch from starving the others.
//
// A standalone Sketch owns a pool of size one, reproducing the paper's
// dedicated-propagator semantics exactly (same merge order, same
// Flush/Close behaviour, same r = 2·N·b relaxation bound).
type PropagatorPool struct {
	mu   sync.Mutex
	runq []propagable // FIFO of scheduled sketches
	head int

	// wake carries at most one token per worker; submit never blocks.
	wake chan struct{}
	stop chan struct{}
	done sync.WaitGroup

	workers int
	closed  atomic.Bool
	// sketches counts attached sketches (observability + tests).
	sketches atomic.Int64
}

// propagable is a scheduled unit of propagation work: a sketch with a
// non-empty private handoff queue.
type propagable interface {
	// runPropagation drains the sketch's private handoff queue. It is
	// never invoked concurrently for the same sketch (the scheduled
	// flag serialises it).
	runPropagation()
}

// NewPropagatorPool starts a pool with the given number of propagator
// goroutines; workers <= 0 means GOMAXPROCS. Close it after every
// attached sketch is closed.
func NewPropagatorPool(workers int) *PropagatorPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &PropagatorPool{
		workers: workers,
		wake:    make(chan struct{}, workers),
		stop:    make(chan struct{}),
	}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the number of propagator goroutines.
func (p *PropagatorPool) Workers() int { return p.workers }

// Sketches returns the number of sketches currently attached.
func (p *PropagatorPool) Sketches() int64 { return p.sketches.Load() }

// Close drains the run queue and stops the workers. All attached
// sketches must have stopped handing off (their writers quiescent or
// the sketches closed) before Close is called. Close is idempotent.
func (p *PropagatorPool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.done.Wait()
}

// submit schedules a sketch for propagation. Called exactly once per
// idle-to-scheduled transition, so each sketch occupies at most one
// run-queue slot.
func (p *PropagatorPool) submit(t propagable) {
	p.mu.Lock()
	p.runq = append(p.runq, t)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
		// Buffer full: every worker already has a pending wake token
		// and will keep popping until the run queue is empty.
	}
}

// pop removes the head of the run queue, or returns nil when empty.
func (p *PropagatorPool) pop() propagable {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.head == len(p.runq) {
		p.runq = p.runq[:0]
		p.head = 0
		return nil
	}
	t := p.runq[p.head]
	p.runq[p.head] = nil // release for GC
	p.head++
	// Compact once the dead prefix dominates: a queue that never goes
	// fully idle would otherwise append past the prefix forever.
	if p.head > 64 && p.head*2 >= len(p.runq) {
		n := copy(p.runq, p.runq[p.head:])
		clear(p.runq[n:])
		p.runq = p.runq[:n]
		p.head = 0
	}
	return t
}

// worker is one propagator goroutine: it pops scheduled sketches and
// drains their handoff queues until the pool is closed, then performs
// a final drain so no scheduled work is dropped.
func (p *PropagatorPool) worker() {
	defer p.done.Done()
	for {
		if t := p.pop(); t != nil {
			t.runPropagation()
			continue
		}
		select {
		case <-p.wake:
		case <-p.stop:
			for {
				t := p.pop()
				if t == nil {
					return
				}
				t.runPropagation()
			}
		}
	}
}
