package core

import (
	"sync"
	"testing"
)

// batchCountLocal is a countLocal that also implements BatchLocal and
// records how it was fed, so tests can assert the batch path uses bulk
// appends instead of per-item interface calls.
type batchCountLocal struct {
	n          int64
	itemCalls  int
	sliceCalls int
}

func (l *batchCountLocal) Update(u int64) { l.n += u; l.itemCalls++ }
func (l *batchCountLocal) UpdateSlice(us []int64) {
	l.sliceCalls++
	for _, u := range us {
		l.n += u
	}
}
func (l *batchCountLocal) Reset() { l.n = 0 }

// newBatchCounting returns the sketch, its global, and a pointer to
// the list of locals created so far — locals are allocated lazily on
// first buffered use, so the list must be read through the pointer
// after the test has driven updates.
func newBatchCounting(cfg Config) (*Sketch[int64, int64], *countGlobal, *[]*batchCountLocal) {
	g := &countGlobal{}
	g.hintVal.Store(1)
	locals := &[]*batchCountLocal{}
	s := New[int64, int64](g, func() Local[int64] {
		l := &batchCountLocal{}
		*locals = append(*locals, l)
		return l
	}, cfg)
	return s, g, locals
}

func ones(n int) []int64 {
	us := make([]int64, n)
	for i := range us {
		us[i] = 1
	}
	return us
}

// TestUpdateBatchEquivalence checks that UpdateBatch is observably
// identical to calling Update element by element, across batch sizes
// that undershoot, exactly hit, and span multiple buffer boundaries.
func TestUpdateBatchEquivalence(t *testing.T) {
	for _, batchLen := range []int{1, 3, 8, 17, 100} {
		s, _, _ := newBatchCounting(Config{Writers: 1, BufferSize: 8, DoubleBuffering: true})
		w := s.Writer(0)
		const batches = 7
		for i := 0; i < batches; i++ {
			w.UpdateBatch(ones(batchLen))
		}
		w.Flush()
		if got, want := s.Query(), int64(batches*batchLen); got != want {
			t.Errorf("batchLen=%d: total = %d, want %d", batchLen, got, want)
		}
		s.Close()
	}
}

// TestUpdateBatchUsesBatchLocal asserts the batch path fills a
// BatchLocal with bulk UpdateSlice calls, not per-item Updates.
func TestUpdateBatchUsesBatchLocal(t *testing.T) {
	s, _, locals := newBatchCounting(Config{Writers: 1, BufferSize: 8, DoubleBuffering: true})
	w := s.Writer(0)
	w.UpdateBatch(ones(64))
	w.Flush()
	s.Close()
	items, slices := 0, 0
	for _, l := range *locals {
		items += l.itemCalls
		slices += l.sliceCalls
	}
	if items != 0 {
		t.Errorf("batch path made %d per-item Update calls, want 0", items)
	}
	if slices == 0 {
		t.Error("batch path never called UpdateSlice")
	}
	if got := s.Query(); got != 64 {
		t.Errorf("total = %d, want 64", got)
	}
}

// TestUpdateBatchFiltered checks ShouldAdd is honoured by the generic
// batch path, including runs that straddle rejected elements.
func TestUpdateBatchFiltered(t *testing.T) {
	s, g, _ := newBatchCounting(Config{Writers: 1, BufferSize: 4, DoubleBuffering: true})
	defer s.Close()
	g.filterOn = true
	g.hintVal.Store(5) // ShouldAdd rejects u < 5
	w := s.Writer(0)
	// Hint piggybacking lags one handoff (the writer reads the prop
	// word at the start of its NEXT handoff), so two full rounds are
	// needed before the writer filters with hint 5 — exactly as in the
	// per-item path.
	w.UpdateBatch([]int64{10, 10, 10, 10})
	w.UpdateBatch([]int64{10, 10, 10, 10})
	w.Flush()
	// Alternating admitted/rejected elements: only u >= 5 may count.
	w.UpdateBatch([]int64{1, 7, 2, 7, 3, 7, 4, 7, 1, 1, 7, 7, 7, 7, 7, 7})
	w.Flush()
	if got, want := s.Query(), int64(8*10+10*7); got != want {
		t.Errorf("filtered batch total = %d, want %d", got, want)
	}
}

// TestUpdateBatchEagerTransition spans the eager-to-lazy switch inside
// a single batch: the eager prefix must be applied directly and the
// remainder must flow through the buffers, with nothing lost.
func TestUpdateBatchEagerTransition(t *testing.T) {
	s, _, _ := newBatchCounting(Config{
		Writers: 1, BufferSize: 4, EagerLimit: 10, DoubleBuffering: true,
	})
	w := s.Writer(0)
	w.UpdateBatch(ones(25)) // 10 eager + 15 lazy
	if s.Eager() {
		t.Error("still eager after exceeding EagerLimit in one batch")
	}
	w.Flush()
	s.Close()
	if got := s.Query(); got != 25 {
		t.Errorf("total = %d, want 25", got)
	}
}

// TestUpdateBatchParSketch exercises the batch path without double
// buffering (the ablation mode, where handoff blocks on propagation).
func TestUpdateBatchParSketch(t *testing.T) {
	s, _, _ := newBatchCounting(Config{Writers: 2, BufferSize: 3, DoubleBuffering: false})
	w := s.Writer(0)
	w.UpdateBatch(ones(50))
	w.Flush()
	s.Close()
	if got := s.Query(); got != 50 {
		t.Errorf("total = %d, want 50", got)
	}
}

// TestPropagatorIsQueueDriven pins the tentpole property: per-handoff
// wakeups merge exactly the handed-off slot and never rescan all N
// writer slots. Only the Close drain performs a full scan.
func TestPropagatorIsQueueDriven(t *testing.T) {
	s, _, _ := newBatchCounting(Config{Writers: 8, BufferSize: 2, DoubleBuffering: true})
	w := s.Writer(0)
	const updates = 1000 // 500 handoffs from one writer
	w.UpdateBatch(ones(updates))
	w.Flush()
	if got := s.fullScans.Load(); got != 0 {
		t.Errorf("propagator performed %d full scans before Close, want 0", got)
	}
	if p := s.Propagations(); p < updates/2 {
		t.Errorf("propagations = %d, want >= %d (one per handoff)", p, updates/2)
	}
	s.Close()
	if got := s.fullScans.Load(); got != 1 {
		t.Errorf("full scans after Close = %d, want exactly 1 (the drain)", got)
	}
	if got := s.Query(); got != updates {
		t.Errorf("total = %d, want %d", got, updates)
	}
}

// TestHandoffQueueManyWriters drives all writers concurrently through
// the queue and checks nothing is lost or double-merged.
func TestHandoffQueueManyWriters(t *testing.T) {
	const writers, perWriter = 8, 5000
	s, _, _ := newBatchCounting(Config{Writers: writers, BufferSize: 3, DoubleBuffering: true})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for sent := 0; sent < perWriter; sent += 100 {
				w.UpdateBatch(ones(100))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got, want := s.Query(), int64(writers*perWriter); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
	if got := s.fullScans.Load(); got != 0 {
		t.Errorf("full scans before Close = %d, want 0", got)
	}
	s.Close()
}
