package core

// CommonConfig is the slice of configuration every concurrent sketch
// instantiation shares (Θ, Quantiles, HLL, and the keyed tables built
// on them). Each instantiation's config embeds these fields flat for
// API stability and funnels them through WithDefaults, so the
// zero-value conventions live in exactly one place.
type CommonConfig struct {
	// Writers is N, the number of writer handles; 0 means 1.
	Writers int
	// EagerLimit follows the shared convention: > 0 sets the eager
	// cutoff explicitly, 0 takes the instantiation's derived default,
	// < 0 disables the eager phase.
	EagerLimit int
	// Seed is the hash/oracle seed; 0 takes the instantiation default.
	Seed uint64
	// ReadParallelism bounds the worker count of parallel read-side
	// fan-outs (rollup, snapshot, checkpoint, sealed-window rebuild).
	// 0 means GOMAXPROCS resolved at call time (so a later
	// GOMAXPROCS change is picked up), 1 forces the serial path, and
	// values above the item count are clamped per call. It never
	// affects the ingest path. Resolved through ReadDegree at each
	// use site rather than in WithDefaults, deliberately.
	ReadParallelism int
}

// WithDefaults resolves the shared zero-value conventions against the
// instantiation's derived eager limit and default seed.
func (c CommonConfig) WithDefaults(derivedEagerLimit int, defaultSeed uint64) CommonConfig {
	if c.Writers == 0 {
		c.Writers = 1
	}
	switch {
	case c.EagerLimit < 0:
		c.EagerLimit = 0
	case c.EagerLimit == 0:
		c.EagerLimit = derivedEagerLimit
	}
	if c.Seed == 0 {
		c.Seed = defaultSeed
	}
	return c
}
