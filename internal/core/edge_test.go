package core

import (
	"sync"
	"testing"
)

// Edge-case and failure-mode tests for the framework.

func TestFlushOnEmptyBufferIsNoop(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 4, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	w.Flush() // nothing buffered, nothing handed off
	w.Flush()
	if got := s.Query(); got != 0 {
		t.Errorf("query after empty flushes = %d", got)
	}
}

func TestRepeatedFlushes(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 10, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	total := int64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ { // partial buffer each round
			w.Update(1)
			total++
		}
		w.Flush()
		if got := s.Query(); got != total {
			t.Fatalf("round %d: query = %d, want %d", round, got, total)
		}
	}
}

func TestEagerWithParSketch(t *testing.T) {
	s, _ := newCounting(Config{Writers: 2, BufferSize: 3, EagerLimit: 50, DoubleBuffering: false})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < 500; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.Query(); got != 1000 {
		t.Errorf("eager+ParSketch query = %d, want 1000", got)
	}
}

func TestSingleUpdateBuffer(t *testing.T) {
	// b = 1: every update is its own handoff (the Figure 1 config).
	s, _ := newCounting(Config{Writers: 1, BufferSize: 1, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	for i := 0; i < 200; i++ {
		w.Update(1)
	}
	w.Flush()
	if got := s.Query(); got != 200 {
		t.Errorf("query = %d, want 200", got)
	}
	if p := s.Propagations(); p < 199 {
		t.Errorf("propagations = %d, want ~200 at b=1", p)
	}
}

func TestManyWritersFewUpdates(t *testing.T) {
	// More writers than updates: idle writers must not wedge anything.
	s, _ := newCounting(Config{Writers: 8, BufferSize: 4, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(3)
	w.Update(1)
	w.Flush()
	if got := s.Query(); got != 1 {
		t.Errorf("query = %d, want 1", got)
	}
}

func TestCloseWithIdleWriters(t *testing.T) {
	s, _ := newCounting(Config{Writers: 4, BufferSize: 4, DoubleBuffering: true})
	// Close with no activity at all must not hang.
	s.Close()
}

func TestEagerExactlyAtLimit(t *testing.T) {
	const limit = 10
	s, _ := newCounting(Config{Writers: 1, BufferSize: 2, EagerLimit: limit, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	for i := 0; i < limit; i++ {
		w.Update(1)
	}
	if s.Eager() {
		t.Error("still eager exactly at the limit")
	}
	if got := s.Query(); got != limit {
		t.Errorf("query = %d, want %d", got, limit)
	}
}

func TestQueryBeforeAnyUpdate(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 4, EagerLimit: 5, DoubleBuffering: true})
	defer s.Close()
	if got := s.Query(); got != 0 {
		t.Errorf("query on fresh sketch = %d", got)
	}
}

func TestNumWriters(t *testing.T) {
	s, _ := newCounting(Config{Writers: 7, BufferSize: 2, DoubleBuffering: true})
	defer s.Close()
	if s.NumWriters() != 7 {
		t.Errorf("NumWriters = %d", s.NumWriters())
	}
}
