package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file provides the bounded fan-out primitive shared by every
// parallel read path (table rollups/snapshots, window sealed-aggregate
// rebuilds, server checkpoint passes). It is deliberately tiny: the
// read side parallelizes as "N independent work items, claimed from a
// shared counter, folded by at most `degree` workers" — no futures, no
// error plumbing (callers record errors per worker slot), no pooling
// (the goroutines live for one call; read-path calls are milliseconds,
// not microseconds).

// ReadDegree resolves a configured read-parallelism value following
// the CommonConfig.ReadParallelism convention: values > 0 are taken
// literally, anything else means GOMAXPROCS at call time.
func ReadDegree(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// FanOut invokes fn(worker, index) exactly once for every index in
// [0, n), using at most `degree` concurrent workers. The calling
// goroutine participates as worker 0, so degree <= 1 (or n <= 1) runs
// everything inline with no goroutines and no allocation — the serial
// path and the parallel path are the same code.
//
// Indices are claimed from a shared atomic counter, so uneven per-index
// cost balances automatically. Worker identifiers are dense in
// [0, min(degree, n)): fn may index per-worker accumulators by them,
// and no two invocations share a worker id concurrently. fn must not
// panic: a panic in a spawned worker crashes the process.
func FanOut(degree, n int, fn func(worker, index int)) {
	if n <= 0 {
		return
	}
	if degree > n {
		degree = n
	}
	if degree <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(degree - 1)
	for w := 1; w < degree; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(0, i)
	}
	wg.Wait()
}
