//go:build goexperiment.synctest

package core

import (
	"testing"
	"testing/synctest"
)

// These tests run under Go's synctest bubble (GOEXPERIMENT=synctest,
// Go 1.24): goroutine scheduling and time are virtualised, so
// propagator timing and shutdown interleavings that are probabilistic
// under the real scheduler become deterministic — synctest.Wait blocks
// until every goroutine in the bubble is durably idle, giving an exact
// quiescence point instead of a sleep.

// TestSynctestPoolDrainOnClose pins the shutdown contract: buffers
// handed off before Close are merged by the pool drain, deterministic
// under the virtual scheduler.
func TestSynctestPoolDrainOnClose(t *testing.T) {
	synctest.Run(func() {
		pool := NewPropagatorPool(2)
		const sketches = 8
		sks := make([]*Sketch[int64, int64], sketches)
		for i := range sks {
			sks[i], _ = newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
		}
		for _, s := range sks {
			w := s.Writer(0)
			w.Update(1)
			w.Update(1) // buffer full: handoff enqueued, not flushed
		}
		// No Flush: Close alone must drain the handed-off buffers.
		for i, s := range sks {
			s.Close()
			if got := s.Query(); got != 2 {
				t.Errorf("sketch %d: total after Close = %d, want 2", i, got)
			}
			if got := s.fullScans.Load(); got != 1 {
				t.Errorf("sketch %d: full scans = %d, want exactly 1 (the Close drain)", i, got)
			}
		}
		pool.Close()
	})
}

// TestSynctestOwnedPoolDrainOnClose covers the dedicated-propagator
// default (pool of one) under the virtual scheduler.
func TestSynctestOwnedPoolDrainOnClose(t *testing.T) {
	synctest.Run(func() {
		s, _ := newCounting(Config{Writers: 4, BufferSize: 2, DoubleBuffering: true})
		for i := 0; i < 4; i++ {
			w := s.Writer(i)
			w.Update(1)
			w.Update(1)
		}
		s.Close()
		if got := s.Query(); got != 8 {
			t.Errorf("total after Close = %d, want 8", got)
		}
	})
}

// TestSynctestStarvationFairness runs many sketches on a single
// propagator worker: every sketch's handoffs must propagate — a
// re-scheduled hot sketch goes to the run-queue tail, so with the
// virtual scheduler each Flush completes deterministically even
// though one worker serves all sketches.
func TestSynctestStarvationFairness(t *testing.T) {
	synctest.Run(func() {
		pool := NewPropagatorPool(1)
		const sketches, perSketch = 16, 200
		sks := make([]*Sketch[int64, int64], sketches)
		for i := range sks {
			sks[i], _ = newPooledCounting(pool, Config{Writers: 1, BufferSize: 1, DoubleBuffering: true})
		}
		done := make(chan int, sketches)
		for i, s := range sks {
			go func(i int, s *Sketch[int64, int64]) {
				w := s.Writer(0)
				for j := 0; j < perSketch; j++ {
					w.Update(1) // b=1: every update is a handoff
				}
				w.Flush()
				done <- i
			}(i, s)
		}
		// Every writer's Flush returns: nobody starved. synctest fails
		// the bubble with a deadlock report if the single worker ever
		// stops serving some sketch.
		for range sks {
			<-done
		}
		synctest.Wait()
		for i, s := range sks {
			if got := s.Query(); got != perSketch {
				t.Errorf("sketch %d: total = %d, want %d", i, got, perSketch)
			}
			if p := s.Propagations(); p < perSketch {
				t.Errorf("sketch %d: %d propagations, want >= %d (b=1)", i, p, perSketch)
			}
			s.Close()
		}
		pool.Close()
	})
}

// blockingTask is a propagable that parks its worker until released —
// the deterministic "stalled worker" fixture for the stealing tests.
type blockingTask struct {
	started chan struct{}
	release chan struct{}
}

func newBlockingTask() *blockingTask {
	return &blockingTask{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingTask) runPropagation() {
	close(b.started)
	<-b.release
}

// TestSynctestStalledWorkerStolenFrom pins the work-stealing half of
// the shard-affine scheduler: a sketch whose home worker is stalled
// inside a propagation must still get its handoffs merged — a sibling
// worker steals its run-queue entry. Without stealing the Flush below
// would spin forever.
func TestSynctestStalledWorkerStolenFrom(t *testing.T) {
	synctest.Run(func() {
		pool := NewPropagatorPool(2)
		synctest.Wait() // both workers durably parked
		// Stall worker 0.
		bt := newBlockingTask()
		pool.submit(bt, 0)
		<-bt.started
		// AffinityKey 2 maps to worker 0 (2 mod 2 workers) — the
		// stalled one.
		s, _ := newPooledCounting(pool, Config{
			Writers: 1, BufferSize: 2, DoubleBuffering: true, AffinityKey: 2,
		})
		if s.affinity != 0 {
			t.Fatalf("affinity = %d, want 0 for key 2 on 2 workers", s.affinity)
		}
		w := s.Writer(0)
		w.Update(1)
		w.Update(1) // handoff lands on stalled worker 0's queue
		w.Flush()   // completes only if worker 1 steals the entry
		if got := s.Query(); got != 2 {
			t.Errorf("total = %d, want 2", got)
		}
		if got := pool.Steals(); got < 1 {
			t.Errorf("pool steals = %d, want >= 1", got)
		}
		st := pool.Stats()
		if st[1].Stolen < 1 {
			t.Errorf("worker 1 stole %d, want >= 1 (worker 0 is stalled)", st[1].Stolen)
		}
		close(bt.release)
		s.Close()
		pool.Close()
	})
}

// TestSynctestCloseDrainsPerWorkerQueues stalls every worker, queues
// handoffs across all per-worker run queues, then releases and closes:
// every queued entry must be merged — no per-worker queue is dropped
// by shutdown — and the pool ends with empty queues.
func TestSynctestCloseDrainsPerWorkerQueues(t *testing.T) {
	synctest.Run(func() {
		const workers, sketches = 2, 8
		pool := NewPropagatorPool(workers)
		synctest.Wait() // workers durably parked
		// Stall both workers so submitted work provably sits in the
		// per-worker queues.
		bts := make([]*blockingTask, workers)
		for i := range bts {
			bts[i] = newBlockingTask()
			pool.submit(bts[i], i)
			<-bts[i].started
		}
		sks := make([]*Sketch[int64, int64], sketches)
		for i := range sks {
			// Spread affinities over both workers deterministically.
			sks[i], _ = newPooledCounting(pool, Config{
				Writers: 1, BufferSize: 2, DoubleBuffering: true,
				AffinityKey: uint64(workers + i),
			})
			w := sks[i].Writer(0)
			w.Update(1)
			w.Update(1) // buffer full: handoff queued, workers stalled
		}
		depth := 0
		for _, st := range pool.Stats() {
			depth += st.Depth
		}
		if depth != sketches {
			t.Errorf("queued depth across workers = %d, want %d", depth, sketches)
		}
		for _, bt := range bts {
			close(bt.release)
		}
		// No Flush: sketch Close must wait out the queued handoffs.
		for i, s := range sks {
			s.Close()
			if got := s.Query(); got != 2 {
				t.Errorf("sketch %d: total after Close = %d, want 2", i, got)
			}
		}
		pool.Close()
		for i, st := range pool.Stats() {
			if st.Depth != 0 {
				t.Errorf("worker %d: depth %d after pool Close, want 0", i, st.Depth)
			}
		}
	})
}

// TestSynctestCloseWhileSiblingIngests interleaves one sketch's Close
// with a sibling's ingestion on the same pool, deterministically: the
// closing sketch's drain must not stall behind the busy sibling.
func TestSynctestCloseWhileSiblingIngests(t *testing.T) {
	synctest.Run(func() {
		pool := NewPropagatorPool(1)
		busy, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 1, DoubleBuffering: true})
		idle, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
		stop := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			w := busy.Writer(0)
			for {
				select {
				case <-stop:
					w.Flush()
					return
				default:
					w.Update(1)
				}
			}
		}()
		w := idle.Writer(0)
		w.Update(1)
		w.Update(1) // handoff enqueued behind the busy sketch's traffic
		idle.Close()
		if got := idle.Query(); got != 2 {
			t.Errorf("idle total after Close = %d, want 2", got)
		}
		close(stop)
		<-finished
		busy.Close()
		pool.Close()
	})
}
