package core

import (
	"strconv"

	"github.com/fcds/fcds/internal/metrics"
)

// RegisterPoolMetrics exports a PropagatorPool's scheduling counters
// into reg. Every series is func-backed and read at scrape time from
// the pool's existing atomics: the worker run loop and the submit path
// are not touched, so their zero-allocation budgets are unaffected.
//
// Families: fcds_pool_workers, fcds_pool_sketches,
// fcds_pool_parked_workers, fcds_pool_steals_total, and per-worker
// fcds_pool_queue_depth / fcds_pool_worker_runs_total /
// fcds_pool_worker_stolen_total / fcds_pool_wake_tokens_total.
func RegisterPoolMetrics(reg *metrics.Registry, p *PropagatorPool) {
	reg.GaugeFunc("fcds_pool_workers",
		"Number of propagator goroutines in the pool.",
		func() float64 { return float64(p.Workers()) })
	reg.GaugeFunc("fcds_pool_sketches",
		"Sketches currently attached to the pool.",
		func() float64 { return float64(p.Sketches()) })
	reg.GaugeFunc("fcds_pool_parked_workers",
		"Workers currently parked on their wake channel.",
		func() float64 { return float64(p.Parked()) })
	reg.CounterFunc("fcds_pool_steals_total",
		"Pool-wide cross-queue steals (sketches run off-home).",
		func() float64 { return float64(p.Steals()) })
	for i := range p.ws {
		w := &p.ws[i]
		lbl := strconv.Itoa(i)
		reg.GaugeFunc("fcds_pool_queue_depth",
			"Run-queue depth per worker (scheduled, not yet run).",
			func() float64 {
				w.mu.Lock()
				d := len(w.runq) - w.head
				w.mu.Unlock()
				return float64(d)
			}, "worker", lbl)
		reg.CounterFunc("fcds_pool_worker_runs_total",
			"Propagation runs executed per worker (own + stolen).",
			func() float64 { return float64(w.runs.Load()) }, "worker", lbl)
		reg.CounterFunc("fcds_pool_worker_stolen_total",
			"Sketches stolen from sibling queues, per thief worker.",
			func() float64 { return float64(w.stolen.Load()) }, "worker", lbl)
		reg.CounterFunc("fcds_pool_wake_tokens_total",
			"Wake tokens deposited per worker (submits + steal nudges).",
			func() float64 { return float64(w.wakes.Load()) }, "worker", lbl)
	}
}
