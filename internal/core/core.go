// Package core implements the paper's generic concurrent sketch
// framework (Section 5): OptParSketch, the double-buffered algorithm of
// Algorithm 2, plus the non-optimised ParSketch variant and the eager
// propagation adaptation for small streams (§5.3).
//
// The framework is instantiated with a composable sketch (the Global
// interface: merge/snapshot/calcHint/shouldAdd of §5.1) and a factory
// of writer-local buffer sketches (the Local interface). N writer
// goroutines each own a Writer handle with two local sketches; a
// propagator continuously folds filled local sketches into the shared
// global sketch. By default each sketch owns a dedicated propagator
// goroutine (the paper's thread t_0); sketches can instead share a
// fixed PropagatorPool, which keyed workloads with millions of
// per-key sketches require. Writers synchronise with the propagator
// through one atomic word each (prop_i), exactly as in the paper:
// prop_i = 0 hands the filled buffer to the propagator, and the
// propagator writes back the global sketch's hint (always nonzero) to
// signal completion, piggybacking the pre-filtering information.
//
// Queries read a snapshot published through a single atomic load and
// never synchronise with writers, so they are wait-free and strongly
// linearisable with respect to the r-relaxed sequential specification,
// with r = 2·N·b (Theorem 1).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Local is a writer-local sketch: it buffers up to b updates between
// propagations. It is accessed by exactly one goroutine at a time (its
// writer, or the propagator after handoff), so implementations need no
// synchronisation.
type Local[U any] interface {
	// Update folds one (pre-filtered) update into the local state.
	Update(u U)
	// Reset restores the empty state, retaining buffers.
	Reset()
}

// BatchLocal is an optional extension of Local: locals that can absorb
// a contiguous run of updates in one call (e.g. with a single bulk
// copy) implement it, and the framework's batch ingestion path uses it
// instead of per-item Update interface dispatch.
type BatchLocal[U any] interface {
	Local[U]
	// UpdateSlice folds a run of pre-filtered updates into the local
	// state, equivalent to calling Update on each element in order.
	UpdateSlice(us []U)
}

// Global is the composable sketch of §5.1. Merge and UpdateDirect are
// invoked by one goroutine at a time (the propagator, or an eager
// writer holding the framework's lock); Snapshot may be invoked
// concurrently with them and must be strongly linearisable — in
// practice, a single atomic read of state published at the end of every
// Merge/UpdateDirect.
type Global[U any, S any] interface {
	// Merge folds a handed-off local sketch into the global state and
	// republishes the snapshot.
	Merge(l Local[U])
	// UpdateDirect applies a single update (eager phase, §5.3).
	UpdateDirect(u U)
	// Snapshot returns the queryable state (S.snapshot() of §5.1).
	Snapshot() S
	// CalcHint returns the current pre-filtering hint; the framework
	// maps 0 to 1, as the paper reserves 0 for the handoff signal.
	CalcHint() uint64
	// ShouldAdd reports whether an update can affect the sketch given
	// a (possibly stale) hint. It must be a static predicate: given
	// hint h, a false answer must remain valid forever (§5.1 requires
	// "S.shouldAdd is a static function").
	ShouldAdd(hint uint64, u U) bool
}

// Config tunes the framework. The zero value is not valid; use
// DefaultConfig or fill all fields.
type Config struct {
	// Writers is N, the number of update-writer handles.
	Writers int
	// BufferSize is b, the per-writer local buffer size. The
	// relaxation — how many updates a query may miss — is 2·N·b
	// (Theorem 1; N·b for ParSketch).
	BufferSize int
	// EagerLimit is the stream length (in updates applied to the
	// global sketch) below which writers propagate eagerly —
	// sequentially, under a lock — instead of buffering (§5.3). Zero
	// disables the eager phase.
	EagerLimit int
	// DoubleBuffering selects OptParSketch (true, Algorithm 2 with the
	// gray lines) or the non-optimised ParSketch (false), in which a
	// writer blocks while its single buffer is propagated. ParSketch
	// exists for the ablation benchmarks; production use should keep
	// this true.
	DoubleBuffering bool
	// BufferAdaptor, when non-nil, is consulted after every handoff to
	// resize the writer's buffer based on the freshly piggybacked hint
	// — the paper's §8 future-work direction ("dynamically adapt the
	// size of the local buffers and respective relaxation error").
	// The returned size is clamped to [1, MaxAdaptiveBuffer].
	// Relaxation() reports the worst case 2·N·MaxAdaptiveBuffer when
	// an adaptor is set.
	BufferAdaptor func(hint uint64, current int) int
	// Pool, when non-nil, is the shared propagation executor this
	// sketch attaches to; the sketch then spawns no goroutine of its
	// own and must be closed before the pool. Nil gives the sketch a
	// dedicated single-worker pool — the paper's per-sketch propagator
	// thread.
	Pool *PropagatorPool
	// AffinityKey pins the sketch to one of the pool's workers: equal
	// nonzero keys always map to the same worker (keyed tables pass
	// the key hash, so a key's sketch keeps its home worker across
	// epoch rotations). Zero means no preference: the pool assigns a
	// worker round-robin at attach time.
	AffinityKey uint64
}

// MaxAdaptiveBuffer caps BufferAdaptor results so the relaxation bound
// stays finite and reportable.
const MaxAdaptiveBuffer = 1 << 14

// DefaultConfig returns the configuration used throughout the paper's
// evaluation for a given writer count: double buffering on, eager phase
// sized for error bound e = 0.04.
func DefaultConfig(writers int) Config {
	return Config{
		Writers:         writers,
		BufferSize:      5,
		EagerLimit:      EagerLimitFor(0.04),
		DoubleBuffering: true,
	}
}

// BufferSizeFor derives the local buffer size b from the sketch
// accuracy parameter k, the maximum tolerated relaxation error e and
// the writer count N. Two regimes constrain b (r = 2·N·b):
//
//   - estimation mode (n > k): RSE ≤ 1/sqrt(k-2) + r/(k-2) (§6.1), so
//     r/(k-2) ≤ e requires b ≤ e·(k-2)/(2N);
//   - exact mode (n ≤ k): a query may miss r of n updates, a relative
//     error of r/n; the worst case is at the eager cutoff n = 2/e²
//     (§5.3), so r·e²/2 ≤ e requires b ≤ 1/(e·N).
//
// The result is the tighter of the two, clamped to [1, 256]. For the
// paper's configuration (k=4096, e=0.04, N=12) this yields b = 2,
// consistent with the implementation's reported "value between 1 and
// 5" (§7.1). e >= 1 means "no error target": only the estimation-mode
// bound applies.
func BufferSizeFor(k int, e float64, writers int) int {
	if writers <= 0 {
		panic("core: writers must be positive")
	}
	if e <= 0 || k <= 2 {
		return 1
	}
	n := float64(writers)
	b := e * float64(k-2) / (2 * n)
	if e < 1 {
		if exact := 1 / (e * n); exact < b {
			b = exact
		}
	}
	bi := int(b)
	if bi < 1 {
		bi = 1
	}
	if bi > 256 {
		bi = 256
	}
	return bi
}

// EagerLimitFor returns the eager-propagation cutoff 2/e² used by the
// implementation (§7.1). Error bounds e >= 1 disable the eager phase
// (the paper's e = 1.0 "no eager" configuration).
func EagerLimitFor(e float64) int {
	if e >= 1 || e <= 0 {
		return 0
	}
	return int(2/(e*e) + 0.5)
}

// Sketch is a concurrent sketch built from a composable global sketch
// and per-writer locals. Create with New, obtain writer handles with
// Writer, query with Query, and Close when done.
type Sketch[U any, S any] struct {
	global Global[U, S]
	cfg    Config
	// writers[i] is slot i's handle, created lazily on first Writer(i)
	// call — keyed tables instantiate one sketch per key with N slots,
	// and a key touched by only a few of the N table writers must not
	// pay for the others' local buffers. Slot creation is safe under
	// the handle contract (slot i is driven by one goroutine), and the
	// propagator only ever dereferences slots whose ids were enqueued
	// after creation; the Close drain skips nil slots.
	writers []*Writer[U, S]
	// mkMu serialises lazy slot creation: newLocal factories may share
	// mutable state (e.g. a forked RNG oracle), so concurrent first
	// calls for distinct slots must not run the factory in parallel.
	mkMu sync.Mutex
	// newLocal allocates a writer-local buffer sketch (retained for
	// lazy slot creation).
	newLocal func() Local[U]
	// initialHint is the pre-filtering hint captured at New, used for
	// every lazily created writer: reading a fresh hint at creation
	// time would race the propagator's merges, and a stale hint is
	// always safe (it only admits more).
	initialHint uint64

	// eager is true while the stream is short enough that updates go
	// directly to the global sketch (§5.3). eagerMu serialises the
	// global sketch between eager writers; eagerCount counts applied
	// eager updates and is guarded by eagerMu.
	eager      atomic.Bool
	eagerMu    sync.Mutex
	eagerCount int

	// pending is the sketch's private MPSC handoff queue: writers
	// enqueue their index after storing prop = 0, and a pool worker
	// merges exactly those slots, so wakeup cost is O(outstanding
	// handoffs) instead of a full O(N) slot scan. The prop protocol
	// guarantees at most one outstanding handoff per writer, so
	// capacity N means enqueues never block.
	pending chan int
	// scheduled is true while the sketch sits in the pool's run queue
	// or a worker is draining pending; it serialises propagation so at
	// most one goroutine merges into the global sketch at a time.
	scheduled atomic.Bool
	// inflight counts handoffs enqueued but not yet merged; Close on a
	// shared pool waits for it to reach zero.
	inflight atomic.Int64

	pool *PropagatorPool
	// affinity is the sketch's home worker in pool, fixed at attach.
	affinity int
	// ownPool is true when the sketch created its pool (the dedicated
	// single-propagator default) and is responsible for closing it.
	ownPool bool

	closed atomic.Bool

	// propagations counts completed merges (observability + tests).
	propagations atomic.Int64
	// fullScans counts full slot scans; after the queue refactor only
	// the Close drain scans, which the handoff-path tests pin down.
	fullScans atomic.Int64
}

// New creates a concurrent sketch. newLocal is called 2·N times to
// allocate the writer-local sketches (N times for ParSketch). Unless
// cfg.Pool is set, the returned sketch owns a background propagator
// goroutine until Close.
func New[U any, S any](global Global[U, S], newLocal func() Local[U], cfg Config) *Sketch[U, S] {
	if cfg.Writers <= 0 {
		panic("core: Config.Writers must be positive")
	}
	if cfg.BufferSize <= 0 {
		panic("core: Config.BufferSize must be positive")
	}
	s := &Sketch[U, S]{
		global:  global,
		cfg:     cfg,
		pending: make(chan int, cfg.Writers),
		pool:    cfg.Pool,
	}
	if s.pool == nil {
		s.pool = NewPropagatorPool(1)
		s.ownPool = true
	}
	s.affinity = s.pool.attach(cfg.AffinityKey)
	s.eager.Store(cfg.EagerLimit > 0)
	s.newLocal = newLocal
	s.initialHint = nonzero(global.CalcHint())
	s.writers = make([]*Writer[U, S], cfg.Writers)
	return s
}

// Writer returns the i-th writer handle (0 <= i < Config.Writers),
// creating it (and its local buffers) on first use. Each handle must
// be used by at most one goroutine at a time; concurrent first calls
// for distinct slots are safe (distinct slice elements).
func (s *Sketch[U, S]) Writer(i int) *Writer[U, S] {
	if i < 0 || i >= len(s.writers) {
		panic(fmt.Sprintf("core: writer index %d out of range [0,%d)", i, len(s.writers)))
	}
	if w := s.writers[i]; w != nil {
		return w
	}
	s.mkMu.Lock()
	defer s.mkMu.Unlock()
	if w := s.writers[i]; w != nil {
		return w
	}
	w := &Writer[U, S]{parent: s, id: i, b: s.cfg.BufferSize, hint: s.initialHint}
	w.prop.Store(s.initialHint)
	s.writers[i] = w
	return w
}

// initLocals allocates the writer's first local buffer sketch on first
// buffered use. Handles that never leave the eager phase — the long
// tail of a keyed table's key population — never allocate locals at
// all; the check is one nil test on the buffered paths. The standby
// buffer (double buffering) is deferred further, to the first handoff:
// a slot that buffers a few updates but never fills b pays for one
// local, not two.
func (w *Writer[U, S]) initLocals() {
	p := w.parent
	p.mkMu.Lock()
	w.local[0] = p.newLocal()
	p.mkMu.Unlock()
}

// ensureStandby allocates the double-buffering standby local on the
// first handoff.
func (w *Writer[U, S]) ensureStandby() {
	if w.local[1] != nil {
		return
	}
	p := w.parent
	p.mkMu.Lock()
	w.local[1] = p.newLocal()
	p.mkMu.Unlock()
}

// NumWriters returns the configured writer count N.
func (s *Sketch[U, S]) NumWriters() int { return len(s.writers) }

// Relaxation returns the query relaxation bound r: queries may miss up
// to r of the updates that precede them (Theorem 1). With an adaptive
// buffer the worst-case cap is reported.
func (s *Sketch[U, S]) Relaxation() int {
	b := s.cfg.BufferSize
	if s.cfg.BufferAdaptor != nil {
		b = MaxAdaptiveBuffer
	}
	if s.cfg.DoubleBuffering {
		return 2 * s.cfg.Writers * b
	}
	return s.cfg.Writers * b
}

// Query returns the current snapshot. It is wait-free: a single atomic
// read, never blocked by writers or the propagator.
func (s *Sketch[U, S]) Query() S { return s.global.Snapshot() }

// Propagations returns the number of buffer merges completed so far.
func (s *Sketch[U, S]) Propagations() int64 { return s.propagations.Load() }

// Eager reports whether the sketch is still in the eager
// (sequential, small-stream) phase.
func (s *Sketch[U, S]) Eager() bool { return s.eager.Load() }

// Close detaches the sketch from propagation after draining all
// handed-off buffers: an owned pool is shut down, a shared pool keeps
// serving its other sketches. Callers must stop updating and call
// Flush on each writer first if they need every buffered update
// reflected in the final state. Close is idempotent.
func (s *Sketch[U, S]) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ownPool {
		s.pool.Close()
	} else {
		// Wait until the pool has merged every outstanding handoff of
		// this sketch and no worker is still draining it.
		for i := 0; s.inflight.Load() > 0 || s.scheduled.Load(); i++ {
			if i < 128 {
				runtime.Gosched()
			} else {
				time.Sleep(time.Microsecond)
			}
		}
	}
	s.pool.detach()
	s.scan() // final drain
}

// Pool returns the propagation executor this sketch is attached to.
func (s *Sketch[U, S]) Pool() *PropagatorPool { return s.pool }

// Writer is the per-goroutine update handle (thread t_i of Algorithm
// 2). Not safe for concurrent use by multiple goroutines.
type Writer[U any, S any] struct {
	parent *Sketch[U, S]
	id     int

	// local[cur] is the sketch currently absorbing updates; with
	// double buffering local[1-cur] belongs to the propagator whenever
	// prop == 0. Without double buffering only local[0] exists.
	local   [2]Local[U]
	cur     int
	counter int
	b       int
	hint    uint64

	// prop is the handoff word: 0 while the propagator owns the
	// standby buffer, otherwise the latest hint. All cross-thread
	// visibility of the local sketch is ordered through it.
	prop atomic.Uint64
}

// Update processes one pre-filtered update (Algorithm 2, update_i).
func (w *Writer[U, S]) Update(u U) {
	p := w.parent
	if p.eager.Load() {
		if p.eagerUpdate(u) {
			return
		}
	}
	if !p.global.ShouldAdd(w.hint, u) {
		return
	}
	if w.local[0] == nil {
		w.initLocals()
	}
	w.local[w.cur].Update(u)
	w.counter++
	if w.counter == w.b {
		w.handoff()
	}
}

// UpdateBatch processes a slice of updates as if Update were called on
// each element in order, amortising the eager-phase check, the hint
// load, and the counter arithmetic over the whole slice: the eager
// prefix is applied under one lock acquisition, and the local buffer
// is filled in contiguous runs (a single UpdateSlice call per run when
// the local implements BatchLocal) with a handoff at each buffer
// boundary.
func (w *Writer[U, S]) UpdateBatch(us []U) { w.updateBatch(us, true) }

// UpdateBatchPrefiltered is UpdateBatch for callers that have already
// applied ShouldAdd to every element — the sketch instantiations
// pre-filter in the same pass that hashes the raw items, so the
// framework skips the per-item ShouldAdd interface call entirely.
// Elements filtered against a hint that has since become stale are
// still safe to admit: pre-filtering is an optimisation and the global
// sketch re-checks every update on merge.
func (w *Writer[U, S]) UpdateBatchPrefiltered(us []U) { w.updateBatch(us, false) }

func (w *Writer[U, S]) updateBatch(us []U, filter bool) {
	if len(us) == 0 {
		return
	}
	p := w.parent
	if p.eager.Load() {
		us = p.eagerUpdateBatch(us)
	}
	if len(us) == 0 {
		return
	}
	if w.local[0] == nil {
		w.initLocals()
	}
	local := w.local[w.cur]
	bulk, isBulk := local.(BatchLocal[U])
	for len(us) > 0 {
		room := w.b - w.counter
		var run []U
		if filter {
			// One scan: skip the rejected prefix, then take the admitted
			// run that fits the remaining buffer space (each element is
			// checked exactly once).
			i := 0
			for i < len(us) && !p.global.ShouldAdd(w.hint, us[i]) {
				i++
			}
			n := i
			if n < len(us) {
				n++ // us[i] is known admitted, and room >= 1 always holds
				for n < len(us) && n-i < room && p.global.ShouldAdd(w.hint, us[n]) {
					n++
				}
			}
			run, us = us[i:n], us[n:]
		} else {
			n := len(us)
			if n > room {
				n = room
			}
			run, us = us[:n], us[n:]
		}
		if len(run) > 0 {
			if isBulk {
				bulk.UpdateSlice(run)
			} else {
				for _, u := range run {
					local.Update(u)
				}
			}
			w.counter += len(run)
		}
		if w.counter == w.b {
			w.handoff()
			// handoff flipped cur (and may have refreshed hint and b).
			local = w.local[w.cur]
			if isBulk {
				bulk = local.(BatchLocal[U])
			}
		}
	}
}

// Hint returns the writer's current pre-filtering hint (exposed for
// tests and diagnostics).
func (w *Writer[U, S]) Hint() uint64 { return w.hint }

// eagerUpdate applies u directly to the global sketch while in the
// eager phase. It returns false if the phase ended before the update
// was applied; the caller then falls through to the buffered path.
func (s *Sketch[U, S]) eagerUpdate(u U) bool {
	s.eagerMu.Lock()
	if !s.eager.Load() {
		s.eagerMu.Unlock()
		return false
	}
	s.global.UpdateDirect(u)
	s.eagerCount++
	if s.eagerCount >= s.cfg.EagerLimit {
		// Last eager update: subsequent updates buffer lazily. No
		// lazy merge can have raced us — writers only hand off after
		// observing eager == false.
		s.eager.Store(false)
	}
	s.eagerMu.Unlock()
	return true
}

// eagerUpdateBatch applies a prefix of us directly to the global
// sketch under one lock acquisition and returns the remaining suffix.
// If the eager phase ends mid-batch (or ended before the lock was
// acquired) the rest of the batch is left for the lazy path.
func (s *Sketch[U, S]) eagerUpdateBatch(us []U) []U {
	s.eagerMu.Lock()
	defer s.eagerMu.Unlock()
	if !s.eager.Load() {
		return us
	}
	n := len(us)
	if rem := s.cfg.EagerLimit - s.eagerCount; n > rem {
		n = rem
	}
	for _, u := range us[:n] {
		s.global.UpdateDirect(u)
	}
	s.eagerCount += n
	if s.eagerCount >= s.cfg.EagerLimit {
		s.eager.Store(false)
	}
	return us[n:]
}

// handoff passes the filled buffer to the propagator (lines 123-129 of
// Algorithm 2) and, with double buffering, immediately switches to the
// standby buffer.
func (w *Writer[U, S]) handoff() {
	p := w.parent
	if p.cfg.DoubleBuffering {
		w.ensureStandby()
		// Wait until the previous propagation completed (line 125).
		w.waitPropNonzero()
		w.hint = w.prop.Load() // line 127: piggybacked hint
		w.adaptBuffer()
		w.cur = 1 - w.cur // line 126: flip to the fresh buffer
		w.counter = 0
		w.prop.Store(0) // line 129: hand the filled buffer over
		p.signalHandoff(w.id)
		return
	}
	// ParSketch (no gray lines): signal first, then block until the
	// propagator finishes with our only buffer (lines 124-125).
	w.prop.Store(0)
	p.signalHandoff(w.id)
	w.waitPropNonzero()
	w.hint = w.prop.Load()
	w.adaptBuffer()
	w.counter = 0
}

// adaptBuffer resizes the local buffer from the latest hint (§8
// extension). No-op without a configured adaptor.
func (w *Writer[U, S]) adaptBuffer() {
	adapt := w.parent.cfg.BufferAdaptor
	if adapt == nil {
		return
	}
	b := adapt(w.hint, w.b)
	if b < 1 {
		b = 1
	}
	if b > MaxAdaptiveBuffer {
		b = MaxAdaptiveBuffer
	}
	w.b = b
}

// CurrentBufferSize returns the writer's current local buffer size
// (changes over time when a BufferAdaptor is configured).
func (w *Writer[U, S]) CurrentBufferSize() int { return w.b }

// Flush hands off a partially filled buffer and blocks until the
// propagator has folded every previously handed-off buffer of this
// writer into the global sketch. After Flush returns, all of this
// writer's updates are visible to queries.
func (w *Writer[U, S]) Flush() {
	if w.counter > 0 {
		w.handoff()
	}
	w.waitPropNonzero()
}

// waitPropNonzero spins until the propagator finishes with this
// writer's standby buffer (line 125). The paper busy-waits; we yield
// first and fall back to microsecond sleeps so that oversubscribed
// schedulers (more runnable goroutines than cores) still let the
// propagator run promptly.
func (w *Writer[U, S]) waitPropNonzero() {
	p := w.parent
	for i := 0; w.prop.Load() == 0; i++ {
		if p.closed.Load() {
			panic("core: Update/Flush after Close")
		}
		if i < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// signalHandoff enqueues the writer's index on the sketch's private
// queue and, on the idle-to-scheduled transition, enters the sketch
// into the pool's run queue. The send never blocks: each writer has at
// most one outstanding handoff (it must observe prop != 0 before
// handing off again), so the queue holds at most N entries.
func (s *Sketch[U, S]) signalHandoff(id int) {
	s.inflight.Add(1)
	s.pending <- id
	if s.scheduled.CompareAndSwap(false, true) {
		s.pool.submit(s, s.affinity)
	}
}

// runPropagation is the body of the merger thread t_0 (Algorithm 2,
// propagator procedure), executed by a pool worker. It merges exactly
// the slots that writers enqueued — O(outstanding handoffs), never a
// full O(N) slot scan — then clears the scheduled flag. A handoff
// that raced the drain re-enters the sketch at the tail of the pool's
// run queue rather than looping here, so one hot sketch cannot starve
// the pool's other sketches.
func (s *Sketch[U, S]) runPropagation() {
	// Merge at most N handoffs per run — the most that can be
	// outstanding at one instant. Without the bound, a sketch whose
	// writers refill the queue as fast as it drains would never hit
	// the empty case and would capture this worker forever, starving
	// the pool's other sketches.
	budget := cap(s.pending)
	for budget > 0 {
		select {
		case id := <-s.pending:
			s.merge(s.writers[id])
			s.inflight.Add(-1)
			budget--
			continue
		default:
		}
		break
	}
	s.scheduled.Store(false)
	// Re-check after clearing the flag: a writer that enqueued between
	// the drain and the Store saw scheduled == true and did not submit.
	if len(s.pending) != 0 && s.scheduled.CompareAndSwap(false, true) {
		s.pool.submit(s, s.affinity)
	}
}

// merge folds one writer's handed-off buffer into the global sketch
// (lines 112-115 of Algorithm 2, for a single slot).
func (s *Sketch[U, S]) merge(w *Writer[U, S]) {
	if w.prop.Load() != 0 {
		// Already merged (a queue entry can go stale only through the
		// Close-drain scan below).
		return
	}
	idx := 0
	if s.cfg.DoubleBuffering {
		// Safe: the writer never touches cur while prop == 0.
		idx = 1 - w.cur
	}
	l := w.local[idx]
	s.global.Merge(l) // line 113
	l.Reset()         // line 114
	s.propagations.Add(1)
	w.prop.Store(nonzero(s.global.CalcHint())) // line 115
}

// scan performs one pass over all writer slots, merging every
// handed-off buffer. Only the Close drain uses it, to catch a writer
// that stored prop = 0 but had not yet enqueued when Close fired.
// Slots never handed out are nil and skipped.
func (s *Sketch[U, S]) scan() {
	s.fullScans.Add(1)
	for _, w := range s.writers {
		if w != nil {
			s.merge(w)
		}
	}
}

func nonzero(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}
