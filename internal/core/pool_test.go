package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// newPooledCounting builds a counting sketch attached to a shared pool
// (the counting fixtures live in core_test.go / batch_test.go).
func newPooledCounting(pool *PropagatorPool, cfg Config) (*Sketch[int64, int64], *countGlobal) {
	cfg.Pool = pool
	return newCounting(cfg)
}

// TestPoolSharedAcrossSketches runs many sketches on one small pool and
// checks every sketch's total is exact after Flush + Close.
func TestPoolSharedAcrossSketches(t *testing.T) {
	pool := NewPropagatorPool(2)
	defer pool.Close()
	const sketches, updates = 32, 500
	sks := make([]*Sketch[int64, int64], sketches)
	for i := range sks {
		sks[i], _ = newPooledCounting(pool, Config{Writers: 1, BufferSize: 3, DoubleBuffering: true})
	}
	var wg sync.WaitGroup
	for _, s := range sks {
		wg.Add(1)
		go func(s *Sketch[int64, int64]) {
			defer wg.Done()
			w := s.Writer(0)
			for j := 0; j < updates; j++ {
				w.Update(1)
			}
			w.Flush()
		}(s)
	}
	wg.Wait()
	for i, s := range sks {
		if got := s.Query(); got != updates {
			t.Errorf("sketch %d: total = %d, want %d", i, got, updates)
		}
		s.Close()
	}
}

// TestPoolGoroutineCountIndependentOfSketches pins the tentpole
// property: attaching more sketches to a shared pool must not spawn
// more goroutines.
func TestPoolGoroutineCountIndependentOfSketches(t *testing.T) {
	pool := NewPropagatorPool(4)
	defer pool.Close()
	base := runtime.NumGoroutine()
	const sketches = 1000
	sks := make([]*Sketch[int64, int64], sketches)
	for i := range sks {
		sks[i], _ = newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	}
	// A generous slack of 8 absorbs unrelated runtime goroutines; the
	// point is that growth is O(1), not O(sketches).
	if got := runtime.NumGoroutine(); got > base+8 {
		t.Fatalf("goroutines grew from %d to %d after %d sketches; want O(1) growth", base, got, sketches)
	}
	for _, s := range sks {
		w := s.Writer(0)
		for j := 0; j < 10; j++ {
			w.Update(1)
		}
		w.Flush()
	}
	for i, s := range sks {
		if got := s.Query(); got != 10 {
			t.Errorf("sketch %d: total = %d, want 10", i, got)
		}
		s.Close()
	}
	if n := pool.Sketches(); n != 0 {
		t.Errorf("pool reports %d attached sketches after all closed, want 0", n)
	}
}

// TestPoolSketchCloseLeavesPoolServing closes one sketch and checks the
// pool still propagates for its siblings.
func TestPoolSketchCloseLeavesPoolServing(t *testing.T) {
	pool := NewPropagatorPool(1)
	defer pool.Close()
	a, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	b, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	wa := a.Writer(0)
	for i := 0; i < 100; i++ {
		wa.Update(1)
	}
	wa.Flush()
	a.Close()
	if got := a.Query(); got != 100 {
		t.Fatalf("closed sketch total = %d, want 100", got)
	}
	wb := b.Writer(0)
	for i := 0; i < 100; i++ {
		wb.Update(1)
	}
	wb.Flush()
	if got := b.Query(); got != 100 {
		t.Fatalf("sibling total = %d, want 100 after sibling close", got)
	}
	b.Close()
}

// TestPoolCloseIdempotent double-closes pools and pooled sketches.
func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPropagatorPool(2)
	s, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	s.Close()
	s.Close()
	pool.Close()
	pool.Close()
}

// TestPoolCloseDrainsPendingHandoffs hands off and closes immediately
// (no Flush): Close must still fold the handed-off buffer in.
func TestPoolCloseDrainsPendingHandoffs(t *testing.T) {
	pool := NewPropagatorPool(1)
	defer pool.Close()
	s, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	w := s.Writer(0)
	w.Update(1)
	w.Update(1) // fills the buffer: handoff enqueued
	s.Close()   // no Flush: Close's drain + scan must pick it up
	if got := s.Query(); got != 2 {
		t.Fatalf("total after Close = %d, want 2", got)
	}
}

// TestPoolFullScanOnlyOnClose extends the queue-driven pin to shared
// pools: exactly one full slot scan, at Close.
func TestPoolFullScanOnlyOnClose(t *testing.T) {
	pool := NewPropagatorPool(2)
	defer pool.Close()
	s, _ := newPooledCounting(pool, Config{Writers: 4, BufferSize: 2, DoubleBuffering: true})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < 200; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.fullScans.Load(); got != 0 {
		t.Errorf("full scans before Close = %d, want 0", got)
	}
	s.Close()
	if got := s.fullScans.Load(); got != 1 {
		t.Errorf("full scans after Close = %d, want 1", got)
	}
	if got := s.Query(); got != 800 {
		t.Errorf("total = %d, want 800", got)
	}
}

// TestPoolAffinityStable pins the attach contract: equal nonzero
// affinity keys map to the same home worker (key mod workers), and
// zero keys round-robin over all workers.
func TestPoolAffinityStable(t *testing.T) {
	pool := NewPropagatorPool(4)
	defer pool.Close()
	for _, key := range []uint64{1, 5, 7, 123} {
		a, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true, AffinityKey: key})
		b, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true, AffinityKey: key})
		if a.affinity != b.affinity {
			t.Errorf("key %d: affinities %d vs %d, want equal", key, a.affinity, b.affinity)
		}
		if want := int(key % 4); a.affinity != want {
			t.Errorf("key %d: affinity %d, want %d", key, a.affinity, want)
		}
		a.Close()
		b.Close()
	}
	seen := make(map[int]bool)
	var auto []*Sketch[int64, int64]
	for i := 0; i < 8; i++ {
		s, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
		seen[s.affinity] = true
		auto = append(auto, s)
	}
	if len(seen) != 4 {
		t.Errorf("round-robin attach covered %d of 4 workers", len(seen))
	}
	for _, s := range auto {
		s.Close()
	}
}

// noopTask is an inert propagable for queue mechanics tests.
type noopTask struct{}

func (noopTask) runPropagation() {}

// TestPoolWorkerQueueShrinksAfterBurst pins the compaction satellite:
// a run queue that absorbed a large burst drops its backing array when
// it drains, so idle pools do not pin burst-sized slices.
func TestPoolWorkerQueueShrinksAfterBurst(t *testing.T) {
	var w poolWorker
	const burst = 4 * maxIdleCap
	for i := 0; i < burst; i++ {
		w.runq = append(w.runq, noopTask{})
	}
	for i := 0; i < burst; i++ {
		if w.pop() == nil {
			t.Fatalf("pop %d: queue empty early", i)
		}
	}
	if w.pop() != nil {
		t.Fatal("queue should be empty")
	}
	if c := cap(w.runq); c > maxIdleCap {
		t.Errorf("retained capacity %d after burst drain, want <= %d", c, maxIdleCap)
	}
}

// TestPoolHotSketchDoesNotStarveSiblings drives one multi-writer
// sketch hard on a single-worker pool while a sibling flushes; the
// sibling must make progress in bounded time because a sketch's drain
// is bounded per run and a re-scheduled sketch goes to the tail of
// the run queue. (Two hot writers with b=1 can refill the pending
// queue as fast as it drains, so an unbounded drain would capture the
// only worker forever.)
func TestPoolHotSketchDoesNotStarveSiblings(t *testing.T) {
	pool := NewPropagatorPool(1)
	defer pool.Close()
	const hotWriters = 2
	hot, _ := newPooledCounting(pool, Config{Writers: hotWriters, BufferSize: 1, DoubleBuffering: true})
	cold, _ := newPooledCounting(pool, Config{Writers: 1, BufferSize: 1, DoubleBuffering: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < hotWriters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := hot.Writer(i)
			for {
				select {
				case <-stop:
					w.Flush()
					return
				default:
					w.Update(1)
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		w := cold.Writer(0)
		for i := 0; i < 100; i++ {
			w.Update(1)
		}
		w.Flush()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cold sketch starved: Flush did not complete in 10s")
	}
	close(stop)
	wg.Wait()
	if got := cold.Query(); got != 100 {
		t.Errorf("cold total = %d, want 100", got)
	}
	hot.Close()
	cold.Close()
}
