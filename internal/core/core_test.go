package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countGlobal is a deterministic composable sketch used to test the
// framework in isolation: its state is an exact update counter, so
// relaxation bounds can be checked precisely (this is the Θ sketch's
// "exact mode" in miniature). U = int64 increments, S = int64 total.
type countGlobal struct {
	total atomic.Int64
	// hintVal lets tests script CalcHint outputs.
	hintVal atomic.Uint64
	// filterBelow, when > 0, makes ShouldAdd reject updates < hint
	// (mimicking Θ pre-filtering with the hint as a threshold).
	filterOn bool
}

type countLocal struct{ n int64 }

func (l *countLocal) Update(u int64) { l.n += u }
func (l *countLocal) Reset()         { l.n = 0 }

func (g *countGlobal) Merge(l Local[int64]) {
	switch v := l.(type) {
	case *countLocal:
		g.total.Add(v.n)
	case *batchCountLocal:
		g.total.Add(v.n)
	default:
		panic("unknown local type")
	}
}
func (g *countGlobal) UpdateDirect(u int64) { g.total.Add(u) }
func (g *countGlobal) Snapshot() int64      { return g.total.Load() }
func (g *countGlobal) CalcHint() uint64     { return g.hintVal.Load() }
func (g *countGlobal) ShouldAdd(hint uint64, u int64) bool {
	if !g.filterOn {
		return true
	}
	return u >= int64(hint)
}

func newCounting(cfg Config) (*Sketch[int64, int64], *countGlobal) {
	g := &countGlobal{}
	g.hintVal.Store(1)
	s := New[int64, int64](g, func() Local[int64] { return &countLocal{} }, cfg)
	return s, g
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero writers": {Writers: 0, BufferSize: 1},
		"zero buffer":  {Writers: 1, BufferSize: 0},
		"neg writers":  {Writers: -1, BufferSize: 1},
		"neg buffer":   {Writers: 1, BufferSize: -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			newCounting(cfg)
		}()
	}
}

func TestBufferSizeFor(t *testing.T) {
	tests := []struct {
		k       int
		e       float64
		writers int
		want    int
	}{
		{4096, 0.04, 12, 2}, // the paper's configuration (§7.1): "1 to 5"
		{4096, 0.04, 1, 25}, // single writer: exact-mode bound 1/(e·N)
		{256, 0.04, 12, 1},  // clamped up to 1
		{4096, 1.0, 1, 256}, // no error target: estimation bound, clamped
		{4096, 0, 4, 1},     // degenerate e
		{2, 0.5, 4, 1},      // degenerate k
	}
	for _, tc := range tests {
		if got := BufferSizeFor(tc.k, tc.e, tc.writers); got != tc.want {
			t.Errorf("BufferSizeFor(%d, %v, %d) = %d, want %d", tc.k, tc.e, tc.writers, got, tc.want)
		}
	}
}

func TestBufferSizeForPanicsOnBadWriters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for writers=0")
		}
	}()
	BufferSizeFor(4096, 0.04, 0)
}

func TestEagerLimitFor(t *testing.T) {
	tests := []struct {
		e    float64
		want int
	}{
		{0.04, 1250}, // the paper's 2/e² = 1250 (§7.1)
		{0.1, 200},
		{1.0, 0}, // "no eager" configuration
		{0, 0},
		{-1, 0},
	}
	for _, tc := range tests {
		if got := EagerLimitFor(tc.e); got != tc.want {
			t.Errorf("EagerLimitFor(%v) = %d, want %d", tc.e, got, tc.want)
		}
	}
}

func TestSingleWriterFlushVisibility(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 7, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	const n = 1000
	for i := 0; i < n; i++ {
		w.Update(1)
	}
	w.Flush()
	if got := s.Query(); got != n {
		t.Errorf("after flush: query = %d, want %d", got, n)
	}
}

func TestMultiWriterFlushVisibility(t *testing.T) {
	const writers, perWriter = 4, 10000
	s, _ := newCounting(Config{Writers: writers, BufferSize: 16, DoubleBuffering: true})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < perWriter; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.Query(); got != writers*perWriter {
		t.Errorf("query = %d, want %d", got, writers*perWriter)
	}
}

func TestRelaxationBoundWithoutFlush(t *testing.T) {
	// Theorem 1: a query misses at most r = 2Nb updates. After writers
	// stop (no flush) and the propagator quiesces, the only missing
	// updates are those still in local buffers — necessarily <= r.
	const writers, perWriter, b = 3, 5000, 8
	s, _ := newCounting(Config{Writers: writers, BufferSize: b, DoubleBuffering: true})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < perWriter; j++ {
				w.Update(1)
			}
		}(i)
	}
	wg.Wait()
	waitQuiesce(t, s)
	got := s.Query()
	total := int64(writers * perWriter)
	r := int64(s.Relaxation())
	if got > total {
		t.Errorf("query %d exceeds total updates %d", got, total)
	}
	if got < total-r {
		t.Errorf("query %d misses more than r=%d of %d updates", got, r, total)
	}
}

// waitQuiesce waits for the propagator to drain all handed-off buffers.
func waitQuiesce(t *testing.T, s *Sketch[int64, int64]) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := int64(-1)
	for time.Now().Before(deadline) {
		cur := s.Propagations()
		q := s.Query()
		time.Sleep(10 * time.Millisecond)
		if cur == prev && q == s.Query() {
			return
		}
		prev = cur
	}
	t.Fatal("propagator did not quiesce")
}

func TestRelaxationReporting(t *testing.T) {
	s, _ := newCounting(Config{Writers: 3, BufferSize: 8, DoubleBuffering: true})
	if r := s.Relaxation(); r != 48 {
		t.Errorf("Relaxation (opt) = %d, want 2*3*8 = 48", r)
	}
	s.Close()
	s2, _ := newCounting(Config{Writers: 3, BufferSize: 8, DoubleBuffering: false})
	if r := s2.Relaxation(); r != 24 {
		t.Errorf("Relaxation (ParSketch) = %d, want 3*8 = 24", r)
	}
	s2.Close()
}

func TestEagerPhaseIsSequentiallyExact(t *testing.T) {
	// §5.3: during the eager phase every update is immediately visible,
	// i.e. the sketch behaves like the sequential one.
	const limit = 100
	s, _ := newCounting(Config{Writers: 2, BufferSize: 10, EagerLimit: limit, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	for i := int64(1); i <= limit; i++ {
		w.Update(1)
		if got := s.Query(); got != i {
			t.Fatalf("eager phase: after %d updates query = %d", i, got)
		}
	}
	if s.Eager() {
		t.Error("still eager after reaching the limit")
	}
}

func TestEagerToLazyTransition(t *testing.T) {
	const limit = 50
	s, _ := newCounting(Config{Writers: 1, BufferSize: 5, EagerLimit: limit, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	for i := 0; i < limit+100; i++ {
		w.Update(1)
	}
	w.Flush()
	if got := s.Query(); got != limit+100 {
		t.Errorf("after transition + flush: query = %d, want %d", got, limit+100)
	}
	if s.Propagations() == 0 {
		t.Error("no lazy propagations after eager phase ended")
	}
}

func TestEagerDisabled(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 10, EagerLimit: 0, DoubleBuffering: true})
	defer s.Close()
	if s.Eager() {
		t.Error("eager phase active with EagerLimit = 0")
	}
	w := s.Writer(0)
	w.Update(1)
	if got := s.Query(); got != 0 {
		t.Errorf("lazy sketch showed update before propagation: %d", got)
	}
}

func TestEagerConcurrentWriters(t *testing.T) {
	// Multiple writers racing through the eager phase must not lose or
	// double-apply updates across the transition.
	const writers, perWriter = 4, 2000
	s, _ := newCounting(Config{Writers: writers, BufferSize: 16, EagerLimit: 1000, DoubleBuffering: true})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < perWriter; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.Query(); got != writers*perWriter {
		t.Errorf("query = %d, want %d (lost/duplicated updates across eager transition)", got, writers*perWriter)
	}
}

func TestParSketchMode(t *testing.T) {
	// Non-optimised variant: single buffer, writer blocks during merge.
	s, _ := newCounting(Config{Writers: 2, BufferSize: 4, DoubleBuffering: false})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Writer(i)
			for j := 0; j < 5000; j++ {
				w.Update(1)
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if got := s.Query(); got != 10000 {
		t.Errorf("ParSketch query = %d, want 10000", got)
	}
}

func TestHintPiggybacking(t *testing.T) {
	// Line 115/127: the propagator piggybacks calcHint() on prop_i and
	// the writer adopts it at its next handoff.
	s, g := newCounting(Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	defer s.Close()
	g.hintVal.Store(42)
	w := s.Writer(0)
	for i := 0; i < 20; i++ {
		w.Update(1)
	}
	w.Flush()
	if h := w.Hint(); h != 42 {
		t.Errorf("writer hint = %d, want 42", h)
	}
}

func TestZeroHintMappedToOne(t *testing.T) {
	// The paper requires hints != 0 (0 is the handoff signal); the
	// framework must sanitize a sketch that returns 0.
	s, g := newCounting(Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	defer s.Close()
	g.hintVal.Store(0)
	w := s.Writer(0)
	for i := 0; i < 20; i++ {
		w.Update(1)
	}
	w.Flush()
	if h := w.Hint(); h != 1 {
		t.Errorf("writer hint = %d, want 1 (sanitized)", h)
	}
}

func TestShouldAddPreFiltering(t *testing.T) {
	// Filtered updates must never reach the global sketch and must not
	// count toward buffer fill.
	s, g := newCounting(Config{Writers: 1, BufferSize: 4, DoubleBuffering: true})
	defer s.Close()
	g.filterOn = true
	g.hintVal.Store(10) // ShouldAdd: u >= 10
	w := s.Writer(0)
	// Prime the writer's hint via one full buffer of passing updates.
	for i := 0; i < 8; i++ {
		w.Update(100)
	}
	w.Flush()
	if w.Hint() != 10 {
		t.Fatalf("hint = %d, want 10", w.Hint())
	}
	before := s.Query()
	for i := 0; i < 100; i++ {
		w.Update(5) // all filtered
	}
	w.Flush()
	if got := s.Query(); got != before {
		t.Errorf("filtered updates leaked into global: %d -> %d", before, got)
	}
	w.Update(100)
	w.Flush()
	if got := s.Query(); got != before+100 {
		t.Errorf("passing update lost after filtering: %d", got)
	}
}

func TestSnapshotMonotoneUnderConcurrency(t *testing.T) {
	// Strong-linearisability smoke test: for a monotone sketch
	// (counter), concurrent queries must never observe regression.
	s, _ := newCounting(Config{Writers: 2, BufferSize: 64, DoubleBuffering: true})
	defer s.Close()
	stop := make(chan struct{})
	var bad atomic.Int64
	var qwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			var prev int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := s.Query()
				if cur < prev {
					bad.Add(1)
					return
				}
				prev = cur
				runtime.Gosched() // don't starve writers on small machines
			}
		}()
	}
	var wwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			w := s.Writer(i)
			for j := 0; j < 20000; j++ {
				w.Update(1)
			}
		}(i)
	}
	wwg.Wait()
	close(stop)
	qwg.Wait()
	if bad.Load() != 0 {
		t.Error("a query observed the counter going backwards")
	}
}

func TestPropagationsCounter(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 10, DoubleBuffering: true})
	defer s.Close()
	w := s.Writer(0)
	for i := 0; i < 100; i++ {
		w.Update(1)
	}
	w.Flush()
	// 100 updates at b=10 → at least 10 handoffs (+1 partial possible).
	if p := s.Propagations(); p < 10 {
		t.Errorf("propagations = %d, want >= 10", p)
	}
}

func TestWriterIndexOutOfRangePanics(t *testing.T) {
	s, _ := newCounting(Config{Writers: 2, BufferSize: 2, DoubleBuffering: true})
	defer s.Close()
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Writer(%d) did not panic", i)
				}
			}()
			s.Writer(i)
		}()
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 2, DoubleBuffering: true})
	s.Close()
	s.Close() // must not panic or deadlock
}

func TestCloseDrainsHandedOffBuffers(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 5, DoubleBuffering: true})
	w := s.Writer(0)
	for i := 0; i < 50; i++ {
		w.Update(1)
	}
	// No flush: up to one handed-off buffer may still be pending; Close
	// must drain it rather than dropping it.
	s.Close()
	if got := s.Query(); got < 50-int64(s.Relaxation()) {
		t.Errorf("after close: query = %d, lost more than the relaxation", got)
	}
}

func TestUpdateAfterClosePanics(t *testing.T) {
	s, _ := newCounting(Config{Writers: 1, BufferSize: 1, DoubleBuffering: true})
	w := s.Writer(0)
	w.Update(1)
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("updates after Close did not panic")
		}
	}()
	// With b=1 every update hands off; the second handoff after close
	// can never complete and must panic loudly instead of spinning.
	for i := 0; i < 10; i++ {
		w.Update(1)
	}
}

func TestQueryIsWaitFreeUnderLoad(t *testing.T) {
	// A query must complete quickly even with writers saturating the
	// propagator — it is a single atomic read.
	s, _ := newCounting(Config{Writers: 2, BufferSize: 16, DoubleBuffering: true})
	defer s.Close()
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			w := s.Writer(i)
			for {
				select {
				case <-stop:
					return
				default:
					w.Update(1)
				}
			}
		}(i)
	}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		_ = s.Query()
	}
	elapsed := time.Since(start)
	close(stop)
	wwg.Wait()
	if elapsed > time.Second {
		t.Errorf("1000 queries took %v under write load", elapsed)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(8)
	if cfg.Writers != 8 || !cfg.DoubleBuffering || cfg.BufferSize <= 0 || cfg.EagerLimit != 1250 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
