//go:build goexperiment.synctest

package window

import (
	"testing"
	"testing/synctest"
	"time"

	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// These tests run under Go's synctest bubble (GOEXPERIMENT=synctest):
// time is virtual, so AutoRotate's Width-ticker fires deterministically
// — epoch boundaries land exactly where the test sleeps to, with no
// wall-clock sleeps and no flaky rotation races.

// TestSynctestAutoRotateExcludesExpired pins the ticker-driven window
// contract end to end: items ingested in the first epoch are visible
// for exactly Slots epochs of virtual time and excluded afterwards.
func TestSynctestAutoRotateExcludesExpired(t *testing.T) {
	synctest.Run(func() {
		eng := theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: 1, MaxError: 1})
		w := New(eng, Config{Slots: 3, Width: time.Second})
		w.AutoRotate()
		wr := w.Writer(0)

		for i := 0; i < 100; i++ {
			wr.Update(uint64(i))
		}
		wr.Flush()
		synctest.Wait()
		if got := w.QueryWindow(); got != 100 {
			t.Fatalf("active-epoch window = %v, want 100", got)
		}

		// 1.5 epochs in: one rotation has fired, items are sealed but
		// in-window.
		time.Sleep(1500 * time.Millisecond)
		synctest.Wait()
		if w.Epoch() != 1 {
			t.Fatalf("epoch after 1.5s = %d, want 1", w.Epoch())
		}
		if got := w.QueryWindow(); got != 100 {
			t.Fatalf("sealed-epoch window = %v, want 100", got)
		}

		// Past Slots epochs: the first epoch has expired.
		time.Sleep(2 * time.Second)
		synctest.Wait()
		if w.Epoch() != 3 {
			t.Fatalf("epoch after 3.5s = %d, want 3", w.Epoch())
		}
		if got := w.QueryWindow(); got != 0 {
			t.Fatalf("post-expiry window = %v, want 0", got)
		}
		if got := w.QueryWindowCached(); got != 0 {
			t.Fatalf("post-expiry cached window = %v, want 0", got)
		}
		w.Close()
	})
}

// TestSynctestAutoRotateTable drives the windowed keyed table on the
// virtual clock: per-key results age out after Slots epochs, the
// draining epoch's grace included, deterministically.
func TestSynctestAutoRotateTable(t *testing.T) {
	synctest.Run(func() {
		tcfg, eng := table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 1, Shards: 8},
			K:     1024, MaxError: 1,
		}.Engine()
		wt := NewTable(tcfg, eng, Config{Slots: 3, Width: time.Second})
		wt.AutoRotate()
		w := wt.Writer(0)

		for i := 0; i < 50; i++ {
			w.UpdateKeyed("t0", uint64(i))
		}
		w.FlushKey("t0")
		synctest.Wait()
		if got, ok := wt.QueryWindow("t0"); !ok || got != 50 {
			t.Fatalf("active-epoch query = %v (ok=%v), want 50", got, ok)
		}

		// After one rotation the key's epoch is draining; after two it
		// is a sealed snapshot; both in-window for Slots=3.
		for e := 1; e <= 2; e++ {
			time.Sleep(time.Second)
			synctest.Wait()
			if wt.Epoch() != int64(e) {
				t.Fatalf("epoch = %d, want %d", wt.Epoch(), e)
			}
			if got, ok := wt.QueryWindow("t0"); !ok || got != 50 {
				t.Fatalf("epoch %d query = %v (ok=%v), want 50", e, got, ok)
			}
		}

		// Third rotation expires the key's epoch entirely.
		time.Sleep(time.Second)
		synctest.Wait()
		if wt.Epoch() != 3 {
			t.Fatalf("epoch = %d, want 3", wt.Epoch())
		}
		if got, ok := wt.QueryWindow("t0"); ok {
			t.Fatalf("expired key still resolves: %v", got)
		}
		wt.Close()
	})
}

// TestSynctestRotationRelaxationBound: an un-flushed writer buffer at
// a rotation is bounded staleness, not loss — after the next virtual
// tick the straggling updates are folded into their (still in-window)
// epoch.
func TestSynctestRotationRelaxationBound(t *testing.T) {
	synctest.Run(func() {
		eng := theta.NewEngine(theta.ConcurrentConfig{
			K: 2048, Writers: 1, MaxError: 1, BufferSize: 256,
		})
		w := New(eng, Config{Slots: 4, Width: time.Second})
		w.AutoRotate()
		wr := w.Writer(0)

		for i := 0; i < 40; i++ {
			wr.Update(uint64(i)) // buffered, never handed off
		}
		// First tick seals epoch 0 with the 40 still in the local slot.
		time.Sleep(1100 * time.Millisecond)
		synctest.Wait()
		wr.Update(uint64(999)) // migration flush lands the 40 in epoch 0
		wr.Flush()
		// Next tick reseals epoch 0's compact with the stragglers.
		time.Sleep(time.Second)
		synctest.Wait()
		if got := w.QueryWindow(); got != 41 {
			t.Fatalf("window after reseal = %v, want 41", got)
		}
		w.Close()
	})
}
