// Package window implements sliding-window sketches on top of the
// generic mergeable-sketch engine (core.Engine): answers to
// "uniques/quantiles over the last R·W of stream" rather than the
// point-in-time "ever" answers of the base framework.
//
// The construction is an epoch ring: time is cut into epochs of width
// W, each epoch owns one live concurrent sketch built by the engine,
// and the window is the union of the most recent R epochs. Rotation
// (on a tick, or driven explicitly) installs a fresh sketch as the
// active epoch, closes the epoch that fell off the ring — expired data
// leaves the window wholesale, which is what makes sliding windows
// possible over merge-only (non-subtractable) sketches — and
// recomputes a cached aggregate of the sealed (non-active) epochs so
// queries merge two things, not R.
//
// Error bounds compose per epoch: every epoch sketch is the paper's
// r-relaxed concurrent sketch, so a window query may miss up to
// r = 2·N·b of the most recent updates of each epoch it spans
// (Theorem 1, applied slot-wise), on top of the window quantisation
// inherent to epoch rings (items expire in epoch-width steps). The
// sealed aggregate additionally lags a sealed epoch's unflushed tail
// until the next rotation folds it in — also bounded by r per epoch.
//
// Writers keep the framework's handle discipline: handle i of the
// window maps to writer slot i of whichever epoch sketch is active,
// re-binding (with a flush of the outgoing epoch's slot) on the first
// call after a rotation, so every slot is still driven by one
// goroutine at a time and no update is lost at an epoch boundary
// while its epoch is in the window.
package window

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/core"
)

// Config configures an epoch ring. The zero value gives 8 slots of one
// minute each (a ~8-minute sliding window) on an owned pool.
type Config struct {
	// Slots is R, the number of ring epochs (>= 2; default 8). The
	// window covers the R most recent epochs, active one included.
	Slots int
	// Width is W, one epoch's duration (default one minute). Rotation
	// is driven by AutoRotate (a W-ticker) or explicit Rotate calls;
	// Width also documents the window span Slots·Width.
	Width time.Duration
	// Propagators sizes the window's owned propagator pool (default
	// GOMAXPROCS). Ignored when Pool is set.
	Propagators int
	// Pool, when non-nil, is an external propagation executor shared
	// with other sketches, tables or windows; the caller closes it
	// after the window. Nil gives the window its own pool.
	Pool *core.PropagatorPool
	// ReadParallelism bounds the worker fan-out of the ring's parallel
	// read paths (the sealed-aggregate rebuild at rotation, the
	// windowed table's sealed-epoch merge): 0 means GOMAXPROCS at call
	// time, 1 forces the serial path. Ingestion is never affected. See
	// core.CommonConfig.ReadParallelism.
	ReadParallelism int
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.Slots < 2 {
		panic(fmt.Sprintf("window: Config.Slots must be >= 2, got %d", c.Slots))
	}
	if c.Width == 0 {
		c.Width = time.Minute
	}
	if c.Width < 0 {
		panic("window: Config.Width must be positive")
	}
	return c
}

// generation is one epoch's live sketch. mu serialises liveness:
// writers and queriers hold it shared around sketch calls, expiry
// holds it exclusive while closing. A generation stays live for its
// whole ring residency (R epochs), so late flushes from migrating
// writers still land while their epoch is in the window.
type generation[V, S, C any] struct {
	epoch  int64
	sk     core.EngineSketch[V, S, C]
	mu     sync.RWMutex
	closed bool
}

// winView is one immutable window state: the active epoch's
// generation plus the cached merge of the sealed (non-active,
// non-expired) generations' compacts, recomputed at every rotation.
type winView[V, S, C any] struct {
	active    *generation[V, S, C]
	sealedAgg *C // nil before the first rotation
}

// Windowed is an epoch-ring sliding-window sketch over one engine:
// create with New, ingest through Writer handles, advance epochs with
// Rotate (or AutoRotate), query the window with QueryWindow, and Close
// when done.
type Windowed[V, S, C any] struct {
	ring
	eng core.Engine[V, S, C]
	// affKey pins every epoch's sketch to one pool worker: rotation
	// creates the new epoch's sketch with the same affinity key, so the
	// window inherits its home worker instead of reshuffling each epoch
	// (the global sketch's cache line stays hot across rotations).
	affKey uint64
	gens   []*generation[V, S, C] // oldest first; last is active; under mu

	// view is the atomically published window state: the active
	// generation together with the matching sealed aggregate, swapped
	// as one pointer so a query racing a rotation always sees a
	// consistent epoch set (never a pre-rotation aggregate with the
	// post-rotation active sketch, which would drop a whole epoch).
	view atomic.Pointer[winView[V, S, C]]
	// published is the whole-window query snapshot refreshed by Rotate
	// and Drain, for the strictly wait-free QueryWindowCached.
	published atomic.Pointer[S]
}

// ring is the epoch-ring state shared by Windowed and Table:
// configuration, executor ownership, the epoch counter, rotation
// serialisation and the AutoRotate ticker.
type ring struct {
	cfg     Config
	pool    *core.PropagatorPool
	ownPool bool

	// mu serialises Rotate/AutoRotate/Drain/Close; never held on the
	// ingestion or query paths.
	mu     sync.Mutex
	closed bool
	tick   *rotator
	epoch  atomic.Int64
	// rotate is the owner's Rotate method, driven by AutoRotate.
	rotate func()

	// Observability counters, read by RegisterMetrics at scrape time:
	// rotations counts Rotate calls that advanced the epoch,
	// sealedRebuilds counts sealed-aggregate recomputations (eager on
	// rotation/drain for Windowed, lazy per-view for Table), expired
	// counts epochs dropped off the ring with their data.
	rotations      atomic.Int64
	sealedRebuilds atomic.Int64
	expired        atomic.Int64
	// recycles counts expired epoch sketches reused (Reset) for the
	// new active epoch instead of being torn down; hintCarries counts
	// rotations that seeded the new epoch with the previous epoch's
	// carried filter hint (Θ families only).
	recycles    atomic.Int64
	hintCarries atomic.Int64
}

// init wires the ring: cfg must already carry defaults. fallback, when
// non-nil and cfg.Pool is nil, is used as a shared (non-owned)
// executor; otherwise a nil pool means the ring owns a fresh one.
func (r *ring) init(cfg Config, fallback *core.PropagatorPool, rotate func()) {
	r.cfg = cfg
	r.rotate = rotate
	r.pool = cfg.Pool
	if r.pool == nil {
		r.pool = fallback
	}
	if r.pool == nil {
		r.pool = core.NewPropagatorPool(cfg.Propagators)
		r.ownPool = true
	}
}

// Epoch returns the current epoch number (0-based; incremented by each
// rotation).
func (r *ring) Epoch() int64 { return r.epoch.Load() }

// Rotations returns the number of epoch rotations performed.
func (r *ring) Rotations() int64 { return r.rotations.Load() }

// SealedRebuilds returns the number of sealed-aggregate recomputations.
func (r *ring) SealedRebuilds() int64 { return r.sealedRebuilds.Load() }

// ExpiredEpochs returns the number of epochs dropped off the ring.
func (r *ring) ExpiredEpochs() int64 { return r.expired.Load() }

// Recycles returns the number of expired epoch sketches reused for a
// fresh epoch via the engine's Reset path.
func (r *ring) Recycles() int64 { return r.recycles.Load() }

// HintCarries returns the number of rotations that seeded the new
// epoch with the previous epoch's carried filter hint.
func (r *ring) HintCarries() int64 { return r.hintCarries.Load() }

// Slots returns R, the ring size.
func (r *ring) Slots() int { return r.cfg.Slots }

// Width returns W, one epoch's duration.
func (r *ring) Width() time.Duration { return r.cfg.Width }

// Window returns the window span Slots·Width.
func (r *ring) Window() time.Duration {
	return time.Duration(r.cfg.Slots) * r.cfg.Width
}

// Pool returns the window's propagation executor.
func (r *ring) Pool() *core.PropagatorPool { return r.pool }

// AutoRotate starts a background rotator ticking every Width; it stops
// when the window is closed. Call at most once.
func (r *ring) AutoRotate() {
	r.mu.Lock()
	if r.tick != nil {
		r.mu.Unlock()
		panic("window: AutoRotate called twice")
	}
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.tick = startRotator(r.cfg.Width, r.rotate)
	r.mu.Unlock()
}

// rotator is the shared Width-ticker driving AutoRotate for Windowed
// and Table; halt stops the goroutine and waits it out (nil-safe).
type rotator struct {
	stop chan struct{}
	done chan struct{}
}

func startRotator(width time.Duration, rotate func()) *rotator {
	r := &rotator{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(width)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rotate()
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

func (r *rotator) halt() {
	if r == nil {
		return
	}
	close(r.stop)
	<-r.done
}

// New builds an epoch-ring windowed sketch whose per-epoch sketches
// come from the engine; Close it when done.
func New[V, S, C any](eng core.Engine[V, S, C], cfg Config) *Windowed[V, S, C] {
	w := &Windowed[V, S, C]{eng: eng}
	w.ring.init(cfg.withDefaults(), nil, w.Rotate)
	w.affKey = w.pool.AffinityToken()
	g := &generation[V, S, C]{epoch: 0, sk: eng.NewSketchAffine(w.pool, w.affKey)}
	w.gens = []*generation[V, S, C]{g}
	w.view.Store(&winView[V, S, C]{active: g})
	s := eng.QueryCompact(eng.NewAggregator().Result())
	w.published.Store(&s)
	return w
}

// Writer returns the i-th ingestion handle (0 <= i < the engine's
// writer count). Each handle must be used by at most one goroutine at
// a time.
func (w *Windowed[V, S, C]) Writer(i int) *Writer[V, S, C] {
	if i < 0 || i >= w.eng.NumWriters() {
		panic(fmt.Sprintf("window: writer index %d out of range [0,%d)", i, w.eng.NumWriters()))
	}
	return &Writer[V, S, C]{w: w, id: i}
}

// RelaxationPerEpoch returns r = 2·N·b, the bound on updates a window
// query may miss from each epoch it spans (Theorem 1 per slot).
func (w *Windowed[V, S, C]) RelaxationPerEpoch() int { return w.eng.Relaxation() }

// QueryWindow returns the query answer over the last Slots epochs
// (active epoch included, expired epochs excluded). It merges the
// cached sealed aggregate with a point-in-time compact of the active
// epoch: it never blocks ingestion and is never blocked by it — the
// only synchronisation is the active compact's brief serialisation
// with the background propagator. Each spanned epoch may be missing up
// to RelaxationPerEpoch() of its latest updates.
func (w *Windowed[V, S, C]) QueryWindow() S {
	return w.eng.QueryCompact(w.windowCompact())
}

// QueryWindowCached returns the window answer published by the last
// Rotate or Drain: a single atomic read — strictly wait-free — at the
// price of staleness up to one epoch (the active epoch's updates
// appear only after it seals).
func (w *Windowed[V, S, C]) QueryWindowCached() S { return *w.published.Load() }

// WindowCompact returns a mergeable, serializable compact of the whole
// window — the window counterpart of a sketch's Compact.
func (w *Windowed[V, S, C]) WindowCompact() C { return w.windowCompact() }

func (w *Windowed[V, S, C]) windowCompact() C {
	v := w.view.Load()
	agg := w.eng.NewAggregator()
	if v.sealedAgg != nil {
		_ = agg.Add(*v.sealedAgg) // same engine: compatible by construction
	}
	g := v.active
	g.mu.RLock()
	if !g.closed {
		c := g.sk.Compact()
		g.mu.RUnlock()
		_ = agg.Add(c)
	} else {
		g.mu.RUnlock()
	}
	return agg.Result()
}

// Rotate advances the window by one epoch: a fresh sketch becomes the
// active epoch, the epoch that fell off the ring is closed (its items
// leave the window), and the sealed aggregate and published snapshot
// are recomputed. Safe to call concurrently with ingestion and
// queries.
//
// Two per-rotation costs are recovered here. The expired epoch's
// sketch is recycled for the new epoch via the engine's Reset path
// instead of being torn down and rebuilt — same pool attachment, same
// affinity worker. And for families exposing core.HintedEngine (Θ),
// the new epoch is seeded with the outgoing epoch's filter hint, so it
// starts discarding most of the stream immediately instead of
// re-paying the eager phase from scratch each epoch.
func (w *Windowed[V, S, C]) Rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	// Derive the carry-over hint from the outgoing active epoch before
	// the ring changes. Safe without the generation lock: w.mu excludes
	// the only closers (Rotate's expiry, Close), and Compact serialises
	// with the propagator, never with writers.
	var hint C
	hinted := false
	if he, ok := any(w.eng).(core.HintedEngine[C]); ok {
		hint, hinted = he.HintCompact(w.gens[len(w.gens)-1].sk.Compact())
	}
	// Expire first, so a dropped generation's sketch is available for
	// recycling: generations older than the ring leave the window. The
	// exclusive lock waits out in-flight writers and late flushes —
	// the straggler-safe handoff: any writer that raced in either
	// completed its flush before the lock was granted (Reset's Close
	// drains every handed-off buffer) or observes closed afterwards
	// and skips. (Writers keep targeting the outgoing active
	// generation until the new view is published below; it is never
	// the expiring one, since Slots >= 2.)
	var recycled core.EngineSketch[V, S, C]
	for len(w.gens) >= w.cfg.Slots {
		old := w.gens[0]
		w.gens = w.gens[1:]
		old.mu.Lock()
		old.closed = true
		if recycled == nil {
			recycled = old.sk
		} else {
			old.sk.Close()
		}
		// Every access to a generation's sketch is guarded by closed;
		// nil out the reference so the recycled sketch cannot be
		// reached through the retired generation.
		old.sk = nil
		old.mu.Unlock()
		w.expired.Add(1)
	}
	// Build the new active sketch: recycled and reseeded when both
	// levers apply, falling back gracefully when the engine offers
	// neither capability.
	var sk core.EngineSketch[V, S, C]
	switch {
	case recycled != nil:
		if rs, ok := any(recycled).(core.ReseedableSketch[C]); ok && hinted {
			rs.ResetSeeded(hint)
			w.hintCarries.Add(1)
		} else {
			recycled.Reset()
		}
		sk = recycled
		w.recycles.Add(1)
	case hinted:
		if se, ok := any(w.eng).(core.ScalableEngine[V, S, C]); ok {
			sk = se.NewSketchSeeded(w.pool, w.affKey, hint)
			w.hintCarries.Add(1)
		} else {
			sk = w.eng.NewSketchAffine(w.pool, w.affKey)
		}
	default:
		sk = w.eng.NewSketchAffine(w.pool, w.affKey)
	}
	g := &generation[V, S, C]{epoch: w.epoch.Add(1), sk: sk}
	w.rotations.Add(1)
	w.gens = append(w.gens, g)
	// Recompute the sealed aggregate from fresh compacts of the
	// surviving non-active generations: updates that straggled into a
	// sealed epoch since the last rotation (late flushes, in-flight
	// batches) are folded in here, keeping the per-epoch miss bounded
	// by r rather than growing with time.
	w.republishLocked()
}

// republishLocked rebuilds the sealed aggregate from fresh compacts of
// the non-active generations and publishes the new view and cached
// window snapshot in one store each. The per-epoch Compact calls (each
// a brief serialisation with that epoch's propagator) fan out across
// Config.ReadParallelism workers; the fold stays in generation order.
// Caller holds w.mu; gens is non-empty.
func (w *Windowed[V, S, C]) republishLocked() {
	w.sealedRebuilds.Add(1)
	sealed := w.gens[:len(w.gens)-1]
	agg := w.eng.NewAggregator()
	if len(sealed) > 1 {
		compacts := make([]C, len(sealed))
		core.FanOut(core.ReadDegree(w.cfg.ReadParallelism), len(sealed), func(_, i int) {
			compacts[i] = sealed[i].sk.Compact()
		})
		for _, c := range compacts {
			_ = agg.Add(c) // same engine: compatible by construction
		}
	} else if len(sealed) == 1 {
		_ = agg.Add(sealed[0].sk.Compact())
	}
	c := agg.Result()
	w.view.Store(&winView[V, S, C]{active: w.gens[len(w.gens)-1], sealedAgg: &c})
	s := w.eng.QueryCompact(c)
	w.published.Store(&s)
}

// Drain flushes every writer slot of every in-window epoch and
// refreshes the cached sealed aggregate, so queries reflect all prior
// updates — including updates flushed into already-sealed epochs. All
// writer handles must be quiescent, exactly as for Close.
func (w *Windowed[V, S, C]) Drain() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	for _, g := range w.gens {
		g.mu.RLock()
		if !g.closed {
			for i := 0; i < w.eng.NumWriters(); i++ {
				g.sk.Flush(i)
			}
		}
		g.mu.RUnlock()
	}
	w.republishLocked()
}

// Close stops rotation, closes every epoch sketch and, when owned, the
// propagator pool. All writer handles must be quiescent. Idempotent.
func (w *Windowed[V, S, C]) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	tick := w.tick
	gens := w.gens
	w.gens = nil
	w.mu.Unlock()
	tick.halt()
	for _, g := range gens {
		g.mu.Lock()
		if !g.closed {
			g.closed = true
			g.sk.Close()
		}
		g.mu.Unlock()
	}
	if w.ownPool {
		w.pool.Close()
	}
}

// Writer is a single-goroutine window ingestion handle: handle i
// drives writer slot i of the active epoch's sketch, migrating (with a
// flush of the outgoing epoch's slot) on the first call after a
// rotation.
type Writer[V, S, C any] struct {
	w   *Windowed[V, S, C]
	id  int
	gen *generation[V, S, C]
}

// rebind points the handle at the active generation, flushing this
// handle's slot of the outgoing generation so its buffered updates
// stay visible while that epoch remains in the window. The returned
// generation is read-locked; the caller must unlock it.
func (w *Writer[V, S, C]) rebind() *generation[V, S, C] {
	g := w.w.view.Load().active
	if old := w.gen; old != nil && old != g {
		old.mu.RLock()
		if !old.closed {
			// Only this goroutine drives slot id, so the flush is within
			// the framework's handle contract; if the epoch already
			// expired its buffered tail is discarded with it.
			old.sk.Flush(w.id)
		}
		old.mu.RUnlock()
	}
	w.gen = g
	g.mu.RLock()
	return g
}

// Update ingests one value into the current epoch.
func (w *Writer[V, S, C]) Update(v V) {
	g := w.rebind()
	if !g.closed {
		g.sk.Update(w.id, v)
	}
	g.mu.RUnlock()
}

// UpdateBatch ingests a slice of values into the current epoch through
// the engine's fused batch pipeline.
func (w *Writer[V, S, C]) UpdateBatch(vs []V) {
	g := w.rebind()
	if !g.closed {
		g.sk.UpdateBatch(w.id, vs)
	}
	g.mu.RUnlock()
}

// Flush hands off this handle's buffered updates of the current epoch
// and waits until they are queryable.
func (w *Writer[V, S, C]) Flush() {
	g := w.rebind()
	if !g.closed {
		g.sk.Flush(w.id)
	}
	g.mu.RUnlock()
}
