package window

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/table"
)

// Table is a sliding-window keyed sketch table: the epoch ring of this
// package composed with the sharded keyed table, answering "per-key
// uniques/quantiles over the last Slots·Width" across millions of
// keys. Epoch state is a whole keyed table; rotation reuses the
// table's snapshot-spill path — the outgoing epoch is drained,
// captured as a mergeable TableSnapshot, and closed one further
// rotation later — so sealed epochs cost one compact per live key,
// not live sketches.
//
// The ring holds, youngest first: the active table (ingestion target),
// a draining table (the previous epoch — kept live for one epoch of
// grace so in-flight writers and their buffered tails land before the
// epoch seals), and Slots-2 sealed snapshots. Sealed snapshots are
// merged into one cached aggregate — built lazily by the first query
// of each epoch, so rotation stays cheap on ingest-heavy workloads —
// after which per-key window queries merge at most three per-key
// compacts.
//
// The per-epoch relaxation carries through per key: a window query for
// key k may miss up to r = 2·N·b of k's latest updates in each epoch
// the window spans. One contract matters at epoch boundaries: an
// epoch's width must exceed the duration of any single ingestion call,
// so that by the time a table two rotations old is drained and closed,
// no writer can still be inside it.
//
// Propagation affinity is inherited across rotations: the keyed table
// derives each sketch's pool-worker assignment from the key hash, so
// key k's sketch in the epoch-N table lands on the same propagator
// worker as k's sketch in every other epoch — rotation never
// reshuffles the worker an active key's merges run on.
type Table[K table.Key, V, S, C any] struct {
	ring
	eng  core.Engine[V, S, C]
	tcfg table.Config[K]

	// view is the atomically published window state; writers and
	// queries load it once per call for a consistent epoch set.
	view atomic.Pointer[tableView[K, V, S, C]]
}

// tableView is one immutable window state: the active and draining
// epoch tables plus the sealed snapshots and their cached aggregate.
type tableView[K table.Key, V, S, C any] struct {
	active   *table.SketchTable[K, V, S, C]
	draining *table.SketchTable[K, V, S, C] // nil before the first rotation
	sealed   []*table.TableSnapshot[K, C]   // oldest first, len <= Slots-2
	// retiring is the table sealed by the rotation that produced this
	// view: already captured in sealed, no longer written or queried
	// through this view, but kept open until the next rotation so
	// queries still holding the previous view (whose draining it was)
	// keep resolving its keys — even through a slow lazy aggregate
	// build. Closed when this view is replaced.
	retiring *table.SketchTable[K, V, S, C]

	// agg is the cached merge of sealed, built at most once per epoch
	// by the first query that needs it (rotation stays O(active keys);
	// queries are orders of magnitude rarer than ingestion, so the
	// merge amortises where it is cheapest). nil result when sealed is
	// empty.
	aggOnce sync.Once
	agg     *table.TableSnapshot[K, C]
}

// aggregate returns the (lazily built) merge of the sealed snapshots.
func (v *tableView[K, V, S, C]) aggregate(w *Table[K, V, S, C]) *table.TableSnapshot[K, C] {
	v.aggOnce.Do(func() {
		v.agg = w.mergeSealed(v.sealed)
		w.sealedRebuilds.Add(1)
	})
	return v.agg
}

// NewTable builds a sliding-window keyed table whose per-key sketches
// come from the engine; Close it when done. The family configs' Engine
// methods produce the (tcfg, eng) pair:
//
//	tcfg, eng := table.ThetaConfig[string]{...}.Engine()
//	wt := window.NewTable(tcfg, eng, window.Config{Slots: 10, Width: time.Minute})
func NewTable[K table.Key, V, S, C any](tcfg table.Config[K], eng core.Engine[V, S, C], cfg Config) *Table[K, V, S, C] {
	w := &Table[K, V, S, C]{eng: eng, tcfg: tcfg}
	w.ring.init(cfg.withDefaults(), tcfg.Pool, w.Rotate)
	// Every epoch table shares the window's pool: R epochs never mean
	// R propagator pools.
	w.tcfg.Pool = w.pool
	w.view.Store(&tableView[K, V, S, C]{
		active: table.NewEngineTable(w.tcfg, eng),
	})
	return w
}

// Writer returns the i-th keyed ingestion handle (0 <= i <
// Config.Writers of the table config). Single-goroutine use.
func (w *Table[K, V, S, C]) Writer(i int) *TableWriter[K, V, S, C] {
	if i < 0 || i >= w.view.Load().active.NumWriters() {
		panic(fmt.Sprintf("window: writer index %d out of range [0,%d)",
			i, w.view.Load().active.NumWriters()))
	}
	return &TableWriter[K, V, S, C]{wt: w, id: i}
}

// RelaxationPerEpoch returns the per-key bound r = 2·N·b on updates a
// window query may miss from each epoch it spans.
func (w *Table[K, V, S, C]) RelaxationPerEpoch() int { return w.eng.Relaxation() }

// Keys returns the number of keys live in the active epoch.
func (w *Table[K, V, S, C]) Keys() int { return w.view.Load().active.Keys() }

// QueryWindow returns the key's query answer over the last Slots
// epochs; false when the key appears nowhere in the window. It merges
// at most three per-key compacts (sealed aggregate, draining epoch,
// active epoch); ingestion is never blocked.
func (w *Table[K, V, S, C]) QueryWindow(k K) (S, bool) {
	c, ok := w.CompactWindowKey(k)
	if !ok {
		var zero S
		return zero, false
	}
	return w.eng.QueryCompact(c), true
}

// CompactWindowKey returns a mergeable serializable compact of one
// key's whole-window state; false when the key is not in the window.
func (w *Table[K, V, S, C]) CompactWindowKey(k K) (C, bool) {
	v := w.view.Load()
	agg := w.eng.NewAggregator()
	found := false
	if sa := v.aggregate(w); sa != nil {
		if c, ok := sa.Get(k); ok {
			_ = agg.Add(c)
			found = true
		}
	}
	if v.draining != nil {
		if c, ok := v.draining.CompactKey(k); ok {
			_ = agg.Add(c)
			found = true
		}
	}
	if c, ok := v.active.CompactKey(k); ok {
		_ = agg.Add(c)
		found = true
	}
	if !found {
		var zero C
		return zero, false
	}
	return agg.Result(), true
}

// RollupWindow merges every key of every in-window epoch into one
// compact — the all-keys aggregate over the window.
func (w *Table[K, V, S, C]) RollupWindow() C {
	v := w.view.Load()
	agg := w.eng.NewAggregator()
	if sa := v.aggregate(w); sa != nil {
		sa.ForEach(func(_ K, c C) { _ = agg.Add(c) })
	}
	if v.draining != nil {
		_ = agg.Add(v.draining.Rollup())
	}
	_ = agg.Add(v.active.Rollup())
	return agg.Result()
}

// WindowSnapshot captures the whole window as one mergeable,
// serializable table snapshot (per-key compacts merged across the
// window's epochs) — the distributed-aggregation path for windows.
func (w *Table[K, V, S, C]) WindowSnapshot() (*table.TableSnapshot[K, C], error) {
	v := w.view.Load()
	snap := table.NewTableSnapshot[K](w.eng)
	if sa := v.aggregate(w); sa != nil {
		if err := snap.Merge(sa); err != nil {
			return nil, err
		}
	}
	if v.draining != nil {
		if err := snap.Merge(v.draining.Snapshot()); err != nil {
			return nil, err
		}
	}
	if err := snap.Merge(v.active.Snapshot()); err != nil {
		return nil, err
	}
	return snap, nil
}

// Rotate advances the window by one epoch: a fresh keyed table becomes
// the ingestion target, the previous active table enters its drain
// grace epoch, the table that finished its grace is drained, captured
// through the snapshot-spill path and closed, and the epoch that fell
// off the ring is dropped. Safe to call concurrently with ingestion
// and queries.
func (w *Table[K, V, S, C]) Rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.epoch.Add(1)
	w.rotations.Add(1)
	old := w.view.Load()
	nv := &tableView[K, V, S, C]{
		active:   table.NewEngineTable(w.tcfg, w.eng),
		draining: old.active,
	}
	// Seal the table that finished its grace epoch: no writer has
	// targeted it for a full epoch, so Drain (flush every slot of every
	// key) is within the handle contract, and the snapshot-spill path
	// captures its final per-key state. With Slots == 2 the sealed ring
	// has no capacity — the epoch expires straight out of grace, so the
	// O(keys) drain+snapshot walk is skipped entirely.
	nv.retiring = old.draining
	nv.sealed = append(nv.sealed, old.sealed...)
	if old.draining != nil && w.cfg.Slots > 2 {
		old.draining.Drain()
		nv.sealed = append(nv.sealed, old.draining.Snapshot())
	} else if old.draining != nil {
		// Slots == 2: the epoch expires straight out of grace, its data
		// leaving the window without ever entering the sealed ring.
		w.expired.Add(1)
	}
	// Expire epochs beyond the ring: active + draining + Slots-2 sealed.
	for len(nv.sealed) > w.cfg.Slots-2 {
		nv.sealed = nv.sealed[1:]
		w.expired.Add(1)
	}
	w.view.Store(nv)
	// The table sealed by the PREVIOUS rotation retires only now: no
	// live view references it anymore (a reader would have to hold one
	// view across two whole rotations to see a closed table).
	if old.retiring != nil {
		old.retiring.Close()
	}
}

// mergeSealed pre-merges the sealed snapshots into one aggregate.
// Keys are folded with one engine aggregator each rather than pairwise
// snapshot merges, and a key seen in a single epoch shares that
// epoch's compact outright — with churning key populations most keys
// take the zero-merge path, keeping rotation cost near one compact
// walk per sealed epoch.
//
// With ReadParallelism > 1 the fold fans out: keys are partitioned by
// their table-placement hash (every epoch's copy of a key lands in the
// same partition, so partitions fold independently) and the partition
// results combine into one snapshot. Per-key fold order is epoch order
// either way, so the parallel and serial aggregates agree family by
// family.
func (w *Table[K, V, S, C]) mergeSealed(sealed []*table.TableSnapshot[K, C]) *table.TableSnapshot[K, C] {
	switch len(sealed) {
	case 0:
		return nil
	case 1:
		return sealed[0] // snapshots are immutable once sealed
	}
	type pair struct {
		k K
		c C
	}
	foldPairs := func(pairs []pair, sizeHint int) map[K]C {
		type fold struct {
			c   C
			agg core.Aggregator[C]
		}
		folds := make(map[K]*fold, sizeHint)
		for _, p := range pairs {
			f := folds[p.k]
			if f == nil {
				folds[p.k] = &fold{c: p.c}
				continue
			}
			if f.agg == nil {
				f.agg = w.eng.NewAggregator()
				_ = f.agg.Add(f.c)
			}
			_ = f.agg.Add(p.c)
		}
		out := make(map[K]C, len(folds))
		for k, f := range folds {
			if f.agg != nil {
				out[k] = f.agg.Result()
			} else {
				out[k] = f.c
			}
		}
		return out
	}
	degree := core.ReadDegree(w.cfg.ReadParallelism)
	total := 0
	for _, s := range sealed {
		total += s.Len()
	}
	agg := table.NewTableSnapshot[K](w.eng)
	if degree <= 1 || total == 0 {
		pairs := make([]pair, 0, total)
		for _, s := range sealed {
			s.ForEach(func(k K, c C) { pairs = append(pairs, pair{k, c}) })
		}
		for k, c := range foldPairs(pairs, sealed[len(sealed)-1].Len()) {
			agg.Set(k, c)
		}
		return agg
	}
	// Partition pass (serial, one hash per pair — cheap next to the
	// per-key merges), then one worker folds each partition.
	parts := make([][]pair, degree)
	for _, s := range sealed {
		s.ForEach(func(k K, c C) {
			p := table.HashKey(k) % uint64(degree)
			parts[p] = append(parts[p], pair{k, c})
		})
	}
	results := make([]map[K]C, degree)
	core.FanOut(degree, degree, func(_, p int) {
		results[p] = foldPairs(parts[p], len(parts[p]))
	})
	for _, m := range results {
		for k, c := range m {
			agg.Set(k, c)
		}
	}
	return agg
}

// Drain flushes every writer slot of every key of the live epochs
// (active and draining). All writer handles must be quiescent. Drain
// holds the rotation lock for its whole walk, so it cannot race a
// Rotate into flushing a table that rotation is retiring and closing.
func (w *Table[K, V, S, C]) Drain() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	v := w.view.Load()
	if v.draining != nil {
		v.draining.Drain()
	}
	v.active.Drain()
}

// Close stops rotation, closes the live epoch tables and, when owned,
// the propagator pool. All writer handles must be quiescent.
// Idempotent.
func (w *Table[K, V, S, C]) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	tick := w.tick
	w.mu.Unlock()
	tick.halt()
	v := w.view.Load()
	if v.retiring != nil {
		v.retiring.Close()
	}
	if v.draining != nil {
		v.draining.Close()
	}
	v.active.Close()
	if w.ownPool {
		w.pool.Close()
	}
}

// TableWriter is a single-goroutine keyed window ingestion handle:
// handle i drives writer slot i of the active epoch's table,
// re-binding on the first call after a rotation. No boundary flush is
// needed — the outgoing table stays live for a grace epoch and is
// drained before sealing, so buffered tails land while their epoch is
// in the window.
type TableWriter[K table.Key, V, S, C any] struct {
	wt  *Table[K, V, S, C]
	id  int
	gen *table.SketchTable[K, V, S, C]
	w   *table.Writer[K, V, S, C]
}

func (w *TableWriter[K, V, S, C]) rebind() *table.Writer[K, V, S, C] {
	if a := w.wt.view.Load().active; a != w.gen {
		w.gen = a
		w.w = a.Writer(w.id)
	}
	return w.w
}

// UpdateKeyed ingests one (key, value) pair into the current epoch.
func (w *TableWriter[K, V, S, C]) UpdateKeyed(k K, v V) { w.rebind().UpdateKeyed(k, v) }

// UpdateKeyedBatch ingests parallel (key, value) slices into the
// current epoch through the grouped fused batch path.
func (w *TableWriter[K, V, S, C]) UpdateKeyedBatch(keys []K, vals []V) {
	w.rebind().UpdateKeyedBatch(keys, vals)
}

// UpdateKeyedHashedBatch ingests values that are already item hashes
// in the engine's hash space.
func (w *TableWriter[K, V, S, C]) UpdateKeyedHashedBatch(keys []K, hs []V) {
	w.rebind().UpdateKeyedHashedBatch(keys, hs)
}

// FlushKey makes this writer's buffered current-epoch updates for the
// key visible to window queries.
func (w *TableWriter[K, V, S, C]) FlushKey(k K) { w.rebind().FlushKey(k) }
