package window

import (
	"github.com/fcds/fcds/internal/metrics"
)

// RegisterMetrics exports the epoch ring's counters into reg, labeled
// with the given window name. Promoted onto Windowed and Table through
// the embedded ring; every series is func-backed and read at scrape
// time, so ingestion and rotation hot paths are untouched beyond their
// own atomic bumps.
//
// Families: fcds_window_epoch, fcds_window_rotations_total,
// fcds_window_sealed_rebuilds_total, fcds_window_expired_epochs_total,
// fcds_window_recycles_total, fcds_window_hint_carries_total.
func (r *ring) RegisterMetrics(reg *metrics.Registry, name string) {
	reg.GaugeFunc("fcds_window_epoch",
		"Current epoch number of the ring (incremented per rotation).",
		func() float64 { return float64(r.Epoch()) }, "window", name)
	reg.CounterFunc("fcds_window_rotations_total",
		"Epoch rotations performed.",
		func() float64 { return float64(r.Rotations()) }, "window", name)
	reg.CounterFunc("fcds_window_sealed_rebuilds_total",
		"Sealed-aggregate recomputations (eager per rotation/drain for Windowed, lazy per view for Table).",
		func() float64 { return float64(r.SealedRebuilds()) }, "window", name)
	reg.CounterFunc("fcds_window_expired_epochs_total",
		"Epochs dropped off the ring, their data leaving the window.",
		func() float64 { return float64(r.ExpiredEpochs()) }, "window", name)
	reg.CounterFunc("fcds_window_recycles_total",
		"Expired epoch sketches reused for the new active epoch via Reset.",
		func() float64 { return float64(r.Recycles()) }, "window", name)
	reg.CounterFunc("fcds_window_hint_carries_total",
		"Rotations that seeded the new epoch with the previous epoch's carried filter hint.",
		func() float64 { return float64(r.HintCarries()) }, "window", name)
}
