package window

import (
	"testing"
	"time"

	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/theta"
)

// exactTheta returns a Θ engine big enough that the test streams stay
// in exact mode, so in-window counts are asserted exactly.
func exactTheta(writers int) *theta.Engine {
	return theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: writers, MaxError: 1})
}

// TestWindowExpiredEpochExcluded pins the sliding-window contract: an
// epoch's items are counted while the epoch is within the last Slots
// rotations and excluded afterwards. Rotation is driven explicitly, so
// the assertion is deterministic.
func TestWindowExpiredEpochExcluded(t *testing.T) {
	const slots = 3
	w := New(exactTheta(1), Config{Slots: slots, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)

	// Epoch 0: items 0..99.
	for i := 0; i < 100; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	if got := w.QueryWindow(); got != 100 {
		t.Fatalf("epoch 0 window = %v, want 100", got)
	}

	// Rotations 1..slots-1: old epoch still in the window.
	for rot := 1; rot < slots; rot++ {
		w.Rotate()
		// Each epoch adds 10 fresh items.
		for i := 0; i < 10; i++ {
			wr.Update(uint64(1000*rot + i))
		}
		w.Drain()
		want := float64(100 + 10*rot)
		if got := w.QueryWindow(); got != want {
			t.Fatalf("after rotation %d: window = %v, want %v", rot, got, want)
		}
	}

	// Rotation slots: epoch 0 falls off the ring — its 100 items leave.
	w.Rotate()
	w.Drain()
	if got, want := w.QueryWindow(), float64(10*(slots-1)); got != want {
		t.Fatalf("after expiry rotation: window = %v, want %v (epoch 0 excluded)", got, want)
	}
	if w.Epoch() != slots {
		t.Fatalf("epoch = %d, want %d", w.Epoch(), slots)
	}
}

// TestWindowDuplicatesAcrossEpochs: the same item seen in several
// epochs counts once while any of them is live (Θ mergeability), and
// still counts after the older sighting expires.
func TestWindowDuplicatesAcrossEpochs(t *testing.T) {
	w := New(exactTheta(1), Config{Slots: 2, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 50; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	w.Rotate()
	for i := 0; i < 50; i++ {
		wr.Update(uint64(i)) // same items again, next epoch
	}
	w.Drain()
	if got := w.QueryWindow(); got != 50 {
		t.Fatalf("duplicated items window = %v, want 50", got)
	}
	w.Rotate() // epoch 0 expires; epoch 1 still holds all 50
	w.Drain()
	if got := w.QueryWindow(); got != 50 {
		t.Fatalf("after expiry: window = %v, want 50", got)
	}
}

// TestWindowWriterMigrationFlush: updates buffered in a writer's local
// slot when the epoch rotates are flushed into their own epoch on the
// writer's next call — not dropped, not misattributed to the new
// epoch — and surface in the sealed aggregate at the following
// rotation (the per-epoch relaxation bound, not unbounded loss).
func TestWindowWriterMigrationFlush(t *testing.T) {
	// BufferSize large enough that nothing hands off on its own.
	eng := theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: 1, MaxError: 1, BufferSize: 256})
	w := New(eng, Config{Slots: 3, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 40; i++ {
		wr.Update(uint64(i)) // stays in the local buffer
	}
	w.Rotate()              // seals epoch 0 before the 40 ever handed off
	wr.Update(uint64(1000)) // migration: flushes the 40 into epoch 0
	wr.Flush()
	// The active epoch's item is visible now; the straggling 40 are in
	// epoch 0's sketch but the cached sealed aggregate predates them.
	if got := w.QueryWindow(); got != 1 {
		t.Fatalf("window right after migration = %v, want 1 (stragglers pending reseal)", got)
	}
	w.Rotate() // reseal: epoch 0's fresh compact now carries the 40
	if got := w.QueryWindow(); got != 41 {
		t.Fatalf("window after reseal = %v, want 41", got)
	}
	// One more rotation expires epoch 0 (the 40); epoch 1 keeps 1000.
	w.Rotate()
	w.Drain()
	if got := w.QueryWindow(); got != 1 {
		t.Fatalf("window after epoch-0 expiry = %v, want 1", got)
	}
}

// TestWindowDrainRefreshesSealedAggregate: Drain's contract is that
// queries reflect all prior updates — including updates that were
// still buffered when their epoch sealed and only reach the sealed
// epoch's sketch through Drain's flush. The cached sealed aggregate
// must be rebuilt, not left stale until the next rotation.
func TestWindowDrainRefreshesSealedAggregate(t *testing.T) {
	eng := theta.NewEngine(theta.ConcurrentConfig{K: 2048, Writers: 1, MaxError: 1, BufferSize: 256})
	w := New(eng, Config{Slots: 4, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 40; i++ {
		wr.Update(uint64(i)) // buffered, never handed off
	}
	w.Rotate() // epoch 0 seals without the 40
	w.Drain()  // flushes them into sealed epoch 0 AND republishes
	if got := w.QueryWindow(); got != 40 {
		t.Fatalf("window after Drain = %v, want 40", got)
	}
	if got := w.QueryWindowCached(); got != 40 {
		t.Fatalf("cached window after Drain = %v, want 40", got)
	}
}

// TestWindowCachedQuery: QueryWindowCached is the rotation-published
// snapshot — it lags the active epoch and catches up at the next
// rotation.
func TestWindowCachedQuery(t *testing.T) {
	w := New(exactTheta(1), Config{Slots: 4, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	if got := w.QueryWindowCached(); got != 0 {
		t.Fatalf("initial cached window = %v, want 0", got)
	}
	for i := 0; i < 30; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	if got := w.QueryWindowCached(); got != 0 {
		t.Fatalf("cached window before rotation = %v, want 0 (stale by design)", got)
	}
	w.Rotate()
	if got := w.QueryWindowCached(); got != 30 {
		t.Fatalf("cached window after rotation = %v, want 30", got)
	}
}

// TestWindowCompactRoundTrip: the whole-window compact serializes,
// parses and answers the same query (the engine codec path).
func TestWindowCompactRoundTrip(t *testing.T) {
	eng := exactTheta(1)
	w := New(eng, Config{Slots: 3, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 64; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	w.Rotate()
	for i := 64; i < 96; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	c := w.WindowCompact()
	data, err := eng.MarshalCompact(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := eng.UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.QueryCompact(back); got != 96 {
		t.Fatalf("round-tripped window compact = %v, want 96", got)
	}
}

// TestWindowQuantiles drives the quantiles family through the ring:
// the window median tracks only in-window epochs.
func TestWindowQuantiles(t *testing.T) {
	eng := quantiles.NewEngine(quantiles.ConcurrentConfig{K: 128, Writers: 1})
	w := New(eng, Config{Slots: 2, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 1000; i++ {
		wr.Update(1000) // epoch 0: all mass at 1000
	}
	w.Drain()
	w.Rotate()
	for i := 0; i < 1000; i++ {
		wr.Update(10) // epoch 1: all mass at 10
	}
	w.Drain()
	if med := w.QueryWindow().Quantile(0.5); med != 10 && med != 1000 {
		t.Fatalf("two-epoch median = %v, want 10 or 1000", med)
	}
	w.Rotate() // epoch 0 (the 1000s) expires
	w.Drain()
	s := w.QueryWindow()
	if min, max := s.Min(), s.Max(); min != 10 || max != 10 {
		t.Fatalf("post-expiry window range = [%v, %v], want [10, 10]", min, max)
	}
}

// TestWindowHLL drives the HLL family through the ring.
func TestWindowHLL(t *testing.T) {
	eng := hll.NewEngine(hll.ConcurrentConfig{Precision: 12, Writers: 1})
	w := New(eng, Config{Slots: 2, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	for i := 0; i < 2000; i++ {
		wr.Update(uint64(i))
	}
	w.Drain()
	if got := w.QueryWindow(); got < 1800 || got > 2200 {
		t.Fatalf("epoch-0 window = %v, want ~2000", got)
	}
	w.Rotate()
	w.Rotate() // epoch 0 expires
	w.Drain()
	if got := w.QueryWindow(); got != 0 {
		t.Fatalf("post-expiry window = %v, want 0", got)
	}
}

// TestWindowConcurrentWritersRotate races multiple writers against
// rotations and queries; run with -race. Counts are only loosely
// asserted (the window is defined up to the per-epoch relaxation).
func TestWindowConcurrentWritersRotate(t *testing.T) {
	const writers = 4
	eng := theta.NewEngine(theta.ConcurrentConfig{K: 4096, Writers: writers, MaxError: 1})
	w := New(eng, Config{Slots: 4, Width: time.Hour})
	defer w.Close()
	done := make(chan struct{})
	for wi := 0; wi < writers; wi++ {
		go func(wi int) {
			defer func() { done <- struct{}{} }()
			wr := w.Writer(wi)
			batch := make([]uint64, 128)
			for n := 0; n < 100; n++ {
				for j := range batch {
					batch[j] = uint64(wi*1_000_000 + n*128 + j)
				}
				wr.UpdateBatch(batch)
			}
			wr.Flush()
		}(wi)
	}
	for r := 0; r < 8; r++ {
		w.Rotate()
		_ = w.QueryWindow()
		_ = w.QueryWindowCached()
	}
	for i := 0; i < writers; i++ {
		<-done
	}
	// All ingestion happened within the last 8 rotations across 4
	// slots; the window holds whatever of it has not expired — just
	// assert queries keep working and the final drain is consistent.
	w.Drain()
	if got := w.QueryWindow(); got < 0 {
		t.Fatalf("window = %v, want >= 0", got)
	}
	if w.Epoch() != 8 {
		t.Fatalf("epoch = %d, want 8", w.Epoch())
	}
}
