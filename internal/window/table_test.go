package window

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/table"
)

// TestWindowTableExpiredEpochExcluded: per-key window queries cover
// exactly the last Slots epochs (active + draining + sealed ring).
func TestWindowTableExpiredEpochExcluded(t *testing.T) {
	tcfg, eng := table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     1024, MaxError: 1,
	}.Engine()
	wt := NewTable(tcfg, eng, Config{Slots: 4, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)

	keys := make([]string, 100)
	vals := make([]uint64, 100)
	for i := range keys {
		keys[i] = "tenant-a"
		vals[i] = uint64(i)
	}
	w.UpdateKeyedBatch(keys, vals) // epoch 0: 100 uniques for tenant-a
	wt.Drain()
	if got, ok := wt.QueryWindow("tenant-a"); !ok || got != 100 {
		t.Fatalf("epoch-0 window query = %v (ok=%v), want 100", got, ok)
	}

	// Epochs 1..3: 10 fresh uniques each. tenant-a's epoch-0 items stay
	// in the window through epoch 3 (slots=4).
	for e := 1; e <= 3; e++ {
		wt.Rotate()
		for i := 0; i < 10; i++ {
			w.UpdateKeyed("tenant-a", uint64(1000*e+i))
		}
		wt.Drain()
		want := float64(100 + 10*e)
		if got, ok := wt.QueryWindow("tenant-a"); !ok || got != want {
			t.Fatalf("epoch %d window query = %v (ok=%v), want %v", e, got, ok, want)
		}
	}

	// Epoch 4: epoch 0 falls off the ring.
	wt.Rotate()
	wt.Drain()
	if got, ok := wt.QueryWindow("tenant-a"); !ok || got != 30 {
		t.Fatalf("post-expiry window query = %v (ok=%v), want 30 (epoch 0 excluded)", got, ok)
	}
	if wt.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", wt.Epoch())
	}
}

// TestWindowTableKeyDisappears: a key seen only in one epoch stops
// resolving once that epoch expires.
func TestWindowTableKeyDisappears(t *testing.T) {
	tcfg, eng := table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     256, MaxError: 1,
	}.Engine()
	wt := NewTable(tcfg, eng, Config{Slots: 2, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)
	w.UpdateKeyed("ephemeral", 1)
	w.FlushKey("ephemeral")
	if _, ok := wt.QueryWindow("ephemeral"); !ok {
		t.Fatal("key missing while its epoch is active")
	}
	wt.Rotate() // key's epoch is draining: still in the window
	if _, ok := wt.QueryWindow("ephemeral"); !ok {
		t.Fatal("key missing while its epoch is draining")
	}
	wt.Rotate() // slots=2: epoch 0 expired
	if got, ok := wt.QueryWindow("ephemeral"); ok {
		t.Fatalf("expired key still resolves: %v", got)
	}
}

// TestWindowTableSealedSnapshotPath: with slots > 2, data two epochs
// old is served from the sealed snapshot ring (the snapshot-spill
// path), and the whole window round-trips through WindowSnapshot.
func TestWindowTableSealedSnapshotPath(t *testing.T) {
	tcfg, eng := table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     1024, MaxError: 1,
	}.Engine()
	wt := NewTable(tcfg, eng, Config{Slots: 5, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)

	for e := 0; e < 4; e++ {
		keys := make([]string, 50)
		vals := make([]uint64, 50)
		for i := range keys {
			keys[i] = fmt.Sprintf("tenant-%d", e%2)
			vals[i] = uint64(10_000*e + i)
		}
		w.UpdateKeyedBatch(keys, vals)
		wt.Drain()
		wt.Rotate()
	}
	// Epochs 0 and 1 are sealed snapshots now (active=4, draining=3).
	if got, ok := wt.QueryWindow("tenant-0"); !ok || got != 100 {
		t.Fatalf("tenant-0 (epochs 0+2, sealed+sealed) = %v (ok=%v), want 100", got, ok)
	}
	if got, ok := wt.QueryWindow("tenant-1"); !ok || got != 100 {
		t.Fatalf("tenant-1 (epochs 1+3, sealed+draining) = %v (ok=%v), want 100", got, ok)
	}

	// Whole-window snapshot round trip through the table wire format.
	snap, err := wt.WindowSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := table.UnmarshalThetaSnapshot[string](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("window snapshot keys = %d, want 2", back.Len())
	}
	if c, ok := back.Get("tenant-0"); !ok || c.Estimate() != 100 {
		t.Fatalf("round-tripped tenant-0 = %v (ok=%v), want 100", c, ok)
	}

	// Window rollup: 200 distinct values across both tenants.
	if got := eng.QueryCompact(wt.RollupWindow()); got != 200 {
		t.Fatalf("window rollup = %v, want 200", got)
	}
}

// TestWindowTableConcurrent races keyed writers against rotations and
// window queries (run with -race).
func TestWindowTableConcurrent(t *testing.T) {
	const writers = 4
	tcfg, eng := table.ThetaConfig[uint64]{
		Table: table.Config[uint64]{Writers: writers, Shards: 64},
	}.Engine()
	wt := NewTable(tcfg, eng, Config{Slots: 3, Width: time.Hour})
	defer wt.Close()
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := wt.Writer(wi)
			keys := make([]uint64, 64)
			vals := make([]uint64, 64)
			for n := 0; n < 200; n++ {
				for j := range keys {
					keys[j] = uint64(j % 16)
					vals[j] = uint64(wi*1_000_000 + n*64 + j)
				}
				w.UpdateKeyedBatch(keys, vals)
			}
		}(wi)
	}
	rotations := 0
	for ; rotations < 6; rotations++ {
		wt.Rotate()
		for k := uint64(0); k < 16; k++ {
			_, _ = wt.QueryWindow(k)
		}
		_ = wt.RollupWindow()
	}
	wg.Wait()
	wt.Drain()
	if _, ok := wt.QueryWindow(0); !ok {
		t.Fatal("key 0 missing after concurrent run")
	}
	if wt.Epoch() != int64(rotations) {
		t.Fatalf("epoch = %d, want %d", wt.Epoch(), rotations)
	}
}
