package window

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/theta"
)

// Tests for the rotation cost-recovery levers: recycling expired
// epoch sketches into the new active epoch and seeding the new epoch
// with the outgoing epoch's carried Θ filter. The error-bound test is
// the pinned accuracy contract for the carry-over: window estimates
// stay within KMV error across many hinted rotations, including an
// epoch-over-epoch cardinality drop of the full headroom factor.

// TestRotateRecyclesExpiredSketch: once the ring is full every
// rotation drops one epoch and must reuse its sketch; with small
// exact-mode epochs no hint is carried, and recycled epochs must not
// leak their previous epoch's items.
func TestRotateRecyclesExpiredSketch(t *testing.T) {
	const slots = 3
	w := New(exactTheta(1), Config{Slots: slots, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)

	const perEpoch = 100
	next := uint64(0)
	for rot := 0; rot < 10; rot++ {
		for i := 0; i < perEpoch; i++ {
			wr.Update(next) // globally distinct: leakage would inflate counts
			next++
		}
		w.Drain()
		inWindow := perEpoch * min(rot+1, slots)
		if got := w.QueryWindow(); got != float64(inWindow) {
			t.Fatalf("rotation %d: window = %v, want %v", rot, got, inWindow)
		}
		w.Rotate()
	}
	// Rotations 0..9 performed; the ring held slots generations from
	// rotation slots-1 on, so every later rotation recycled one sketch.
	if got, want := w.Recycles(), int64(10-(slots-1)); got != want {
		t.Fatalf("recycles = %d, want %d", got, want)
	}
	if got := w.HintCarries(); got != 0 {
		t.Fatalf("hint carries = %d, want 0 (exact-mode epochs carry nothing)", got)
	}
	if got, want := w.ExpiredEpochs(), int64(10-(slots-1)); got != want {
		t.Fatalf("expired = %d, want %d", got, want)
	}
}

// TestCarryOverErrorBound: estimation-mode epochs carry a loosened Θ
// hint into each new epoch (recycled or fresh). Window estimates over
// globally distinct streams must stay within plain KMV error at every
// rotation — a wrong θ₀ accounting in the carried filter would show
// up as a headroom-factor bias, not noise — including when the stream
// shrinks by the full headroom factor mid-run.
func TestCarryOverErrorBound(t *testing.T) {
	const (
		slots = 3
		k     = 2048
	)
	eng := theta.NewEngine(theta.ConcurrentConfig{K: k, Writers: 1, MaxError: 1})
	w := New(eng, Config{Slots: slots, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	rng := rand.New(rand.NewSource(0xca44))

	// Epoch cardinalities: steady estimation-mode epochs, then a drop
	// by the full hint headroom (8×), then recovery.
	epochN := []int{60000, 60000, 60000, 60000, 7500, 7500, 60000, 60000}
	tol := 4.5 / math.Sqrt(k-2)

	window := make([]int, 0, slots)
	for rot, n := range epochN {
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = rng.Uint64() // distinct across all epochs w.h.p.
		}
		wr.UpdateBatch(vs)
		w.Drain()
		window = append(window, n)
		if len(window) > slots {
			window = window[1:]
		}
		want := 0
		for _, m := range window {
			want += m
		}
		got := w.QueryWindow()
		if relErr := math.Abs(got-float64(want)) / float64(want); relErr > tol {
			t.Fatalf("rotation %d: window = %.0f, want %d (rel err %.3f > %.3f)",
				rot, got, want, relErr, tol)
		}
		w.Rotate()
	}
	if w.HintCarries() == 0 {
		t.Fatalf("no rotation carried a hint despite estimation-mode epochs")
	}
	if w.Recycles() == 0 {
		t.Fatalf("no rotation recycled an expired sketch")
	}
}

// TestCarryOverSkipsExactEpochs: an exact-mode outgoing epoch must not
// seed the next epoch (there is no filter strength to carry), and the
// hintless recycled epoch still answers exactly.
func TestCarryOverSkipsExactEpochs(t *testing.T) {
	const slots = 2
	eng := theta.NewEngine(theta.ConcurrentConfig{K: 4096, Writers: 1, MaxError: 1})
	w := New(eng, Config{Slots: slots, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)

	for rot := 0; rot < 5; rot++ {
		for i := 0; i < 200; i++ {
			wr.Update(uint64(10000*rot + i))
		}
		w.Drain()
		w.Rotate()
	}
	if got := w.HintCarries(); got != 0 {
		t.Fatalf("hint carries = %d, want 0", got)
	}
	w.Drain()
	if got := w.QueryWindow(); got != 200 {
		t.Fatalf("window after exact-mode rotations = %v, want 200", got)
	}
}
