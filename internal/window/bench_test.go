package window

import (
	"testing"
	"time"

	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// BenchmarkWindowIngest: standalone windowed Θ ingestion through the
// batch pipeline, with a rotation every 64 batches — the epoch-ring
// overhead on the hot path is one atomic load per batch.
func BenchmarkWindowIngest(b *testing.B) {
	eng := theta.NewEngine(theta.ConcurrentConfig{K: 4096, Writers: 1, MaxError: 1, BufferSize: 64})
	w := New(eng, Config{Slots: 6, Width: time.Hour})
	defer w.Close()
	wr := w.Writer(0)
	batch := make([]uint64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = uint64(i)<<16 | uint64(j)
		}
		wr.UpdateBatch(batch)
		if i%64 == 63 {
			w.Rotate()
		}
	}
}

// BenchmarkWindowTableKeyedBatch: keyed windowed ingestion (16 hot
// keys, 512-item batches) with a rotation every 64 batches, the shape
// the fcds-bench window experiment measures against the plain table.
func BenchmarkWindowTableKeyedBatch(b *testing.B) {
	tcfg, eng := table.ThetaConfig[uint64]{
		Table: table.Config[uint64]{Writers: 1, Shards: 256},
	}.Engine()
	wt := NewTable(tcfg, eng, Config{Slots: 6, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)
	const chunk = 512
	keys := make([]uint64, chunk)
	vals := make([]uint64, chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint64(j % 16)
			vals[j] = uint64(i)<<16 | uint64(j)
		}
		w.UpdateKeyedBatch(keys, vals)
		if i%64 == 63 {
			wt.Rotate()
		}
	}
}
