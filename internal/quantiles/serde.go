package quantiles

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary format (little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCQS"
//	4       1     format version (1)
//	5       1     flags (bit 0: empty)
//	6       2     k (uint16; k <= 32768)
//	8       8     n (total items)
//	16      8     min (float64 bits)
//	24      8     max (float64 bits)
//	32      4     base buffer length
//	36      4     number of levels
//	40      8     level occupancy bitmap
//	48      8*m   base buffer items, then each occupied level's k items
//
// Occupied levels are serialized lowest-first; each holds exactly k
// sorted items.
const (
	qserdeMagic   = "FCQS"
	qserdeVersion = 1
	qheaderSize   = 48

	qflagEmpty = 1 << 0
)

// Serialization errors.
var (
	ErrBadMagic    = errors.New("quantiles: bad magic bytes")
	ErrBadVersion  = errors.New("quantiles: unsupported format version")
	ErrCorrupt     = errors.New("quantiles: corrupt sketch bytes")
	ErrBadK        = errors.New("quantiles: invalid k")
	ErrLevelSort   = errors.New("quantiles: level buffer not sorted")
	ErrBadN        = errors.New("quantiles: item count inconsistent with buffers")
	ErrBadMinMax   = errors.New("quantiles: min/max inconsistent with samples")
	ErrNaNPayload  = errors.New("quantiles: NaN sample")
	ErrTooManyLvls = errors.New("quantiles: more than 64 levels")
)

// MarshalBinary serializes the sketch. The result reconstructs an
// equivalent sketch: same k, n, min/max, base buffer and levels (and
// therefore identical query answers).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	if s.k > 1<<15 {
		return nil, ErrBadK
	}
	if len(s.levels) > 64 {
		return nil, ErrTooManyLvls
	}
	items := len(s.base)
	var bitmap uint64
	for lvl, buf := range s.levels {
		if buf != nil {
			bitmap |= 1 << uint(lvl)
			items += len(buf)
		}
	}
	buf := make([]byte, qheaderSize+8*items)
	copy(buf[0:4], qserdeMagic)
	buf[4] = qserdeVersion
	if s.n == 0 {
		buf[5] = qflagEmpty
	}
	binary.LittleEndian.PutUint16(buf[6:8], uint16(s.k))
	binary.LittleEndian.PutUint64(buf[8:16], s.n)
	binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(s.min))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(s.max))
	binary.LittleEndian.PutUint32(buf[32:36], uint32(len(s.base)))
	binary.LittleEndian.PutUint32(buf[36:40], uint32(len(s.levels)))
	binary.LittleEndian.PutUint64(buf[40:48], bitmap)
	off := qheaderSize
	for _, v := range s.base {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for _, lv := range s.levels {
		for _, v := range lv {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// Unmarshal parses a sketch serialized by MarshalBinary, validating
// structural invariants (level sizes, sortedness, weight accounting,
// min/max consistency). The restored sketch uses a fresh
// default-seeded oracle for future compactions.
func Unmarshal(data []byte) (*Sketch, error) {
	if len(data) < qheaderSize {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != qserdeMagic {
		return nil, ErrBadMagic
	}
	if data[4] != qserdeVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint16(data[6:8]))
	if k < 2 || k&(k-1) != 0 {
		return nil, ErrBadK
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	minV := math.Float64frombits(binary.LittleEndian.Uint64(data[16:24]))
	maxV := math.Float64frombits(binary.LittleEndian.Uint64(data[24:32]))
	baseLen := int(binary.LittleEndian.Uint32(data[32:36]))
	numLevels := int(binary.LittleEndian.Uint32(data[36:40]))
	bitmap := binary.LittleEndian.Uint64(data[40:48])
	if numLevels > 64 {
		return nil, ErrTooManyLvls
	}
	if baseLen < 0 || baseLen >= 2*k {
		return nil, fmt.Errorf("%w: base length %d", ErrCorrupt, baseLen)
	}
	occupied := 0
	var weight uint64 = uint64(baseLen)
	for lvl := 0; lvl < numLevels; lvl++ {
		if bitmap&(1<<uint(lvl)) != 0 {
			occupied++
			weight += uint64(k) << uint(lvl+1)
		}
	}
	if bitmap>>uint(numLevels) != 0 {
		return nil, fmt.Errorf("%w: bitmap beyond level count", ErrCorrupt)
	}
	items := baseLen + occupied*k
	if len(data) != qheaderSize+8*items {
		return nil, fmt.Errorf("%w: payload size", ErrCorrupt)
	}
	if weight != n {
		return nil, ErrBadN
	}
	if (n == 0) != (data[5]&qflagEmpty != 0) {
		return nil, fmt.Errorf("%w: empty flag vs n", ErrCorrupt)
	}

	s := New(k)
	s.n = n
	s.min = minV
	s.max = maxV
	off := qheaderSize
	readF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		return v
	}
	var loSample, hiSample float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < baseLen; i++ {
		v := readF()
		if math.IsNaN(v) {
			return nil, ErrNaNPayload
		}
		s.base = append(s.base, v)
		loSample = math.Min(loSample, v)
		hiSample = math.Max(hiSample, v)
	}
	s.levels = make([][]float64, numLevels)
	for lvl := 0; lvl < numLevels; lvl++ {
		if bitmap&(1<<uint(lvl)) == 0 {
			continue
		}
		lv := make([]float64, k)
		for i := 0; i < k; i++ {
			v := readF()
			if math.IsNaN(v) {
				return nil, ErrNaNPayload
			}
			if i > 0 && v < lv[i-1] {
				return nil, ErrLevelSort
			}
			lv[i] = v
			loSample = math.Min(loSample, v)
			hiSample = math.Max(hiSample, v)
		}
		s.levels[lvl] = lv
	}
	if n > 0 && (loSample < minV || hiSample > maxV) {
		return nil, ErrBadMinMax
	}
	if n == 0 && (baseLen != 0 || occupied != 0) {
		return nil, fmt.Errorf("%w: empty sketch with samples", ErrCorrupt)
	}
	return s, nil
}
