package quantiles

import "testing"

// TestConcurrentCompact checks the sequential copy matches the live
// snapshot after a flush and survives a serde round trip.
func TestConcurrentCompact(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 64, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	const n = 5000
	for i := 0; i < n; i++ {
		w.Update(float64(i))
	}
	w.Flush()
	cp := c.Compact()
	if cp.N() != uint64(n) {
		t.Fatalf("compact N = %d, want %d", cp.N(), n)
	}
	med := cp.Quantile(0.5)
	if med < n/2-n/10 || med > n/2+n/10 {
		t.Errorf("compact median = %v, want ~%d", med, n/2)
	}
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != cp.N() || back.Quantile(0.5) != cp.Quantile(0.5) {
		t.Errorf("round-trip mismatch: N %d vs %d", back.N(), cp.N())
	}
}

// TestConcurrentCompactDuringIngest races Compact against ingestion;
// the race detector is the assertion.
func TestConcurrentCompactDuringIngest(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 32, Writers: 1, BufferSize: 8})
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := c.Writer(0)
		for i := 0; i < 20000; i++ {
			w.Update(float64(i))
		}
		w.Flush()
	}()
	for i := 0; i < 100; i++ {
		if cp := c.Compact(); cp.N() > 20000 {
			t.Fatalf("compact N = %d exceeds stream length", cp.N())
		}
	}
	<-done
}
