package quantiles

import (
	"github.com/fcds/fcds/internal/core"
)

// Engine binds a concurrent-quantiles configuration into the generic
// core.Engine interface. Value type is the raw float64 sample, snapshot
// type the immutable *Snapshot, compact type the sequential *Sketch.
type Engine struct {
	cfg ConcurrentConfig
}

var _ core.Engine[float64, *Snapshot, *Sketch] = (*Engine)(nil)

// NewEngine returns a quantiles engine for the given configuration
// (zero fields take the ConcurrentConfig defaults). The Pool field is
// ignored: the executor is chosen per sketch by NewSketch.
func NewEngine(cfg ConcurrentConfig) *Engine {
	cfg.Pool = nil
	return &Engine{cfg: cfg.withDefaults()}
}

// Kind implements core.CompactCodec.
func (e *Engine) Kind() byte { return core.KindQuantiles }

// Param implements core.CompactCodec: the accuracy parameter k.
func (e *Engine) Param() uint32 { return uint32(e.cfg.K) }

// NumWriters implements core.Engine.
func (e *Engine) NumWriters() int { return e.cfg.Writers }

// Relaxation implements core.Engine: r = 2·N·b per sketch.
func (e *Engine) Relaxation() int { return 2 * e.cfg.Writers * e.cfg.BufferSize }

// NewSketch implements core.Engine.
func (e *Engine) NewSketch(pool *core.PropagatorPool) core.EngineSketch[float64, *Snapshot, *Sketch] {
	return e.NewSketchAffine(pool, 0)
}

// NewSketchAffine implements core.Engine: NewSketch pinned to the pool
// worker the affinity key maps to.
func (e *Engine) NewSketchAffine(pool *core.PropagatorPool, affinityKey uint64) core.EngineSketch[float64, *Snapshot, *Sketch] {
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    e.newConcurrent(pool, affinityKey),
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

func (e *Engine) newConcurrent(pool *core.PropagatorPool, affinityKey uint64) *Concurrent {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	return NewConcurrent(cfg)
}

// NewSketchSeeded implements core.ScalableEngine: the new sketch's
// global starts from the compact (weighted samples merge across k), so
// a promoted hot key keeps its history.
func (e *Engine) NewSketchSeeded(pool *core.PropagatorPool, affinityKey uint64, from *Sketch) core.EngineSketch[float64, *Snapshot, *Sketch] {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    NewConcurrentFrom(cfg, from),
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

// Promotion caps (see theta's counterparts).
const (
	maxScaledK      = 1 << 12
	maxScaledBuffer = 1 << 14
)

// ScaleUp implements core.ScalableEngine: doubles k (rank error
// shrinks) and the local buffer b (r = 2·N·b doubles), and disables
// the eager phase — a promoted key is past the small-stream regime by
// construction. Quantiles sketches merge across k (snapshot replay),
// so scaled sketches stay mergeable with base ones.
func (e *Engine) ScaleUp() (core.Engine[float64, *Snapshot, *Sketch], bool) {
	cfg := e.cfg
	grown := false
	if cfg.K < maxScaledK {
		cfg.K *= 2
		grown = true
	}
	if cfg.BufferSize < maxScaledBuffer {
		cfg.BufferSize *= 2
		grown = true
	}
	if !grown {
		return nil, false
	}
	cfg.EagerLimit = -1
	return NewEngine(cfg), true
}

// NewAggregator implements core.Engine: one accumulating sketch.
func (e *Engine) NewAggregator() core.Aggregator[*Sketch] {
	return &mergeAggregator{s: New(e.cfg.K)}
}

// QueryCompact implements core.Engine.
func (e *Engine) QueryCompact(c *Sketch) *Snapshot { return c.Snapshot() }

// MergeCompact implements core.CompactCodec.
func (e *Engine) MergeCompact(a, b *Sketch) (*Sketch, error) {
	out := New(e.cfg.K)
	out.Merge(a)
	out.Merge(b)
	return out, nil
}

// MarshalCompact implements core.CompactCodec.
func (e *Engine) MarshalCompact(c *Sketch) ([]byte, error) { return c.MarshalBinary() }

// UnmarshalCompact implements core.CompactCodec.
func (e *Engine) UnmarshalCompact(data []byte) (*Sketch, error) { return Unmarshal(data) }

// mergeAggregator adapts a sequential Sketch to core.Aggregator.
type mergeAggregator struct{ s *Sketch }

func (a *mergeAggregator) Add(c *Sketch) error {
	a.s.Merge(c)
	return nil
}
func (a *mergeAggregator) Result() *Sketch { return a.s }

// engineSketch adapts one Concurrent to core.EngineSketch; see the Θ
// counterpart for the writer-slot laziness contract.
type engineSketch struct {
	eng  *Engine
	pool *core.PropagatorPool
	aff  uint64
	c    *Concurrent
	ws   []*ConcurrentWriter
}

func (s *engineSketch) writer(i int) *ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *engineSketch) Update(i int, v float64)           { s.writer(i).Update(v) }
func (s *engineSketch) UpdateBatch(i int, vals []float64) { s.writer(i).UpdateBatch(vals) }

// UpdateHashedBatch is UpdateBatch: quantiles values are raw samples,
// not hashes, so there is no pre-hashed ingestion distinction.
func (s *engineSketch) UpdateHashedBatch(i int, vals []float64) { s.writer(i).UpdateBatch(vals) }

func (s *engineSketch) Flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *engineSketch) Query() *Snapshot { return s.c.Snapshot() }
func (s *engineSketch) Compact() *Sketch { return s.c.Compact() }

// Close releases the sketch graph (see the Θ counterpart).
func (s *engineSketch) Close() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
		s.ws = nil
	}
}

// Reset implements core.EngineSketch; caller holds Close-level
// exclusivity.
func (s *engineSketch) Reset() {
	s.c.Close()
	s.c = s.eng.newConcurrent(s.pool, s.aff)
	clear(s.ws)
}
