package quantiles

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fcds/fcds/internal/oracle"
)

func TestEmptySketch(t *testing.T) {
	s := New(128)
	if !s.IsEmpty() || s.N() != 0 || s.RetainedItems() != 0 {
		t.Error("fresh sketch not empty")
	}
	if !math.IsNaN(s.Snapshot().Quantile(0.5)) {
		t.Error("median of empty sketch should be NaN")
	}
	if !math.IsNaN(s.Snapshot().Rank(5)) {
		t.Error("rank on empty sketch should be NaN")
	}
}

func TestSmallStreamExact(t *testing.T) {
	// Below 2k items nothing is compacted: every query is exact.
	s := New(128)
	for i := 1; i <= 100; i++ {
		s.Update(float64(i))
	}
	tests := []struct {
		phi  float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50}, {0.25, 25}, {0.99, 99},
	}
	for _, tc := range tests {
		if got := s.Quantile(tc.phi); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.phi, got, tc.want)
		}
	}
}

func TestMinMaxExact(t *testing.T) {
	s := New(64)
	for i := 0; i < 100000; i++ {
		s.Update(float64((i*7919)%1000000) / 3)
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Error("extreme quantiles must return exact min/max")
	}
}

func TestNaNIgnored(t *testing.T) {
	s := New(64)
	s.Update(math.NaN())
	if !s.IsEmpty() {
		t.Error("NaN update was not ignored")
	}
}

func TestNCountsCorrectly(t *testing.T) {
	s := New(32)
	const n = 12345
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	if s.N() != n {
		t.Errorf("N = %d, want %d", s.N(), n)
	}
}

func TestWeightInvariant(t *testing.T) {
	// Total snapshot weight must always equal n, at every fill level
	// (this is the invariant compaction must preserve).
	s := New(16)
	for i := 0; i < 3000; i++ {
		s.Update(float64(i))
		snap := s.Snapshot()
		if len(snap.cum) == 0 {
			t.Fatal("snapshot empty while sketch non-empty")
		}
		if total := snap.cum[len(snap.cum)-1]; total != s.n {
			t.Fatalf("after %d updates: snapshot weight %d != n %d", i+1, total, s.n)
		}
	}
}

func TestLogSpace(t *testing.T) {
	// Retained items must grow like O(k log(n/k)), not O(n).
	k := 128
	s := New(k)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	maxRetained := 2*k + k*25 // base + one buffer per level, generous
	if r := s.RetainedItems(); r > maxRetained {
		t.Errorf("retained %d items for n=%d, want <= %d", r, n, maxRetained)
	}
}

func TestRankErrorSortedStream(t *testing.T) {
	k, n := 128, 200000
	s := New(k)
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	eps := NormalizedRankError(k)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(phi)
		trueRank := got / float64(n) // value i has exact rank i/n
		if math.Abs(trueRank-phi) > 3*eps {
			t.Errorf("phi=%v: returned value has rank %v (|Δ|=%v > 3ε=%v)",
				phi, trueRank, math.Abs(trueRank-phi), 3*eps)
		}
	}
}

func TestRankErrorAdversarialOrder(t *testing.T) {
	// Reverse-sorted and shuffled streams must meet the same bound.
	k, n := 128, 100000
	eps := NormalizedRankError(k)
	streams := map[string]func(i int) float64{
		"reversed": func(i int) float64 { return float64(n - i) },
		"shuffled": func(i int) float64 { return float64((i * 99991) % n) },
		"zigzag":   func(i int) float64 { return float64((i%2)*n/2 + i/2) },
	}
	for name, gen := range streams {
		s := New(k)
		for i := 0; i < n; i++ {
			s.Update(gen(i))
		}
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			got := s.Quantile(phi)
			trueRank := got / float64(n)
			if math.Abs(trueRank-phi) > 3*eps {
				t.Errorf("%s: phi=%v rank=%v exceeds 3ε", name, phi, trueRank)
			}
		}
	}
}

func TestRankQuantileInverse(t *testing.T) {
	k, n := 128, 50000
	s := New(k)
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	eps := NormalizedRankError(k)
	snap := s.Snapshot()
	for _, phi := range []float64{0.2, 0.5, 0.8} {
		v := snap.Quantile(phi)
		r := snap.Rank(v)
		if math.Abs(r-phi) > 3*eps {
			t.Errorf("Rank(Quantile(%v)) = %v, want within 3ε", phi, r)
		}
	}
}

func TestRankBoundaries(t *testing.T) {
	s := New(32)
	for i := 1; i <= 100; i++ {
		s.Update(float64(i))
	}
	snap := s.Snapshot()
	if r := snap.Rank(0.5); r != 0 {
		t.Errorf("rank below min = %v, want 0", r)
	}
	if r := snap.Rank(1000); r != 1 {
		t.Errorf("rank above max = %v, want 1", r)
	}
}

func TestQuantilePanicsOutsideRange(t *testing.T) {
	s := New(32)
	s.Update(1)
	for _, phi := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", phi)
				}
			}()
			s.Quantile(phi)
		}()
	}
}

func TestMergeEquivalentToConcatenation(t *testing.T) {
	// Mergeability: error bound of merged sketch matches direct sketch.
	k, n := 128, 100000
	a, b := New(k), New(k)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.Update(float64(i))
		} else {
			b.Update(float64(i))
		}
	}
	a.Merge(b)
	if a.N() != uint64(n) {
		t.Fatalf("merged N = %d, want %d", a.N(), n)
	}
	eps := NormalizedRankError(k)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := a.Quantile(phi)
		trueRank := got / float64(n)
		if math.Abs(trueRank-phi) > 4*eps {
			t.Errorf("merged: phi=%v rank=%v", phi, trueRank)
		}
	}
}

func TestMergePreservesMinMax(t *testing.T) {
	a, b := New(32), New(32)
	a.Update(5)
	b.Update(-3)
	b.Update(99)
	a.Merge(b)
	if a.Min() != -3 || a.Max() != 99 {
		t.Errorf("min/max after merge = %v/%v, want -3/99", a.Min(), a.Max())
	}
}

func TestMergeEmpty(t *testing.T) {
	a, b := New(32), New(32)
	a.Update(1)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 {
		t.Errorf("N after merging empty = %d", a.N())
	}
	b.Merge(a)
	if b.N() != 1 || b.Quantile(0.5) != 1 {
		t.Error("merge into empty failed")
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	k := 32
	a, b := New(k), New(k)
	for i := 0; i < 10000; i++ {
		a.Update(float64(i))
		b.Update(float64(i))
	}
	before := b.Snapshot()
	a.Merge(b)
	after := b.Snapshot()
	if len(before.values) != len(after.values) || before.n != after.n {
		t.Fatal("merge modified its argument")
	}
	for i := range before.values {
		if before.values[i] != after.values[i] {
			t.Fatal("merge modified other's samples")
		}
	}
}

func TestMergeMismatchedK(t *testing.T) {
	a, b := New(128), New(64)
	for i := 0; i < 50000; i++ {
		a.Update(float64(i))
		b.Update(float64(i + 50000))
	}
	a.Merge(b)
	if a.N() != 100000 {
		t.Fatalf("merged N = %d, want 100000", a.N())
	}
	eps := NormalizedRankError(64) // coarser sketch dominates
	got := a.Quantile(0.5)
	if math.Abs(got/100000-0.5) > 4*eps {
		t.Errorf("median after mixed-k merge: %v", got)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	// A snapshot must not change when the source sketch keeps updating
	// (this is what makes concurrent queries safe).
	s := New(64)
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	snap := s.Snapshot()
	medBefore := snap.Quantile(0.5)
	for i := 1000; i < 200000; i++ {
		s.Update(float64(i))
	}
	if snap.Quantile(0.5) != medBefore {
		t.Error("snapshot changed after further updates")
	}
	if snap.N() != 1000 {
		t.Errorf("snapshot N = %d, want 1000", snap.N())
	}
}

func TestCDFAndPMF(t *testing.T) {
	s := New(128)
	for i := 0; i < 10000; i++ {
		s.Update(float64(i % 100)) // uniform over 0..99
	}
	snap := s.Snapshot()
	cdf := snap.CDF([]float64{25, 50, 75})
	if len(cdf) != 4 || cdf[3] != 1 {
		t.Fatalf("CDF shape wrong: %v", cdf)
	}
	for i, want := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(cdf[i]-want) > 0.05 {
			t.Errorf("CDF[%d] = %v, want ~%v", i, cdf[i], want)
		}
	}
	pmf := snap.PMF([]float64{25, 50, 75})
	var sum float64
	for _, p := range pmf {
		if p < 0 {
			t.Errorf("negative PMF mass %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
}

func TestCDFPanicsOnUnsortedSplits(t *testing.T) {
	s := New(32)
	s.Update(1)
	defer func() {
		if recover() == nil {
			t.Fatal("CDF with unsorted splits did not panic")
		}
	}()
	s.CDF([]float64{5, 2})
}

func TestReset(t *testing.T) {
	s := New(64)
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	s.Reset()
	if !s.IsEmpty() || s.RetainedItems() != 0 {
		t.Fatal("reset did not empty the sketch")
	}
	s.Update(7)
	if s.Quantile(0.5) != 7 {
		t.Error("sketch unusable after reset")
	}
}

func TestDeterministicWithFixedOracle(t *testing.T) {
	// §4: with the oracle fixed, the sketch is deterministic.
	run := func() float64 {
		s := NewWithOracle(64, oracle.New(12345))
		for i := 0; i < 100000; i++ {
			s.Update(float64((i * 31) % 100000))
		}
		return s.Quantile(0.5)
	}
	if run() != run() {
		t.Error("identical oracles produced different sketches")
	}
}

func TestPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestNormalizedRankErrorMonotone(t *testing.T) {
	// Larger k must mean smaller error.
	prev := math.Inf(1)
	for _, k := range []int{16, 32, 64, 128, 256, 512} {
		e := NormalizedRankError(k)
		if e >= prev {
			t.Errorf("eps(%d) = %v not decreasing", k, e)
		}
		prev = e
	}
	if e := NormalizedRankError(128); e < 0.005 || e > 0.03 {
		t.Errorf("eps(128) = %v, expected ~1.7%%", e)
	}
}

func TestQuantileMonotoneInPhi(t *testing.T) {
	f := func(seed uint64) bool {
		orc := oracle.New(seed)
		s := NewWithOracle(32, orc.Fork())
		for i := 0; i < 5000; i++ {
			s.Update(orc.Float64() * 1000)
		}
		snap := s.Snapshot()
		prev := math.Inf(-1)
		for phi := 0.0; phi <= 1.0; phi += 0.05 {
			q := snap.Quantile(phi)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRankMonotoneInValue(t *testing.T) {
	s := New(64)
	for i := 0; i < 50000; i++ {
		s.Update(float64((i * 7) % 1000))
	}
	snap := s.Snapshot()
	prev := -1.0
	for v := -10.0; v <= 1010; v += 7 {
		r := snap.Rank(v)
		if r < prev {
			t.Fatalf("Rank not monotone at v=%v", v)
		}
		prev = r
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(128)
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}

func BenchmarkSnapshotK128N1M(b *testing.B) {
	s := New(128)
	for i := 0; i < 1<<20; i++ {
		s.Update(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot()
	}
}

func BenchmarkQuantileQuery(b *testing.B) {
	s := New(128)
	for i := 0; i < 1<<20; i++ {
		s.Update(float64(i))
	}
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Quantile(0.5)
	}
}
