// Package quantiles implements the mergeable Quantiles sketch of
// Agarwal et al. ("Mergeable Summaries", PODS'12) in the form Apache
// DataSketches ships: a base buffer of 2k items plus a logarithmic
// ladder of levels, each holding k sorted items of weight 2^(level+1).
//
// A query for quantile φ over a stream of n items returns an element
// whose rank is within (φ±ε)n with probability at least 1-δ, with
// ε = O(1/k) — the PAC property the paper's Section 6.2 relaxation
// analysis builds on. Randomness (the compaction zip offset) comes from
// an explicit oracle, matching the paper's de-randomisation: fixing the
// oracle fixes the sketch's sequential behaviour.
package quantiles

import (
	"math"
	"sort"

	"github.com/fcds/fcds/internal/oracle"
)

// Sketch is a mergeable quantiles sketch over float64 values. It is not
// safe for concurrent use; see the core framework for the concurrent
// version.
type Sketch struct {
	k    int
	n    uint64
	base []float64 // unsorted, weight-1 items; cap 2k
	// levels[i] is nil or a sorted slice of exactly k items, each with
	// weight 2^(i+1).
	levels [][]float64
	min    float64
	max    float64
	orc    *oracle.Oracle
	// scratch buffers reused across compactions.
	mergeBuf []float64
}

// New returns an empty sketch with parameter k (a power of two >= 2;
// 128 gives ~1.7% rank error) and a library-default oracle.
func New(k int) *Sketch { return NewWithOracle(k, oracle.New(0x5eed)) }

// NewWithOracle returns an empty sketch drawing compaction coins from
// orc (the paper's Section 4 oracle; fix it to de-randomise).
func NewWithOracle(k int, orc *oracle.Oracle) *Sketch {
	if k < 2 || k&(k-1) != 0 {
		panic("quantiles: k must be a power of two >= 2")
	}
	return &Sketch{
		k:    k,
		base: make([]float64, 0, 2*k),
		min:  math.Inf(1),
		max:  math.Inf(-1),
		orc:  orc,
	}
}

// K returns the sketch parameter.
func (s *Sketch) K() int { return s.k }

// N returns the number of items processed.
func (s *Sketch) N() uint64 { return s.n }

// IsEmpty reports whether no items have been processed.
func (s *Sketch) IsEmpty() bool { return s.n == 0 }

// Min returns the smallest item seen (…+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest item seen (-Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Update processes one stream item. NaN values are rejected because
// they have no rank.
func (s *Sketch) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.base = append(s.base, v)
	s.n++
	if len(s.base) == 2*s.k {
		s.processFullBase()
	}
}

// UpdateSlice folds a run of values into the sketch, equivalent to
// calling Update on each element in order (it implements the framework
// batch-local extension; a compaction can trigger at any element
// boundary, so the per-item bookkeeping stays).
func (s *Sketch) UpdateSlice(vs []float64) {
	for _, v := range vs {
		s.Update(v)
	}
}

// processFullBase sorts the base buffer and carries a compacted
// k-buffer into the level ladder.
func (s *Sketch) processFullBase() {
	sort.Float64s(s.base)
	carry := s.compact(s.base)
	s.base = s.base[:0]
	s.carryUp(0, carry)
}

// compact halves a sorted 2k-item buffer into a fresh k-item buffer by
// keeping every other item starting at a random offset (the oracle coin
// flip of §4 — one flip per compaction).
func (s *Sketch) compact(sorted2k []float64) []float64 {
	offset := 0
	if s.orc.Coin() {
		offset = 1
	}
	out := make([]float64, 0, s.k)
	for i := offset; i < len(sorted2k); i += 2 {
		out = append(out, sorted2k[i])
	}
	return out
}

// carryUp inserts a sorted k-item buffer at the given level, merging
// and re-compacting upward while levels are occupied (binary-add carry
// propagation).
func (s *Sketch) carryUp(level int, carry []float64) {
	for {
		for len(s.levels) <= level {
			s.levels = append(s.levels, nil)
		}
		if s.levels[level] == nil {
			s.levels[level] = carry
			return
		}
		// Merge two sorted k-buffers into 2k, compact to k, carry up.
		s.mergeBuf = mergeSorted(s.mergeBuf[:0], s.levels[level], carry)
		s.levels[level] = nil
		carry = s.compact(s.mergeBuf)
		level++
	}
}

// mergeSorted merges two sorted slices into dst.
func mergeSorted(dst, a, b []float64) []float64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Merge folds other into s (mergeable-summaries merge): other's base
// buffer is replayed as weight-1 updates and each occupied level is
// carried into s at the same height. other is not modified.
func (s *Sketch) Merge(other *Sketch) {
	if other.IsEmpty() {
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	if other.k != s.k {
		// Downstream users should construct compatible sketches; we
		// keep the API total by replaying through a snapshot, which
		// preserves the PAC bound of the coarser sketch.
		s.mergeViaSnapshot(other)
		return
	}
	// Weight-1 items.
	for _, v := range other.base {
		s.base = append(s.base, v)
		s.n++
		if len(s.base) == 2*s.k {
			s.processFullBase()
		}
	}
	// Level buffers: insert copies so other remains usable.
	for lvl, buf := range other.levels {
		if buf == nil {
			continue
		}
		cp := make([]float64, len(buf))
		copy(cp, buf)
		s.carryUp(lvl, cp)
		s.n += uint64(len(buf)) << uint(lvl+1)
	}
}

// mergeViaSnapshot replays other's weighted samples into s. Used only
// for mismatched k.
func (s *Sketch) mergeViaSnapshot(other *Sketch) {
	snap := other.Snapshot()
	for i, v := range snap.values {
		w := snap.weightAt(i)
		for j := uint64(0); j < w; j++ {
			s.Update(v)
		}
	}
}

// Quantile returns an element whose rank approximates φ·n. φ must be in
// [0, 1]; 0 returns the exact minimum and 1 the exact maximum.
func (s *Sketch) Quantile(phi float64) float64 { return s.Snapshot().Quantile(phi) }

// Rank returns the approximate normalized rank of v: the fraction of
// processed items that are < v.
func (s *Sketch) Rank(v float64) float64 { return s.Snapshot().Rank(v) }

// CDF returns the approximate cumulative distribution evaluated at each
// split point: result[i] is the normalized rank of splits[i], plus a
// final entry of 1. Splits must be strictly ascending.
func (s *Sketch) CDF(splits []float64) []float64 { return s.Snapshot().CDF(splits) }

// Reset restores the sketch to empty, retaining its buffers.
func (s *Sketch) Reset() {
	s.n = 0
	s.base = s.base[:0]
	for i := range s.levels {
		s.levels[i] = nil
	}
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// RetainedItems returns the number of samples currently stored (base
// plus levels) — the sketch's space footprint in items.
func (s *Sketch) RetainedItems() int {
	r := len(s.base)
	for _, l := range s.levels {
		r += len(l)
	}
	return r
}

// NormalizedRankError returns the a-priori rank error ε for parameter k
// with high confidence (~99%), using the empirical fit published for
// the DataSketches quantiles family. The concurrent relaxation adds
// r/n − rε/n on top (§6.2).
func NormalizedRankError(k int) float64 {
	// Fit of the same form DataSketches documents for this sketch;
	// k=128 → ≈1.7%, k=256 → ≈0.9%.
	return 1.76 / math.Pow(float64(k), 0.93)
}
