package quantiles

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSerdeRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, New(128))
	if !got.IsEmpty() || got.K() != 128 {
		t.Error("empty round trip failed")
	}
}

func TestSerdeRoundTripSmall(t *testing.T) {
	s := New(64)
	for i := 1; i <= 100; i++ {
		s.Update(float64(i))
	}
	got := roundTrip(t, s)
	if got.N() != 100 || got.Min() != 1 || got.Max() != 100 {
		t.Fatalf("n/min/max: %d %v %v", got.N(), got.Min(), got.Max())
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got.Quantile(phi) != s.Quantile(phi) {
			t.Errorf("quantile %v changed", phi)
		}
	}
}

func TestSerdeRoundTripLarge(t *testing.T) {
	s := New(128)
	for i := 0; i < 500000; i++ {
		s.Update(float64((i * 31) % 99991))
	}
	got := roundTrip(t, s)
	if got.N() != s.N() || got.RetainedItems() != s.RetainedItems() {
		t.Fatal("structure changed in round trip")
	}
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		if got.Quantile(phi) != s.Quantile(phi) {
			t.Errorf("quantile %v: %v != %v", phi, got.Quantile(phi), s.Quantile(phi))
		}
	}
}

func TestSerdeRestoredSketchKeepsWorking(t *testing.T) {
	s := New(64)
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	got := roundTrip(t, s)
	for i := 10000; i < 20000; i++ {
		got.Update(float64(i))
	}
	if got.N() != 20000 {
		t.Fatalf("N = %d", got.N())
	}
	eps := NormalizedRankError(64)
	med := got.Quantile(0.5)
	if med < (0.5-4*eps)*20000 || med > (0.5+4*eps)*20000 {
		t.Errorf("median after resume: %v", med)
	}
}

func TestSerdeRejectsCorruption(t *testing.T) {
	s := New(64)
	for i := 0; i < 100000; i++ {
		s.Update(float64(i))
	}
	base, _ := s.MarshalBinary()
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short", func(b []byte) []byte { return b[:20] }, ErrCorrupt},
		{"magic", func(b []byte) []byte { b[1] = 'X'; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 9; return b }, ErrBadVersion},
		{"k not pow2", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 100)
			return b
		}, ErrBadK},
		{"n mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 5)
			return b
		}, ErrBadN},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-8] }, ErrCorrupt},
		{"base too long", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[32:36], 1<<20)
			return b
		}, ErrCorrupt},
		{"bitmap beyond levels", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[40:48], 1<<63)
			return b
		}, ErrCorrupt},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			if _, err := Unmarshal(data); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSerdeRejectsUnsortedLevel(t *testing.T) {
	s := New(64)
	for i := 0; i < 100000; i++ {
		s.Update(float64(i))
	}
	data, _ := s.MarshalBinary()
	// Swap the first two items of the first level region. Levels start
	// after the base buffer.
	off := qheaderSize + 8*len(s.base)
	a := binary.LittleEndian.Uint64(data[off:])
	b := binary.LittleEndian.Uint64(data[off+8:])
	binary.LittleEndian.PutUint64(data[off:], b)
	binary.LittleEndian.PutUint64(data[off+8:], a)
	if _, err := Unmarshal(data); !errors.Is(err, ErrLevelSort) {
		t.Errorf("err = %v, want ErrLevelSort", err)
	}
}

func TestSerdeRejectsMinMaxViolation(t *testing.T) {
	s := New(64)
	for i := 0; i < 100000; i++ {
		s.Update(float64(i + 10))
	}
	data, _ := s.MarshalBinary()
	binary.LittleEndian.PutUint64(data[24:32], 0) // max := 0 < samples
	if _, err := Unmarshal(data); !errors.Is(err, ErrBadMinMax) {
		t.Errorf("err = %v, want ErrBadMinMax", err)
	}
}

func TestSerdeFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSerdeHeaderFuzzNeverPanics(t *testing.T) {
	// Mutate valid headers field-by-field: crashes here would mean a
	// validation gap rather than random-garbage luck.
	s := New(32)
	for i := 0; i < 5000; i++ {
		s.Update(float64(i))
	}
	base, _ := s.MarshalBinary()
	f := func(pos uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%qheaderSize] = val
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
