package quantiles

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestConcurrentQuantilesSingleWriter(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 128, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	const n = 100000
	for i := 0; i < n; i++ {
		w.Update(float64(i))
	}
	w.Flush()
	eps := NormalizedRankError(128)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := c.Quantile(phi)
		if math.Abs(got/n-phi) > 3*eps {
			t.Errorf("phi=%v: value %v (rank %v)", phi, got, got/n)
		}
	}
}

func TestConcurrentQuantilesMultiWriter(t *testing.T) {
	const writers, per = 4, 50000
	c := NewConcurrent(ConcurrentConfig{K: 128, Writers: writers})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			// Interleaved ranges so each writer sees the full value
			// distribution.
			for j := 0; j < per; j++ {
				w.Update(float64(j*writers + i))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	n := float64(writers * per * writers) // values span 0..writers*per*writers
	_ = n
	total := float64(writers * per)
	snap := c.Snapshot()
	if snap.N() != uint64(total) {
		t.Fatalf("snapshot N = %d, want %v", snap.N(), total)
	}
	eps := NormalizedRankError(128)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		v := snap.Quantile(phi)
		// Values are 0..writers*per*writers-ish uniform; true rank of v
		// is v / (writers*per*writers... actually max value is
		// (per-1)*writers + writers-1 = per*writers - 1.
		trueRank := v / total
		if math.Abs(trueRank-phi) > 4*eps {
			t.Errorf("phi=%v: rank %v", phi, trueRank)
		}
	}
}

func TestConcurrentQuantilesRelaxation(t *testing.T) {
	// Updates not yet propagated may be missed, but never more than
	// r = 2Nb (checked via snapshot N after quiescing).
	const writers, per, b = 2, 10000, 64
	c := NewConcurrent(ConcurrentConfig{K: 64, Writers: writers, BufferSize: b, EagerLimit: -1})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				w.Update(float64(j))
			}
			// no flush
		}(i)
	}
	wg.Wait()
	prev := int64(-1)
	for i := 0; i < 500; i++ {
		cur := c.Propagations()
		if cur == prev {
			break
		}
		prev = cur
		time.Sleep(2 * time.Millisecond)
	}
	got := c.Snapshot().N()
	total := uint64(writers * per)
	r := uint64(c.Relaxation())
	if got > total {
		t.Errorf("snapshot N %d exceeds total %d", got, total)
	}
	if got < total-r {
		t.Errorf("snapshot N %d misses more than r=%d of %d", got, r, total)
	}
}

func TestConcurrentQuantilesEagerPhaseExact(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 128, Writers: 1, EagerLimit: 200})
	defer c.Close()
	w := c.Writer(0)
	for i := 1; i <= 200; i++ {
		w.Update(float64(i))
		snap := c.Snapshot()
		if snap.N() != uint64(i) {
			t.Fatalf("eager phase: snapshot N = %d after %d updates", snap.N(), i)
		}
	}
	// Below 2k items the snapshot is exact.
	if med := c.Quantile(0.5); med != 100 {
		t.Errorf("eager median = %v, want 100", med)
	}
}

func TestConcurrentQuantilesSnapshotStability(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 64, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	for i := 0; i < 10000; i++ {
		w.Update(float64(i))
	}
	w.Flush()
	snap := c.Snapshot()
	n0 := snap.N()
	med0 := snap.Quantile(0.5)
	for i := 0; i < 50000; i++ {
		w.Update(float64(i))
	}
	w.Flush()
	if snap.N() != n0 || snap.Quantile(0.5) != med0 {
		t.Error("published snapshot mutated by later updates")
	}
	// A fresh snapshot must observe the new data.
	if c.Snapshot().N() <= n0 {
		t.Error("new snapshot did not advance")
	}
}

func TestConcurrentQuantilesLiveReads(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{K: 128, Writers: 2})
	defer c.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < 100000; j++ {
				w.Update(float64(j % 1000))
			}
			w.Flush()
		}(i)
	}
	go func() {
		wg.Wait()
		close(stop)
	}()
	var prevN uint64
	for {
		select {
		case <-stop:
			return
		default:
		}
		snap := c.Snapshot()
		if snap.N() < prevN {
			t.Fatalf("snapshot N regressed %d -> %d", prevN, snap.N())
		}
		prevN = snap.N()
		if snap.N() > 0 {
			med := snap.Quantile(0.5)
			if med < 0 || med > 1000 {
				t.Fatalf("median %v outside data range", med)
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkConcurrentQuantilesUpdate(b *testing.B) {
	c := NewConcurrent(ConcurrentConfig{K: 128, Writers: 1, EagerLimit: -1})
	defer c.Close()
	w := c.Writer(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Update(float64(i))
	}
}
