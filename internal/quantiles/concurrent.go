package quantiles

import (
	"sync"
	"sync/atomic"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/oracle"
)

// This file instantiates the generic framework with the Quantiles
// sketch. Writer-local sketches are full (small) quantiles sketches, so
// the propagator merges level buffers instead of replaying raw items —
// the mergeability property (§3) doing the heavy lifting. The snapshot
// is an immutable *Snapshot published through an atomic pointer, which
// makes queries a single strongly-linearisable atomic load; the hint is
// unused (calcHint/shouldAdd "may be trivially implemented by always
// returning true", §5.1).

// GlobalSketch is the composable global quantiles sketch.
type GlobalSketch struct {
	q *Sketch
	// mu serialises structural access to q (merge/eager paths vs
	// Compact copies); the wait-free snapshot read never touches it.
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
}

var _ core.Global[float64, *Snapshot] = (*GlobalSketch)(nil)

// NewGlobal returns an empty composable global sketch with parameter k.
func NewGlobal(k int, orc *oracle.Oracle) *GlobalSketch {
	g := &GlobalSketch{q: NewWithOracle(k, orc)}
	g.publish()
	return g
}

// Merge implements core.Global. Called only by the propagator.
func (g *GlobalSketch) Merge(l core.Local[float64]) {
	g.mu.Lock()
	g.q.Merge(l.(*Sketch))
	g.publish()
	g.mu.Unlock()
}

// UpdateDirect implements core.Global (eager phase).
func (g *GlobalSketch) UpdateDirect(v float64) {
	g.mu.Lock()
	g.q.Update(v)
	g.publish()
	g.mu.Unlock()
}

// Compact returns a sequential copy of the global sketch, serialised
// against concurrent merges. The copy owns its buffers, so it can be
// serialized with MarshalBinary and merged into other sketches.
func (g *GlobalSketch) Compact() *Sketch {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := New(g.q.K())
	cp.Merge(g.q)
	return cp
}

// Absorb folds a sequential sketch into the global (any k: mismatched
// parameters replay through a snapshot). Intended for sketch
// construction, before any writer or propagator runs.
func (g *GlobalSketch) Absorb(from *Sketch) {
	g.mu.Lock()
	g.q.Merge(from)
	g.publish()
	g.mu.Unlock()
}

// Snapshot implements core.Global: a wait-free atomic pointer load of
// an immutable snapshot.
func (g *GlobalSketch) Snapshot() *Snapshot { return g.snap.Load() }

// CalcHint implements core.Global; quantiles derive no useful hint.
func (g *GlobalSketch) CalcHint() uint64 { return 1 }

// ShouldAdd implements core.Global; every update affects a quantiles
// sketch, so nothing is filtered.
func (g *GlobalSketch) ShouldAdd(uint64, float64) bool { return true }

func (g *GlobalSketch) publish() { g.snap.Store(g.q.Snapshot()) }

// ConcurrentConfig configures a concurrent quantiles sketch. Zero
// fields take defaults: K=128, Writers=1, BufferSize=2·K.
type ConcurrentConfig struct {
	// K is the sketch accuracy parameter (power of two).
	K int
	// Writers is N, the number of writer handles.
	Writers int
	// BufferSize is b, the number of updates each writer buffers
	// locally between propagations; the query relaxation is 2·N·b.
	BufferSize int
	// EagerLimit, when > 0, makes the first EagerLimit updates
	// propagate eagerly (sequentially) to keep small-stream error
	// bounded (§5.3); < 0 disables, 0 uses 2·K.
	EagerLimit int
	// Seed seeds the compaction-coin oracle.
	Seed uint64
	// Pool, when non-nil, attaches the sketch to a shared propagation
	// executor instead of a dedicated propagator goroutine.
	Pool *core.PropagatorPool
	// AffinityKey pins the sketch to one pool worker (equal nonzero
	// keys share a worker); 0 lets the pool assign round-robin.
	AffinityKey uint64
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.K == 0 {
		c.K = 128
	}
	com := core.CommonConfig{Writers: c.Writers, EagerLimit: c.EagerLimit, Seed: c.Seed}.
		WithDefaults(2*c.K, 0x5eed)
	c.Writers, c.EagerLimit, c.Seed = com.Writers, com.EagerLimit, com.Seed
	if c.BufferSize == 0 {
		c.BufferSize = 2 * c.K
	}
	return c
}

// Concurrent is the concurrent Quantiles sketch: N writers ingest into
// local sketches that a background propagator merges into the global
// one; queries read an immutable snapshot wait-free.
type Concurrent struct {
	sk     *core.Sketch[float64, *Snapshot]
	global *GlobalSketch
	cfg    ConcurrentConfig
}

// NewConcurrent builds a concurrent quantiles sketch; Close when done.
func NewConcurrent(cfg ConcurrentConfig) *Concurrent { return NewConcurrentFrom(cfg, nil) }

// NewConcurrentFrom builds a concurrent quantiles sketch whose global
// state is preloaded from a sequential sketch (nil means empty) — the
// hot-key promotion rebuild path.
func NewConcurrentFrom(cfg ConcurrentConfig, from *Sketch) *Concurrent {
	cfg = cfg.withDefaults()
	orc := oracle.New(cfg.Seed)
	global := NewGlobal(cfg.K, orc.Fork())
	if from != nil {
		global.Absorb(from)
	}
	coreCfg := core.Config{
		Writers:         cfg.Writers,
		BufferSize:      cfg.BufferSize,
		EagerLimit:      cfg.EagerLimit,
		DoubleBuffering: true,
		Pool:            cfg.Pool,
		AffinityKey:     cfg.AffinityKey,
	}
	newLocal := func() core.Local[float64] {
		return NewWithOracle(cfg.K, orc.Fork())
	}
	return &Concurrent{
		sk:     core.New[float64, *Snapshot](global, newLocal, coreCfg),
		global: global,
		cfg:    cfg,
	}
}

// Writer returns the i-th writer handle (single-goroutine use).
func (c *Concurrent) Writer(i int) *ConcurrentWriter {
	return &ConcurrentWriter{w: c.sk.Writer(i)}
}

// Snapshot returns the current queryable snapshot (wait-free). The
// snapshot may miss up to Relaxation() recent updates.
func (c *Concurrent) Snapshot() *Snapshot { return c.sk.Query() }

// Quantile returns the current estimate of the φ-quantile.
func (c *Concurrent) Quantile(phi float64) float64 { return c.Snapshot().Quantile(phi) }

// Rank returns the current normalized-rank estimate of v.
func (c *Concurrent) Rank(v float64) float64 { return c.Snapshot().Rank(v) }

// Compact returns a sequential copy of the sketch that owns its
// buffers: serializable with MarshalBinary and mergeable into other
// quantiles sketches. Not wait-free (it briefly synchronises with the
// propagator); may miss up to Relaxation() recent updates unless
// writers Flush first.
func (c *Concurrent) Compact() *Sketch { return c.global.Compact() }

// Relaxation returns the bound r = 2·N·b on updates a query may miss.
func (c *Concurrent) Relaxation() int { return c.sk.Relaxation() }

// Propagations returns the number of local merges completed.
func (c *Concurrent) Propagations() int64 { return c.sk.Propagations() }

// Eager reports whether the sketch is still in its eager phase.
func (c *Concurrent) Eager() bool { return c.sk.Eager() }

// Close stops the propagator. Flush writers first to drain buffers.
func (c *Concurrent) Close() { c.sk.Close() }

// ConcurrentWriter is a single-goroutine update handle.
type ConcurrentWriter struct {
	w *core.Writer[float64, *Snapshot]
}

// Update processes one stream value.
func (w *ConcurrentWriter) Update(v float64) { w.w.Update(v) }

// UpdateBatch processes a slice of stream values, amortising the
// framework's per-item overhead over the whole slice. Quantiles filter
// nothing (ShouldAdd is constant true), so the batch enters the
// framework pre-filtered by construction.
func (w *ConcurrentWriter) UpdateBatch(vs []float64) { w.w.UpdateBatchPrefiltered(vs) }

// Flush propagates buffered updates and waits for completion.
func (w *ConcurrentWriter) Flush() { w.w.Flush() }
