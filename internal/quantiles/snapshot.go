package quantiles

import (
	"math"
	"sort"
)

// Snapshot is an immutable, queryable copy of a quantiles sketch: the
// composable-sketch snapshot() of §5.1. Immediately after it is taken,
// Quantile/Rank on the snapshot equal the same queries on the source
// sketch. Being immutable, it is safe to share across goroutines; the
// concurrent framework publishes one through an atomic pointer.
type Snapshot struct {
	// values are all retained samples sorted ascending; cum[i] is the
	// total weight of values[0..i] (inclusive prefix sums).
	values []float64
	cum    []uint64
	n      uint64
	min    float64
	max    float64
}

type weighted struct {
	v float64
	w uint64
}

// Snapshot returns an immutable queryable copy of the sketch.
func (s *Sketch) Snapshot() *Snapshot {
	items := make([]weighted, 0, s.RetainedItems())
	for _, v := range s.base {
		items = append(items, weighted{v, 1})
	}
	for lvl, buf := range s.levels {
		w := uint64(1) << uint(lvl+1)
		for _, v := range buf {
			items = append(items, weighted{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	snap := &Snapshot{
		values: make([]float64, len(items)),
		cum:    make([]uint64, len(items)),
		n:      s.n,
		min:    s.min,
		max:    s.max,
	}
	var total uint64
	for i, it := range items {
		total += it.w
		snap.values[i] = it.v
		snap.cum[i] = total
	}
	return snap
}

// N returns the number of stream items the snapshot covers.
func (s *Snapshot) N() uint64 { return s.n }

// IsEmpty reports whether the snapshot covers no items.
func (s *Snapshot) IsEmpty() bool { return s.n == 0 }

// Min returns the exact minimum item (NaN when empty).
func (s *Snapshot) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum item (NaN when empty).
func (s *Snapshot) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// weightAt returns the weight of sample i.
func (s *Snapshot) weightAt(i int) uint64 {
	if i == 0 {
		return s.cum[0]
	}
	return s.cum[i] - s.cum[i-1]
}

// ForEach calls fn for every retained sample in ascending value order
// together with its weight (the number of stream items the sample
// represents). Σ weight = N().
func (s *Snapshot) ForEach(fn func(v float64, weight uint64)) {
	for i, v := range s.values {
		fn(v, s.weightAt(i))
	}
}

// Quantile returns an element whose normalized rank approximates φ.
// It returns NaN on an empty snapshot and panics if φ is outside [0,1].
func (s *Snapshot) Quantile(phi float64) float64 {
	if phi < 0 || phi > 1 || math.IsNaN(phi) {
		panic("quantiles: quantile fraction outside [0,1]")
	}
	if s.n == 0 {
		return math.NaN()
	}
	if phi == 0 {
		return s.min
	}
	if phi == 1 {
		return s.max
	}
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	// First sample whose cumulative weight reaches the target rank.
	idx := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] >= target })
	if idx == len(s.values) {
		return s.max
	}
	return s.values[idx]
}

// Rank returns the approximate normalized rank of v: the estimated
// fraction of items strictly below v. Empty snapshots return NaN.
func (s *Snapshot) Rank(v float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	idx := sort.Search(len(s.values), func(i int) bool { return s.values[i] >= v })
	if idx == 0 {
		return 0
	}
	return float64(s.cum[idx-1]) / float64(s.n)
}

// CDF returns the normalized ranks of the given strictly-ascending
// split points, with a trailing 1. Panics on unsorted splits.
func (s *Snapshot) CDF(splits []float64) []float64 {
	for i := 1; i < len(splits); i++ {
		if splits[i] <= splits[i-1] {
			panic("quantiles: CDF split points must be strictly ascending")
		}
	}
	out := make([]float64, 0, len(splits)+1)
	for _, sp := range splits {
		out = append(out, s.Rank(sp))
	}
	return append(out, 1)
}

// PMF returns the probability mass between consecutive split points:
// result[i] is the estimated fraction of items in [splits[i-1],
// splits[i]) with the usual open ends.
func (s *Snapshot) PMF(splits []float64) []float64 {
	cdf := s.CDF(splits)
	out := make([]float64, len(cdf))
	prev := 0.0
	for i, c := range cdf {
		out[i] = c - prev
		prev = c
	}
	return out
}
