package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hll"
	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server/wire"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// reqError is a request-scoped failure: it becomes one FrameErr
// response and the connection keeps serving (unlike framing errors,
// which are fatal to the connection).
type reqError struct {
	code uint64
	msg  string
}

func (e *reqError) Error() string { return e.msg }

func errBadPayload(format string, args ...any) *reqError {
	return &reqError{code: wire.ErrCodeBadPayload, msg: fmt.Sprintf(format, args...)}
}

// backend is one registered table as the connection loop sees it: the
// family- and key-type-erased surface the frame handlers dispatch to.
type backend interface {
	kind() byte
	keyType() byte
	liveKeys() int
	// poolWaits counts ingest frames that found every writer handle
	// checked out and had to block — the signal that more connections
	// are ingesting concurrently than the table has writers.
	poolWaits() int64
	// poolIdle reports writer handles currently checked in (idle).
	poolIdle() int
	// ingest parses a keyed batch payload (after the table name) and
	// streams it into a writer handle checked out of the pool. It
	// returns the number of items ingested.
	ingest(r *wire.Reader, stringItems bool) (int, error)
	// queryCompact parses a key and appends the response value payload
	// (found byte, kind byte, compact blob) to dst.
	queryCompact(r *wire.Reader, dst []byte) ([]byte, error)
	// rollupAppend appends (kind byte, rollup compact blob) to dst. The
	// rollup merges every live key with every received remote snapshot.
	rollupAppend(dst []byte) ([]byte, error)
	// mergeSnapshot folds one serialized FCTB snapshot into the
	// backend's remote state: a named source replaces its previous
	// snapshot, an empty source merges into the shared aggregate (see
	// wire.FrameSnapshotPush).
	mergeSnapshot(source string, blob []byte) error
	// mergeWindowSnapshot replaces a named source's snapshot when epoch
	// is >= the last epoch applied from that source; a stale epoch is
	// ignored (applied = false) so retried and reordered window ships
	// are idempotent (see wire.FrameWindowSnapshot).
	mergeWindowSnapshot(source string, epoch uint64, blob []byte) (applied bool, err error)
	// snapshotAppend drains the table and appends the full merged
	// snapshot (live + remote) as an FCTB blob to dst.
	snapshotAppend(dst []byte) ([]byte, error)
	// checkpointBody appends the backend's durable state to dst: the
	// live table merged with the anonymous remote aggregate as one FCTB
	// blob, then every named source's snapshot with its window epoch.
	// It also returns the journal LSN watermark the captured state
	// covers (0 without a journal). restoreBody parses it back (into a
	// freshly registered backend), seeding the watermark so replay can
	// skip records the checkpoint already contains.
	checkpointBody(dst []byte) ([]byte, uint64, error)
	restoreBody(body []byte, lsn uint64) error
	// bind attaches the backend to its registered name and the server's
	// journal slot; called once by register.
	bind(name string, jnl *atomic.Pointer[Journal])
	// spillEvict folds one evicted key's serialized compact into the
	// remote aggregate (journaling it first when a journal is attached)
	// so TTL evictions stay in rollups and survive a crash. The key is
	// raw bytes: string keys verbatim, uint64 keys 8 bytes LE.
	spillEvict(keyType byte, key, compact []byte) error
	// replayPush / replayWindow / replayEvict re-apply one journal
	// record during boot recovery, skipping records at or below the
	// restored checkpoint's LSN watermark (applied = false).
	replayPush(lsn uint64, source string, blob []byte) (applied bool, err error)
	replayWindow(lsn uint64, source string, epoch uint64, blob []byte) (applied, stale bool, err error)
	replayEvict(lsn uint64, keyType byte, key, compact []byte) (applied bool, err error)
}

// ingestScratch is the per-frame group-index run for the one batch
// shape with no fixed stride on either side (string keys + string
// items), where the key and item runs must be walked in two passes —
// pooled per backend so concurrent connections never share slices.
type ingestScratch struct {
	gis []int32
}

// tableBackend adapts one generic SketchTable to the backend surface.
// The server owns the table's writer handles and lends them out
// through a checkout pool: an ingest frame takes any idle handle,
// streams its batch in, and returns it — so conns > Writers queue only
// when every writer is genuinely busy, instead of serialising on a
// connection-pinned slot while other writers sit idle (the table's
// writer contract is single-goroutine per handle, which the channel
// handoff preserves). Registered tables must not be written by anyone
// but the server (queries and snapshots from the embedding process
// stay safe).
type tableBackend[K table.Key, V, S, C any] struct {
	st  *table.SketchTable[K, V, S, C]
	kt  byte
	eng core.Engine[V, S, C]
	// hashItem maps a string item into the family's hash space (the
	// KEYED_STRING_BATCH path); nil when the family has no string items
	// (quantiles).
	hashItem  func(string) V
	decodeVal func(uint64) V
	unmarshal func([]byte) (*table.TableSnapshot[K, C], error)
	// validateCompact, when non-nil, vets each compact of a pushed
	// snapshot for constraints the snapshot header cannot express
	// (hash seeds); it runs before any state changes, so a bad push is
	// rejected whole instead of being stored where it would poison
	// every later query, rollup and pull.
	validateCompact func(C) error

	// pool holds the idle writer handles; checkout/checkin move them.
	pool chan *table.Writer[K, V, S, C]
	// waits counts ingest frames that found the pool empty.
	waits atomic.Int64
	// qmu serialises whole-pool drains (snapshot, checkpoint): two
	// concurrent quiescers each holding part of the pool would
	// deadlock waiting for each other's handles.
	qmu sync.Mutex

	// Remote state received via SNAPSHOT_PUSH; rollups, queries and
	// pulls fold it in. Anonymous pushes merge into remote; pushes
	// carrying a source id replace that source's slot in remotes, so a
	// node re-shipping its full cumulative snapshot every tick counts
	// once, not once per tick.
	rmu     sync.Mutex
	remote  *table.TableSnapshot[K, C]
	remotes map[string]*table.TableSnapshot[K, C]
	// remoteOrder tracks named-source insertion order: when remotes
	// reaches maxSnapshotSources, the oldest source is folded into the
	// shared aggregate to free its slot.
	remoteOrder []string
	// remoteEpochs records the highest window epoch applied per source
	// (WINDOW_SNAPSHOT pushes only): a push with a lower epoch is a
	// retry or a reordered stale ship and is ignored. Sources that only
	// ever push cumulative snapshots have no entry.
	remoteEpochs map[string]uint64
	// appliedLSN is the journal LSN of the newest record folded into
	// the remote state (0 = none). Guarded by rmu; checkpoints persist
	// it so boot replay can skip records the checkpoint already covers
	// — merge-semantics records (evictions, anonymous pushes) would
	// double-count without the gate.
	appliedLSN uint64

	// name is the table's registered name (journal records carry it);
	// jnl aliases the owning server's journal slot, nil until one is
	// attached.
	name string
	jnl  *atomic.Pointer[Journal]

	scratch sync.Pool
}

func (b *tableBackend[K, V, S, C]) bind(name string, jnl *atomic.Pointer[Journal]) {
	b.name = name
	b.jnl = jnl
}

// journal returns the attached journal, nil when journaling is off.
func (b *tableBackend[K, V, S, C]) journal() *Journal {
	if b.jnl == nil {
		return nil
	}
	return b.jnl.Load()
}

func newTableBackend[K table.Key, V, S, C any](
	st *table.SketchTable[K, V, S, C],
	hashItem func(string) V,
	decodeVal func(uint64) V,
	unmarshal func([]byte) (*table.TableSnapshot[K, C], error),
	validateCompact func(C) error,
) *tableBackend[K, V, S, C] {
	b := &tableBackend[K, V, S, C]{
		st:              st,
		kt:              keyTypeOf[K](),
		eng:             st.Engine(),
		hashItem:        hashItem,
		decodeVal:       decodeVal,
		unmarshal:       unmarshal,
		validateCompact: validateCompact,
		pool:            make(chan *table.Writer[K, V, S, C], st.NumWriters()),
		remote:          table.NewTableSnapshot[K](st.Engine()),
		remotes:         make(map[string]*table.TableSnapshot[K, C]),
		remoteEpochs:    make(map[string]uint64),
	}
	for i := 0; i < st.NumWriters(); i++ {
		b.pool <- st.Writer(i)
	}
	b.scratch.New = func() any { return &ingestScratch{} }
	return b
}

// checkout takes an idle writer handle, counting the frames that had
// to wait for one; checkin returns it. The channel handoff is the
// single-goroutine-per-handle happens-before.
func (b *tableBackend[K, V, S, C]) checkout() *table.Writer[K, V, S, C] {
	select {
	case w := <-b.pool:
		return w
	default:
		// Pool empty: every writer is mid-batch. This is the capacity
		// signal fcds_server_writer_pool_waits_total exposes — sustained
		// growth means raise the table's Writers.
		b.waits.Add(1)
		return <-b.pool
	}
}

func (b *tableBackend[K, V, S, C]) checkin(w *table.Writer[K, V, S, C]) { b.pool <- w }

// quiesce checks out every writer handle so the table can be drained
// with no server-side ingest in flight; the returned release puts them
// back. qmu keeps concurrent quiescers from splitting the pool between
// them and deadlocking.
func (b *tableBackend[K, V, S, C]) quiesce() (release func()) {
	b.qmu.Lock()
	ws := make([]*table.Writer[K, V, S, C], cap(b.pool))
	for i := range ws {
		ws[i] = <-b.pool
	}
	return func() {
		for _, w := range ws {
			b.pool <- w
		}
		b.qmu.Unlock()
	}
}

func keyTypeOf[K table.Key]() byte {
	var zero K
	if _, ok := any(zero).(string); ok {
		return wire.KeyTypeString
	}
	return wire.KeyTypeUint64
}

// readKey decodes one wire key of type K. String keys are copied out of
// the read buffer (the table retains them in its shard maps). The
// `any(v).(K)` conversion boxes the value — fine for single-key
// requests (queries); the batch ingest loops use u64Key/strKey, which
// convert through a pointer and stay allocation-free.
func readKey[K table.Key](r *wire.Reader) K {
	var zero K
	if _, ok := any(zero).(string); ok {
		return any(r.String()).(K)
	}
	return any(r.Uint64()).(K)
}

// u64Key converts a decoded uint64 wire key to K. Callers have already
// checked the table's key type, so the assertion cannot fail; routing
// the conversion through a pointer keeps it off the heap where
// `any(v).(K)` would box every key.
func u64Key[K table.Key](v uint64) K {
	var k K
	*(any(&k).(*uint64)) = v
	return k
}

// strKey is u64Key for string wire keys. s may be a transient view of
// the read buffer ONLY where the key is not retained (BatchLookup
// probes); keys that reach BatchGroup must be owned copies.
func strKey[K table.Key](s string) K {
	var k K
	*(any(&k).(*string)) = s
	return k
}

func (b *tableBackend[K, V, S, C]) kind() byte       { return b.eng.Kind() }
func (b *tableBackend[K, V, S, C]) keyType() byte    { return b.kt }
func (b *tableBackend[K, V, S, C]) liveKeys() int    { return b.st.Keys() }
func (b *tableBackend[K, V, S, C]) poolWaits() int64 { return b.waits.Load() }
func (b *tableBackend[K, V, S, C]) poolIdle() int    { return len(b.pool) }

// viewString aliases a transient byte slice as a string for hashing —
// never retained (the table's string *items* are hashed, not stored).
func viewString(bs []byte) string {
	if len(bs) == 0 {
		return ""
	}
	return unsafe.String(&bs[0], len(bs))
}

func (b *tableBackend[K, V, S, C]) ingest(r *wire.Reader, stringItems bool) (int, error) {
	if kt := r.Byte(); r.Err == nil && kt != b.kt {
		return 0, errBadPayload("key type %d, table wants %d", kt, b.kt)
	}
	count64 := r.Uvarint()
	if r.Err != nil {
		return 0, errBadPayload("truncated batch header")
	}
	// Bound count by the smallest possible wire encoding of one entry
	// (uint64 keys/values are 8 fixed bytes, strings at least a 1-byte
	// length prefix), so a corrupt count cannot size scratch far beyond
	// the bytes actually present. The bound is checked before the
	// uint64 narrows to int: a count >= 2^63 would convert negative and
	// sail past an int comparison straight into a slice-bounds panic.
	minEntry := 2 // string key + string item lower bound
	if b.kt == wire.KeyTypeUint64 {
		minEntry += 7
	}
	if !stringItems {
		minEntry += 7
	}
	if count64 > uint64(r.Remaining()/minEntry) {
		return 0, errBadPayload("batch count %d exceeds payload", count64)
	}
	count := int(count64)
	if stringItems && b.hashItem == nil {
		return 0, &reqError{code: wire.ErrCodeUnsupported, msg: "table family has no string-item ingestion"}
	}

	w := b.checkout()
	// Deferred checkin: a panic inside the table's update path unwinds
	// through serveConn's recover, and a lost handle would shrink the
	// pool for every future frame (and wedge quiesce).
	defer b.checkin(w)
	if err := b.decodeInto(w, r, count, stringItems); err != nil {
		// A failed decode left a partial batch staged in the handle's
		// grouping scratch; discard it or it would leak into whatever
		// frame borrows this handle next.
		w.BatchReset()
		return 0, err
	}
	if stringItems {
		// Items were hashed into the family's space during the decode,
		// exactly like the table's own keyed string-batch path.
		w.BatchCommitHashed()
	} else {
		w.BatchCommit()
	}
	return count, nil
}

// decodeInto streams one keyed-batch payload straight into w's grouping
// scratch — no intermediate key/value slices, no second grouping pass
// (the old path decoded into pooled scratch that UpdateKeyedBatch then
// regrouped, touching every key twice). The wire layout is one run of
// keys then one run of values; whenever at least one run has a fixed
// stride, the two runs are walked in lockstep with two cursors over the
// same payload.
func (b *tableBackend[K, V, S, C]) decodeInto(w *table.Writer[K, V, S, C], r *wire.Reader, count int, stringItems bool) error {
	switch {
	case b.kt == wire.KeyTypeUint64:
		// Fixed 8-byte keys: the value run starts at a computable
		// offset, so keys and values stream pairwise in one pass.
		kr := wire.Reader{Buf: r.Bytes(count * 8)}
		if r.Err != nil {
			return errBadPayload("truncated batch body")
		}
		vr := wire.Reader{Buf: r.Rest()}
		if stringItems {
			for i := 0; i < count; i++ {
				w.BatchAdd(u64Key[K](kr.Uint64()), b.hashItem(viewString(vr.StringView())))
			}
		} else {
			if vr.Remaining() != count*8 {
				return errBadPayload("batch body length mismatch")
			}
			for i := 0; i < count; i++ {
				w.BatchAdd(u64Key[K](kr.Uint64()), b.decodeVal(vr.Uint64()))
			}
		}
		if vr.Err != nil {
			return errBadPayload("truncated batch body")
		}
		if vr.Remaining() != 0 {
			return errBadPayload("%d trailing bytes after batch", vr.Remaining())
		}

	case !stringItems:
		// String keys, fixed 8-byte values: the value run is exactly the
		// payload tail, so the split point is computable from the end.
		rem := r.Remaining()
		vlen := count * 8
		if rem < vlen {
			return errBadPayload("truncated batch body")
		}
		all := r.Rest()
		kr := wire.Reader{Buf: all[:rem-vlen]}
		vr := wire.Reader{Buf: all[rem-vlen:]}
		for i := 0; i < count; i++ {
			// Probe with a view of the key bytes; copy off the read
			// buffer only on first sight (the grouping scratch retains
			// registered keys).
			view := kr.StringView()
			gi, ok := w.BatchLookup(strKey[K](viewString(view)))
			if !ok {
				gi = w.BatchGroup(strKey[K](string(view)))
			}
			w.BatchAppend(gi, b.decodeVal(vr.Uint64()))
		}
		if kr.Err != nil {
			return errBadPayload("truncated batch body")
		}
		if kr.Remaining() != 0 {
			return errBadPayload("%d trailing bytes after batch", kr.Remaining())
		}

	default:
		// String keys and string items: neither run has a fixed stride,
		// so pass 1 walks the key run recording each position's group
		// index and pass 2 walks the item run appending hashed items to
		// those groups. Group indices fit int32: count is bounded by
		// maxFrame/minEntry, far under 2^31.
		sc := b.scratch.Get().(*ingestScratch)
		defer b.scratch.Put(sc)
		if cap(sc.gis) < count {
			sc.gis = make([]int32, count)
		}
		gis := sc.gis[:count]
		for i := range gis {
			view := r.StringView()
			gi, ok := w.BatchLookup(strKey[K](viewString(view)))
			if !ok {
				gi = w.BatchGroup(strKey[K](string(view)))
			}
			gis[i] = int32(gi)
		}
		if r.Err != nil {
			return errBadPayload("truncated batch body")
		}
		for i := range gis {
			w.BatchAppend(int(gis[i]), b.hashItem(viewString(r.StringView())))
		}
		if r.Err != nil {
			return errBadPayload("truncated batch body")
		}
		if r.Remaining() != 0 {
			return errBadPayload("%d trailing bytes after batch", r.Remaining())
		}
	}
	return nil
}

func (b *tableBackend[K, V, S, C]) queryCompact(r *wire.Reader, dst []byte) ([]byte, error) {
	if kt := r.Byte(); r.Err == nil && kt != b.kt {
		return dst, errBadPayload("key type %d, table wants %d", kt, b.kt)
	}
	k := readKey[K](r)
	if r.Err != nil || r.Remaining() != 0 {
		return dst, errBadPayload("malformed query key")
	}
	c, ok := b.st.CompactKey(k)
	err := func() error {
		b.rmu.Lock()
		defer b.rmu.Unlock()
		return b.eachRemote(func(snap *table.TableSnapshot[K, C]) error {
			rc, rok := snap.Get(k)
			if !rok {
				return nil
			}
			if !ok {
				c, ok = rc, true
				return nil
			}
			merged, err := b.eng.MergeCompact(c, rc)
			if err != nil {
				return err
			}
			c = merged
			return nil
		})
	}()
	if err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	if !ok {
		return append(dst, 0), nil // not found
	}
	blob, err := b.eng.MarshalCompact(c)
	if err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	dst = append(dst, 1, b.eng.Kind())
	return append(dst, blob...), nil
}

func (b *tableBackend[K, V, S, C]) rollupAppend(dst []byte) ([]byte, error) {
	agg := b.eng.NewAggregator()
	if err := agg.Add(b.st.Rollup()); err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	var mergeErr error
	func() {
		b.rmu.Lock()
		defer b.rmu.Unlock()
		_ = b.eachRemote(func(snap *table.TableSnapshot[K, C]) error {
			snap.ForEach(func(_ K, c C) {
				if mergeErr == nil {
					mergeErr = agg.Add(c)
				}
			})
			return mergeErr
		})
	}()
	if mergeErr != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: mergeErr.Error()}
	}
	blob, err := b.eng.MarshalCompact(agg.Result())
	if err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	dst = append(dst, b.eng.Kind())
	return append(dst, blob...), nil
}

// eachRemote visits the anonymous aggregate and every per-source
// snapshot, stopping at the first error. Callers hold b.rmu.
func (b *tableBackend[K, V, S, C]) eachRemote(fn func(*table.TableSnapshot[K, C]) error) error {
	if err := fn(b.remote); err != nil {
		return err
	}
	for _, snap := range b.remotes {
		if err := fn(snap); err != nil {
			return err
		}
	}
	return nil
}

// maxSnapshotSources bounds the per-table named-source map: past it,
// admitting a new source folds the oldest source's snapshot into the
// shared aggregate and frees its slot. Without a bound, a client
// looping over fresh source ids (or an edge crash-looping under the
// default host/pid id) would grow server memory one retained snapshot
// per push; with it, memory and per-request fold cost stay bounded,
// data is never dropped, and the push pipeline never bricks. The one
// caveat: a demoted source that later resumes pushing under its old
// id re-counts its folded data in non-idempotent families — reachable
// only with more than maxSnapshotSources simultaneously live pushers.
const maxSnapshotSources = 1024

// admitSnapshot parses and vets one pushed snapshot before any state
// changes: the header check (kind/param via CompatibleWith) plus
// per-compact constraints the header cannot express — a Θ/HLL snapshot
// hashed under a different seed would otherwise be ACKed and then fail
// every later query, rollup and pull it participates in.
func (b *tableBackend[K, V, S, C]) admitSnapshot(blob []byte) (*table.TableSnapshot[K, C], error) {
	snap, err := b.unmarshal(blob)
	if err != nil {
		return nil, errBadPayload("snapshot: %v", err)
	}
	if err := b.remote.CompatibleWith(snap); err != nil {
		return nil, &reqError{code: wire.ErrCodeBadPayload, msg: err.Error()}
	}
	if b.validateCompact != nil {
		var verr error
		snap.ForEach(func(_ K, c C) {
			if verr == nil {
				verr = b.validateCompact(c)
			}
		})
		if verr != nil {
			return nil, errBadPayload("snapshot: %v", verr)
		}
	}
	return snap, nil
}

// storeSourceLocked replaces a named source's snapshot, admitting the
// source into the bounded map first (folding the oldest source into
// the shared aggregate past maxSnapshotSources). Callers hold b.rmu.
func (b *tableBackend[K, V, S, C]) storeSourceLocked(source string, snap *table.TableSnapshot[K, C]) error {
	if _, exists := b.remotes[source]; !exists {
		for len(b.remotes) >= maxSnapshotSources && len(b.remoteOrder) > 0 {
			oldest := b.remoteOrder[0]
			b.remoteOrder = b.remoteOrder[1:]
			if old, ok := b.remotes[oldest]; ok {
				if err := b.remote.Merge(old); err != nil {
					// Cannot happen for snapshots that passed admission
					// validation, but never drop data silently.
					return &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
				}
				delete(b.remotes, oldest)
				delete(b.remoteEpochs, oldest)
			}
		}
		b.remoteOrder = append(b.remoteOrder, source)
	}
	b.remotes[source] = snap
	return nil
}

func (b *tableBackend[K, V, S, C]) mergeSnapshot(source string, blob []byte) error {
	snap, err := b.admitSnapshot(blob)
	if err != nil {
		return err
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	// Write-ahead order: the record hits the journal (LSN assigned
	// under rmu, so LSN order is apply order) before the in-memory
	// state changes, and a journal failure aborts the merge — a push
	// must never be ACKed durable without being durable.
	lsn := uint64(0)
	if j := b.journal(); j != nil {
		if lsn, err = j.AppendPush(b.name, source, blob); err != nil {
			return &reqError{code: wire.ErrCodeInternal, msg: fmt.Sprintf("journal: %v", err)}
		}
	}
	if err := b.applyPushLocked(source, snap); err != nil {
		return err
	}
	if lsn > b.appliedLSN {
		b.appliedLSN = lsn
	}
	return nil
}

// applyPushLocked folds one admitted push into the remote state: a
// named source replaces its slot, an anonymous push merges into the
// shared aggregate. Callers hold b.rmu.
func (b *tableBackend[K, V, S, C]) applyPushLocked(source string, snap *table.TableSnapshot[K, C]) error {
	if source == "" {
		if err := b.remote.Merge(snap); err != nil {
			return &reqError{code: wire.ErrCodeBadPayload, msg: err.Error()}
		}
		return nil
	}
	// Replace, don't merge: a named source ships its full cumulative
	// snapshot each tick, and merging would re-count every previously
	// shipped sample in non-idempotent families (quantiles). A source
	// that dies keeps its last snapshot deliberately — it holds data
	// its successor (a restarted edge starts from an empty table,
	// under a fresh default source id) no longer has, so evicting it
	// would silently lose that data from rollups.
	return b.storeSourceLocked(source, snap)
}

func (b *tableBackend[K, V, S, C]) mergeWindowSnapshot(source string, epoch uint64, blob []byte) (bool, error) {
	snap, err := b.admitSnapshot(blob)
	if err != nil {
		return false, err
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	// >= rather than >: the shipper snapshots its whole sliding window,
	// which advances within one epoch as slots rotate, so an equal
	// epoch is a newer capture of the same window and must win; only a
	// strictly older epoch is a reordered or replayed stale ship.
	if last, ok := b.remoteEpochs[source]; ok && epoch < last {
		return false, nil
	}
	// Stale ships are rejected above without a journal record — they
	// change no state, so there is nothing to make durable.
	lsn := uint64(0)
	if j := b.journal(); j != nil {
		if lsn, err = j.AppendWindow(b.name, source, epoch, blob); err != nil {
			return false, &reqError{code: wire.ErrCodeInternal, msg: fmt.Sprintf("journal: %v", err)}
		}
	}
	if err := b.storeSourceLocked(source, snap); err != nil {
		return false, err
	}
	b.remoteEpochs[source] = epoch
	if lsn > b.appliedLSN {
		b.appliedLSN = lsn
	}
	return true, nil
}

// decodeKey converts a journal/evict raw key (string bytes or 8-byte
// LE uint64) into K, rejecting a key-type mismatch.
func (b *tableBackend[K, V, S, C]) decodeKey(keyType byte, key []byte) (K, error) {
	var zero K
	if keyType != b.kt {
		return zero, fmt.Errorf("key type %d, table wants %d", keyType, b.kt)
	}
	if b.kt == wire.KeyTypeUint64 {
		if len(key) != 8 {
			return zero, fmt.Errorf("uint64 key is %d bytes", len(key))
		}
		r := wire.Reader{Buf: key}
		return u64Key[K](r.Uint64()), nil
	}
	return strKey[K](string(key)), nil
}

// spillEvict folds one TTL-evicted key's compact into the remote
// aggregate so eviction stops meaning deletion-from-rollups: the data
// leaves the live table's shard maps but stays in every rollup, query
// and checkpoint. With a journal attached the spill is made durable
// first (write-ahead), so a crash between eviction and the next
// checkpoint cannot lose it.
func (b *tableBackend[K, V, S, C]) spillEvict(keyType byte, key, compact []byte) error {
	k, err := b.decodeKey(keyType, key)
	if err != nil {
		return fmt.Errorf("server: evict spill: %w", err)
	}
	c, err := b.eng.UnmarshalCompact(compact)
	if err != nil {
		return fmt.Errorf("server: evict spill: %w", err)
	}
	if b.validateCompact != nil {
		if err := b.validateCompact(c); err != nil {
			return fmt.Errorf("server: evict spill: %w", err)
		}
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	lsn := uint64(0)
	if j := b.journal(); j != nil {
		if lsn, err = j.AppendEvict(b.name, keyType, key, compact); err != nil {
			return fmt.Errorf("server: evict spill: journal: %w", err)
		}
	}
	if err := b.foldCompactLocked(k, c); err != nil {
		return fmt.Errorf("server: evict spill: %w", err)
	}
	if lsn > b.appliedLSN {
		b.appliedLSN = lsn
	}
	return nil
}

// foldCompactLocked merges one compact into the anonymous aggregate's
// slot for k. Callers hold b.rmu.
func (b *tableBackend[K, V, S, C]) foldCompactLocked(k K, c C) error {
	if prev, ok := b.remote.Get(k); ok {
		merged, err := b.eng.MergeCompact(prev, c)
		if err != nil {
			return err
		}
		c = merged
	}
	b.remote.Set(k, c)
	return nil
}

// replayPush re-applies one journaled push during boot recovery; a
// record at or below the restored checkpoint's watermark is already in
// the restored state and is skipped.
func (b *tableBackend[K, V, S, C]) replayPush(lsn uint64, source string, blob []byte) (bool, error) {
	snap, err := b.admitSnapshot(blob)
	if err != nil {
		return false, err
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if lsn <= b.appliedLSN {
		return false, nil
	}
	if err := b.applyPushLocked(source, snap); err != nil {
		return false, err
	}
	b.appliedLSN = lsn
	return true, nil
}

// replayWindow is replayPush for epoch-guarded window records; stale
// reports an epoch the restored state had already passed (possible
// only with hand-edited journals — live appends are epoch-checked
// before journaling).
func (b *tableBackend[K, V, S, C]) replayWindow(lsn uint64, source string, epoch uint64, blob []byte) (applied, stale bool, err error) {
	snap, err := b.admitSnapshot(blob)
	if err != nil {
		return false, false, err
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if lsn <= b.appliedLSN {
		return false, false, nil
	}
	if last, ok := b.remoteEpochs[source]; ok && epoch < last {
		b.appliedLSN = lsn
		return false, true, nil
	}
	if err := b.storeSourceLocked(source, snap); err != nil {
		return false, false, err
	}
	b.remoteEpochs[source] = epoch
	b.appliedLSN = lsn
	return true, false, nil
}

// replayEvict re-folds one journaled eviction spill during boot
// recovery, LSN-gated like every merge-semantics record.
func (b *tableBackend[K, V, S, C]) replayEvict(lsn uint64, keyType byte, key, compact []byte) (bool, error) {
	k, err := b.decodeKey(keyType, key)
	if err != nil {
		return false, err
	}
	c, err := b.eng.UnmarshalCompact(compact)
	if err != nil {
		return false, err
	}
	if b.validateCompact != nil {
		if err := b.validateCompact(c); err != nil {
			return false, err
		}
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if lsn <= b.appliedLSN {
		return false, nil
	}
	if err := b.foldCompactLocked(k, c); err != nil {
		return false, err
	}
	b.appliedLSN = lsn
	return true, nil
}

// snapshotAppend quiesces the writer pool, drains the table so all
// buffered updates are visible, and serializes the live table merged
// with the remote aggregate.
func (b *tableBackend[K, V, S, C]) snapshotAppend(dst []byte) ([]byte, error) {
	snap := func() *table.TableSnapshot[K, C] {
		release := b.quiesce()
		defer release()
		b.st.Drain()
		return b.st.Snapshot()
	}()
	err := func() error {
		b.rmu.Lock()
		defer b.rmu.Unlock()
		return b.eachRemote(snap.Merge)
	}()
	if err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	out, err := snap.AppendBinary(dst)
	if err != nil {
		return dst, &reqError{code: wire.ErrCodeInternal, msg: err.Error()}
	}
	return out, nil
}

// checkpointBody serializes the backend's durable state. Layout:
//
//	uvarint blob length + FCTB blob   — live table ⊎ anonymous aggregate
//	uvarint source count
//	per source (insertion order):
//	  uvarint id length + id bytes
//	  1 byte epoch-present flag, then uvarint window epoch if 1
//	  uvarint blob length + FCTB blob — the source's retained snapshot
//
// The live table and the anonymous aggregate are folded into ONE blob
// on purpose: restore merges that blob into the anonymous aggregate
// (the restored process's live table starts empty), and keeping them
// separate would double-count whichever keys appear in both. Named
// sources stay separate so their replace semantics survive the restart
// — a pusher that reconnects after the restore replaces its restored
// snapshot exactly as it would have replaced the live one.
func (b *tableBackend[K, V, S, C]) checkpointBody(dst []byte) ([]byte, uint64, error) {
	live := func() *table.TableSnapshot[K, C] {
		release := b.quiesce()
		defer release()
		b.st.Drain()
		return b.st.Snapshot()
	}()
	b.rmu.Lock()
	defer b.rmu.Unlock()
	// The watermark is read under the same rmu hold that serializes the
	// remote state, so it covers exactly the journaled records folded
	// into the bytes below — no more, no fewer.
	lsn := b.appliedLSN
	if err := live.Merge(b.remote); err != nil {
		return dst, 0, err
	}
	blob, err := live.MarshalBinary()
	if err != nil {
		return dst, 0, err
	}
	dst = wire.AppendUvarint(dst, uint64(len(blob)))
	dst = append(dst, blob...)
	dst = wire.AppendUvarint(dst, uint64(len(b.remoteOrder)))
	for _, source := range b.remoteOrder {
		snap, ok := b.remotes[source]
		if !ok {
			continue // folded source still listed in order — cannot happen, but never write a dangling id
		}
		dst = wire.AppendString(dst, source)
		if epoch, ok := b.remoteEpochs[source]; ok {
			dst = append(dst, 1)
			dst = wire.AppendUvarint(dst, epoch)
		} else {
			dst = append(dst, 0)
		}
		sblob, err := snap.MarshalBinary()
		if err != nil {
			return dst, 0, err
		}
		dst = wire.AppendUvarint(dst, uint64(len(sblob)))
		dst = append(dst, sblob...)
	}
	return dst, lsn, nil
}

// restoreBody parses a checkpointBody back into the backend's remote
// state, seeding the LSN watermark journal replay gates on. Every blob
// passes the same admission validation a network push would — a
// corrupt or foreign checkpoint is rejected whole before any state
// changes, leaving the backend exactly as it was (which is what lets
// RestoreCheckpoints fall back to an older generation).
func (b *tableBackend[K, V, S, C]) restoreBody(body []byte, lsn uint64) error {
	r := wire.Reader{Buf: body}
	agg, err := b.admitSnapshot(r.Bytes(int(r.Uvarint())))
	if err != nil {
		return fmt.Errorf("checkpoint aggregate: %w", err)
	}
	n := r.Uvarint()
	if r.Err != nil {
		return fmt.Errorf("checkpoint: truncated body")
	}
	type restored struct {
		source   string
		snap     *table.TableSnapshot[K, C]
		epoch    uint64
		hasEpoch bool
	}
	sources := make([]restored, 0, n)
	for i := uint64(0); i < n; i++ {
		var rs restored
		rs.source = r.String()
		rs.hasEpoch = r.Byte() == 1
		if rs.hasEpoch {
			rs.epoch = r.Uvarint()
		}
		rs.snap, err = b.admitSnapshot(r.Bytes(int(r.Uvarint())))
		if err != nil {
			return fmt.Errorf("checkpoint source %q: %w", rs.source, err)
		}
		if rs.source == "" {
			return fmt.Errorf("checkpoint: empty source id")
		}
		sources = append(sources, rs)
	}
	if r.Err != nil || r.Remaining() != 0 {
		return fmt.Errorf("checkpoint: malformed body")
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if err := b.remote.Merge(agg); err != nil {
		return err
	}
	for _, rs := range sources {
		if err := b.storeSourceLocked(rs.source, rs.snap); err != nil {
			return err
		}
		if rs.hasEpoch {
			b.remoteEpochs[rs.source] = rs.epoch
		}
	}
	if lsn > b.appliedLSN {
		b.appliedLSN = lsn
	}
	return nil
}

func identityVal(v uint64) uint64 { return v }

func math64frombits(v uint64) float64 { return math.Float64frombits(v) }

// stringHasher is the engine surface the string-item ingest path needs;
// the Θ and HLL engines implement it, quantiles does not.
type stringHasher interface{ HashString(string) uint64 }

// seeded is the engine surface the snapshot-push seed check needs.
type seeded interface{ Seed() uint64 }

// seedValidator vets one pushed compact's hash seed against the
// table's — the one incompatibility the snapshot header cannot carry.
func seedValidator[C seeded](want uint64) func(C) error {
	return func(c C) error {
		if got := c.Seed(); got != want {
			return fmt.Errorf("compact hash seed %#x, table uses %#x", got, want)
		}
		return nil
	}
}

// RegisterTheta registers a keyed Θ table under name. The server
// becomes the table's sole writer (it owns every writer handle);
// queries, rollups and snapshots from the embedding process remain
// safe concurrently.
func RegisterTheta[K table.Key](s *Server, name string, t *table.ThetaTable[K]) error {
	hasher := any(t.Engine()).(stringHasher)
	seed := any(t.Engine()).(seeded).Seed()
	return s.register(name, newTableBackend[K, uint64, float64, *theta.Compact](
		&t.SketchTable, hasher.HashString, identityVal, table.UnmarshalThetaSnapshot[K],
		seedValidator[*theta.Compact](seed)))
}

// RegisterHLL registers a keyed HLL table under name; see RegisterTheta
// for the writer-ownership contract.
func RegisterHLL[K table.Key](s *Server, name string, t *table.HLLTable[K]) error {
	hasher := any(t.Engine()).(stringHasher)
	seed := any(t.Engine()).(seeded).Seed()
	return s.register(name, newTableBackend[K, uint64, float64, *hll.Sketch](
		&t.SketchTable, hasher.HashString, identityVal, table.UnmarshalHLLSnapshot[K],
		seedValidator[*hll.Sketch](seed)))
}

// RegisterQuantiles registers a keyed quantiles table under name (no
// string-item ingestion: quantiles samples are float64 wire values;
// no seed check: quantiles values are not hashed); see RegisterTheta
// for the writer-ownership contract.
func RegisterQuantiles[K table.Key](s *Server, name string, t *table.QuantilesTable[K]) error {
	return s.register(name, newTableBackend[K, float64, *quantiles.Snapshot, *quantiles.Sketch](
		&t.SketchTable, nil, math64frombits, table.UnmarshalQuantilesSnapshot[K], nil))
}
