// Package client implements the fcds ingest-protocol client: a
// connection to one fcds ingest server with batching writes and
// pipelined responses.
//
// Ingest calls (Ingest*, the keyed-batch frames) are asynchronous:
// they append a frame to a buffered writer and return without waiting
// — the server's in-order acknowledgements are consumed by a
// background reader goroutine, and the first server-side failure is
// latched and surfaced by the next Flush (or Close). Query-shaped
// calls (QueryCompact, Rollup, PullSnapshot, PushSnapshot, Health) are
// synchronous: they flush the write buffer and wait for their
// response, which the in-order response contract matches to them
// without request ids.
//
// A Client is safe for concurrent use; ingest frames from concurrent
// goroutines are serialized at the write buffer.
//
// Frames accumulate in one write buffer — payloads are built in place
// behind a reserved header that is patched once the length is known —
// and large snapshot blobs are queued as their own writev segments, so
// a flush hands the kernel the whole burst in a single vectored write
// instead of copying blobs through the buffer.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/fcds/fcds/internal/server/wire"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: connection closed")

// ServerError is a failure the server reported through an error frame.
type ServerError struct {
	// Code is one of the wire.ErrCode* values.
	Code uint64
	// Msg is the server's human-readable diagnostic.
	Msg string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// Health is the server's counter snapshot, as reported by the HEALTH
// frame.
type Health struct {
	// Version is the server's protocol version.
	Version byte
	// Tables and Keys describe the registered tables.
	Tables, Keys int
	// Conns is the server's open-connection count.
	Conns int
	// Frames, Items, Snapshots and Errors are the server's lifetime
	// request, ingested-update, merged-snapshot and error counts.
	Frames, Items, Snapshots, Errors uint64
	// CheckpointAge is the time since the server last wrote (or
	// recovered) a durability checkpoint. A monitoring client alerts
	// on this growing past the configured checkpoint interval — it
	// bounds how much aggregator state a crash right now would lose.
	// Check HasCheckpoint before trusting a zero age.
	CheckpointAge time.Duration
	// HasCheckpoint reports whether the server has ever checkpointed:
	// CheckpointAge alone cannot distinguish "just checkpointed" from
	// "never" once it rounds to zero. Servers that predate the flag
	// omit it; it is then inferred from CheckpointAge != 0 (those
	// servers clamp a real age to at least 1ms on the wire).
	HasCheckpoint bool
	// JournalReplayed is the number of journal records the server's
	// last boot replayed on top of restored checkpoints (0 after a
	// clean start); JournalReplayAge is the age of the newest replayed
	// record (0 when none — check JournalReplayed). HasJournal reports
	// whether a durability journal is attached at all. Servers that
	// predate the journal omit all three (zero values).
	JournalReplayed  uint64
	JournalReplayAge time.Duration
	HasJournal       bool
}

// response is one server frame delivered to a waiting operation.
type response struct {
	typ     byte
	payload []byte // copied out of the read buffer
	err     error  // transport failure (connection-fatal)
}

// Client is one connection to an fcds ingest server.
type Client struct {
	nc          net.Conn
	version     byte
	maxFrame    int
	dialTimeout time.Duration
	wantComp    bool // WithCompression requested
	compress    bool // server accepted the compression feature

	// wmu guards the write path: the frame-accumulation buffer, its
	// segment list, the compression scratch, and enqueueing onto the
	// pending queue (the enqueue must be ordered identically to the
	// writes).
	wmu   sync.Mutex
	wbuf  []byte      // accumulated frame bytes; headers patched in place
	segs  net.Buffers // closed segments: wbuf ranges interleaved with caller blobs
	wmark int         // start of the open wbuf segment
	wpend int         // bytes pending across segs plus the open segment
	iov   net.Buffers // flush scratch (Buffers.WriteTo consumes its slice)
	enc   []byte      // raw-payload scratch for compressed frames
	comp  wire.Compressor

	// pmu guards the pending-response FIFO and the latched errors.
	pmu      sync.Mutex
	drained  *sync.Cond // signalled when pending goes empty or fatal
	pending  []chan response
	npending int
	asyncErr error // first error frame matched to an async op
	fatal    error // transport failure; the client is dead
	closed   bool
}

// Option configures Dial/New.
type Option func(*Client)

// WithMaxFrame bounds response payload sizes (default
// wire.DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// WithDialTimeout bounds connection establishment: the TCP connect
// (Dial only) and the HELLO exchange each must complete within d, so a
// black-holed upstream (SYN swallowed by a firewall, or a peer that
// accepts and then never answers) fails fast instead of hanging the
// caller forever. Zero (the default) means no bound. The deadline is
// lifted once the HELLO response arrives; established-connection
// operations are unaffected.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCompression offers the server deflate compression for keyed-batch
// payloads (HELLO feature negotiation); when the server accepts, every
// Ingest* frame ships compressed. Off by default: compression trades
// client and server CPU for wire bytes, which wins on repetitive keyed
// batches crossing constrained links and loses on loopback. Requires a
// server new enough to understand the HELLO feature byte — older
// servers reject the extended HELLO, so only enable it against
// upgraded deployments (a server that understands the byte but has
// compression disabled simply negotiates it off).
func WithCompression() Option {
	return func(c *Client) { c.wantComp = true }
}

// Dial connects to an fcds ingest server and negotiates the protocol
// version.
func Dial(addr string, opts ...Option) (*Client, error) {
	// Peek at the options for the dial timeout: it must bound the TCP
	// connect itself, which happens before there is a conn to wrap.
	var probe Client
	for _, o := range opts {
		o(&probe)
	}
	var nc net.Conn
	var err error
	if probe.dialTimeout > 0 {
		nc, err = net.DialTimeout("tcp", addr, probe.dialTimeout)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	c, err := New(nc, opts...)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// New wraps an established connection (any net.Conn — tests use
// in-memory pipes) and negotiates the protocol version.
func New(nc net.Conn, opts ...Option) (*Client, error) {
	c := &Client{
		nc:       nc,
		maxFrame: wire.DefaultMaxFrame,
	}
	c.drained = sync.NewCond(&c.pmu)
	for _, o := range opts {
		o(c)
	}
	if c.dialTimeout > 0 {
		// Bound the HELLO exchange; lifted again once negotiation
		// succeeds so established-connection reads can block freely.
		nc.SetDeadline(time.Now().Add(c.dialTimeout))
	}
	go c.readLoop()
	resp, err := c.roundTrip(wire.Version, wire.FrameHello, func(dst []byte) []byte {
		dst = append(dst, wire.Version)
		if c.wantComp {
			// Feature byte (append-only HELLO extension): the server
			// echoes the same shape with the bits it accepted.
			dst = append(dst, wire.FeatureCompression)
		}
		return dst
	})
	if err != nil {
		return nil, fmt.Errorf("client: version negotiation: %w", err)
	}
	if resp.typ != wire.FrameHello || len(resp.payload) < 1 || len(resp.payload) > 2 || resp.payload[0] == 0 {
		return nil, fmt.Errorf("client: bad HELLO response (type 0x%02x)", resp.typ)
	}
	if c.dialTimeout > 0 {
		nc.SetDeadline(time.Time{})
	}
	c.version = resp.payload[0]
	c.compress = c.wantComp && len(resp.payload) == 2 && resp.payload[1]&wire.FeatureCompression != 0
	return c, nil
}

// Compressed reports whether HELLO negotiation enabled keyed-batch
// compression on this connection.
func (c *Client) Compressed() bool { return c.compress }

// Version returns the negotiated protocol version.
func (c *Client) Version() byte { return c.version }

// readLoop consumes response frames and delivers them, in order, to
// the pending-operation FIFO.
func (c *Client) readLoop() {
	var rbuf []byte
	for {
		_, typ, payload, err := wire.ReadFrame(c.nc, &rbuf, c.maxFrame)
		c.pmu.Lock()
		if err != nil {
			if c.fatal == nil {
				if c.closed {
					c.fatal = ErrClosed
				} else {
					c.fatal = fmt.Errorf("client: read: %w", err)
				}
			}
			for _, ch := range c.pending {
				if ch != nil {
					ch <- response{err: c.fatal}
				}
			}
			c.pending = nil
			c.npending = 0
			c.drained.Broadcast()
			c.pmu.Unlock()
			return
		}
		if len(c.pending) == 0 {
			c.fatal = fmt.Errorf("client: unsolicited frame 0x%02x", typ)
			c.drained.Broadcast()
			c.pmu.Unlock()
			c.nc.Close()
			return
		}
		ch := c.pending[0]
		c.pending = c.pending[1:]
		c.npending--
		if ch == nil {
			// Asynchronous ingest acknowledgement: only failures matter.
			if typ == wire.FrameErr && c.asyncErr == nil {
				c.asyncErr = parseServerError(payload)
			}
		}
		if c.npending == 0 {
			c.drained.Broadcast()
		}
		c.pmu.Unlock()
		if ch != nil {
			p := make([]byte, len(payload))
			copy(p, payload)
			ch <- response{typ: typ, payload: p}
		}
	}
}

func parseServerError(payload []byte) error {
	code, msg, err := wire.ParseErrPayload(payload)
	if err != nil {
		return fmt.Errorf("client: malformed error frame: %w", err)
	}
	return &ServerError{Code: code, Msg: msg}
}

// writeBurst is the accumulation threshold: once at least this many
// bytes are pending, send flushes inline, so a long async ingest run
// still reaches the kernel in large vectored writes rather than
// growing the buffer without bound.
const writeBurst = 64 << 10

// vectoredMin is the blob size past which a snapshot payload tail is
// queued as its own writev segment instead of copied through the
// accumulation buffer.
const vectoredMin = 4 << 10

// send assembles one frame under the write lock and enqueues its
// pending slot (nil ch = asynchronous). build appends the payload
// directly into the accumulation buffer behind a reserved header that
// is patched once the length is known. compressible marks keyed-batch
// payloads the negotiated compression applies to. blob, when non-nil,
// is a payload tail the caller keeps alive until its response arrives
// (snapshot pushes are synchronous), queued as its own writev segment
// when large enough.
func (c *Client) send(version, typ byte, ch chan response, compressible bool, blob []byte, build func(dst []byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pmu.Lock()
	if c.fatal != nil {
		err := c.fatal
		c.pmu.Unlock()
		return err
	}
	if c.closed {
		c.pmu.Unlock()
		return ErrClosed
	}
	c.pmu.Unlock()

	if blob != nil && len(blob) < vectoredMin {
		// Small blob: copying through the buffer beats an extra iovec.
		inner, tail := build, blob
		build = func(dst []byte) []byte { return append(inner(dst), tail...) }
		blob = nil
	}

	start, mark0, nsegs0 := len(c.wbuf), c.wmark, len(c.segs)
	c.wbuf = append(c.wbuf, make([]byte, wire.HeaderSize)...)
	var flags byte
	if compressible && c.compress {
		// Assemble the raw payload in the side scratch, then deflate it
		// into the accumulation buffer after the reserved header.
		c.enc = build(c.enc[:0])
		var err error
		if c.wbuf, err = c.comp.AppendCompressed(c.wbuf, c.enc); err != nil {
			c.wbuf = c.wbuf[:start]
			return fmt.Errorf("client: compress: %w", err)
		}
		flags = wire.FlagCompressed
	} else {
		c.wbuf = build(c.wbuf)
	}
	n := len(c.wbuf) - start - wire.HeaderSize + len(blob)
	wire.PutHeader(c.wbuf[start:], version, typ, flags, n)
	c.wpend += len(c.wbuf) - start
	if blob != nil {
		// Close the open wbuf segment and queue the caller's bytes as
		// their own segment: they reach the kernel without a copy.
		// Closed segments stay valid when wbuf later grows — they alias
		// the array wbuf had when they were closed, whose bytes are
		// final (append may move wbuf to a new array, never mutate the
		// old one's prefix).
		c.segs = append(c.segs, c.wbuf[c.wmark:len(c.wbuf):len(c.wbuf)], blob)
		c.wmark = len(c.wbuf)
		c.wpend += len(blob)
	}

	// Enqueue before flushing: the response cannot arrive before the
	// frame bytes leave, and the reader must find the slot when it
	// does. fatal is re-checked under the same lock — if the read loop
	// died while the frame was being built, an enqueued slot would
	// never be delivered and a sync caller would block forever.
	c.pmu.Lock()
	if c.fatal != nil {
		err := c.fatal
		c.pmu.Unlock()
		// Roll the frame back out of the accumulation state: it was
		// never enqueued, so it must never reach the wire.
		c.wpend -= len(c.wbuf) - start + len(blob)
		c.wbuf = c.wbuf[:start]
		c.wmark = mark0
		c.segs = c.segs[:nsegs0]
		return err
	}
	c.pending = append(c.pending, ch)
	c.npending++
	c.pmu.Unlock()

	if c.wpend < writeBurst {
		return nil
	}
	if err := c.flushLocked(); err != nil {
		// The write failed, so the server may have seen a partial burst
		// and will never answer this slot. Remove it (still the tail —
		// wmu is held, so nothing enqueued after us) and latch the
		// failure: leaving the slot would desync the in-order response
		// FIFO and deliver later responses to the wrong operations.
		err = fmt.Errorf("client: write: %w", err)
		c.pmu.Lock()
		if n := len(c.pending); n > 0 {
			c.pending = c.pending[:n-1]
			c.npending--
		}
		if c.fatal == nil {
			c.fatal = err
		}
		c.drained.Broadcast()
		c.pmu.Unlock()
		c.nc.Close() // wake the read loop so it fails waiters out
		return err
	}
	return nil
}

// flushLocked writes every pending segment with one vectored write
// (writev) and resets the accumulation state. Callers hold wmu.
func (c *Client) flushLocked() error {
	if c.wpend == 0 {
		return nil
	}
	c.iov = c.iov[:0]
	c.iov = append(c.iov, c.segs...)
	if tail := c.wbuf[c.wmark:]; len(tail) > 0 {
		c.iov = append(c.iov, tail)
	}
	var err error
	if len(c.iov) == 1 {
		_, err = c.nc.Write(c.iov[0])
	} else {
		// WriteTo consumes and mutates the slice it is called on; give
		// it a throwaway header over iov's array (reset next flush).
		bufs := c.iov
		_, err = bufs.WriteTo(c.nc)
	}
	c.segs = c.segs[:0]
	c.wbuf = c.wbuf[:0]
	c.wmark = 0
	c.wpend = 0
	return err
}

// flushWrites flushes the accumulated frames; a failure is
// connection-fatal (the server may have seen a partial frame), so it
// latches c.fatal and closes the connection — the read loop then fails
// every pending slot out, instead of leaving waiters blocked on
// responses that can never arrive.
func (c *Client) flushWrites() error {
	c.wmu.Lock()
	err := c.flushLocked()
	c.wmu.Unlock()
	if err == nil {
		return nil
	}
	err = fmt.Errorf("client: write: %w", err)
	c.pmu.Lock()
	if c.fatal == nil {
		c.fatal = err
	}
	c.drained.Broadcast()
	c.pmu.Unlock()
	c.nc.Close()
	return err
}

// roundTrip sends one frame and waits for its in-order response.
func (c *Client) roundTrip(version, typ byte, build func(dst []byte) []byte) (response, error) {
	return c.roundTripBlob(version, typ, nil, build)
}

// roundTripBlob is roundTrip with a payload tail that may ship as its
// own writev segment; blob stays alive until the response arrives,
// which is exactly the zero-copy retention contract send requires.
func (c *Client) roundTripBlob(version, typ byte, blob []byte, build func(dst []byte) []byte) (response, error) {
	ch := make(chan response, 1)
	if err := c.send(version, typ, ch, false, blob, build); err != nil {
		return response{}, err
	}
	if err := c.flushWrites(); err != nil {
		return response{}, err
	}
	resp := <-ch
	if resp.err != nil {
		return response{}, resp.err
	}
	if resp.typ == wire.FrameErr {
		return response{}, parseServerError(resp.payload)
	}
	return resp, nil
}

// Flush writes out every buffered frame and waits until the server has
// acknowledged all outstanding operations, returning the first
// asynchronous ingest error (if any) exactly once.
func (c *Client) Flush() error {
	if err := c.flushWrites(); err != nil {
		return err
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for c.npending > 0 && c.fatal == nil {
		c.drained.Wait()
	}
	if c.fatal != nil {
		return c.fatal
	}
	err := c.asyncErr
	c.asyncErr = nil
	return err
}

// Close flushes, waits for outstanding acknowledgements, and closes
// the connection. The flush error (or first latched ingest error) is
// returned.
func (c *Client) Close() error {
	err := c.Flush()
	c.pmu.Lock()
	c.closed = true
	c.pmu.Unlock()
	if cerr := c.nc.Close(); err == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
		err = cerr
	}
	return err
}

// --- ingest (asynchronous, batched) ---

func appendBatchHeader(dst []byte, tbl string, keyType byte, n int) []byte {
	dst = wire.AppendString(dst, tbl)
	dst = append(dst, keyType)
	return wire.AppendUvarint(dst, uint64(n))
}

// IngestU64 streams a keyed batch (uint64 keys, uint64 items) into the
// named Θ or HLL table. Asynchronous: errors surface at Flush.
func (c *Client) IngestU64(tbl string, keys, vals []uint64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: keys/vals length mismatch %d != %d", len(keys), len(vals))
	}
	return c.send(c.version, wire.FrameKeyedBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeUint64, len(keys))
		for _, k := range keys {
			dst = wire.AppendUint64(dst, k)
		}
		for _, v := range vals {
			dst = wire.AppendUint64(dst, v)
		}
		return dst
	})
}

// Ingest streams a keyed batch (string keys, uint64 items) into the
// named Θ or HLL table. Asynchronous: errors surface at Flush.
func (c *Client) Ingest(tbl string, keys []string, vals []uint64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: keys/vals length mismatch %d != %d", len(keys), len(vals))
	}
	return c.send(c.version, wire.FrameKeyedBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeString, len(keys))
		for _, k := range keys {
			dst = wire.AppendString(dst, k)
		}
		for _, v := range vals {
			dst = wire.AppendUint64(dst, v)
		}
		return dst
	})
}

// IngestFloat streams a keyed batch (string keys, float64 samples)
// into the named quantiles table. Asynchronous: errors surface at
// Flush.
func (c *Client) IngestFloat(tbl string, keys []string, vals []float64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: keys/vals length mismatch %d != %d", len(keys), len(vals))
	}
	return c.send(c.version, wire.FrameKeyedBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeString, len(keys))
		for _, k := range keys {
			dst = wire.AppendString(dst, k)
		}
		for _, v := range vals {
			dst = wire.AppendFloat64(dst, v)
		}
		return dst
	})
}

// IngestFloatU64 is IngestFloat with uint64 keys.
func (c *Client) IngestFloatU64(tbl string, keys []uint64, vals []float64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: keys/vals length mismatch %d != %d", len(keys), len(vals))
	}
	return c.send(c.version, wire.FrameKeyedBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeUint64, len(keys))
		for _, k := range keys {
			dst = wire.AppendUint64(dst, k)
		}
		for _, v := range vals {
			dst = wire.AppendFloat64(dst, v)
		}
		return dst
	})
}

// IngestStrings streams a keyed batch of string items (string keys)
// into the named Θ or HLL table; the server hashes the items.
// Asynchronous: errors surface at Flush.
func (c *Client) IngestStrings(tbl string, keys []string, items []string) error {
	if len(keys) != len(items) {
		return fmt.Errorf("client: keys/items length mismatch %d != %d", len(keys), len(items))
	}
	return c.send(c.version, wire.FrameKeyedStringBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeString, len(keys))
		for _, k := range keys {
			dst = wire.AppendString(dst, k)
		}
		for _, it := range items {
			dst = wire.AppendString(dst, it)
		}
		return dst
	})
}

// IngestStringsU64 is IngestStrings with uint64 keys.
func (c *Client) IngestStringsU64(tbl string, keys []uint64, items []string) error {
	if len(keys) != len(items) {
		return fmt.Errorf("client: keys/items length mismatch %d != %d", len(keys), len(items))
	}
	return c.send(c.version, wire.FrameKeyedStringBatch, nil, true, nil, func(dst []byte) []byte {
		dst = appendBatchHeader(dst, tbl, wire.KeyTypeUint64, len(keys))
		for _, k := range keys {
			dst = wire.AppendUint64(dst, k)
		}
		for _, it := range items {
			dst = wire.AppendString(dst, it)
		}
		return dst
	})
}

// --- snapshot shipping ---

// PushSnapshot ships a serialized FCTB table snapshot to the server,
// which merges it into the named table's shared remote aggregate.
// Synchronous: the server's acknowledgement (or failure) is returned.
// Merge semantics suit one-shot or delta ships; a pusher that
// repeatedly ships its full cumulative snapshot must use
// PushSnapshotFrom so re-ships replace instead of re-counting.
func (c *Client) PushSnapshot(tbl string, blob []byte) error {
	return c.PushSnapshotFrom(tbl, "", blob)
}

// PushSnapshotFrom ships a snapshot tagged with a source id: the
// server replaces the previous snapshot it holds for that source
// rather than merging, so periodic cumulative ships stay correct for
// every family (a re-merged quantiles snapshot would re-count all its
// samples each tick). Distinct sources still aggregate. An empty
// source is PushSnapshot's merge semantics.
func (c *Client) PushSnapshotFrom(tbl, source string, blob []byte) error {
	_, err := c.roundTripBlob(c.version, wire.FrameSnapshotPush, blob, func(dst []byte) []byte {
		dst = wire.AppendString(dst, tbl)
		return wire.AppendString(dst, source)
	})
	return err
}

// PushWindowSnapshot ships a windowed table's sealed-epoch snapshot
// (window.Table.WindowSnapshot serialized as FCTB) tagged with a
// source id and the shipper's rotation epoch. The server replaces the
// source's previous window snapshot only when epoch is >= the last
// applied one, so retries and duplicate ships (a reconnecting client
// re-delivering its outbox) are idempotent and stale reordered ships
// are ignored rather than rolling the window back. The source must be
// non-empty, and a restarted shipper (epoch counter back at zero) must
// use a fresh source id.
func (c *Client) PushWindowSnapshot(tbl, source string, epoch uint64, blob []byte) error {
	if source == "" {
		return errors.New("client: window snapshot requires a source id")
	}
	_, err := c.roundTripBlob(c.version, wire.FrameWindowSnapshot, blob, func(dst []byte) []byte {
		dst = wire.AppendString(dst, tbl)
		dst = wire.AppendString(dst, source)
		return wire.AppendUvarint(dst, epoch)
	})
	return err
}

// PullSnapshot fetches the named table's full merged snapshot (live
// keys merged with every snapshot the server has received) as a
// serialized FCTB blob, ready for Unmarshal*Snapshot or a PushSnapshot
// to another node.
func (c *Client) PullSnapshot(tbl string) ([]byte, error) {
	resp, err := c.roundTrip(c.version, wire.FrameSnapshotPull, func(dst []byte) []byte {
		return wire.AppendString(dst, tbl)
	})
	if err != nil {
		return nil, err
	}
	return resp.payload, nil
}

// --- queries ---

func parseQueryValue(payload []byte) (kind byte, blob []byte, found bool, err error) {
	r := wire.Reader{Buf: payload}
	if r.Byte() == 0 {
		if r.Err != nil || r.Remaining() != 0 {
			return 0, nil, false, errors.New("client: malformed query response")
		}
		return 0, nil, false, nil
	}
	kind = r.Byte()
	blob = r.Rest()
	if r.Err != nil {
		return 0, nil, false, errors.New("client: malformed query response")
	}
	return kind, blob, true, nil
}

// QueryCompact fetches one string key's compact sketch — the live
// sketch merged with any snapshot state the server received for that
// key. found is false when the key is unknown on the server. The blob
// parses with the family's compact unmarshaller (kind identifies it).
func (c *Client) QueryCompact(tbl string, key string) (kind byte, blob []byte, found bool, err error) {
	resp, err := c.roundTrip(c.version, wire.FrameQuery, func(dst []byte) []byte {
		dst = wire.AppendString(dst, tbl)
		dst = append(dst, wire.KeyTypeString)
		return wire.AppendString(dst, key)
	})
	if err != nil {
		return 0, nil, false, err
	}
	return parseQueryValue(resp.payload)
}

// QueryCompactU64 is QueryCompact with a uint64 key.
func (c *Client) QueryCompactU64(tbl string, key uint64) (kind byte, blob []byte, found bool, err error) {
	resp, err := c.roundTrip(c.version, wire.FrameQuery, func(dst []byte) []byte {
		dst = wire.AppendString(dst, tbl)
		dst = append(dst, wire.KeyTypeUint64)
		return wire.AppendUint64(dst, key)
	})
	if err != nil {
		return 0, nil, false, err
	}
	return parseQueryValue(resp.payload)
}

// Rollup fetches the named table's all-keys merged compact (live keys
// plus received snapshots); the blob parses with the family's compact
// unmarshaller.
func (c *Client) Rollup(tbl string) (kind byte, blob []byte, err error) {
	resp, err := c.roundTrip(c.version, wire.FrameRollup, func(dst []byte) []byte {
		return wire.AppendString(dst, tbl)
	})
	if err != nil {
		return 0, nil, err
	}
	r := wire.Reader{Buf: resp.payload}
	kind = r.Byte()
	blob = r.Rest()
	if r.Err != nil {
		return 0, nil, errors.New("client: malformed rollup response")
	}
	return kind, blob, nil
}

// Health fetches the server's counter snapshot.
func (c *Client) Health() (Health, error) {
	resp, err := c.roundTrip(c.version, wire.FrameHealth, func(dst []byte) []byte { return dst })
	if err != nil {
		return Health{}, err
	}
	r := wire.Reader{Buf: resp.payload}
	h := Health{
		Version:   r.Byte(),
		Tables:    int(r.Uvarint()),
		Keys:      int(r.Uvarint()),
		Conns:     int(r.Uvarint()),
		Frames:    r.Uvarint(),
		Items:     r.Uvarint(),
		Snapshots: r.Uvarint(),
		Errors:    r.Uvarint(),
	}
	if r.Err != nil {
		return Health{}, errors.New("client: malformed health response")
	}
	// Checkpoint age (milliseconds) trails the original fields so a
	// newer client still parses an older server's HEALTH payload.
	if r.Remaining() > 0 {
		ms := r.Uvarint()
		if r.Err != nil {
			return Health{}, errors.New("client: malformed health response")
		}
		h.CheckpointAge = time.Duration(ms) * time.Millisecond
		// Age-only servers clamp a real age to >= 1ms, so nonzero means
		// a checkpoint exists; the explicit flag below overrides when
		// the server is new enough to send it.
		h.HasCheckpoint = ms > 0
	}
	if r.Remaining() > 0 {
		h.HasCheckpoint = r.Byte() == 1
		if r.Err != nil {
			return Health{}, errors.New("client: malformed health response")
		}
	}
	// Journal recovery fields trail the checkpoint flag under the same
	// append-only contract.
	if r.Remaining() > 0 {
		h.JournalReplayed = r.Uvarint()
		h.JournalReplayAge = time.Duration(r.Uvarint()) * time.Millisecond
		h.HasJournal = r.Byte() == 1
		if r.Err != nil {
			return Health{}, errors.New("client: malformed health response")
		}
	}
	return h, nil
}
