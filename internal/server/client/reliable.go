package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/fcds/fcds/internal/server/wire"
)

// Reliable is a reconnecting snapshot shipper: it wraps a Client
// factory (usually Dial) with exponential backoff + jitter, connection
// state callbacks, and a bounded in-memory outbox, so an edge node
// keeps aggregating while its upstream is down and delivers the moment
// it comes back.
//
// The outbox coalesces: it holds at most one pending snapshot per
// (table, source) pair, and a newer ship for the same pair replaces
// the queued one. That is exactly the semantics the server applies on
// arrival — a named SNAPSHOT_PUSH replaces that source's previous
// snapshot — so dropping superseded outbox entries loses nothing: the
// cumulative snapshot that would have been delivered is subsumed by
// the newer one. The same replace semantics make redelivery after a
// mid-flight connection failure idempotent, which is why Reliable can
// blindly requeue an entry it cannot prove was applied.
//
// All network I/O happens on one background goroutine per Reliable;
// Ship* calls only mutate the outbox and return immediately. A caller
// fanning out to several upstreams runs one Reliable per upstream —
// their reconnect loops are then independent by construction (a slow
// or dead upstream cannot stall shipping to a healthy one).
type Reliable struct {
	cfg ReliableConfig

	mu       sync.Mutex
	queue    []*shipEntry           // FIFO of pending ships
	index    map[shipKey]*shipEntry // latest queued entry per (table, source)
	inflight bool                   // an entry is being delivered right now
	closed   bool
	state    ConnState
	lastErr  error
	cur      *Client // current connection, for Close to sever mid-delivery

	delivered uint64
	dropped   uint64
	coalesced uint64
	dials     uint64
	failures  uint64
	lastOK    time.Time
	backoff   time.Duration // current reconnect delay (0 = healthy)

	// wake nudges the run loop when work is enqueued; idle is closed
	// whenever the outbox is empty with nothing in flight (Drain waits
	// on it) and replaced when new work arrives.
	wake       chan struct{}
	stop       chan struct{}
	done       chan struct{}
	idle       chan struct{}
	idleClosed bool
}

// ConnState is a Reliable connection's lifecycle state.
type ConnState int32

const (
	// StateDisconnected: no usable connection (initial state, and
	// after a dial or delivery failure, while backing off).
	StateDisconnected ConnState = iota
	// StateConnecting: a dial attempt is in progress.
	StateConnecting
	// StateConnected: the HELLO handshake completed; deliveries flow.
	StateConnected
	// StateClosed: Close was called; terminal.
	StateClosed
)

func (s ConnState) String() string {
	switch s {
	case StateDisconnected:
		return "disconnected"
	case StateConnecting:
		return "connecting"
	case StateConnected:
		return "connected"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("ConnState(%d)", int32(s))
	}
}

// ReliableConfig configures a Reliable. Dial is required; every other
// field has a usable zero value.
type ReliableConfig struct {
	// Dial establishes one connection (including the HELLO exchange).
	// NewReliable calls it from the background goroutine on every
	// (re)connect attempt. Pair it with WithDialTimeout so a
	// black-holed upstream fails the attempt instead of wedging the
	// loop.
	Dial func() (*Client, error)

	// MinBackoff and MaxBackoff bound the exponential backoff between
	// failed attempts: the delay starts at MinBackoff (default 100ms),
	// doubles per consecutive failure, and caps at MaxBackoff (default
	// 30s). A successful delivery resets it.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// JitterFrac spreads each backoff delay uniformly over
	// [d, d*(1+JitterFrac)] so a fleet of edges revived by the same
	// upstream restart does not reconnect in lockstep (default 0.2;
	// negative disables jitter).
	JitterFrac float64
	// Seed seeds the jitter RNG (0 means 1). Deterministic on purpose:
	// fault-injection tests pin exact backoff schedules. Processes
	// wanting fleet-level spread seed from something process-unique
	// (fcds-serve hashes its source id).
	Seed uint64

	// MaxOutbox bounds the outbox's distinct (table, source) entries
	// (default 256). When a NEW pair arrives at the bound, the oldest
	// queued entry is dropped and counted in Stats().Dropped —
	// coalescing updates to an already-queued pair never drop.
	MaxOutbox int

	// OnState, when non-nil, is called from the background goroutine
	// on every connection state transition; err carries the failure
	// that caused a transition to StateDisconnected (nil otherwise).
	// It must not call Drain or Close (deadlock); Ship* and Stats are
	// fine.
	OnState func(s ConnState, err error)
}

// ReliableStats is a point-in-time snapshot of a Reliable's counters.
type ReliableStats struct {
	// State is the connection's current lifecycle state.
	State ConnState
	// Queued counts outbox entries waiting for delivery (one per
	// distinct table/source pair); Inflight reports whether one more
	// is being delivered right now.
	Queued   int
	Inflight bool
	// Delivered counts successfully acknowledged ships; Dropped counts
	// outbox entries evicted at the MaxOutbox bound plus poison
	// entries the server permanently rejected; Coalesced counts ships
	// that replaced a queued-but-undelivered entry for their pair
	// (subsumed, not lost); Dials counts connection attempts; Failures
	// counts dial and delivery failures.
	Delivered, Dropped, Coalesced, Dials, Failures uint64
	// Backoff is the current reconnect delay: zero while deliveries
	// flow, climbing toward MaxBackoff while the upstream stays down.
	Backoff time.Duration
	// LastError is the most recent dial or delivery failure (nil if
	// none, or none since the counters were read); LastDelivery is
	// when the last successful ship was acknowledged (zero if never).
	LastError    error
	LastDelivery time.Time
}

type shipKey struct{ table, source string }

type shipEntry struct {
	key    shipKey
	window bool
	epoch  uint64
	blob   []byte
}

const (
	defaultMinBackoff = 100 * time.Millisecond
	defaultMaxBackoff = 30 * time.Second
	defaultJitterFrac = 0.2
	defaultMaxOutbox  = 256
)

// NewReliable starts a Reliable's background delivery goroutine. It
// does not dial eagerly: the first connection attempt happens when the
// first snapshot is shipped (an idle edge keeps no connection open).
// Close releases the goroutine.
func NewReliable(cfg ReliableConfig) (*Reliable, error) {
	if cfg.Dial == nil {
		return nil, errors.New("client: ReliableConfig.Dial is required")
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = defaultMinBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = defaultMaxBackoff
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = cfg.MinBackoff
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = defaultJitterFrac
	}
	if cfg.MaxOutbox <= 0 {
		cfg.MaxOutbox = defaultMaxOutbox
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Reliable{
		cfg:   cfg,
		index: make(map[shipKey]*shipEntry),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		idle:  make(chan struct{}),
	}
	close(r.idle) // empty outbox: born drained
	r.idleClosed = true
	go r.run()
	return r, nil
}

// DialReliable is NewReliable with cfg.Dial set to Dial(addr, opts...)
// when nil — the common "reconnect to one address" shape.
func DialReliable(addr string, cfg ReliableConfig, opts ...Option) (*Reliable, error) {
	if cfg.Dial == nil {
		cfg.Dial = func() (*Client, error) { return Dial(addr, opts...) }
	}
	return NewReliable(cfg)
}

// ShipSnapshot queues one cumulative FCTB snapshot for delivery as a
// named SNAPSHOT_PUSH, replacing any queued-but-undelivered snapshot
// for the same (table, source) pair — the newer cumulative snapshot
// subsumes it. The source must be non-empty: anonymous pushes merge on
// the server, so retrying one after an ambiguous failure could
// double-count; replace semantics are what make reliable redelivery
// safe. The blob is retained until delivered — callers must not
// modify it afterwards.
func (r *Reliable) ShipSnapshot(table, source string, blob []byte) error {
	if source == "" {
		return errors.New("client: reliable shipping requires a source id (anonymous pushes merge, so retries would double-count)")
	}
	return r.enqueue(&shipEntry{key: shipKey{table, source}, blob: blob})
}

// ShipWindowSnapshot queues a windowed table's sealed-epoch snapshot
// (delivered as WINDOW_SNAPSHOT); see ShipSnapshot for the outbox
// contract. Epochs must be monotone per source — the server ignores
// stale ones.
func (r *Reliable) ShipWindowSnapshot(table, source string, epoch uint64, blob []byte) error {
	if source == "" {
		return errors.New("client: reliable shipping requires a source id")
	}
	return r.enqueue(&shipEntry{key: shipKey{table, source}, window: true, epoch: epoch, blob: blob})
}

func (r *Reliable) enqueue(e *shipEntry) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if old, ok := r.index[e.key]; ok {
		// Coalesce: overwrite the queued entry in place so it keeps its
		// position in the FIFO.
		*old = *e
		r.coalesced++
		r.mu.Unlock()
		return nil
	}
	if len(r.queue) >= r.cfg.MaxOutbox {
		// Bound the outbox: evict the oldest queued pair. Its data is
		// not gone from the world — the shipper's next cumulative
		// snapshot for that pair re-covers it — but this delivery is,
		// so it is counted.
		oldest := r.queue[0]
		r.queue = r.queue[1:]
		delete(r.index, oldest.key)
		r.dropped++
	}
	r.queue = append(r.queue, e)
	r.index[e.key] = e
	if r.idleClosed {
		r.idle = make(chan struct{})
		r.idleClosed = false
	}
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return nil
}

// markIdleLocked closes the idle channel when the outbox is fully
// drained. Callers hold r.mu.
func (r *Reliable) markIdleLocked() {
	if len(r.queue) == 0 && !r.inflight && !r.idleClosed {
		close(r.idle)
		r.idleClosed = true
	}
}

// setState records a transition and fires the callback (outside r.mu).
func (r *Reliable) setState(s ConnState, err error) {
	r.mu.Lock()
	changed := r.state != s
	r.state = s
	if err != nil {
		r.lastErr = err
	}
	cb := r.cfg.OnState
	r.mu.Unlock()
	if changed && cb != nil {
		cb(s, err)
	}
}

// run is the delivery loop: pop the oldest outbox entry, connect if
// needed (with backoff), deliver, and on failure requeue the entry at
// the front unless a newer ship for its pair has superseded it.
func (r *Reliable) run() {
	defer close(r.done)
	rng := rand.New(rand.NewSource(int64(r.cfg.Seed)))
	var cur *Client
	var backoff time.Duration
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	for {
		e := r.next()
		if e == nil {
			return // closed
		}
		if cur == nil {
			if backoff > 0 && !r.sleep(withJitter(backoff, r.cfg.JitterFrac, rng)) {
				r.abandon(e)
				return
			}
			r.setState(StateConnecting, nil)
			r.mu.Lock()
			r.dials++
			r.mu.Unlock()
			c, err := r.cfg.Dial()
			if err != nil {
				backoff = nextBackoff(backoff, r.cfg)
				r.mu.Lock()
				r.failures++
				r.backoff = backoff
				r.mu.Unlock()
				r.setState(StateDisconnected, err)
				r.requeue(e, err)
				continue
			}
			cur = c
			r.mu.Lock()
			r.cur = c
			nowClosed := r.closed
			r.mu.Unlock()
			if nowClosed {
				// Close raced the dial and could not sever this conn;
				// sever it ourselves so the delivery below fails fast
				// instead of wedging shutdown.
				c.nc.Close()
			}
			r.setState(StateConnected, nil)
		}
		err := r.deliver(cur, e)
		if err == nil {
			backoff = 0
			r.mu.Lock()
			r.inflight = false
			r.delivered++
			r.lastOK = time.Now()
			r.backoff = 0
			r.markIdleLocked()
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		r.failures++
		r.mu.Unlock()
		var se *ServerError
		if errors.As(err, &se) && requestScoped(se.Code) {
			// The server answered (the connection is fine) and rejected
			// the request: retrying the same bytes would fail forever.
			// Drop the poison entry so it cannot wedge the outbox; the
			// rejection surfaces through Stats (Dropped, LastError).
			r.mu.Lock()
			r.inflight = false
			r.dropped++
			r.lastErr = err
			r.markIdleLocked()
			r.mu.Unlock()
			continue
		}
		// Transport failure (or a fatal protocol error): the connection
		// is unusable and the server may or may not have applied the
		// entry. Replace semantics make redelivery safe, so requeue it
		// at the front unless it was superseded meanwhile.
		cur.Close()
		cur = nil
		backoff = nextBackoff(backoff, r.cfg)
		r.mu.Lock()
		r.cur = nil
		r.backoff = backoff
		r.mu.Unlock()
		r.setState(StateDisconnected, err)
		r.requeue(e, err)
	}
}

// requestScoped reports whether a server error code condemns only the
// one request (retrying the same bytes is pointless, but the session
// stays usable) rather than the connection or the server's
// availability. Unknown-table stays connection-scoped on purpose: it
// is what an aggregator restarting with its tables not yet registered
// returns, and the right response is to back off and retry, not drop.
func requestScoped(code uint64) bool {
	switch code {
	case wire.ErrCodeBadPayload, wire.ErrCodeUnsupported:
		return true
	default:
		return false
	}
}

// next blocks until an entry is available and claims it, or returns
// nil when the Reliable is closed (Close discards the queue; Drain is
// the flush path).
func (r *Reliable) next() *shipEntry {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil
		}
		if len(r.queue) > 0 {
			e := r.queue[0]
			r.queue = r.queue[1:]
			delete(r.index, e.key)
			r.inflight = true
			r.mu.Unlock()
			return e
		}
		r.mu.Unlock()
		select {
		case <-r.wake:
		case <-r.stop:
			return nil
		}
	}
}

// requeue puts a failed entry back at the front of the outbox — unless
// a newer ship for its pair arrived during delivery, in which case the
// newer cumulative snapshot supersedes it and the failed one is simply
// forgotten (not a drop: its data is contained in the successor), or
// the Reliable was closed (the queue is already discarded).
func (r *Reliable) requeue(e *shipEntry, err error) {
	r.mu.Lock()
	r.inflight = false
	r.lastErr = err
	if _, superseded := r.index[e.key]; !superseded && !r.closed {
		r.queue = append([]*shipEntry{e}, r.queue...)
		r.index[e.key] = e
	}
	r.markIdleLocked()
	r.mu.Unlock()
}

// abandon returns a claimed entry during shutdown.
func (r *Reliable) abandon(e *shipEntry) {
	r.mu.Lock()
	r.inflight = false
	if _, superseded := r.index[e.key]; !superseded && !r.closed {
		r.queue = append([]*shipEntry{e}, r.queue...)
		r.index[e.key] = e
	}
	r.markIdleLocked()
	r.mu.Unlock()
}

// sleep waits d or until Close; it reports whether the full wait
// elapsed.
func (r *Reliable) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stop:
		return false
	}
}

func (r *Reliable) deliver(c *Client, e *shipEntry) error {
	if e.window {
		return c.PushWindowSnapshot(e.key.table, e.key.source, e.epoch, e.blob)
	}
	return c.PushSnapshotFrom(e.key.table, e.key.source, e.blob)
}

// nextBackoff doubles the delay, clamped to [MinBackoff, MaxBackoff].
func nextBackoff(cur time.Duration, cfg ReliableConfig) time.Duration {
	if cur <= 0 {
		return cfg.MinBackoff
	}
	cur *= 2
	if cur > cfg.MaxBackoff {
		return cfg.MaxBackoff
	}
	return cur
}

// withJitter stretches d uniformly into [d, d*(1+frac)].
func withJitter(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	if frac <= 0 {
		return d
	}
	return d + time.Duration(rng.Float64()*frac*float64(d))
}

// State returns the connection's current lifecycle state.
func (r *Reliable) State() ConnState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Stats returns a snapshot of the Reliable's counters.
func (r *Reliable) Stats() ReliableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReliableStats{
		State:        r.state,
		Queued:       len(r.queue),
		Inflight:     r.inflight,
		Delivered:    r.delivered,
		Dropped:      r.dropped,
		Coalesced:    r.coalesced,
		Dials:        r.dials,
		Failures:     r.failures,
		Backoff:      r.backoff,
		LastError:    r.lastErr,
		LastDelivery: r.lastOK,
	}
}

// Drain blocks until every queued snapshot has been delivered (the
// graceful-shutdown flush: ship the final snapshots, Drain, Close), or
// until timeout. It returns nil on a full drain; the timeout error
// reports how many entries remain. Draining can require reconnecting,
// so pick a timeout larger than a few backoff steps.
func (r *Reliable) Drain(timeout time.Duration) error {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		r.mu.Lock()
		if len(r.queue) == 0 && !r.inflight {
			r.mu.Unlock()
			return nil
		}
		if r.closed {
			n := len(r.queue)
			r.mu.Unlock()
			return fmt.Errorf("client: reliable closed with %d snapshots undelivered", n)
		}
		idle := r.idle
		r.mu.Unlock()
		select {
		case <-idle:
		case <-t.C:
			r.mu.Lock()
			n := len(r.queue)
			if r.inflight {
				n++
			}
			err := r.lastErr
			r.mu.Unlock()
			if n == 0 {
				return nil
			}
			return fmt.Errorf("client: drain timed out with %d snapshots undelivered (last error: %v)", n, err)
		case <-r.stop:
		}
	}
}

// Close stops the delivery loop and releases its connection. Queued
// snapshots that have not been delivered are discarded — call Drain
// first for a graceful flush. Safe to call twice.
func (r *Reliable) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	// Discard the queue so the loop exits instead of flushing: Drain
	// is the explicit flush path.
	for _, e := range r.queue {
		delete(r.index, e.key)
	}
	r.queue = nil
	r.markIdleLocked()
	cur := r.cur
	r.mu.Unlock()
	close(r.stop)
	if cur != nil {
		// Sever the live connection so a delivery blocked on an
		// unresponsive upstream unblocks instead of wedging Close.
		cur.nc.Close()
	}
	<-r.done
	r.setState(StateClosed, nil)
	return nil
}
