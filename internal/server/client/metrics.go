package client

import (
	"time"

	"github.com/fcds/fcds/internal/metrics"
)

// RegisterMetrics exports the Reliable's shipping counters into reg,
// labeled with the given upstream name (typically the dialed address).
// Every series is func-backed through Stats(), so the delivery loop is
// untouched. A process fanning out to several upstreams registers each
// Reliable under its own upstream label in the same registry.
//
// Families: fcds_client_outbox_depth, fcds_client_inflight,
// fcds_client_conn_state, fcds_client_backoff_seconds,
// fcds_client_delivered_total, fcds_client_dropped_total,
// fcds_client_coalesced_total, fcds_client_dials_total,
// fcds_client_failures_total, fcds_client_last_delivery_age_seconds.
func (r *Reliable) RegisterMetrics(reg *metrics.Registry, upstream string) {
	reg.GaugeFunc("fcds_client_outbox_depth",
		"Snapshots queued for delivery (one per distinct table/source pair). Alert on sustained growth: the upstream is down or too slow.",
		func() float64 { return float64(r.Stats().Queued) }, "upstream", upstream)
	reg.GaugeFunc("fcds_client_inflight",
		"1 while a snapshot delivery is in progress, else 0.",
		func() float64 {
			if r.Stats().Inflight {
				return 1
			}
			return 0
		}, "upstream", upstream)
	reg.GaugeFunc("fcds_client_conn_state",
		"Connection lifecycle state: 0 disconnected, 1 connecting, 2 connected, 3 closed.",
		func() float64 { return float64(r.State()) }, "upstream", upstream)
	reg.GaugeFunc("fcds_client_backoff_seconds",
		"Current reconnect backoff delay; 0 while deliveries flow.",
		func() float64 { return r.Stats().Backoff.Seconds() }, "upstream", upstream)
	reg.CounterFunc("fcds_client_delivered_total",
		"Snapshots delivered and acknowledged.",
		func() float64 { return float64(r.Stats().Delivered) }, "upstream", upstream)
	reg.CounterFunc("fcds_client_dropped_total",
		"Outbox entries evicted at the MaxOutbox bound plus poison entries the server permanently rejected.",
		func() float64 { return float64(r.Stats().Dropped) }, "upstream", upstream)
	reg.CounterFunc("fcds_client_coalesced_total",
		"Ships that replaced a queued-but-undelivered entry for their table/source pair (subsumed by the newer snapshot, not lost).",
		func() float64 { return float64(r.Stats().Coalesced) }, "upstream", upstream)
	reg.CounterFunc("fcds_client_dials_total",
		"Connection attempts.",
		func() float64 { return float64(r.Stats().Dials) }, "upstream", upstream)
	reg.CounterFunc("fcds_client_failures_total",
		"Dial and delivery failures.",
		func() float64 { return float64(r.Stats().Failures) }, "upstream", upstream)
	reg.GaugeFunc("fcds_client_last_delivery_age_seconds",
		"Seconds since the last acknowledged delivery; 0 until the first one.",
		func() float64 {
			last := r.Stats().LastDelivery
			if last.IsZero() {
				return 0
			}
			return time.Since(last).Seconds()
		}, "upstream", upstream)
}
