package client_test

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
)

// startQuantilesServer runs a loopback server with one string-keyed
// quantiles table — the family whose sample counts make replace-vs-
// merge mistakes visible exactly.
func startQuantilesServer(t *testing.T, name string) (*server.Server, string) {
	t.Helper()
	tab := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 2, Shards: 16},
		K:     128,
	})
	t.Cleanup(tab.Close)
	s := server.New(server.Config{})
	if err := server.RegisterQuantiles(s, name, tab); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// quantilesBlob builds a cumulative FCTB snapshot holding n samples by
// round-tripping them through a throwaway server.
func quantilesBlob(t *testing.T, n int) []byte {
	t.Helper()
	_, addr := startQuantilesServer(t, "lat")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = "api"
		vals[i] = float64(i)
	}
	if err := c.IngestFloat("lat", keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	blob, err := c.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func serverN(t *testing.T, addr string) uint64 {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, blob, err := c.Rollup("lat")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := quantiles.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	return sk.Snapshot().N()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReliableCoalescesAndBoundsOutbox: with the upstream down, a
// re-ship for an already-queued (table, source) pair coalesces in
// place, and a new pair arriving at the MaxOutbox bound evicts the
// oldest entry and counts it as dropped.
func TestReliableCoalescesAndBoundsOutbox(t *testing.T) {
	var dials atomic.Int64
	r, err := client.NewReliable(client.ReliableConfig{
		Dial: func() (*client.Client, error) {
			dials.Add(1)
			return nil, errors.New("upstream down")
		},
		// One immediate attempt, then an hour of backoff: the outbox
		// state below is examined while the loop sleeps.
		MinBackoff: time.Hour,
		MaxBackoff: time.Hour,
		MaxOutbox:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.ShipSnapshot("t", "a", []byte("a1")); err != nil {
		t.Fatal(err)
	}
	// The first attempt fails and the entry is re-claimed for the
	// backoff sleep; from here every ship only mutates the outbox.
	waitFor(t, "first dial attempt", func() bool { return dials.Load() >= 1 })
	waitFor(t, "entry claimed for retry", func() bool {
		st := r.Stats()
		return st.Inflight && st.Queued == 0
	})

	if err := r.ShipSnapshot("t", "a", []byte("a2")); err != nil { // new entry (a is in flight)
		t.Fatal(err)
	}
	if err := r.ShipSnapshot("t", "a", []byte("a3")); err != nil { // coalesces into a2's slot
		t.Fatal(err)
	}
	if st := r.Stats(); st.Queued != 1 {
		t.Fatalf("after coalescing ships: queued = %d, want 1", st.Queued)
	}
	if err := r.ShipSnapshot("t", "b", []byte("b1")); err != nil { // second pair: at the bound
		t.Fatal(err)
	}
	if err := r.ShipSnapshot("t", "c", []byte("c1")); err != nil { // evicts oldest (a)
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Queued != 2 || st.Dropped != 1 {
		t.Fatalf("at the bound: queued = %d dropped = %d, want 2, 1", st.Queued, st.Dropped)
	}
	if st.State != client.StateDisconnected {
		t.Fatalf("state = %v, want %v", st.State, client.StateDisconnected)
	}
	if st.LastError == nil {
		t.Fatal("LastError not recorded after failed dials")
	}
}

// TestReliableDeliversAfterFailedDials: dialing fails twice before the
// real upstream is reachable; the queued cumulative snapshot arrives
// once the backoff loop gets through, and its replace semantics leave
// the server with exactly the latest state.
func TestReliableDeliversAfterFailedDials(t *testing.T) {
	_, addr := startQuantilesServer(t, "lat")
	v1 := quantilesBlob(t, 100)
	v2 := quantilesBlob(t, 300)

	var attempts atomic.Int64
	var states []client.ConnState
	r, err := client.NewReliable(client.ReliableConfig{
		Dial: func() (*client.Client, error) {
			if attempts.Add(1) <= 2 {
				return nil, errors.New("still booting")
			}
			return client.Dial(addr)
		},
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		OnState:    func(s client.ConnState, err error) { states = append(states, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.ShipSnapshot("lat", "edge-1", v1); err != nil {
		t.Fatal(err)
	}
	if err := r.ShipSnapshot("lat", "edge-1", v2); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Dials < 3 || st.Failures < 2 {
		t.Fatalf("dials = %d failures = %d, want >= 3, >= 2", st.Dials, st.Failures)
	}
	if st.Delivered == 0 || st.LastDelivery.IsZero() {
		t.Fatalf("delivered = %d lastDelivery = %v, want progress", st.Delivered, st.LastDelivery)
	}
	if st.State != client.StateConnected {
		t.Fatalf("state = %v, want %v", st.State, client.StateConnected)
	}
	// Whether v1 was delivered then replaced by v2, or coalesced away
	// before the first successful dial, the upstream holds exactly v2.
	if got := serverN(t, addr); got != 300 {
		t.Fatalf("server N = %d, want 300 (latest cumulative snapshot)", got)
	}
	r.Close()
	// The callback saw a terminal Closed after at least one
	// Connecting/Connected cycle.
	if len(states) == 0 || states[len(states)-1] != client.StateClosed {
		t.Fatalf("state transitions = %v, want trailing %v", states, client.StateClosed)
	}
}

// TestReliablePoisonEntryDropped: a snapshot the server permanently
// rejects (BAD_PAYLOAD) is dropped instead of wedging the outbox; the
// connection stays up and later ships flow.
func TestReliablePoisonEntryDropped(t *testing.T) {
	_, addr := startQuantilesServer(t, "lat")
	r, err := client.DialReliable(addr, client.ReliableConfig{
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.ShipSnapshot("lat", "edge-1", []byte("not an FCTB blob")); err != nil {
		t.Fatal(err)
	}
	if err := r.ShipSnapshot("lat", "edge-1b", quantilesBlob(t, 50)); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Dropped != 1 || st.Delivered != 1 {
		t.Fatalf("dropped = %d delivered = %d, want 1, 1", st.Dropped, st.Delivered)
	}
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (a request-scoped rejection must not reconnect)", st.Dials)
	}
	var se *client.ServerError
	if !errors.As(st.LastError, &se) {
		t.Fatalf("LastError = %v, want a ServerError", st.LastError)
	}
	if got := serverN(t, addr); got != 50 {
		t.Fatalf("server N = %d, want 50", got)
	}
}

// TestReliableUnknownTableRetriesUntilRegistered: unknown-table is
// what an aggregator answers while restarting before its tables are
// registered — the shipper must treat it as transient (back off,
// retry), not as poison, and deliver once the table appears.
func TestReliableUnknownTableRetriesUntilRegistered(t *testing.T) {
	s, addr := startQuantilesServer(t, "lat")
	r, err := client.DialReliable(addr, client.ReliableConfig{
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.ShipSnapshot("late", "edge-1", quantilesBlob(t, 70)); err != nil {
		t.Fatal(err)
	}
	// The ship keeps failing (unknown table) without being dropped.
	waitFor(t, "retries against the unregistered table", func() bool {
		return r.Stats().Failures >= 3
	})
	if st := r.Stats(); st.Dropped != 0 || st.Delivered != 0 {
		t.Fatalf("dropped = %d delivered = %d during retries, want 0, 0", st.Dropped, st.Delivered)
	}

	// The table shows up (registration finished); the retry loop lands.
	late := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 2, Shards: 16},
		K:     128,
	})
	t.Cleanup(late.Close)
	if err := server.RegisterQuantiles(s, "late", late); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("delivered = %d dropped = %d, want 1, 0", st.Delivered, st.Dropped)
	}
}

// TestReliableRejectsAnonymousShips: reliable redelivery relies on
// replace semantics, which need a source id — anonymous ships are
// refused up front.
func TestReliableRejectsAnonymousShips(t *testing.T) {
	r, err := client.NewReliable(client.ReliableConfig{
		Dial: func() (*client.Client, error) { return nil, errors.New("unused") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ShipSnapshot("t", "", []byte("x")); err == nil {
		t.Fatal("anonymous ShipSnapshot accepted")
	}
	if err := r.ShipWindowSnapshot("t", "", 1, []byte("x")); err == nil {
		t.Fatal("anonymous ShipWindowSnapshot accepted")
	}
	if st := r.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after rejected ships, want 0", st.Queued)
	}

	// Ship after Close is refused too.
	r.Close()
	if err := r.ShipSnapshot("t", "s", []byte("x")); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ship after Close = %v, want ErrClosed", err)
	}
}
