package server

import (
	"testing"

	"github.com/fcds/fcds/internal/server/wire"
	"github.com/fcds/fcds/internal/table"
)

// TestServeHotpathZeroAllocs pins the server's zero-copy ingest path at
// 0 allocs per frame: handle checkout, the streaming decode straight
// into the writer's grouping scratch (no intermediate key/value slices,
// no interface boxing per key), and the batch commit. It mirrors the
// table-side pin (internal/table's TestKeyedBatchInstrumentedZeroAllocs)
// one layer up: buffer sized so runs never hand off to the propagator
// pool, uint64 keys (string keys are copied on first sight by design —
// the table retains them).
func TestServeHotpathZeroAllocs(t *testing.T) {
	tab := table.NewTheta(table.ThetaConfig[uint64]{
		Table: table.Config[uint64]{Writers: 1, Shards: 8},
		K:     256, MaxError: 1, BufferSize: 1 << 14,
	})
	defer tab.Close()
	s := New(Config{})
	if err := RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	b, ok := s.lookup("ev")
	if !ok {
		t.Fatal("table not registered")
	}

	// One KEYED_BATCH payload body (the bytes after the table name),
	// exactly as a frame delivers it: key type, count, key run, value
	// run. 8 distinct keys so the writer cache stays warm.
	const batch = 512
	payload := []byte{wire.KeyTypeUint64}
	payload = wire.AppendUvarint(payload, batch)
	for i := 0; i < batch; i++ {
		payload = wire.AppendUint64(payload, uint64(i%8))
	}
	x := uint64(1)
	for i := 0; i < batch; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		payload = wire.AppendUint64(payload, x)
	}

	// The cursor lives outside the loop exactly like a connection's
	// reused connState cursor — the pointer handed through the backend
	// interface escapes once, not per frame.
	var r wire.Reader
	ingest := func() {
		r = wire.Reader{Buf: payload}
		if n, err := b.ingest(&r, false); err != nil || n != batch {
			t.Fatalf("ingest: n=%d err=%v", n, err)
		}
	}
	// Warm up: create the key sketches and fill the writer cache.
	for i := 0; i < 8; i++ {
		ingest()
	}
	if avg := testing.AllocsPerRun(50, ingest); avg != 0 {
		t.Errorf("server ingest allocates %.1f allocs/op, want 0", avg)
	}
}
