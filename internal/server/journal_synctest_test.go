//go:build goexperiment.synctest

package server_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"testing/synctest"
	"time"

	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
)

// TestSynctestFaultJournalKillRecoversTwin is the journal's acceptance
// test: the aggregator is killed at arbitrary points BETWEEN
// checkpoints (one checkpoint pass runs early, then never again), and
// the journal-recovered rollup must exactly equal a never-killed twin's
// for all three families. The traffic deliberately includes durable
// events nothing will ever re-deliver — a one-shot named push and a
// one-shot window ship accepted after the last checkpoint — so recovery
// can only come from the journal, not from the Reliable's cumulative
// re-ships. The second kill also leaves a torn final record on the
// active journal file, the artifact of dying mid-append.
func TestSynctestFaultJournalKillRecoversTwin(t *testing.T) {
	synctest.Run(func() {
		base := t.TempDir()
		ckptDir := base + "/ckpt"
		walDir := base + "/wal"
		twinWal := base + "/twin-wal"

		type incarnation struct {
			srv  *server.Server
			ln   *chanListener
			trio *faultTrio
			jnl  *server.Journal
		}
		start := func() *incarnation {
			srv := server.New(server.Config{})
			trio := newFaultTrio(t, srv)
			if _, err := srv.RestoreCheckpoints(ckptDir); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if _, err := srv.ReplayJournal(walDir); err != nil {
				t.Fatalf("replay: %v", err)
			}
			jnl, err := server.OpenJournal(walDir, server.JournalConfig{Logf: t.Logf})
			if err != nil {
				t.Fatalf("open journal: %v", err)
			}
			srv.AttachJournal(jnl)
			ln := newChanListener()
			go func() { _ = srv.Serve(ln) }()
			return &incarnation{srv: srv, ln: ln, trio: trio, jnl: jnl}
		}
		var cur atomic.Pointer[chanListener]
		inc := start()
		cur.Store(inc.ln)
		kill := func() {
			cur.Store(nil)
			if err := inc.srv.Close(); err != nil {
				t.Fatal(err)
			}
			inc.ln.Close()
			inc.trio.close()
			// A SIGKILL would not run Close, but the journal fsyncs on
			// every record here, so closing the fd loses nothing; the
			// torn-record append below recreates the mid-write artifact.
			_ = inc.jnl.Close()
		}

		// The failure-free twin, journaled the same way (journaling
		// must not itself perturb rollups).
		expSrv := server.New(server.Config{})
		expTrio := newFaultTrio(t, expSrv)
		defer expTrio.close()
		if _, err := expSrv.ReplayJournal(twinWal); err != nil {
			t.Fatal(err)
		}
		expJnl, err := server.OpenJournal(twinWal, server.JournalConfig{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer expJnl.Close()
		expSrv.AttachJournal(expJnl)
		expLn := newChanListener()
		go func() { _ = expSrv.Serve(expLn) }()
		defer expSrv.Close()
		expC := dialPipe(t, expLn)
		defer expC.Close()

		dial := func() (*client.Client, error) {
			ln := cur.Load()
			if ln == nil {
				return nil, errors.New("aggregator down")
			}
			cEnd, sEnd := net.Pipe()
			select {
			case ln.ch <- sEnd:
			case <-ln.done:
				cEnd.Close()
				return nil, errors.New("aggregator down")
			}
			return client.New(cEnd)
		}
		rel, err := client.NewReliable(client.ReliableConfig{
			Dial:       dial,
			MinBackoff: 10 * time.Millisecond,
			MaxBackoff: 200 * time.Millisecond,
			Seed:       17,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rel.Close()

		// Edge tables behind a snapshot-capture server, plus a second
		// mini-edge whose state is pushed exactly once and never again.
		edgeSrv := server.New(server.Config{})
		edgeTrio := newFaultTrio(t, edgeSrv)
		defer edgeTrio.close()
		evW, latW, devW := edgeTrio.ev.Writer(0), edgeTrio.lat.Writer(0), edgeTrio.dev.Writer(0)

		onceSrv := server.New(server.Config{})
		onceTrio := newFaultTrio(t, onceSrv)
		defer onceTrio.close()

		rng := rand.New(rand.NewSource(0x1a6))
		const phases, edgeQ, onceQ = 4, 400, 250
		perm := rng.Perm(phases*edgeQ + onceQ)
		next := 0
		take := func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(perm[next])
				next++
			}
			return out
		}

		for phase := 0; phase < phases; phase++ {
			// Edge ingest, then a cumulative ship of all three tables to
			// the aggregator (via the Reliable) and the twin (directly).
			n := 40 + rng.Intn(120)
			keys := make([]string, n)
			ukeys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%d", rng.Intn(8))
				ukeys[i] = rng.Uint64() % 8
				vals[i] = rng.Uint64() % 2000
			}
			evW.UpdateKeyedBatch(keys, vals)
			devW.UpdateKeyedBatch(ukeys, vals)
			qk := make([]string, edgeQ)
			for i := range qk {
				qk[i] = "api"
			}
			latW.UpdateKeyedBatch(qk, take(edgeQ))
			for _, tbl := range trioTables {
				blob, err := edgeSrv.SnapshotTable(tbl)
				if err != nil {
					t.Fatal(err)
				}
				if err := rel.ShipSnapshot(tbl, "edge-1", blob); err != nil {
					t.Fatal(err)
				}
				if err := expC.PushSnapshotFrom(tbl, "edge-1", blob); err != nil {
					t.Fatal(err)
				}
			}
			if err := rel.Drain(time.Hour); err != nil {
				t.Fatalf("phase %d drain: %v", phase, err)
			}

			switch phase {
			case 0:
				// The only checkpoint pass of the run. Every kill below
				// lands between checkpoints: recovery is restore (this
				// pass) + journal replay (everything after it).
				if _, err := inc.srv.WriteCheckpoints(ckptDir); err != nil {
					t.Fatal(err)
				}
			case 1:
				// One-shot durable events, after the last checkpoint:
				// a named push and an epoch-5 window ship that no
				// reconnect loop will ever send again. Both are ACKed
				// (journaled) and then the process dies — only journal
				// replay can bring them back.
				oq := onceTrio.lat.Writer(0)
				ok := make([]string, onceQ)
				for i := range ok {
					ok[i] = "api"
				}
				oq.UpdateKeyedBatch(ok, take(onceQ))
				onceLat, err := onceSrv.SnapshotTable("lat")
				if err != nil {
					t.Fatal(err)
				}
				onceEv, err := onceSrv.SnapshotTable("ev")
				if err != nil {
					t.Fatal(err)
				}
				dc := dialPipe(t, cur.Load())
				for _, c := range []*client.Client{dc, expC} {
					if err := c.PushSnapshotFrom("lat", "oneshot", onceLat); err != nil {
						t.Fatal(err)
					}
					if err := c.PushWindowSnapshot("ev", "win-1", 5, onceEv); err != nil {
						t.Fatal(err)
					}
				}
				if err := dc.Close(); err != nil {
					t.Fatal(err)
				}

				kill()
				time.Sleep(300 * time.Millisecond) // outage window
				inc = start()
				cur.Store(inc.ln)
			case 2:
				// A stale window re-ship (epoch 3 < 5) must be a no-op
				// on both sides — including across the next recovery.
				staleEv, err := onceSrv.SnapshotTable("ev")
				if err != nil {
					t.Fatal(err)
				}
				dc := dialPipe(t, cur.Load())
				for _, c := range []*client.Client{dc, expC} {
					if err := c.PushWindowSnapshot("ev", "win-1", 3, staleEv); err != nil {
						t.Fatal(err)
					}
				}
				if err := dc.Close(); err != nil {
					t.Fatal(err)
				}

				// Kill #2 dies mid-append: a torn half-record on the
				// active journal file. Replay must truncate it and keep
				// everything before it.
				kill()
				torn := binary.LittleEndian.AppendUint32(nil, 80)
				torn = append(torn, []byte("half-written-record")...)
				f, err := os.OpenFile(newestJournalFile(t, walDir), os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(torn); err != nil {
					t.Fatal(err)
				}
				f.Close()
				time.Sleep(300 * time.Millisecond)
				inc = start()
				cur.Store(inc.ln)
			}
		}

		// The last incarnation recovered through the journal at least
		// once — the one-shot push can only have arrived that way.
		if records, _, ok := inc.srv.JournalReplay(); !ok || records == 0 {
			t.Fatalf("final incarnation replayed %d records (ok=%v), want journal recovery", records, ok)
		}

		// Recovered state == failure-free state, all three families.
		// The quantiles stream is the full shuffled permutation: edge
		// cumulative ships plus the one-shot push.
		aggC := dialPipe(t, inc.ln)
		defer aggC.Close()
		defer inc.srv.Close()
		defer inc.trio.close()
		defer inc.jnl.Close()
		compareRollups(t, aggC, expC, uint64(phases*edgeQ+onceQ))

		if st := rel.Stats(); st.Dropped != 0 || st.Delivered == 0 {
			t.Fatalf("reliable stats = %+v, want deliveries and zero drops", st)
		}
	})
}
