// Package faultconn injects connection faults on a seeded,
// reproducible schedule: a net.Conn / net.Listener wrapper that
// severs, delays, or black-holes traffic so the fault-tolerance layer
// (reconnecting clients, checkpoint recovery, idle timeouts) can be
// driven through kill/reconnect/restart sequences deterministically —
// in GOEXPERIMENT=synctest bubbles the injected delays ride virtual
// time, so a test that exercises minutes of backoff runs in
// microseconds and always sees the same schedule.
//
// Faults trigger per I/O operation (one Read or Write call counts as
// one op). Deterministic triggers (SeverAfterOps, BlackholeAfterOps)
// fire on exact op counts; probabilistic triggers (SeverProb,
// DelayProb) draw from a per-connection rand seeded by Config.Seed and
// the connection's accept index, so a given (seed, schedule) replays
// identically.
package faultconn

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config is one fault schedule, applied to every connection a wrapped
// listener accepts (each with its own derived RNG).
type Config struct {
	// Seed derives every connection's fault RNG (0 means 1).
	Seed uint64

	// SeverAfterOps, when > 0, closes the connection permanently just
	// before its Nth I/O operation. The op that trips it fails with a
	// "fault injected" error; every later op fails too.
	SeverAfterOps int
	// SeverProb severs with this probability before each op (0 = never).
	SeverProb float64

	// DelayProb sleeps Delay before an op with this probability —
	// network jank without connection loss.
	DelayProb float64
	Delay     time.Duration

	// BlackholeAfterOps, when > 0, makes every op from the Nth on block
	// until the connection is closed or its deadline expires — the
	// half-open peer that idle timeouts and dial timeouts exist for.
	BlackholeAfterOps int

	// OnFault, when non-nil, observes each injected fault: the
	// connection's accept index, the op kind ("read"/"write"), the op
	// count, and what was injected ("sever"/"delay"/"blackhole").
	OnFault func(conn int, op string, n int, fault string)
}

// ErrInjected is the failure surfaced by severed operations.
type ErrInjected struct {
	Conn int
	Op   string
	N    int
}

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("faultconn: injected sever on conn %d (%s op %d)", e.Conn, e.Op, e.N)
}

// Listener wraps an inner listener, applying the fault schedule to
// every accepted connection.
type Listener struct {
	net.Listener
	cfg Config
	seq int
	mu  sync.Mutex
}

// NewListener wraps ln.
func NewListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept wraps the inner listener's next connection with the fault
// schedule.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	id := l.seq
	l.seq++
	l.mu.Unlock()
	return Wrap(nc, id, l.cfg), nil
}

// Conn is one fault-injected connection.
type Conn struct {
	net.Conn
	cfg Config
	id  int

	mu        sync.Mutex
	rng       *rand.Rand
	ops       int
	severed   bool
	blackhole chan struct{} // closed by Close to release black-holed ops
	bhClosed  bool
}

// Wrap applies a fault schedule to one connection; id seeds its RNG
// (a listener uses the accept index; client-side wrappers pick their
// own).
func Wrap(nc net.Conn, id int, cfg Config) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Finalize the derived seed through splitmix64: math/rand's source
	// correlates nearby seeds (adjacent accept indices would draw
	// near-identical first faults), and an avalanching mix restores
	// per-connection independence while staying fully deterministic.
	return &Conn{
		Conn:      nc,
		cfg:       cfg,
		id:        id,
		rng:       rand.New(rand.NewSource(int64(splitmix64(seed + uint64(id)*0x9e3779b97f4a7c15)))),
		blackhole: make(chan struct{}),
	}
}

// splitmix64 is the finalizer step of the SplitMix64 generator — a
// cheap avalanche so structured seed inputs produce unstructured
// outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fault runs the schedule for one op: it returns a non-nil error when
// the op must fail (sever), blocks when black-holed, and sleeps when
// delayed.
func (c *Conn) fault(op string) error {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return &ErrInjected{Conn: c.id, Op: op, N: c.ops}
	}
	c.ops++
	n := c.ops
	sever := (c.cfg.SeverAfterOps > 0 && n >= c.cfg.SeverAfterOps) ||
		(c.cfg.SeverProb > 0 && c.rng.Float64() < c.cfg.SeverProb)
	delay := !sever && c.cfg.DelayProb > 0 && c.rng.Float64() < c.cfg.DelayProb
	blackhole := !sever && c.cfg.BlackholeAfterOps > 0 && n >= c.cfg.BlackholeAfterOps
	if sever {
		c.severed = true
	}
	bh := c.blackhole
	c.mu.Unlock()

	switch {
	case sever:
		c.notify(op, n, "sever")
		c.Conn.Close() // the peer sees the break too, like a real sever
		return &ErrInjected{Conn: c.id, Op: op, N: n}
	case blackhole:
		c.notify(op, n, "blackhole")
		// The op hangs until Close — a half-open peer as seen from THIS
		// side. (Deadlines set on the wrapped conn do not pierce the
		// black hole; tests that need deadline-driven escape hang the
		// PEER instead and let the deadline fire on a real blocked
		// read.)
		<-bh
		return &ErrInjected{Conn: c.id, Op: op, N: n}
	case delay:
		c.notify(op, n, "delay")
		time.Sleep(c.cfg.Delay)
	}
	return nil
}

func (c *Conn) notify(op string, n int, fault string) {
	if c.cfg.OnFault != nil {
		c.cfg.OnFault(c.id, op, n, fault)
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.fault("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.fault("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Close releases black-holed operations and closes the underlying
// connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if !c.bhClosed {
		close(c.blackhole)
		c.bhClosed = true
	}
	c.mu.Unlock()
	return c.Conn.Close()
}
