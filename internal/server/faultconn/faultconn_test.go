package faultconn_test

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"

	"github.com/fcds/fcds/internal/server/faultconn"
)

// drained returns one end of a pipe whose peer is continuously read,
// so writes through the wrapper only block on injected faults.
func drained(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, b) }()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a
}

// TestSeverAfterOpsExactSchedule: the Nth I/O op fails with
// ErrInjected, every later op fails too, and the underlying
// connection is really closed (the peer sees the break).
func TestSeverAfterOpsExactSchedule(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	peerErr := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, b)
		peerErr <- err
	}()
	fc := faultconn.Wrap(a, 0, faultconn.Config{SeverAfterOps: 3})
	for op := 1; op <= 2; op++ {
		if _, err := fc.Write([]byte("x")); err != nil {
			t.Fatalf("op %d: %v (sever scheduled for op 3)", op, err)
		}
	}
	var inj *faultconn.ErrInjected
	if _, err := fc.Write([]byte("x")); !errors.As(err, &inj) {
		t.Fatalf("op 3 = %v, want ErrInjected", err)
	}
	if inj.N != 3 || inj.Op != "write" {
		t.Fatalf("injected fault = %+v, want write op 3", inj)
	}
	if _, err := fc.Write([]byte("x")); !errors.As(err, &inj) {
		t.Fatalf("post-sever op = %v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.As(err, &inj) {
		t.Fatalf("post-sever read = %v, want ErrInjected", err)
	}
	// io.Copy on the peer returns (EOF yields a nil copy error) once
	// the sever closed the underlying conn.
	if err := <-peerErr; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer copy ended with %v", err)
	}
}

// TestProbabilisticScheduleReplays: the same (seed, conn id) draws the
// same fault schedule — a failing fault-injection test reruns
// identically.
func TestProbabilisticScheduleReplays(t *testing.T) {
	run := func() []int {
		var faults []int
		fc := faultconn.Wrap(drained(t), 5, faultconn.Config{
			Seed:      99,
			SeverProb: 0.02,
			OnFault: func(conn int, op string, n int, fault string) {
				faults = append(faults, n)
			},
		})
		for i := 0; i < 1000; i++ {
			if _, err := fc.Write([]byte("y")); err != nil {
				break
			}
		}
		return faults
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("sever probability never fired in 1000 ops")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault schedule not reproducible: %v vs %v", first, second)
	}
	// A different conn id draws a different schedule.
	var other []int
	fc := faultconn.Wrap(drained(t), 6, faultconn.Config{
		Seed:      99,
		SeverProb: 0.02,
		OnFault:   func(_ int, _ string, n int, _ string) { other = append(other, n) },
	})
	for i := 0; i < 1000; i++ {
		if _, err := fc.Write([]byte("y")); err != nil {
			break
		}
	}
	if reflect.DeepEqual(first, other) {
		t.Fatalf("conn ids 5 and 6 drew identical schedules %v", first)
	}
}

// TestBlackholeReleasedByClose: from BlackholeAfterOps on, ops hang
// until Close — the half-open peer shape — and then surface
// ErrInjected.
func TestBlackholeReleasedByClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := faultconn.Wrap(a, 1, faultconn.Config{BlackholeAfterOps: 1})
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("z"))
		errCh <- err
	}()
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	var inj *faultconn.ErrInjected
	if err := <-errCh; !errors.As(err, &inj) {
		t.Fatalf("black-holed write = %v, want ErrInjected after Close", err)
	}
	// Close is idempotent (the release channel closes once).
	if err := fc.Close(); err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatal(err)
	}
}
