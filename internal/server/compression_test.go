package server_test

import (
	"net"
	"testing"

	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/server/wire"
	"github.com/fcds/fcds/internal/theta"
)

// TestCompressionNegotiatedRoundTrip drives keyed and string-item
// batches through a client that negotiated per-frame compression and
// verifies the table sees exactly what an uncompressed client would
// have delivered.
func TestCompressionNegotiatedRoundTrip(t *testing.T) {
	tab := newThetaTable(t, 2)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr, client.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Compressed() {
		t.Fatal("server refused compression it should support by default")
	}

	// Highly repetitive batches — the case compression exists for.
	keys := make([]string, 4096)
	vals := make([]uint64, 4096)
	for i := range keys {
		keys[i] = []string{"alpha", "beta", "gamma"}[i%3]
		vals[i] = uint64(i)
	}
	for round := 0; round < 4; round++ {
		if err := c.Ingest("ev", keys, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.IngestStrings("ev", keys[:64], keys[:64]); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := c.PullSnapshot("ev"); err != nil { // drains writer buffers
		t.Fatal(err)
	}
	kind, blob, found, err := c.QueryCompact("ev", "alpha")
	if err != nil || !found {
		t.Fatalf("query: found=%v err=%v", found, err)
	}
	if kind != 1 {
		t.Fatalf("query kind = %d, want KindTheta", kind)
	}
	ca, err := theta.UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	// 4 rounds over the same 1366 distinct values for key "alpha" plus
	// one distinct string item, exact below the sketch's 2048 capacity.
	if got := ca.Estimate(); got != 1367 {
		t.Fatalf("estimate %v, want 1367 distinct items", got)
	}
}

// TestCompressionDisabledServer pins the NoCompression escape hatch:
// the HELLO downshifts (Compressed() reports false) and the same
// client keeps working uncompressed.
func TestCompressionDisabledServer(t *testing.T) {
	tab := newThetaTable(t, 1)
	s, addr := startServer(t, server.Config{NoCompression: true})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr, client.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Compressed() {
		t.Fatal("NoCompression server accepted the compression feature")
	}
	if err := c.Ingest("ev", []string{"k"}, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// dialCompressedRaw opens a raw socket and completes an extended HELLO
// that negotiates the compression feature, returning the socket ready
// for hand-built frames.
func dialCompressedRaw(t *testing.T, addr string) (net.Conn, *[]byte) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	hello := []byte{wire.Version, wire.FeatureCompression}
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	buf := new([]byte)
	_, typ, payload, err := wire.ReadFrame(nc, buf, 0)
	if err != nil || typ != wire.FrameHello {
		t.Fatalf("hello: typ=%#x err=%v", typ, err)
	}
	if len(payload) != 2 || payload[1]&wire.FeatureCompression == 0 {
		t.Fatalf("hello reply %x: compression not negotiated", payload)
	}
	return nc, buf
}

// writeFlagged hand-builds a frame with the compressed flag set —
// wire.WriteFrame never sets flags, which is exactly why hostile
// payloads need this.
func writeFlagged(t *testing.T, nc net.Conn, typ byte, payload []byte) {
	t.Helper()
	frame := make([]byte, wire.HeaderSize+len(payload))
	wire.PutHeader(frame, wire.Version, typ, wire.FlagCompressed, len(payload))
	copy(frame[wire.HeaderSize:], payload)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedHostileFrames extends the hostile-frame suite to the
// compressed path: garbage, truncated, and length-lying compressed
// payloads must each earn an ERR frame on a connection that stays up,
// and a well-formed compressed frame afterwards must still ingest.
func TestCompressedHostileFrames(t *testing.T) {
	tab := newThetaTable(t, 1)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	nc, buf := dialCompressedRaw(t, addr)

	// A valid uncompressed request body to mutate.
	body := wire.AppendString(nil, "ev")
	body = append(body, wire.KeyTypeString)
	body = wire.AppendUvarint(body, 2)
	body = wire.AppendString(body, "a")
	body = wire.AppendString(body, "b")
	body = wire.AppendUint64(body, 10)
	body = wire.AppendUint64(body, 20)
	var comp wire.Compressor
	enc, err := comp.AppendCompressed(nil, body)
	if err != nil {
		t.Fatal(err)
	}

	hostile := [][]byte{
		{0xff, 0xee, 0xdd, 0xcc},  // garbage, not even a valid prefix
		enc[:len(enc)-len(enc)/3], // truncated deflate stream
		append(wire.AppendUvarint(nil, uint64(len(body))+5), enc[1:]...), // length lies
		{}, // empty compressed payload
	}
	for i, p := range hostile {
		writeFlagged(t, nc, wire.FrameKeyedBatch, p)
		_, typ, resp, err := wire.ReadFrame(nc, buf, 0)
		if err != nil || typ != wire.FrameErr {
			t.Fatalf("hostile %d: typ=%#x err=%v", i, typ, err)
		}
		if code, _, _ := wire.ParseErrPayload(resp); code != wire.ErrCodeBadPayload {
			t.Fatalf("hostile %d: error code = %d, want ErrCodeBadPayload", i, code)
		}
	}

	// The connection survived all of it: a good compressed frame works.
	writeFlagged(t, nc, wire.FrameKeyedBatch, enc)
	_, typ, resp, err := wire.ReadFrame(nc, buf, 0)
	if err != nil || typ != wire.FrameOK {
		t.Fatalf("post-hostile ingest: typ=%#x err=%v payload=%x", typ, err, resp)
	}
}

// TestCompressedFlagWithoutNegotiation pins the fatal path: a flagged
// frame on a connection that never negotiated the feature is a framing
// error (the peer is confused or malicious), not a request error.
func TestCompressedFlagWithoutNegotiation(t *testing.T) {
	tab := newThetaTable(t, 1)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameHello, []byte{wire.Version}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	if _, typ, _, err := wire.ReadFrame(nc, &buf, 0); err != nil || typ != wire.FrameHello {
		t.Fatalf("hello: typ=%#x err=%v", typ, err)
	}

	writeFlagged(t, nc, wire.FrameKeyedBatch, []byte{0x01})
	_, typ, resp, err := wire.ReadFrame(nc, &buf, 0)
	if err != nil || typ != wire.FrameErr {
		t.Fatalf("unnegotiated flag: typ=%#x err=%v", typ, err)
	}
	if code, _, _ := wire.ParseErrPayload(resp); code != wire.ErrCodeBadFrame {
		t.Fatalf("error code = %d, want ErrCodeBadFrame", code)
	}
	// Fatal: the server hangs up after a framing error.
	if _, _, _, err := wire.ReadFrame(nc, &buf, 0); err == nil {
		t.Fatal("connection still open after framing error")
	}
}
