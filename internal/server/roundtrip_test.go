package server_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// These property tests pin the end-to-end two-node distributed-
// aggregation path: keyed ingest over loopback into node A, local
// ingest on node B, SNAPSHOT_PULL from A, SNAPSHOT_PUSH into B — B's
// merged rollup and per-key queries must answer exactly like one table
// that ingested everything directly. Every trial is seeded, so
// failures reproduce.

// twoNodes starts two servers, A and B, registers a table on each via
// reg, connects a client to each, and returns the clients.
func twoNodes(t *testing.T, reg func(s *server.Server) error) (ca, cb *client.Client) {
	t.Helper()
	for i := 0; i < 2; i++ {
		s, addr := startServer(t, server.Config{})
		if err := reg(s); err != nil {
			t.Fatal(err)
		}
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if i == 0 {
			ca = c
		} else {
			cb = c
		}
	}
	return ca, cb
}

// TestRoundTripTheta: string-keyed Θ tables. Θ compacts are
// deterministic functions of the per-key item sets, so after the
// snapshot ships, B's merged answers equal the direct table's exactly.
func TestRoundTripTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5e12e))
	newTab := func() *table.ThetaTable[string] {
		tab := table.NewTheta(table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 2, Shards: 16},
			K:     1024, MaxError: 1,
		})
		t.Cleanup(tab.Close)
		return tab
	}
	tabs := []*table.ThetaTable[string]{newTab(), newTab()}
	i := 0
	ca, cb := twoNodes(t, func(s *server.Server) error {
		tab := tabs[i]
		i++
		return server.RegisterTheta(s, "ev", tab)
	})
	direct := newTab()
	dw := direct.Writer(0)

	const keySpace = 24
	keyOf := func(i uint64) string { return fmt.Sprintf("key-%02d", i) }

	// Node A ingests over the wire; node B ingests its own local share;
	// the direct table sees both streams.
	for batch := 0; batch < 30; batch++ {
		n := 1 + rng.Intn(200)
		keys := make([]string, n)
		vals := make([]uint64, n)
		for j := range keys {
			keys[j] = keyOf(rng.Uint64() % keySpace)
			vals[j] = rng.Uint64() % 5000 // overlap across batches and nodes
		}
		target := ca
		if batch%3 == 2 {
			target = cb
		}
		if err := target.Ingest("ev", keys, vals); err != nil {
			t.Fatal(err)
		}
		dw.UpdateKeyedBatch(keys, vals)

		// Some string-item traffic through the same keys.
		if batch%5 == 0 {
			sk := []string{keyOf(rng.Uint64() % keySpace), keyOf(rng.Uint64() % keySpace)}
			items := []string{fmt.Sprintf("it-%d", rng.Intn(3000)), fmt.Sprintf("it-%d", rng.Intn(3000))}
			if err := target.IngestStrings("ev", sk, items); err != nil {
				t.Fatal(err)
			}
			tw := direct.Writer(0)
			tw.UpdateKeyedStringBatch(sk, items)
		}
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}

	// Ship A's snapshot to B; pulling B's own snapshot afterwards
	// drains B's writer slots, so the rollup and per-key assertions
	// below compare fully-propagated state on both sides.
	blob, err := ca.PullSnapshot("ev")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.PushSnapshot("ev", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.PullSnapshot("ev"); err != nil {
		t.Fatal(err)
	}

	direct.Drain()

	// B's merged rollup equals direct ingest.
	_, rblob, err := cb.Rollup("ev")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := theta.UnmarshalCompact(rblob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Estimate(), direct.Rollup().Estimate(); got != want {
		t.Fatalf("merged rollup = %v, direct = %v", got, want)
	}

	// Every key answers identically through B.
	for i := uint64(0); i < keySpace; i++ {
		k := keyOf(i)
		dc, ok := direct.CompactKey(k)
		_, qblob, found, err := cb.QueryCompact("ev", k)
		if err != nil {
			t.Fatal(err)
		}
		if found != ok {
			t.Fatalf("key %s: found=%v, direct ok=%v", k, found, ok)
		}
		if !ok {
			continue
		}
		qc, err := theta.UnmarshalCompact(qblob)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := qc.Estimate(), dc.Estimate(); got != want {
			t.Fatalf("key %s: merged estimate %v, direct %v", k, got, want)
		}
	}
}

// TestRoundTripHLL: uint64-keyed HLL tables (covers the uint64 key
// codec). Register-wise max is split-invariant, so equality is exact.
func TestRoundTripHLL(t *testing.T) {
	rng := rand.New(rand.NewSource(0x8c4))
	newTab := func() *table.HLLTable[uint64] {
		tab := table.NewHLL(table.HLLConfig[uint64]{
			Table:     table.Config[uint64]{Writers: 2, Shards: 16},
			Precision: 11,
		})
		t.Cleanup(tab.Close)
		return tab
	}
	tabs := []*table.HLLTable[uint64]{newTab(), newTab()}
	i := 0
	ca, cb := twoNodes(t, func(s *server.Server) error {
		tab := tabs[i]
		i++
		return server.RegisterHLL(s, "dev", tab)
	})
	direct := newTab()
	dw := direct.Writer(0)

	const keySpace = 12
	for batch := 0; batch < 40; batch++ {
		n := 1 + rng.Intn(400)
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for j := range keys {
			keys[j] = rng.Uint64() % keySpace
			vals[j] = rng.Uint64()
		}
		target := ca
		if batch%2 == 1 {
			target = cb
		}
		if err := target.IngestU64("dev", keys, vals); err != nil {
			t.Fatal(err)
		}
		dw.UpdateKeyedBatch(keys, vals)
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}

	blob, err := ca.PullSnapshot("dev")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.PushSnapshot("dev", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.PullSnapshot("dev"); err != nil { // drain B's live keys
		t.Fatal(err)
	}
	direct.Drain()

	_, rblob, err := cb.Rollup("dev")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := direct.Engine().UnmarshalCompact(rblob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Estimate(), direct.Rollup().Estimate(); got != want {
		t.Fatalf("merged rollup = %v, direct = %v", got, want)
	}

	for k := uint64(0); k < keySpace; k++ {
		dc, ok := direct.CompactKey(k)
		if !ok {
			continue
		}
		_, qblob, found, err := cb.QueryCompactU64("dev", k)
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
		qc, err := direct.Engine().UnmarshalCompact(qblob)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := qc.Estimate(), dc.Estimate(); got != want {
			t.Fatalf("key %d: merged estimate %v, direct %v", k, got, want)
		}
	}
}

// TestRoundTripQuantiles: string-keyed quantiles tables. Merge order
// may differ from direct ingest (compaction coins), so sample counts
// must match exactly and quantiles statistically (the engine property
// test's comparison, through the wire).
func TestRoundTripQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9a41))
	const k = 128
	newTab := func() *table.QuantilesTable[string] {
		tab := table.NewQuantiles(table.QuantilesConfig[string]{
			Table: table.Config[string]{Writers: 2, Shards: 16},
			K:     k,
		})
		t.Cleanup(tab.Close)
		return tab
	}
	tabs := []*table.QuantilesTable[string]{newTab(), newTab()}
	i := 0
	ca, cb := twoNodes(t, func(s *server.Server) error {
		tab := tabs[i]
		i++
		return server.RegisterQuantiles(s, "lat", tab)
	})

	// One key, a shuffled 0..n-1 stream split across the two nodes: the
	// true φ-quantile of the union is φ·n.
	n := 4000 + rng.Intn(8000)
	perm := rng.Perm(n)
	keys := make([]string, 0, 512)
	vals := make([]float64, 0, 512)
	flushAt := func(c *client.Client) {
		if err := c.IngestFloat("lat", keys, vals); err != nil {
			t.Fatal(err)
		}
		keys, vals = keys[:0], vals[:0]
	}
	for idx, v := range perm {
		keys = append(keys, "api")
		vals = append(vals, float64(v))
		if len(keys) == 512 {
			if idx%2 == 0 {
				flushAt(ca)
			} else {
				flushAt(cb)
			}
		}
	}
	if len(keys) > 0 {
		flushAt(ca)
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}

	blob, err := ca.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.PushSnapshot("lat", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.PullSnapshot("lat"); err != nil { // drain B's live keys
		t.Fatal(err)
	}

	_, qblob, found, err := cb.QueryCompact("lat", "api")
	if err != nil || !found {
		t.Fatalf("query: found=%v err=%v", found, err)
	}
	sk, err := quantiles.Unmarshal(qblob)
	if err != nil {
		t.Fatal(err)
	}
	snap := sk.Snapshot()
	if got := snap.N(); got != uint64(n) {
		t.Fatalf("merged sample count = %d, want %d", got, n)
	}
	eps := 4 * quantiles.NormalizedRankError(k)
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		got := snap.Quantile(phi)
		if dev := math.Abs(got/float64(n) - phi); dev > eps {
			t.Fatalf("q(%v) = %v of n=%d (rank dev %.4f > %.4f)", phi, got, n, dev, eps)
		}
	}
}
