package wire

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
)

// TestCompressRoundTripProperty drives random payloads — varying
// lengths, varying entropy from all-zero to incompressible — through
// AppendCompressed and Decompress and requires exact reconstruction,
// with encoder and decoder state reused across iterations the way a
// connection reuses them.
func TestCompressRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	var comp Compressor
	var dec Decompressor
	for i := 0; i < 200; i++ {
		n := rng.Intn(1 << 14)
		payload := make([]byte, n)
		switch i % 4 {
		case 0: // all zero — maximally compressible
		case 1: // random — incompressible
			rng.Read(payload)
		case 2: // repetitive keyed-batch shape: few distinct 8-byte runs
			for j := 0; j+8 <= n; j += 8 {
				copy(payload[j:], []byte{byte(j % 5), 0, 0, 0, 0, 0, 0, 0})
			}
		default: // low-entropy text
			for j := range payload {
				payload[j] = 'a' + byte(rng.Intn(4))
			}
		}
		enc, err := comp.AppendCompressed(nil, payload)
		if err != nil {
			t.Fatalf("iter %d: compress: %v", i, err)
		}
		got, err := dec.Decompress(enc, 0)
		if err != nil {
			t.Fatalf("iter %d: decompress: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("iter %d: round trip mismatch (%d bytes in, %d out)", i, n, len(got))
		}
	}
}

// TestDecompressHostile pins every decoder failure mode: each must
// return an error (never panic, never silently truncate), leaving the
// decoder usable for the next frame.
func TestDecompressHostile(t *testing.T) {
	var comp Compressor
	var dec Decompressor
	payload := bytes.Repeat([]byte("keyrun_A"), 512)
	enc, err := comp.AppendCompressed(nil, payload)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func() []byte
	}{
		{"empty", func() []byte { return nil }},
		{"prefix only", func() []byte { return enc[:1] }},
		{"truncated stream", func() []byte { return enc[:len(enc)/2] }},
		{"corrupt byte", func() []byte {
			c := bytes.Clone(enc)
			c[len(c)/2] ^= 0xff
			return c
		}},
		{"trailing garbage", func() []byte { return append(bytes.Clone(enc), 0xde, 0xad) }},
		{"oversized declaration", func() []byte {
			c := AppendUvarint(nil, uint64(DefaultMaxFrame)+1)
			return append(c, enc[1:]...)
		}},
		{"length shorter than stream", func() []byte {
			c := AppendUvarint(nil, uint64(len(payload)-1))
			return append(c, enc[uvarintLen(uint64(len(payload))):]...)
		}},
	}
	for _, tc := range cases {
		if _, err := dec.Decompress(tc.mut(), 0); err == nil {
			t.Errorf("%s: decompress succeeded, want error", tc.name)
		}
	}
	// The decoder survived every hostile input and still works.
	got, err := dec.Decompress(enc, 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-hostile decompress: err=%v", err)
	}
}

func uvarintLen(v uint64) int { return len(AppendUvarint(nil, v)) }

// TestFrameReaderBurst exercises the peek-based read path: pipelined
// frames decoded in place out of one window, a frame larger than the
// window spilling to the owned buffer, and Buffered reporting only the
// bytes beyond the current frame.
func TestFrameReaderBurst(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()

	small := bytes.Repeat([]byte{0xab}, 100)
	big := bytes.Repeat([]byte{0xcd}, 10<<10) // exceeds the 4 KiB window below
	go func() {
		var out []byte
		out = AppendHeader(out, Version, FrameHello, len(small))
		out = append(out, small...)
		out = AppendHeader(out, Version, FrameKeyedBatch, len(small))
		out = append(out, small...)
		out = AppendHeader(out, Version, FrameSnapshotPush, len(big))
		out = append(out, big...)
		cconn.Write(out)
	}()

	fr := NewFrameReader(sconn, 4<<10, 0)
	ver, typ, flags, p, err := fr.Next()
	if err != nil || ver != Version || typ != FrameHello || flags != 0 || !bytes.Equal(p, small) {
		t.Fatalf("frame 1: typ=%#x flags=%#x err=%v", typ, flags, err)
	}
	first := p
	if _, typ, _, p, err = fr.Next(); err != nil || typ != FrameKeyedBatch || !bytes.Equal(p, small) {
		t.Fatalf("frame 2: typ=%#x err=%v", typ, err)
	}
	_ = first // frame 1's view is dead here by contract; only its former content mattered
	if _, typ, _, p, err = fr.Next(); err != nil || typ != FrameSnapshotPush || !bytes.Equal(p, big) {
		t.Fatalf("spill frame: typ=%#x err=%v", typ, err)
	}
	if got := fr.Buffered(); got != 0 {
		t.Fatalf("Buffered after drain = %d, want 0", got)
	}
}

// TestFrameReaderRejectsReservedByte pins the strictness FrameReader
// inherits from ReadFrame: a nonzero reserved byte 7 is a framing
// error. Byte 6 (flags) is returned raw for the caller to police.
func TestFrameReaderRejectsReservedByte(t *testing.T) {
	var raw []byte
	raw = AppendHeader(raw, Version, FrameHello, 1)
	raw = append(raw, 0x7f)
	raw[7] = 1 // reserved byte
	fr := NewFrameReader(bytes.NewReader(raw), 0, 0)
	if _, _, _, _, err := fr.Next(); err == nil {
		t.Fatal("nonzero reserved byte accepted")
	}

	raw = raw[:0]
	raw = AppendHeader(raw, Version, FrameHello, 1)
	raw = append(raw, 0x7f)
	raw[6] = FlagCompressed
	fr = NewFrameReader(bytes.NewReader(raw), 0, 0)
	_, _, flags, _, err := fr.Next()
	if err != nil || flags != FlagCompressed {
		t.Fatalf("flags byte: flags=%#x err=%v (want raw passthrough)", flags, err)
	}
}
