package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip pins the header layout byte for byte and the
// read/write round trip, including buffer reuse across frames.
func TestFrameRoundTrip(t *testing.T) {
	var out bytes.Buffer
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xab}, 3000),
		[]byte("tail"),
	}
	for i, p := range payloads {
		if err := WriteFrame(&out, Version, byte(0x10+i), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Header layout of the first frame.
	raw := out.Bytes()
	if got := int(raw[0]) | int(raw[1])<<8 | int(raw[2])<<16 | int(raw[3])<<24; got != 5 {
		t.Fatalf("length field = %d, want 5", got)
	}
	if raw[4] != Version || raw[5] != 0x10 || raw[6] != 0 || raw[7] != 0 {
		t.Fatalf("header bytes = % x", raw[4:8])
	}

	var buf []byte
	for i, want := range payloads {
		ver, typ, payload, err := ReadFrame(&out, &buf, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ver != Version || typ != byte(0x10+i) || !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: ver=%d typ=%#x payload %d bytes", i, ver, typ, len(payload))
		}
	}
	if _, _, _, err := ReadFrame(&out, &buf, 0); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

// TestFrameLimits pins oversized-frame and reserved-byte rejection.
func TestFrameLimits(t *testing.T) {
	var out bytes.Buffer
	if err := WriteFrame(&out, Version, FrameHealth, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	if _, _, _, err := ReadFrame(bytes.NewReader(out.Bytes()), &buf, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}

	raw := append([]byte{}, out.Bytes()...)
	raw[6] = 1 // reserved byte must be zero
	if _, _, _, err := ReadFrame(bytes.NewReader(raw), &buf, 0); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("reserved byte set: %v, want ErrBadHeader", err)
	}

	// Truncated payload.
	trunc := out.Bytes()[:HeaderSize+10]
	if _, _, _, err := ReadFrame(bytes.NewReader(trunc), &buf, 0); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("truncated payload: %v, want ErrShortPayload", err)
	}
}

// TestReaderCursor pins the payload cursor: typed reads, the latched
// error, and that post-error reads return zero values.
func TestReaderCursor(t *testing.T) {
	var p []byte
	p = AppendUvarint(p, 300)
	p = AppendString(p, "abc")
	p = AppendUint64(p, 0xdeadbeef)
	p = AppendFloat64(p, 3.5)

	r := Reader{Buf: p}
	if v := r.Uvarint(); v != 300 {
		t.Fatalf("uvarint = %d", v)
	}
	if s := r.String(); s != "abc" {
		t.Fatalf("string = %q", s)
	}
	if v := r.Uint64(); v != 0xdeadbeef {
		t.Fatalf("uint64 = %#x", v)
	}
	if f := r.Float64(); f != 3.5 {
		t.Fatalf("float64 = %v", f)
	}
	if r.Err != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err, r.Remaining())
	}
	// Reading past the end latches the error and stays latched.
	if v := r.Uint64(); v != 0 || r.Err == nil {
		t.Fatalf("past-end read: v=%d err=%v", v, r.Err)
	}
	if s := r.String(); s != "" {
		t.Fatalf("post-error read = %q, want zero value", s)
	}
}

// TestErrPayload pins the error-frame payload round trip.
func TestErrPayload(t *testing.T) {
	p := AppendErrPayload(nil, ErrCodeUnknownTable, "no such table")
	code, msg, err := ParseErrPayload(p)
	if err != nil || code != ErrCodeUnknownTable || msg != "no such table" {
		t.Fatalf("parse = (%d, %q, %v)", code, msg, err)
	}
	if _, _, err := ParseErrPayload([]byte{0x80}); err == nil {
		t.Fatal("malformed error payload parsed")
	}
}
