// Package wire defines the fcds network ingest protocol: a
// length-prefixed binary frame format shared by the server
// (internal/server) and the client (internal/server/client). The
// package is deliberately tiny — frame header codec, frame type and
// error-code registries, and an allocation-free payload cursor — so
// both endpoints speak from one definition and neither imports the
// other.
//
// # Frame layout (little endian)
//
//	offset  size  field
//	0       4     payload length N (bytes after the 8-byte header)
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       1     frame flags (0 unless HELLO negotiated the feature)
//	7       1     reserved (0)
//	8       N     payload
//
// Every request frame receives exactly one response frame, in request
// order — that in-order contract is what makes client-side pipelining
// trivial (a FIFO of pending operations, no request ids on the wire).
//
// # Version negotiation
//
// The first frame on a connection must be HELLO: the client sends the
// highest protocol version it speaks (1-byte payload), the server
// replies with a HELLO carrying min(client, server) — the negotiated
// version every subsequent frame on the connection must carry in its
// header. A client newer than the server simply downshifts; a version
// the server cannot serve at all is answered with an ERR frame
// (ErrCodeVersion) and the connection is closed.
//
// A client MAY append a second HELLO payload byte of feature bits it
// wants (FeatureCompression); the server echoes a HELLO of the same
// payload shape with the bits it accepted. Servers predating the
// feature byte reject the two-byte HELLO, and one-byte HELLOs never
// see a feature reply — the extension is append-only in both
// directions, so old and new endpoints interoperate whenever the
// client does not opt in. Header byte 6 carries per-frame flags
// (FlagCompressed) and MUST stay zero unless the matching feature was
// negotiated; receivers treat an un-negotiated or unknown flag bit as
// a fatal framing error, preserving the historical reserved-must-be-
// zero strictness.
//
// # Payload encodings
//
// Integers are uvarints unless noted; keys follow the FCTB snapshot
// conventions (string keys: uvarint length + bytes; uint64 keys: 8
// bytes LE); sketch values are 8 bytes LE (uint64 items for Θ/HLL,
// IEEE-754 bits for quantiles samples — the table's family decides the
// interpretation). Snapshot blobs are verbatim FCTB images (see
// internal/table's serde format), so a shipped snapshot is validated
// by the same parser that guards on-disk spills.
package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the highest protocol version this build speaks.
const Version byte = 1

// HeaderSize is the fixed frame-header size in bytes.
const HeaderSize = 8

// DefaultMaxFrame bounds a frame's payload size (16 MiB): large enough
// for snapshot shipping of sizeable tables, small enough that one
// malicious or corrupt length prefix cannot OOM the receiver.
const DefaultMaxFrame = 16 << 20

// Frame types. Requests are < 0x80, responses >= 0x80; HELLO is used
// in both directions.
const (
	// FrameHello negotiates the protocol version (both directions).
	FrameHello byte = 0x01
	// FrameKeyedBatch ingests parallel (key, 8-byte value) slices into
	// a named table: table name, key-type byte, count, keys, values.
	FrameKeyedBatch byte = 0x02
	// FrameKeyedStringBatch ingests parallel (key, string item) slices
	// into a named Θ or HLL table (items are hashed server-side).
	FrameKeyedStringBatch byte = 0x03
	// FrameSnapshotPush ships an FCTB table snapshot into the named
	// table's remote state: table name, source id, then the blob. A
	// non-empty source id REPLACES that source's previously pushed
	// snapshot — the contract for nodes that periodically ship their
	// full cumulative snapshot (fcds-serve -push), where re-merging
	// every tick would double-count non-idempotent families
	// (quantiles re-counts samples; Θ/HLL merges are idempotent). An
	// empty source id merges into a shared aggregate: one-shot ships
	// and delta-shipping pushers.
	FrameSnapshotPush byte = 0x04
	// FrameSnapshotPull requests the named table's full merged snapshot
	// (live table + every received remote snapshot) as an FCTB blob.
	FrameSnapshotPull byte = 0x05
	// FrameQuery requests one key's merged compact sketch: table name,
	// key-type byte, key. Response value: found byte, kind byte, blob.
	FrameQuery byte = 0x06
	// FrameRollup requests the all-keys merged compact (live + remote):
	// table name. Response value: kind byte, blob.
	FrameRollup byte = 0x07
	// FrameHealth requests server counters (empty payload).
	FrameHealth byte = 0x08
	// FrameWindowSnapshot ships a windowed table's sealed-epoch FCTB
	// snapshot: table name, source id (must be non-empty — window ships
	// are inherently per-source), uvarint epoch, then the blob. The
	// epoch is the shipper's rotation counter: the receiver replaces
	// the source's previous window snapshot only when the epoch is >=
	// the last one it applied from that source, so a retried or
	// duplicated frame (a reconnecting client re-shipping its outbox)
	// is idempotent and a reordered stale ship can never roll a newer
	// window back. A restarted shipper's epoch counter resets to zero —
	// it must ship under a fresh source id (the default host/pid id
	// changes across restarts) or its pushes would be rejected as
	// stale.
	FrameWindowSnapshot byte = 0x09

	// FrameOK acknowledges an ingest or push (empty payload).
	FrameOK byte = 0x81
	// FrameValue carries a request-specific response payload.
	FrameValue byte = 0x82
	// FrameErr reports a failed request: uvarint code, uvarint message
	// length, message bytes. The connection stays usable unless the
	// code is fatal (ErrCodeVersion, ErrCodeBadFrame).
	FrameErr byte = 0x83
)

// Error codes carried by FrameErr.
const (
	ErrCodeBadFrame     uint64 = 1 // malformed header or payload framing (fatal)
	ErrCodeVersion      uint64 = 2 // no common protocol version (fatal)
	ErrCodeUnknownTable uint64 = 3 // named table not registered
	ErrCodeBadPayload   uint64 = 4 // payload failed validation
	ErrCodeUnsupported  uint64 = 5 // operation not supported by the table's family
	ErrCodeInternal     uint64 = 6 // server-side failure (serialization, merge)
	ErrCodeShutdown     uint64 = 7 // server is draining; retry elsewhere
)

// Key-type bytes, aligned with the FCTB snapshot key registry.
const (
	KeyTypeString byte = 1
	KeyTypeUint64 byte = 2
)

// Per-frame flag bits (header byte 6). A flag is only valid after both
// endpoints negotiated the matching HELLO feature; any other nonzero
// bit is a fatal framing error.
const (
	// FlagCompressed marks a deflate-compressed payload: uvarint
	// uncompressed length, then the deflate stream (see Compressor /
	// Decompressor). The header's length field still counts the bytes
	// on the wire, so framing never depends on decompression.
	FlagCompressed byte = 1 << 0
)

// HELLO feature bits (optional second HELLO payload byte).
const (
	// FeatureCompression offers/accepts FlagCompressed keyed-batch
	// payloads on this connection.
	FeatureCompression byte = 1 << 0
)

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadHeader     = errors.New("wire: malformed frame header")
	ErrShortPayload  = errors.New("wire: truncated payload")
)

// AppendHeader appends an 8-byte frame header for a payload of n bytes.
func AppendHeader(dst []byte, version, typ byte, n int) []byte {
	var h [HeaderSize]byte
	PutHeader(h[:], version, typ, 0, n)
	return append(dst, h[:]...)
}

// PutHeader writes an 8-byte frame header into hdr (len >= HeaderSize).
// Writers that reserve header space up front and patch it once the
// payload length is known use this instead of AppendHeader.
func PutHeader(hdr []byte, version, typ, flags byte, n int) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = version
	hdr[5] = typ
	hdr[6] = flags
	hdr[7] = 0
}

// ReadFrame reads one frame from r into *buf (grown and reused across
// calls — the per-connection zero-alloc read path) and returns the
// header fields plus the payload slice aliasing *buf. maxFrame bounds
// the payload length (<= 0 means DefaultMaxFrame).
func ReadFrame(r io.Reader, buf *[]byte, maxFrame int) (version, typ byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [HeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	// Bound the length while still unsigned: converting to int first
	// would wrap lengths >= 2^31 negative on 32-bit platforms, slip past
	// the maxFrame check, and panic slicing the buffer.
	n32 := binary.LittleEndian.Uint32(hdr[0:4])
	version, typ = hdr[4], hdr[5]
	if hdr[6] != 0 || hdr[7] != 0 {
		return version, typ, nil, ErrBadHeader
	}
	if uint64(n32) > uint64(maxFrame) {
		return version, typ, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n32, maxFrame)
	}
	n := int(n32)
	if cap(*buf) < n {
		*buf = make([]byte, n, n+n/2)
	}
	payload = (*buf)[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return version, typ, nil, fmt.Errorf("%w: %v", ErrShortPayload, err)
	}
	return version, typ, payload, nil
}

// WriteFrame writes one frame (header + payload) to w.
func WriteFrame(w io.Writer, version, typ byte, payload []byte) error {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = version
	hdr[5] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendErrPayload encodes a FrameErr payload.
func AppendErrPayload(dst []byte, code uint64, msg string) []byte {
	dst = binary.AppendUvarint(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// ParseErrPayload decodes a FrameErr payload.
func ParseErrPayload(p []byte) (code uint64, msg string, err error) {
	r := Reader{Buf: p}
	code = r.Uvarint()
	msg = string(r.Bytes(int(r.Uvarint())))
	if r.Err != nil {
		return 0, "", r.Err
	}
	return code, msg, nil
}

// Reader is an allocation-free cursor over a payload. Decoding methods
// latch the first error in Err and return zero values afterwards, so
// call sites read a whole payload and check Err once.
type Reader struct {
	Buf []byte
	Err error
}

func (r *Reader) fail() {
	if r.Err == nil {
		r.Err = ErrShortPayload
	}
}

// Uvarint reads one uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.Buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Buf = r.Buf[n:]
	return v
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.Err != nil {
		return 0
	}
	if len(r.Buf) < 1 {
		r.fail()
		return 0
	}
	b := r.Buf[0]
	r.Buf = r.Buf[1:]
	return b
}

// Uint64 reads 8 bytes LE.
func (r *Reader) Uint64() uint64 {
	if r.Err != nil {
		return 0
	}
	if len(r.Buf) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.Buf)
	r.Buf = r.Buf[8:]
	return v
}

// Float64 reads 8 bytes LE as IEEE-754 bits.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bytes reads exactly n bytes, aliasing the payload (no copy). A
// negative n is treated as a framing error.
func (r *Reader) Bytes(n int) []byte {
	if r.Err != nil {
		return nil
	}
	if n < 0 || len(r.Buf) < n {
		r.fail()
		return nil
	}
	b := r.Buf[:n]
	r.Buf = r.Buf[n:]
	return b
}

// String reads a uvarint-length-prefixed string (one allocation — the
// copy out of the read buffer; table keys are retained by the table so
// they cannot alias a reused buffer).
func (r *Reader) String() string {
	n := r.Uvarint()
	return string(r.Bytes(int(n)))
}

// StringView reads a uvarint-length-prefixed string as a byte slice
// aliasing the payload — for transient use (hashing) only.
func (r *Reader) StringView() []byte {
	n := r.Uvarint()
	return r.Bytes(int(n))
}

// Rest returns all remaining bytes.
func (r *Reader) Rest() []byte {
	b := r.Buf
	r.Buf = nil
	return b
}

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.Buf) }

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendUvarint re-exports binary.AppendUvarint for call-site symmetry.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendUint64 appends 8 bytes LE.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendFloat64 appends a float64 as 8 IEEE-754 bytes LE.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// DefaultReadBurst is the default FrameReader window (128 KiB): big
// enough that a burst of pipelined keyed batches is pulled off the
// socket in one read syscall and decoded in place, small enough to be
// cheap per connection.
const DefaultReadBurst = 128 << 10

// FrameReader reads frames through a buffered burst window sized from
// the length prefix: Next peeks the header, then peeks the whole
// payload out of the window — the returned payload aliases the
// window's buffer, zero copies off the socket — and defers the discard
// to the following Next call, so the payload stays valid while the
// caller decodes it. Frames larger than the window (snapshot blobs)
// spill into an owned buffer reused across calls. Not safe for
// concurrent use.
type FrameReader struct {
	br       *bufio.Reader
	spill    []byte // owned payload buffer for frames larger than the window
	pend     int    // bytes of the current peeked frame, discarded on the next call
	maxFrame int
}

// NewFrameReader wraps r in a burst window of size bytes (<= 0 means
// DefaultReadBurst) bounding payloads at maxFrame (<= 0 means
// DefaultMaxFrame).
func NewFrameReader(r io.Reader, size, maxFrame int) *FrameReader {
	if size <= 0 {
		size = DefaultReadBurst
	}
	if size < 4<<10 {
		size = 4 << 10
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{br: bufio.NewReaderSize(r, size), maxFrame: maxFrame}
}

// Next returns the next frame. The payload is only valid until the
// following Next call. Flags are returned raw — validating them
// against the negotiated features is the caller's job; the reserved
// byte 7 must still be zero.
func (f *FrameReader) Next() (version, typ, flags byte, payload []byte, err error) {
	if f.pend > 0 {
		if _, err := f.br.Discard(f.pend); err != nil {
			return 0, 0, 0, nil, err
		}
		f.pend = 0
	}
	hdr, err := f.br.Peek(HeaderSize)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, 0, nil, err
	}
	n32 := binary.LittleEndian.Uint32(hdr[0:4])
	version, typ, flags = hdr[4], hdr[5], hdr[6]
	if hdr[7] != 0 {
		return version, typ, flags, nil, ErrBadHeader
	}
	if uint64(n32) > uint64(f.maxFrame) {
		return version, typ, flags, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n32, f.maxFrame)
	}
	n := int(n32)
	if total := HeaderSize + n; total <= f.br.Size() {
		full, err := f.br.Peek(total)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("%w: %v", ErrShortPayload, io.ErrUnexpectedEOF)
			}
			return version, typ, flags, nil, err
		}
		f.pend = total
		return version, typ, flags, full[HeaderSize:], nil
	}
	// Frame exceeds the window: consume the header and read the payload
	// into the owned spill buffer.
	if _, err := f.br.Discard(HeaderSize); err != nil {
		return version, typ, flags, nil, err
	}
	if cap(f.spill) < n {
		f.spill = make([]byte, n, n+n/2)
	}
	payload = f.spill[:n]
	if _, err := io.ReadFull(f.br, payload); err != nil {
		return version, typ, flags, nil, fmt.Errorf("%w: %v", ErrShortPayload, err)
	}
	return version, typ, flags, payload, nil
}

// Buffered reports the bytes available beyond the current frame — the
// pipelining signal: while it is nonzero another request is already in
// the window, so a server can hold its response flush.
func (f *FrameReader) Buffered() int { return f.br.Buffered() - f.pend }

// appendWriter adapts an append sink to io.Writer for flate.
type appendWriter struct{ buf *[]byte }

func (a appendWriter) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}

// Compressor deflate-compresses payloads for FlagCompressed frames,
// reusing its encoder state across calls. Not safe for concurrent use.
type Compressor struct {
	zw *flate.Writer
}

// AppendCompressed appends the compressed encoding of payload — uvarint
// uncompressed length, then the deflate stream — and returns the
// extended slice. BestSpeed: the flag exists to trade a little CPU for
// wire bytes on highly repetitive keyed batches, not to chase ratio.
func (c *Compressor) AppendCompressed(dst, payload []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	aw := appendWriter{&dst}
	if c.zw == nil {
		c.zw, _ = flate.NewWriter(aw, flate.BestSpeed)
	} else {
		c.zw.Reset(aw)
	}
	if _, err := c.zw.Write(payload); err != nil {
		return dst, err
	}
	if err := c.zw.Close(); err != nil {
		return dst, err
	}
	return dst, nil
}

// Decompressor inflates FlagCompressed payloads, reusing its decoder
// state and output buffer across calls (the returned slice is only
// valid until the next call). Not safe for concurrent use.
type Decompressor struct {
	src bytes.Reader
	zr  io.ReadCloser
	buf []byte
}

// Decompress decodes a compressed payload, bounding the declared
// uncompressed length at maxOut (<= 0 means DefaultMaxFrame). Every
// failure mode — truncated prefix, oversized declaration, corrupt
// stream, length mismatch, trailing bytes — returns an error without
// touching connection framing (the outer frame length was intact).
func (d *Decompressor) Decompress(payload []byte, maxOut int) ([]byte, error) {
	if maxOut <= 0 {
		maxOut = DefaultMaxFrame
	}
	n64, un := binary.Uvarint(payload)
	if un <= 0 {
		return nil, fmt.Errorf("%w: bad uncompressed-length prefix", ErrShortPayload)
	}
	if n64 > uint64(maxOut) {
		return nil, fmt.Errorf("%w: declared uncompressed length %d > %d", ErrFrameTooLarge, n64, maxOut)
	}
	n := int(n64)
	d.src.Reset(payload[un:])
	if d.zr == nil {
		d.zr = flate.NewReader(&d.src)
	} else if err := d.zr.(flate.Resetter).Reset(&d.src, nil); err != nil {
		return nil, err
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n, n+n/2)
	}
	out := d.buf[:n]
	if _, err := io.ReadFull(d.zr, out); err != nil {
		return nil, fmt.Errorf("wire: corrupt compressed payload: %v", err)
	}
	// The stream must end exactly at the declared length with no bytes
	// left over after the deflate terminator.
	var one [1]byte
	if m, _ := d.zr.Read(one[:]); m != 0 {
		return nil, errors.New("wire: compressed payload longer than declared")
	}
	if d.src.Len() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after compressed stream", d.src.Len())
	}
	return out, nil
}
