package server_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/wire"
	"github.com/fcds/fcds/internal/table"
)

// These tests pin the durability-journal contract: every named push,
// window ship and eviction spill is journaled before it is applied, a
// fresh server that replays the journal (on top of whatever checkpoints
// it restored) reaches exactly the crashed server's durable state, torn
// tails truncate cleanly, LSN watermarks stop checkpointed records from
// double-applying, and self-compaction never changes the recovered
// state versus a full replay.

// journaledTrioServer is newTrioServer plus an attached journal in dir.
func journaledTrioServer(t *testing.T, dir string) (*server.Server, string, *server.Journal) {
	t.Helper()
	s, addr := newTrioServer(t)
	j, err := server.OpenJournal(dir, server.JournalConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	s.AttachJournal(j)
	return s, addr, j
}

// edgeLatBlob builds a cumulative quantiles snapshot with samples
// lo..hi-1 under one key and returns its FCTB blob — the payload shape
// an edge ships upstream.
func edgeLatBlob(t *testing.T, lo, hi int) []byte {
	t.Helper()
	_, addr := newTrioServer(t)
	c := dialT(t, addr)
	keys := make([]string, 0, hi-lo)
	vals := make([]float64, 0, hi-lo)
	for v := lo; v < hi; v++ {
		keys = append(keys, "api")
		vals = append(vals, float64(v))
	}
	if err := c.IngestFloat("lat", keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	blob, err := c.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// newestJournalFile returns the path of the highest-sequence wal-*.fcjl
// file in dir.
func newestJournalFile(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".fcjl") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no journal files written")
	}
	sort.Strings(names) // zero-padded hex: lexical == numeric
	return filepath.Join(dir, names[len(names)-1])
}

// TestJournalReplayRestoresState: named pushes, a window ship and a
// direct eviction spill into a journaled server, no checkpoint at all —
// a fresh server replaying the journal answers every rollup
// identically. This is the crash window the journal exists for: state
// that arrived after the last checkpoint (or before the first).
func TestJournalReplayRestoresState(t *testing.T) {
	dir := t.TempDir()
	srvA, addrA, _ := journaledTrioServer(t, dir)
	ca := dialT(t, addrA)

	// Named push: 500 quantile samples from edge-1.
	if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLatBlob(t, 0, 500)); err != nil {
		t.Fatal(err)
	}
	// Window ship: theta state from a second edge, epoch-tagged.
	_, addrE := newTrioServer(t)
	ce := dialT(t, addrE)
	if err := ce.Ingest("ev", []string{"a", "b", "c"}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ce.Flush(); err != nil {
		t.Fatal(err)
	}
	evBlob, err := ce.PullSnapshot("ev")
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.PushWindowSnapshot("ev", "win-1", 7, evBlob); err != nil {
		t.Fatal(err)
	}
	// Eviction spill through the uint64 path: fold an HLL compact for a
	// key that just fell out of the "dev" table.
	if err := ce.IngestU64("dev", []uint64{1, 2, 3, 4}, []uint64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := ce.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.PullSnapshot("dev"); err != nil { // drain before rollup
		t.Fatal(err)
	}
	_, devCompact, err := ce.Rollup("dev")
	if err != nil {
		t.Fatal(err)
	}
	if err := srvA.SpillEvictU64("dev", 99, devCompact); err != nil {
		t.Fatal(err)
	}

	wantEv := rollupThetaEstimate(t, ca, "ev")
	wantDev := rollupHLLEstimate(t, ca, "dev")
	if n := rollupQuantilesN(t, ca, "lat"); n != 500 {
		t.Fatalf("journaled lat N = %d, want 500", n)
	}

	// "Crash": nothing carried over but the journal directory.
	srvB, addrB := newTrioServer(t)
	st, err := srvB.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Skipped != 0 || st.TornBytes != 0 {
		t.Fatalf("replay stats = %+v, want 3 records applied cleanly", st)
	}
	cb := dialT(t, addrB)
	if got := rollupThetaEstimate(t, cb, "ev"); got != wantEv {
		t.Fatalf("replayed ev estimate = %v, want %v", got, wantEv)
	}
	if got := rollupHLLEstimate(t, cb, "dev"); got != wantDev {
		t.Fatalf("replayed dev estimate = %v, want %v", got, wantDev)
	}
	if got := rollupQuantilesN(t, cb, "lat"); got != 500 {
		t.Fatalf("replayed lat N = %d, want 500", got)
	}

	// Replay is idempotent at the server level too: the records are now
	// at or below each table's LSN watermark, so a second replay (an
	// operator double-running recovery) applies nothing.
	st, err = srvB.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.Skipped != 3 {
		t.Fatalf("second replay stats = %+v, want 0 applied / 3 skipped", st)
	}
	if got := rollupQuantilesN(t, cb, "lat"); got != 500 {
		t.Fatalf("lat N after double replay = %d, want 500 (no double count)", got)
	}
}

// TestJournalTornTailTruncates: a crash mid-append leaves a torn final
// frame — a length prefix promising more bytes than exist, or a full
// frame with a bad CRC. Replay must truncate there, keep everything
// before it, and report the dropped bytes.
func TestJournalTornTailTruncates(t *testing.T) {
	cases := []struct {
		name string
		junk func() []byte
	}{
		{"short-write", func() []byte {
			// Claims 50 bytes after the length field, delivers 10.
			b := binary.LittleEndian.AppendUint32(nil, 50)
			return append(b, []byte("tornrecord")...)
		}},
		{"bad-crc", func() []byte {
			// A complete frame whose checksum is garbage.
			b := binary.LittleEndian.AppendUint32(nil, 30)
			for i := 0; i < 30; i++ {
				b = append(b, byte(i*7))
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			_, addrA, jnl := journaledTrioServer(t, dir)
			ca := dialT(t, addrA)
			if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLatBlob(t, 0, 300)); err != nil {
				t.Fatal(err)
			}
			if err := jnl.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(newestJournalFile(t, dir), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			junk := tc.junk()
			if _, err := f.Write(junk); err != nil {
				t.Fatal(err)
			}
			f.Close()

			srvB, addrB := newTrioServer(t)
			st, err := srvB.ReplayJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.Records != 1 || st.TornBytes != int64(len(junk)) {
				t.Fatalf("replay stats = %+v, want 1 record + %d torn bytes", st, len(junk))
			}
			if got := rollupQuantilesN(t, dialT(t, addrB), "lat"); got != 300 {
				t.Fatalf("replayed lat N = %d, want 300", got)
			}
		})
	}
}

// TestJournalLSNGatingNoDoubleCount: records covered by a checkpoint's
// LSN watermark are skipped on replay. The eviction spill before the
// checkpoint is the dangerous one — it has merge semantics, so without
// the watermark it would re-fold and inflate the quantiles count.
func TestJournalLSNGatingNoDoubleCount(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	srvA, addrA, _ := journaledTrioServer(t, jdir)
	ca := dialT(t, addrA)

	// Before the checkpoint: a named push (replace) and an eviction
	// spill (merge) — 500 + 200 samples.
	if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLatBlob(t, 0, 500)); err != nil {
		t.Fatal(err)
	}
	_, addrS := newTrioServer(t)
	cs := dialT(t, addrS)
	spillKeys := make([]string, 200)
	spillVals := make([]float64, 200)
	for i := range spillKeys {
		spillKeys[i] = "cold"
		spillVals[i] = float64(i)
	}
	if err := cs.IngestFloat("lat", spillKeys, spillVals); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.PullSnapshot("lat"); err != nil {
		t.Fatal(err)
	}
	_, spillCompact, err := cs.Rollup("lat")
	if err != nil {
		t.Fatal(err)
	}
	if err := srvA.SpillEvictString("lat", "cold", spillCompact); err != nil {
		t.Fatal(err)
	}
	if n := rollupQuantilesN(t, ca, "lat"); n != 700 {
		t.Fatalf("pre-checkpoint lat N = %d, want 700", n)
	}
	if _, err := srvA.WriteCheckpoints(cdir); err != nil {
		t.Fatal(err)
	}

	// After the checkpoint: one more named push from a second source.
	if err := ca.PushSnapshotFrom("lat", "edge-2", edgeLatBlob(t, 1000, 1100)); err != nil {
		t.Fatal(err)
	}

	// Crash. Restore the checkpoint (700 samples, watermark recorded),
	// then replay: only the edge-2 push is above the watermark.
	srvB, addrB := newTrioServer(t)
	if _, err := srvB.RestoreCheckpoints(cdir); err != nil {
		t.Fatal(err)
	}
	cb := dialT(t, addrB)
	if n := rollupQuantilesN(t, cb, "lat"); n != 700 {
		t.Fatalf("restored lat N = %d, want 700", n)
	}
	st, err := srvB.ReplayJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.Skipped != 2 {
		t.Fatalf("replay stats = %+v, want 1 applied (edge-2) / 2 LSN-skipped", st)
	}
	if n := rollupQuantilesN(t, cb, "lat"); n != 800 {
		t.Fatalf("recovered lat N = %d, want 800 (700 checkpointed + 100 replayed, no re-fold)", n)
	}
}

// TestJournalRotationRetention: Rotate starts new files, PruneKeep
// deletes all but the Retain newest, files the journal did not write
// are left alone, and a reopened journal continues the LSN sequence in
// a fresh file rather than appending to a possibly-torn one.
func TestJournalRotationRetention(t *testing.T) {
	dir := t.TempDir()
	j, err := server.OpenJournal(dir, server.JournalConfig{Retain: 2, MaxBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("not-a-real-fctb-blob-but-journal-does-not-care")
	var lastLSN uint64
	for i := 0; i < 4; i++ {
		if lastLSN, err = j.AppendPush("t", fmt.Sprintf("src-%d", i), blob); err != nil {
			t.Fatal(err)
		}
		if err := j.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if lastLSN != 4 {
		t.Fatalf("last LSN = %d, want 4", lastLSN)
	}
	// Strangers: wrong-width sequence, non-journal file.
	for _, name := range []string{"wal-deadbeef.fcjl", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.PruneKeep(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Rotations != 4 || st.Pruned == 0 {
		t.Fatalf("stats = %+v, want 4 rotations and pruned files", st)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wal, strangers int
	for _, e := range ents {
		switch e.Name() {
		case "wal-deadbeef.fcjl", "notes.txt":
			strangers++
		default:
			wal++
		}
	}
	if wal != 2 || strangers != 2 {
		t.Fatalf("after prune: %d journal files (want 2), %d strangers (want 2 untouched)", wal, strangers)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: a fresh active file past the newest survivor, and LSNs
	// continue past everything ever assigned — pruned files included.
	j2, err := server.OpenJournal(dir, server.JournalConfig{Retain: 2, MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	lsn, err := j2.AppendPush("t", "src-next", blob)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != lastLSN+1 {
		t.Fatalf("reopened LSN = %d, want %d", lsn, lastLSN+1)
	}
	if st := j2.Stats(); st.ActiveSeq <= 4 {
		t.Fatalf("reopened active seq = %d, want a fresh file past the old ones", st.ActiveSeq)
	}
}

// TestJournalCompactionEquivalence is the self-compaction property
// test: an identical record stream is appended to two journals — one
// with a tiny MaxBytes that forces repeated self-compaction, one with
// compaction disabled — and a fresh server replaying each must answer
// every family's rollup identically. Compaction may drop superseded
// per-source records but must never change recovered state.
func TestJournalCompactionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x70ac7))
	dirC := t.TempDir() // compacting
	dirF := t.TempDir() // full history
	jc, err := server.OpenJournal(dirC, server.JournalConfig{MaxBytes: 8 << 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	jf, err := server.OpenJournal(dirF, server.JournalConfig{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	// The record source: one edge accumulating state across rounds, its
	// cumulative snapshots shipped per round under a rotating source id
	// (replace semantics), plus per-round eviction spills (merge
	// semantics, must be carried verbatim through compaction).
	_, addrE := newTrioServer(t)
	ce := dialT(t, addrE)
	const rounds = 12
	quantTotal := 0
	cum := make([]int, rounds) // cumulative sample count after each round
	for round := 0; round < rounds; round++ {
		n := 20 + rng.Intn(60)
		keys := make([]string, n)
		ukeys := make([]uint64, n)
		vals := make([]uint64, n)
		qv := make([]float64, n)
		qk := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", rng.Intn(12))
			ukeys[i] = rng.Uint64() % 12
			vals[i] = rng.Uint64() % 5000
			qk[i] = "api"
			qv[i] = float64(quantTotal + i)
		}
		quantTotal += n
		cum[round] = quantTotal
		if err := ce.Ingest("ev", keys, vals); err != nil {
			t.Fatal(err)
		}
		if err := ce.IngestU64("dev", ukeys, vals); err != nil {
			t.Fatal(err)
		}
		if err := ce.IngestFloat("lat", qk, qv); err != nil {
			t.Fatal(err)
		}
		if err := ce.Flush(); err != nil {
			t.Fatal(err)
		}
		// Two sources shipping the same cumulative state: only the
		// latest record per (table, source) should survive compaction.
		src := fmt.Sprintf("edge-%d", round%2)
		for _, tbl := range []string{"ev", "lat", "dev"} {
			blob, err := ce.PullSnapshot(tbl)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range []*server.Journal{jc, jf} {
				if _, err := j.AppendPush(tbl, src, blob); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A window ship every third round, epoch-increasing.
		if round%3 == 0 {
			blob, err := ce.PullSnapshot("ev")
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range []*server.Journal{jc, jf} {
				if _, err := j.AppendWindow("ev", "win-0", uint64(round+1), blob); err != nil {
					t.Fatal(err)
				}
			}
		}
		// An eviction spill: merge-class, appended verbatim to both.
		_, compact, err := ce.Rollup("ev")
		if err != nil {
			t.Fatal(err)
		}
		key := []byte(fmt.Sprintf("evicted-%d", round))
		for _, j := range []*server.Journal{jc, jf} {
			if _, err := j.AppendEvict("ev", wire.KeyTypeString, key, compact); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := jc.Stats(); st.Compactions == 0 {
		t.Fatalf("stats = %+v: the compacting journal never compacted — the test exercised nothing", st)
	}
	if st := jf.Stats(); st.Compactions != 0 {
		t.Fatalf("control journal compacted: %+v", st)
	}

	// Replay both into fresh servers and compare every family. Theta
	// and HLL estimates are merge-order independent and must be exactly
	// equal; quantiles sample counts must be exactly equal and the
	// quantile curve statistically identical.
	srvC, addrC := newTrioServer(t)
	stC, err := srvC.ReplayJournal(dirC)
	if err != nil {
		t.Fatal(err)
	}
	srvF, addrF := newTrioServer(t)
	stF, err := srvF.ReplayJournal(dirF)
	if err != nil {
		t.Fatal(err)
	}
	if stC.Records >= stF.Records {
		t.Fatalf("compacted replay applied %d records, full %d — compaction dropped nothing", stC.Records, stF.Records)
	}
	cc, cf := dialT(t, addrC), dialT(t, addrF)
	if got, want := rollupThetaEstimate(t, cc, "ev"), rollupThetaEstimate(t, cf, "ev"); got != want {
		t.Fatalf("ev estimate: compacted %v != full %v", got, want)
	}
	if got, want := rollupHLLEstimate(t, cc, "dev"), rollupHLLEstimate(t, cf, "dev"); got != want {
		t.Fatalf("dev estimate: compacted %v != full %v", got, want)
	}
	// Each of the two alternating sources counts through its own latest
	// cumulative ship: the last round's total plus the round before it.
	wantTotal := uint64(cum[rounds-1] + cum[rounds-2])
	gotN, wantN := rollupQuantilesN(t, cc, "lat"), rollupQuantilesN(t, cf, "lat")
	if gotN != wantN || gotN != wantTotal {
		t.Fatalf("lat N: compacted %d, full %d, want both %d", gotN, wantN, wantTotal)
	}
	_, blob, err := cc.Rollup("lat")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := quantiles.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	snap := sk.Snapshot()
	eps := 4 * quantiles.NormalizedRankError(128)
	// The replayed multiset is {0..cum[last]-1} ⊎ {0..cum[prev]-1}, so
	// the true rank of a value v is 2v below cum[prev] and cum[prev]+v
	// above it — check the compacted replay's quantiles against that.
	trueRank := func(v float64) float64 {
		if v < float64(cum[rounds-2]) {
			return 2 * v
		}
		return float64(cum[rounds-2]) + v
	}
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		if dev := math.Abs(trueRank(snap.Quantile(phi))/float64(wantTotal) - phi); dev > eps {
			t.Fatalf("compacted-replay q(%v) rank dev %.4f > %.4f", phi, dev, eps)
		}
	}
}

// TestJournalRecoveryCorpus is the seeded torn-write/truncation corpus
// over FCJL + FCCK recovery: a known history (cumulative pushes of
// 100·k samples, checkpoints at k=2 and k=3) is damaged in a random way
// per trial — journal truncated or bit-flipped at a random offset,
// newest checkpoint generation corrupted — and boot must always
// succeed, landing on one of the states the history actually passed
// through, never below what an intact older checkpoint generation
// guarantees.
func TestJournalRecoveryCorpus(t *testing.T) {
	// Build the canonical damaged-input source once.
	jdir, cdir := t.TempDir(), t.TempDir()
	srvA, addrA, jnl := journaledTrioServer(t, jdir)
	ca := dialT(t, addrA)
	const rounds, per = 6, 100
	for round := 1; round <= rounds; round++ {
		if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLatBlob(t, 0, per*round)); err != nil {
			t.Fatal(err)
		}
		if round == 2 || round == 3 {
			if _, err := srvA.WriteCheckpoints(cdir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}

	copyDir := func(t *testing.T, src, dst string) {
		t.Helper()
		ents, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	// newestCkpt picks the highest-generation checkpoint file; the
	// generational suffix is zero-padded hex, so lexical order works.
	newestCkpt := func(t *testing.T, dir string) string {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".fcck") {
				names = append(names, e.Name())
			}
		}
		if len(names) < 2 {
			t.Fatalf("want >= 2 checkpoint generations, have %v", names)
		}
		sort.Strings(names)
		return filepath.Join(dir, names[len(names)-1])
	}

	for trial := 0; trial < 24; trial++ {
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xc0de + int64(trial)))
			jd, cd := t.TempDir(), t.TempDir()
			copyDir(t, jdir, jd)
			copyDir(t, cdir, cd)

			damage := func(path string) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 0 && len(data) > 0 {
					data = data[:rng.Intn(len(data)+1)] // truncate
				} else if len(data) > 0 {
					data[rng.Intn(len(data))] ^= 0xff // bit-flip
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Every trial damages the journal somewhere; half also lose
			// the newest checkpoint generation.
			walFile := newestJournalFile(t, jd)
			if rng.Intn(3) == 0 {
				// Sometimes hit an older journal file instead.
				ents, _ := os.ReadDir(jd)
				walFile = filepath.Join(jd, ents[rng.Intn(len(ents))].Name())
			}
			damage(walFile)
			ckptHit := rng.Intn(2) == 0
			if ckptHit {
				damage(newestCkpt(t, cd))
			}

			srvB, addrB := newTrioServer(t)
			rst, err := srvB.RestoreCheckpoints(cd)
			if err != nil {
				t.Fatalf("restore after damage: %v", err)
			}
			if ckptHit && rst.Fallbacks == 0 && rst.Tables > 0 {
				// The flip may have hit padding that still checksums?
				// No: CRC covers the whole file. A damaged newest
				// generation must either fall back or (if truncated to
				// nothing recognizable) restore the older one directly.
				t.Logf("restore stats = %+v (damaged newest generation)", rst)
			}
			if _, err := srvB.ReplayJournal(jd); err != nil {
				t.Fatalf("replay after damage: %v", err)
			}
			n := rollupQuantilesN(t, dialT(t, addrB), "lat")
			// Legal outcomes: any cumulative state the history passed
			// through, at or above the oldest retained checkpoint (200)
			// — damage only ever loses the tail, never the middle.
			if n%per != 0 || n < 2*per || n > rounds*per {
				t.Fatalf("recovered lat N = %d, want a multiple of %d in [%d, %d]", n, per, 2*per, rounds*per)
			}
		})
	}
}

// TestJournalEvictSpillDurability wires OnEvict the way fcds-serve does
// under -journal: a size-capped quantiles table spills every evicted
// key through SpillEvictString, so (a) the live server's rollup keeps
// every sample across evictions, and (b) a fresh server replaying the
// journal recovers exactly the spilled portion.
func TestJournalEvictSpillDurability(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, server.Config{})
	j, err := server.OpenJournal(dir, server.JournalConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv.AttachJournal(j)

	var evicted atomic.Int64
	qt := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{
			Writers: 1, Shards: 4, MaxKeys: 8,
			OnEvict: func(key string, snapshot []byte) {
				evicted.Add(1)
				if err := srv.SpillEvictString("lat", key, snapshot); err != nil {
					t.Errorf("spill %q: %v", key, err)
				}
			},
		},
		K: 128,
	})
	t.Cleanup(qt.Close)
	if err := server.RegisterQuantiles(srv, "lat", qt); err != nil {
		t.Fatal(err)
	}

	// 32 distinct keys, 50 samples each, ingested key-by-key so every
	// key's samples are fully in its sketch before later keys evict it.
	c := dialT(t, addr)
	const keyCount, perKey = 32, 50
	for k := 0; k < keyCount; k++ {
		keys := make([]string, perKey)
		vals := make([]float64, perKey)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", k)
			vals[i] = float64(k*perKey + i)
		}
		if err := c.IngestFloat("lat", keys, vals); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if evicted.Load() == 0 {
		t.Fatal("no evictions fired — the cap was never hit and the test exercised nothing")
	}
	// (a) Nothing dropped despite evictions: the spill folded every
	// evicted key's samples back into the rollup.
	if n := rollupQuantilesN(t, c, "lat"); n != keyCount*perKey {
		t.Fatalf("live lat N = %d with %d evictions, want %d (spills keep evicted data)",
			n, evicted.Load(), keyCount*perKey)
	}

	// (b) Crash: a fresh server replaying the journal holds exactly the
	// spilled samples (direct keyed ingest is checkpoint territory, not
	// the journal's).
	srvB, addrB := startServer(t, server.Config{})
	qtB := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 4},
		K:     128,
	})
	t.Cleanup(qtB.Close)
	if err := server.RegisterQuantiles(srvB, "lat", qtB); err != nil {
		t.Fatal(err)
	}
	st, err := srvB.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.Records) != evicted.Load() {
		t.Fatalf("replay applied %d records, want one per eviction (%d)", st.Records, evicted.Load())
	}
	if n := rollupQuantilesN(t, dialT(t, addrB), "lat"); n != uint64(evicted.Load())*perKey {
		t.Fatalf("replayed lat N = %d, want %d (%d spilled keys x %d samples)",
			n, evicted.Load()*perKey, evicted.Load(), perKey)
	}
}

// TestJournalHealthFields: HEALTH carries the journal recovery signals
// — attached flag, replayed record count, replayed-record age — and a
// clean journaled start reports zero replayed.
func TestJournalHealthFields(t *testing.T) {
	dir := t.TempDir()
	_, addrA, _ := journaledTrioServer(t, dir)
	ca := dialT(t, addrA)
	h, err := ca.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasJournal || h.JournalReplayed != 0 || h.JournalReplayAge != 0 {
		t.Fatalf("clean journaled start health = %+v, want attached journal, zero replay", h)
	}
	if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLatBlob(t, 0, 100)); err != nil {
		t.Fatal(err)
	}

	srvB, addrB := newTrioServer(t)
	if _, err := srvB.ReplayJournal(dir); err != nil {
		t.Fatal(err)
	}
	jb, err := server.OpenJournal(dir, server.JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	srvB.AttachJournal(jb)
	h, err = dialT(t, addrB).Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasJournal || h.JournalReplayed != 1 || h.JournalReplayAge <= 0 {
		t.Fatalf("post-replay health = %+v, want 1 replayed record with a positive age", h)
	}
	if records, age, ok := srvB.JournalReplay(); !ok || records != 1 || age <= 0 {
		t.Fatalf("JournalReplay = %d, %v, %v; want 1 record, positive age", records, age, ok)
	}
}
