package server_test

import (
	"math/rand"
	"testing"

	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
)

// TestCheckpointParallelMatchesSerial pins the read-path degree out of
// the durability format: two servers fed the identical stream — one
// with serial-read tables (ReadParallelism 1), one fanned out
// (ReadParallelism 8) — must write checkpoints that restore to the
// same state. The server-level per-table fan-out in WriteCheckpoints
// is exercised on both (it always runs); the table-level capture
// degree is what differs.
func TestCheckpointParallelMatchesSerial(t *testing.T) {
	newServer := func(readPar int) (*server.Server, string) {
		s, addr := startServer(t, server.Config{})
		tt := table.NewTheta(table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 2, Shards: 16, ReadParallelism: readPar},
			K:     1024, MaxError: 1,
		})
		t.Cleanup(tt.Close)
		if err := server.RegisterTheta(s, "ev", tt); err != nil {
			t.Fatal(err)
		}
		qt := table.NewQuantiles(table.QuantilesConfig[string]{
			Table: table.Config[string]{Writers: 2, Shards: 16, ReadParallelism: readPar},
			K:     128,
		})
		t.Cleanup(qt.Close)
		if err := server.RegisterQuantiles(s, "lat", qt); err != nil {
			t.Fatal(err)
		}
		ht := table.NewHLL(table.HLLConfig[uint64]{
			Table:     table.Config[uint64]{Writers: 2, Shards: 16, ReadParallelism: readPar},
			Precision: 11,
		})
		t.Cleanup(ht.Close)
		if err := server.RegisterHLL(s, "dev", ht); err != nil {
			t.Fatal(err)
		}
		return s, addr
	}

	feed := func(c *client.Client) {
		rng := rand.New(rand.NewSource(0xfeed))
		for batch := 0; batch < 12; batch++ {
			n := 1 + rng.Intn(300)
			skeys := make([]string, n)
			ukeys := make([]uint64, n)
			vals := make([]uint64, n)
			fs := make([]float64, n)
			for i := range vals {
				skeys[i] = "key-" + string(rune('a'+rng.Intn(24)))
				ukeys[i] = rng.Uint64() % 24
				vals[i] = rng.Uint64() % 50000
				fs[i] = float64(vals[i])
			}
			if err := c.Ingest("ev", skeys, vals); err != nil {
				t.Fatal(err)
			}
			if err := c.IngestU64("dev", ukeys, vals); err != nil {
				t.Fatal(err)
			}
			if err := c.IngestFloat("lat", skeys, fs); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, tbl := range []string{"ev", "lat", "dev"} {
			if _, err := c.PullSnapshot(tbl); err != nil {
				t.Fatal(err)
			}
		}
	}

	srvSerial, addrSerial := newServer(1)
	srvParallel, addrParallel := newServer(8)
	feed(dialT(t, addrSerial))
	feed(dialT(t, addrParallel))

	dirSerial, dirParallel := t.TempDir(), t.TempDir()
	stS, err := srvSerial.WriteCheckpoints(dirSerial)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := srvParallel.WriteCheckpoints(dirParallel)
	if err != nil {
		t.Fatal(err)
	}
	if stS.Tables != 3 || stP.Tables != 3 {
		t.Fatalf("checkpoint stats: serial %+v, parallel %+v, want 3 tables each", stS, stP)
	}
	if stS.Bytes != stP.Bytes {
		t.Fatalf("checkpoint sizes differ: serial %d bytes, parallel %d", stS.Bytes, stP.Bytes)
	}

	// Restore each image into a fresh default server; identical state
	// must answer identically (order-insensitive families exactly, the
	// coin-dependent quantiles family by count).
	restoreAndRead := func(dir string) (ev, dev float64, latN uint64) {
		srv, addr := newServer(0)
		st, err := srv.RestoreCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tables != 3 {
			t.Fatalf("restore stats = %+v, want 3 tables", st)
		}
		c := dialT(t, addr)
		return rollupThetaEstimate(t, c, "ev"), rollupHLLEstimate(t, c, "dev"), rollupQuantilesN(t, c, "lat")
	}
	evS, devS, latS := restoreAndRead(dirSerial)
	evP, devP, latP := restoreAndRead(dirParallel)
	if evS != evP {
		t.Fatalf("restored theta estimates differ: serial %v, parallel %v", evS, evP)
	}
	if devS != devP {
		t.Fatalf("restored HLL estimates differ: serial %v, parallel %v", devS, devP)
	}
	if latS != latP {
		t.Fatalf("restored quantiles N differ: serial %d, parallel %d", latS, latP)
	}
}
