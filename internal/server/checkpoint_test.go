package server_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// These tests pin the aggregator durability contract: WriteCheckpoints
// followed by RestoreCheckpoints into a fresh server reproduces every
// rollup exactly — including named-source replace semantics, so a
// pusher re-shipping its cumulative snapshot after the restart does
// not double-count what the checkpoint already restored.

// newTrioServer starts a server with one table per family: theta "ev"
// (string keys), quantiles "lat" (string keys), HLL "dev" (uint64
// keys).
func newTrioServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	s, addr := startServer(t, server.Config{})
	tt := table.NewTheta(table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 2, Shards: 16},
		K:     1024, MaxError: 1,
	})
	t.Cleanup(tt.Close)
	if err := server.RegisterTheta(s, "ev", tt); err != nil {
		t.Fatal(err)
	}
	qt := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 2, Shards: 16},
		K:     128,
	})
	t.Cleanup(qt.Close)
	if err := server.RegisterQuantiles(s, "lat", qt); err != nil {
		t.Fatal(err)
	}
	ht := table.NewHLL(table.HLLConfig[uint64]{
		Table:     table.Config[uint64]{Writers: 2, Shards: 16},
		Precision: 11,
	})
	t.Cleanup(ht.Close)
	if err := server.RegisterHLL(s, "dev", ht); err != nil {
		t.Fatal(err)
	}
	return s, addr
}

func dialT(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func rollupQuantilesN(t *testing.T, c *client.Client, tbl string) uint64 {
	t.Helper()
	_, blob, err := c.Rollup(tbl)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := quantiles.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	return sk.Snapshot().N()
}

func rollupThetaEstimate(t *testing.T, c *client.Client, tbl string) float64 {
	t.Helper()
	_, blob, err := c.Rollup(tbl)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := theta.UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	return sk.Estimate()
}

// TestCheckpointRestoreRoundTrip: direct ingest plus a named-source
// push across all three families, checkpoint, restore into a fresh
// server — every rollup matches exactly, and a re-ship of the same
// named cumulative snapshot after the restore replaces (rather than
// re-counts) the restored one.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc4e7))
	dir := t.TempDir()

	srvA, addrA := newTrioServer(t)
	ca := dialT(t, addrA)

	// Direct wire ingest into A. Quantile samples are a shuffled
	// 0..n-1 stream so the restored sketch can be checked statistically.
	const directN, edgeN = 3000, 1000
	perm := rng.Perm(directN + edgeN)
	ingestFloats := func(c *client.Client, vals []int) {
		keys := make([]string, 0, 512)
		fs := make([]float64, 0, 512)
		flush := func() {
			if err := c.IngestFloat("lat", keys, fs); err != nil {
				t.Fatal(err)
			}
			keys, fs = keys[:0], fs[:0]
		}
		for _, v := range vals {
			keys = append(keys, "api")
			fs = append(fs, float64(v))
			if len(keys) == 512 {
				flush()
			}
		}
		if len(keys) > 0 {
			flush()
		}
	}
	ingestFloats(ca, perm[:directN])
	for batch := 0; batch < 10; batch++ {
		n := 1 + rng.Intn(200)
		skeys := make([]string, n)
		ukeys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range vals {
			skeys[i] = "key-" + string(rune('a'+rng.Intn(8)))
			ukeys[i] = rng.Uint64() % 8
			vals[i] = rng.Uint64() % 4000
		}
		if err := ca.Ingest("ev", skeys, vals); err != nil {
			t.Fatal(err)
		}
		if err := ca.IngestU64("dev", ukeys, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}

	// An "edge" node's cumulative state, pushed into A under a source
	// id so re-ships replace.
	_, addrE := newTrioServer(t)
	ce := dialT(t, addrE)
	ingestFloats(ce, perm[directN:])
	if err := ce.Flush(); err != nil {
		t.Fatal(err)
	}
	edgeLat, err := ce.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.PushSnapshotFrom("lat", "edge-1", edgeLat); err != nil {
		t.Fatal(err)
	}

	// Pulling each snapshot quiesces the writer slots and drains the
	// tables, so the rollups below (and the checkpoint) see everything.
	for _, tbl := range []string{"ev", "lat", "dev"} {
		if _, err := ca.PullSnapshot(tbl); err != nil {
			t.Fatal(err)
		}
	}
	wantEv := rollupThetaEstimate(t, ca, "ev")
	wantDev := rollupHLLEstimate(t, ca, "dev")
	if got := rollupQuantilesN(t, ca, "lat"); got != directN+edgeN {
		t.Fatalf("pre-checkpoint lat N = %d, want %d", got, directN+edgeN)
	}

	st, err := srvA.WriteCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables != 3 || st.Bytes == 0 {
		t.Fatalf("write stats = %+v, want 3 tables, non-zero bytes", st)
	}

	// Fresh server, fresh tables: restore and compare.
	srvB, addrB := newTrioServer(t)
	rst, err := srvB.RestoreCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Tables != 3 || rst.Skipped != 0 {
		t.Fatalf("restore stats = %+v, want 3 tables, 0 skipped", rst)
	}
	cb := dialT(t, addrB)
	if got := rollupThetaEstimate(t, cb, "ev"); got != wantEv {
		t.Fatalf("restored ev estimate = %v, want %v", got, wantEv)
	}
	if got := rollupHLLEstimate(t, cb, "dev"); got != wantDev {
		t.Fatalf("restored dev estimate = %v, want %v", got, wantDev)
	}
	if got := rollupQuantilesN(t, cb, "lat"); got != directN+edgeN {
		t.Fatalf("restored lat N = %d, want %d", got, directN+edgeN)
	}

	// The edge re-ships its cumulative snapshot after the aggregator
	// restart: it must REPLACE the restored edge-1 snapshot, not merge
	// with it — replayed delivery cannot double-count.
	if err := cb.PushSnapshotFrom("lat", "edge-1", edgeLat); err != nil {
		t.Fatal(err)
	}
	if got := rollupQuantilesN(t, cb, "lat"); got != directN+edgeN {
		t.Fatalf("post-restore re-ship: lat N = %d, want %d (replace, not merge)", got, directN+edgeN)
	}

	// And the restored sketch still answers quantiles correctly.
	_, blob, err := cb.Rollup("lat")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := quantiles.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	snap := sk.Snapshot()
	n := float64(directN + edgeN)
	eps := 4 * quantiles.NormalizedRankError(128)
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		if dev := math.Abs(snap.Quantile(phi)/n - phi); dev > eps {
			t.Fatalf("restored q(%v) rank dev %.4f > %.4f", phi, dev, eps)
		}
	}
}

// rollupHLLEstimate reads an HLL rollup estimate (the HLL compact
// decoder hangs off the table's engine, so build a throwaway one).
func rollupHLLEstimate(t *testing.T, c *client.Client, tbl string) float64 {
	t.Helper()
	_, blob, err := c.Rollup(tbl)
	if err != nil {
		t.Fatal(err)
	}
	_, eng := table.HLLConfig[uint64]{Precision: 11}.Engine()
	sk, err := eng.UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	return sk.Estimate()
}

// TestCheckpointRejectsCorruption: a flipped byte or a truncated file
// fails the restore loudly — half a checkpoint must never load
// silently.
func TestCheckpointRejectsCorruption(t *testing.T) {
	srvA, addrA := newTrioServer(t)
	ca := dialT(t, addrA)
	if err := ca.Ingest("ev", []string{"k"}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, mutate func(data []byte) []byte) error {
		dir := t.TempDir()
		if _, err := srvA.WriteCheckpoints(dir); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("read checkpoint dir: %v (%d entries)", err, len(ents))
		}
		path := filepath.Join(dir, ents[0].Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		srvB, _ := newTrioServer(t)
		_, rerr := srvB.RestoreCheckpoints(dir)
		return rerr
	}

	t.Run("flipped-byte", func(t *testing.T) {
		err := corrupt(t, func(data []byte) []byte {
			data[len(data)/2] ^= 0xff
			return data
		})
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("restore of corrupted file = %v, want checksum error", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		err := corrupt(t, func(data []byte) []byte { return data[:10] })
		if err == nil {
			t.Fatal("restore of truncated file succeeded")
		}
	})
}

// TestCheckpointSkipsStrangersAndUnknownTables: non-checkpoint files
// in the directory are ignored, and a checkpoint for a table the new
// configuration no longer registers is skipped (counted, logged) —
// dropping a table from the config must not brick the restart.
func TestCheckpointSkipsStrangersAndUnknownTables(t *testing.T) {
	dir := t.TempDir()
	srvA, addrA := newTrioServer(t) // registers ev, lat, dev
	ca := dialT(t, addrA)
	if err := ca.Ingest("ev", []string{"a", "b"}, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ca.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.PullSnapshot("ev"); err != nil { // drain before comparing
		t.Fatal(err)
	}
	wantEv := rollupThetaEstimate(t, ca, "ev")
	if _, err := srvA.WriteCheckpoints(dir); err != nil {
		t.Fatal(err)
	}
	// Strangers: an abandoned temp file and an unrelated file.
	for _, name := range []string{"ev-00000000.fcck.tmp123", "README.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The new incarnation only registers "ev".
	srvB, addrB := startServer(t, server.Config{})
	tt := table.NewTheta(table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 2, Shards: 16},
		K:     1024, MaxError: 1,
	})
	t.Cleanup(tt.Close)
	if err := server.RegisterTheta(srvB, "ev", tt); err != nil {
		t.Fatal(err)
	}
	st, err := srvB.RestoreCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables != 1 || st.Skipped != 2 {
		t.Fatalf("restore stats = %+v, want 1 restored, 2 skipped", st)
	}
	cb := dialT(t, addrB)
	if got := rollupThetaEstimate(t, cb, "ev"); got != wantEv {
		t.Fatalf("restored ev estimate = %v, want %v", got, wantEv)
	}

	// A missing directory is a clean first boot.
	st, err = srvB.RestoreCheckpoints(filepath.Join(dir, "never-created"))
	if err != nil || st.Tables != 0 {
		t.Fatalf("restore from missing dir = %+v, %v; want empty, nil", st, err)
	}
}

// TestCheckpointAgeInHealth: HEALTH reports zero before any
// checkpoint, and a non-zero age afterwards — the monitoring signal
// for "how much would a crash right now lose".
func TestCheckpointAgeInHealth(t *testing.T) {
	srv, addr := newTrioServer(t)
	c := dialT(t, addr)
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.CheckpointAge != 0 {
		t.Fatalf("pre-checkpoint age = %v, want 0", h.CheckpointAge)
	}
	if _, ok := srv.CheckpointAge(); ok {
		t.Fatal("CheckpointAge ok before any checkpoint")
	}
	if _, err := srv.WriteCheckpoints(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.CheckpointAge <= 0 {
		t.Fatalf("post-checkpoint age = %v, want > 0", h.CheckpointAge)
	}
	if age, ok := srv.CheckpointAge(); !ok || age < 0 {
		t.Fatalf("CheckpointAge = %v, %v after checkpoint", age, ok)
	}
}
