package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/server/wire"
)

// Durability journal: the FCCK checkpoints bound an aggregator's crash
// loss to one checkpoint interval, but everything that arrived since
// the last pass — named-source snapshot pushes, window snapshot ships,
// eviction spills — dies with the process. The journal closes that gap
// the way log-structured stores do: every durable event is appended to
// a write-ahead log BEFORE it mutates in-memory state, and boot becomes
// restore-checkpoint-then-replay-journal-tail, so recovery loss shrinks
// from "one checkpoint interval" to "at most FsyncEvery-1 acknowledged
// records".
//
// Exactly-once replay is coordinated through log sequence numbers
// (LSNs): the journal assigns a strictly increasing LSN to every
// record, each table backend remembers the highest LSN it has applied,
// and a checkpoint stores that watermark in its FCCK header. Replay
// skips records at or below the restored watermark — so a record that
// made it into the checkpoint is never applied twice (merge-semantics
// records — eviction spills, anonymous pushes — would double-count),
// and a record that did not is applied exactly once. File boundaries
// carry no correctness weight; they only bound disk usage.
//
// File format (FCJL, little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCJL"
//	4       1     format version (1)
//	5       3     reserved (0)
//	8       8     created-at wall clock, unix nanoseconds (int64)
//	16      8     file sequence number
//	24      ...   records
//
// Each record is independently CRC-framed so a torn final write (the
// crash the journal exists for) truncates cleanly on recovery:
//
//	offset  size  field
//	0       4     record length N (bytes after this field)
//	4       8     LSN
//	12      8     appended-at wall clock, unix nanoseconds (int64)
//	20      1     record type
//	21      ...   type-specific body
//	end-4   4     CRC32 (IEEE) of bytes 0..end-4 (length field included)
//
// Record bodies:
//
//	jrecPush:   uvarint table name, uvarint source id (empty = anonymous
//	            merge), rest = FCTB snapshot blob. Named sources REPLACE,
//	            so only the latest record per (table, source) is live.
//	jrecWindow: uvarint table name, uvarint source id, uvarint epoch,
//	            rest = FCTB blob. Replace per source, epoch-guarded.
//	jrecEvict:  uvarint table name, key-type byte, uvarint key length,
//	            key bytes (string keys verbatim, uint64 keys 8 bytes
//	            LE), rest = the evicted key's serialized compact. MERGE
//	            semantics: every record stays live until a checkpoint
//	            covers it.
const (
	jnlMagic      = "FCJL"
	jnlVersion    = 1
	jnlHeaderSize = 24
	jnlSuffix     = ".fcjl"
	jnlPrefix     = "wal-"

	// Record frame: u32 length + (lsn + ts + type) + body + crc32.
	jnlRecOverhead = 4 + 8 + 8 + 1 + 4

	jrecPush   byte = 1
	jrecWindow byte = 2
	jrecEvict  byte = 3
)

// DefaultJournalMaxBytes is the live-journal size past which an append
// triggers a compacting rotation (see JournalConfig.MaxBytes).
const DefaultJournalMaxBytes = 64 << 20

// DefaultRetain is the number of checkpoint generations (and matching
// journal files) retention keeps when the configured count is zero.
const DefaultRetain = 2

// JournalConfig configures a Journal. The zero value is usable: fsync
// on every record, 64 MiB compaction threshold, two generations
// retained.
type JournalConfig struct {
	// FsyncEvery fsyncs the journal after every Nth appended record
	// (<= 0 or 1 means every record). Raising it amortizes the fsync
	// over bursts at the cost of the durability window: a crash can
	// lose up to FsyncEvery-1 acknowledged records, so monitors should
	// alert on fcds_server_journal_unsynced_records staying near the
	// configured bound (see the fcds package docs' alerting guidance).
	FsyncEvery int
	// MaxBytes triggers a compacting rotation when the live journal
	// (all files) exceeds it: replace-semantics records collapse to the
	// latest per (table, source, type), merge-semantics records are
	// carried verbatim, and the old files are deleted. <= 0 means
	// DefaultJournalMaxBytes; negative disables size-based compaction.
	MaxBytes int64
	// Retain is the number of journal files kept by PruneKeep after a
	// successful checkpoint pass (<= 0 means DefaultRetain). Keep it
	// equal to the checkpoint retention count: restoring the Nth-newest
	// checkpoint generation needs the journal tail since that pass.
	Retain int
	// Logf, when non-nil, receives journal diagnostics (torn tails
	// truncated, unrecognized files skipped). Nil means silent.
	Logf func(format string, args ...any)
}

// Journal is an append-only FCJL write-ahead log. One Journal owns one
// directory's wal-*.fcjl files; appends go to the newest (active) file,
// rotation starts a new one, and retention prunes the old ones once a
// checkpoint covers them. Safe for concurrent use.
type Journal struct {
	dir string
	cfg JournalConfig

	mu      sync.Mutex
	f       *os.File
	seq     uint64 // active file's sequence number
	size    int64  // active file's size in bytes
	total   int64  // all files' sizes (compaction trigger)
	nextLSN uint64
	dirty   int    // records appended since the last fsync
	scratch []byte // framing buffer (appendLocked / rewriteLocked)
	body    []byte // body-building buffer (typed Append helpers)

	bytes       atomic.Int64 // record bytes appended (headers included)
	records     atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
	fsyncs      atomic.Int64
	unsynced    atomic.Int64
	pruned      atomic.Int64 // journal files deleted by retention
}

// JournalStats is a point-in-time snapshot of a journal's counters.
type JournalStats struct {
	// ActiveSeq is the live file's sequence number; ActiveBytes its
	// size, TotalBytes the size of every journal file on disk.
	ActiveSeq               uint64
	ActiveBytes, TotalBytes int64
	// Records and Bytes count appended records and their framed bytes;
	// Rotations, Compactions, Fsyncs and Pruned count those passes.
	Records, Bytes                 int64
	Rotations, Compactions, Fsyncs int64
	Pruned                         int64
	// Unsynced is the number of acknowledged records not yet fsynced —
	// the crash-loss window FsyncEvery trades for throughput.
	Unsynced int64
}

func (j *Journal) logf(format string, args ...any) {
	if j.cfg.Logf != nil {
		j.cfg.Logf(format, args...)
	}
}

// journalFileName maps a sequence number to its file name; sequence
// numbers are zero-padded hex so lexical order is numeric order.
func journalFileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", jnlPrefix, seq, jnlSuffix)
}

// parseJournalFileName extracts the sequence number from a journal file
// name; ok is false for files the journal did not write.
func parseJournalFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, jnlPrefix) || !strings.HasSuffix(name, jnlSuffix) {
		return 0, false
	}
	mid := name[len(jnlPrefix) : len(name)-len(jnlSuffix)]
	if len(mid) != 16 {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// listJournalFiles returns the directory's journal files sorted by
// sequence number.
func listJournalFiles(dir string) ([]journalFile, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []journalFile
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := parseJournalFileName(ent.Name()); ok {
			files = append(files, journalFile{seq: seq, name: ent.Name()})
		}
	}
	sort.Slice(files, func(a, b int) bool { return files[a].seq < files[b].seq })
	return files, nil
}

type journalFile struct {
	seq  uint64
	name string
}

// OpenJournal opens (creating if needed) the journal in dir and starts
// a fresh active file after the newest existing one. It never appends
// to an existing file: a previous crash may have left a torn tail
// there, and appending past it would bury valid records behind garbage
// — replay reads old files as they are, new records go to the new one.
// Call it AFTER replaying (ReplayJournal): the scan that finds the next
// LSN is the same tolerant record walk replay does.
func OpenJournal(dir string, cfg JournalConfig) (*Journal, error) {
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = 1
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultJournalMaxBytes
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, cfg: cfg, nextLSN: 1}
	files, err := listJournalFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, jf := range files {
		path := filepath.Join(dir, jf.name)
		if jf.seq >= j.seq {
			j.seq = jf.seq
		}
		if st, err := os.Stat(path); err == nil {
			j.total += st.Size()
		}
		// Walk the records to find the highest LSN ever assigned; torn
		// tails and unreadable files contribute what they can.
		_ = walkJournalFile(path, func(rec *JournalRecord) error {
			if rec.LSN >= j.nextLSN {
				j.nextLSN = rec.LSN + 1
			}
			return nil
		}, nil)
	}
	if err := j.openNextLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// openNextLocked starts the next sequence file as the active one.
// Callers hold j.mu (or are the constructor).
func (j *Journal) openNextLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
	}
	j.seq++
	path := filepath.Join(j.dir, journalFileName(j.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [jnlHeaderSize]byte
	copy(hdr[0:4], jnlMagic)
	hdr[4] = jnlVersion
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(time.Now().UnixNano()))
	binary.LittleEndian.PutUint64(hdr[16:24], j.seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	// Make the file name itself durable: a crash right after rotation
	// must not resurrect a directory without the new file.
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	j.f = f
	j.size = jnlHeaderSize
	j.total += jnlHeaderSize
	return nil
}

func (j *Journal) syncLocked() error {
	if j.dirty == 0 || j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.fsyncs.Add(1)
	j.dirty = 0
	j.unsynced.Store(0)
	return nil
}

// appendLocked frames and writes one record, returning its LSN.
// Callers hold j.mu.
func (j *Journal) appendLocked(typ byte, body []byte) (uint64, error) {
	if j.f == nil {
		return 0, errors.New("server: journal closed")
	}
	lsn := j.nextLSN
	n := len(body) + jnlRecOverhead - 4 // length counts bytes after itself
	buf := j.scratch[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(time.Now().UnixNano()))
	buf = append(buf, typ)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	j.scratch = buf[:0]
	if _, err := j.f.Write(buf); err != nil {
		// A short write leaves a torn tail; recovery truncates it. The
		// LSN is NOT consumed — the state change it would have covered
		// must not happen either (callers abort on journal failure).
		return 0, err
	}
	j.nextLSN++
	j.size += int64(len(buf))
	j.total += int64(len(buf))
	j.bytes.Add(int64(len(buf)))
	j.records.Add(1)
	j.dirty++
	j.unsynced.Store(int64(j.dirty))
	if j.dirty >= j.cfg.FsyncEvery {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendPush journals one snapshot push (cumulative replace when source
// is non-empty, anonymous merge when empty) and returns its LSN. The
// append happens BEFORE the in-memory merge (write-ahead order), and
// the caller must abort the merge if it fails.
func (j *Journal) AppendPush(table, source string, blob []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	body := j.bodyScratch(len(table) + len(source) + len(blob) + 16)
	body = wire.AppendString(body, table)
	body = wire.AppendString(body, source)
	body = append(body, blob...)
	lsn, err := j.appendLocked(jrecPush, body)
	j.body = body[:0]
	j.maybeCompactLocked()
	return lsn, err
}

// AppendWindow journals one epoch-guarded window snapshot ship.
func (j *Journal) AppendWindow(table, source string, epoch uint64, blob []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	body := j.bodyScratch(len(table) + len(source) + len(blob) + 24)
	body = wire.AppendString(body, table)
	body = wire.AppendString(body, source)
	body = wire.AppendUvarint(body, epoch)
	body = append(body, blob...)
	lsn, err := j.appendLocked(jrecWindow, body)
	j.body = body[:0]
	j.maybeCompactLocked()
	return lsn, err
}

// AppendEvict journals one eviction spill: the evicted key (string
// keys as raw bytes, uint64 keys as 8 bytes little endian) and its
// serialized compact. Merge semantics — every spill stays live in the
// journal until a checkpoint covers it.
func (j *Journal) AppendEvict(table string, keyType byte, key, compact []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	body := j.bodyScratch(len(table) + len(key) + len(compact) + 24)
	body = wire.AppendString(body, table)
	body = append(body, keyType)
	body = wire.AppendUvarint(body, uint64(len(key)))
	body = append(body, key...)
	body = append(body, compact...)
	lsn, err := j.appendLocked(jrecEvict, body)
	j.body = body[:0]
	j.maybeCompactLocked()
	return lsn, err
}

// bodyScratch returns an empty body buffer with at least n capacity.
// Bodies are built under j.mu, so one buffer serves every append; it is
// distinct from j.scratch (the framing buffer), which appendLocked uses
// while the body is still alive.
func (j *Journal) bodyScratch(n int) []byte {
	if cap(j.body) < n {
		j.body = make([]byte, 0, n+n/4)
	}
	return j.body[:0]
}

// Rotate closes the active file and starts the next one. WriteCheckpoints
// calls it at the START of a pass: records appended while tables are
// being captured land in the new file, and every record in older files
// is — by the append-before-apply order — at or below each table's
// captured LSN watermark, so those files are fully covered once the
// pass succeeds and retention may prune them.
func (j *Journal) Rotate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.openNextLocked(); err != nil {
		return err
	}
	j.rotations.Add(1)
	return nil
}

// PruneKeep deletes journal files older than the Retain newest ones
// (active file included in the count). Files whose names the journal
// did not write are logged and left alone. Call it only after a fully
// successful checkpoint pass.
func (j *Journal) PruneKeep() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pruneLocked(j.cfg.Retain)
}

func (j *Journal) pruneLocked(keep int) error {
	files, err := listJournalFiles(j.dir)
	if err != nil {
		return err
	}
	if len(files) <= keep {
		return nil
	}
	for _, jf := range files[:len(files)-keep] {
		path := filepath.Join(j.dir, jf.name)
		st, serr := os.Stat(path)
		if err := os.Remove(path); err != nil {
			return err
		}
		if serr == nil {
			j.total -= st.Size()
		}
		j.pruned.Add(1)
	}
	return nil
}

// maybeCompactLocked compacts the journal in place when its total size
// crossed MaxBytes: replace-semantics records (push, window) collapse
// to the latest per (table, source, type), merge-semantics records
// (evictions, anonymous pushes) are carried verbatim, original LSNs and
// order preserved — so replay of the compacted journal reaches exactly
// the state full replay would (pinned by TestJournalCompactionEquivalence).
// Callers hold j.mu.
func (j *Journal) maybeCompactLocked() {
	if j.cfg.MaxBytes < 0 || j.total <= j.cfg.MaxBytes {
		return
	}
	if err := j.compactLocked(); err != nil {
		// Compaction is an optimization; a failure must not take down
		// the append path. The next append retries.
		j.logf("server: journal compaction: %v", err)
	}
}

// compactKey identifies the replace slot one push/window record fills.
type compactKey struct {
	typ           byte
	table, source string
}

func (j *Journal) compactLocked() error {
	files, err := listJournalFiles(j.dir)
	if err != nil {
		return err
	}
	// Pass 1: find the latest LSN per replace slot.
	latest := make(map[compactKey]uint64)
	for _, jf := range files {
		_ = walkJournalFile(filepath.Join(j.dir, jf.name), func(rec *JournalRecord) error {
			if rec.Type == jrecPush || rec.Type == jrecWindow {
				if rec.Source != "" {
					k := compactKey{rec.Type, rec.Table, rec.Source}
					if rec.LSN > latest[k] {
						latest[k] = rec.LSN
					}
				}
			}
			return nil
		}, nil)
	}
	// Pass 2: stream the live records into a fresh file.
	if err := j.openNextLocked(); err != nil {
		return err
	}
	compacted := files
	kept, dropped := 0, 0
	for _, jf := range compacted {
		_ = walkJournalFile(filepath.Join(j.dir, jf.name), func(rec *JournalRecord) error {
			if rec.Type == jrecPush || rec.Type == jrecWindow {
				if rec.Source != "" && latest[compactKey{rec.Type, rec.Table, rec.Source}] != rec.LSN {
					dropped++
					return nil
				}
			}
			kept++
			return j.rewriteLocked(rec)
		}, nil)
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	// Old files only go away once the replacement is durable.
	for _, jf := range compacted {
		path := filepath.Join(j.dir, jf.name)
		st, serr := os.Stat(path)
		if err := os.Remove(path); err != nil {
			return err
		}
		if serr == nil {
			j.total -= st.Size()
		}
	}
	j.compactions.Add(1)
	j.logf("server: journal compacted: %d records kept, %d superseded, %d bytes live", kept, dropped, j.total)
	return nil
}

// rewriteLocked re-frames an existing record (original LSN and
// timestamp) into the active file during compaction.
func (j *Journal) rewriteLocked(rec *JournalRecord) error {
	buf := j.scratch[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.body)+jnlRecOverhead-4))
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.TS))
	buf = append(buf, rec.Type)
	buf = append(buf, rec.body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	j.scratch = buf[:0]
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.size += int64(len(buf))
	j.total += int64(len(buf))
	j.dirty++
	return nil
}

// LSN returns the highest LSN assigned so far (0 before the first
// append).
func (j *Journal) LSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextLSN - 1
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	seq, size, total := j.seq, j.size, j.total
	j.mu.Unlock()
	return JournalStats{
		ActiveSeq: seq, ActiveBytes: size, TotalBytes: total,
		Records: j.records.Load(), Bytes: j.bytes.Load(),
		Rotations: j.rotations.Load(), Compactions: j.compactions.Load(),
		Fsyncs: j.fsyncs.Load(), Pruned: j.pruned.Load(),
		Unsynced: j.unsynced.Load(),
	}
}

// Sync forces an fsync of any acknowledged-but-unsynced records.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close fsyncs and closes the active file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// JournalRecord is one parsed journal record, as replay sees it.
type JournalRecord struct {
	LSN  uint64
	TS   int64 // appended-at, unix nanoseconds
	Type byte
	// Table is set for every record type. Source is set for push and
	// window records ("" = anonymous merge); Epoch for window records;
	// KeyType and Key (string keys raw, uint64 keys 8 bytes LE) for
	// eviction records. Blob is the FCTB snapshot (push, window) or
	// serialized compact (evict).
	Table, Source string
	Epoch         uint64
	KeyType       byte
	Key           []byte
	Blob          []byte

	body []byte // raw body, for compaction rewrite
}

// walkJournalFile streams a journal file's records through fn, stopping
// at the first framing or checksum failure — append-only files tear
// only at the tail, so everything after a bad frame is the torn write
// (or trailing corruption) recovery exists to discard. The number of
// bytes dropped that way is reported through torn (when non-nil). A
// file with a malformed header is skipped entirely with an error.
func walkJournalFile(path string, fn func(*JournalRecord) error, torn *int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < jnlHeaderSize || string(data[0:4]) != jnlMagic {
		return fmt.Errorf("server: journal %s: bad header", filepath.Base(path))
	}
	if data[4] != jnlVersion {
		return fmt.Errorf("server: journal %s: unsupported version %d", filepath.Base(path), data[4])
	}
	rest := data[jnlHeaderSize:]
	for len(rest) > 0 {
		rec, consumed, ok := parseJournalRecord(rest)
		if !ok {
			if torn != nil {
				*torn += int64(len(rest))
			}
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
		rest = rest[consumed:]
	}
	return nil
}

// parseJournalRecord decodes one framed record; ok is false at a torn
// or corrupt frame (replay truncates there).
func parseJournalRecord(data []byte) (*JournalRecord, int, bool) {
	if len(data) < jnlRecOverhead {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n < jnlRecOverhead-4 || n > len(data)-4 {
		return nil, 0, false
	}
	frame := data[: 4+n : 4+n]
	gotCRC := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if crc32.ChecksumIEEE(frame[:len(frame)-4]) != gotCRC {
		return nil, 0, false
	}
	rec := &JournalRecord{
		LSN:  binary.LittleEndian.Uint64(frame[4:12]),
		TS:   int64(binary.LittleEndian.Uint64(frame[12:20])),
		Type: frame[20],
		body: frame[21 : len(frame)-4],
	}
	r := wire.Reader{Buf: rec.body}
	rec.Table = r.String()
	switch rec.Type {
	case jrecPush:
		rec.Source = r.String()
		rec.Blob = r.Rest()
	case jrecWindow:
		rec.Source = r.String()
		rec.Epoch = r.Uvarint()
		rec.Blob = r.Rest()
	case jrecEvict:
		rec.KeyType = r.Byte()
		if rec.KeyType != wire.KeyTypeString && rec.KeyType != wire.KeyTypeUint64 {
			return nil, 0, false
		}
		klen := int(r.Uvarint())
		if r.Err != nil || klen > r.Remaining() {
			return nil, 0, false
		}
		rec.Key = r.Bytes(klen)
		if rec.KeyType == wire.KeyTypeUint64 && len(rec.Key) != 8 {
			return nil, 0, false
		}
		rec.Blob = r.Rest()
	default:
		return nil, 0, false
	}
	if r.Err != nil || rec.Table == "" {
		return nil, 0, false
	}
	return rec, 4 + n, true
}

// JournalReplayStats reports what one replay pass covered.
type JournalReplayStats struct {
	// Files is the number of journal files walked; Records the number
	// of records applied; Skipped the records already covered by the
	// restored checkpoints' LSN watermarks; UnknownTable the records for
	// tables the new configuration no longer registers; Stale the
	// window records whose epoch the receiver had already passed;
	// Errors the intact records that no longer apply (logged, skipped).
	Files, Records, Skipped, UnknownTable, Stale, Errors int
	// TornBytes counts trailing bytes discarded as torn writes.
	TornBytes int64
	// MaxLSN is the highest LSN seen; NewestTS the append timestamp of
	// the newest applied record (0 when none) — the replayed-age signal
	// HEALTH and /healthz report.
	MaxLSN   uint64
	NewestTS int64
}

// replayJournalDir walks every journal file in dir in sequence order
// and hands each intact record to apply. Unrecognized and unreadable
// files are logged and skipped, torn tails truncated and counted —
// recovery must always make it through whatever a crash left behind.
func replayJournalDir(dir string, apply func(*JournalRecord, *JournalReplayStats) error, logf func(string, ...any)) (JournalReplayStats, error) {
	var st JournalReplayStats
	files, err := listJournalFiles(dir)
	if err != nil {
		return st, err
	}
	for _, jf := range files {
		path := filepath.Join(dir, jf.name)
		var torn int64
		err := walkJournalFile(path, func(rec *JournalRecord) error {
			if rec.LSN > st.MaxLSN {
				st.MaxLSN = rec.LSN
			}
			return apply(rec, &st)
		}, &torn)
		if err != nil {
			if logf != nil {
				logf("server: journal replay: %v (file skipped)", err)
			}
			continue
		}
		st.Files++
		if torn > 0 {
			st.TornBytes += torn
			if logf != nil {
				logf("server: journal replay: %s: truncated %d torn trailing bytes", jf.name, torn)
			}
		}
	}
	return st, nil
}
