package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/server/wire"
)

// Aggregator durability: WriteCheckpoints serializes every registered
// table's remote state (named-source snapshots + anonymous aggregate,
// with the live table folded in) to one file per table in a
// checkpoint directory; RestoreCheckpoints loads them back on boot,
// before the port opens. Together with per-source replace semantics
// they make an aggregator restart lossless for everything pushed up
// to the last checkpoint: pushers that outlived the crash simply
// replace their restored snapshots on their next ship, and pushers
// that died keep their last checkpointed contribution in rollups.
//
// File format (FCCK, little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCCK"
//	4       1     format version (1)
//	5       3     reserved (0)
//	8       8     written-at wall clock, unix nanoseconds (int64)
//	16      ...   uvarint table-name length + name bytes
//	...     ...   table body (see tableBackend.checkpointBody)
//	end-4   4     CRC32 (IEEE) of every preceding byte
//
// Each file is written atomically — temp file in the same directory,
// fsync, rename over the final name, fsync the directory — so a crash
// mid-checkpoint leaves the previous complete checkpoint in place,
// never a torn one. The CRC rejects files corrupted at rest.
const (
	ckptMagic      = "FCCK"
	ckptVersion    = 1
	ckptHeaderSize = 16
	ckptSuffix     = ".fcck"
)

// CheckpointStats reports what one WriteCheckpoints or
// RestoreCheckpoints pass covered.
type CheckpointStats struct {
	// Tables is the number of table checkpoint files written or
	// restored; Bytes sums their sizes.
	Tables int
	Bytes  int64
	// Skipped counts files RestoreCheckpoints ignored because no
	// matching table is registered (always 0 for writes).
	Skipped int
}

// WriteCheckpoints writes one checkpoint file per registered table
// into dir (created if missing), atomically replacing the previous
// ones. Safe to call while the server is serving — each table is
// quiesced exactly as a SNAPSHOT_PULL would — and after Close (the
// shutdown path checkpoints last so nothing ingested during the drain
// is lost). The checkpoint timestamp HEALTH reports advances only
// when every table was written.
//
// Tables checkpoint concurrently on a bounded worker set (and each
// table's own capture fans out per key), so the pass's total
// ingest-stall is the longest single table's quiesce window, not the
// sum over tables. On error the pass still attempts every table —
// files are independently atomic — and reports the first failure in
// table-name order.
func (s *Server) WriteCheckpoints(dir string) (CheckpointStats, error) {
	var st CheckpointStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	now := time.Now()
	bytes := make([]int64, len(names))
	errs := make([]error, len(names))
	core.FanOut(core.ReadDegree(0), len(names), func(_, i int) {
		name := names[i]
		b, ok := s.lookup(name)
		if !ok {
			return
		}
		data := make([]byte, 0, 4<<10)
		data = append(data, ckptMagic...)
		data = append(data, ckptVersion, 0, 0, 0)
		data = binary.LittleEndian.AppendUint64(data, uint64(now.UnixNano()))
		data = wire.AppendString(data, name)
		body, err := b.checkpointBody(data)
		if err != nil {
			errs[i] = fmt.Errorf("server: checkpoint table %q: %w", name, err)
			return
		}
		data = body
		data = binary.LittleEndian.AppendUint32(data, crc32.ChecksumIEEE(data))
		path := filepath.Join(dir, checkpointFileName(name))
		if err := atomicWriteFile(path, data); err != nil {
			errs[i] = fmt.Errorf("server: checkpoint table %q: %w", name, err)
			return
		}
		bytes[i] = int64(len(data))
	})
	for i := range names {
		if errs[i] != nil {
			return st, errs[i]
		}
		if bytes[i] > 0 {
			st.Tables++
			st.Bytes += bytes[i]
		}
	}
	s.lastCheckpoint.Store(now.UnixNano())
	s.checkpoints.Add(1)
	if h := s.ckptHist.Load(); h != nil {
		h.Observe(time.Since(now).Seconds())
	}
	return st, nil
}

// RestoreCheckpoints loads every checkpoint file in dir into the
// matching registered tables' remote state. Call it after registering
// tables and before Start/Serve, so the first connection after a
// restart already sees the recovered state. A missing or empty
// directory restores nothing and is not an error (first boot); a file
// whose table is not registered is skipped with a log line (a config
// that dropped a table must not brick the node); a corrupt file is an
// error — restoring half a checkpoint silently would defeat the point.
func (s *Server) RestoreCheckpoints(dir string) (CheckpointStats, error) {
	var st CheckpointStats
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	var newest int64
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ckptSuffix) {
			continue // temp files and strangers
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return st, err
		}
		name, ts, body, err := parseCheckpoint(data)
		if err != nil {
			return st, fmt.Errorf("server: checkpoint %s: %w", ent.Name(), err)
		}
		b, ok := s.lookup(name)
		if !ok {
			s.logf("server: checkpoint %s: table %q not registered, skipping", ent.Name(), name)
			st.Skipped++
			continue
		}
		if err := b.restoreBody(body); err != nil {
			return st, fmt.Errorf("server: checkpoint %s: %w", ent.Name(), err)
		}
		st.Tables++
		st.Bytes += int64(len(data))
		if ts > newest {
			newest = ts
		}
	}
	if st.Tables > 0 {
		// The restored state is as stale as the checkpoint that wrote
		// it — report that age, not zero, so monitors see the true
		// staleness window until the first post-restart checkpoint.
		s.lastCheckpoint.Store(newest)
	}
	return st, nil
}

// CheckpointAge returns the time since the newest checkpoint this
// server wrote or restored; ok is false when it never has.
func (s *Server) CheckpointAge() (time.Duration, bool) {
	ts := s.lastCheckpoint.Load()
	if ts == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, ts)), true
}

// parseCheckpoint validates an FCCK image and returns the embedded
// table name, write timestamp and body.
func parseCheckpoint(data []byte) (name string, ts int64, body []byte, err error) {
	if len(data) < ckptHeaderSize+4 {
		return "", 0, nil, fmt.Errorf("truncated (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return "", 0, nil, fmt.Errorf("checksum mismatch (file %#x, computed %#x)", got, want)
	}
	if string(payload[0:4]) != ckptMagic {
		return "", 0, nil, errors.New("bad magic")
	}
	if payload[4] != ckptVersion {
		return "", 0, nil, fmt.Errorf("unsupported version %d", payload[4])
	}
	ts = int64(binary.LittleEndian.Uint64(payload[8:16]))
	r := wire.Reader{Buf: payload[ckptHeaderSize:]}
	name = r.String()
	if r.Err != nil || name == "" {
		return "", 0, nil, errors.New("malformed table name")
	}
	return name, ts, r.Rest(), nil
}

// checkpointFileName maps a table name to a stable file name: a
// sanitized prefix for humans plus the name's CRC for uniqueness (two
// tables whose names sanitize identically must not overwrite each
// other's files). The authoritative name lives inside the file.
func checkpointFileName(table string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, table)
	const maxSafe = 64
	if len(safe) > maxSafe {
		safe = safe[:maxSafe]
	}
	return fmt.Sprintf("%s-%08x%s", safe, crc32.ChecksumIEEE([]byte(table)), ckptSuffix)
}

// atomicWriteFile writes data to path so that a crash at any point
// leaves either the old complete file or the new complete file: write
// to a temp file in the same directory, fsync it, rename it over
// path, fsync the directory so the rename itself is durable.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
