package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/server/wire"
)

// Aggregator durability: WriteCheckpoints serializes every registered
// table's remote state (named-source snapshots + anonymous aggregate,
// with the live table folded in) to one file per table in a
// checkpoint directory; RestoreCheckpoints loads them back on boot,
// before the port opens. Together with per-source replace semantics
// they make an aggregator restart lossless for everything pushed up
// to the last checkpoint: pushers that outlived the crash simply
// replace their restored snapshots on their next ship, and pushers
// that died keep their last checkpointed contribution in rollups.
// With a journal attached (AttachJournal), ReplayJournal then closes
// the tail gap: records appended since the checkpoint's LSN watermark
// replay on top of the restored state.
//
// File format (FCCK, little endian), version 2:
//
//	offset  size  field
//	0       4     magic "FCCK"
//	4       1     format version (2)
//	5       3     reserved (0)
//	8       8     written-at wall clock, unix nanoseconds (int64)
//	16      8     applied journal LSN watermark (0 = no journal)
//	24      ...   uvarint table-name length + name bytes
//	...     ...   table body (see tableBackend.checkpointBody)
//	end-4   4     CRC32 (IEEE) of every preceding byte
//
// Version 1 files (no LSN field, name at offset 16) still restore,
// with a zero watermark — exactly right, since no journal existed when
// they were written.
//
// Checkpoints are generational: each pass writes
// <table>-<namecrc>-<generation>.fcck rather than renaming over the
// previous pass's file, and retention keeps the newest
// Config.CheckpointRetain generations per table. Restore picks the
// newest VALID generation per table — a generation corrupted at rest
// falls back to the one before it (logged), and only a table with no
// valid generation at all is a hard error. Each file is written
// atomically — temp file in the same directory, fsync, rename, fsync
// the directory — so a crash mid-checkpoint leaves complete older
// generations in place, never a torn newest one.
const (
	ckptMagic        = "FCCK"
	ckptVersion      = 2
	ckptV1HeaderSize = 16
	ckptHeaderSize   = 24
	ckptSuffix       = ".fcck"
)

// CheckpointStats reports what one WriteCheckpoints or
// RestoreCheckpoints pass covered.
type CheckpointStats struct {
	// Tables is the number of table checkpoint files written or
	// restored; Bytes sums their sizes.
	Tables int
	Bytes  int64
	// Skipped counts files RestoreCheckpoints ignored because no
	// matching table is registered (always 0 for writes).
	Skipped int
	// Pruned counts old-generation checkpoint files retention deleted
	// after a successful write pass (always 0 for restores).
	Pruned int
	// Fallbacks counts tables RestoreCheckpoints recovered from an
	// older generation because a newer one was corrupt.
	Fallbacks int
}

// WriteCheckpoints writes one checkpoint file per registered table
// into dir (created if missing) as a new generation, then prunes
// generations past Config.CheckpointRetain. Safe to call while the
// server is serving — each table is quiesced exactly as a
// SNAPSHOT_PULL would — and after Close (the shutdown path checkpoints
// last so nothing ingested during the drain is lost). The checkpoint
// timestamp HEALTH reports advances only when every table was written.
//
// When a journal is attached, the pass rotates it FIRST: every record
// appended while tables are being captured lands in the post-rotation
// file, and every record in older files is — by the journal's
// append-before-apply order — covered by the LSN watermarks this pass
// captures, so a fully successful pass may prune them.
//
// Tables checkpoint concurrently on a bounded worker set (and each
// table's own capture fans out per key), so the pass's total
// ingest-stall is the longest single table's quiesce window, not the
// sum over tables. On error the pass still attempts every table —
// files are independently atomic — and reports the first failure in
// table-name order; nothing is pruned.
func (s *Server) WriteCheckpoints(dir string) (CheckpointStats, error) {
	var st CheckpointStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}
	j := s.journal.Load()
	if j != nil {
		if err := j.Rotate(); err != nil {
			return st, fmt.Errorf("server: checkpoint: rotate journal: %w", err)
		}
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	now := time.Now()
	gen := s.nextCheckpointGen(now)
	bytes := make([]int64, len(names))
	errs := make([]error, len(names))
	core.FanOut(core.ReadDegree(0), len(names), func(_, i int) {
		name := names[i]
		b, ok := s.lookup(name)
		if !ok {
			return
		}
		data := make([]byte, 0, 4<<10)
		data = append(data, ckptMagic...)
		data = append(data, ckptVersion, 0, 0, 0)
		data = binary.LittleEndian.AppendUint64(data, uint64(now.UnixNano()))
		data = binary.LittleEndian.AppendUint64(data, 0) // LSN, patched below
		data = wire.AppendString(data, name)
		body, lsn, err := b.checkpointBody(data)
		if err != nil {
			errs[i] = fmt.Errorf("server: checkpoint table %q: %w", name, err)
			return
		}
		data = body
		binary.LittleEndian.PutUint64(data[16:24], lsn)
		data = binary.LittleEndian.AppendUint32(data, crc32.ChecksumIEEE(data))
		path := filepath.Join(dir, checkpointFileName(name, gen))
		if err := atomicWriteFile(path, data); err != nil {
			errs[i] = fmt.Errorf("server: checkpoint table %q: %w", name, err)
			return
		}
		bytes[i] = int64(len(data))
	})
	for i := range names {
		if errs[i] != nil {
			return st, errs[i]
		}
		if bytes[i] > 0 {
			st.Tables++
			st.Bytes += bytes[i]
		}
	}
	s.lastCheckpoint.Store(now.UnixNano())
	s.checkpoints.Add(1)
	if h := s.ckptHist.Load(); h != nil {
		h.Observe(time.Since(now).Seconds())
	}
	// The pass fully succeeded: older generations (and, with a journal,
	// the pre-rotation files its watermarks cover) may go.
	pruned, err := s.pruneCheckpoints(dir, s.checkpointRetain())
	if err != nil {
		return st, err
	}
	st.Pruned = pruned
	if j != nil {
		if err := j.PruneKeep(); err != nil {
			return st, fmt.Errorf("server: checkpoint: prune journal: %w", err)
		}
	}
	return st, nil
}

// checkpointRetain resolves the configured per-table generation count.
func (s *Server) checkpointRetain() int {
	if s.cfg.CheckpointRetain > 0 {
		return s.cfg.CheckpointRetain
	}
	return DefaultRetain
}

// nextCheckpointGen issues a strictly increasing generation number:
// the pass timestamp, bumped past any generation already seen (written
// this process or restored from disk), so clock retreat or sub-tick
// passes can never reuse or reorder a generation.
func (s *Server) nextCheckpointGen(now time.Time) uint64 {
	gen := uint64(now.UnixNano())
	for {
		prev := s.ckptGen.Load()
		if gen <= prev {
			gen = prev + 1
		}
		if s.ckptGen.CompareAndSwap(prev, gen) {
			return gen
		}
	}
}

// pruneCheckpoints deletes old checkpoint generations, keeping the
// newest `keep` per table. Only files whose names this code wrote
// (generational or legacy v1 names) are candidates; a file with the
// checkpoint suffix but an unrecognized name is logged and left alone
// — retention must never eat a file it cannot account for.
func (s *Server) pruneCheckpoints(dir string, keep int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	type genFile struct {
		name string
		gen  uint64
	}
	byTable := make(map[string][]genFile)
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ckptSuffix) {
			continue // temp files and strangers: not ours to judge
		}
		prefix, gen, ok := parseCheckpointFileName(ent.Name())
		if !ok {
			s.logf("server: checkpoint retention: unrecognized file %s, leaving in place", ent.Name())
			continue
		}
		byTable[prefix] = append(byTable[prefix], genFile{ent.Name(), gen})
	}
	pruned := 0
	for _, files := range byTable {
		if len(files) <= keep {
			continue
		}
		sort.Slice(files, func(a, b int) bool { return files[a].gen > files[b].gen })
		for _, gf := range files[keep:] {
			if err := os.Remove(filepath.Join(dir, gf.name)); err != nil {
				return pruned, err
			}
			pruned++
		}
	}
	return pruned, nil
}

// RestoreCheckpoints loads the newest valid checkpoint generation per
// table into the matching registered tables' remote state. Call it
// after registering tables and before Start/Serve, so the first
// connection after a restart already sees the recovered state. A
// missing or empty directory restores nothing and is not an error
// (first boot); a file whose table is not registered is skipped with a
// log line (a config that dropped a table must not brick the node); a
// corrupt generation falls back to the next older valid one (logged) —
// only a table with NO valid generation is a hard error, because
// restoring nothing silently would defeat the point.
func (s *Server) RestoreCheckpoints(dir string) (CheckpointStats, error) {
	var st CheckpointStats
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	type candidate struct {
		file string
		ts   int64
		lsn  uint64
		body []byte
		size int64
	}
	// Valid images grouped by their embedded table name; corrupt files
	// grouped by filename prefix so they can be matched to a table that
	// still has an older valid generation.
	valid := make(map[string][]candidate)
	var corrupt []struct {
		file, prefix string
		err          error
	}
	var maxGen uint64
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ckptSuffix) {
			continue // temp files and strangers
		}
		if _, gen, ok := parseCheckpointFileName(ent.Name()); ok && gen > maxGen {
			maxGen = gen
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return st, err
		}
		name, ts, lsn, body, err := parseCheckpoint(data)
		if err != nil {
			prefix, _, _ := parseCheckpointFileName(ent.Name())
			corrupt = append(corrupt, struct {
				file, prefix string
				err          error
			}{ent.Name(), prefix, err})
			continue
		}
		valid[name] = append(valid[name], candidate{ent.Name(), ts, lsn, body, int64(len(data))})
	}
	var newest int64
	coveredPrefix := make(map[string]bool)
	names := make([]string, 0, len(valid))
	for name := range valid {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cands := valid[name]
		b, ok := s.lookup(name)
		if !ok {
			for _, c := range cands {
				s.logf("server: checkpoint %s: table %q not registered, skipping", c.file, name)
				st.Skipped++
				if p, _, ok := parseCheckpointFileName(c.file); ok {
					coveredPrefix[p] = true
				}
			}
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].ts != cands[b].ts {
				return cands[a].ts > cands[b].ts
			}
			return cands[a].file > cands[b].file
		})
		for i, c := range cands {
			if err := b.restoreBody(c.body, c.lsn); err != nil {
				if i+1 < len(cands) {
					s.logf("server: checkpoint %s: %v, falling back to older generation %s", c.file, err, cands[i+1].file)
					continue
				}
				return st, fmt.Errorf("server: checkpoint %s: %w", c.file, err)
			}
			if i > 0 {
				st.Fallbacks++
				s.logf("server: checkpoint: table %q restored from older generation %s", name, c.file)
			}
			st.Tables++
			st.Bytes += c.size
			if c.ts > newest {
				newest = c.ts
			}
			if p, _, ok := parseCheckpointFileName(c.file); ok {
				coveredPrefix[p] = true
			}
			break
		}
	}
	for _, c := range corrupt {
		if c.prefix != "" && coveredPrefix[c.prefix] {
			// A newer generation of a table we did restore is damaged:
			// the fallback already covered it, keep booting.
			s.logf("server: checkpoint %s: %v (older generation restored instead)", c.file, c.err)
			continue
		}
		return st, fmt.Errorf("server: checkpoint %s: %w", c.file, c.err)
	}
	if st.Tables > 0 {
		// The restored state is as stale as the checkpoint that wrote
		// it — report that age, not zero, so monitors see the true
		// staleness window until the first post-restart checkpoint.
		s.lastCheckpoint.Store(newest)
	}
	// Future generations must sort after everything already on disk,
	// even across a restart with a retreating clock.
	for {
		prev := s.ckptGen.Load()
		if maxGen <= prev || s.ckptGen.CompareAndSwap(prev, maxGen) {
			break
		}
	}
	return st, nil
}

// CheckpointAge returns the time since the newest checkpoint this
// server wrote or restored; ok is false when it never has.
func (s *Server) CheckpointAge() (time.Duration, bool) {
	ts := s.lastCheckpoint.Load()
	if ts == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, ts)), true
}

// parseCheckpoint validates an FCCK image and returns the embedded
// table name, write timestamp, applied-LSN watermark and body. Both
// the current version-2 layout and version-1 files (pre-journal, no
// LSN field) parse; v1 yields a zero watermark.
func parseCheckpoint(data []byte) (name string, ts int64, lsn uint64, body []byte, err error) {
	if len(data) < ckptV1HeaderSize+4 {
		return "", 0, 0, nil, fmt.Errorf("truncated (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return "", 0, 0, nil, fmt.Errorf("checksum mismatch (file %#x, computed %#x)", got, want)
	}
	if string(payload[0:4]) != ckptMagic {
		return "", 0, 0, nil, errors.New("bad magic")
	}
	rest := payload
	switch payload[4] {
	case 1:
		rest = payload[ckptV1HeaderSize:]
	case ckptVersion:
		if len(payload) < ckptHeaderSize {
			return "", 0, 0, nil, fmt.Errorf("truncated header (%d bytes)", len(payload))
		}
		lsn = binary.LittleEndian.Uint64(payload[16:24])
		rest = payload[ckptHeaderSize:]
	default:
		return "", 0, 0, nil, fmt.Errorf("unsupported version %d", payload[4])
	}
	ts = int64(binary.LittleEndian.Uint64(payload[8:16]))
	r := wire.Reader{Buf: rest}
	name = r.String()
	if r.Err != nil || name == "" {
		return "", 0, 0, nil, errors.New("malformed table name")
	}
	return name, ts, lsn, r.Rest(), nil
}

// checkpointPrefix maps a table name to the stable filename prefix its
// generations share: a sanitized form for humans plus the name's CRC
// for uniqueness (two tables whose names sanitize identically must not
// collide). The authoritative name lives inside the file.
func checkpointPrefix(table string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, table)
	const maxSafe = 64
	if len(safe) > maxSafe {
		safe = safe[:maxSafe]
	}
	return fmt.Sprintf("%s-%08x", safe, crc32.ChecksumIEEE([]byte(table)))
}

// checkpointFileName maps a table name and generation to its file
// name; generations are zero-padded hex so lexical order is write
// order.
func checkpointFileName(table string, gen uint64) string {
	return fmt.Sprintf("%s-%016x%s", checkpointPrefix(table), gen, ckptSuffix)
}

// parseCheckpointFileName splits a checkpoint file name into its table
// prefix and generation. Legacy single-generation names (no generation
// field) parse as generation 0, so one new-format pass supersedes
// them. ok is false for names this code never wrote.
func parseCheckpointFileName(name string) (prefix string, gen uint64, ok bool) {
	if !strings.HasSuffix(name, ckptSuffix) {
		return "", 0, false
	}
	stem := name[:len(name)-len(ckptSuffix)]
	// Generational: <safe>-<8 hex>-<16 hex>. Legacy: <safe>-<8 hex>.
	if i := len(stem) - 17; i > 0 && stem[i] == '-' && isHex(stem[i+1:]) {
		head := stem[:i]
		if j := len(head) - 9; j >= 0 && head[j] == '-' && isHex(head[j+1:]) {
			if _, err := fmt.Sscanf(stem[i+1:], "%016x", &gen); err == nil {
				return head, gen, true
			}
		}
	}
	if j := len(stem) - 9; j >= 0 && stem[j] == '-' && isHex(stem[j+1:]) {
		return stem, 0, true
	}
	return "", 0, false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// atomicWriteFile writes data to path so that a crash at any point
// leaves either the old complete file or the new complete file: write
// to a temp file in the same directory, fsync it, rename it over
// path, fsync the directory so the rename itself is durable.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
